// Command hsqp is the CLI for the high-speed query processing
// reproduction: generate TPC-H data, run queries on a simulated cluster,
// explain plans and regenerate the paper's tables and figures.
//
// Usage:
//
//	hsqp dbgen -sf 0.1
//	hsqp run -q 5 -servers 6 -transport rdma -sched -sf 0.05
//	hsqp explain -q 17
//	hsqp experiment -id fig3
//	hsqp experiment -id all -full
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/ref"
	"hsqp/internal/serve"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dbgen":
		err = cmdDbgen(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsqp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hsqp dbgen      -sf <scale> [-seed N] [-o dir]
  hsqp run        -q <1-22> [-servers N] [-workers N] [-sf S] [-transport rdma|tcp|gbe]
                  [-sched] [-partitioned] [-classic] [-timescale X] [-rows N]
                  [-nofuse] [-nopushdown] [-analyze] [-trace out.json]
  hsqp explain    -q <1-22>
  hsqp client     -addr host:port [-tenant name] [-q q1] [-n N] [-prepare]
                  [-bypass] [-rows N] [-stats] [-verify] [-shutdown]
  hsqp top        -addr host:port [-interval 2s] [-n N]
  hsqp experiment -id table1|fig2|fig3|fig4|fig5|fig9|fig10b|fig10c|fig11|fig12a|fig12b|table2|sched|sf|skew|skewjoin|skewsweep|throughput|serving|chaos|all
                  [-sf S] [-servers N] [-concurrency N] [-full]`)
}

func cmdDbgen(args []string) error {
	fs := flag.NewFlagSet("dbgen", flag.ExitOnError)
	sf := fs.Float64("sf", 0.01, "scale factor")
	seed := fs.Uint64("seed", 42, "generator seed")
	out := fs.String("o", "", "export directory for .tbl files (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db := tpch.Generate(*sf, *seed)
	if *out != "" {
		if err := db.Export(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s/*.tbl\n", *out)
	}
	names := append([]string{}, tpch.TableNames...)
	sort.Strings(names)
	tab := &bench.Table{Title: fmt.Sprintf("TPC-H SF %g", *sf), Header: []string{"relation", "rows"}}
	for _, n := range names {
		tab.Add(n, fmt.Sprintf("%d", db.Tables[n].Rows()))
	}
	tab.Fprint(os.Stdout)
	return nil
}

func parseTransport(s string) (cluster.TransportKind, error) {
	switch s {
	case "rdma":
		return cluster.RDMA, nil
	case "tcp":
		return cluster.TCPoIB, nil
	case "gbe":
		return cluster.TCPGbE, nil
	default:
		return 0, fmt.Errorf("unknown transport %q (rdma|tcp|gbe)", s)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	q := fs.Int("q", 1, "TPC-H query number")
	servers := fs.Int("servers", 3, "cluster size")
	workers := fs.Int("workers", 4, "workers per server")
	sf := fs.Float64("sf", 0.01, "scale factor")
	transport := fs.String("transport", "rdma", "rdma|tcp|gbe")
	sched := fs.Bool("sched", true, "round-robin network scheduling")
	partitioned := fs.Bool("partitioned", false, "partitioned placement")
	classic := fs.Bool("classic", false, "classic exchange-operator model")
	timescale := fs.Float64("timescale", cluster.DefaultTimeScale, "network time scale")
	rows := fs.Int("rows", 20, "result rows to print")
	nofuse := fs.Bool("nofuse", false, "disable operator fusion (ablation)")
	nopushdown := fs.Bool("nopushdown", false, "disable column pruning below exchanges (ablation)")
	analyze := fs.Bool("analyze", false, "print explain analyze (per-operator rows/time/allocs) after the run")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON of the query to this file (load in chrome://tracing or Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tk, err := parseTransport(*transport)
	if err != nil {
		return err
	}
	c, err := cluster.New(cluster.Config{
		Servers:          *servers,
		WorkersPerServer: *workers,
		Transport:        tk,
		Scheduling:       *sched,
		Classic:          *classic,
		TimeScale:        *timescale,
		NoFuse:           *nofuse,
		NoPushdown:       *nopushdown,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("loading TPC-H SF %g (%s placement) on %d servers…\n",
		*sf, map[bool]string{true: "partitioned", false: "chunked"}[*partitioned], *servers)
	c.LoadTPCH(bench.DB(*sf, 42), *partitioned)
	qp, err := queries.Build(*q, queries.Params{SF: *sf})
	if err != nil {
		return err
	}
	// Run through a session so the trace timeline includes the admission
	// phase (queue → compile → pipelines), exactly like the serving path.
	sess := c.NewSession(cluster.SessionConfig{})
	defer sess.Close()
	res, stats, err := sess.RunContext(context.Background(), qp)
	if err != nil {
		return err
	}
	printBatch(res, *rows)
	fmt.Printf("\n%d rows; %s; shuffled %s in %d messages (%d stolen, %d local)\n",
		res.Rows(), stats.Duration, bench.MB(stats.BytesSent), stats.MessagesSent,
		stats.StolenMsgs, stats.LocalMsgs)
	fmt.Printf("pipeline DAG: overlap ratio %.2f, peak %d concurrent pipelines/server\n",
		stats.MaxOverlap(), stats.PeakConcurrentPipelines())
	if *analyze {
		fmt.Printf("timing: compile %s + execute %s (scheduler delay %s)\n",
			stats.Compile, stats.Exec, stats.SchedulerDelay())
		fmt.Printf("\n%s", plan.ExplainAnalyze(qp, stats.PipelineStats))
	}
	if *tracePath != "" {
		if stats.Trace == nil {
			return fmt.Errorf("no trace collected (observability disabled?)")
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := stats.Trace.WriteChromeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans over %s written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
			len(stats.Trace.Spans), stats.Trace.End(), *tracePath)
	}
	return nil
}

func printBatch(b *storage.Batch, maxRows int) {
	tab := &bench.Table{}
	for _, f := range b.Schema.Fields {
		tab.Header = append(tab.Header, f.Name)
	}
	n := b.Rows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		row := make([]string, b.Schema.Len())
		for c := range b.Cols {
			v := b.Cols[c].Value(i)
			switch b.Schema.Fields[c].Type {
			case storage.TDecimal:
				if v != nil {
					row[c] = fmt.Sprintf("%.2f", storage.DecimalFloat(v.(int64)))
				}
			case storage.TDate:
				if v != nil {
					row[c] = storage.FormatDate(v.(int64))
				}
			default:
				row[c] = fmt.Sprintf("%v", v)
			}
		}
		tab.Add(row...)
	}
	tab.Fprint(os.Stdout)
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	q := fs.Int("q", 17, "TPC-H query number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	qp, err := queries.Build(*q, queries.Params{SF: 1})
	if err != nil {
		return err
	}
	fmt.Print(plan.Explain(qp))
	return nil
}

func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7483", "hsqpd address")
	tenant := fs.String("tenant", "default", "tenant name (selects the admission queue)")
	stmts := fs.String("q", "q1", "statement(s), comma-separated, e.g. q1,q5,q12")
	n := fs.Int("n", 1, "repetitions per statement")
	prepare := fs.Bool("prepare", false, "register a prepared-statement handle and execute through it")
	bypass := fs.Bool("bypass", false, "bypass the server's result cache")
	rows := fs.Int("rows", 0, "result rows to print (0 = none)")
	showStats := fs.Bool("stats", false, "print per-request serving stats")
	verify := fs.Bool("verify", false, "check results against the reference engine (regenerates the database from the advertised sf/seed)")
	shutdown := fs.Bool("shutdown", false, "ask the server to drain and exit (after any queries)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cl, err := serve.Dial(*addr, *tenant)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("connected to %s as %q (sf %g, seed %d, weight %d)\n",
		*addr, *tenant, cl.Info.SF, cl.Info.Seed, cl.Info.Weight)

	var db *tpch.Database
	if *verify {
		db = tpch.Generate(cl.Info.SF, cl.Info.Seed)
	}
	opts := serve.ExecOpts{BypassResultCache: *bypass}
	pathTally := map[string]int{}
	requests := 0

	for _, stmt := range strings.Split(*stmts, ",") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		exec := func() (*storage.Batch, serve.ExecStats, error) {
			return cl.ExecWithOpts(stmt, opts)
		}
		var ps *serve.Stmt
		if *prepare {
			if ps, err = cl.Prepare(stmt); err != nil {
				return fmt.Errorf("prepare %s: %w", stmt, err)
			}
			exec = func() (*storage.Batch, serve.ExecStats, error) { return ps.ExecOpts(opts) }
		}
		var last *storage.Batch
		for i := 0; i < *n; i++ {
			res, st, err := exec()
			if err != nil {
				return fmt.Errorf("%s: %w", stmt, err)
			}
			last = res
			path := "executed"
			switch {
			case st.Shared:
				path = "shared"
			case st.ResultHit:
				path = "result-cache hit"
			case st.PlanHit:
				path = "plan-cache hit"
			}
			pathTally[path]++
			requests++
			fmt.Printf("%-4s %6d rows  %10s  %s\n", stmt, st.Rows, st.Wall, path)
			if *showStats {
				fmt.Printf("     queue %s  compile %s  execute %s  server total %s\n",
					st.QueueWait, st.Compile, st.Exec, st.Total)
			}
		}
		if ps != nil {
			if err := ps.Close(); err != nil {
				return fmt.Errorf("close %s: %w", stmt, err)
			}
		}
		if *rows > 0 && last != nil {
			printBatch(last, *rows)
		}
		if *verify {
			qn, err := serve.ParseStatement(stmt)
			if err != nil {
				return err
			}
			want, err := ref.Run(qn, db, cl.Info.SF)
			if err != nil {
				return fmt.Errorf("reference %s: %w", stmt, err)
			}
			if err := verifyBatch(last, want); err != nil {
				return fmt.Errorf("%s: VERIFICATION FAILED: %w", stmt, err)
			}
			fmt.Printf("     verified against reference engine (%d rows)\n", last.Rows())
		}
	}

	if *showStats && requests > 1 {
		paths := make([]string, 0, len(pathTally))
		for p := range pathTally {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		fmt.Printf("%d requests:", requests)
		for _, p := range paths {
			fmt.Printf("  %d %s", pathTally[p], p)
		}
		fmt.Println()
	}

	if *shutdown {
		if err := cl.Shutdown(); err != nil {
			return err
		}
		fmt.Println("server draining")
	}
	return nil
}

// verifyBatch compares a served result against the reference rows as a
// multiset of formatted rows (row order is scheduling-dependent).
func verifyBatch(got *storage.Batch, want *ref.Result) error {
	if got.Rows() != len(want.Rows) {
		return fmt.Errorf("%d rows, reference has %d", got.Rows(), len(want.Rows))
	}
	format := func(vals []any) string {
		parts := make([]string, len(vals))
		for i, v := range vals {
			if v == nil {
				parts[i] = "∅"
			} else {
				parts[i] = fmt.Sprintf("%v", v)
			}
		}
		return strings.Join(parts, "|")
	}
	g := make([]string, got.Rows())
	for i := range g {
		g[i] = format(got.Row(i))
	}
	w := make([]string, len(want.Rows))
	for i := range w {
		w[i] = format(want.Rows[i])
	}
	sort.Strings(g)
	sort.Strings(w)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("row %d (canonical order) differs\n  got:  %s\n  want: %s", i, g[i], w[i])
		}
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "", "experiment id")
	sf := fs.Float64("sf", 0.05, "scale factor")
	servers := fs.Int("servers", 3, "cluster size (engine experiments)")
	concurrency := fs.Int("concurrency", 8, "concurrent query streams (throughput experiment)")
	full := fs.Bool("full", false, "run all 22 queries / full parameter grids")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wl := bench.Workload{SF: *sf}
	if *full {
		wl.Queries = queries.All()
	}
	w := os.Stdout
	run := func(name string, fn func() error) error {
		fmt.Fprintf(w, "\n")
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	all := map[string]func() error{
		"table1": func() error { bench.Table1(w); return nil },
		"fig2": func() error {
			steps := []int{1, 2, 4}
			if *full {
				steps = []int{1, 2, 4, 8}
			}
			_, err := bench.Figure2{Workload: wl, Servers: *servers, CoreSteps: steps}.Run(w)
			return err
		},
		"fig3": func() error {
			maxS := 4
			if *full {
				maxS = 6
			}
			_, err := bench.Figure3{Workload: wl, MaxServers: maxS}.Run(w)
			return err
		},
		"fig4": func() error { bench.Figure4(w); return nil },
		"fig5": func() error { _, err := bench.Figure5{}.Run(w); return err },
		"fig9": func() error {
			_, err := bench.Figure9{Workload: wl, Servers: *servers}.Run(w)
			return err
		},
		"fig10b": func() error { _, err := bench.Figure10b{}.Run(w); return err },
		"fig10c": func() error { _, err := bench.Figure10c{}.Run(w); return err },
		"fig11": func() error {
			serverList := []int{1, 2, 4}
			if *full {
				serverList = []int{1, 2, 3, 4, 5, 6}
			}
			_, err := bench.Figure11{Workload: wl, ServerList: serverList}.Run(w)
			return err
		},
		"fig12a": func() error {
			_, err := bench.Figure12a{Workload: wl, Servers: *servers, IncludeInterpreted: *full}.Run(w)
			return err
		},
		"fig12b": func() error {
			_, err := bench.Figure12b{Workload: wl, Servers: *servers}.Run(w)
			return err
		},
		"table2": func() error {
			_, err := bench.Table2{Workload: wl, Servers: *servers, IncludeInterpreted: *full}.Run(w)
			return err
		},
		"sched": func() error {
			_, err := bench.SchedulingImpact{Workload: wl, Servers: *servers}.Run(w)
			return err
		},
		"sf": func() error {
			_, err := bench.ScaleFactorScaling{Workload: wl, Servers: *servers}.Run(w)
			return err
		},
		"skew": func() error { bench.Skew{}.Run(w); return nil },
		"skewjoin": func() error {
			_, err := bench.SkewedJoin{Servers: *servers, Transport: cluster.TCPGbE}.Run(w)
			return err
		},
		"throughput": func() error {
			run := bench.Throughput{Servers: *servers, Streams: *concurrency}
			if *full {
				run.Queries = []int{1, 12}
				run.Rounds = 2
			}
			_, err := run.Run(w)
			return err
		},
		"serving": func() error {
			run := bench.Serving{Servers: *servers}
			if *full {
				run.Iters = 10
				run.FairRequests = 20
			}
			_, err := run.Run(w)
			return err
		},
		"chaos": func() error {
			run := bench.Chaos{}
			if *full {
				run.SF = 0.02
			}
			_, err := run.Run(w)
			return err
		},
		"skewsweep": func() error {
			run := bench.SkewSweep{SkewedJoin: bench.SkewedJoin{
				Servers: *servers, Transport: cluster.TCPGbE, Rows: 200_000}}
			if *full {
				run.Rows = 600_000
			}
			_, err := run.Run(w)
			return err
		},
	}
	if *id == "all" {
		order := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10b",
			"fig10c", "fig11", "fig12a", "fig12b", "table2", "sched", "sf", "skew",
			"skewjoin", "skewsweep", "throughput", "serving", "chaos"}
		for _, name := range order {
			if err := run(name, all[name]); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := all[*id]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *id)
	}
	return run(*id, fn)
}
