package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"hsqp/internal/bench"
	"hsqp/internal/obs"
)

// cmdTop polls a daemon's /metrics endpoint and renders a one-screen live
// summary: request throughput, per-tenant latency/queue state, cache hit
// rates and engine utilisation. Rates are computed from counter deltas
// between consecutive scrapes; gauges and percentiles are shown as-is.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7484", "daemon metrics address (host:port of -metrics-addr)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	n := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/metrics", *addr)

	var prev *obs.SampleSet
	var prevAt time.Time
	for i := 0; *n <= 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := scrape(url)
		now := time.Now()
		if err != nil {
			return err
		}
		if i > 0 && *n != 1 {
			fmt.Print("\033[H\033[2J") // clear between refreshes
		}
		render(os.Stdout, cur, prev, now.Sub(prevAt))
		prev, prevAt = cur, now
	}
	return nil
}

func scrape(url string) (*obs.SampleSet, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return obs.NewSampleSet(samples), nil
}

// rate is the per-second delta of a counter between two scrapes, or -1
// when no previous scrape exists yet.
func rate(cur, prev *obs.SampleSet, name string, dt time.Duration) float64 {
	if prev == nil || dt <= 0 {
		return -1
	}
	return (cur.Sum(name) - prev.Sum(name)) / dt.Seconds()
}

func render(w io.Writer, cur, prev *obs.SampleSet, dt time.Duration) {
	qps := rate(cur, prev, "hsqp_serve_requests_total", dt)
	wireRate := rate(cur, prev, "hsqp_exchange_wire_bytes_total", dt)

	conns, _ := cur.Value("hsqp_serve_connections_active", nil)
	runs, _ := cur.Value("hsqp_engine_active_runs", nil)
	queries := cur.Sum("hsqp_cluster_queries_total")
	slow := cur.Sum("hsqp_serve_slow_queries_total")

	fmt.Fprintf(w, "hsqp top — %s\n", time.Now().Format("15:04:05"))
	if qps >= 0 {
		fmt.Fprintf(w, "requests %7.1f/s   wire %9s/s   ", qps, bench.MB(uint64(max64(wireRate, 0))))
	} else {
		fmt.Fprintf(w, "requests   (first sample)   ")
	}
	fmt.Fprintf(w, "conns %.0f   active runs %.0f   queries %.0f   slow %.0f\n",
		conns, runs, queries, slow)

	// Engine utilisation: busy worker-seconds per wall-second per worker.
	workers, _ := cur.Value("hsqp_engine_workers", nil)
	if busyRate := rate(cur, prev, "hsqp_engine_busy_nanoseconds_total", dt); busyRate >= 0 && workers > 0 {
		fmt.Fprintf(w, "workers %.0f   busy %5.1f%%   morsels %7.0f/s   steals %6.0f/s\n",
			workers, 100*busyRate/1e9/workers,
			rate(cur, prev, "hsqp_engine_morsels_total", dt),
			rate(cur, prev, "hsqp_engine_steals_total", dt))
	} else {
		fmt.Fprintf(w, "workers %.0f\n", workers)
	}

	planHits, planMisses := cur.Sum("hsqp_serve_plancache_hits_total"), cur.Sum("hsqp_serve_plancache_misses_total")
	resHits := cur.Sum("hsqp_serve_resultcache_hits_total")
	resShared := cur.Sum("hsqp_serve_resultcache_shared_total")
	resMisses := cur.Sum("hsqp_serve_resultcache_misses_total")
	fmt.Fprintf(w, "plan cache %s   result cache %s (%.0f shared)\n",
		hitRate(planHits, planMisses), hitRate(resHits+resShared, resMisses), resShared)

	tenants := cur.LabelValues("hsqp_serve_qos_served_total", "tenant")
	sort.Strings(tenants)
	if len(tenants) == 0 {
		return
	}
	tab := &bench.Table{Header: []string{"tenant", "served", "queued", "queue p99", "total p50", "total p99"}}
	for _, tn := range tenants {
		l := map[string]string{"tenant": tn}
		served, _ := cur.Value("hsqp_serve_qos_served_total", l)
		depth, _ := cur.Value("hsqp_serve_qos_queue_depth", l)
		qp99, _ := cur.Value("hsqp_serve_qos_queue_p99_seconds", l)
		tp50, _ := cur.Value("hsqp_serve_qos_total_p50_seconds", l)
		tp99, _ := cur.Value("hsqp_serve_qos_total_p99_seconds", l)
		tab.Add(tn, fmt.Sprintf("%.0f", served), fmt.Sprintf("%.0f", depth),
			bench.Dur(secs(qp99)), bench.Dur(secs(tp50)), bench.Dur(secs(tp99)))
	}
	tab.Fprint(w)
}

func hitRate(hits, misses float64) string {
	if hits+misses == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%.0f/%.0f (%.0f%%)", hits, hits+misses, 100*hits/(hits+misses))
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
