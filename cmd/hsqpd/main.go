// Command hsqpd is the serving daemon: it boots a simulated cluster, loads
// TPC-H, and serves queries over TCP using the hsqp wire protocol — with a
// compiled-plan cache, a single-flight result cache and per-tenant
// weighted-fair admission.
//
// Usage:
//
//	hsqpd -listen :7483 -servers 3 -sf 0.01
//	hsqpd -listen 127.0.0.1:0 -tenants heavy:4,light:1 -slots 4
//
// SIGINT/SIGTERM (or a client Shutdown request) drains gracefully:
// in-flight queries complete, queued ones fail fast, then the process
// exits after printing per-tenant serving stats.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
	"hsqp/internal/obs"
	"hsqp/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hsqpd:", err)
		os.Exit(1)
	}
}

func parseTransport(s string) (cluster.TransportKind, error) {
	switch s {
	case "rdma":
		return cluster.RDMA, nil
	case "tcp":
		return cluster.TCPoIB, nil
	case "gbe":
		return cluster.TCPGbE, nil
	default:
		return 0, fmt.Errorf("unknown transport %q (rdma|tcp|gbe)", s)
	}
}

// parseTenants parses "name:weight,name:weight" (weight optional, default 1).
func parseTenants(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(ws); err != nil || w < 1 {
				return nil, fmt.Errorf("bad tenant weight %q (want name:positive-int)", part)
			}
		}
		if name == "" {
			return nil, fmt.Errorf("bad tenant spec %q", part)
		}
		out[name] = w
	}
	return out, nil
}

// metricsMux serves the observability endpoints: Prometheus-text metrics
// and the standard pprof handlers. Registered on a private mux, not
// http.DefaultServeMux, so importing net/http/pprof elsewhere cannot
// silently widen this surface.
func metricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(args []string) error {
	fs := flag.NewFlagSet("hsqpd", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7483", "TCP listen address")
	servers := fs.Int("servers", 3, "cluster size")
	workers := fs.Int("workers", 4, "workers per server")
	sf := fs.Float64("sf", 0.01, "TPC-H scale factor")
	seed := fs.Uint64("seed", 42, "generator seed (advertised to clients for -verify)")
	transport := fs.String("transport", "rdma", "rdma|tcp|gbe")
	sched := fs.Bool("sched", true, "round-robin network scheduling")
	partitioned := fs.Bool("partitioned", false, "partitioned placement")
	timescale := fs.Float64("timescale", 0.005, "network time scale")
	tenants := fs.String("tenants", "", "tenant weights, e.g. heavy:4,light:1 (others get weight 1)")
	slots := fs.Int("slots", cluster.DefaultMaxConcurrent, "concurrent execution slots")
	maxQueued := fs.Int("maxqueued", serve.DefaultMaxQueued, "admission queue bound per tenant")
	planEntries := fs.Int("plancache", serve.DefaultPlanCacheEntries, "plan cache entries")
	resultMB := fs.Int64("resultcache", serve.DefaultResultCacheBytes>>20, "result cache budget in MiB (0 disables)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP listen address for /metrics and /debug/pprof/ (empty disables)")
	slowQuery := fs.Duration("slowquery", 0, "log requests slower than this threshold (0 disables)")
	slowLogPath := fs.String("slowlog", "", "slow-query log file (default stderr)")
	noObs := fs.Bool("noobs", false, "disable metrics and tracing instrumentation (overhead ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *noObs {
		obs.SetEnabled(false)
	}
	tk, err := parseTransport(*transport)
	if err != nil {
		return err
	}
	weights, err := parseTenants(*tenants)
	if err != nil {
		return err
	}

	c, err := cluster.New(cluster.Config{
		Servers:          *servers,
		WorkersPerServer: *workers,
		Transport:        tk,
		Scheduling:       *sched,
		TimeScale:        *timescale,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("hsqpd: loading TPC-H SF %g (seed %d, %s placement) on %d servers…\n",
		*sf, *seed, map[bool]string{true: "partitioned", false: "chunked"}[*partitioned], *servers)
	c.LoadTPCH(bench.DB(*sf, *seed), *partitioned)

	var slowW io.Writer
	if *slowLogPath != "" {
		f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("slowlog: %w", err)
		}
		defer f.Close()
		slowW = f
	}

	srv := serve.New(serve.Config{
		Cluster:            c,
		SF:                 *sf,
		Seed:               *seed,
		Tenants:            weights,
		Slots:              *slots,
		MaxQueuedPerTenant: *maxQueued,
		PlanCacheEntries:   *planEntries,
		ResultCacheBytes:   *resultMB << 20,
		DisableResultCache: *resultMB == 0,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       slowW,
	})

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("hsqpd: serving on %s (%d slots, result cache %d MiB)\n",
		lis.Addr(), *slots, *resultMB)

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mlis.Close()
		msrv := &http.Server{Handler: metricsMux(), ReadHeaderTimeout: 5 * time.Second}
		go msrv.Serve(mlis)
		fmt.Printf("hsqpd: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", mlis.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-sigCh:
			fmt.Printf("hsqpd: %v, draining…\n", sig)
			srv.Shutdown()
		case <-srv.Done():
			// Client-initiated shutdown; nothing to do.
		}
	}()

	srv.Serve(lis) // returns when Shutdown closes the listener
	<-srv.Done()

	stats := srv.TenantStats()
	if len(stats) > 0 {
		tab := &bench.Table{
			Title:  "per-tenant serving stats",
			Header: []string{"tenant", "weight", "served", "queue p50", "queue p99", "total p50", "total p99"},
		}
		for _, ts := range stats {
			tab.Add(ts.Tenant, fmt.Sprintf("%d", ts.Weight), fmt.Sprintf("%d", ts.Served),
				bench.Dur(ts.QueueP50), bench.Dur(ts.QueueP99), bench.Dur(ts.TotalP50), bench.Dur(ts.TotalP99))
		}
		tab.Fprint(os.Stdout)
	}
	pc, rc := srv.PlanCacheStats(), srv.ResultCacheStats()
	fmt.Printf("hsqpd: plan cache %d/%d hit, result cache %d hit / %d shared / %d miss; bye\n",
		pc.Hits, pc.Hits+pc.Misses, rc.Hits, rc.Shared, rc.Misses)
	return nil
}
