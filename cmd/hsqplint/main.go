// Command hsqplint runs the hsqp invariant analyzers (internal/lint)
// over the module.
//
// Standalone mode (preferred; module-aware, so cross-package analyses
// like lockblock's may-block fixpoint see the whole module):
//
//	hsqplint ./...
//	hsqplint -only lockblock,nopanic ./internal/mux/...
//	hsqplint -list
//
// Exit status: 0 clean, 2 findings, 1 operational error.
//
// Vet mode: hsqplint also speaks the go vet -vettool unit-checker
// protocol, so it can ride the build cache:
//
//	go vet -vettool=$(which hsqplint) ./...
//
// In vet mode each package is analyzed in isolation (module-wide
// fixpoints degrade to package-local), which is why CI runs the
// standalone mode and vet mode exists for editor integration.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hsqp/internal/lint"
	"hsqp/internal/lint/analysis"
	"hsqp/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes the tool's identity with -V=full before handing it
	// package configs.
	// go vet identifies the tool with -V=full and caches results under a
	// content hash of the executable.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
		f, err := os.Open(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
		fmt.Printf("hsqplint version devel buildID=%02x\n", h.Sum(nil))
		return 0
	}
	// go vet asks for the tool's flag set as JSON; hsqplint accepts no
	// vet-mode flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0])
	}
	return runStandalone(args)
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("hsqplint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	dir := fs.String("C", ".", "change to directory before loading packages")
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-16s %s\n", a.Name, doc)
		}
		return 0
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, ok := lint.ByName(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "hsqplint: unknown analyzer in -only=%s (try -list)\n", *only)
		return 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := loader.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
		return 1
	}
	diags, err := lint.Run(analyzers, res.Module, res.Targets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the subset of golang.org/x/tools/go/analysis/unitchecker's
// Config that hsqplint needs; go vet writes one per package.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hsqplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts are unused, but the protocol requires the output file to
	// exist before we exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
	}

	// go vet invokes the tool on every dependency (the unitchecker
	// protocol propagates facts bottom-up); hsqplint keeps no facts, and
	// its invariants are hsqp's, so anything outside the module is
	// acknowledged with an empty vetx and skipped.
	if cfg.Standard[cfg.ImportPath] ||
		(cfg.ImportPath != "hsqp" && !strings.HasPrefix(cfg.ImportPath, "hsqp/")) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := loader.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hsqplint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Single-package mode: no Module, so cross-package fixpoints degrade
	// to package-local scope.
	target := &analysis.ModPackage{Pkg: pkg, Info: info, Files: files}
	mod := analysis.NewModule(fset)
	mod.Add(target)
	diags, err := lint.Run(lint.All(), mod, []*analysis.ModPackage{target})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hsqplint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
