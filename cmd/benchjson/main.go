// Command benchjson converts `go test -bench` output into the repository's
// benchmark-tracking JSON format (BENCH_<n>.json): one record per
// benchmark with ns/op and every custom metric reported through
// b.ReportMetric. CI runs the smoke benchmarks, pipes them through this
// tool and uploads the result, so every PR appends a data point to the
// perf trajectory.
//
// Usage:
//
//	go test . -run '^$' -bench . -benchtime=1x | benchjson -issue 5 -o BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one `testing.B` result: ns/op plus custom metrics.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the repo-standard BENCH_<n>.json document.
type Report struct {
	Issue      int         `json:"issue"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	OS         string      `json:"os"`
	Arch       string      `json:"arch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	issue := flag.Int("issue", 0, "PR/issue number the data point belongs to")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report := Report{
		Issue:     *issue,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBenchLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkThroughput-8  1  1047923456 ns/op  76.2 concurrent-qps  2.08 speedup
//
// Returns ok=false for non-benchmark lines (headers, PASS, ok …).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The rest alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
