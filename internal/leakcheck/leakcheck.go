// Package leakcheck fails a test binary whose goroutines outlive its
// tests. The serving tier (mux receive loops, exchange workers, QoS
// dispatchers, scheduler pools) owns many goroutines whose shutdown
// paths are exactly the code most likely to regress; a leaked goroutine
// in a test is usually a missed Close/Wake on one of those paths, and
// without a checker it stays invisible until a production drain hangs.
//
// Wire it in with one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The check snapshots all goroutine stacks after the tests pass, filters
// the runtime's and testing framework's own goroutines, and retries for
// a grace period so goroutines that are mid-exit (closed channels
// propagating, deferred Releases running) can finish before a diff is
// declared a leak.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredSubstrings mark goroutines that are not leaks: the test
// framework, runtime housekeeping, and this package's own check.
var ignoredSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.ensureSigM",
	"runtime/trace.Start",
	"signal.signal_recv",
	"signal.loop",
	"os/signal.signal_recv",
	"leakcheck.interesting",
	"leakcheck.Check",
	"created by runtime.gc",
	"created by runtime/trace",
	"GC sweep wait",
	"GC scavenge wait",
	"force gc (idle)",
	"finalizer wait",
}

// Main runs the package's tests and then the leak check; it exits the
// process with a failure status if tests failed or goroutines leaked.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports an error if goroutines beyond the allowlist are still
// running; it retries until timeout so shutdown in progress can finish.
func Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var leaked []string
	for {
		leaked = interesting()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) still running after %v grace:\n\n%s",
		len(leaked), timeout, strings.Join(leaked, "\n\n"))
}

// interesting returns the stacks of goroutines that are neither the
// caller nor runtime/testing housekeeping.
func interesting() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the first stack is this goroutine
		}
		ignore := false
		for _, pat := range ignoredSubstrings {
			if strings.Contains(g, pat) {
				ignore = true
				break
			}
		}
		if !ignore {
			out = append(out, g)
		}
	}
	return out
}
