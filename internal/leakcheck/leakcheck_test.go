package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckDetectsLeak(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-block
		close(done)
	}()

	err := Check(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Check passed despite a blocked goroutine")
	}
	if !strings.Contains(err.Error(), "leakcheck.TestCheckDetectsLeak") {
		t.Errorf("leak report does not name the leaking function:\n%v", err)
	}

	close(block)
	<-done
	if err := Check(5 * time.Second); err != nil {
		t.Errorf("Check still failing after the goroutine exited: %v", err)
	}
}

func TestCheckGraceAllowsExitInProgress(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// The goroutine exits within the grace period, so the retry loop
	// must absorb it.
	if err := Check(5 * time.Second); err != nil {
		t.Errorf("Check did not wait out a goroutine mid-exit: %v", err)
	}
	<-done
}
