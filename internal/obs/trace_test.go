package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceChromeJSON(t *testing.T) {
	tr := NewTrace(7)
	tr.ControlPID = 3
	tr.SetProcessName(3, "coordinator")
	tr.SetThreadName(3, 0, "control")
	tr.SetProcessName(0, "server 0")
	tr.SetThreadName(0, 1, "scan(lineitem)")
	tr.Add(Span{Name: "compile", Cat: "compile", PID: 3, TID: 0, Start: 0, Dur: 2 * time.Millisecond})
	tr.Add(Span{Name: "scan(lineitem)", Cat: "pipeline", PID: 0, TID: 1,
		Start: 2 * time.Millisecond, Dur: 10 * time.Millisecond,
		Args: map[string]any{"morsels": 4}})
	tr.Shift(time.Millisecond) // queue wait
	tr.Add(Span{Name: "queue", Cat: "queue", PID: 3, TID: 0, Start: 0, Dur: time.Millisecond})

	if got := tr.End(); got != 13*time.Millisecond {
		t.Fatalf("End = %v, want 13ms", got)
	}
	if tr.SpanCount("queue") != 1 || tr.SpanCount("pipeline") != 1 {
		t.Fatalf("span counts wrong: %+v", tr.Spans)
	}

	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	// The output must be loadable as the Chrome trace_event envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var xEvents, mEvents int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without numeric ts: %v", ev)
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 3 {
		t.Fatalf("got %d X events, want 3", xEvents)
	}
	if mEvents != 4 { // 2 process_name + 2 thread_name
		t.Fatalf("got %d metadata events, want 4", mEvents)
	}
	// The shifted pipeline span sits at 3ms in µs units.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "scan(lineitem)" && ev["ph"] == "X" {
			found = true
			if ts := ev["ts"].(float64); ts != 3000 {
				t.Fatalf("pipeline ts = %v µs, want 3000", ts)
			}
		}
	}
	if !found {
		t.Fatal("pipeline span missing from JSON")
	}
}

func TestSlowLog(t *testing.T) {
	var sb strings.Builder
	l := NewSlowLog(&sb, 10*time.Millisecond)
	if l.Observe(SlowQuery{Tenant: "t", Statement: "q1", Total: 5 * time.Millisecond}) {
		t.Fatal("fast query logged")
	}
	q := SlowQuery{
		Time: time.Unix(1754600000, 0), Tenant: "heavy", Statement: "q12",
		Rows: 3, QueueWait: 4 * time.Millisecond, Compile: time.Millisecond,
		Exec: 20 * time.Millisecond, Total: 25 * time.Millisecond,
		WireBytes: 51234, Path: "executed",
	}
	if !l.Observe(q) {
		t.Fatal("slow query not logged")
	}
	line := sb.String()
	for _, want := range []string{
		"slowquery ", "tenant=heavy", "stmt=q12", "path=executed", "rows=3",
		"queue=4ms", "compile=1ms", "exec=20ms", "total=25ms", "wire_bytes=51234",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %q: %s", want, line)
		}
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d, want 1", l.Count())
	}

	// Disabled and nil logs ignore everything.
	if NewSlowLog(&sb, 0) != nil {
		t.Fatal("threshold 0 should disable the log")
	}
	var nilLog *SlowLog
	if nilLog.Observe(q) || nilLog.Count() != 0 {
		t.Fatal("nil SlowLog must ignore calls")
	}
	// Values with spaces get quoted so the logfmt grammar survives.
	l.Observe(SlowQuery{Tenant: "a b", Statement: "q1", Total: time.Second})
	if !strings.Contains(sb.String(), `tenant="a b"`) {
		t.Errorf("tenant with space not quoted: %s", sb.String())
	}
}
