package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one request that crossed the slow threshold, with the
// phase split an operator needs to place the blame: admission queue vs
// compile vs execution, plus the wire traffic it generated.
type SlowQuery struct {
	Time      time.Time
	Tenant    string
	Statement string
	Rows      int
	QueueWait time.Duration
	Compile   time.Duration
	Exec      time.Duration
	Total     time.Duration
	WireBytes uint64
	// Path is how the request was satisfied: executed, result-hit, shared.
	Path string
}

// SlowLog writes one structured logfmt line per query slower than the
// threshold. Safe for concurrent use; a nil *SlowLog ignores all calls.
type SlowLog struct {
	mu     sync.Mutex
	w      io.Writer
	thresh time.Duration
	logged atomic.Uint64
}

// NewSlowLog creates a slow-query log. Queries with Total >= threshold
// are logged; threshold <= 0 returns nil (disabled).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if threshold <= 0 || w == nil {
		return nil
	}
	return &SlowLog{w: w, thresh: threshold}
}

// Observe logs q if it crossed the threshold; reports whether it did.
func (l *SlowLog) Observe(q SlowQuery) bool {
	if l == nil || q.Total < l.thresh {
		return false
	}
	ts := q.Time
	if ts.IsZero() {
		ts = time.Now()
	}
	line := fmt.Sprintf(
		"slowquery ts=%s tenant=%s stmt=%s path=%s rows=%d queue=%s compile=%s exec=%s total=%s wire_bytes=%d\n",
		ts.UTC().Format(time.RFC3339Nano), logfmtValue(q.Tenant), logfmtValue(q.Statement),
		logfmtValue(q.Path), q.Rows, q.QueueWait, q.Compile, q.Exec, q.Total, q.WireBytes)
	l.mu.Lock()
	_, err := io.WriteString(l.w, line)
	l.mu.Unlock()
	if err == nil {
		l.logged.Add(1)
	}
	return true
}

// Count returns how many queries have been logged.
func (l *SlowLog) Count() uint64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}

// logfmtValue quotes a value when it contains characters that would break
// the key=value grammar.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
