package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.AddDuration(3 * time.Nanosecond)
	c.AddDuration(-time.Second) // negative dropped: counters are monotonic
	if got := c.Value(); got != 45 {
		t.Fatalf("counter after AddDuration = %d, want 45", got)
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}

	// Registration is idempotent: same name returns the same handle.
	if r.Counter("test_events_total", "events") != c {
		t.Fatal("re-registering a counter returned a different handle")
	}

	// Vec series identity: same label values, same series.
	v := r.CounterVec("test_labeled_total", "labeled", "tenant")
	a1, a2 := v.With("alpha"), v.With("alpha")
	if a1 != a2 {
		t.Fatal("same label values returned different series")
	}
	a1.Inc()
	v.With("beta").Add(5)
	if a2.Value() != 1 || v.With("beta").Value() != 5 {
		t.Fatal("labeled series did not isolate values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Per-bucket (non-cumulative) counts: ≤0.01:1, ≤0.1:2, ≤1:1, +Inf:1.
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestMismatchedRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestSetEnabledGates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_gated_total", "gated")
	h := r.Histogram("test_gated_seconds", "gated", nil)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	SetEnabled(true)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled recording still moved: counter=%d hist=%d", c.Value(), h.Count())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not move")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
}

func TestOnCollectKeyedReplacement(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_hooked", "hooked")
	r.OnCollect("k", func() { g.Set(1) })
	r.OnCollect("k", func() { g.Set(2) }) // replaces, does not accumulate
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if g.Value() != 2 {
		t.Fatalf("hook gauge = %v, want 2 (replaced hook)", g.Value())
	}
}

// TestConcurrentHammer drives every metric type from many goroutines while
// a renderer scrapes — the -race CI job turns any unsynchronized access
// into a failure.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hammer_total", "hammer")
	v := r.CounterVec("test_hammer_labeled_total", "hammer", "worker")
	g := r.Gauge("test_hammer_depth", "hammer")
	h := r.HistogramVec("test_hammer_seconds", "hammer", nil, "worker")

	const goroutines = 8
	const iters = 2000
	var wg, scrape sync.WaitGroup
	stop := make(chan struct{})
	scrape.Add(1)
	go func() { // concurrent scraper
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	names := []string{"w0", "w1", "w2"}
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := v.With(names[id%len(names)])
			hist := h.With(names[id%len(names)])
			for j := 0; j < iters; j++ {
				c.Inc()
				mine.Inc()
				g.Add(1)
				g.Add(-1)
				hist.Observe(float64(j) * 1e-6)
			}
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		// ...while other goroutines create fresh series concurrently.
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				v.With(names[(id+j)%len(names)]).Inc()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrape.Wait()
	if got, want := c.Value(), uint64(goroutines*iters); got != want {
		t.Fatalf("hammered counter = %d, want %d", got, want)
	}
	var perSeries uint64
	for _, n := range names {
		perSeries += v.With(n).Value()
	}
	if want := uint64(goroutines*iters + goroutines*50); perSeries != want {
		t.Fatalf("labeled total = %d, want %d", perSeries, want)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0 after balanced adds", g.Value())
	}
}
