package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Span is one timed phase of a query on one server: queue, compile, a
// pipeline's execution, or an exchange finalize. Start is relative to the
// trace origin (admission time once the session shifts the trace;
// compile start for a bare cluster run).
type Span struct {
	Name  string         // human label ("compile", pipeline name, ...)
	Cat   string         // category: queue|compile|pipeline|exchange|exchange-finalize
	PID   int            // process track: server id, or the coordinator pid
	TID   int            // thread track within the process
	Start time.Duration  // offset from trace origin
	Dur   time.Duration  // span length
	Args  map[string]any // extra detail (morsels, rows, bytes, ...)
}

// Trace is the merged per-query trace: spans from every server plus the
// coordinator-side queue/compile phases, renderable as Chrome
// trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev).
type Trace struct {
	QueryID uint64
	// ControlPID is the synthetic "coordinator" process id (one past the
	// highest server id) that queue/compile spans render under.
	ControlPID int

	Spans   []Span
	procs   map[int]string
	threads map[[2]int]string
}

// NewTrace creates an empty trace for a query.
func NewTrace(queryID uint64) *Trace {
	return &Trace{
		QueryID: queryID,
		procs:   map[int]string{},
		threads: map[[2]int]string{},
	}
}

// SetProcessName names a pid track ("server 0", "coordinator").
func (t *Trace) SetProcessName(pid int, name string) { t.procs[pid] = name }

// SetThreadName names a tid track within a pid (the pipeline name).
func (t *Trace) SetThreadName(pid, tid int, name string) { t.threads[[2]int{pid, tid}] = name }

// Add appends a span.
func (t *Trace) Add(s Span) { t.Spans = append(t.Spans, s) }

// Shift moves every span later by d — the session uses it to make room
// for the admission-queue span at the front of the timeline.
func (t *Trace) Shift(d time.Duration) {
	for i := range t.Spans {
		t.Spans[i].Start += d
	}
}

// Spans in Chrome's trace_event JSON: "X" complete events with µs
// timestamps, plus metadata events naming the process/thread tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	DisplayUnit string         `json:"displayTimeUnit"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// WriteChromeJSON renders the trace as Chrome trace_event JSON.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	// Iterate the metadata maps in sorted-key order: sorting the built
	// events afterwards looked deterministic but was not — process_name
	// and thread_name entries tie on (PID, TID=0) and sort.Slice is
	// unstable, so the JSON byte order flipped between runs.
	evs := make([]chromeEvent, 0, len(t.Spans)+len(t.procs)+len(t.threads))
	pids := make([]int, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": t.procs[pid]},
		})
	}
	tkeys := make([][2]int, 0, len(t.threads))
	for key := range t.threads {
		tkeys = append(tkeys, key)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, key := range tkeys {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: key[0], TID: key[1],
			Args: map[string]any{"name": t.threads[key]},
		})
	}
	spans := append([]Span(nil), t.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur // containing span first
	})
	for _, s := range spans {
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS:  float64(s.Start) / float64(time.Microsecond),
			Dur: float64(s.Dur) / float64(time.Microsecond),
			PID: s.PID, TID: s.TID, Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents: evs,
		DisplayUnit: "ms",
		Metadata:    map[string]any{"queryID": t.QueryID},
	})
}

// SpanCount returns how many spans carry the given category.
func (t *Trace) SpanCount(cat string) int {
	n := 0
	for _, s := range t.Spans {
		if s.Cat == cat {
			n++
		}
	}
	return n
}

// End returns the trace's total extent (max span end offset).
func (t *Trace) End() time.Duration {
	var end time.Duration
	for _, s := range t.Spans {
		if e := s.Start + s.Dur; e > end {
			end = e
		}
	}
	return end
}
