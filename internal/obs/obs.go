// Package obs is the engine's dependency-free observability core: a
// metrics registry of atomic counters, gauges and fixed-bucket histograms
// (optionally labeled), a Prometheus-text-format exposition handler, a
// per-query span tracer that renders Chrome trace_event JSON, and a
// structured slow-query log.
//
// Design constraints, in order:
//
//  1. Hot-path cost must be one atomic op per event (a morsel dispatch, a
//     wire send). No locks, no allocation: callers hold on to metric
//     handles (*Counter, *Gauge, *Histogram) obtained once at package
//     init, and labeled families resolve their series once per label set.
//  2. No third-party dependencies — the package stands on sync/atomic and
//     the standard library only, so every internal package may import it.
//  3. A single process hosts a whole simulated cluster (N server nodes),
//     so the Default registry aggregates across nodes exactly like a real
//     deployment's per-process exporter would.
//
// All recording is gated on Enabled (an atomic bool, default true):
// SetEnabled(false) turns every Add/Set/Observe into a cheap no-op, which
// is the `-noobs` ablation used to bound instrumentation overhead.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates all recording. Exposition still works when disabled; the
// numbers just stop moving.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns recording on or off process-wide (the -noobs ablation).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// MetricType is the exposition TYPE of a family.
type MetricType string

// Exposition metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets are the default latency buckets in seconds: 0.5ms … 10s,
// wide enough for admission waits under saturation and tight enough to
// resolve sub-millisecond cache hits.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    map[string]func()
}

// family is one named metric family: all series sharing a name, help
// string, type and label names.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	fn     func() float64 // GaugeFunc families evaluate at collection

	mu     sync.Mutex
	series map[string]*seriesEntry
}

type seriesEntry struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		hooks:    map[string]func(){},
	}
}

var def = NewRegistry()

// Default is the process-wide registry every package-level metric
// registers into (the analogue of a client library's default registerer).
func Default() *Registry { return def }

// OnCollect registers a hook run at the start of every exposition, keyed
// so that re-registration under the same key replaces the previous hook
// instead of accumulating (a reconstructed server re-binds its snapshot
// hook without leaking the old instance). Hooks set point-in-time gauges
// from state that is too expensive or too racy to maintain per event
// (queue depths, cache occupancy, latency percentiles).
func (r *Registry) OnCollect(key string, fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks[key] = fn
}

// familyFor returns the named family, creating it on first registration.
// Re-registering with the same name is idempotent; changing the type or
// label names of an existing family is a programming error and panics.
func (r *Registry) familyFor(name, help string, typ MetricType, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), series: map[string]*seriesEntry{}}
	r.families[name] = f
	return f
}

// seriesKey joins label values into a map key. \x1f never appears in
// sane label values; collisions would only merge two series, never crash.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) entry(values []string, buckets []float64) *seriesEntry {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.series[key]; ok {
		return e
	}
	e := &seriesEntry{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case TypeCounter:
		e.counter = &Counter{}
	case TypeGauge:
		e.gauge = &Gauge{}
	case TypeHistogram:
		e.hist = newHistogram(buckets)
	}
	f.series[key] = e
	return e
}

// --- Counter ---

// Counter is a monotonically increasing uint64. Durations accumulate in
// nanoseconds under a `_nanoseconds_total` name so the hot path stays one
// integer atomic add.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates d as nanoseconds (negative durations are
// dropped: a counter must not regress).
func (c *Counter) AddDuration(d time.Duration) {
	if d > 0 {
		c.Add(uint64(d))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, TypeCounter, nil).entry(nil, nil).counter
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.familyFor(name, help, TypeCounter, labels)}
}

// With returns the series for the label values, creating it on first use.
// Callers on hot paths should cache the returned handle.
func (v *CounterVec) With(values ...string) *Counter { return v.f.entry(values, nil).counter }

// --- Gauge ---

// Gauge is a float64 that can go up and down (stored as atomic bits).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(mathFloat64bits(v))
}

// Add adds delta (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(delta float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		newV := mathFloat64frombits(old) + delta
		if g.bits.CompareAndSwap(old, mathFloat64bits(newV)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return mathFloat64frombits(g.bits.Load())
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, TypeGauge, nil).entry(nil, nil).gauge
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.familyFor(name, help, TypeGauge, labels)}
}

// With returns the series for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.entry(values, nil).gauge }

// GaugeFunc registers a gauge whose value is computed by fn at every
// exposition (cheap derived values like a queue length accessor).
// Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, TypeGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// --- Histogram ---

// Histogram counts observations into fixed cumulative-at-render buckets
// plus a running sum. Observation and bucket bounds are in seconds for
// latency histograms (use Observe(d.Seconds()) or ObserveDuration).
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		newV := mathFloat64frombits(old) + v
		if h.sum.CompareAndSwap(old, mathFloat64bits(newV)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return mathFloat64frombits(h.sum.Load())
}

// Histogram registers (or returns) an unlabeled histogram. buckets nil
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.familyFor(name, help, TypeHistogram, nil).entry(nil, buckets).hist
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.familyFor(name, help, TypeHistogram, labels), buckets: buckets}
}

// With returns the series for the label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.entry(values, v.buckets).hist
}

// --- snapshot (used by the renderer and by tests) ---

// Sample is one exposed time series value. Histograms expose their
// buckets/sum/count through the Buckets/Sum/Count fields instead of
// Value.
type Sample struct {
	Name    string
	Labels  map[string]string
	Value   float64
	IsHist  bool
	Bounds  []float64 // histogram upper bounds (without +Inf)
	Buckets []uint64  // cumulative counts per bound, then +Inf total
	Sum     float64
	Count   uint64
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// runHooks runs the collect hooks (outside the registry lock: hooks set
// gauges, which take family locks).
func (r *Registry) runHooks() {
	r.mu.Lock()
	keys := make([]string, 0, len(r.hooks))
	for k := range r.hooks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fns := make([]func(), len(keys))
	for i, k := range keys {
		fns[i] = r.hooks[k]
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// float helpers: readable aliases over math's bit conversions.

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
