package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite exposition golden files")

// goldenRegistry builds a deterministic registry exercising every
// exposition feature: unlabeled and labeled counters, gauges, a
// GaugeFunc, label-value escaping, and a multi-bucket histogram.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("hsqp_test_requests_total", "Requests served.")
	c.Add(1234)

	v := r.CounterVec("hsqp_test_tenant_requests_total", "Per-tenant requests.", "tenant")
	v.With("heavy").Add(40)
	v.With("light").Add(10)
	v.With("we\"ird\\te\nnant").Add(1)

	g := r.Gauge("hsqp_test_queue_depth", "Current queue depth.")
	g.Set(3)
	r.GaugeVec("hsqp_test_p99_seconds", "Tenant p99.", "tenant").With("heavy").Set(0.0125)
	r.GaugeFunc("hsqp_test_workers", "Worker pool size.", func() float64 { return 12 })

	h := r.Histogram("hsqp_test_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1, 1})
	for _, s := range []float64{0.0005, 0.004, 0.004, 0.05, 0.2, 3} {
		h.Observe(s)
	}
	return r
}

func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionInvariants checks the structural rules scrapers depend on,
// independent of the golden bytes: HELP/TYPE precede every family, bucket
// counts are cumulative and end at +Inf == _count.
func TestExpositionInvariants(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	for _, ln := range lines {
		if rest, ok := strings.CutPrefix(ln, "# HELP "); ok {
			seenHelp[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(ln, "# TYPE "); ok {
			seenType[strings.Fields(rest)[0]] = true
			continue
		}
		name := ln
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !seenHelp[base] || !seenType[base] {
			t.Errorf("sample %q not preceded by HELP/TYPE for %q", ln, base)
		}
	}

	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("rendered text does not parse: %v", err)
	}
	ss := NewSampleSet(samples)
	// Histogram invariants: cumulative buckets, +Inf bucket == count.
	var prev float64
	for _, le := range []string{"0.001", "0.01", "0.1", "1", "+Inf"} {
		v, ok := ss.Value("hsqp_test_latency_seconds_bucket", map[string]string{"le": le})
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v < prev {
			t.Fatalf("bucket le=%s = %v not cumulative (prev %v)", le, v, prev)
		}
		prev = v
	}
	count, _ := ss.Value("hsqp_test_latency_seconds_count", nil)
	if count != 6 || prev != 6 {
		t.Fatalf("count = %v, +Inf bucket = %v, want 6", count, prev)
	}
	sum, _ := ss.Value("hsqp_test_latency_seconds_sum", nil)
	if want := 0.0005 + 0.004 + 0.004 + 0.05 + 0.2 + 3; math.Abs(sum-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	// Escaped label round-trips through the parser.
	if v, ok := ss.Value("hsqp_test_tenant_requests_total", map[string]string{"tenant": "we\"ird\\te\nnant"}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: v=%v ok=%v", v, ok)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`unterminated{tenant="x 1` + "\n",
		"name not-a-number\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
}

func TestSampleSetQueries(t *testing.T) {
	text := "a_total{t=\"x\"} 1\na_total{t=\"y\"} 2\nb 5\n"
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSampleSet(samples)
	if ss.Sum("a_total") != 3 {
		t.Fatalf("Sum = %v, want 3", ss.Sum("a_total"))
	}
	if v, ok := ss.Value("a_total", map[string]string{"t": "y"}); !ok || v != 2 {
		t.Fatalf("Value(t=y) = %v,%v", v, ok)
	}
	if got := ss.LabelValues("a_total", "t"); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("LabelValues = %v", got)
	}
}
