package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParsedSample is one time series scraped back out of exposition text.
// Histogram `_bucket`/`_sum`/`_count` series appear as plain samples
// under their suffixed names (with `le` as an ordinary label) — enough
// for `hsqp top` and for round-trip tests; this is a scraper, not a full
// client library.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses Prometheus text exposition into samples, skipping
// comments and blank lines. Unparseable lines are an error (the daemon
// emits this format itself; garbage means a real bug).
func ParseText(r io.Reader) ([]ParsedSample, error) {
	var out []ParsedSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; we never emit
	// one, but tolerate it.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		into[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// SampleSet indexes parsed samples for lookup by name (+ optional single
// label match). It is the query API `hsqp top` works against.
type SampleSet struct{ samples []ParsedSample }

// NewSampleSet wraps parsed samples.
func NewSampleSet(samples []ParsedSample) *SampleSet { return &SampleSet{samples: samples} }

// Value returns the first sample with the given name whose labels are a
// superset of want (nil matches anything), and whether one exists.
func (ss *SampleSet) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range ss.samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample with the given name (all label sets).
func (ss *SampleSet) Sum(name string) float64 {
	var sum float64
	for _, s := range ss.samples {
		if s.Name == name {
			sum += s.Value
		}
	}
	return sum
}

// LabelValues returns the distinct values of one label across samples
// with the given name, in first-seen order.
func (ss *SampleSet) LabelValues(name, label string) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range ss.samples {
		if s.Name != name {
			continue
		}
		v, ok := s.Labels[label]
		if !ok || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
