package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): one `# HELP` / `# TYPE` pair per family, series sorted
// by label values, histograms expanded into cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Collect hooks run first so snapshot
// gauges are fresh.
func (r *Registry) WriteText(w io.Writer) error {
	r.runHooks()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if err := f.writeText(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) writeText(w *bufio.Writer) error {
	f.mu.Lock()
	fn := f.fn
	entries := make([]*seriesEntry, 0, len(f.series))
	for _, e := range f.series {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	if len(entries) == 0 && fn == nil {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		return seriesKey(entries[i].labelValues) < seriesKey(entries[j].labelValues)
	})

	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return nil
	}
	for _, e := range entries {
		lbl := labelString(f.labels, e.labelValues, "", "")
		switch f.typ {
		case TypeCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, e.counter.Value())
		case TypeGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, lbl, formatFloat(e.gauge.Value()))
		case TypeHistogram:
			h := e.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, e.labelValues, "le", formatFloat(bound)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, e.labelValues, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, lbl, formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, lbl, cum)
		}
	}
	return w.Flush()
}

// labelString renders {k1="v1",...}, appending an extra pair (the
// histogram `le` bound) when extraKey is non-empty. Returns "" for no
// labels.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(extraVal)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, integers without a trailing ".0".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as
// text/plain exposition (mount at /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
