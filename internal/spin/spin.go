// Package spin provides calibrated CPU busy-work used by the simulation
// layers to charge modeled CPU cost (TCP stack processing, QPI stalls,
// memory-region registration) against real cores, so that modeled overhead
// genuinely competes with query processing for CPU time.
package spin

import "time"

// sleepSlack is spun rather than slept at the end of long burns: the host
// kernel's sleep granularity overshoots by up to ~2 ms.
const sleepSlack = 3 * time.Millisecond

// Burn occupies the calling goroutine's core until d has elapsed. Burns up
// to a few milliseconds spin the whole duration — they model CPU the
// component genuinely consumes; longer burns sleep most of it.
func Burn(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for {
		rest := time.Until(deadline)
		if rest <= 0 {
			return
		}
		if rest > 2*sleepSlack {
			time.Sleep(rest - sleepSlack)
			continue
		}
		for time.Now().Before(deadline) {
		}
		return
	}
}
