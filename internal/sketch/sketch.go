// Package sketch implements the Space-Saving heavy-hitter sketch
// (Metwally, Agrawal, El Abbadi: "Efficient Computation of Frequent and
// Top-k Elements in Data Streams") used by the adaptive skew handling of
// the distributed join: the send-side exchange samples the join-key hashes
// of the first morsels through a small fixed-size sketch, the per-server
// sketches are merged, and keys whose estimated global frequency exceeds a
// threshold are switched from hash partitioning to selective broadcast
// (Flow-Join style detection, cf. Rödiger et al.).
//
// The sketch maintains k counters. An observed item that already has a
// counter increments it; otherwise, if a counter is free it is claimed;
// otherwise the minimum counter is evicted and overwritten with
// count = min+1 and error = min. Guarantees: for every item,
// count ≥ true frequency (within the observed stream) and
// count − err ≤ true frequency, and any item with true frequency
// > Total/k is guaranteed to hold a counter.
package sketch

import "sort"

// Entry is one tracked item with its estimated count and maximum
// overestimation error.
type Entry struct {
	Item  uint32
	Count uint64
	Err   uint64
}

// SpaceSaving is a fixed-size top-k frequency sketch over uint32 items
// (the exchange feeds it CRC32 key hashes). Not safe for concurrent use;
// callers synchronize externally.
type SpaceSaving struct {
	k       int
	idx     map[uint32]int // item → position in entries
	entries []Entry
	total   uint64
}

// New creates a sketch with k counters. k must be positive.
func New(k int) *SpaceSaving {
	if k <= 0 {
		panic("sketch: SpaceSaving needs k > 0")
	}
	return &SpaceSaving{k: k, idx: make(map[uint32]int, k)}
}

// K returns the number of counters.
func (s *SpaceSaving) K() int { return s.k }

// Total returns the number of observations.
func (s *SpaceSaving) Total() uint64 { return s.total }

// Observe counts one occurrence of item.
func (s *SpaceSaving) Observe(item uint32) { s.ObserveN(item, 1) }

// ObserveN counts n occurrences of item.
func (s *SpaceSaving) ObserveN(item uint32, n uint64) {
	if n == 0 {
		return
	}
	s.total += n
	if i, ok := s.idx[item]; ok {
		s.entries[i].Count += n
		return
	}
	if len(s.entries) < s.k {
		s.idx[item] = len(s.entries)
		s.entries = append(s.entries, Entry{Item: item, Count: n})
		return
	}
	// Evict the minimum counter (linear scan: k is small).
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].Count < s.entries[min].Count {
			min = i
		}
	}
	old := s.entries[min]
	delete(s.idx, old.Item)
	s.idx[item] = min
	s.entries[min] = Entry{Item: item, Count: old.Count + n, Err: old.Count}
}

// Entries returns the tracked items ordered by descending estimated count
// (ties broken by item value for determinism).
func (s *SpaceSaving) Entries() []Entry {
	out := make([]Entry, len(s.entries))
	copy(out, s.entries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Estimate returns the estimated count of item (0 if untracked).
func (s *SpaceSaving) Estimate(item uint32) uint64 {
	if i, ok := s.idx[item]; ok {
		return s.entries[i].Count
	}
	return 0
}
