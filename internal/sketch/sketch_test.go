package sketch

import (
	"testing"
)

// zipfStream deterministically generates a skewed stream: item i appears
// weight(i) times, weight decaying geometrically for the head plus a long
// uniform tail.
func zipfStream() (stream []uint32, freq map[uint32]int) {
	freq = map[uint32]int{}
	var out []uint32
	emit := func(item uint32, n int) {
		for i := 0; i < n; i++ {
			out = append(out, item)
		}
		freq[item] += n
	}
	// Head: 8 heavy items.
	for i := 0; i < 8; i++ {
		emit(uint32(1000+i), 4096>>i)
	}
	// Tail: 500 items, 3 occurrences each.
	for i := 0; i < 500; i++ {
		emit(uint32(2000+i), 3)
	}
	// Deterministic interleave so heavy items are not contiguous.
	rng := uint64(12345)
	for i := len(out) - 1; i > 0; i-- {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		j := int(rng % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out, freq
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	stream, freq := zipfStream()
	s := New(64)
	for _, it := range stream {
		s.Observe(it)
	}
	if s.Total() != uint64(len(stream)) {
		t.Fatalf("total %d, want %d", s.Total(), len(stream))
	}
	// Every item with frequency > Total/k must be tracked, with
	// true ≤ count ≤ true + err.
	thresh := s.Total() / uint64(s.K())
	for item, f := range freq {
		if uint64(f) <= thresh {
			continue
		}
		est := s.Estimate(item)
		if est == 0 {
			t.Fatalf("heavy item %d (freq %d > %d) not tracked", item, f, thresh)
		}
		if est < uint64(f) {
			t.Fatalf("item %d estimate %d below true frequency %d", item, est, f)
		}
	}
	// The guarantees count ≥ true and count − err ≤ true hold for all
	// tracked items.
	for _, e := range s.Entries() {
		true_ := uint64(freq[e.Item])
		if e.Count < true_ {
			t.Fatalf("item %d count %d < true %d", e.Item, e.Count, true_)
		}
		if e.Count-e.Err > true_ {
			t.Fatalf("item %d lower bound %d > true %d", e.Item, e.Count-e.Err, true_)
		}
	}
	// The top-4 by estimate must be the true top-4 (well separated here).
	ents := s.Entries()
	for i := 0; i < 4; i++ {
		if ents[i].Item != uint32(1000+i) {
			t.Fatalf("rank %d is item %d, want %d", i, ents[i].Item, 1000+i)
		}
	}
}

func TestSpaceSavingExactBelowCapacity(t *testing.T) {
	s := New(16)
	for i := 0; i < 10; i++ {
		s.ObserveN(uint32(i), uint64(i+1))
	}
	for i := 0; i < 10; i++ {
		if got := s.Estimate(uint32(i)); got != uint64(i+1) {
			t.Fatalf("item %d estimate %d, want exact %d", i, got, i+1)
		}
	}
	for _, e := range s.Entries() {
		if e.Err != 0 {
			t.Fatalf("no eviction happened, but item %d has err %d", e.Item, e.Err)
		}
	}
}

func TestSpaceSavingDeterministicOrder(t *testing.T) {
	a, b := New(8), New(8)
	for i := 0; i < 100; i++ {
		a.Observe(uint32(i % 12))
		b.Observe(uint32(i % 12))
	}
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		t.Fatal("entry count differs")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}
