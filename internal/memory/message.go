// Package memory implements the message buffers and NUMA-aware registered
// message pools of the communication multiplexer (Figure 7 of the paper).
//
// A message has two parts. The first part stays local: the RDMA memory
// key, the NUMA node the buffer lives on and a retain count (used by
// broadcast exchange operators to send one buffer to n−1 servers without
// copying it). Only the second part crosses the network: the identifier of
// the logical exchange operator, a last-message indicator, the number of
// bytes used and the serialized tuples.
//
// Buffers are pooled per NUMA node. Registering a memory region with the
// HCA is expensive (§2.2.2), so buffers are registered once when first
// allocated and then recycled through the pool instead of being freed.
package memory

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hsqp/internal/numa"
)

// DefaultMessageSize is the paper's message size: 512 KB amortizes the
// synchronization cost of network scheduling completely (Figure 10(c)).
const DefaultMessageSize = 512 * 1024

// HeaderSize is the wire overhead per message: query id (4), exchange id
// (4), flags (1), bytes used (4), sender (2), sequence (4), partition (2).
const HeaderSize = 21

// Message is a pooled, "registered" network buffer.
type Message struct {
	// Local part (never serialized).
	RDMAKey uint32    // simulated memory-region key
	Node    numa.Node // home NUMA node of the buffer
	retain  atomic.Int32

	// Wire part.
	QueryID    int32 // query the exchange belongs to (multi-query routing)
	ExchangeID int32 // logical exchange operator this message belongs to
	Last       bool  // last message from this sender for this exchange
	Sender     int   // originating server
	Seq        uint32
	// Part routes a message to a specific parallel unit (worker) on the
	// destination server in the classic exchange-operator model; −1 means
	// "any worker" (hybrid parallelism).
	Part    int16
	Content []byte // serialized tuples; len(Content) is "bytes used"

	pool *NodePool // owning pool, for recycling
	cap  int
}

// WireSize returns the number of bytes the message occupies on the network:
// only the used part of a partially filled message is sent (§3.2).
func (m *Message) WireSize() int { return HeaderSize + len(m.Content) }

// Capacity returns the fixed capacity of the underlying buffer.
func (m *Message) Capacity() int { return m.cap }

// Remaining returns how many content bytes still fit.
func (m *Message) Remaining() int { return m.cap - len(m.Content) }

// Retain increments the reference count. Broadcast exchange operators
// retain a message once per additional destination so the buffer is reused
// rather than copied (§3.2).
func (m *Message) Retain(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("memory: Retain(%d)", n))
	}
	m.retain.Add(int32(n))
}

// Release decrements the reference count and recycles the buffer into its
// NUMA-local pool when it reaches zero.
func (m *Message) Release() {
	r := m.retain.Add(-1)
	switch {
	case r > 0:
		return
	case r < 0:
		panic("memory: message released more often than retained")
	}
	if m.pool != nil {
		m.pool.put(m)
	}
}

// RefCount returns the current retain count (for tests).
func (m *Message) RefCount() int32 { return m.retain.Load() }

// Reset clears the wire part for reuse.
func (m *Message) Reset() {
	m.QueryID = 0
	m.ExchangeID = 0
	m.Last = false
	m.Sender = 0
	m.Seq = 0
	m.Part = -1
	m.Content = m.Content[:0]
}

// PoolStats describes pool behaviour: how many buffers were newly
// allocated+registered versus recycled.
type PoolStats struct {
	Allocated uint64 // fresh allocations (each pays registration cost)
	Recycled  uint64 // reuses from the pool
	Returned  uint64 // buffers put back
}

// Pool is a set of per-NUMA-node message pools for one server.
type Pool struct {
	topo    *numa.Topology
	policy  numa.AllocPolicy
	msgSize int
	nodes   []*NodePool

	registerCost  func() // charged per fresh allocation (may be nil)
	nextKey       atomic.Uint32
	interleaveIdx atomic.Uint64
}

// NodePool is the free list of a single NUMA node.
type NodePool struct {
	parent *Pool
	node   numa.Node
	mu     sync.Mutex
	free   []*Message
	stats  PoolStats
}

// NewPool creates a message pool for a server with the given topology and
// allocation policy. msgSize ≤ 0 selects DefaultMessageSize. registerCost,
// if non-nil, is invoked once per fresh buffer to model memory-region
// registration (pinning) cost.
func NewPool(topo *numa.Topology, policy numa.AllocPolicy, msgSize int, registerCost func()) *Pool {
	if msgSize <= 0 {
		msgSize = DefaultMessageSize
	}
	p := &Pool{
		topo:         topo,
		policy:       policy,
		msgSize:      msgSize,
		registerCost: registerCost,
	}
	p.nodes = make([]*NodePool, topo.Sockets)
	for i := range p.nodes {
		p.nodes[i] = &NodePool{parent: p, node: numa.Node(i)}
	}
	return p
}

// MessageSize returns the configured buffer capacity.
func (p *Pool) MessageSize() int { return p.msgSize }

// Policy returns the pool's allocation policy.
func (p *Pool) Policy() numa.AllocPolicy { return p.policy }

// Get returns an empty message for a worker pinned to socket local. The
// buffer's home node follows the pool's allocation policy; under
// AllocLocal it is NUMA-local to the worker (step 4 in Figure 7).
func (p *Pool) Get(local numa.Node) *Message {
	if p.policy == numa.AllocInterleaved {
		n := p.interleaveIdx.Add(1)
		m := p.nodes[int(n)%len(p.nodes)].get()
		m.Node = numa.NodeInterleaved
		return m
	}
	node := p.topo.AllocNode(p.policy, local)
	return p.nodes[node].get()
}

// GetOn returns an empty message for the receive queue of the given
// socket. NUMA-aware pools home it there; interleaved pools spread its
// pages; single-socket pools always allocate on socket 0 (Figure 9's
// degraded policies).
func (p *Pool) GetOn(node numa.Node) *Message {
	switch p.policy {
	case numa.AllocInterleaved:
		m := p.nodes[int(node)%len(p.nodes)].get()
		m.Node = numa.NodeInterleaved
		return m
	case numa.AllocSingleSocket:
		return p.nodes[0].get()
	default:
		return p.nodes[node].get()
	}
}

// Stats aggregates statistics over all node pools.
func (p *Pool) Stats() PoolStats {
	var out PoolStats
	for _, np := range p.nodes {
		np.mu.Lock()
		out.Allocated += np.stats.Allocated
		out.Recycled += np.stats.Recycled
		out.Returned += np.stats.Returned
		np.mu.Unlock()
	}
	return out
}

func (np *NodePool) get() *Message {
	np.mu.Lock()
	if n := len(np.free); n > 0 {
		m := np.free[n-1]
		np.free = np.free[:n-1]
		np.stats.Recycled++
		np.mu.Unlock()
		m.Reset()
		m.Node = np.node
		m.retain.Store(1)
		return m
	}
	np.stats.Allocated++
	np.mu.Unlock()

	p := np.parent
	if p.registerCost != nil {
		p.registerCost()
	}
	m := &Message{
		RDMAKey: p.nextKey.Add(1),
		Node:    np.node,
		Part:    -1,
		Content: make([]byte, 0, p.msgSize),
		pool:    np,
		cap:     p.msgSize,
	}
	m.retain.Store(1)
	return m
}

func (np *NodePool) put(m *Message) {
	m.Reset()
	np.mu.Lock()
	np.stats.Returned++
	np.free = append(np.free, m)
	np.mu.Unlock()
}

// Get0 returns an empty message homed on socket 0 (convenience for
// benchmarks and single-socket callers).
func (p *Pool) Get0() *Message { return p.Get(0) }
