package memory

import (
	"sync"
	"testing"

	"hsqp/internal/numa"
)

func TestPoolReuse(t *testing.T) {
	registrations := 0
	p := NewPool(numa.TwoSocket(), numa.AllocLocal, 1024, func() { registrations++ })
	m := p.Get(0)
	if m.Capacity() != 1024 {
		t.Fatalf("capacity %d", m.Capacity())
	}
	m.Content = append(m.Content, 1, 2, 3)
	m.Release()
	m2 := p.Get(0)
	if registrations != 1 {
		t.Fatalf("registered %d regions, want 1 (reuse)", registrations)
	}
	if len(m2.Content) != 0 {
		t.Fatal("recycled message not reset")
	}
	st := p.Stats()
	if st.Allocated != 1 || st.Recycled != 1 || st.Returned != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolNUMAHoming(t *testing.T) {
	topo := numa.TwoSocket()
	p := NewPool(topo, numa.AllocLocal, 1024, nil)
	if m := p.Get(1); m.Node != 1 {
		t.Fatalf("local policy: node %d, want 1", m.Node)
	}
	if m := p.GetOn(0); m.Node != 0 {
		t.Fatalf("GetOn(0): node %d", m.Node)
	}
	single := NewPool(topo, numa.AllocSingleSocket, 1024, nil)
	if m := single.Get(1); m.Node != 0 {
		t.Fatalf("single-socket policy: node %d, want 0", m.Node)
	}
	if m := single.GetOn(1); m.Node != 0 {
		t.Fatalf("single-socket GetOn: node %d, want 0", m.Node)
	}
	il := NewPool(topo, numa.AllocInterleaved, 1024, nil)
	if m := il.Get(0); m.Node != numa.NodeInterleaved {
		t.Fatalf("interleaved policy: node %d, want %d", m.Node, numa.NodeInterleaved)
	}
	// Recycled interleaved buffers must get a proper home again under a
	// different acquisition path.
	m := il.GetOn(1)
	if m.Node != numa.NodeInterleaved {
		t.Fatalf("interleaved GetOn: node %d", m.Node)
	}
	m.Release()
}

func TestRetainRelease(t *testing.T) {
	p := NewPool(numa.TwoSocket(), numa.AllocLocal, 512, nil)
	m := p.Get(0)
	m.Retain(2) // 3 references total
	m.Release()
	m.Release()
	if got := p.Stats().Returned; got != 0 {
		t.Fatalf("message returned while still referenced (returned=%d)", got)
	}
	m.Release()
	if got := p.Stats().Returned; got != 1 {
		t.Fatalf("message not returned at refcount 0 (returned=%d)", got)
	}
}

func TestOverReleasePanics(t *testing.T) {
	p := NewPool(numa.TwoSocket(), numa.AllocLocal, 512, nil)
	m := p.Get(0)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m.Release()
}

func TestWireSize(t *testing.T) {
	p := NewPool(numa.TwoSocket(), numa.AllocLocal, 512, nil)
	m := p.Get(0)
	if m.WireSize() != HeaderSize {
		t.Fatalf("empty wire size %d", m.WireSize())
	}
	m.Content = append(m.Content, make([]byte, 100)...)
	if m.WireSize() != HeaderSize+100 {
		t.Fatalf("wire size %d", m.WireSize())
	}
	if m.Remaining() != 412 {
		t.Fatalf("remaining %d", m.Remaining())
	}
}

func TestPoolConcurrency(t *testing.T) {
	p := NewPool(numa.TwoSocket(), numa.AllocLocal, 256, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m := p.Get(numa.Node(g % 2))
				m.Content = append(m.Content, byte(i))
				m.Release()
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Returned != 8000 {
		t.Fatalf("returned %d, want 8000", st.Returned)
	}
}
