package storage

import "fmt"

// Batch is a set of equal-length columns with a schema: the unit of data
// flowing between operators and (serialized) between servers.
type Batch struct {
	Schema *Schema
	Cols   []*Column
}

// NewBatch creates an empty batch for a schema with a capacity hint.
func NewBatch(schema *Schema, capacity int) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Column, schema.Len())}
	for i, f := range schema.Fields {
		b.Cols[i] = NewColumn(f.Type, f.Nullable, capacity)
	}
	return b
}

// Rows returns the number of rows in the batch.
func (b *Batch) Rows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// AppendRow appends a row given as Go values (nil = NULL).
func (b *Batch) AppendRow(vals ...any) {
	if len(vals) != len(b.Cols) {
		panic(fmt.Sprintf("storage: AppendRow got %d values for %d columns", len(vals), len(b.Cols)))
	}
	for i, v := range vals {
		b.Cols[i].AppendValue(v)
	}
}

// AppendRowFrom appends row i of src, which must share the schema shape.
func (b *Batch) AppendRowFrom(src *Batch, i int) {
	for c := range b.Cols {
		b.Cols[c].AppendFrom(src.Cols[c], i)
	}
}

// Row materializes row i as Go values (tests, reference engine).
func (b *Batch) Row(i int) []any {
	out := make([]any, len(b.Cols))
	for c, col := range b.Cols {
		out[c] = col.Value(i)
	}
	return out
}

// Reset truncates all columns, keeping capacity.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
}

// Validate checks the batch invariants: equal column lengths, types
// matching the schema.
func (b *Batch) Validate() error {
	if len(b.Cols) != b.Schema.Len() {
		return fmt.Errorf("storage: batch has %d columns, schema %d", len(b.Cols), b.Schema.Len())
	}
	n := b.Rows()
	for i, c := range b.Cols {
		if c.Len() != n {
			return fmt.Errorf("storage: column %d has %d rows, expected %d", i, c.Len(), n)
		}
		if c.Type != b.Schema.Fields[i].Type {
			return fmt.Errorf("storage: column %d is %v, schema says %v", i, c.Type, b.Schema.Fields[i].Type)
		}
	}
	return nil
}
