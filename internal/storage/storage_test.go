package storage

import (
	"testing"
	"testing/quick"
)

func TestDecimalRoundTrip(t *testing.T) {
	cases := map[float64]int64{
		0:       0,
		1.5:     150,
		-1.5:    -150,
		999.99:  99999,
		-999.99: -99999,
	}
	for f, want := range cases {
		if got := Decimal(f); got != want {
			t.Errorf("Decimal(%v) = %d, want %d", f, got, want)
		}
	}
	if DecimalFloat(150) != 1.5 {
		t.Errorf("DecimalFloat(150) = %v", DecimalFloat(150))
	}
}

func TestDates(t *testing.T) {
	d := MustDate("1995-06-17")
	if FormatDate(d) != "1995-06-17" {
		t.Fatalf("round trip: %s", FormatDate(d))
	}
	if DateYear(d) != 1995 {
		t.Fatalf("year: %d", DateYear(d))
	}
	if MustDate("1992-01-01") >= MustDate("1998-12-31") {
		t.Fatal("date ordering broken")
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("ParseDate should reject garbage")
	}
	// dbgen boundary: 1998-12-01 − 90 days = 1998-09-02 (Q1).
	if got := FormatDate(MustDate("1998-12-01") - 90); got != "1998-09-02" {
		t.Fatalf("Q1 cutoff: %s", got)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"forest green", "forest%", true},
		{"dark forest", "forest%", false},
		{"a special kind of requests", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"PROMO BURNISHED TIN", "PROMO%", true},
		{"anything", "%", true},
		{"", "%", true},
		{"STANDARD BRASS", "%BRASS", true},
		{"BRASS PLATED", "%BRASS", false},
		{"Customer complains about Complaints", "%Customer%Complaints%", true},
		{"abc", "abc", true},
		{"abcd", "abc", false},
		{"xabcx", "%abc%", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.pat); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// %s% always matches any string containing s.
	f := func(prefix, needle, suffix string) bool {
		return MatchLike(prefix+needle+suffix, "%"+escapeFree(needle)+"%") ||
			needle != escapeFree(needle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// escapeFree drops % from a random string (patterns treat it as magic).
func escapeFree(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func TestPartitionOfRange(t *testing.T) {
	f := func(h uint32, n8 uint8) bool {
		n := int(n8%32) + 1
		p := PartitionOf(h, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	// Sequential keys must spread evenly over partitions.
	const n = 8
	counts := make([]int, n)
	for k := int64(0); k < 80000; k++ {
		counts[PartitionOf(HashI64(k), n)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("partition %d has %d of 80000 keys (want ~10000)", i, c)
		}
	}
}

func TestHashRowDeterminism(t *testing.T) {
	s := NewSchema(
		Field{Name: "a", Type: TInt64},
		Field{Name: "b", Type: TString},
	)
	b := NewBatch(s, 4)
	b.AppendRow(int64(1), "x")
	b.AppendRow(int64(1), "x")
	b.AppendRow(int64(1), "y")
	if HashRow(b, []int{0, 1}, 0) != HashRow(b, []int{0, 1}, 1) {
		t.Fatal("equal rows hash differently")
	}
	if HashRow(b, []int{0, 1}, 0) == HashRow(b, []int{0, 1}, 2) {
		t.Fatal("suspicious collision on differing rows")
	}
	if HashRow(b, nil, 0) != 0 {
		t.Fatal("empty key hash must be constant")
	}
}

func TestBatchAppendAndValidate(t *testing.T) {
	s := NewSchema(
		Field{Name: "k", Type: TInt64},
		Field{Name: "v", Type: TString},
		Field{Name: "d", Type: TDecimal, Nullable: true},
	)
	b := NewBatch(s, 2)
	b.AppendRow(int64(1), "a", int64(100))
	b.AppendRow(int64(2), "b", nil)
	if b.Rows() != 2 {
		t.Fatalf("rows = %d", b.Rows())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.Cols[2].IsNull(1) {
		t.Fatal("NULL lost")
	}
	row := b.Row(1)
	if row[0] != int64(2) || row[1] != "b" || row[2] != nil {
		t.Fatalf("Row(1) = %v", row)
	}
	// AppendRowFrom preserves values and NULLs.
	b2 := NewBatch(s, 2)
	b2.AppendRowFrom(b, 1)
	if !b2.Cols[2].IsNull(0) || b2.Cols[0].I64[0] != 2 {
		t.Fatal("AppendRowFrom mangled row")
	}
}

func TestSplitPlacements(t *testing.T) {
	s := NewSchema(Field{Name: "k", Type: TInt64})
	b := NewBatch(s, 100)
	for i := 0; i < 100; i++ {
		b.AppendRow(int64(i))
	}
	chunks := SplitChunked(b, 3)
	total := 0
	for _, c := range chunks {
		total += c.Rows()
	}
	if total != 100 {
		t.Fatalf("chunked split lost rows: %d", total)
	}
	parts := SplitPartitioned(b, 0, 3)
	total = 0
	seen := map[int64]int{}
	for p, c := range parts {
		total += c.Rows()
		for i := 0; i < c.Rows(); i++ {
			k := c.Cols[0].I64[i]
			seen[k]++
			// Same key must deterministically map to the same partition.
			if PartitionOf(HashI64(k), 3) != p {
				t.Fatalf("key %d in wrong partition %d", k, p)
			}
		}
	}
	if total != 100 {
		t.Fatalf("partitioned split lost rows: %d", total)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d appears %d times", k, c)
		}
	}
	repl := Replicate(b, 3)
	for _, r := range repl {
		if r.Rows() != 100 {
			t.Fatal("replica incomplete")
		}
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(
		Field{Name: "a", Type: TInt64},
		Field{Name: "b", Type: TString},
		Field{Name: "c", Type: TDate},
	)
	if s.MustColIndex("c") != 2 {
		t.Fatal("ColIndex broken")
	}
	if s.ColIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	p := s.Project([]int{2, 0})
	if p.Fields[0].Name != "c" || p.Fields[1].Name != "a" {
		t.Fatalf("Project: %v", p)
	}
	if !s.Equal(s) || s.Equal(p) {
		t.Fatal("Equal broken")
	}
	cat := s.Concat(p)
	if cat.Len() != 5 {
		t.Fatal("Concat broken")
	}
}
