package storage

import (
	"fmt"

	"hsqp/internal/numa"
)

// Segment is a NUMA-homed horizontal slice of a table: HyPer
// "transparently distributes the input relations over all available NUMA
// sockets" (§4.1).
type Segment struct {
	*Batch
	Node numa.Node
}

// Table is one server's fragment of a relation: a list of NUMA-homed
// segments sharing a schema.
type Table struct {
	Name     string
	Schema   *Schema
	Segments []*Segment
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// AddSegment appends a segment; the batch must match the table schema.
func (t *Table) AddSegment(b *Batch, node numa.Node) *Segment {
	if !b.Schema.Equal(t.Schema) {
		panic(fmt.Sprintf("storage: segment schema %v != table schema %v", b.Schema, t.Schema))
	}
	seg := &Segment{Batch: b, Node: node}
	t.Segments = append(t.Segments, seg)
	return seg
}

// Rows returns the total row count over all segments.
func (t *Table) Rows() int {
	n := 0
	for _, s := range t.Segments {
		n += s.Rows()
	}
	return n
}

// Flatten concatenates all segments into one batch (tests, reference
// engine; not used on hot paths).
func (t *Table) Flatten() *Batch {
	out := NewBatch(t.Schema, t.Rows())
	for _, s := range t.Segments {
		for i := 0; i < s.Rows(); i++ {
			out.AppendRowFrom(s.Batch, i)
		}
	}
	return out
}

// DistributeToSockets splits a batch into one segment per NUMA socket in
// round-robin blocks and adds them to the table.
func (t *Table) DistributeToSockets(b *Batch, topo *numa.Topology) {
	rows := b.Rows()
	sockets := topo.Sockets
	per := (rows + sockets - 1) / sockets
	for s := 0; s < sockets; s++ {
		lo := s * per
		hi := min(lo+per, rows)
		if lo >= hi && rows > 0 {
			break
		}
		seg := NewBatch(t.Schema, hi-lo)
		for i := lo; i < hi; i++ {
			seg.AppendRowFrom(b, i)
		}
		t.AddSegment(seg, numa.Node(s))
	}
	if rows == 0 && len(t.Segments) == 0 {
		t.AddSegment(NewBatch(t.Schema, 0), 0)
	}
}

// Placement selects how a relation is distributed over the servers of a
// cluster (§4.1 / §4.3: "chunked" assigns dbgen chunks to servers without
// redistribution; "partitioned" hash-partitions by the first primary-key
// column, enabling local joins).
type Placement int

const (
	// PlacementChunked assigns contiguous chunks to servers as generated.
	PlacementChunked Placement = iota
	// PlacementPartitioned hash-partitions rows by a key column.
	PlacementPartitioned
	// PlacementReplicated copies the full relation to every server
	// (small dimension tables: nation, region).
	PlacementReplicated
)

func (p Placement) String() string {
	switch p {
	case PlacementChunked:
		return "chunked"
	case PlacementPartitioned:
		return "partitioned"
	case PlacementReplicated:
		return "replicated"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// SplitChunked splits batch rows into `servers` contiguous chunks.
func SplitChunked(b *Batch, servers int) []*Batch {
	rows := b.Rows()
	out := make([]*Batch, servers)
	per := (rows + servers - 1) / servers
	for s := 0; s < servers; s++ {
		lo := min(s*per, rows)
		hi := min(lo+per, rows)
		dst := NewBatch(b.Schema, hi-lo)
		for i := lo; i < hi; i++ {
			dst.AppendRowFrom(b, i)
		}
		out[s] = dst
	}
	return out
}

// SplitPartitioned hash-partitions batch rows by key column `key` into
// `servers` partitions using the engine's CRC32 hash.
func SplitPartitioned(b *Batch, key int, servers int) []*Batch {
	out := make([]*Batch, servers)
	for s := range out {
		out[s] = NewBatch(b.Schema, b.Rows()/servers+1)
	}
	col := b.Cols[key]
	for i := 0; i < b.Rows(); i++ {
		h := HashColValue(col, i)
		out[PartitionOf(h, servers)].AppendRowFrom(b, i)
	}
	return out
}

// Replicate returns `servers` references to the same batch (replicated
// placement shares the underlying read-only data in this in-process
// simulation, like each server holding its own copy).
func Replicate(b *Batch, servers int) []*Batch {
	out := make([]*Batch, servers)
	for s := range out {
		out[s] = b
	}
	return out
}
