// Package storage implements the in-memory columnar relation storage the
// engine executes over (HyPer's columnar format in the paper, §4.1):
// typed column vectors, schemas, NUMA-homed segments, and the hash
// partitioning / chunked placement used to distribute relations across
// servers.
package storage

import (
	"fmt"
	"time"
)

// Type is a column data type.
type Type uint8

const (
	// TInt64 is a 64-bit signed integer.
	TInt64 Type = iota
	// TFloat64 is a 64-bit float.
	TFloat64
	// TDecimal is a fixed-point decimal stored as int64 hundredths
	// (TPC-H money values).
	TDecimal
	// TDate is a date stored as int64 days since 1970-01-01.
	TDate
	// TString is a variable-length string.
	TString
)

func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TFloat64:
		return "float64"
	case TDecimal:
		return "decimal"
	case TDate:
		return "date"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// FixedSize returns the serialized byte width of fixed-size types and 0
// for variable-length types.
func (t Type) FixedSize() int {
	switch t {
	case TInt64, TFloat64, TDecimal:
		return 8
	case TDate:
		return 4
	default:
		return 0
	}
}

// Fixed reports whether the type has a fixed serialized width.
func (t Type) Fixed() bool { return t != TString }

// Field is one attribute of a schema.
type Field struct {
	Name     string
	Type     Type
	Nullable bool
}

// Schema describes the attributes of a relation or tuple stream.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.Fields) }

// ColIndex returns the index of the named field, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on a missing name (plan-build bug).
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: schema has no column %q", name))
	}
	return i
}

// Project returns a new schema containing the given field indexes.
func (s *Schema) Project(idx []int) *Schema {
	out := &Schema{Fields: make([]Field, len(idx))}
	for i, j := range idx {
		out.Fields[i] = s.Fields[j]
	}
	return out
}

// Concat returns a schema with the fields of s followed by those of other.
func (s *Schema) Concat(other *Schema) *Schema {
	out := &Schema{Fields: make([]Field, 0, len(s.Fields)+len(other.Fields))}
	out.Fields = append(out.Fields, s.Fields...)
	out.Fields = append(out.Fields, other.Fields...)
	return out
}

// Equal reports whether two schemas have identical field lists.
func (s *Schema) Equal(other *Schema) bool {
	if len(s.Fields) != len(other.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != other.Fields[i] {
			return false
		}
	}
	return true
}

func (s *Schema) String() string {
	out := "("
	for i, f := range s.Fields {
		if i > 0 {
			out += ", "
		}
		out += f.Name + " " + f.Type.String()
		if f.Nullable {
			out += " null"
		}
	}
	return out + ")"
}

// Decimal converts a float to the fixed-point representation (hundredths),
// rounding to nearest.
func Decimal(v float64) int64 {
	if v >= 0 {
		return int64(v*100 + 0.5)
	}
	return int64(v*100 - 0.5)
}

// DecimalFloat converts fixed-point hundredths back to a float.
func DecimalFloat(d int64) float64 { return float64(d) / 100 }

var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateFromYMD returns the day number of a calendar date.
func DateFromYMD(y, m, d int) int64 {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return int64(t.Sub(epoch) / (24 * time.Hour))
}

// ParseDate parses "YYYY-MM-DD" into a day number.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("storage: parse date %q: %w", s, err)
	}
	return int64(t.Sub(epoch) / (24 * time.Hour)), nil
}

// MustDate is ParseDate that panics on error (for literals in tests and
// query definitions).
func MustDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders a day number as "YYYY-MM-DD".
func FormatDate(d int64) string {
	return epoch.Add(time.Duration(d) * 24 * time.Hour).Format("2006-01-02")
}

// DateYear returns the calendar year of a day number.
func DateYear(d int64) int {
	return epoch.Add(time.Duration(d) * 24 * time.Hour).Year()
}

// MatchLike matches SQL LIKE patterns consisting of literal runs separated
// by % wildcards ('_' is not supported; TPC-H does not use it).
func MatchLike(s, pattern string) bool {
	parts := splitLike(pattern)
	// First part must be a prefix unless the pattern starts with %.
	i := 0
	if len(parts) > 0 && parts[0].anchoredStart {
		if len(s) < len(parts[0].lit) || s[:len(parts[0].lit)] != parts[0].lit {
			return false
		}
		s = s[len(parts[0].lit):]
		if parts[0].anchoredEnd {
			// Pattern without any %: exact match required.
			return s == ""
		}
		i = 1
	}
	// Last part must be a suffix unless the pattern ends with %.
	last := len(parts)
	if last > i && parts[last-1].anchoredEnd {
		lit := parts[last-1].lit
		if len(s) < len(lit) || s[len(s)-len(lit):] != lit {
			return false
		}
		s = s[:len(s)-len(lit)]
		last--
	}
	// Remaining parts must appear in order.
	for ; i < last; i++ {
		idx := indexOf(s, parts[i].lit)
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i].lit):]
	}
	return true
}

type likePart struct {
	lit           string
	anchoredStart bool
	anchoredEnd   bool
}

func splitLike(pattern string) []likePart {
	var parts []likePart
	litStart := 0
	start := true
	for i := 0; i < len(pattern); i++ {
		if pattern[i] != '%' {
			continue
		}
		if i > litStart {
			parts = append(parts, likePart{lit: pattern[litStart:i], anchoredStart: start})
		}
		litStart = i + 1
		start = false
	}
	if litStart < len(pattern) {
		parts = append(parts, likePart{lit: pattern[litStart:], anchoredStart: start, anchoredEnd: true})
	} else if len(parts) == 0 && start {
		// Pattern without any % and empty literal: matches empty only.
		parts = append(parts, likePart{lit: "", anchoredStart: true, anchoredEnd: true})
	}
	return parts
}

func indexOf(s, sub string) int {
	n, m := len(s), len(sub)
	if m == 0 {
		return 0
	}
	for i := 0; i+m <= n; i++ {
		if s[i:i+m] == sub {
			return i
		}
	}
	return -1
}
