package storage

import "fmt"

// Column is a typed column vector. Numeric types (int64, decimal, date)
// share the I64 backing; floats use F64; strings use Str. A nullable
// column additionally tracks validity (true = present). TPC-H data itself
// contains no NULLs, but outer joins and the wire format support them.
type Column struct {
	Type     Type
	Nullable bool
	I64      []int64
	F64      []float64
	Str      []string
	Valid    []bool // nil when !Nullable
}

// NewColumn creates an empty column with the given capacity hint.
func NewColumn(t Type, nullable bool, capacity int) *Column {
	c := &Column{Type: t, Nullable: nullable}
	switch t {
	case TFloat64:
		c.F64 = make([]float64, 0, capacity)
	case TString:
		c.Str = make([]string, 0, capacity)
	default:
		c.I64 = make([]int64, 0, capacity)
	}
	if nullable {
		c.Valid = make([]bool, 0, capacity)
	}
	return c
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case TFloat64:
		return len(c.F64)
	case TString:
		return len(c.Str)
	default:
		return len(c.I64)
	}
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	return c.Nullable && !c.Valid[i]
}

// AppendI64 appends an integer-backed value (int64, decimal, date).
func (c *Column) AppendI64(v int64) {
	c.I64 = append(c.I64, v)
	if c.Nullable {
		c.Valid = append(c.Valid, true)
	}
}

// AppendF64 appends a float value.
func (c *Column) AppendF64(v float64) {
	c.F64 = append(c.F64, v)
	if c.Nullable {
		c.Valid = append(c.Valid, true)
	}
}

// AppendStr appends a string value.
func (c *Column) AppendStr(v string) {
	c.Str = append(c.Str, v)
	if c.Nullable {
		c.Valid = append(c.Valid, true)
	}
}

// AppendNull appends a NULL. The column must be nullable.
func (c *Column) AppendNull() {
	if !c.Nullable {
		panic("storage: AppendNull on non-nullable column")
	}
	switch c.Type {
	case TFloat64:
		c.F64 = append(c.F64, 0)
	case TString:
		c.Str = append(c.Str, "")
	default:
		c.I64 = append(c.I64, 0)
	}
	c.Valid = append(c.Valid, false)
}

// AppendValue appends a Go value, dispatching on the column type. Useful
// for tests and the reference engine; hot paths use the typed appends.
func (c *Column) AppendValue(v any) {
	if v == nil {
		c.AppendNull()
		return
	}
	switch c.Type {
	case TFloat64:
		c.AppendF64(v.(float64))
	case TString:
		c.AppendStr(v.(string))
	default:
		switch x := v.(type) {
		case int64:
			c.AppendI64(x)
		case int:
			c.AppendI64(int64(x))
		default:
			panic(fmt.Sprintf("storage: cannot append %T to %v column", v, c.Type))
		}
	}
}

// AppendFrom appends row i of src (which must have the same type).
func (c *Column) AppendFrom(src *Column, i int) {
	if src.Nullable && !src.Valid[i] {
		c.AppendNull()
		return
	}
	switch c.Type {
	case TFloat64:
		c.AppendF64(src.F64[i])
	case TString:
		c.AppendStr(src.Str[i])
	default:
		c.AppendI64(src.I64[i])
	}
}

// Value returns row i as a Go value (nil for NULL).
func (c *Column) Value(i int) any {
	if c.IsNull(i) {
		return nil
	}
	switch c.Type {
	case TFloat64:
		return c.F64[i]
	case TString:
		return c.Str[i]
	default:
		return c.I64[i]
	}
}

// Reset truncates the column to zero length, keeping capacity.
func (c *Column) Reset() {
	c.I64 = c.I64[:0]
	c.F64 = c.F64[:0]
	c.Str = c.Str[:0]
	if c.Valid != nil {
		c.Valid = c.Valid[:0]
	}
}
