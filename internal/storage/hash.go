package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// The decoupled exchange operator partitions tuples "according to the
// CRC32 hash value of the join attributes" (§3.2). crc32.Castagnoli maps
// to the SSE4.2 CRC32 instruction on amd64, like HyPer's implementation.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// HashI64 hashes one 64-bit value.
func HashI64(v int64) uint32 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return crc32.Checksum(buf[:], crcTable)
}

// HashStr hashes a string.
func HashStr(s string) uint32 {
	return crc32.ChecksumIEEE([]byte(s)) // IEEE table fine for strings
}

// HashCombine mixes a new column hash into an accumulated hash
// (multi-attribute keys).
func HashCombine(acc, h uint32) uint32 {
	// Boost-style combine keeps both inputs influential.
	return acc ^ (h + 0x9e3779b9 + (acc << 6) + (acc >> 2))
}

// HashColValue hashes row i of a column.
func HashColValue(c *Column, i int) uint32 {
	if c.IsNull(i) {
		return 0x811c9dc5
	}
	switch c.Type {
	case TString:
		return HashStr(c.Str[i])
	case TFloat64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(c.F64[i]*1e6)))
		return crc32.Checksum(buf[:], crcTable)
	default:
		return HashI64(c.I64[i])
	}
}

// HashRow hashes the given key columns of row i of a batch. An empty key
// list hashes to a constant: key-less joins degenerate to nested loops
// over one bucket (scalar cross joins).
func HashRow(b *Batch, keys []int, i int) uint32 {
	if len(keys) == 0 {
		return 0
	}
	h := HashColValue(b.Cols[keys[0]], i)
	for _, k := range keys[1:] {
		h = HashCombine(h, HashColValue(b.Cols[k], i))
	}
	return h
}

// PartitionOf maps a hash to one of n partitions.
func PartitionOf(h uint32, n int) int {
	// Multiply-shift avoids the modulo's bias toward low partitions for
	// small n and is cheaper than %.
	return int(uint64(h) * uint64(n) >> 32)
}
