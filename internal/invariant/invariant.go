// Package invariant is the single sanctioned way for the serving
// packages (engine, exchange, mux, serve) to raise internal-invariant
// violations. The nopanic analyzer bans bare panic() there: a panic on a
// mux receive goroutine or a serve connection handler has no recover
// frame and kills the daemon with every in-flight query on it.
//
// Failf still panics — an invariant violation is not a recoverable
// condition — but with a typed *Violation value, so the recover frames
// that do exist (the scheduler's morsel loop, serve's per-request
// recovery) can tell a checked engine invariant from an arbitrary
// programmer error, and so the codebase has exactly one audited raise
// site.
package invariant

import "fmt"

// Violation is the typed panic value carrying a formatted description of
// the broken invariant.
type Violation struct {
	Msg string
}

func (v *Violation) Error() string { return v.Msg }

// Failf reports a broken internal invariant and never returns. The
// package sits outside nopanic's scope, making this the one place the
// serving tier may panic from.
func Failf(format string, args ...any) {
	panic(&Violation{Msg: fmt.Sprintf(format, args...)})
}

// AsViolation extracts the *Violation from a recovered panic value, if
// it is one.
func AsViolation(r any) (*Violation, bool) {
	v, ok := r.(*Violation)
	return v, ok
}
