// Package sched implements the application-level network schedule of
// §3.2.3: communication proceeds in distinct phases that prevent link
// sharing. In each phase every server has exactly one target it sends to
// and one source it receives from (Figure 10(a)); with n servers a full
// round consists of n−1 conflict-free phases.
//
// The schedule is the standard "round-robin tournament" permutation:
// in phase k (0-based), server i sends to (i+k+1) mod n and receives from
// (i−k−1) mod n. Every ordered pair of distinct servers meets exactly once
// per round, and within a phase the mapping sender→receiver is a
// permutation, so no two senders share an ingress port — the property that
// avoids head-of-line blocking and credit starvation in the switch.
package sched

import "fmt"

// Schedule is a round-robin communication schedule for n servers.
type Schedule struct {
	n int
}

// New creates a schedule for n ≥ 1 servers.
func New(n int) (*Schedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: need at least one server, got %d", n)
	}
	return &Schedule{n: n}, nil
}

// Servers returns n.
func (s *Schedule) Servers() int { return s.n }

// Phases returns the number of phases per round: n−1 (0 for a single
// server, which never communicates).
func (s *Schedule) Phases() int {
	if s.n <= 1 {
		return 0
	}
	return s.n - 1
}

// Target returns the server that `self` sends to in phase k.
func (s *Schedule) Target(self, k int) int {
	s.check(self, k)
	return (self + k + 1) % s.n
}

// Source returns the server that `self` receives from in phase k.
func (s *Schedule) Source(self, k int) int {
	s.check(self, k)
	return ((self-k-1)%s.n + s.n) % s.n
}

func (s *Schedule) check(self, k int) {
	if self < 0 || self >= s.n {
		panic(fmt.Sprintf("sched: server %d out of range [0,%d)", self, s.n))
	}
	if k < 0 || k >= s.Phases() {
		panic(fmt.Sprintf("sched: phase %d out of range [0,%d)", k, s.Phases()))
	}
}
