package sched

import (
	"testing"
	"testing/quick"
)

func TestPhasesCount(t *testing.T) {
	for n := 1; n <= 16; n++ {
		s, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		want := n - 1
		if n == 1 {
			want = 0
		}
		if got := s.Phases(); got != want {
			t.Fatalf("n=%d: phases %d, want %d", n, got, want)
		}
	}
}

// TestPermutationPerPhase verifies the core conflict-freedom property of
// Figure 10(a): within one phase, the sender→target mapping is a
// permutation (no two senders share a receiver) and nobody sends to
// itself.
func TestPermutationPerPhase(t *testing.T) {
	for n := 2; n <= 12; n++ {
		s, _ := New(n)
		for k := 0; k < s.Phases(); k++ {
			seen := make(map[int]int)
			for srv := 0; srv < n; srv++ {
				tgt := s.Target(srv, k)
				if tgt == srv {
					t.Fatalf("n=%d phase=%d: server %d targets itself", n, k, srv)
				}
				if prev, dup := seen[tgt]; dup {
					t.Fatalf("n=%d phase=%d: servers %d and %d share target %d", n, k, prev, srv, tgt)
				}
				seen[tgt] = srv
			}
		}
	}
}

// TestAllPairsMeetOnce: over a full round every ordered pair of distinct
// servers communicates exactly once.
func TestAllPairsMeetOnce(t *testing.T) {
	for n := 2; n <= 10; n++ {
		s, _ := New(n)
		pairs := make(map[[2]int]int)
		for k := 0; k < s.Phases(); k++ {
			for srv := 0; srv < n; srv++ {
				pairs[[2]int{srv, s.Target(srv, k)}]++
			}
		}
		if len(pairs) != n*(n-1) {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(pairs), n*(n-1))
		}
		for p, c := range pairs {
			if c != 1 {
				t.Fatalf("n=%d: pair %v met %d times", n, p, c)
			}
		}
	}
}

// TestSourceTargetDual: i receives from j in phase k iff j sends to i.
func TestSourceTargetDual(t *testing.T) {
	f := func(n8, k8, i8 uint8) bool {
		n := int(n8%14) + 2
		s, _ := New(n)
		k := int(k8) % s.Phases()
		i := int(i8) % n
		j := s.Source(i, k)
		return s.Target(j, k) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseMappingIsConflictFreePermutation is the property test behind
// the DAG scheduler's use of the schedule: for every n ∈ 2..16 and every
// phase chosen by the fuzzer, the sender→target mapping must be a
// conflict-free permutation — a bijection with no fixed point whose
// inverse is exactly Source. That is the invariant that keeps every link
// busy without two senders sharing an ingress port.
func TestPhaseMappingIsConflictFreePermutation(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%15) + 2 // n ∈ [2,16]
		s, err := New(n)
		if err != nil {
			return false
		}
		k := int(k8) % s.Phases()
		targets := make(map[int]bool, n)
		for srv := 0; srv < n; srv++ {
			tgt := s.Target(srv, k)
			if tgt < 0 || tgt >= n || tgt == srv {
				return false // out of range or self-send
			}
			if targets[tgt] {
				return false // two senders share an ingress port
			}
			targets[tgt] = true
			if s.Source(tgt, k) != srv {
				return false // inverse mapping disagrees
			}
		}
		return len(targets) == n // surjective onto the servers
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Exhaustive sweep of the same property for every n ∈ 2..16, every
	// phase (the fuzzer samples; this pins the full grid).
	for n := 2; n <= 16; n++ {
		s, _ := New(n)
		for k := 0; k < s.Phases(); k++ {
			seen := make(map[int]bool, n)
			for srv := 0; srv < n; srv++ {
				seen[s.Target(srv, k)] = true
			}
			if len(seen) != n {
				t.Fatalf("n=%d phase=%d: mapping is not a permutation", n, k)
			}
		}
	}
}

func TestNewRejectsBadSize(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) should fail")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) should fail")
	}
}
