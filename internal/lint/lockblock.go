package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Lockblock flags operations that may block — channel sends/receives,
// selects without a default, WaitGroup/Cond waits, time.Sleep, network
// I/O, and calls into functions that transitively do any of those —
// while a sync.Mutex or sync.RWMutex is held.
//
// History: PR 4 fixed a real deadlock of this class — the receive-side
// sequence assertion panicked while holding the exchange lock, which
// deadlocked Mux.Close (teardown wakes every exchange under the same
// lock). The exchange/mux locks guard queue state that the network
// goroutine, pool workers, and teardown all contend on; blocking under
// them turns backpressure into deadlock.
//
// The one blocking call that is legal under a mutex is sync.Cond.Wait on
// a cond constructed over that same mutex (Wait releases it); the
// analyzer learns cond→mutex pairs from sync.NewCond(&x) assignments
// anywhere in the module.
var Lockblock = &analysis.Analyzer{
	Name: "lockblock",
	Doc:  "no blocking operation (channel op, Wait, network write, call into a may-block function) while a mutex is held",
	Run:  runLockblock,
}

// blockReason describes why a function may block ("" = it does not).
type blockReason struct {
	what  string // primitive cause or callee description
	depth int    // call-chain depth, to cap the explanation
}

// mayBlockIndex is the module-wide fixpoint: every function with a body
// that can reach a primitive blocking operation via static calls.
type mayBlockIndex struct {
	reasons map[*types.Func]blockReason
	// condPair maps a *sync.Cond variable (struct field or local) to the
	// mutex variable it was constructed over via sync.NewCond(&mu).
	condPair map[*types.Var]*types.Var
}

func runLockblock(pass *analysis.Pass) error {
	idx := lockblockIndex(pass)
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lw := &lockWalker{pass: pass, idx: idx}
			lw.stmts(fd.Body.List, newLockSet())
		}
		// Function literals run on their own schedule (goroutines,
		// callbacks): analyze each body as an independent function with
		// an empty lock set.
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lw := &lockWalker{pass: pass, idx: idx}
				lw.stmts(fl.Body.List, newLockSet())
			}
			return true
		})
	}
	return nil
}

// lockblockIndex computes (once per module) the may-block fixpoint and
// the cond→mutex pairing. In single-package vet mode the index covers
// just that package: cross-package may-block calls are then invisible,
// which is why CI runs the module-aware standalone mode.
func lockblockIndex(pass *analysis.Pass) *mayBlockIndex {
	build := func(pkgs []*analysis.ModPackage) any {
		idx := &mayBlockIndex{
			reasons:  map[*types.Func]blockReason{},
			condPair: map[*types.Var]*types.Var{},
		}
		type fnDef struct {
			fn   *types.Func
			body *ast.BlockStmt
			info *types.Info
		}
		var fns []fnDef
		for _, p := range pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if n.Body != nil {
							if obj, ok := p.Info.Defs[n.Name].(*types.Func); ok {
								fns = append(fns, fnDef{obj, n.Body, p.Info})
							}
						}
					case *ast.AssignStmt:
						recordCondPairs(p.Info, n, idx.condPair)
					}
					return true
				})
			}
		}
		// Kleene iteration over the static call graph: primitive causes
		// first, then propagate through direct calls until stable.
		for changed := true; changed; {
			changed = false
			for _, fd := range fns {
				if _, done := idx.reasons[fd.fn]; done {
					continue
				}
				if r, ok := bodyMayBlock(fd.info, fd.body, idx); ok {
					idx.reasons[fd.fn] = r
					changed = true
				}
			}
		}
		return idx
	}
	if pass.Module != nil {
		return pass.Module.Cached("lockblock.index", func() any {
			return build(pass.Module.Packages)
		}).(*mayBlockIndex)
	}
	return build([]*analysis.ModPackage{{Pkg: pass.Pkg, Info: pass.Info, Files: pass.Files}}).(*mayBlockIndex)
}

// recordCondPairs learns cond→mutex pairs from statements of the form
//
//	x.cond = sync.NewCond(&x.mu)   or   c := sync.NewCond(&mu)
func recordCondPairs(info *types.Info, as *ast.AssignStmt, pairs map[*types.Var]*types.Var) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Name() != "NewCond" || funcPkgPath(callee) != "sync" {
			continue
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok {
			continue
		}
		mu := varOf(info, unary.X)
		cond := varOf(info, as.Lhs[i])
		if mu != nil && cond != nil {
			pairs[cond] = mu
		}
	}
}

// varOf resolves an ident or selector to its variable object.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		return fieldOf(info, e)
	}
	return nil
}

// bodyMayBlock reports whether a function body directly blocks or calls
// a function already known to.
func bodyMayBlock(info *types.Info, body *ast.BlockStmt, idx *mayBlockIndex) (blockReason, bool) {
	var found blockReason
	var ok bool
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested function runs on its own schedule; its blocking is
			// attributed when it is analyzed as a value (not here).
			return false
		case *ast.SendStmt:
			found, ok = blockReason{what: "channel send"}, true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found, ok = blockReason{what: "channel receive"}, true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found, ok = blockReason{what: "range over channel"}, true
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found, ok = blockReason{what: "select without default"}, true
				return true // still scan bodies? no need once found
			}
			// Non-blocking try: skip the comm clauses' channel ops but
			// scan their bodies.
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				for _, s := range cc.Body {
					ast.Inspect(s, visit)
				}
			}
			return false
		case *ast.CallExpr:
			if r, blocking := callMayBlock(info, n, idx, nil); blocking {
				found, ok = r, true
			}
		}
		return !ok
	}
	ast.Inspect(body, visit)
	return found, ok
}

// callMayBlock classifies one static call. held is the current lock set
// (nil during fixpoint construction): sync.Cond.Wait is unconditionally
// blocking for the fixpoint, but at a use site it is legal when the only
// held mutex is the cond's paired one.
func callMayBlock(info *types.Info, call *ast.CallExpr, idx *mayBlockIndex, held *lockSet) (blockReason, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return blockReason{}, false // indirect call: unknown, assumed safe
	}
	rpkg, rtyp := recvTypeName(fn)
	switch {
	case fn.Name() == "Sleep" && funcPkgPath(fn) == "time":
		return blockReason{what: "time.Sleep"}, true
	case fn.Name() == "Wait" && rpkg == "sync" && rtyp == "WaitGroup":
		return blockReason{what: "sync.WaitGroup.Wait"}, true
	case fn.Name() == "Wait" && rpkg == "sync" && rtyp == "Cond":
		if held != nil && condWaitAllowed(info, call, idx, held) {
			return blockReason{}, false
		}
		return blockReason{what: "sync.Cond.Wait"}, true
	case funcPkgPath(fn) == "net" || rpkg == "net":
		return blockReason{what: "network I/O (" + fn.Name() + ")"}, true
	}
	if r, known := idx.reasons[fn]; known {
		what := fmt.Sprintf("calls %s, which may block: %s", qualifiedName(fn), r.what)
		if r.depth >= 2 {
			what = fmt.Sprintf("calls %s, which may block", qualifiedName(fn))
		}
		return blockReason{what: what, depth: r.depth + 1}, true
	}
	return blockReason{}, false
}

// condWaitAllowed reports whether a cond.Wait call is safe for the held
// lock set: the cond's paired mutex must be the only lock held.
func condWaitAllowed(info *types.Info, call *ast.CallExpr, idx *mayBlockIndex, held *lockSet) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	condVar := varOf(info, sel.X)
	if condVar == nil {
		return false
	}
	paired, ok := idx.condPair[condVar]
	if !ok {
		return false
	}
	for _, l := range held.locks {
		if l.obj != paired {
			return false
		}
	}
	return true
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func qualifiedName(fn *types.Func) string {
	if _, rtyp := recvTypeName(fn); rtyp != "" {
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Name() + "."
		}
		return fmt.Sprintf("(%s%s).%s", pkg, rtyp, fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// --- lock-state interpretation ---

// heldLock is one mutex the interpreter believes is held.
type heldLock struct {
	key    string     // canonical source text, e.g. "s.destMu[dst]"
	obj    *types.Var // the mutex variable when resolvable (for cond pairing)
	sticky bool       // deferred unlock: held until function return
	line   int
}

// lockSet is an ordered set of held locks.
type lockSet struct {
	locks []heldLock
}

func newLockSet() *lockSet { return &lockSet{} }

func (ls *lockSet) clone() *lockSet {
	c := &lockSet{locks: make([]heldLock, len(ls.locks))}
	copy(c.locks, ls.locks)
	return c
}

func (ls *lockSet) add(l heldLock) {
	for _, h := range ls.locks {
		if h.key == l.key {
			return
		}
	}
	ls.locks = append(ls.locks, l)
}

func (ls *lockSet) remove(key string) {
	for i, h := range ls.locks {
		if h.key == key && !h.sticky {
			ls.locks = append(ls.locks[:i], ls.locks[i+1:]...)
			return
		}
	}
}

// intersect keeps only locks held in both sets (branch merge: a lock is
// "held" after an if/else only when every live path holds it — the
// false-positive-minimizing choice).
func (ls *lockSet) intersect(o *lockSet) *lockSet {
	out := newLockSet()
	for _, h := range ls.locks {
		for _, g := range o.locks {
			if h.key == g.key {
				out.locks = append(out.locks, h)
				break
			}
		}
	}
	return out
}

// union keeps locks held in either set (loop exit: a lock taken inside
// the loop body is conservatively still held after it).
func (ls *lockSet) union(o *lockSet) *lockSet {
	out := ls.clone()
	for _, g := range o.locks {
		out.add(g)
	}
	return out
}

func (ls *lockSet) describe() string {
	s := ""
	for i, h := range ls.locks {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s (locked at line %d)", h.key, h.line)
	}
	return s
}

// lockWalker interprets a function body, tracking held mutexes through
// straight-line code, branches (intersection of live paths), and loops
// (union of entry and body-exit states).
type lockWalker struct {
	pass *analysis.Pass
	idx  *mayBlockIndex
}

// stmts interprets a statement list; it returns the lock state after the
// list and whether the list always terminates (return/panic/goto).
func (lw *lockWalker) stmts(list []ast.Stmt, held *lockSet) (*lockSet, bool) {
	for _, s := range list {
		var term bool
		held, term = lw.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (lw *lockWalker) stmt(s ast.Stmt, held *lockSet) (*lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if handled := lw.lockOp(call, held, false); handled {
				return held, false
			}
		}
		lw.checkExpr(s.X, held)
		return held, false
	case *ast.DeferStmt:
		if lw.lockOp(s.Call, held, true) {
			return held, false
		}
		lw.checkCallArgs(s.Call, held)
		return held, false
	case *ast.GoStmt:
		// The goroutine body runs without our locks; only argument
		// evaluation happens here.
		lw.checkCallArgs(s.Call, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lw.checkExpr(e, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true // break/continue/goto end this path's analysis
	case *ast.BlockStmt:
		return lw.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.checkExpr(s.Cond, held)
		thenHeld, thenTerm := lw.stmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if s.Else != nil {
			elseHeld, elseTerm = lw.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return thenHeld.intersect(elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.checkExpr(s.Cond, held)
		}
		bodyHeld, _ := lw.stmts(s.Body.List, held.clone())
		if s.Post != nil {
			lw.stmt(s.Post, bodyHeld)
		}
		return held.union(bodyHeld), false
	case *ast.RangeStmt:
		lw.checkExpr(s.X, held)
		if t := lw.pass.Info.TypeOf(s.X); t != nil && held.locks != nil && len(held.locks) > 0 {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				lw.report(s.Pos(), "range over channel", held)
			}
		}
		bodyHeld, _ := lw.stmts(s.Body.List, held.clone())
		return held.union(bodyHeld), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.checkExpr(s.Tag, held)
		}
		return lw.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		return lw.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		if len(held.locks) > 0 && !selectHasDefault(s) {
			lw.report(s.Pos(), "select without default", held)
		}
		out := newLockSet()
		first := true
		anyLive := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			st, term := lw.stmts(cc.Body, held.clone())
			if term {
				continue
			}
			anyLive = true
			if first {
				out, first = st, false
			} else {
				out = out.intersect(st)
			}
		}
		if !anyLive && len(s.Body.List) > 0 {
			return held, true
		}
		if first {
			out = held
		}
		return out, false
	case *ast.SendStmt:
		if len(held.locks) > 0 {
			lw.report(s.Pos(), "channel send", held)
		}
		lw.checkExpr(s.Value, held)
		return held, false
	case *ast.LabeledStmt:
		return lw.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		lw.checkExpr(s.X, held)
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.checkExpr(v, held)
					}
				}
			}
		}
		return held, false
	default:
		return held, false
	}
}

// caseBodies merges the lock state across switch cases.
func (lw *lockWalker) caseBodies(body *ast.BlockStmt, held *lockSet) (*lockSet, bool) {
	out := newLockSet()
	first := true
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			lw.checkExpr(e, held)
		}
		st, term := lw.stmts(cc.Body, held.clone())
		if term {
			continue
		}
		if first {
			out, first = st, false
		} else {
			out = out.intersect(st)
		}
	}
	if first {
		return held, false
	}
	if !hasDefault {
		// The no-case-taken path keeps the entry state.
		out = out.intersect(held)
	}
	return out, false
}

// lockOp updates the lock state for x.Lock()/x.Unlock() families; it
// reports true when the call was a lock operation.
func (lw *lockWalker) lockOp(call *ast.CallExpr, held *lockSet, deferred bool) bool {
	fn := calleeFunc(lw.pass.Info, call)
	if fn == nil {
		return false
	}
	rpkg, rtyp := recvTypeName(fn)
	if rpkg != "sync" || (rtyp != "Mutex" && rtyp != "RWMutex") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held.add(heldLock{
			key:    key,
			obj:    varOf(lw.pass.Info, sel.X),
			line:   lw.pass.Fset.Position(call.Pos()).Line,
			sticky: false,
		})
	case "Unlock", "RUnlock":
		if deferred {
			// defer mu.Unlock(): the mutex stays held for the rest of
			// the function.
			held.add(heldLock{
				key:    key,
				obj:    varOf(lw.pass.Info, sel.X),
				line:   lw.pass.Fset.Position(call.Pos()).Line,
				sticky: true,
			})
			// Mark sticky even if already present.
			for i := range held.locks {
				if held.locks[i].key == key {
					held.locks[i].sticky = true
				}
			}
		} else {
			held.remove(key)
		}
	case "TryLock", "TryRLock":
		return false // conditional acquisition: not tracked
	default:
		return false
	}
	return true
}

// checkExpr scans an expression for blocking constructs under held locks.
func (lw *lockWalker) checkExpr(e ast.Expr, held *lockSet) {
	if len(held.locks) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				lw.report(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if r, blocking := callMayBlock(lw.pass.Info, n, lw.idx, held); blocking {
				lw.report(n.Pos(), r.what, held)
				return false
			}
		}
		return true
	})
}

// checkCallArgs scans only the arguments of a call (for go/defer, whose
// function body runs outside the current lock scope).
func (lw *lockWalker) checkCallArgs(call *ast.CallExpr, held *lockSet) {
	for _, a := range call.Args {
		lw.checkExpr(a, held)
	}
}

func (lw *lockWalker) report(pos token.Pos, what string, held *lockSet) {
	lw.pass.Reportf(pos, "%s while holding %s; blocking under a mux/exchange lock deadlocks teardown and backpressure paths", what, held.describe())
}
