package lint

import (
	"go/ast"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Obsgate keeps observability out of per-morsel hot paths. Two rules,
// scoped to the packages on the morsel execution path (engine, op,
// exchange, mux):
//
//  1. Metric registration (obs.Registry.Counter/Gauge/Histogram and the
//     Vec variants) must happen at package initialization — package-level
//     var declarations or init() — never inside a function that runs per
//     query or per morsel. Registration takes the registry lock and
//     allocates; doing it per-call turns a counter increment into a
//     mutex acquisition on the hot path. (Updating a pre-registered
//     metric is always fine: the obs gated types are a single atomic
//     check when disabled.)
//
//  2. time.Now() in operator code (package op) is banned outright:
//     per-row or per-batch timestamping is exactly the overhead the
//     paper's morsel accounting design avoids. In engine/exchange/mux it
//     is allowed only for interval accounting — a function that also
//     computes time.Since, or storing into a time.Time field — which
//     matches the scheduler's per-morsel interval pattern.
var Obsgate = &analysis.Analyzer{
	Name: "obsgate",
	Doc:  "hot-path packages must register metrics at init and take timestamps only for interval accounting",
	Run:  runObsgate,
}

var obsgatePkgs = map[string]bool{"engine": true, "op": true, "exchange": true, "mux": true}

var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func runObsgate(pass *analysis.Pass) error {
	if !obsgatePkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	inOp := pkgBase(pass.Pkg.Path()) == "op"
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Name.Name == "init" && fd.Recv == nil
			usesSince := callsTimeSince(pass.Info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil {
					return true
				}
				if !isInit && isRegistryRegistration(fn) {
					pass.Reportf(call.Pos(), "metric registered inside a function; register once at package init (package-level var or init()) — per-call registration takes the registry lock on the hot path")
					return true
				}
				if fn.Name() == "Now" && funcPkgPath(fn) == "time" {
					switch {
					case inOp:
						pass.Reportf(call.Pos(), "time.Now in operator code; per-row timestamping defeats morsel interval accounting — take timestamps in the scheduler and pass intervals down")
					case !usesSince && !storesIntoTimeField(pass.Info, fd.Body, call):
						pass.Reportf(call.Pos(), "time.Now without matching time.Since or time.Time field store; hot-path timestamps are only for interval accounting")
					}
				}
				return true
			})
		}
	}
	return nil
}

// isRegistryRegistration reports whether fn is a metric-constructing
// method on obs.Registry.
func isRegistryRegistration(fn *types.Func) bool {
	if !registryMethods[fn.Name()] {
		return false
	}
	rpkg, rtyp := recvTypeName(fn)
	return rpkg == "obs" && rtyp == "Registry"
}

// callsTimeSince reports whether body contains a time.Since call (the
// marker of interval accounting).
func callsTimeSince(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Since" && funcPkgPath(fn) == "time" {
				found = true
			}
		}
		return true
	})
	return found
}

// storesIntoTimeField reports whether this particular time.Now() call is
// the RHS of an assignment to (or composite-literal value for) a
// time.Time struct field — recording a start time for later Since.
func storesIntoTimeField(info *types.Info, body *ast.BlockStmt, target *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) == target && i < len(n.Lhs) {
					if sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr); ok {
						if f := fieldOf(info, sel); f != nil && typeIs(f.Type(), "time", "Time") {
							found = true
						}
					}
				}
			}
		case *ast.KeyValueExpr:
			if ast.Unparen(n.Value) == target {
				if id, ok := n.Key.(*ast.Ident); ok {
					if f, ok := info.Uses[id].(*types.Var); ok && f.IsField() && typeIs(f.Type(), "time", "Time") {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}
