package lint

import (
	"go/ast"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Nopanic bans bare panic() in the long-running serving packages
// (engine, exchange, mux, serve). The scheduler converts operator panics
// into query errors via recover, but a panic raised on a mux receive
// goroutine or a serve connection handler has no recover frame and takes
// the whole daemon down with every in-flight query on it.
//
// Invariant violations should go through invariant.Failf, which panics
// with a typed value the scheduler's recover distinguishes from
// programmer errors, and which gives the linter a single allowlisted
// throat to audit.
var Nopanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "serving packages must raise invariant violations via invariant.Failf, not bare panic()",
	Run:  runNopanic,
}

var nopanicPkgs = map[string]bool{"engine": true, "exchange": true, "mux": true, "serve": true}

func runNopanic(pass *analysis.Pass) error {
	if !nopanicPkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(), "bare panic in a serving package; use invariant.Failf so violations carry a typed value and one audited raise site")
			return true
		})
	}
	return nil
}
