package lint

import (
	"sort"

	"hsqp/internal/lint/analysis"
)

// All returns every hsqplint analyzer, in diagnostic-stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Lockblock,
		Atomicmix,
		Obsgate,
		Wiredeterminism,
		Nopanic,
		Poolsafe,
		Nilness,
	}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	if len(names) == 0 {
		return All(), true
	}
	index := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// Run applies analyzers to each target package, filters findings through
// the //lint:allow suppressor, and returns the surviving diagnostics in
// (file, line, column, analyzer) order. Malformed directives are
// reported as "directive" diagnostics.
func Run(analyzers []*analysis.Analyzer, mod *analysis.Module, targets []*analysis.ModPackage) ([]analysis.Diagnostic, error) {
	var raw []analysis.Diagnostic
	var dirs []analysis.Directive
	for _, t := range targets {
		for _, f := range t.Files {
			d, bad := analysis.ParseDirectives(mod.Fset, f)
			dirs = append(dirs, d...)
			raw = append(raw, bad...)
		}
	}
	sup := analysis.NewSuppressor(dirs)

	for _, t := range targets {
		for _, a := range analyzers {
			pass := analysis.NewPass(a, mod.Fset, t.Files, t.Pkg, t.Info, mod, func(d analysis.Diagnostic) {
				raw = append(raw, d)
			})
			if err := pass.Analyzer.Run(pass); err != nil {
				return nil, err
			}
		}
	}

	var out []analysis.Diagnostic
	for _, d := range raw {
		if !sup.Suppressed(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
