// Package linttest runs hsqplint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture sources
// live under testdata/src/<importpath>/, and lines that should trigger a
// diagnostic carry a comment of the form
//
//	// want lockblock:"channel send"
//
// where the quoted string is a regexp matched against the diagnostic
// message. Multiple want clauses may share one comment. Every diagnostic
// must be wanted and every want must fire; mismatches in either
// direction fail the test.
//
// Standard-library imports inside fixtures are type-checked from GOROOT
// source (shared across tests), so fixtures may use sync, time, and
// friends without any export-data plumbing.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"hsqp/internal/lint"
	"hsqp/internal/lint/analysis"
	"hsqp/internal/lint/loader"
)

// Run loads the fixture packages at the given import paths (relative to
// testdata/src under dir), applies the analyzers, checks want comments
// in the fixture sources, and returns the diagnostics for additional
// assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, paths ...string) []analysis.Diagnostic {
	t.Helper()
	mod, targets, err := load(dir, paths)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	diags, err := lint.Run(analyzers, mod, targets)
	if err != nil {
		t.Fatalf("linttest: run: %v", err)
	}
	checkWants(t, mod.Fset, targets, diags)
	return diags
}

// load type-checks the fixture packages and their fixture dependencies
// into one shared module.
func load(dir string, paths []string) (*analysis.Module, []*analysis.ModPackage, error) {
	src := filepath.Join(dir, "testdata", "src")
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		src:   src,
		fset:  fset,
		built: map[string]*analysis.ModPackage{},
	}
	mod := analysis.NewModule(fset)
	var targets []*analysis.ModPackage
	for _, path := range paths {
		mp, err := imp.importFixture(path)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, mp)
	}
	// Register every fixture package (targets and their deps) so
	// module-wide fixpoints see cross-package definitions.
	var order []string
	for p := range imp.built {
		order = append(order, p)
	}
	sort.Strings(order)
	for _, p := range order {
		mod.Add(imp.built[p])
	}
	return mod, targets, nil
}

// stdlibImporter compiles standard-library packages from GOROOT source.
// It is shared process-wide (guarded by stdlibMu) because compiling sync
// or time from source costs real time and every fixture needs them.
var (
	stdlibMu   sync.Mutex
	stdlibFset = token.NewFileSet()
	stdlibImp  = importer.ForCompiler(stdlibFset, "source", nil)
	stdlibPkgs = map[string]*types.Package{}
)

func importStdlib(path string) (*types.Package, error) {
	stdlibMu.Lock()
	defer stdlibMu.Unlock()
	if p, ok := stdlibPkgs[path]; ok {
		return p, nil
	}
	p, err := stdlibImp.Import(path)
	if err != nil {
		return nil, err
	}
	stdlibPkgs[path] = p
	return p, nil
}

// fixtureImporter resolves imports during fixture type-checking: paths
// that exist under testdata/src are fixtures (checked recursively from
// source); everything else is assumed standard library.
type fixtureImporter struct {
	src   string
	fset  *token.FileSet
	built map[string]*analysis.ModPackage
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(fi.src, path)) {
		mp, err := fi.importFixture(path)
		if err != nil {
			return nil, err
		}
		return mp.Pkg, nil
	}
	return importStdlib(path)
}

func (fi *fixtureImporter) importFixture(path string) (*analysis.ModPackage, error) {
	if mp, ok := fi.built[path]; ok {
		return mp, nil
	}
	dir := filepath.Join(fi.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no .go files", path)
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	mp := &analysis.ModPackage{Pkg: pkg, Info: info, Files: files}
	fi.built[path] = mp
	return mp, nil
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var wantRe = regexp.MustCompile(`(\w+):"((?:[^"\\]|\\.)*)"`)

// checkWants matches diagnostics against `// want name:"re"` comments.
func checkWants(t *testing.T, fset *token.FileSet, targets []*analysis.ModPackage, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, mp := range targets {
		for _, f := range mp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
						re, err := regexp.Compile(m[2])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[2], err)
						}
						wants = append(wants, &want{
							file:     pos.Filename,
							line:     pos.Line,
							analyzer: m[1],
							re:       re,
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line || w.analyzer != d.Analyzer {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %s:%q did not fire", w.file, w.line, w.analyzer, w.re)
		}
	}
}
