package lint

import (
	"go/ast"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Wiredeterminism flags map iteration whose order can leak into
// externally observable bytes: wire encoding, exchange sends, plan
// compilation, or trace output. Go randomizes map iteration order per
// run, so any such flow makes output nondeterministic — breaking
// byte-identical repartitioning across workers, golden-file tests, and
// trace diffing.
//
// Two patterns fire:
//
//   - a `for k, v := range m` body that calls an encoding or sending sink
//     (ser.Encode*, Marshal, Write*, Fprint*, Mux.Send, exchange
//     dispatch, ...);
//   - a range-over-map body that appends DERIVED values (anything beyond
//     the bare key/value variable) into a slice declared outside the
//     loop. Bare-element collection followed by sort is the sanctioned
//     idiom (obs.sortedFamilies); derived appends are flagged even when
//     sorted afterwards, because a comparator over derived records is
//     rarely total — the historical trace-metadata bug sorted by
//     (pid, tid) and still interleaved nondeterministically on ties.
var Wiredeterminism = &analysis.Analyzer{
	Name: "wiredeterminism",
	Doc:  "no map-iteration order may flow into wire encoding, sends, or other deterministic output",
	Run:  runWiredeterminism,
}

var wirePkgs = map[string]bool{
	"ser": true, "exchange": true, "plan": true, "serve": true,
	"obs": true, "mux": true, "cluster": true,
}

// wireSinkNames are callee names that emit externally observable bytes
// or route data to peers.
var wireSinkNames = map[string]bool{
	"Encode": true, "EncodeRow": true, "Marshal": true, "MarshalJSON": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Send": true, "SendInline": true, "Consume": true,
	"dispatch": true, "sendStamped": true, "broadcastStamped": true,
}

var wireSinkPkgs = map[string]bool{
	"ser": true, "encoding/json": true, "encoding/binary": true,
}

func runWiredeterminism(pass *analysis.Pass) error {
	if !wirePkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass.Info, rs.Key)
	valObj := rangeVarObj(pass.Info, rs.Value)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// Nested ranges get their own visit from the file walk.
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.CallExpr:
			if isAppendDerived(pass.Info, n, keyObj, valObj) && appendTargetOutlivesLoop(pass.Info, n, rs) {
				pass.Reportf(n.Pos(), "derived value appended during map iteration; iteration order leaks into the slice — collect bare keys, sort, then iterate the sorted keys")
				return true
			}
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			if wireSinkNames[fn.Name()] || wireSinkPkgs[funcPkgPath(fn)] {
				pass.Reportf(n.Pos(), "%s called during map iteration; Go map order is randomized per run, so the emitted bytes are nondeterministic — sort the keys first", fn.Name())
			}
		}
		return true
	})
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object, or nil for `_` or absent.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isAppendDerived reports whether call is `x = append(x, elem...)` where
// some appended element is NOT simply the bare range key/value variable.
// Bare-element appends are the collect-then-sort idiom and never flagged.
func isAppendDerived(info *types.Info, call *ast.CallExpr, keyObj, valObj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	for _, arg := range call.Args[1:] {
		if bareRangeVar(info, arg, keyObj, valObj) {
			continue
		}
		return true
	}
	return false
}

// appendTargetOutlivesLoop reports whether the append destination is
// declared outside the range body (so the order-dependent contents
// escape the iteration). Appends into loop-local slices are left to the
// sink checks on whatever consumes them.
func appendTargetOutlivesLoop(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		// Appending into a field or index expression: treat as escaping.
		return true
	}
	o := info.Uses[id]
	if o == nil {
		return true
	}
	return o.Pos() < rs.Body.Pos() || o.Pos() > rs.Body.End()
}

func bareRangeVar(info *types.Info, e ast.Expr, keyObj, valObj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	o := info.Uses[id]
	return o != nil && (o == keyObj || o == valObj)
}
