// Package lint implements hsqplint's analyzers: machine-checked forms of
// the concurrency and determinism invariants this engine's correctness
// and performance claims rest on. See docs/invariants.md for the full
// catalogue and the historical bug behind each analyzer.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// shortPath trims a filename to its last two path elements for compact
// cross-references inside diagnostic messages.
func shortPath(name string) string {
	dir, base := filepath.Dir(name), filepath.Base(name)
	if parent := filepath.Base(dir); parent != "." && parent != string(filepath.Separator) {
		return parent + "/" + base
	}
	return base
}

func itoa(n int) string { return strconv.Itoa(n) }

// calleeFunc resolves the static callee of a call, or nil for calls
// through function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvTypeName returns the package and type name of a method's receiver
// ("sync", "Mutex" for (*sync.Mutex).Lock), or "", "" for plain
// functions.
func recvTypeName(f *types.Func) (pkg, typ string) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	return pkg, obj.Name()
}

// funcPkgPath returns the import path of the package declaring f ("" for
// builtins).
func funcPkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// pkgBase is the last element of an import path: the conventional
// package name hsqplint keys its package scopes on, so the rules apply
// identically to hsqp/internal/mux and to a test fixture named
// lockblock/mux.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// testFile reports whether f is a _test.go file.
func testFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified or unqualified field references resolve through
	// Uses (e.g. inside composite literals they are not Selections).
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf unwraps a (possibly pointer) type to its named type, or nil.
func namedOf(t types.Type) *types.Named {
	n, _ := deref(t).(*types.Named)
	return n
}

// typeIs reports whether t (after deref) is the named type pkgName.typeName.
func typeIs(t types.Type, pkgName, typeName string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
