package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Atomicmix flags variables that are accessed through sync/atomic in one
// place and with plain loads or stores in another. Mixed access is a
// data race even when the plain access "happens to" run single-threaded
// today: the next refactor that moves it onto a worker goroutine
// inherits the race silently, and the race detector only catches the
// schedules it sees.
//
// The fix is either full atomic discipline or (better) the typed
// atomic.Int64/Uint64/Bool wrappers, which make mixed access a compile
// error and which this analyzer therefore never needs to look at.
var Atomicmix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicmix,
}

// atomicIndex records, for every variable that appears as &x in a
// sync/atomic call anywhere in the module, the position of one such use.
type atomicIndex struct {
	vars map[*types.Var]token.Position
}

func runAtomicmix(pass *analysis.Pass) error {
	idx := atomicmixIndex(pass)
	if len(idx.vars) == 0 {
		return nil
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && atomicCallArg(pass.Info, call) != nil {
			// The sanctioned &x use: skip the pointer argument, but keep
			// scanning the remaining arguments (which may themselves
			// reference tracked variables, or nest atomic calls).
			for _, a := range call.Args[1:] {
				ast.Inspect(a, visit)
			}
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if v := referencedVar(pass.Info, e); v != nil {
				if pos, tracked := idx.vars[v]; tracked {
					pass.Reportf(e.Pos(), "plain access of %s, which is accessed atomically at %s; use sync/atomic consistently or a typed atomic.%s", v.Name(), trimPos(pos), suggestTypedAtomic(v.Type()))
					return false
				}
			}
		}
		return true
	}
	for _, file := range pass.Files {
		ast.Inspect(file, visit)
	}
	return nil
}

// atomicmixIndex builds (module-wide, memoized) the set of variables
// used atomically anywhere.
func atomicmixIndex(pass *analysis.Pass) *atomicIndex {
	build := func(pkgs []*analysis.ModPackage) any {
		idx := &atomicIndex{vars: map[*types.Var]token.Position{}}
		for _, p := range pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if v := atomicCallArg(p.Info, call); v != nil {
						if _, seen := idx.vars[v]; !seen {
							idx.vars[v] = pass.Fset.Position(call.Pos())
						}
					}
					return true
				})
			}
		}
		return idx
	}
	if pass.Module != nil {
		return pass.Module.Cached("atomicmix.index", func() any {
			return build(pass.Module.Packages)
		}).(*atomicIndex)
	}
	return build([]*analysis.ModPackage{{Pkg: pass.Pkg, Info: pass.Info, Files: pass.Files}}).(*atomicIndex)
}

// atomicCallArg returns the variable passed as &x to a sync/atomic
// function, or nil if call isn't one.
func atomicCallArg(info *types.Info, call *ast.CallExpr) *types.Var {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync/atomic" {
		return nil
	}
	// Typed atomic.X methods take no pointer argument; only the legacy
	// free functions (AddUint64, LoadInt32, StorePointer, ...) do.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || len(call.Args) == 0 {
		return nil
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	return varOf(info, unary.X)
}

// referencedVar resolves an ident or field selector to a variable we can
// track, skipping blank identifiers and non-variable objects.
func referencedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.SelectorExpr:
		return fieldOf(info, e)
	}
	return nil
}

func trimPos(p token.Position) string {
	return shortPath(p.Filename) + ":" + itoa(p.Line)
}

func suggestTypedAtomic(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
