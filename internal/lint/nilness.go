package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Nilness is a lightweight use-after-nil-check detector: inside the then
// branch of `if x == nil`, dereferencing x (field access on a pointer,
// indexing a slice, calling a function value) is certainly a mistake —
// usually an inverted condition or a missing early return. It deliberately
// does not flag method calls (nil receivers are legal Go) and gives up as
// soon as x is reassigned inside the branch.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "no dereference of a value inside the branch that just proved it nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilCheckedObj(pass.Info, ifs.Cond)
			if obj == nil {
				return true
			}
			checkNilUse(pass, ifs.Body, obj)
			return true
		})
	}
	return nil
}

// nilCheckedObj returns the object proven nil by cond (`x == nil` or
// `nil == x`) when x is a pointer, slice, map, or function identifier.
func nilCheckedObj(info *types.Info, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	var x ast.Expr
	switch {
	case isNilIdent(info, be.Y):
		x = be.X
	case isNilIdent(info, be.X):
		x = be.Y
	default:
		return nil
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	o := info.Uses[id]
	if o == nil {
		return nil
	}
	switch o.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Signature:
		return o
	}
	return nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilUse walks the then-branch looking for dereferences of obj,
// stopping at any reassignment.
func checkNilUse(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
						pass.Reportf(n.Pos(), "field access on %s inside the branch that proved it nil; this always panics — the condition is likely inverted", obj.Name())
					}
				}
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					pass.Reportf(n.Pos(), "index of %s inside the branch that proved it nil; this always panics — the condition is likely inverted", obj.Name())
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				pass.Reportf(n.Pos(), "call of %s inside the branch that proved it nil; this always panics — the condition is likely inverted", obj.Name())
			}
		}
		return true
	})
}
