package lint

import (
	"go/ast"
	"go/types"

	"hsqp/internal/lint/analysis"
)

// Poolsafe flags pooled message buffers escaping into long-lived struct
// fields. memory.Pool hands out NUMA-local buffers whose lifetime is
// managed by Retain/Release reference counts; stashing a fresh Get
// result in a struct field detaches the buffer from the code path that
// releases it. Most such stashes are use-after-release bugs in waiting:
// the field outlives the Release, the pool recycles the buffer, and a
// concurrent query scribbles over it.
//
// Deliberate ownership transfers (the exchange's per-destination open
// buffers, which are flushed and released in finalize) are annotated
// with lint:allow and documented in docs/invariants.md.
var Poolsafe = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "pool.Get results must not escape into struct fields; pooled buffers are released by the acquiring path",
	Run:  runPoolsafe,
}

var poolsafePkgs = map[string]bool{
	"exchange": true, "mux": true, "engine": true, "op": true, "serve": true,
}

func runPoolsafe(pass *analysis.Pass) error {
	if !poolsafePkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	wrappers := poolWrapperIndex(pass)
	for _, file := range pass.Files {
		if testFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolEscapes(pass, wrappers, fd.Body)
		}
	}
	return nil
}

// poolAllocCall reports whether call allocates from a pool: a direct
// Get/GetOn/Get0 on memory.Pool (or numa-package pools), or a one-level
// module wrapper like exchange.newMessage.
func poolAllocCall(info *types.Info, call *ast.CallExpr, wrappers map[*types.Func]bool) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if isDirectPoolGet(fn) {
		return true
	}
	return wrappers[fn]
}

func isDirectPoolGet(fn *types.Func) bool {
	switch fn.Name() {
	case "Get", "GetOn", "Get0":
	default:
		return false
	}
	rpkg, rtyp := recvTypeName(fn)
	return (rpkg == "memory" || rpkg == "numa") && rtyp == "Pool"
}

// poolWrapperIndex finds module functions that are thin pool-alloc
// wrappers: their return statements hand back a direct pool Get.
func poolWrapperIndex(pass *analysis.Pass) map[*types.Func]bool {
	build := func(pkgs []*analysis.ModPackage) any {
		wrappers := map[*types.Func]bool{}
		for _, p := range pkgs {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if returnsDirectPoolGet(p.Info, fd.Body) {
						if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
							wrappers[obj] = true
						}
					}
				}
			}
		}
		return wrappers
	}
	if pass.Module != nil {
		return pass.Module.Cached("poolsafe.wrappers", func() any {
			return build(pass.Module.Packages)
		}).(map[*types.Func]bool)
	}
	return build([]*analysis.ModPackage{{Pkg: pass.Pkg, Info: pass.Info, Files: pass.Files}}).(map[*types.Func]bool)
}

func returnsDirectPoolGet(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && isDirectPoolGet(fn) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkPoolEscapes tracks locals assigned from pool allocations within
// one function body and flags stores of those locals (or of alloc calls
// directly) into field-rooted locations.
func checkPoolEscapes(pass *analysis.Pass, wrappers map[*types.Func]bool, body *ast.BlockStmt) {
	pooled := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			isAlloc := false
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				isAlloc = poolAllocCall(pass.Info, call, wrappers)
			}
			isPooledLocal := false
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
				isPooledLocal = pooled[pass.Info.Uses[id]]
			}
			if !isAlloc && !isPooledLocal {
				continue
			}
			lhs := ast.Unparen(as.Lhs[i])
			switch l := lhs.(type) {
			case *ast.Ident:
				if o := objOfIdent(pass.Info, l); o != nil {
					pooled[o] = true
				}
			case *ast.SelectorExpr:
				if f := fieldOf(pass.Info, l); f != nil {
					pass.Reportf(as.Pos(), "pool buffer stored into field %s; pooled buffers must stay owned by the acquiring path (Release pairs with this Get) — copy the data or Retain with a documented owner", f.Name())
				}
			case *ast.IndexExpr:
				if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok {
					if f := fieldOf(pass.Info, sel); f != nil {
						pass.Reportf(as.Pos(), "pool buffer stored into field %s; pooled buffers must stay owned by the acquiring path (Release pairs with this Get) — copy the data or Retain with a documented owner", f.Name())
					}
				}
			}
		}
		return true
	})
}

func objOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
