// Package loader type-checks the packages hsqplint analyzes.
//
// It shells out to `go list -export -deps -json`, which works offline:
// dependencies outside the main module (here: only the standard library)
// are imported from their gc export data in the build cache, while every
// package of the main module is parsed and type-checked from source into
// one shared types universe — the property the module-aware analyzers
// (lockblock's cross-package may-block fixpoint, atomicmix's field
// index) rely on.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"hsqp/internal/lint/analysis"
)

// Result is the loaded module.
type Result struct {
	Module *analysis.Module
	// Targets are the packages matched by the load patterns (the ones
	// analyzers run on); Module.Packages additionally holds their
	// module-local dependencies.
	Targets []*analysis.ModPackage
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// Load lists patterns (relative to dir) and type-checks the module's
// packages from source.
func Load(dir string, patterns []string) (*Result, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}

	fset := token.NewFileSet()
	imp := newModImporter(fset)
	mod := analysis.NewModule(fset)
	res := &Result{Module: mod}

	// `go list -deps` emits packages in dependency order, so by the time
	// a module package is checked, everything it imports is resolvable.
	for _, p := range pkgs {
		if p.Module == nil || !p.Module.Main {
			if p.Export != "" {
				imp.exports[p.ImportPath] = p.Export
			}
			continue
		}
		mp, err := checkFromSource(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.built[p.ImportPath] = mp.Pkg
		mod.Add(mp)
		if !p.DepOnly {
			res.Targets = append(res.Targets, mp)
		}
	}
	return res, nil
}

// checkFromSource parses and type-checks one package.
func checkFromSource(fset *token.FileSet, imp types.ImporterFrom, path, dir string, goFiles []string) (*analysis.ModPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &analysis.ModPackage{Pkg: pkg, Info: info, Files: files}, nil
}

// NewInfo allocates the full set of types.Info maps the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// modImporter resolves module-local imports to the source-checked
// packages (preserving object identity across the module) and everything
// else through gc export data.
type modImporter struct {
	built   map[string]*types.Package
	exports map[string]string
	gc      types.ImporterFrom
}

func newModImporter(fset *token.FileSet) *modImporter {
	m := &modImporter{built: map[string]*types.Package{}, exports: map[string]string{}}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := m.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	m.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return m
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *modImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.built[path]; ok {
		return p, nil
	}
	return m.gc.ImportFrom(path, dir, 0)
}
