package lint_test

import (
	"testing"

	"hsqp/internal/lint"
	"hsqp/internal/lint/analysis"
	"hsqp/internal/lint/linttest"
)

func TestLockblock(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Lockblock}, "lockblock/a")
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Atomicmix}, "atomicmix/a")
}

func TestObsgate(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Obsgate}, "obsgate/engine", "obsgate/op")
}

func TestWiredeterminism(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Wiredeterminism}, "wiredeterminism/ser", "wiredeterminism/cluster")
}

func TestNopanic(t *testing.T) {
	// nopanic/other is out of scope (package name not in the serving
	// set) and must stay silent despite its panic.
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Nopanic}, "nopanic/mux", "nopanic/other")
}

func TestPoolsafe(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Poolsafe}, "poolsafe/exchange")
}

func TestNilness(t *testing.T) {
	linttest.Run(t, ".", []*analysis.Analyzer{lint.Nilness}, "nilness/a")
}

// TestIntegration runs the full analyzer suite over the known-bad
// fixture and asserts the exact diagnostic set: exactly one finding per
// analyzer, in deterministic order, with the lint:allow'd panic absent.
func TestIntegration(t *testing.T) {
	diags := linttest.Run(t, ".", lint.All(), "integration/mux")
	want := []string{
		"lockblock",
		"atomicmix",
		"obsgate",
		"wiredeterminism",
		"nopanic",
		"poolsafe",
		"nilness",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	seen := map[string]int{}
	for _, d := range diags {
		seen[d.Analyzer]++
	}
	for _, name := range want {
		if seen[name] != 1 {
			t.Errorf("analyzer %s: %d findings, want exactly 1", name, seen[name])
		}
	}
	// Diagnostics are sorted by position; the fixture lays violations
	// out in source order, so the order is fully determined.
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos.Line >= diags[i].Pos.Line {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}
