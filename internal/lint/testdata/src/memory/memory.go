// Package memory is a fixture stand-in for hsqp/internal/memory: the
// poolsafe analyzer matches Get/GetOn/Get0 methods on a Pool type in a
// package named memory.
package memory

type Node int

type Message struct {
	QueryID uint64
	Buf     []byte
}

func (m *Message) Retain()  {}
func (m *Message) Release() {}

type Pool struct{}

func (p *Pool) Get(local Node) *Message  { return &Message{} }
func (p *Pool) GetOn(node Node) *Message { return &Message{} }
func (p *Pool) Get0() *Message           { return &Message{} }
