package mux

import "fmt"

// --- firing cases ---

func route(dst int, n int) {
	if dst >= n {
		panic(fmt.Sprintf("route: dst %d out of range %d", dst, n)) // want nopanic:"bare panic in a serving package"
	}
}

func unreachable() {
	panic("unreachable") // want nopanic:"bare panic in a serving package"
}

// --- non-firing cases ---

// allowedPanic documents a deliberate exception.
func allowedPanic() {
	//lint:allow nopanic fixture exercises the suppression path
	panic("allowed")
}

// shadowedPanic is a user-defined function, not the builtin.
func localPanic(msg string) { _ = msg }

func callsLocal() {
	localPanic("fine")
}
