// Package other is outside nopanic's scope: tooling and test helpers may
// panic freely.
package other

func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}
