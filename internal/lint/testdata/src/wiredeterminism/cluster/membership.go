// Package cluster mirrors the membership-rebuild paths: a rebuild
// re-installs every cataloged table on the new mesh, and the install
// order reaches the wire (replica copies to joiners), so it must not
// come from map iteration. The sanctioned idiom is catalogNames-style
// sorted key collection (docs/invariants.md "Membership").
package cluster

import "sort"

type peer struct{}

func (p *peer) Send(name string, rows []byte) {}

type spec struct {
	rows []byte
}

// --- firing cases ---

// installUnsorted re-partitions the catalog in map order: the joiner
// receives tables in a different order every rebuild, so placement
// splits — pure functions of (source, n) — stop round-tripping
// byte-identically.
func installUnsorted(catalog map[string]spec, joiner *peer) {
	for name, s := range catalog {
		joiner.Send(name, s.rows) // want wiredeterminism:"Send called during map iteration"
	}
}

// drainUnsorted mirrors RemoveServer's hand-off: surviving peers are a
// map keyed by server id, and map order decides who hears first.
func drainUnsorted(survivors map[int]*peer, rows []byte) {
	for _, p := range survivors {
		p.Send("orders", rows) // want wiredeterminism:"Send called during map iteration"
	}
}

// --- non-firing cases ---

// installSorted is the catalogNames idiom used by rebuildLocked: bare
// keys out, sort, then install in that total order.
func installSorted(catalog map[string]spec, joiner *peer) {
	var names []string
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		joiner.Send(name, catalog[name].rows)
	}
}

// epochBump: arithmetic on map-derived counts carries no order.
func epochBump(catalog map[string]spec, epoch uint64) uint64 {
	for range catalog {
		epoch++
	}
	return epoch
}
