package ser

import (
	"bytes"
	"fmt"
	"sort"
)

type event struct {
	pid  int
	name string
}

// --- firing cases ---

func encodeUnsorted(buf *bytes.Buffer, families map[string]string) {
	for name, help := range families {
		buf.WriteString(name) // want wiredeterminism:"WriteString called during map iteration"
		_ = help
	}
}

func fprintUnsorted(buf *bytes.Buffer, m map[int]int) {
	for k, v := range m {
		fmt.Fprintf(buf, "%d=%d\n", k, v) // want wiredeterminism:"Fprintf called during map iteration"
	}
}

// derivedAppend mirrors the historical trace-metadata bug: records
// derived from map entries are appended in iteration order, and the
// later sort is not total over them.
func derivedAppend(procs map[int]string) []event {
	var evs []event
	for pid, name := range procs {
		evs = append(evs, event{pid: pid, name: name}) // want wiredeterminism:"derived value appended during map iteration"
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].pid < evs[j].pid })
	return evs
}

// --- non-firing cases ---

// sortedKeys is the sanctioned idiom: collect bare keys, sort, iterate
// the sorted slice.
func sortedKeys(buf *bytes.Buffer, families map[string]string) {
	var names []string
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf.WriteString(name)
		buf.WriteString(families[name])
	}
}

// sliceRange: iteration over slices is ordered; sinks are fine.
func sliceRange(buf *bytes.Buffer, rows []string) {
	for _, r := range rows {
		buf.WriteString(r)
	}
}

// loopLocal: a slice that does not outlive the iteration carries no
// order out of it.
func loopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, v*2)
		}
		total += len(doubled)
	}
	return total
}
