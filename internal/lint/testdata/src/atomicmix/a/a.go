package a

import (
	"sync"
	"sync/atomic"

	"atomicmix/b"
)

// --- firing cases ---

var hits uint64

func bumpHits() {
	atomic.AddUint64(&hits, 1)
}

func readHitsPlain() uint64 {
	return hits // want atomicmix:"plain access of hits"
}

type counters struct {
	rows uint64
	cold uint64
}

func (c *counters) addRows(n uint64) {
	atomic.AddUint64(&c.rows, n)
}

func (c *counters) incRowsPlain() {
	c.rows++ // want atomicmix:"plain access of rows"
}

func crossPackagePlain(s *b.Stat) {
	s.N = 5 // want atomicmix:"plain access of N, which is accessed atomically at .*b/b\.go:12"
}

// --- non-firing cases ---

func (c *counters) coldPath() {
	// cold is never touched atomically, so plain access is fine.
	c.cold++
}

func loadRows(c *counters) uint64 {
	return atomic.LoadUint64(&c.rows)
}

// typedAtomic uses the typed wrappers, which cannot be mixed and are
// outside the analyzer's scope entirely.
type typedAtomic struct {
	n atomic.Uint64
}

func (t *typedAtomic) bump() uint64 {
	t.n.Add(1)
	return t.n.Load()
}

// initBeforeShare is the sanctioned startup idiom: the declaration's
// zero value is established before any goroutine exists.
func startWorkers(wg *sync.WaitGroup) *counters {
	c := &counters{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.addRows(1)
	}()
	return c
}
