// Package b atomically updates an exported field so the atomicmix
// fixture can prove the index crosses package boundaries.
package b

import "sync/atomic"

type Stat struct {
	N uint64
}

func Bump(s *Stat) {
	atomic.AddUint64(&s.N, 1)
}
