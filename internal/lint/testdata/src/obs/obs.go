// Package obs is a fixture stand-in for hsqp/internal/obs: the obsgate
// analyzer matches on the package name and type/method names, so this
// skeleton is all it needs.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc()        {}
func (c *Counter) Add(n int64) {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

func (r *Registry) Counter(name, help string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name, help string) *Histogram { return &Histogram{} }

var Default = &Registry{}
