package exchange

import "memory"

type sender struct {
	pool *memory.Pool
	cur  *memory.Message
	open map[int]*memory.Message
}

// newMessage is a one-level pool wrapper; the analyzer treats its result
// like a direct Get.
func newMessage(p *memory.Pool) *memory.Message {
	return p.Get0()
}

// --- firing cases ---

func (s *sender) stashDirect() {
	msg := s.pool.Get(0)
	s.cur = msg // want poolsafe:"pool buffer stored into field cur"
}

func (s *sender) stashViaWrapper() {
	m := newMessage(s.pool)
	s.cur = m // want poolsafe:"pool buffer stored into field cur"
}

func (s *sender) stashIntoFieldMap(unit int) {
	msg := s.pool.GetOn(1)
	s.open[unit] = msg // want poolsafe:"pool buffer stored into field open"
}

func (s *sender) stashAliased() {
	msg := s.pool.Get0()
	alias := msg
	s.cur = alias // want poolsafe:"pool buffer stored into field cur"
}

// --- non-firing cases ---

// fillAndSend keeps the buffer owned by the acquiring path.
func (s *sender) fillAndSend(send func(*memory.Message)) {
	msg := s.pool.Get(0)
	msg.QueryID = 7
	msg.Buf = append(msg.Buf, 1, 2, 3)
	send(msg)
	msg.Release()
}

// returning hands ownership to the caller, which is fine: the Release
// obligation travels with the return value.
func (s *sender) alloc() *memory.Message {
	return s.pool.Get0()
}

// localMap: a map that does not outlive the function is just scratch.
func (s *sender) localScratch() int {
	open := map[int]*memory.Message{}
	open[0] = s.pool.Get0()
	n := len(open)
	open[0].Release()
	return n
}
