package op

import "time"

// In operator code even interval accounting is banned: timestamps come
// from the scheduler.
func scanBatch(rows []int64) time.Duration {
	t0 := time.Now() // want obsgate:"time\.Now in operator code"
	for i := range rows {
		rows[i]++
	}
	return time.Since(t0)
}
