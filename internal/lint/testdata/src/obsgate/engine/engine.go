package engine

import (
	"time"

	"obs"
)

// Package-level registration: the sanctioned pattern.
var mMorsels = obs.Default.Counter("engine_morsels_total", "morsels executed")

var mQueue *obs.Gauge

func init() {
	// init() registration is equally fine.
	mQueue = obs.Default.Gauge("engine_queue_depth", "runnable morsels")
}

type worker struct {
	start time.Time
}

// --- firing cases ---

func registerPerQuery(r *obs.Registry) {
	c := r.Counter("engine_bad", "registered per query") // want obsgate:"metric registered inside a function"
	c.Inc()
}

func stampWithoutInterval() {
	t := time.Now() // want obsgate:"time\.Now without matching time\.Since"
	_ = t
}

// --- non-firing cases ---

func intervalAccounting() time.Duration {
	t0 := time.Now()
	mMorsels.Inc()
	return time.Since(t0)
}

func recordStart(w *worker) {
	w.start = time.Now()
}

func newWorker() *worker {
	return &worker{start: time.Now()}
}

func updateOnly() {
	mMorsels.Add(3)
	mQueue.Set(1)
}
