package a

type conn struct {
	id   int
	next *conn
}

// --- firing cases ---

func idOf(c *conn) int {
	if c == nil {
		return c.id // want nilness:"field access on c inside the branch that proved it nil"
	}
	return c.id
}

func headRow(rows []int) int {
	if rows == nil {
		return rows[0] // want nilness:"index of rows inside the branch that proved it nil"
	}
	return rows[0]
}

func invoke(fn func() int) int {
	if nil == fn {
		return fn() // want nilness:"call of fn inside the branch that proved it nil"
	}
	return fn()
}

// --- non-firing cases ---

func idOrZero(c *conn) int {
	if c == nil {
		return 0
	}
	return c.id
}

func lazyInit(c *conn) int {
	if c == nil {
		c = &conn{id: 1}
		return c.id // reassigned above: no longer provably nil
	}
	return c.id
}

func nonNilBranch(c *conn) int {
	if c != nil {
		return c.id
	}
	return 0
}
