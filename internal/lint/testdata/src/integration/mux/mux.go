// Package mux is the known-bad integration fixture: one violation per
// analyzer, so the integration test can assert the exact diagnostic set
// hsqplint produces end to end (loading, module fixpoints, suppression,
// ordering).
package mux

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"memory"
	"obs"
)

type router struct {
	mu      sync.Mutex
	out     chan int
	sent    uint64
	held    *memory.Message
	pool    *memory.Pool
	started time.Time
}

func (r *router) sendLocked(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.out <- v // want lockblock:"channel send while holding r\.mu"
}

func (r *router) countPlain() uint64 {
	atomic.AddUint64(&r.sent, 1)
	return r.sent // want atomicmix:"plain access of sent"
}

func (r *router) register(reg *obs.Registry) {
	reg.Counter("mux_bad", "per-call registration").Inc() // want obsgate:"metric registered inside a function"
}

func (r *router) dump(buf *bytes.Buffer, peers map[string]int) {
	for name := range peers {
		buf.WriteString(name) // want wiredeterminism:"WriteString called during map iteration"
	}
}

func (r *router) guard(n int) {
	if n < 0 {
		panic("negative") // want nopanic:"bare panic in a serving package"
	}
}

func (r *router) stash() {
	msg := r.pool.Get0()
	r.held = msg // want poolsafe:"pool buffer stored into field held"
}

func (r *router) lookup(m map[string]int, key string) int {
	if m == nil {
		return m[key] // nilness? no: map index on nil map is legal
	}
	return m[key]
}

func (r *router) deref(next *router) int {
	if next == nil {
		return len(next.out) // want nilness:"field access on next"
	}
	return len(next.out)
}

// allowed is suppressed and must NOT appear in the diagnostic set.
func (r *router) allowed() {
	//lint:allow nopanic integration fixture suppression check
	panic("allowed")
}
