// Package b provides a cross-package may-block callee for the lockblock
// fixture: the analyzer's fixpoint must discover that Drain blocks even
// though it is defined in a different package than its caller.
package b

func Drain(ch chan int) int {
	return <-ch
}
