package a

import (
	"sync"
	"time"

	"lockblock/b"
)

type mux struct {
	mu   sync.Mutex
	cond *sync.Cond
	out  chan int
}

func newMux() *mux {
	m := &mux{out: make(chan int)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// --- firing cases ---

func (m *mux) sendUnderLock(v int) {
	m.mu.Lock()
	m.out <- v // want lockblock:"channel send while holding m\.mu"
	m.mu.Unlock()
}

func (m *mux) recvUnderDeferredLock() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return <-m.out // want lockblock:"channel receive while holding m\.mu"
}

func (m *mux) selectUnderLock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want lockblock:"select without default while holding m\.mu"
	case v := <-m.out:
		_ = v
	case m.out <- 1:
	}
}

func (m *mux) sleepUnderLock() {
	m.mu.Lock()
	time.Sleep(time.Millisecond) // want lockblock:"time\.Sleep while holding m\.mu"
	m.mu.Unlock()
}

func (m *mux) waitGroupUnderLock(wg *sync.WaitGroup) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wg.Wait() // want lockblock:"sync\.WaitGroup\.Wait while holding m\.mu"
}

// blockingHelper is discovered by the may-block fixpoint: one level of
// indirection between the lock and the channel op.
func (m *mux) blockingHelper() int {
	return <-m.out
}

func (m *mux) callsBlockingHelper() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blockingHelper() // want lockblock:"calls \(a\.mux\)\.blockingHelper, which may block: channel receive"
}

func (m *mux) callsCrossPackage() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return b.Drain(m.out) // want lockblock:"calls b\.Drain, which may block: channel receive"
}

// condWaitWrongMutex holds a mutex that is NOT the cond's paired one.
type twoLocks struct {
	mu    sync.Mutex
	other sync.Mutex
	cond  *sync.Cond
}

func newTwoLocks() *twoLocks {
	t := &twoLocks{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *twoLocks) condWaitWrongMutex() {
	t.other.Lock()
	defer t.other.Unlock()
	t.cond.Wait() // want lockblock:"sync\.Cond\.Wait while holding t\.other"
}

func (m *mux) lockedInLoop(vals []int) {
	for range vals {
		m.mu.Lock()
	}
	// Union semantics: the lock taken inside the loop is conservatively
	// still held after it.
	m.out <- 1 // want lockblock:"channel send while holding m\.mu"
}

// --- non-firing cases ---

func (m *mux) sendAfterUnlock(v int) {
	m.mu.Lock()
	pending := v + 1
	m.mu.Unlock()
	m.out <- pending
}

func (m *mux) tryUnderLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case m.out <- 1:
		return true
	default:
		return false
	}
}

func (m *mux) condWaitPaired() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cond.Wait()
}

// collectThenSend mirrors Mux.Close: gather under the lock, release,
// then do the blocking work.
func (m *mux) collectThenSend(src map[int]int) {
	m.mu.Lock()
	var vals []int
	for _, v := range src {
		vals = append(vals, v)
	}
	m.mu.Unlock()
	for _, v := range vals {
		m.out <- v
	}
}

// branchMerge: only one path locks, so after the merge the lock is not
// considered held (intersection of live paths).
func (m *mux) branchMerge(lock bool) {
	if lock {
		m.mu.Lock()
		m.mu.Unlock()
	}
	m.out <- 1
}

// goroutineBody: the spawned goroutine does not inherit the caller's
// lock scope.
func (m *mux) goroutineBody() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.out <- 1
	}()
}

// terminatedBranch: the locking path panics before the send, so the send
// only executes lock-free.
func (m *mux) terminatedBranch(bad bool) {
	if bad {
		m.mu.Lock()
		defer m.mu.Unlock()
		return
	}
	m.out <- 1
}

// allowComment: a deliberate exception, silenced with a reasoned
// directive.
func (m *mux) allowComment(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:allow lockblock fixture exercises the suppression path
	m.out <- v
}
