package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

func a() {
	//lint:allow lockblock holds only the paired lock
	x()
}

func b() {
	//lint:allow nopanic
	y()
}

func c() {
	//lint:allow
	z()
}

func x() {}
func y() {}
func z() {}
`

func TestParseDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := ParseDirectives(fset, f)

	if len(dirs) != 1 {
		t.Fatalf("got %d well-formed directives, want 1: %v", len(dirs), dirs)
	}
	if dirs[0].Analyzer != "lockblock" || dirs[0].Reason != "holds only the paired lock" {
		t.Errorf("directive = %+v, want lockblock with reason", dirs[0])
	}

	// Both the reasonless and the bare form are malformed: a reason is
	// mandatory so suppressions stay auditable.
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Analyzer != "directive" {
			t.Errorf("malformed directive reported as %q, want \"directive\"", d.Analyzer)
		}
	}
}

func TestSuppressor(t *testing.T) {
	dir := Directive{
		Pos:      token.Position{Filename: "m.go", Line: 10},
		Analyzer: "lockblock",
		Reason:   "documented",
	}
	s := NewSuppressor([]Directive{dir})

	same := Diagnostic{Analyzer: "lockblock", Pos: token.Position{Filename: "m.go", Line: 10}}
	below := Diagnostic{Analyzer: "lockblock", Pos: token.Position{Filename: "m.go", Line: 11}}
	far := Diagnostic{Analyzer: "lockblock", Pos: token.Position{Filename: "m.go", Line: 12}}
	otherAnalyzer := Diagnostic{Analyzer: "nopanic", Pos: token.Position{Filename: "m.go", Line: 10}}

	if !s.Suppressed(same) {
		t.Error("same-line diagnostic not suppressed")
	}
	if !s.Suppressed(below) {
		t.Error("line-below diagnostic not suppressed (directive on the line above)")
	}
	if s.Suppressed(far) {
		t.Error("unrelated line suppressed")
	}
	if s.Suppressed(otherAnalyzer) {
		t.Error("directive for lockblock suppressed a nopanic diagnostic")
	}
}
