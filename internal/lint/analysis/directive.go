package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// ParseDirectives extracts `//lint:allow <analyzer> <reason>` comments
// from a file. Malformed directives (no analyzer, empty reason) are
// returned separately as diagnostics so silent typos cannot disable a
// check.
func ParseDirectives(fset *token.FileSet, file *ast.File) (dirs []Directive, bad []Diagnostic) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{
					Analyzer: "directive",
					Pos:      pos,
					Message:  "malformed //lint:allow: want `//lint:allow <analyzer> <reason>`",
				})
				continue
			}
			dirs = append(dirs, Directive{
				Pos:      pos,
				Analyzer: fields[0],
				Reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return dirs, bad
}

// Suppressor filters diagnostics against lint:allow directives.
type Suppressor struct {
	allow map[suppressKey]bool
	used  map[suppressKey]bool
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// NewSuppressor indexes directives for lookup.
func NewSuppressor(dirs []Directive) *Suppressor {
	s := &Suppressor{allow: map[suppressKey]bool{}, used: map[suppressKey]bool{}}
	for _, d := range dirs {
		s.allow[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
	}
	return s
}

// Suppressed reports whether d is silenced by a directive on its line or
// the line directly above (the conventional spot for a standalone
// comment).
func (s *Suppressor) Suppressed(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		k := suppressKey{d.Pos.Filename, line, d.Analyzer}
		if s.allow[k] {
			s.used[k] = true
			return true
		}
	}
	return false
}
