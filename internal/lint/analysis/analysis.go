// Package analysis is a minimal, dependency-free equivalent of
// golang.org/x/tools/go/analysis, just large enough to host hsqplint's
// analyzers. The container that builds this repository has no module
// proxy access, so the real x/tools framework cannot be vendored; the
// API mirrors it closely (Analyzer, Pass, Diagnostic) so the analyzers
// could be ported to the upstream framework mechanically.
//
// Two deliberate differences from x/tools:
//
//   - Pass carries a *Module handle: all packages of the analyzed module
//     are type-checked into one shared object universe, so analyzers can
//     follow static calls and field accesses across package boundaries
//     (lockblock's may-block fixpoint, atomicmix's cross-package field
//     index). x/tools models this with Facts; a shared universe is much
//     simpler and exact within one module.
//   - Suppression is built in: a `//lint:allow <analyzer> <reason>`
//     comment on the diagnostic's line (or the line above) silences it.
//     The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:allow
	// directives (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description: the invariant, why it holds,
	// and the historical bug that motivated it.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass holds the inputs for running one analyzer on one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the shared view of every source-checked package in the
	// analyzed module (nil in single-package vet mode; analyzers must
	// degrade gracefully).
	Module *Module

	report func(Diagnostic)
}

// NewPass assembles a pass; report receives every (unsuppressed)
// diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, mod *Module, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Module: mod, report: report}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Module is the shared, module-wide analysis state: every package
// type-checked from source shares one token.FileSet and one types
// universe, so a *types.Func or *types.Var obtained in one package is
// pointer-identical when reached from another.
type Module struct {
	Fset     *token.FileSet
	Packages []*ModPackage

	mu    sync.Mutex
	cache map[string]any
}

// ModPackage is one source-checked package of the module.
type ModPackage struct {
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// NewModule creates the shared state.
func NewModule(fset *token.FileSet) *Module {
	return &Module{Fset: fset, cache: map[string]any{}}
}

// Add registers a source-checked package.
func (m *Module) Add(p *ModPackage) { m.Packages = append(m.Packages, p) }

// Cached memoizes a module-wide computation under key (e.g. lockblock's
// may-block fixpoint), so N per-package passes share one traversal.
func (m *Module) Cached(key string, compute func() any) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.cache[key]; ok {
		return v
	}
	v := compute()
	m.cache[key] = v
	return v
}

// FuncDecl returns the body (declaration plus owning package) of fn if
// it was type-checked from source anywhere in the module.
func (m *Module) FuncDecl(fn *types.Func) (*ast.FuncDecl, *ModPackage) {
	idx := m.Cached("funcdecls", func() any {
		decls := map[*types.Func]*declAt{}
		for _, p := range m.Packages {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						decls[obj] = &declAt{fd, p}
					}
				}
			}
		}
		return decls
	}).(map[*types.Func]*declAt)
	if d, ok := idx[fn]; ok {
		return d.decl, d.pkg
	}
	return nil, nil
}

type declAt struct {
	decl *ast.FuncDecl
	pkg  *ModPackage
}
