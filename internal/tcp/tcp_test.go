package tcp

import (
	"sync"
	"testing"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/numa"
)

func pair(t *testing.T, cfg Config) (send func(int), recvd *[]string, stats func() (Stats, Stats), stop func()) {
	t.Helper()
	fab, err := fabric.New(fabric.Config{Ports: 2, Rate: fabric.IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	topo := numa.TwoSocket()
	p0 := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	p1 := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	var mu sync.Mutex
	var got []string
	ch := make(chan struct{}, 1024)
	ep0 := NewEndpoint(fab, 0, cfg, p0.Get0, func(m *memory.Message) { m.Release() }, func(int, uint32) {})
	ep1 := NewEndpoint(fab, 1, cfg, p1.Get0, func(m *memory.Message) {
		mu.Lock()
		got = append(got, string(m.Content))
		mu.Unlock()
		m.Release()
		ch <- struct{}{}
	}, func(int, uint32) {})
	fab.Start()
	ep0.Start()
	ep1.Start()
	send = func(n int) {
		for i := 0; i < n; i++ {
			m := p0.Get0()
			m.Content = append(m.Content, 'm', byte('0'+i%10))
			ep0.Send(1, m)
		}
		for i := 0; i < n; i++ {
			<-ch
		}
	}
	return send, &got, func() (Stats, Stats) { return ep0.Stats(), ep1.Stats() }, func() {
		ep0.Close()
		ep1.Close()
		fab.Stop()
	}
}

func TestDeliveryAndContent(t *testing.T) {
	send, got, _, stop := pair(t, Config{Mode: ModeConnected, NICLocal: true})
	defer stop()
	send(5)
	if len(*got) != 5 {
		t.Fatalf("received %d messages", len(*got))
	}
	for i, s := range *got {
		if s != "m"+string(byte('0'+i)) {
			t.Fatalf("message %d corrupted: %q", i, s)
		}
	}
}

func TestCPUAccounting(t *testing.T) {
	send, _, stats, stop := pair(t, Config{Mode: ModeDatagram, NICLocal: true})
	defer stop()
	send(10)
	s0, s1 := stats()
	if s0.CPUSeconds <= 0 || s1.CPUSeconds <= 0 {
		t.Fatalf("no CPU charged: send=%v recv=%v", s0.CPUSeconds, s1.CPUSeconds)
	}
	if s0.Segments == 0 || s0.MsgsSent != 10 || s1.MsgsReceived != 10 {
		t.Fatalf("counters: %+v %+v", s0, s1)
	}
}

func TestCostModelOrdering(t *testing.T) {
	// The Figure 5 ladder, as per-byte receiver cost: datagram w/o offload
	// > datagram w/ offload > connected > connected+tuned interrupts.
	recvCost := func(cfg Config, bytes int) float64 {
		c := cfg.withDefaults()
		segs := segmentsFor(bytes, c.Mode.MTU())
		cost := perSegmentCost(segs, c.Offload).Seconds()
		cost += bytesCost(bytes, ChecksumRate).Seconds()
		cost += bytesCost(bytes, CopyRate).Seconds()
		if !c.TunedInterrupts {
			cost += bytesCost(bytes, IRQPathRate).Seconds()
		}
		return cost
	}
	const n = 512 * 1024
	ladder := []Config{
		{Mode: ModeDatagram, Offload: false},
		{Mode: ModeDatagram, Offload: true},
		{Mode: ModeConnected},
		{Mode: ModeConnected, TunedInterrupts: true},
	}
	prev := recvCost(ladder[0], n)
	for i := 1; i < len(ladder); i++ {
		cur := recvCost(ladder[i], n)
		if cur >= prev {
			t.Fatalf("ladder step %d not faster: %.0fµs vs %.0fµs", i, cur*1e6, prev*1e6)
		}
		prev = cur
	}
	// Connected mode never offloads (RFC 4755).
	if (Config{Mode: ModeConnected, Offload: true}).withDefaults().Offload {
		t.Fatal("connected mode must not offload")
	}
}

func TestMTUs(t *testing.T) {
	if ModeEthernet.MTU() != 1500 || ModeDatagram.MTU() != 2044 || ModeConnected.MTU() != 65520 {
		t.Fatal("MTUs wrong")
	}
	if segmentsFor(65520, 65520) != 1 || segmentsFor(65521, 65520) != 2 || segmentsFor(0, 1500) != 1 {
		t.Fatal("segment math wrong")
	}
}
