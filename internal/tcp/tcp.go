// Package tcp implements a socket-like transport over the simulated fabric,
// modeling the TCP/IP costs the paper measures in §2.1:
//
//   - data touching: every payload byte is *actually copied* from the
//     application buffer into a socket buffer on send and from the socket
//     buffer into an application buffer on receive, and a checksum is
//     computed over it (unless segmentation offload is enabled);
//   - per-segment cost: kernel/protocol processing and interrupt handling
//     are charged per MTU-sized segment, so a 2,044-byte datagram-mode MTU
//     costs ~32× more per message than the 65,520-byte connected mode;
//   - CPU load: all of the above burns CPU on the *receiving server's*
//     network goroutine, which competes with query-processing workers —
//     the paper's "the bottleneck of TCP remains the CPU load of the
//     receiver" (§2.1.2);
//   - NUIOA: if the network thread is not pinned to the NIC-local socket,
//     every byte pays extra memory-bus trips (§2.1.1), modeled as an
//     additional per-byte charge.
//
// The same implementation serves TCP over Gigabit Ethernet and IPoIB: only
// the fabric's data rate and the MTU/offload configuration differ.
package tcp

import (
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/spin"
)

// Mode selects the IPoIB transport mode (§2.1.2) or plain Ethernet.
type Mode int

const (
	// ModeEthernet is classic TCP over (Gigabit) Ethernet: 1500-byte MTU,
	// segmentation offload available.
	ModeEthernet Mode = iota
	// ModeDatagram is IPoIB datagram mode: 2,044-byte MTU, TCP offloading
	// supported.
	ModeDatagram
	// ModeConnected is IPoIB connected mode: 65,520-byte MTU, no offload —
	// the paper's recommended configuration for analytical workloads.
	ModeConnected
)

func (m Mode) String() string {
	switch m {
	case ModeEthernet:
		return "ethernet"
	case ModeDatagram:
		return "ipoib-datagram"
	case ModeConnected:
		return "ipoib-connected"
	default:
		return "tcp-mode?"
	}
}

// MTU returns the maximum transmission unit of the mode.
func (m Mode) MTU() int {
	switch m {
	case ModeEthernet:
		return 1500
	case ModeDatagram:
		return 2044
	case ModeConnected:
		return 65520
	default:
		return 1500
	}
}

// Cost model constants, expressed in *simulated* time and converted to
// wall time with the fabric's TimeScale. Calibrated so the single-stream
// throughput ladder of Figure 5 lands near the paper's measurements
// (0.37 / 0.93 / 1.51 / 2.17 GB/s for the four TCP variants):
//
//	variant                  per-byte (recv)            per-segment  → GB/s
//	datagram, no offload     copy+cksum+irq = 0.66 ns   4.2 µs/2 KB    ~0.37
//	datagram, offload        0.66 ns                    0.85 µs/2 KB   ~0.93
//	connected (64 KB MTU)    0.66 ns                    0.85 µs/64 KB  ~1.51
//	connected, irq pinned    0.46 ns                    0.85 µs/64 KB  ~2.17
const (
	// PerSegmentCost is kernel + protocol processing per segment without
	// offload (per-packet interrupts, header processing, no coalescing).
	PerSegmentCost = 4200 * time.Nanosecond
	// PerSegmentCostOffload is the reduced per-segment cost with NIC
	// segmentation offload / interrupt coalescing.
	PerSegmentCostOffload = 850 * time.Nanosecond
	// CopyRate is the rate of one memory copy pass (bytes/simulated-second).
	CopyRate = 4.5e9
	// ChecksumRate is the rate of the checksum pass over the payload.
	ChecksumRate = 4.2e9
	// IRQPathRate charges the soft-IRQ processing share when the interrupt
	// handler runs on the same core as the network thread (§2.1.2: pinning
	// the network thread to a different core gains a further 44%).
	IRQPathRate = 5e9
	// NUIOAPenaltyRate charges extra memory-bus trips when the network
	// thread runs on the NIC-remote socket (§2.1.1: ~2× reads on sender,
	// ~1.5×/2.33× on receiver).
	NUIOAPenaltyRate = 6e9
)

// Config configures a TCP endpoint.
type Config struct {
	Mode Mode
	// Offload enables NIC segmentation/checksum offload (unavailable in
	// IPoIB connected mode; the large MTU more than compensates, §2.1.2).
	Offload bool
	// NICLocal reports whether the network goroutine is pinned to the
	// NUMA socket the NIC hangs off (NUIOA, §2.1.1).
	NICLocal bool
	// TunedInterrupts pins the network thread to a different core than the
	// interrupt handler (§2.1.2), removing the soft-IRQ share from the
	// receive path at the price of occupying a second core.
	TunedInterrupts bool
	// SocketBuffer is the receive socket buffer size in bytes (backlog
	// before backpressure). Zero means 4 MB.
	SocketBuffer int
}

func (c Config) withDefaults() Config {
	if c.SocketBuffer == 0 {
		c.SocketBuffer = 4 << 20
	}
	if c.Mode == ModeConnected {
		c.Offload = false // not supported in connected mode (RFC 4755)
	}
	return c
}

// Stats reports endpoint activity.
type Stats struct {
	BytesSent     uint64
	BytesReceived uint64
	MsgsSent      uint64
	MsgsReceived  uint64
	InlineSent    uint64
	Segments      uint64
	CPUSeconds    float64 // modeled CPU burned by the TCP stack
}

type inlinePayload struct {
	src int
	tag uint32
}

// segment models one wire-level TCP segment batch carrying (part of) a
// message. To keep fabric message counts proportional to real packet
// counts without drowning the simulator, a message is sent as one fabric
// message but *accounted* as ceil(size/MTU) segments.
type wirePayload struct {
	header   memory.Message // wire fields only; Content points at sockBuf
	sockBuf  []byte
	segments int
	owner    *Endpoint // recycles sockBuf after the receive copy
}

// Endpoint is one server's TCP port.
type Endpoint struct {
	fab  *fabric.Fabric
	port int
	cfg  Config

	recvAlloc func() *memory.Message
	onRecv    func(*memory.Message)
	onInline  func(src int, tag uint32)

	scale   float64
	recvQ   chan *fabric.Message // socket buffer: decouples wire from stack
	stopCh  chan struct{}
	stopped atomic.Bool
	bufPool sync.Pool // recycles socket buffers ([]byte)

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
	msgsSent  atomic.Uint64
	msgsRecv  atomic.Uint64
	inlines   atomic.Uint64
	segments  atomic.Uint64
	cpuNanos  atomic.Int64
}

// NewEndpoint wires a TCP endpoint to fabric port `port`. See
// rdma.NewEndpoint for the callback contract.
func NewEndpoint(fab *fabric.Fabric, port int, cfg Config,
	recvAlloc func() *memory.Message,
	onRecv func(*memory.Message),
	onInline func(src int, tag uint32)) *Endpoint {

	c := cfg.withDefaults()
	ep := &Endpoint{
		fab:       fab,
		port:      port,
		cfg:       c,
		recvAlloc: recvAlloc,
		onRecv:    onRecv,
		onInline:  onInline,
		scale:     fab.Config().TimeScale,
		recvQ:     make(chan *fabric.Message, max(1, c.SocketBuffer/(64*1024))),
		stopCh:    make(chan struct{}),
	}
	fab.RegisterSink(port, ep.sink)
	return ep
}

// Start launches the receiving network goroutine (the "network thread" of
// §2.1.2, which together with the interrupt handler accounts for the
// 100–190% receiver CPU utilization the paper measures).
func (ep *Endpoint) Start() {
	go ep.recvLoop()
}

// Close stops the receive goroutine.
func (ep *Endpoint) Close() {
	if ep.stopped.CompareAndSwap(false, true) {
		close(ep.stopCh)
	}
}

// Send transmits m to dst through the socket interface. Unlike RDMA, the
// payload is copied into a socket buffer and checksummed by the *calling
// goroutine* — this is the send-side CPU cost of Figure 4/5. The message
// is released as soon as the copy is done, like a socket write returning.
func (ep *Endpoint) Send(dst int, m *memory.Message) {
	content := m.Content
	size := m.WireSize()
	segs := segmentsFor(size, ep.cfg.Mode.MTU())

	// Data touching: copy into the socket buffer; checksum unless offloaded.
	sockBuf := ep.getBuf(len(content))
	copy(sockBuf, content)
	var cost time.Duration
	cost += bytesCost(len(content), CopyRate)
	if !ep.cfg.Offload {
		cost += bytesCost(len(content), ChecksumRate)
	}
	cost += perSegmentCost(segs, ep.cfg.Offload) / 2 // transmit path is cheaper
	if !ep.cfg.NICLocal {
		cost += bytesCost(len(content), NUIOAPenaltyRate)
	}
	ep.chargeCPU(cost)

	pl := &wirePayload{
		owner: ep,
		header: memory.Message{
			QueryID:    m.QueryID,
			ExchangeID: m.ExchangeID,
			Last:       m.Last,
			Sender:     m.Sender,
			Seq:        m.Seq,
			Part:       m.Part,
		},
		sockBuf:  sockBuf,
		segments: segs,
	}
	m.Release() // socket write returned; application buffer reusable

	ep.bytesSent.Add(uint64(size))
	ep.msgsSent.Add(1)
	ep.segments.Add(uint64(segs))
	// TCP per-segment headers inflate the wire size slightly.
	wireSize := size + segs*58
	ep.fab.Send(&fabric.Message{Src: ep.port, Dst: dst, Size: wireSize, Payload: pl})
}

// SendInline sends a small latency-critical message. Over TCP this is a
// minimal segment; it still pays per-segment cost.
func (ep *Endpoint) SendInline(dst int, tag uint32) {
	ep.inlines.Add(1)
	ep.chargeCPU(perSegmentCost(1, ep.cfg.Offload))
	ep.fab.Send(&fabric.Message{
		Src:     ep.port,
		Dst:     dst,
		Size:    64,
		Payload: inlinePayload{src: ep.port, tag: tag},
		Inline:  true,
	})
}

// sink runs on the fabric goroutine: it models the NIC DMA into the socket
// buffer and the interrupt request. Heavy protocol work happens on the
// endpoint's own network goroutine (recvLoop).
func (ep *Endpoint) sink(fm *fabric.Message) {
	select {
	case ep.recvQ <- fm:
	case <-ep.stopCh:
	}
}

func (ep *Endpoint) recvLoop() {
	for {
		select {
		case fm := <-ep.recvQ:
			ep.handle(fm)
		case <-ep.stopCh:
			return
		}
	}
}

func (ep *Endpoint) handle(fm *fabric.Message) {
	switch pl := fm.Payload.(type) {
	case inlinePayload:
		ep.chargeCPU(perSegmentCost(1, ep.cfg.Offload))
		ep.onInline(pl.src, pl.tag)
	case *wirePayload:
		// Interrupt handling, protocol processing, checksum verification,
		// and the copy from socket buffer to application buffer: the
		// receiver-side CPU cost that makes TCP the bottleneck (§2.1.2).
		var cost time.Duration
		cost += perSegmentCost(pl.segments, ep.cfg.Offload)
		cost += bytesCost(len(pl.sockBuf), ChecksumRate) // receive checksum is never offloaded here
		cost += bytesCost(len(pl.sockBuf), CopyRate)
		if !ep.cfg.TunedInterrupts {
			cost += bytesCost(len(pl.sockBuf), IRQPathRate)
		}
		if !ep.cfg.NICLocal {
			cost += bytesCost(len(pl.sockBuf), NUIOAPenaltyRate)
		}
		ep.chargeCPU(cost)

		dst := ep.recvAlloc()
		dst.QueryID = pl.header.QueryID
		dst.ExchangeID = pl.header.ExchangeID
		dst.Last = pl.header.Last
		dst.Sender = pl.header.Sender
		dst.Seq = pl.header.Seq
		dst.Part = pl.header.Part
		dst.Content = append(dst.Content[:0], pl.sockBuf...)
		pl.owner.putBuf(pl.sockBuf)

		ep.bytesRecv.Add(uint64(fm.Size))
		ep.msgsRecv.Add(1)
		ep.onRecv(dst)
	default:
		panic("tcp: unexpected payload type on fabric")
	}
}

func (ep *Endpoint) chargeCPU(d time.Duration) {
	ep.cpuNanos.Add(int64(d))
	spin.Burn(time.Duration(float64(d) * ep.scale))
}

// Stats returns a snapshot of endpoint counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		BytesSent:     ep.bytesSent.Load(),
		BytesReceived: ep.bytesRecv.Load(),
		MsgsSent:      ep.msgsSent.Load(),
		MsgsReceived:  ep.msgsRecv.Load(),
		InlineSent:    ep.inlines.Load(),
		Segments:      ep.segments.Load(),
		CPUSeconds:    float64(ep.cpuNanos.Load()) / 1e9,
	}
}

// getBuf returns a socket buffer of length n, reusing returned buffers.
// Socket buffers are kernel-owned and recycled in real stacks too; without
// reuse, allocator and GC pressure would dwarf the modeled costs.
func (ep *Endpoint) getBuf(n int) []byte {
	if v := ep.bufPool.Get(); v != nil {
		b := v.([]byte)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (ep *Endpoint) putBuf(b []byte) {
	ep.bufPool.Put(b[:cap(b)]) //nolint:staticcheck // []byte in any is fine here
}

func segmentsFor(size, mtu int) int {
	if size <= 0 {
		return 1
	}
	return (size + mtu - 1) / mtu
}

func perSegmentCost(segs int, offload bool) time.Duration {
	c := PerSegmentCost
	if offload {
		c = PerSegmentCostOffload
	}
	return time.Duration(segs) * c
}

func bytesCost(n int, rate float64) time.Duration {
	return time.Duration(float64(n) / rate * float64(time.Second))
}
