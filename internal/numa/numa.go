// Package numa models the "network in the small": the non-uniform memory
// architecture inside a single server (Figure 1 of the paper).
//
// Real NUMA placement cannot be controlled from portable Go, so the model
// is explicit: a Topology describes sockets, cores per socket and the QPI
// interconnect between sockets. Workers are logically pinned to sockets,
// buffers carry a home socket, and code that touches memory on a remote
// socket calls Charge, which delays the caller by the simulated QPI
// transfer time. This reproduces the mechanism behind Figure 9 (NUMA-aware
// vs interleaved vs single-socket message allocation): the *fraction of
// remote accesses* determined by the allocation policy drives the penalty.
package numa

import (
	"fmt"
	"sync/atomic"
	"time"

	"hsqp/internal/spin"
)

// Node identifies a NUMA socket within a server.
type Node int

// NodeInterleaved marks memory whose pages are interleaved across all
// sockets: every streaming access touches (sockets−1)/sockets of its bytes
// remotely, regardless of which core reads it.
const NodeInterleaved Node = -1

// AllocPolicy selects where message buffers are allocated (Figure 9).
type AllocPolicy int

const (
	// AllocLocal allocates each buffer on the socket of the requesting
	// worker (the paper's NUMA-aware policy).
	AllocLocal AllocPolicy = iota
	// AllocInterleaved round-robins allocations across all sockets.
	AllocInterleaved
	// AllocSingleSocket allocates every buffer on socket 0.
	AllocSingleSocket
)

func (p AllocPolicy) String() string {
	switch p {
	case AllocLocal:
		return "numa-aware"
	case AllocInterleaved:
		return "interleaved"
	case AllocSingleSocket:
		return "one-socket"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Topology describes the sockets of one server and the cost of crossing
// the QPI interconnect between them.
type Topology struct {
	// Sockets is the number of NUMA nodes (CPUs) in the server.
	Sockets int
	// CoresPerSocket is the number of worker threads pinned to each socket.
	CoresPerSocket int
	// LocalBandwidth is local memory bandwidth in bytes/second (simulated).
	LocalBandwidth float64
	// QPIBandwidth is the per-link QPI bandwidth in bytes/second
	// (simulated). Remote accesses are charged at this rate in addition to
	// the local access the caller performs anyway.
	QPIBandwidth float64
	// QPILatency is the fixed latency added per remote transfer.
	QPILatency time.Duration

	// NICSocket is the socket the host channel adapter is attached to
	// (non-uniform I/O access, §2.1.1). The network thread should be
	// pinned here.
	NICSocket Node

	// AccessPasses calibrates how many effective streaming passes over a
	// message buffer query processing performs (deserialization, hash
	// probes, aggregate updates all touch the tuple data). The QPI charge
	// is per pass. Zero means 6.
	AccessPasses float64

	interleave atomic.Uint64
	remoteByte atomic.Uint64
	localByte  atomic.Uint64
}

// TwoSocket returns the paper's evaluation server: 2 sockets, 10 cores
// each, well connected via two QPI links.
func TwoSocket() *Topology {
	return &Topology{
		Sockets:        2,
		CoresPerSocket: 10,
		LocalBandwidth: 59.7e9,
		QPIBandwidth:   2 * 16e9, // two QPI links between the two sockets
		QPILatency:     100 * time.Nanosecond,
		NICSocket:      0,
	}
}

// FourSocket returns the 4-socket Sandy Bridge EP server of Figure 9
// (15 cores per socket, fully connected with one QPI link per pair).
func FourSocket() *Topology {
	return &Topology{
		Sockets:        4,
		CoresPerSocket: 15,
		LocalBandwidth: 59.7e9,
		QPIBandwidth:   16e9,
		QPILatency:     150 * time.Nanosecond,
		NICSocket:      0,
	}
}

// Validate checks the topology for usability.
func (t *Topology) Validate() error {
	if t.Sockets <= 0 {
		return fmt.Errorf("numa: topology needs at least one socket, got %d", t.Sockets)
	}
	if t.CoresPerSocket <= 0 {
		return fmt.Errorf("numa: topology needs at least one core per socket, got %d", t.CoresPerSocket)
	}
	if t.LocalBandwidth <= 0 || t.QPIBandwidth <= 0 {
		return fmt.Errorf("numa: bandwidths must be positive")
	}
	if t.NICSocket < 0 || int(t.NICSocket) >= t.Sockets {
		return fmt.Errorf("numa: NIC socket %d out of range [0,%d)", t.NICSocket, t.Sockets)
	}
	return nil
}

// TotalCores returns Sockets × CoresPerSocket.
func (t *Topology) TotalCores() int { return t.Sockets * t.CoresPerSocket }

// SocketOfCore maps a core index in [0, TotalCores) to its socket.
func (t *Topology) SocketOfCore(core int) Node {
	return Node(core / t.CoresPerSocket)
}

// AllocNode returns the socket a new buffer should live on for a worker
// pinned to socket local, under the given policy.
func (t *Topology) AllocNode(policy AllocPolicy, local Node) Node {
	switch policy {
	case AllocInterleaved:
		n := t.interleave.Add(1)
		return Node(int(n) % t.Sockets)
	case AllocSingleSocket:
		return 0
	default:
		return local
	}
}

// RemoteCost returns the simulated extra time for a worker on socket `at`
// to stream n bytes that live on socket `home`. Local access costs zero
// extra (the real work the caller does *is* the local access); interleaved
// memory pays for the remote share of its pages.
func (t *Topology) RemoteCost(at, home Node, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	passes := t.AccessPasses
	if passes == 0 {
		passes = 6
	}
	if home == NodeInterleaved {
		if t.Sockets <= 1 {
			return 0
		}
		share := float64(t.Sockets-1) / float64(t.Sockets)
		sec := float64(n) * share * passes / t.QPIBandwidth
		return t.QPILatency + time.Duration(sec*float64(time.Second))
	}
	if at == home {
		return 0
	}
	sec := float64(n) * passes / t.QPIBandwidth
	return t.QPILatency + time.Duration(sec*float64(time.Second))
}

// Charge records and *waits out* the remote-access penalty. It is the hook
// the execution engine calls when deserializing a message that lives on
// another socket. Scale < 1 compresses simulated time uniformly (the same
// scale used by the fabric) so tests stay fast while ratios hold.
func (t *Topology) Charge(at, home Node, n int, scale float64) {
	if n <= 0 {
		return
	}
	if at == home {
		t.localByte.Add(uint64(n))
		return
	}
	t.remoteByte.Add(uint64(n))
	d := t.RemoteCost(at, home, n)
	if scale > 0 {
		d = time.Duration(float64(d) * scale)
	}
	spin.Burn(d)
}

// Stats reports the bytes accessed locally and remotely since start.
func (t *Topology) Stats() (local, remote uint64) {
	return t.localByte.Load(), t.remoteByte.Load()
}

// ResetStats clears the access counters.
func (t *Topology) ResetStats() {
	t.localByte.Store(0)
	t.remoteByte.Store(0)
}
