package numa

import (
	"testing"
	"time"
)

func TestTopologies(t *testing.T) {
	for _, topo := range []*Topology{TwoSocket(), FourSocket()} {
		if err := topo.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if TwoSocket().TotalCores() != 20 || FourSocket().TotalCores() != 60 {
		t.Fatal("core counts off")
	}
	topo := FourSocket()
	if topo.SocketOfCore(0) != 0 || topo.SocketOfCore(59) != 3 {
		t.Fatal("SocketOfCore mapping broken")
	}
}

func TestValidateRejectsBadTopology(t *testing.T) {
	bad := &Topology{Sockets: 0, CoresPerSocket: 1, LocalBandwidth: 1, QPIBandwidth: 1}
	if bad.Validate() == nil {
		t.Fatal("zero sockets accepted")
	}
	bad2 := TwoSocket()
	bad2.NICSocket = 9
	if bad2.Validate() == nil {
		t.Fatal("out-of-range NIC socket accepted")
	}
}

func TestAllocNode(t *testing.T) {
	topo := FourSocket()
	if topo.AllocNode(AllocLocal, 2) != 2 {
		t.Fatal("local policy should return the local node")
	}
	if topo.AllocNode(AllocSingleSocket, 2) != 0 {
		t.Fatal("single-socket policy should return node 0")
	}
	seen := map[Node]bool{}
	for i := 0; i < 16; i++ {
		seen[topo.AllocNode(AllocInterleaved, 0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("interleaved policy covered %d sockets, want 4", len(seen))
	}
}

func TestRemoteCostOrdering(t *testing.T) {
	topo := FourSocket()
	const n = 512 * 1024
	local := topo.RemoteCost(1, 1, n)
	remote := topo.RemoteCost(1, 2, n)
	interleaved := topo.RemoteCost(1, NodeInterleaved, n)
	if local != 0 {
		t.Fatalf("local access should be free, got %v", local)
	}
	if remote <= 0 {
		t.Fatal("remote access should cost")
	}
	// Interleaved pays the remote share (3/4 on a 4-socket box): cheaper
	// than fully remote, more than local — the Figure 9 ordering.
	if !(interleaved > 0 && interleaved < remote) {
		t.Fatalf("interleaved cost %v should be in (0, %v)", interleaved, remote)
	}
	if topo.RemoteCost(0, 1, 0) != 0 {
		t.Fatal("zero bytes should be free")
	}
}

func TestChargeAccounting(t *testing.T) {
	topo := TwoSocket()
	topo.Charge(0, 0, 1000, 0.001)
	topo.Charge(0, 1, 2000, 0.001)
	l, r := topo.Stats()
	if l != 1000 || r != 2000 {
		t.Fatalf("stats local=%d remote=%d", l, r)
	}
	topo.ResetStats()
	if l, r := topo.Stats(); l != 0 || r != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestChargeActuallyWaits(t *testing.T) {
	topo := TwoSocket()
	topo.AccessPasses = 1
	start := time.Now()
	// 32 MB remote at 32 GB/s = 1 ms sim; scale 3 → 3 ms wall.
	topo.Charge(0, 1, 32<<20, 3)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("remote charge returned too fast: %v", elapsed)
	}
}
