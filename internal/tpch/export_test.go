package tpch

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteTableFormat(t *testing.T) {
	db := Generate(0.001, 42)
	var buf bytes.Buffer
	if err := WriteTable(&buf, db.Tables["region"]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d region lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "0|AFRICA|") || !strings.HasSuffix(lines[0], "|") {
		t.Fatalf("dbgen .tbl format broken: %q", lines[0])
	}
	// Decimals render with two places; dates as ISO.
	var ord bytes.Buffer
	if err := WriteTable(&ord, db.Tables["orders"]); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(ord.String(), "\n", 2)[0]
	fields := strings.Split(first, "|")
	if !strings.Contains(fields[3], ".") {
		t.Fatalf("o_totalprice not decimal-formatted: %q", fields[3])
	}
	if len(fields[4]) != 10 || fields[4][4] != '-' {
		t.Fatalf("o_orderdate not ISO: %q", fields[4])
	}
}

func TestExportWritesAllTables(t *testing.T) {
	dir := t.TempDir()
	db := Generate(0.001, 42)
	if err := db.Export(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range TableNames {
		st, err := os.Stat(filepath.Join(dir, name+".tbl"))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s.tbl empty", name)
		}
	}
}
