// Package tpch is a from-scratch, deterministic TPC-H data generator
// (dbgen substitute) plus the Zipf generator used by the skew experiments
// (§3.1). Cardinalities, key structure, date logic and the value
// distributions the 22 queries' selectivities depend on follow the TPC-H
// specification; free-text comments are pseudo-text with the Q13/Q16
// patterns embedded at fixed rates.
package tpch

import (
	"fmt"
	"strings"

	"hsqp/internal/storage"
)

// Database holds one fully generated TPC-H database (undistributed).
type Database struct {
	SF     float64
	Tables map[string]*storage.Batch
}

// rng is a splitmix64 generator: tiny, fast, deterministic across runs.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a uniform int in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// choice picks a uniform element of list.
func (r *rng) choice(list []string) string { return list[r.intn(len(list))] }

var (
	startDate   = storage.DateFromYMD(1992, 1, 1)
	endDate     = storage.DateFromYMD(1998, 12, 31)
	currentDate = storage.DateFromYMD(1995, 6, 17)
	// Last valid order date: ENDDATE − 151 days per the spec, so that
	// ship/receipt dates stay in range.
	lastOrderDate = endDate - 151
)

// Cardinalities per the specification.
const (
	suppliersPerSF = 10_000
	customersPerSF = 150_000
	partsPerSF     = 200_000
	ordersPerSF    = 1_500_000
	suppsPerPart   = 4
)

// Generate builds the complete database at scale factor sf with the given
// seed. The small fixed relations (nation, region) are SF-independent.
func Generate(sf float64, seed uint64) *Database {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: scale factor must be positive, got %g", sf))
	}
	db := &Database{SF: sf, Tables: make(map[string]*storage.Batch)}
	nSupp := scaled(suppliersPerSF, sf)
	nCust := scaled(customersPerSF, sf)
	nPart := scaled(partsPerSF, sf)
	nOrd := scaled(ordersPerSF, sf)

	db.Tables["region"] = genRegion(seed)
	db.Tables["nation"] = genNation(seed)
	db.Tables["supplier"] = genSupplier(nSupp, seed)
	db.Tables["customer"] = genCustomer(nCust, seed)
	db.Tables["part"] = genPart(nPart, seed)
	db.Tables["partsupp"] = genPartSupp(nPart, nSupp, seed)
	orders, lineitem := genOrdersAndLineitem(nOrd, nCust, nPart, nSupp, seed)
	db.Tables["orders"] = orders
	db.Tables["lineitem"] = lineitem
	return db
}

func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func genRegion(seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x7265_6769)
	b := storage.NewBatch(RegionSchema(), len(regions))
	for i, name := range regions {
		b.AppendRow(int64(i), name, comment(r, 3, 10))
	}
	return b
}

func genNation(seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x6e61_7469)
	b := storage.NewBatch(NationSchema(), len(nations))
	for i, n := range nations {
		b.AppendRow(int64(i), n.Name, int64(n.Region), comment(r, 4, 12))
	}
	return b
}

func genSupplier(n int, seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x7375_7070)
	b := storage.NewBatch(SupplierSchema(), n)
	for k := 1; k <= n; k++ {
		nation := r.intn(25)
		// ~5 per 10,000 suppliers carry the Q16 complaint pattern.
		var c string
		switch {
		case r.float() < 0.0005:
			c = "Customer " + comment(r, 1, 2) + " Complaints " + comment(r, 1, 3)
		case r.float() < 0.0005:
			c = "Customer " + comment(r, 1, 2) + " Recommends " + comment(r, 1, 3)
		default:
			c = comment(r, 5, 12)
		}
		b.AppendRow(
			int64(k),
			fmt.Sprintf("Supplier#%09d", k),
			address(r),
			int64(nation),
			phone(r, nation),
			acctbal(r),
			c,
		)
	}
	return b
}

func genCustomer(n int, seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x6375_7374)
	b := storage.NewBatch(CustomerSchema(), n)
	for k := 1; k <= n; k++ {
		nation := r.intn(25)
		b.AppendRow(
			int64(k),
			fmt.Sprintf("Customer#%09d", k),
			address(r),
			int64(nation),
			phone(r, nation),
			acctbal(r),
			r.choice(segments),
			comment(r, 6, 15),
		)
	}
	return b
}

func genPart(n int, seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x7061_7274)
	b := storage.NewBatch(PartSchema(), n)
	for k := 1; k <= n; k++ {
		m := r.rangeInt(1, 5)
		nb := r.rangeInt(1, 5)
		b.AppendRow(
			int64(k),
			partName(r),
			fmt.Sprintf("Manufacturer#%d", m),
			fmt.Sprintf("Brand#%d%d", m, nb),
			typeSyl1[r.intn(len(typeSyl1))]+" "+typeSyl2[r.intn(len(typeSyl2))]+" "+typeSyl3[r.intn(len(typeSyl3))],
			int64(r.rangeInt(1, 50)),
			containerSyl1[r.intn(len(containerSyl1))]+" "+containerSyl2[r.intn(len(containerSyl2))],
			retailPrice(k),
			comment(r, 2, 6),
		)
	}
	return b
}

// retailPrice is the spec formula: (90000 + ((pk/10) mod 20001) + 100·(pk mod 1000)) / 100.
func retailPrice(pk int) int64 {
	return int64(90000 + (pk/10)%20001 + 100*(pk%1000))
}

// supplierFor implements dbgen's partsupp supplier spreading so each
// (part, supplier) pair is unique and suppliers are evenly loaded.
func supplierFor(pk, i, nSupp int) int {
	return (pk+i*(nSupp/4+(pk-1)/nSupp))%nSupp + 1
}

func genPartSupp(nPart, nSupp int, seed uint64) *storage.Batch {
	r := newRNG(seed ^ 0x7073_7570)
	b := storage.NewBatch(PartSuppSchema(), nPart*suppsPerPart)
	for pk := 1; pk <= nPart; pk++ {
		for i := 0; i < suppsPerPart; i++ {
			b.AppendRow(
				int64(pk),
				int64(supplierFor(pk, i, nSupp)),
				int64(r.rangeInt(1, 9999)),
				int64(r.rangeInt(100, 100000)), // 1.00 .. 1000.00
				comment(r, 8, 20),
			)
		}
	}
	return b
}

func genOrdersAndLineitem(nOrd, nCust, nPart, nSupp int, seed uint64) (*storage.Batch, *storage.Batch) {
	r := newRNG(seed ^ 0x6f72_6465)
	orders := storage.NewBatch(OrdersSchema(), nOrd)
	lineitem := storage.NewBatch(LineitemSchema(), nOrd*4)
	for ok := 1; ok <= nOrd; ok++ {
		// Customers divisible by 3 never place orders (spec: only 2/3 of
		// customers have orders, exercised by Q13/Q22).
		ck := r.rangeInt(1, nCust)
		for nCust >= 3 && ck%3 == 0 {
			ck = r.rangeInt(1, nCust)
		}
		odate := startDate + int64(r.intn(int(lastOrderDate-startDate+1)))
		nLines := r.rangeInt(1, 7)
		var total int64
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			pk := r.rangeInt(1, nPart)
			sk := supplierFor(pk, r.intn(suppsPerPart), nSupp)
			qty := int64(r.rangeInt(1, 50))
			ext := qty * retailPrice(pk)
			disc := int64(r.rangeInt(0, 10)) // 0.00 .. 0.10
			tax := int64(r.rangeInt(0, 8))   // 0.00 .. 0.08
			ship := odate + int64(r.rangeInt(1, 121))
			commit := odate + int64(r.rangeInt(30, 90))
			receipt := ship + int64(r.rangeInt(1, 30))
			var rf string
			if receipt <= currentDate {
				if r.intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			} else {
				rf = "N"
			}
			var ls string
			if ship > currentDate {
				ls = "O"
				allF = false
			} else {
				ls = "F"
				allO = false
			}
			lineitem.AppendRow(
				int64(ok), int64(pk), int64(sk), int64(ln),
				qty*100, // decimal
				ext,
				disc,
				tax,
				rf, ls,
				ship, commit, receipt,
				r.choice(shipInstructs),
				r.choice(shipModes),
				comment(r, 2, 8),
			)
			total += ext * (100 + tax) / 100 * (100 - disc) / 100
		}
		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		// ~1/64 of order comments carry the Q13 "special … requests"
		// pattern.
		var oc string
		if r.intn(64) == 0 {
			oc = comment(r, 1, 3) + " special " + commentWords[r.intn(len(commentWords))] + " requests " + comment(r, 1, 3)
		} else {
			oc = comment(r, 4, 12)
		}
		orders.AppendRow(
			int64(ok), int64(ck), status, total, odate,
			r.choice(priorities),
			fmt.Sprintf("Clerk#%09d", r.rangeInt(1, max(1, nOrd/1000))),
			int64(0),
			oc,
		)
	}
	return orders, lineitem
}

func partName(r *rng) string {
	// Five distinct words of the 92-word color list.
	idx := make(map[int]struct{}, 5)
	words := make([]string, 0, 5)
	for len(words) < 5 {
		i := r.intn(len(partNameWords))
		if _, dup := idx[i]; dup {
			continue
		}
		idx[i] = struct{}{}
		words = append(words, partNameWords[i])
	}
	return strings.Join(words, " ")
}

func comment(r *rng, minWords, maxWords int) string {
	n := r.rangeInt(minWords, maxWords)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(commentWords[r.intn(len(commentWords))])
	}
	return sb.String()
}

func address(r *rng) string {
	n := r.rangeInt(10, 30)
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,."
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(chars[r.intn(len(chars))])
	}
	return sb.String()
}

// phone renders the spec's phone format: country code = nationkey + 10.
func phone(r *rng, nation int) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d",
		nation+10, r.rangeInt(100, 999), r.rangeInt(100, 999), r.rangeInt(1000, 9999))
}

// acctbal is uniform in [-999.99, 9999.99] (decimal hundredths).
func acctbal(r *rng) int64 {
	return int64(r.rangeInt(-99999, 999999))
}
