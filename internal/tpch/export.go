package tpch

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hsqp/internal/storage"
)

// WriteTable streams one relation in dbgen's .tbl format ('|'-separated,
// trailing '|', decimals with two places, ISO dates).
func WriteTable(w io.Writer, b *storage.Batch) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var sb strings.Builder
	for i := 0; i < b.Rows(); i++ {
		sb.Reset()
		for c, col := range b.Cols {
			switch b.Schema.Fields[c].Type {
			case storage.TDecimal:
				sb.WriteString(strconv.FormatFloat(storage.DecimalFloat(col.I64[i]), 'f', 2, 64))
			case storage.TDate:
				sb.WriteString(storage.FormatDate(col.I64[i]))
			case storage.TString:
				sb.WriteString(col.Str[i])
			case storage.TFloat64:
				sb.WriteString(strconv.FormatFloat(col.F64[i], 'g', -1, 64))
			default:
				sb.WriteString(strconv.FormatInt(col.I64[i], 10))
			}
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return fmt.Errorf("tpch: write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Export writes all eight relations as <dir>/<name>.tbl.
func (db *Database) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tpch: export: %w", err)
	}
	for _, name := range TableNames {
		f, err := os.Create(filepath.Join(dir, name+".tbl"))
		if err != nil {
			return fmt.Errorf("tpch: export %s: %w", name, err)
		}
		if err := WriteTable(f, db.Tables[name]); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
