package tpch

import (
	"strings"
	"testing"

	"hsqp/internal/storage"
)

func TestCardinalities(t *testing.T) {
	db := Generate(0.01, 42)
	want := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"customer": 1500,
		"part":     2000,
		"partsupp": 8000,
		"orders":   15000,
	}
	for name, n := range want {
		if got := db.Tables[name].Rows(); got != n {
			t.Errorf("%s: %d rows, want %d", name, got, n)
		}
	}
	// lineitem averages 4 lines per order.
	l := db.Tables["lineitem"].Rows()
	if l < 3*15000 || l > 5*15000 {
		t.Errorf("lineitem: %d rows, want ≈60000", l)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(0.002, 7)
	b := Generate(0.002, 7)
	for name := range a.Tables {
		ba, bb := a.Tables[name], b.Tables[name]
		if ba.Rows() != bb.Rows() {
			t.Fatalf("%s: row counts differ", name)
		}
		for i := 0; i < min(ba.Rows(), 100); i++ {
			for c := range ba.Cols {
				if ba.Cols[c].Value(i) != bb.Cols[c].Value(i) {
					t.Fatalf("%s row %d col %d differs between runs", name, i, c)
				}
			}
		}
	}
	c := Generate(0.002, 8)
	diff := false
	lo, lc := a.Tables["lineitem"], c.Tables["lineitem"]
	for i := 0; i < min(lo.Rows(), 100) && !diff; i++ {
		if lo.Cols[1].I64[i] != lc.Cols[1].I64[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical lineitem partkeys")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := Generate(0.005, 42)
	nSupp := db.Tables["supplier"].Rows()
	nPart := db.Tables["part"].Rows()
	nCust := db.Tables["customer"].Rows()
	nOrd := db.Tables["orders"].Rows()

	o := db.Tables["orders"]
	ck := o.Schema.MustColIndex("o_custkey")
	for i := 0; i < o.Rows(); i++ {
		v := o.Cols[ck].I64[i]
		if v < 1 || v > int64(nCust) {
			t.Fatalf("o_custkey %d out of range", v)
		}
		if nCust >= 3 && v%3 == 0 {
			t.Fatalf("customer %d divisible by 3 has an order (spec: they must not)", v)
		}
	}
	l := db.Tables["lineitem"]
	ok := l.Schema.MustColIndex("l_orderkey")
	pk := l.Schema.MustColIndex("l_partkey")
	sk := l.Schema.MustColIndex("l_suppkey")
	for i := 0; i < l.Rows(); i++ {
		if v := l.Cols[ok].I64[i]; v < 1 || v > int64(nOrd) {
			t.Fatalf("l_orderkey %d out of range", v)
		}
		if v := l.Cols[pk].I64[i]; v < 1 || v > int64(nPart) {
			t.Fatalf("l_partkey %d out of range", v)
		}
		if v := l.Cols[sk].I64[i]; v < 1 || v > int64(nSupp) {
			t.Fatalf("l_suppkey %d out of range", v)
		}
	}
	// Every (l_partkey, l_suppkey) must exist in partsupp.
	ps := db.Tables["partsupp"]
	pairs := map[[2]int64]bool{}
	for i := 0; i < ps.Rows(); i++ {
		pairs[[2]int64{ps.Cols[0].I64[i], ps.Cols[1].I64[i]}] = true
	}
	for i := 0; i < l.Rows(); i++ {
		key := [2]int64{l.Cols[pk].I64[i], l.Cols[sk].I64[i]}
		if !pairs[key] {
			t.Fatalf("lineitem references missing partsupp pair %v", key)
		}
	}
}

func TestDateLogic(t *testing.T) {
	db := Generate(0.005, 42)
	l := db.Tables["lineitem"]
	o := db.Tables["orders"]
	odate := map[int64]int64{}
	for i := 0; i < o.Rows(); i++ {
		odate[o.Cols[0].I64[i]] = o.Cols[o.Schema.MustColIndex("o_orderdate")].I64[i]
	}
	ship := l.Schema.MustColIndex("l_shipdate")
	commit := l.Schema.MustColIndex("l_commitdate")
	receipt := l.Schema.MustColIndex("l_receiptdate")
	rf := l.Schema.MustColIndex("l_returnflag")
	ls := l.Schema.MustColIndex("l_linestatus")
	cur := storage.MustDate("1995-06-17")
	for i := 0; i < l.Rows(); i++ {
		od := odate[l.Cols[0].I64[i]]
		s, c, r := l.Cols[ship].I64[i], l.Cols[commit].I64[i], l.Cols[receipt].I64[i]
		if s <= od || r <= s {
			t.Fatalf("row %d: dates out of order (order %d ship %d receipt %d)", i, od, s, r)
		}
		if c < od+30 || c > od+90 {
			t.Fatalf("row %d: commitdate offset %d out of [30,90]", i, c-od)
		}
		flag := l.Cols[rf].Str[i]
		if r <= cur && flag == "N" {
			t.Fatalf("row %d: receipt before current date but returnflag N", i)
		}
		if r > cur && flag != "N" {
			t.Fatalf("row %d: future receipt with returnflag %s", i, flag)
		}
		status := l.Cols[ls].Str[i]
		if (s > cur) != (status == "O") {
			t.Fatalf("row %d: shipdate/linestatus inconsistent", i)
		}
	}
}

func TestValueDistributions(t *testing.T) {
	db := Generate(0.01, 42)
	p := db.Tables["part"]
	brands := map[string]bool{}
	for i := 0; i < p.Rows(); i++ {
		name := p.Cols[p.Schema.MustColIndex("p_name")].Str[i]
		if len(strings.Fields(name)) != 5 {
			t.Fatalf("p_name %q must have 5 words", name)
		}
		brands[p.Cols[p.Schema.MustColIndex("p_brand")].Str[i]] = true
		size := p.Cols[p.Schema.MustColIndex("p_size")].I64[i]
		if size < 1 || size > 50 {
			t.Fatalf("p_size %d out of range", size)
		}
		pkey := p.Cols[0].I64[i]
		price := p.Cols[p.Schema.MustColIndex("p_retailprice")].I64[i]
		if price != retailPrice(int(pkey)) {
			t.Fatalf("retail price formula broken for part %d", pkey)
		}
	}
	if len(brands) != 25 {
		t.Errorf("got %d brands, want 25", len(brands))
	}
	// Q9 needs green parts, Q20 forest-prefixed parts.
	greens, forests := 0, 0
	for i := 0; i < p.Rows(); i++ {
		name := p.Cols[p.Schema.MustColIndex("p_name")].Str[i]
		if strings.Contains(name, "green") {
			greens++
		}
		if strings.HasPrefix(name, "forest") {
			forests++
		}
	}
	if greens == 0 || forests == 0 {
		t.Fatalf("LIKE-pattern selectivities empty: greens=%d forests=%d", greens, forests)
	}
	// Customer phone country code is nationkey+10.
	c := db.Tables["customer"]
	phone := c.Schema.MustColIndex("c_phone")
	nk := c.Schema.MustColIndex("c_nationkey")
	for i := 0; i < min(c.Rows(), 100); i++ {
		want := int(c.Cols[nk].I64[i]) + 10
		got := int(c.Cols[phone].Str[i][0]-'0')*10 + int(c.Cols[phone].Str[i][1]-'0')
		if got != want {
			t.Fatalf("phone %q: country code %d, want %d", c.Cols[phone].Str[i], got, want)
		}
	}
}

func TestTotalPriceConsistency(t *testing.T) {
	db := Generate(0.002, 42)
	o := db.Tables["orders"]
	l := db.Tables["lineitem"]
	sum := map[int64]int64{}
	for i := 0; i < l.Rows(); i++ {
		ext := l.Cols[l.Schema.MustColIndex("l_extendedprice")].I64[i]
		tax := l.Cols[l.Schema.MustColIndex("l_tax")].I64[i]
		disc := l.Cols[l.Schema.MustColIndex("l_discount")].I64[i]
		sum[l.Cols[0].I64[i]] += ext * (100 + tax) / 100 * (100 - disc) / 100
	}
	tp := o.Schema.MustColIndex("o_totalprice")
	for i := 0; i < o.Rows(); i++ {
		if o.Cols[tp].I64[i] != sum[o.Cols[0].I64[i]] {
			t.Fatalf("order %d: totalprice %d != lineitem sum %d",
				o.Cols[0].I64[i], o.Cols[tp].I64[i], sum[o.Cols[0].I64[i]])
		}
	}
}

func TestZipfSkewMonotone(t *testing.T) {
	// §3.1: fewer parallel units → smaller overload.
	small := MaxPartitionShare(100000, 0.84, 200000, 6, 7)
	large := MaxPartitionShare(100000, 0.84, 200000, 240, 7)
	if small >= large {
		t.Fatalf("overload should grow with units: 6→%.2f, 240→%.2f", small, large)
	}
	if small > 1.5 {
		t.Errorf("6 units should be nearly balanced, got %.2f", small)
	}
	if large < 2 {
		t.Errorf("240 units at z=0.84 should more than double, got %.2f", large)
	}
	// z=0 is uniform: essentially balanced for any unit count.
	uni := MaxPartitionShare(100000, 0, 200000, 240, 7)
	if uni > 1.6 {
		t.Errorf("uniform distribution overload %.2f, want ≈1", uni)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(100, 1.1, 3)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Error("Zipf head not heavier than tail")
	}
}
