package tpch

import "hsqp/internal/storage"

// Schemas of the eight TPC-H relations. TPC-H data contains no NULLs, so
// all fields are declared NOT NULL; the wire format still supports NULLs
// for outer-join results.

func f(name string, t storage.Type) storage.Field {
	return storage.Field{Name: name, Type: t}
}

// RegionSchema returns the region relation schema.
func RegionSchema() *storage.Schema {
	return storage.NewSchema(
		f("r_regionkey", storage.TInt64),
		f("r_name", storage.TString),
		f("r_comment", storage.TString),
	)
}

// NationSchema returns the nation relation schema.
func NationSchema() *storage.Schema {
	return storage.NewSchema(
		f("n_nationkey", storage.TInt64),
		f("n_name", storage.TString),
		f("n_regionkey", storage.TInt64),
		f("n_comment", storage.TString),
	)
}

// SupplierSchema returns the supplier relation schema.
func SupplierSchema() *storage.Schema {
	return storage.NewSchema(
		f("s_suppkey", storage.TInt64),
		f("s_name", storage.TString),
		f("s_address", storage.TString),
		f("s_nationkey", storage.TInt64),
		f("s_phone", storage.TString),
		f("s_acctbal", storage.TDecimal),
		f("s_comment", storage.TString),
	)
}

// PartSchema returns the part relation schema.
func PartSchema() *storage.Schema {
	return storage.NewSchema(
		f("p_partkey", storage.TInt64),
		f("p_name", storage.TString),
		f("p_mfgr", storage.TString),
		f("p_brand", storage.TString),
		f("p_type", storage.TString),
		f("p_size", storage.TInt64),
		f("p_container", storage.TString),
		f("p_retailprice", storage.TDecimal),
		f("p_comment", storage.TString),
	)
}

// PartSuppSchema returns the partsupp relation schema (the Figure 8
// example relation).
func PartSuppSchema() *storage.Schema {
	return storage.NewSchema(
		f("ps_partkey", storage.TInt64),
		f("ps_suppkey", storage.TInt64),
		f("ps_availqty", storage.TInt64),
		f("ps_supplycost", storage.TDecimal),
		f("ps_comment", storage.TString),
	)
}

// CustomerSchema returns the customer relation schema.
func CustomerSchema() *storage.Schema {
	return storage.NewSchema(
		f("c_custkey", storage.TInt64),
		f("c_name", storage.TString),
		f("c_address", storage.TString),
		f("c_nationkey", storage.TInt64),
		f("c_phone", storage.TString),
		f("c_acctbal", storage.TDecimal),
		f("c_mktsegment", storage.TString),
		f("c_comment", storage.TString),
	)
}

// OrdersSchema returns the orders relation schema.
func OrdersSchema() *storage.Schema {
	return storage.NewSchema(
		f("o_orderkey", storage.TInt64),
		f("o_custkey", storage.TInt64),
		f("o_orderstatus", storage.TString),
		f("o_totalprice", storage.TDecimal),
		f("o_orderdate", storage.TDate),
		f("o_orderpriority", storage.TString),
		f("o_clerk", storage.TString),
		f("o_shippriority", storage.TInt64),
		f("o_comment", storage.TString),
	)
}

// LineitemSchema returns the lineitem relation schema.
func LineitemSchema() *storage.Schema {
	return storage.NewSchema(
		f("l_orderkey", storage.TInt64),
		f("l_partkey", storage.TInt64),
		f("l_suppkey", storage.TInt64),
		f("l_linenumber", storage.TInt64),
		f("l_quantity", storage.TDecimal),
		f("l_extendedprice", storage.TDecimal),
		f("l_discount", storage.TDecimal),
		f("l_tax", storage.TDecimal),
		f("l_returnflag", storage.TString),
		f("l_linestatus", storage.TString),
		f("l_shipdate", storage.TDate),
		f("l_commitdate", storage.TDate),
		f("l_receiptdate", storage.TDate),
		f("l_shipinstruct", storage.TString),
		f("l_shipmode", storage.TString),
		f("l_comment", storage.TString),
	)
}

// TableNames lists the eight relations in generation order.
var TableNames = []string{
	"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
}

// SchemaOf returns the schema of a relation by name.
func SchemaOf(name string) *storage.Schema {
	switch name {
	case "region":
		return RegionSchema()
	case "nation":
		return NationSchema()
	case "supplier":
		return SupplierSchema()
	case "customer":
		return CustomerSchema()
	case "part":
		return PartSchema()
	case "partsupp":
		return PartSuppSchema()
	case "orders":
		return OrdersSchema()
	case "lineitem":
		return LineitemSchema()
	default:
		return nil
	}
}

// PrimaryKeyColumn returns the index of the first primary-key column of a
// relation — the partitioning column for "partitioned" placement (§4.3.1).
func PrimaryKeyColumn(name string) int {
	switch name {
	case "lineitem":
		return 0 // l_orderkey
	default:
		return 0 // first column is the key for all other relations
	}
}
