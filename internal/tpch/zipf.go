package tpch

import "math"

// Zipf draws from a Zipf distribution over {0, …, n−1} with exponent z,
// used to generate the skewed join-attribute workloads of §3.1 (the paper
// analyzes z = 0.84: it more than doubles the largest of 240 partitions
// but inflates the largest of 6 partitions by a mere 2.8%).
type Zipf struct {
	n   int
	cdf []float64
	rng *rng
}

// NewZipf builds a Zipf sampler over n values with exponent z ≥ 0
// (z = 0 is uniform) and a deterministic seed.
func NewZipf(n int, z float64, seed uint64) *Zipf {
	if n <= 0 {
		panic("tpch: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf, rng: newRNG(seed)}
}

// Next draws the next value in [0, n).
func (zf *Zipf) Next() int {
	u := zf.rng.float()
	// Binary search the CDF.
	lo, hi := 0, zf.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zf.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MaxPartitionShare draws `draws` values, splits them into `parts` hash
// partitions and returns the largest partition's share relative to the
// ideal 1/parts (1.0 = perfectly balanced). This is the §3.1 skew
// analysis: fewer parallel units ⇒ smaller overload factor.
func MaxPartitionShare(n int, z float64, draws, parts int, seed uint64) float64 {
	zf := NewZipf(n, z, seed)
	counts := make([]int, parts)
	for i := 0; i < draws; i++ {
		v := zf.Next()
		// Mix the value so partitioning is hash-like, not range-like.
		h := uint64(v) * 0x9e3779b97f4a7c15
		counts[h%uint64(parts)]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	ideal := float64(draws) / float64(parts)
	return float64(maxC) / ideal
}
