package tpch

// Word lists following the TPC-H specification's grammar closely enough to
// preserve the selectivities the queries depend on (LIKE patterns on part
// names and types, container classes, comment patterns for Q13/Q16).

// partNameWords is the P_NAME word list (the spec's 92 color words);
// p_name concatenates five distinct entries. Q9 filters '%green%'.
var partNameWords = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
	"light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
	"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
	"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
	"purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
	"seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
	"tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

// Type grammar: Syllable1 Syllable2 Syllable3 (6×5×5 = 150 types).
var (
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
)

// Container grammar: Syllable1 Syllable2 (5×8 = 40 containers).
var (
	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
)

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// nations is the spec's 25-entry nation list with its region assignment.
var nations = []struct {
	Name   string
	Region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"RUSSIA", 3}, {"SAUDI ARABIA", 4}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1}, {"VIETNAM", 2},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// commentWords feeds the pseudo-text comment generator.
var commentWords = []string{
	"furiously", "quickly", "carefully", "blithely", "slyly", "silent",
	"final", "pending", "regular", "express", "bold", "even", "special",
	"ironic", "unusual", "daring", "close", "dogged", "idle", "busy",
	"accounts", "deposits", "packages", "requests", "instructions", "theodolites",
	"foxes", "pinto", "beans", "dependencies", "excuses", "platelets",
	"asymptotes", "courts", "dolphins", "multipliers", "sauternes", "warthogs",
	"frets", "dinos", "attainments", "somas", "sheaves", "pains",
	"nag", "sleep", "haggle", "wake", "cajole", "boost", "detect",
	"among", "about", "above", "across", "after", "against", "along",
	"the", "are", "was", "according", "to", "never", "always",
}
