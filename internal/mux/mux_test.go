package mux

import (
	"fmt"
	"sync"
	"testing"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/numa"
	"hsqp/internal/rdma"
)

// testCluster wires n muxes over a fast fabric with RDMA endpoints.
func testCluster(t *testing.T, n int, scheduling bool) ([]*Mux, func()) {
	t.Helper()
	fab, err := fabric.New(fabric.Config{Ports: n, Rate: fabric.IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	topo := numa.TwoSocket()
	muxes := make([]*Mux, n)
	eps := make([]*rdma.Endpoint, n)
	for i := 0; i < n; i++ {
		pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
		m, err := New(Config{Server: i, Servers: n, Topology: topo, Pool: pool, Scheduling: scheduling})
		if err != nil {
			t.Fatal(err)
		}
		ep := rdma.NewEndpoint(fab, i, m.RecvAlloc, m.OnRecv, m.OnInline)
		m.SetTransport(ep)
		muxes[i] = m
		eps[i] = ep
	}
	fab.Start()
	for i, m := range muxes {
		eps[i].Start()
		m.Start()
	}
	return muxes, func() {
		for i, m := range muxes {
			m.Close()
			eps[i].Close()
		}
		fab.Stop()
	}
}

func sendAll(m *Mux, pool *memory.Pool, exID int32, servers, msgsPerDst int) {
	for d := 0; d < servers; d++ {
		for k := 0; k < msgsPerDst; k++ {
			msg := pool.Get(0)
			msg.ExchangeID = exID
			msg.Sender = m.ServerID()
			msg.Seq = uint32(k)
			msg.Content = append(msg.Content, byte(d), byte(k))
			m.Send(d, msg)
		}
		last := pool.Get(0)
		last.ExchangeID = exID
		last.Sender = m.ServerID()
		last.Seq = uint32(msgsPerDst)
		last.Last = true
		m.Send(d, last)
	}
}

func TestAllToAllDelivery(t *testing.T) {
	for _, sched := range []bool{false, true} {
		t.Run(fmt.Sprintf("sched=%v", sched), func(t *testing.T) {
			const n = 4
			const msgs = 10
			muxes, stop := testCluster(t, n, sched)
			defer stop()
			topo := numa.TwoSocket()
			recvs := make([]*ExchangeRecv, n)
			for i, m := range muxes {
				recvs[i] = m.OpenExchange(0, 1, n)
			}
			var wg sync.WaitGroup
			got := make([]int, n)
			for i := range muxes {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
					sendAll(muxes[i], pool, 1, n, msgs)
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						msg := recvs[i].Recv(0)
						if msg == nil {
							return
						}
						if len(msg.Content) > 0 {
							got[i]++
						}
						msg.Release()
					}
				}()
			}
			wg.Wait()
			for i, g := range got {
				if g != n*msgs {
					t.Errorf("server %d received %d messages, want %d", i, g, n*msgs)
				}
				if !recvs[i].Drained() {
					t.Errorf("server %d exchange not drained", i)
				}
			}
		})
	}
}

func TestEarlyArrivalsBuffered(t *testing.T) {
	muxes, stop := testCluster(t, 2, false)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)

	// Server 0 sends before server 1 opens the exchange.
	msg := pool.Get(0)
	msg.ExchangeID = 9
	msg.Sender = 0
	msg.Content = append(msg.Content, 42)
	muxes[0].Send(1, msg)
	last := pool.Get(0)
	last.ExchangeID = 9
	last.Sender = 0
	last.Seq = 1
	last.Last = true
	muxes[0].Send(1, last)
	// Our own contribution for exchange 9 on server 0 is irrelevant; open
	// with senders=1 on server 1 only.
	recv := muxes[1].OpenExchange(0, 9, 1)
	var payloads [][]byte
	for {
		m := recv.Recv(0)
		if m == nil {
			break
		}
		if len(m.Content) > 0 {
			payloads = append(payloads, append([]byte{}, m.Content...))
		}
		m.Release()
	}
	if len(payloads) != 1 || payloads[0][0] != 42 {
		t.Fatalf("early message lost: %v", payloads)
	}
}

func TestWorkStealingAcrossSockets(t *testing.T) {
	muxes, stop := testCluster(t, 1, false)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	recv := muxes[0].OpenExchange(0, 3, 1)
	// All messages homed on socket 1; the consumer sits on socket 0.
	for k := 0; k < 5; k++ {
		msg := pool.GetOn(1)
		msg.ExchangeID = 3
		msg.Sender = 0
		msg.Seq = uint32(k)
		msg.Content = append(msg.Content, byte(k))
		muxes[0].Send(0, msg)
	}
	last := pool.GetOn(1)
	last.ExchangeID = 3
	last.Sender = 0
	last.Seq = 5
	last.Last = true
	muxes[0].Send(0, last)

	seen := 0
	for {
		m := recv.Recv(0) // socket 0 worker must steal from socket 1
		if m == nil {
			break
		}
		if len(m.Content) > 0 {
			seen++
		}
		m.Release()
	}
	if seen != 5 {
		t.Fatalf("stole %d messages, want 5", seen)
	}
	if recv.StolenCount() == 0 {
		t.Fatal("steals not counted")
	}
}

func TestClassicModeRouting(t *testing.T) {
	muxes, stop := testCluster(t, 2, false)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	const workers = 3
	recv := muxes[1].OpenExchangeClassic(0, 5, 1, workers)

	// Address each worker individually from server 0. Sequence numbers are
	// per destination *server*, continuing across the worker partitions.
	for w := 0; w < workers; w++ {
		msg := pool.Get(0)
		msg.ExchangeID = 5
		msg.Sender = 0
		msg.Seq = uint32(w)
		msg.Part = int16(w)
		msg.Content = append(msg.Content, byte(w))
		muxes[0].Send(1, msg)
	}
	for w := 0; w < workers; w++ {
		last := pool.Get(0)
		last.ExchangeID = 5
		last.Sender = 0
		last.Seq = uint32(workers + w)
		last.Part = int16(w)
		last.Last = true
		muxes[0].Send(1, last)
	}
	for w := 0; w < workers; w++ {
		var payloads [][]byte
		for {
			m := recv.RecvWorker(w)
			if m == nil {
				break
			}
			if len(m.Content) > 0 {
				payloads = append(payloads, append([]byte{}, m.Content...))
			}
			m.Release()
		}
		if len(payloads) != 1 || payloads[0][0] != byte(w) {
			t.Fatalf("worker %d got %v, want exactly its own message", w, payloads)
		}
	}
}

// TestSeqOrderingAssertion: a duplicate (or regressing) sequence number
// from one sender must trip the receive-side ordering assertion. Local
// sends route synchronously, so the panic surfaces on the caller.
func TestSeqOrderingAssertion(t *testing.T) {
	muxes, stop := testCluster(t, 1, false)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	muxes[0].OpenExchange(0, 11, 1)
	a := pool.Get(0)
	a.ExchangeID = 11
	a.Sender = 0
	a.Seq = 3
	a.Content = append(a.Content, 1)
	muxes[0].Send(0, a)
	b := pool.Get(0)
	b.ExchangeID = 11
	b.Sender = 0
	b.Seq = 3 // duplicate: must panic
	b.Content = append(b.Content, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate sequence number did not trip the ordering assertion")
		}
	}()
	muxes[0].Send(0, b)
}

// TestSeqGapsAllowed: gaps are legal (selective broadcast advances all of
// a sender's destination counters at once); only regressions panic.
func TestSeqGapsAllowed(t *testing.T) {
	muxes, stop := testCluster(t, 1, false)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	recv := muxes[0].OpenExchange(0, 12, 1)
	for _, seq := range []uint32{0, 2, 7} {
		m := pool.Get(0)
		m.ExchangeID = 12
		m.Sender = 0
		m.Seq = seq
		m.Content = append(m.Content, byte(seq))
		muxes[0].Send(0, m)
	}
	last := pool.Get(0)
	last.ExchangeID = 12
	last.Sender = 0
	last.Seq = 8
	last.Last = true
	muxes[0].Send(0, last)
	n := 0
	for {
		m := recv.Recv(0)
		if m == nil {
			break
		}
		if len(m.Content) > 0 {
			n++
		}
		m.Release()
	}
	if n != 3 {
		t.Fatalf("received %d data messages, want 3", n)
	}
}

func TestDuplicateOpenPanics(t *testing.T) {
	muxes, stop := testCluster(t, 1, false)
	defer stop()
	muxes[0].OpenExchange(0, 7, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate OpenExchange did not panic")
		}
	}()
	muxes[0].OpenExchange(0, 7, 1)
}

func TestStatsCounters(t *testing.T) {
	muxes, stop := testCluster(t, 2, true)
	defer stop()
	topo := numa.TwoSocket()
	pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	recv0 := muxes[0].OpenExchange(0, 2, 2)
	recv1 := muxes[1].OpenExchange(0, 2, 2)
	var wg sync.WaitGroup
	for i, m := range muxes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
			sendAll(m, p, 2, 2, 4)
			_ = i
		}()
	}
	drain := func(r *ExchangeRecv) {
		for {
			m := r.Recv(0)
			if m == nil {
				return
			}
			m.Release()
		}
	}
	wg.Add(2)
	go func() { defer wg.Done(); drain(recv0) }()
	go func() { defer wg.Done(); drain(recv1) }()
	wg.Wait()
	_ = pool
	s := muxes[0].Stats()
	if s.MsgsSent == 0 || s.LocalMsgs == 0 {
		t.Fatalf("stats not counting: %+v", s)
	}
	if s.SyncBarriers == 0 {
		t.Fatal("scheduled mux performed no barriers")
	}
}
