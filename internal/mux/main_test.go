package mux

import (
	"testing"

	"hsqp/internal/leakcheck"
)

// TestMain gates the package's tests behind the goroutine leak check:
// the package owns long-lived goroutines whose shutdown paths must not
// regress silently.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
