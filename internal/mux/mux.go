// Package mux implements the RDMA-based, NUMA-aware communication
// multiplexer of §3.2.2 (Figure 7).
//
// One multiplexer runs per server. It is the only component that talks to
// the network: decoupled exchange operators hand it full messages (step 3
// in Figure 7) and consume incoming messages from per-NUMA-socket receive
// queues (steps 5a/5b), stealing from remote sockets when their own queue
// is empty. Only the multiplexers are interconnected, so a cluster of n
// servers needs n(n−1) connections instead of the classic exchange
// operator model's n²t²−t.
//
// With scheduling enabled the send loop follows the round-robin schedule
// of package sched: up to BatchPerPhase messages to the phase's single
// target, then a low-latency inline synchronization barrier with the
// phase's single source before moving on (§3.2.3). Without scheduling it
// drains all destination queues eagerly — the uncoordinated all-to-all
// baseline that suffers switch contention.
package mux

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/invariant"
	"hsqp/internal/memory"
	"hsqp/internal/numa"
	"hsqp/internal/sched"
)

// BatchPerPhase is how many messages are sent to the fixed target of a
// phase before synchronizing (the paper uses 8 × 512 KB).
const BatchPerPhase = 8

// Transport abstracts the wire (RDMA or TCP endpoints satisfy it).
type Transport interface {
	Start()
	Close()
	// Send transfers ownership of m; the transport releases it once the
	// buffer may be reused.
	Send(dst int, m *memory.Message)
	// SendInline sends a small latency-critical message.
	SendInline(dst int, tag uint32)
}

// Config configures a multiplexer.
type Config struct {
	Server     int // this server's id
	Servers    int // cluster size
	Topology   *numa.Topology
	Pool       *memory.Pool
	Scheduling bool // round-robin network scheduling on/off
	// SendQueue is the per-destination queue depth. Zero means 32.
	SendQueue int
	// IdleSleep throttles the schedule loop when a whole round moved no
	// data. Zero means 200µs.
	IdleSleep time.Duration
}

// Stats reports multiplexer activity.
type Stats struct {
	BytesSent    uint64 // wire bytes handed to the transport (remote only)
	MsgsSent     uint64
	LocalMsgs    uint64 // messages short-circuited to local exchanges
	StolenMsgs   uint64 // messages consumed from a non-local NUMA queue
	SyncBarriers uint64
	DroppedMsgs  uint64 // late arrivals for already-closed queries
}

// ExchangeKey addresses one logical exchange operator cluster-wide:
// queries run concurrently over the same multiplexer, so a bare exchange
// id is ambiguous — routing is on (query, exchange).
type ExchangeKey struct {
	Query    int32
	Exchange int32
}

// closedQueryMemory bounds how many finished query ids the multiplexer
// remembers so straggler messages (e.g. from an aborted query's in-flight
// sends) are dropped instead of accumulating in the pending map forever.
const closedQueryMemory = 1024

// Inline tags are shared between the scheduler's synchronization barriers
// and the failure detector's probes. The two high bits discriminate:
// barriers use plain sequence numbers (the barrier counter would need 2^30
// phases to collide, far beyond any run), probes set probeReqBit on the
// request and probeAckBit on the echo.
const (
	probeReqBit uint32 = 1 << 31
	probeAckBit uint32 = 1 << 30
	probeSeqMax uint32 = probeAckBit - 1
)

// Mux is one server's communication multiplexer.
type Mux struct {
	cfg       Config
	transport Transport
	schedule  *sched.Schedule

	sendQ []chan *memory.Message // per destination server

	mu         sync.Mutex
	exchanges  map[ExchangeKey]*ExchangeRecv
	pending    map[ExchangeKey][]*memory.Message // early arrivals before Open
	closed     map[int32]struct{}                // finished queries (late arrivals dropped)
	closedFifo []int32                           // eviction order for closed

	recvRotate atomic.Uint64 // rotates posted receive buffers over sockets

	inlineMu    sync.Mutex
	inlineCond  *sync.Cond
	inlineSeen  map[uint64]struct{} // key: src<<32 | tag
	probeEchoes map[int]uint64      // echoes received per source (bounded by cluster size)
	deadPeers   map[int]struct{}    // failed servers: barriers with them are no-ops

	probeSeq  atomic.Uint32
	probeMute atomic.Bool // a frozen process answers no probes
	frozen    atomic.Bool // network goroutine parks (models SIGSTOP)

	bytesSent   atomic.Uint64
	msgsSent    atomic.Uint64
	localMsgs   atomic.Uint64
	stolenMsgs  atomic.Uint64
	barriers    atomic.Uint64
	droppedMsgs atomic.Uint64

	wakeCh  chan struct{} // pokes the network loop when work arrives
	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New creates a multiplexer. Call SetTransport, then Start.
func New(cfg Config) (*Mux, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("mux: need at least one server, got %d", cfg.Servers)
	}
	if cfg.Server < 0 || cfg.Server >= cfg.Servers {
		return nil, fmt.Errorf("mux: server id %d out of range [0,%d)", cfg.Server, cfg.Servers)
	}
	if cfg.Pool == nil || cfg.Topology == nil {
		return nil, fmt.Errorf("mux: pool and topology are required")
	}
	if cfg.SendQueue == 0 {
		cfg.SendQueue = 32
	}
	if cfg.IdleSleep == 0 {
		cfg.IdleSleep = 200 * time.Microsecond
	}
	sc, err := sched.New(cfg.Servers)
	if err != nil {
		return nil, err
	}
	m := &Mux{
		cfg:         cfg,
		schedule:    sc,
		sendQ:       make([]chan *memory.Message, cfg.Servers),
		exchanges:   make(map[ExchangeKey]*ExchangeRecv),
		pending:     make(map[ExchangeKey][]*memory.Message),
		closed:      make(map[int32]struct{}),
		inlineSeen:  make(map[uint64]struct{}),
		probeEchoes: make(map[int]uint64),
		deadPeers:   make(map[int]struct{}),
		wakeCh:      make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
	}
	m.inlineCond = sync.NewCond(&m.inlineMu)
	for i := range m.sendQ {
		m.sendQ[i] = make(chan *memory.Message, cfg.SendQueue)
	}
	return m, nil
}

// SetTransport installs the wire. Must be called before Start.
func (m *Mux) SetTransport(t Transport) { m.transport = t }

// RecvAlloc returns the next posted receive buffer; the multiplexer
// receives messages for every NUMA region in turn (§3.2.2).
func (m *Mux) RecvAlloc() *memory.Message {
	n := m.recvRotate.Add(1)
	node := numa.Node(int(n) % m.cfg.Topology.Sockets)
	return m.cfg.Pool.GetOn(node)
}

// OnRecv is the transport's data-delivery callback.
func (m *Mux) OnRecv(msg *memory.Message) {
	m.route(msg, false)
}

// OnInline is the transport's inline-delivery callback: scheduler sync
// barriers plus the failure detector's probe request/echo traffic.
func (m *Mux) OnInline(src int, tag uint32) {
	switch {
	case tag&probeReqBit != 0:
		// Liveness probe: echo it back unless this server is "frozen" or
		// already shut down (a dead or stopped process answers nothing).
		// The reply runs on the transport's delivery goroutine; it is a
		// single inline send, the same cost class as a barrier.
		if m.probeMute.Load() || m.stopped.Load() {
			return
		}
		m.transport.SendInline(src, (tag&^probeReqBit)|probeAckBit)
	case tag&probeAckBit != 0:
		m.inlineMu.Lock()
		m.probeEchoes[src]++
		m.inlineCond.Broadcast()
		m.inlineMu.Unlock()
	default:
		key := uint64(src)<<32 | uint64(tag)
		m.inlineMu.Lock()
		m.inlineSeen[key] = struct{}{}
		m.inlineCond.Broadcast()
		m.inlineMu.Unlock()
	}
}

// Ping sends a liveness probe to server dst and waits up to timeout for
// an echo. It reports false when no echo arrived in time — the
// destination is dead, frozen, or unreachable — or when this multiplexer
// is shutting down. Probes bypass the network loop entirely (they go
// straight to the transport), so a stalled send schedule cannot mask a
// live peer, and a frozen local loop cannot stop the local server from
// probing others. Concurrent Pings to the same destination (one watchdog
// per in-flight query) each succeed on any echo received after their own
// request: an echo proves the peer was alive after every request that
// preceded it, so matching exact sequence numbers would only manufacture
// false misses when echoes interleave.
func (m *Mux) Ping(dst int, timeout time.Duration) bool {
	seq := m.probeSeq.Add(1) & probeSeqMax
	m.inlineMu.Lock()
	before := m.probeEchoes[dst]
	m.inlineMu.Unlock()
	m.transport.SendInline(dst, seq|probeReqBit)
	//lint:allow obsgate this timestamp is the probe's liveness deadline, not instrumentation
	deadline := time.Now().Add(timeout)
	m.inlineMu.Lock()
	defer m.inlineMu.Unlock()
	for {
		if m.probeEchoes[dst] > before {
			return true
		}
		//lint:allow obsgate deadline comparison for the probe timeout, not instrumentation
		if m.stopped.Load() || !time.Now().Before(deadline) {
			return false
		}
		// Poll: the echo arrives on a transport goroutine that broadcasts
		// inlineCond, but a dropped probe wakes nobody, so bound each wait.
		m.inlineMu.Unlock()
		//lint:allow lockblock inlineMu is explicitly dropped on the line above and retaken after; only the deferred unlock is still pending
		time.Sleep(200 * time.Microsecond)
		m.inlineMu.Lock()
	}
}

// PeerDown records that server src has failed. The round-robin schedule
// barriers with every peer each round; a dead peer answers no barriers,
// which would park this server's network loop — and, through the
// then-full send queues, the whole worker pool — forever. After PeerDown
// a barrier whose source is the failed server completes immediately (the
// failure notification stands in for the sync the peer can no longer
// send), so the loop keeps draining traffic for the surviving servers
// while the aborted query unwinds. The cluster's failure detector calls
// this on every survivor after fencing the failed server.
func (m *Mux) PeerDown(src int) {
	m.inlineMu.Lock()
	m.deadPeers[src] = struct{}{}
	m.inlineCond.Broadcast()
	m.inlineMu.Unlock()
}

// Freeze models a SIGSTOPped server process: the network goroutine parks
// (nothing is sent, barriers are never answered) and liveness probes go
// unanswered, while the simulated NIC keeps acknowledging inbound traffic
// — exactly what peers of a frozen process observe. Freeze(false) resumes.
func (m *Mux) Freeze(on bool) {
	m.frozen.Store(on)
	m.probeMute.Store(on)
	if !on {
		select {
		case m.wakeCh <- struct{}{}:
		default:
		}
	}
}

// Start launches the network goroutine. The caller is responsible for
// starting the transport.
func (m *Mux) Start() {
	if m.transport == nil {
		invariant.Failf("mux: Start before SetTransport")
	}
	m.wg.Add(1)
	go m.networkLoop()
}

// Close stops the network goroutine. Traffic should be quiesced first.
func (m *Mux) Close() {
	if m.stopped.CompareAndSwap(false, true) {
		close(m.stopCh)
		m.inlineMu.Lock()
		m.inlineCond.Broadcast()
		m.inlineMu.Unlock()
		m.mu.Lock()
		exs := make([]*ExchangeRecv, 0, len(m.exchanges))
		for _, ex := range m.exchanges {
			exs = append(exs, ex)
		}
		m.mu.Unlock()
		for _, ex := range exs {
			ex.Wake()
		}
	}
	m.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (m *Mux) Stats() Stats {
	return Stats{
		BytesSent:    m.bytesSent.Load(),
		MsgsSent:     m.msgsSent.Load(),
		LocalMsgs:    m.localMsgs.Load(),
		StolenMsgs:   m.stolenMsgs.Load(),
		SyncBarriers: m.barriers.Load(),
		DroppedMsgs:  m.droppedMsgs.Load(),
	}
}

// TableSizes reports the current size of the routing maps (leak tests:
// both must return to zero once every query has been closed).
func (m *Mux) TableSizes() (exchanges, pending int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.exchanges), len(m.pending)
}

// ServerID returns this multiplexer's server id (senders stamp it into
// message headers).
func (m *Mux) ServerID() int { return m.cfg.Server }

// Send queues msg for delivery to server dst. The caller must have set
// msg.ExchangeID and msg.Sender before the first Send — a broadcast hands
// the *same* buffer to several destinations concurrently, so the header
// must not be written here. Messages to the local server bypass the
// network entirely: the buffer is routed (zero-copy, NUMA home preserved)
// to the local receive queues.
func (m *Mux) Send(dst int, msg *memory.Message) {
	if dst == m.cfg.Server {
		m.localMsgs.Add(1)
		m.route(msg, true)
		return
	}
	// Fast path: queue has room. Otherwise time the blocking wait — that
	// stall is backpressure from the simulated link and one of the
	// quantities the paper says dominates distributed runtime.
	select {
	case m.sendQ[dst] <- msg:
	default:
		t0 := time.Now()
		select {
		case m.sendQ[dst] <- msg:
			mSendStallNanos.AddDuration(time.Since(t0))
		case <-m.stopCh:
			mSendStallNanos.AddDuration(time.Since(t0))
			msg.Release()
			return
		}
	}
	select {
	case m.wakeCh <- struct{}{}:
	default:
	}
}

// route hands a message to its exchange's receive queues, buffering it if
// the exchange has not been opened yet. Messages addressed to a query that
// already finished (late stragglers of an aborted run) are released
// immediately instead of leaking into the pending map.
func (m *Mux) route(msg *memory.Message, local bool) {
	key := ExchangeKey{Query: msg.QueryID, Exchange: msg.ExchangeID}
	m.mu.Lock()
	ex, ok := m.exchanges[key]
	if !ok {
		if _, dead := m.closed[msg.QueryID]; dead {
			m.mu.Unlock()
			m.droppedMsgs.Add(1)
			mDroppedMsgs.Inc()
			msg.Release()
			return
		}
		m.pending[key] = append(m.pending[key], msg)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	ex.push(msg)
}

// OpenExchange registers a logical exchange operator of one query that
// will receive from `senders` servers (each sends exactly one Last-flagged
// message). Early arrivals buffered under this (query, exchange) key are
// replayed.
func (m *Mux) OpenExchange(queryID, exID int32, senders int) *ExchangeRecv {
	ex := newExchangeRecv(m, queryID, exID, senders, m.cfg.Topology.Sockets)
	key := ExchangeKey{Query: queryID, Exchange: exID}
	m.mu.Lock()
	if _, dup := m.exchanges[key]; dup {
		m.mu.Unlock()
		invariant.Failf("mux: exchange %d/%d opened twice", queryID, exID)
	}
	m.exchanges[key] = ex
	early := m.pending[key]
	delete(m.pending, key)
	m.mu.Unlock()
	for _, msg := range early {
		ex.push(msg)
	}
	return ex
}

// CloseQuery forgets every exchange of a finished query and releases any
// pending (never-opened) buffers it still holds, so the routing maps do
// not grow across queries. The query id is remembered (bounded FIFO of
// closedQueryMemory entries) so in-flight stragglers are dropped on
// arrival instead of re-populating the pending map.
func (m *Mux) CloseQuery(queryID int32) {
	var drop []*memory.Message
	m.mu.Lock()
	for key := range m.exchanges {
		if key.Query == queryID {
			delete(m.exchanges, key)
		}
	}
	for key, msgs := range m.pending {
		if key.Query == queryID {
			drop = append(drop, msgs...)
			delete(m.pending, key)
		}
	}
	if _, seen := m.closed[queryID]; !seen {
		m.closed[queryID] = struct{}{}
		m.closedFifo = append(m.closedFifo, queryID)
		if len(m.closedFifo) > closedQueryMemory {
			delete(m.closed, m.closedFifo[0])
			m.closedFifo = m.closedFifo[1:]
		}
	}
	m.mu.Unlock()
	for _, msg := range drop {
		m.droppedMsgs.Add(1)
		mDroppedMsgs.Inc()
		msg.Release()
	}
}

// networkLoop is the dedicated network goroutine.
func (m *Mux) networkLoop() {
	defer m.wg.Done()
	if m.cfg.Servers == 1 {
		// Single server: nothing to do; local sends short-circuit.
		<-m.stopCh
		return
	}
	if m.cfg.Scheduling {
		m.scheduledLoop()
	} else {
		m.eagerLoop()
	}
}

// eagerLoop drains all destination queues as fast as possible —
// uncoordinated all-to-all (the contention-prone baseline). The drain
// order is randomized per round: deterministic order would make all
// multiplexers pick the same target simultaneously, which is a stronger
// adversary than the uncoordinated traffic the paper compares against.
func (m *Mux) eagerLoop() {
	n := m.cfg.Servers
	rng := uint64(m.cfg.Server)*0x9e3779b97f4a7c15 + 1
	for {
		if m.parkWhileFrozen() {
			return
		}
		moved := false
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		off := int(rng % uint64(n))
		for k := 0; k < n; k++ {
			d := (k + off) % n
			if d == m.cfg.Server {
				continue
			}
			select {
			case msg := <-m.sendQ[d]:
				m.transportSend(d, msg)
				moved = true
			default:
			}
		}
		if !moved {
			select {
			case <-m.stopCh:
				return
			case <-m.wakeCh:
			case <-time.After(m.cfg.IdleSleep):
			}
		} else {
			select {
			case <-m.stopCh:
				return
			default:
			}
		}
	}
}

// scheduledLoop follows the round-robin schedule: per phase, send up to
// BatchPerPhase messages to the single target, then barrier with the
// single source via inline messages.
func (m *Mux) scheduledLoop() {
	phases := m.schedule.Phases()
	var seq uint32
	for {
		if m.parkWhileFrozen() {
			return
		}
		roundMoved := false
		for k := 0; k < phases; k++ {
			target := m.schedule.Target(m.cfg.Server, k)
			source := m.schedule.Source(m.cfg.Server, k)
			sent := 0
		drain:
			for sent < BatchPerPhase {
				select {
				case msg := <-m.sendQ[target]:
					m.transportSend(target, msg)
					sent++
				case <-m.stopCh:
					return
				default:
					break drain // nothing queued for this target right now
				}
			}
			if sent > 0 {
				roundMoved = true
			}
			// Barrier: tell the target this phase is over; wait for the
			// matching signal from the source.
			m.transport.SendInline(target, seq)
			m.barriers.Add(1)
			if !m.waitInline(source, seq) {
				return // shutting down
			}
			seq++
		}
		if !roundMoved {
			select {
			case <-m.stopCh:
				return
			case <-m.wakeCh:
			case <-time.After(m.cfg.IdleSleep):
			}
		}
	}
}

// parkWhileFrozen holds the network loop while the mux is frozen; it
// reports true when the mux shut down during the freeze.
func (m *Mux) parkWhileFrozen() bool {
	for m.frozen.Load() {
		select {
		case <-m.stopCh:
			return true
		case <-time.After(time.Millisecond):
		}
	}
	return false
}

func (m *Mux) transportSend(dst int, msg *memory.Message) {
	m.bytesSent.Add(uint64(msg.WireSize()))
	m.msgsSent.Add(1)
	m.transport.Send(dst, msg)
}

// waitInline blocks until the inline sync (src, tag) has been observed.
// Returns false if the mux is shutting down.
func (m *Mux) waitInline(src int, tag uint32) bool {
	key := uint64(src)<<32 | uint64(tag)
	m.inlineMu.Lock()
	defer m.inlineMu.Unlock()
	for {
		if _, ok := m.inlineSeen[key]; ok {
			delete(m.inlineSeen, key)
			return true
		}
		if _, down := m.deadPeers[src]; down {
			// The peer failed: it will never send this barrier. Complete the
			// phase so the loop keeps serving the surviving servers.
			return true
		}
		if m.stopped.Load() {
			return false
		}
		m.inlineCond.Wait()
	}
}
