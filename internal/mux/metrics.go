package mux

import "hsqp/internal/obs"

// Stall metrics on the process-wide registry, aggregated across every
// server's multiplexer: how long senders blocked on a full outbound queue
// (link backpressure) and how long receive pipelines parked waiting for
// input. Both are hot paths, so they are plain nanosecond counters.
var (
	mSendStallNanos = obs.Default().Counter("hsqp_mux_send_stall_nanoseconds_total",
		"Time senders spent blocked on a full outbound queue, in nanoseconds.")
	mRecvStallNanos = obs.Default().Counter("hsqp_mux_recv_stall_nanoseconds_total",
		"Time blocking receives spent parked waiting for messages, in nanoseconds.")
	mDroppedMsgs = obs.Default().Counter("hsqp_mux_dropped_messages_total",
		"Late messages dropped because their query already closed.")
)
