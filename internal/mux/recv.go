package mux

import (
	"fmt"
	"sync"
	"time"

	"hsqp/internal/invariant"
	"hsqp/internal/memory"
	"hsqp/internal/numa"
)

// ExchangeRecv is the receive side of one logical exchange operator on one
// server: one queue per NUMA socket plus intra-server work stealing
// (steps 5a/5b of Figure 7).
//
// Completion protocol: every sending server (including this one) sends
// exactly one message with Last=true as its final message for the
// exchange; once all Last markers have arrived and all queued messages
// have been consumed, Recv returns nil.
type ExchangeRecv struct {
	mux     *Mux
	queryID int32
	exID    int32

	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]*memory.Message // one FIFO per NUMA socket
	remaining int                 // senders that have not sent Last yet
	queued    int
	classic   *classicState // non-nil in classic exchange mode

	// lastSeq[sender] is the highest wire sequence number seen from that
	// server. Senders stamp strictly increasing per-destination sequence
	// numbers, so a regression or duplicate here means the transport (or a
	// sender) reordered the stream.
	lastSeq map[int]int64

	received uint64
	stolen   uint64

	wake func() // engine-scheduler callback fired on every delivery
}

func newExchangeRecv(m *Mux, queryID, exID int32, senders, sockets int) *ExchangeRecv {
	if senders < 1 {
		invariant.Failf("mux: exchange %d needs at least one sender", exID)
	}
	ex := &ExchangeRecv{
		mux:       m,
		queryID:   queryID,
		exID:      exID,
		queues:    make([][]*memory.Message, sockets),
		remaining: senders,
		lastSeq:   make(map[int]int64),
	}
	ex.cond = sync.NewCond(&ex.mu)
	return ex
}

// QueryID returns the id of the query the exchange belongs to.
func (ex *ExchangeRecv) QueryID() int32 { return ex.queryID }

// ExID returns the logical exchange operator id (unique within its query).
func (ex *ExchangeRecv) ExID() int32 { return ex.exID }

// checkSeqLocked asserts that messages from each sender arrive with
// strictly increasing sequence numbers. Gaps are legal (a selective
// broadcast advances all of the sender's destination counters at once),
// regressions and duplicates are not: per (sender, destination) the wire
// is FIFO end-to-end, so any non-monotonic sequence means messages were
// reordered or replayed. The caller panics with the returned message
// after releasing ex.mu — panicking under the lock would deadlock
// teardown paths (Mux.Close wakes every exchange).
func (ex *ExchangeRecv) checkSeqLocked(msg *memory.Message) string {
	prev, seen := ex.lastSeq[msg.Sender]
	if seen && int64(msg.Seq) <= prev {
		return fmt.Sprintf("mux: exchange %d: out-of-order message from server %d: seq %d after %d",
			ex.exID, msg.Sender, msg.Seq, prev)
	}
	ex.lastSeq[msg.Sender] = int64(msg.Seq)
	return ""
}

// SetWake registers a callback invoked after every message delivery, so a
// polling scheduler learns that the exchange may have input without a
// worker blocking in Recv. The callback runs outside the exchange lock.
func (ex *ExchangeRecv) SetWake(f func()) {
	ex.mu.Lock()
	ex.wake = f
	ex.mu.Unlock()
}

// push delivers a message into the queue of its home NUMA node (hybrid)
// or its target worker (classic).
func (ex *ExchangeRecv) push(msg *memory.Message) {
	if ex.classic != nil {
		ex.pushClassic(msg)
		return
	}
	node := int(msg.Node)
	if node < 0 || node >= len(ex.queues) {
		// Interleaved (or unknown) home: spread consumption over queues.
		node = int(ex.received % uint64(len(ex.queues)))
	}
	ex.mu.Lock()
	if viol := ex.checkSeqLocked(msg); viol != "" {
		ex.mu.Unlock()
		invariant.Failf("%s", viol)
	}
	ex.queues[node] = append(ex.queues[node], msg)
	ex.queued++
	ex.received++
	if msg.Last {
		ex.remaining--
		if ex.remaining < 0 {
			ex.mu.Unlock()
			invariant.Failf("mux: exchange %d received more Last markers than senders", ex.exID)
		}
	}
	ex.cond.Broadcast()
	wake := ex.wake
	ex.mu.Unlock()
	if wake != nil {
		wake()
	}
}

// Recv returns the next message for a worker pinned to socket `local`,
// preferring the NUMA-local queue and stealing from other sockets when it
// is empty. It blocks while the exchange is still open and returns nil
// once all senders finished and all messages were consumed. The caller
// must Release the returned message after deserializing it.
func (ex *ExchangeRecv) Recv(local numa.Node) *memory.Message {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for {
		if ex.queued > 0 {
			// 5a: NUMA-local first.
			l := int(local)
			if l >= 0 && l < len(ex.queues) && len(ex.queues[l]) > 0 {
				return ex.popLocked(l, false)
			}
			// 5b: steal from the fullest remote queue.
			best, bestLen := -1, 0
			for i := range ex.queues {
				if i == l {
					continue
				}
				if len(ex.queues[i]) > bestLen {
					best, bestLen = i, len(ex.queues[i])
				}
			}
			if best >= 0 {
				return ex.popLocked(best, true)
			}
		}
		if ex.remaining == 0 {
			return nil
		}
		if ex.mux.stopped.Load() {
			return nil
		}
		t0 := time.Now()
		ex.cond.Wait()
		mRecvStallNanos.AddDuration(time.Since(t0))
	}
}

// TryRecv is a non-blocking Recv: it returns (nil, true) when the exchange
// is drained and closed, (nil, false) when no message is currently
// available, and (msg, false) otherwise.
func (ex *ExchangeRecv) TryRecv(local numa.Node) (msg *memory.Message, done bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.queued > 0 {
		l := int(local)
		if l >= 0 && l < len(ex.queues) && len(ex.queues[l]) > 0 {
			return ex.popLocked(l, false), false
		}
		for i := range ex.queues {
			if len(ex.queues[i]) > 0 {
				return ex.popLocked(i, i != l), false
			}
		}
	}
	return nil, ex.remaining == 0 || ex.mux.stopped.Load()
}

// TryRecvWorker is the non-blocking classic-mode receive for the fixed
// parallel unit `worker` (no stealing). done only turns true once *every*
// unit's partition is complete and drained: the classic exchange is one
// pipeline, and its sink must not finalize while another worker's
// partition still holds messages.
func (ex *ExchangeRecv) TryRecvWorker(worker int) (msg *memory.Message, done bool) {
	cs := ex.classic
	if cs == nil {
		invariant.Failf("mux: TryRecvWorker on a hybrid exchange")
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if q := cs.queues[worker]; len(q) > 0 {
		m := q[0]
		cs.queues[worker] = q[1:]
		return m, false
	}
	if ex.mux.stopped.Load() {
		return nil, true
	}
	for i := range cs.queues {
		if len(cs.queues[i]) > 0 || cs.remaining[i] > 0 {
			return nil, false
		}
	}
	return nil, true
}

func (ex *ExchangeRecv) popLocked(q int, steal bool) *memory.Message {
	msg := ex.queues[q][0]
	ex.queues[q] = ex.queues[q][1:]
	ex.queued--
	if steal {
		ex.stolen++
		ex.mux.stolenMsgs.Add(1)
	}
	return msg
}

// Drained reports whether all senders finished and every message was
// consumed (for tests).
func (ex *ExchangeRecv) Drained() bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.remaining == 0 && ex.queued == 0
}

// ReceivedCount returns the number of messages delivered so far.
func (ex *ExchangeRecv) ReceivedCount() uint64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.received
}

// StolenCount returns the number of messages consumed from a remote
// socket's queue.
func (ex *ExchangeRecv) StolenCount() uint64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.stolen
}

// Wake unblocks all waiting receivers (used at shutdown).
func (ex *ExchangeRecv) Wake() {
	ex.mu.Lock()
	ex.cond.Broadcast()
	ex.mu.Unlock()
}

// --- classic exchange-operator mode (§3.1 baseline) ---
//
// In the classic model every worker thread is its own parallel unit with a
// fixed input partition: messages carry a Part tag and land in that
// worker's private queue; there is no work stealing. Every sending server
// sends one Last marker per target worker.

// classicState extends an ExchangeRecv with per-worker queues.
type classicState struct {
	queues    [][]*memory.Message
	remaining []int // per worker: senders that have not sent Last
}

// OpenExchangeClassic registers an exchange in classic mode with `workers`
// parallel units on this server, each expecting `senders` Last markers.
func (m *Mux) OpenExchangeClassic(queryID, exID int32, senders, workers int) *ExchangeRecv {
	ex := newExchangeRecv(m, queryID, exID, senders, m.cfg.Topology.Sockets)
	ex.classic = &classicState{
		queues:    make([][]*memory.Message, workers),
		remaining: make([]int, workers),
	}
	for i := range ex.classic.remaining {
		ex.classic.remaining[i] = senders
	}
	key := ExchangeKey{Query: queryID, Exchange: exID}
	m.mu.Lock()
	if _, dup := m.exchanges[key]; dup {
		m.mu.Unlock()
		invariant.Failf("mux: exchange %d/%d opened twice", queryID, exID)
	}
	m.exchanges[key] = ex
	early := m.pending[key]
	delete(m.pending, key)
	m.mu.Unlock()
	for _, msg := range early {
		ex.push(msg)
	}
	return ex
}

// pushClassic routes a message into its target worker's private queue.
func (ex *ExchangeRecv) pushClassic(msg *memory.Message) {
	part := int(msg.Part)
	cs := ex.classic
	if part < 0 || part >= len(cs.queues) {
		part = 0
	}
	ex.mu.Lock()
	if viol := ex.checkSeqLocked(msg); viol != "" {
		ex.mu.Unlock()
		invariant.Failf("%s", viol)
	}
	cs.queues[part] = append(cs.queues[part], msg)
	ex.received++
	if msg.Last {
		cs.remaining[part]--
		if cs.remaining[part] < 0 {
			ex.mu.Unlock()
			invariant.Failf("mux: classic exchange %d worker %d got extra Last", ex.exID, part)
		}
	}
	ex.cond.Broadcast()
	wake := ex.wake
	ex.mu.Unlock()
	if wake != nil {
		wake()
	}
}

// RecvWorker returns the next message for the fixed parallel unit
// `worker`, with no stealing — the classic model's inflexibility under
// skew. Returns nil once the unit's partition is complete.
func (ex *ExchangeRecv) RecvWorker(worker int) *memory.Message {
	cs := ex.classic
	if cs == nil {
		invariant.Failf("mux: RecvWorker on a hybrid exchange")
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for {
		if q := cs.queues[worker]; len(q) > 0 {
			msg := q[0]
			cs.queues[worker] = q[1:]
			return msg
		}
		if cs.remaining[worker] == 0 {
			return nil
		}
		if ex.mux.stopped.Load() {
			return nil
		}
		t0 := time.Now()
		ex.cond.Wait()
		mRecvStallNanos.AddDuration(time.Since(t0))
	}
}
