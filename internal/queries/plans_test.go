package queries

import (
	"strings"
	"testing"

	"hsqp/internal/plan"
)

// TestAllQueriesBuild verifies every query constructs a well-formed plan
// with a stable output schema.
func TestAllQueriesBuild(t *testing.T) {
	wantCols := map[int]int{
		1: 10, 2: 8, 3: 4, 4: 2, 5: 2, 6: 1, 7: 4, 8: 2, 9: 3, 10: 8,
		11: 2, 12: 3, 13: 2, 14: 1, 15: 5, 16: 4, 17: 1, 18: 6, 19: 1,
		20: 2, 21: 2, 22: 3,
	}
	for _, q := range All() {
		qp, err := Build(q, Params{SF: 1})
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		if got := qp.Root.Schema().Len(); got != wantCols[q] {
			t.Errorf("q%d: %d output columns, want %d (%v)", q, got, wantCols[q], qp.Root.Schema())
		}
	}
	if _, err := Build(0, Params{}); err == nil {
		t.Fatal("q0 accepted")
	}
	if _, err := Build(23, Params{}); err == nil {
		t.Fatal("q23 accepted")
	}
}

// TestExplainShapes spot-checks the plan shapes the paper calls out.
func TestExplainShapes(t *testing.T) {
	q17 := plan.Explain(MustBuild(17, Params{SF: 1}))
	if !strings.Contains(q17, "groupjoin") {
		t.Fatalf("Q17 must use the groupjoin (Figure 6):\n%s", q17)
	}
	q18 := plan.Explain(MustBuild(18, Params{SF: 1}))
	if !strings.Contains(q18, "groupjoin") {
		t.Fatalf("Q18 must use the groupjoin:\n%s", q18)
	}
	q3 := plan.Explain(MustBuild(3, Params{SF: 1}))
	if !strings.Contains(q3, "[broadcast build]") {
		t.Fatalf("Q3 must broadcast its small build side:\n%s", q3)
	}
	if !strings.Contains(q3, "top-10") {
		t.Fatalf("Q3 must end in a top-10:\n%s", q3)
	}
	q13 := plan.Explain(MustBuild(13, Params{SF: 1}))
	if !strings.Contains(q13, "leftouter join") {
		t.Fatalf("Q13 must use a left outer join:\n%s", q13)
	}
	q21 := plan.Explain(MustBuild(21, Params{SF: 1}))
	if !strings.Contains(q21, "anti join") || !strings.Contains(q21, "semi join") {
		t.Fatalf("Q21 must combine semi and anti joins:\n%s", q21)
	}
}

// TestDeterministicConstruction: two builds of the same query must produce
// plans that compile to the same exchange-id sequence on every server —
// the distributed-correctness precondition.
func TestDeterministicConstruction(t *testing.T) {
	for _, q := range All() {
		a := MustBuild(q, Params{SF: 0.1})
		b := MustBuild(q, Params{SF: 0.1})
		ea := plan.Explain(a)
		eb := plan.Explain(b)
		if ea != eb {
			t.Fatalf("q%d: plan construction not deterministic:\n%s\nvs\n%s", q, ea, eb)
		}
	}
}
