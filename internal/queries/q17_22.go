package queries

import (
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// q17: small-quantity-order revenue — the paper's Figure 6 example. The
// correlated avg(l_quantity) subquery becomes a groupjoin of part and
// lineitem; a second lineitem pass keeps rows below 0.2×avg.
func q17(Params) *plan.Query {
	part := scan("part")
	part = part.Select(op.And(
		op.StrEQ(part.Col("p_brand"), "Brand#23"),
		op.StrEQ(part.Col("p_container"), "MED BOX"),
	))
	part = part.Project("p_partkey")

	l := scan("lineitem")
	l = l.Project("l_partkey", "l_quantity")
	gj := l.GroupJoin(part, []string{"l_partkey"}, []string{"p_partkey"}, nil,
		avgDec("avg_qty", col(l, "l_quantity")))
	// gj: (p_partkey, avg_qty), one row per matched part.

	l2 := scan("lineitem")
	l2 = l2.Project("l_partkey", "l_quantity", "l_extendedprice")
	j := l2.Join(gj, []string{"l_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{
			Type:     op.Inner,
			Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_extendedprice"},
			BuildOut: []string{},
			Residual: func() op.ResidualPred {
				qty := l2.Col("l_quantity")
				return func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
					// l_quantity < 0.2 × avg(qty)  ⇔  5×qty < avg
					return 5*probe.Cols[qty].I64[pi] < build.Cols[1].I64[bi]
				}
			}(),
		})
	g := j.GroupByCols(nil, sumDec("sum_price", col(j, "l_extendedprice")))
	g = g.Map(op.NamedExpr{Name: "avg_yearly", Type: storage.TDecimal,
		Expr: op.DivDecConst(col(g, "sum_price"), 7)})
	g = g.Project("avg_yearly")
	return plan.NewQuery("q17", g)
}

// q18: large volume customers — groupjoin of orders and lineitem, HAVING
// sum(l_quantity) > 300.
func q18(Params) *plan.Query {
	o := scan("orders")
	o = o.ProjectCols([]int{
		o.Col("o_orderkey"), o.Col("o_custkey"), o.Col("o_totalprice"), o.Col("o_orderdate"),
	})
	l := scan("lineitem")
	l = l.Project("l_orderkey", "l_quantity")
	gj := l.GroupJoin(o, []string{"l_orderkey"}, []string{"o_orderkey"}, nil,
		sumDec("sum_qty", col(l, "l_quantity")))
	big := gj.Select(op.I64GT(gj.Col("sum_qty"), 300*100))

	cust := scan("customer")
	f := big.Join(cust, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"o_orderkey", "o_totalprice", "o_orderdate", "sum_qty"},
			BuildOut: []string{"c_name", "c_custkey"}})
	f = f.Project("c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty")
	f = f.OrderBy([]op.SortKey{desc(f, "o_totalprice"), asc(f, "o_orderdate")}, 100)
	return plan.NewQuery("q18", f)
}

// q19: discounted revenue — disjunctive join predicate spanning both
// sides, evaluated as a residual of the partkey join.
func q19(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.And(
		op.StrIn(l.Col("l_shipmode"), "AIR", "AIR REG"),
		op.StrEQ(l.Col("l_shipinstruct"), "DELIVER IN PERSON"),
	))
	l = l.Project("l_partkey", "l_quantity", "l_extendedprice", "l_discount")
	part := scan("part")

	qty := l.Col("l_quantity")
	brand := part.Col("p_brand")
	container := part.Col("p_container")
	size := part.Col("p_size")
	branch := func(wantBrand string, containers []string, qlo, qhi, smax int64) op.ResidualPred {
		cset := map[string]struct{}{}
		for _, c := range containers {
			cset[c] = struct{}{}
		}
		return func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
			if build.Cols[brand].Str[bi] != wantBrand {
				return false
			}
			if _, ok := cset[build.Cols[container].Str[bi]]; !ok {
				return false
			}
			q := probe.Cols[qty].I64[pi]
			if q < qlo*100 || q > qhi*100 {
				return false
			}
			s := build.Cols[size].I64[bi]
			return s >= 1 && s <= smax
		}
	}
	b1 := branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5)
	b2 := branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10)
	b3 := branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15)

	j := l.Join(part, []string{"l_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{
			Type:     op.Inner,
			Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_extendedprice", "l_discount"},
			BuildOut: []string{},
			Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
				return b1(probe, pi, build, bi) || b2(probe, pi, build, bi) || b3(probe, pi, build, bi)
			},
		})
	j = j.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(j)})
	g := j.GroupByCols(nil, sumDec("revenue", col(j, "rev")))
	return plan.NewQuery("q19", g)
}

// q20: potential part promotion — nested semi-joins with a quantity
// threshold.
func q20(Params) *plan.Query {
	part := scan("part")
	part = part.Select(op.StrPrefix(part.Col("p_name"), "forest"))
	part = part.Project("p_partkey")

	l := scan("lineitem")
	l = l.Select(op.And(
		op.I64GE(l.Col("l_shipdate"), date("1994-01-01")),
		op.I64LT(l.Col("l_shipdate"), date("1995-01-01")),
	))
	l = l.Project("l_partkey", "l_suppkey", "l_quantity")
	qtyPerPS := l.GroupBy([]string{"l_partkey", "l_suppkey"},
		sumDec("sum_qty", col(l, "l_quantity")))

	ps := scan("partsupp")
	ps = ps.Join(part, []string{"ps_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"ps_partkey", "ps_suppkey", "ps_availqty"}})
	availIdx := ps.Col("ps_availqty")
	candidates := ps.Join(qtyPerPS,
		[]string{"ps_partkey", "ps_suppkey"}, []string{"l_partkey", "l_suppkey"},
		plan.JoinSpec{
			Type: op.Semi,
			Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
				// ps_availqty > 0.5 × sum(l_quantity); availqty is a plain
				// integer, sum_qty decimal hundredths.
				return probe.Cols[availIdx].I64[pi]*200 > build.Cols[2].I64[bi]
			},
		})
	candidates = candidates.Project("ps_suppkey")

	nat := scan("nation")
	nat = nat.Select(op.StrEQ(nat.Col("n_name"), "CANADA"))
	sup := scan("supplier")
	sup = sup.Join(nat, []string{"s_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"s_suppkey", "s_name", "s_address"}})
	f := sup.Join(candidates, []string{"s_suppkey"}, []string{"ps_suppkey"},
		plan.JoinSpec{Type: op.Semi})
	f = f.Project("s_name", "s_address")
	f = f.OrderBy([]op.SortKey{asc(f, "s_name")}, 0)
	return plan.NewQuery("q20", f)
}

// q21: suppliers who kept orders waiting — semi- and anti-joins with
// inequality residuals over lineitem.
func q21(Params) *plan.Query {
	nat := scan("nation")
	nat = nat.Select(op.StrEQ(nat.Col("n_name"), "SAUDI ARABIA"))
	sup := scan("supplier")
	sup = sup.Join(nat, []string{"s_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"s_suppkey", "s_name"}})

	l1 := scan("lineitem")
	l1 = l1.Select(op.ColLT(l1.Col("l_commitdate"), l1.Col("l_receiptdate")))
	l1 = l1.Project("l_orderkey", "l_suppkey")
	j := l1.Join(sup, []string{"l_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_suppkey"},
			BuildOut: []string{"s_name"}})

	o := scan("orders")
	o = o.Select(op.StrEQ(o.Col("o_orderstatus"), "F"))
	o = o.Project("o_orderkey")
	j = j.Join(o, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Semi})

	// exists l2: same order, different supplier.
	l2 := scan("lineitem")
	l2 = l2.Project("l_orderkey", "l_suppkey")
	suppIdx := j.Col("l_suppkey")
	j = j.Join(l2, []string{"l_orderkey"}, []string{"l_orderkey"},
		plan.JoinSpec{
			Type: op.Semi,
			Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
				return build.Cols[1].I64[bi] != probe.Cols[suppIdx].I64[pi]
			},
		})

	// not exists l3: same order, different supplier, also late.
	l3 := scan("lineitem")
	l3 = l3.Select(op.ColLT(l3.Col("l_commitdate"), l3.Col("l_receiptdate")))
	l3 = l3.Project("l_orderkey", "l_suppkey")
	j = j.Join(l3, []string{"l_orderkey"}, []string{"l_orderkey"},
		plan.JoinSpec{
			Type: op.Anti,
			Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
				return build.Cols[1].I64[bi] != probe.Cols[suppIdx].I64[pi]
			},
		})

	g := j.GroupBy([]string{"s_name"}, count("numwait"))
	g = g.OrderBy([]op.SortKey{desc(g, "numwait"), asc(g, "s_name")}, 100)
	return plan.NewQuery("q21", g)
}

// q22: global sales opportunity — scalar average + anti-join against
// orders.
func q22(Params) *plan.Query {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	c := scan("customer")
	c = c.Project("c_custkey", "c_phone", "c_acctbal")
	cf := c.Select(op.StrPrefixIn(c.Col("c_phone"), 2, codes...))

	withBal := cf.Select(op.I64GT(cf.Col("c_acctbal"), 0))
	avgBal := withBal.GroupByCols(nil, avgDec("avg_bal", col(withBal, "c_acctbal")))

	balIdx := cf.Col("c_acctbal")
	rich := cf.Join(avgBal, nil, nil, plan.JoinSpec{
		Type: op.Semi,
		Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
			return probe.Cols[balIdx].I64[pi] > build.Cols[0].I64[bi]
		},
	})
	o := scan("orders")
	o = o.Project("o_custkey")
	noOrders := rich.Join(o, []string{"c_custkey"}, []string{"o_custkey"},
		plan.JoinSpec{Type: op.Anti})
	noOrders = noOrders.Map(op.NamedExpr{Name: "cntrycode", Type: storage.TString,
		Expr: op.Substr(noOrders.Col("c_phone"), 0, 2)})
	g := noOrders.GroupBy([]string{"cntrycode"},
		count("numcust"),
		sumDec("totacctbal", col(noOrders, "c_acctbal")))
	g = g.OrderBy([]op.SortKey{asc(g, "cntrycode")}, 0)
	return plan.NewQuery("q22", g)
}
