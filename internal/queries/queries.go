// Package queries defines the 22 TPC-H queries as logical plans for the
// distributed engine (the paper's evaluation workload, §4). Queries use
// the TPC-H validation ("qualification") parameters. The plans mirror the
// hand-optimized distributed plans of Figure 6: selections and projections
// are pushed down, small inputs are broadcast, aggregations pre-aggregate
// before shuffling, and Q17/Q18 use the groupjoin.
package queries

import (
	"fmt"

	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// Params carries the workload context a few queries need.
type Params struct {
	// SF is the scale factor (Q11's HAVING fraction is 0.0001/SF).
	SF float64
}

// Build returns the plan of TPC-H query q (1–22).
func Build(q int, p Params) (*plan.Query, error) {
	if q < 1 || q > 22 {
		return nil, fmt.Errorf("queries: no TPC-H query %d", q)
	}
	return builders[q-1](p), nil
}

// MustBuild is Build for tests and benchmarks.
func MustBuild(q int, p Params) *plan.Query {
	out, err := Build(q, p)
	if err != nil {
		panic(err)
	}
	return out
}

// All returns the query numbers in order.
func All() []int {
	out := make([]int, 22)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

var builders = [22]func(Params) *plan.Query{
	q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
	q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
}

// --- helpers ---

func scan(table string) *plan.Node { return plan.Scan(table, tpch.SchemaOf(table)) }

func col(n *plan.Node, name string) op.Expr { return op.Col(n.Col(name)) }

func date(s string) int64 { return storage.MustDate(s) }

// revenue builds l_extendedprice * (1 − l_discount) over node n.
func revenue(n *plan.Node) op.Expr {
	return op.MulDec(col(n, "l_extendedprice"), op.SubDecConst(100, col(n, "l_discount")))
}

func sumDec(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Sum, Name: name, Arg: e, ArgType: storage.TDecimal}
}

func sumInt(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Sum, Name: name, Arg: e, ArgType: storage.TInt64}
}

func avgDec(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Avg, Name: name, Arg: e, ArgType: storage.TDecimal}
}

func minDec(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Min, Name: name, Arg: e, ArgType: storage.TDecimal}
}

func maxDec(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Max, Name: name, Arg: e, ArgType: storage.TDecimal}
}

func count(name string) op.AggSpec {
	return op.AggSpec{Kind: op.Count, Name: name}
}

func countNonNull(name string, e op.Expr) op.AggSpec {
	return op.AggSpec{Kind: op.Count, Name: name, Arg: e}
}

func asc(n *plan.Node, name string) op.SortKey  { return op.SortKey{Col: n.Col(name)} }
func desc(n *plan.Node, name string) op.SortKey { return op.SortKey{Col: n.Col(name), Desc: true} }

// nationOf joins a stream against the (replicated) nation relation and
// keeps keepProbe plus n_name.
func nationOf(n *plan.Node, nationKeyCol string, keepProbe []string) *plan.Node {
	return n.Join(scan("nation"), []string{nationKeyCol}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Inner, ProbeOut: keepProbe, BuildOut: []string{"n_name"}})
}

// nationInRegion returns nation rows restricted to one region:
// (n_nationkey, n_name).
func nationInRegion(region string) *plan.Node {
	reg := scan("region")
	reg = reg.Select(op.StrEQ(reg.Col("r_name"), region))
	nat := scan("nation")
	return nat.Join(reg, []string{"n_regionkey"}, []string{"r_regionkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"n_nationkey", "n_name"}})
}
