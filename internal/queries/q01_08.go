package queries

import (
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// q1: pricing summary report. Scan-heavy, transfers almost no data — the
// paper's example of a query that scales even on GbE.
func q1(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.I64LE(l.Col("l_shipdate"), date("1998-09-02"))) // 1998-12-01 − 90 days
	l = l.Map(
		op.NamedExpr{Name: "disc_price", Type: storage.TDecimal, Expr: revenue(l)},
		op.NamedExpr{Name: "charge", Type: storage.TDecimal,
			Expr: op.MulDec(revenue(l), op.AddDecConst(100, col(l, "l_tax")))},
	)
	g := l.GroupBy([]string{"l_returnflag", "l_linestatus"},
		sumDec("sum_qty", col(l, "l_quantity")),
		sumDec("sum_base_price", col(l, "l_extendedprice")),
		sumDec("sum_disc_price", col(l, "disc_price")),
		sumDec("sum_charge", col(l, "charge")),
		avgDec("avg_qty", col(l, "l_quantity")),
		avgDec("avg_price", col(l, "l_extendedprice")),
		avgDec("avg_disc", col(l, "l_discount")),
		count("count_order"),
	)
	g = g.OrderBy([]op.SortKey{asc(g, "l_returnflag"), asc(g, "l_linestatus")}, 0)
	return plan.NewQuery("q1", g)
}

// q2: minimum cost supplier (correlated subquery unnested into a
// min-aggregation joined back on (partkey, cost)).
func q2(Params) *plan.Query {
	natEU := nationInRegion("EUROPE")
	sup := scan("supplier")
	sup = sup.Join(natEU, []string{"s_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal", "s_comment"},
			BuildOut: []string{"n_name"}})

	ps := scan("partsupp")
	psEU := ps.Join(sup, []string{"ps_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"ps_partkey", "ps_supplycost"},
			BuildOut: []string{"s_name", "s_address", "s_phone", "s_acctbal", "s_comment", "n_name"}})

	part := scan("part")
	part = part.Select(op.And(
		op.I64EQ(part.Col("p_size"), 15),
		op.Like(part.Col("p_type"), "%BRASS"),
	))
	joined := psEU.Join(part, []string{"ps_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			BuildOut: []string{"p_partkey", "p_mfgr"}})

	minCost := joined.GroupBy([]string{"p_partkey"}, minDec("min_cost", col(joined, "ps_supplycost")))

	final := joined.Join(minCost,
		[]string{"p_partkey", "ps_supplycost"}, []string{"p_partkey", "min_cost"},
		plan.JoinSpec{Type: op.Semi})
	final = final.Project("s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment")
	final = final.OrderBy([]op.SortKey{
		desc(final, "s_acctbal"), asc(final, "n_name"), asc(final, "s_name"), asc(final, "p_partkey"),
	}, 100)
	return plan.NewQuery("q2", final)
}

// q3: shipping priority — customer ⨝ orders ⨝ lineitem, top 10 by revenue.
func q3(Params) *plan.Query {
	cutoff := date("1995-03-15")
	c := scan("customer")
	c = c.Select(op.StrEQ(c.Col("c_mktsegment"), "BUILDING"))
	o := scan("orders")
	o = o.Select(op.I64LT(o.Col("o_orderdate"), cutoff))
	o = o.Project("o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	co := o.Join(c, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"o_orderkey", "o_orderdate", "o_shippriority"}})
	l := scan("lineitem")
	l = l.Select(op.I64GT(l.Col("l_shipdate"), cutoff))
	l = l.Project("l_orderkey", "l_extendedprice", "l_discount")
	j := l.Join(co, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_extendedprice", "l_discount"},
			BuildOut: []string{"o_orderkey", "o_orderdate", "o_shippriority"}})
	j = j.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(j)})
	g := j.GroupBy([]string{"o_orderkey", "o_orderdate", "o_shippriority"},
		sumDec("revenue", col(j, "rev")))
	g = g.ProjectCols([]int{0, 3, 1, 2}) // l_orderkey, revenue, o_orderdate, o_shippriority
	g = g.OrderBy([]op.SortKey{desc(g, "revenue"), asc(g, "o_orderdate")}, 10)
	return plan.NewQuery("q3", g)
}

// q4: order priority checking — orders semi-join late lineitems.
func q4(Params) *plan.Query {
	o := scan("orders")
	o = o.Select(op.And(
		op.I64GE(o.Col("o_orderdate"), date("1993-07-01")),
		op.I64LT(o.Col("o_orderdate"), date("1993-10-01")),
	))
	o = o.Project("o_orderkey", "o_orderpriority")
	l := scan("lineitem")
	l = l.Select(op.ColLT(l.Col("l_commitdate"), l.Col("l_receiptdate")))
	l = l.Project("l_orderkey")
	j := o.Join(l, []string{"o_orderkey"}, []string{"l_orderkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"o_orderpriority"}})
	g := j.GroupBy([]string{"o_orderpriority"}, count("order_count"))
	g = g.OrderBy([]op.SortKey{asc(g, "o_orderpriority")}, 0)
	return plan.NewQuery("q4", g)
}

// q5: local supplier volume — the 6-way join of Figure 6's family.
func q5(Params) *plan.Query {
	natAsia := nationInRegion("ASIA")
	sup := scan("supplier")
	sup = sup.Join(natAsia, []string{"s_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"s_suppkey", "s_nationkey"},
			BuildOut: []string{"n_name"}})

	o := scan("orders")
	o = o.Select(op.And(
		op.I64GE(o.Col("o_orderdate"), date("1994-01-01")),
		op.I64LT(o.Col("o_orderdate"), date("1995-01-01")),
	))
	o = o.Project("o_orderkey", "o_custkey")
	cust := scan("customer")
	cust = cust.Project("c_custkey", "c_nationkey")
	oc := o.Join(cust, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"o_orderkey"},
			BuildOut: []string{"c_nationkey"}})

	l := scan("lineitem")
	l = l.Project("l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	j := l.Join(oc, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_suppkey", "l_extendedprice", "l_discount"},
			BuildOut: []string{"c_nationkey"}})
	j = j.Join(sup, []string{"l_suppkey", "c_nationkey"}, []string{"s_suppkey", "s_nationkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_extendedprice", "l_discount"},
			BuildOut: []string{"n_name"}})
	j = j.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(j)})
	g := j.GroupBy([]string{"n_name"}, sumDec("revenue", col(j, "rev")))
	g = g.OrderBy([]op.SortKey{desc(g, "revenue")}, 0)
	return plan.NewQuery("q5", g)
}

// q6: forecasting revenue change — pure scan + scalar aggregate.
func q6(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.And(
		op.I64GE(l.Col("l_shipdate"), date("1994-01-01")),
		op.I64LT(l.Col("l_shipdate"), date("1995-01-01")),
		op.I64Between(l.Col("l_discount"), 5, 7),
		op.I64LT(l.Col("l_quantity"), 24*100),
	))
	g := l.GroupByCols(nil,
		sumDec("revenue", op.MulDec(col(l, "l_extendedprice"), col(l, "l_discount"))))
	return plan.NewQuery("q6", g)
}

// q7: volume shipping between FRANCE and GERMANY.
func q7(Params) *plan.Query {
	sup := nationOf(scan("supplier"), "s_nationkey", []string{"s_suppkey"})
	supN := sup.Select(op.StrIn(sup.Col("n_name"), "FRANCE", "GERMANY"))
	cust := nationOf(scan("customer"), "c_nationkey", []string{"c_custkey"})
	custN := cust.Select(op.StrIn(cust.Col("n_name"), "FRANCE", "GERMANY"))

	l := scan("lineitem")
	l = l.Select(op.And(
		op.I64GE(l.Col("l_shipdate"), date("1995-01-01")),
		op.I64LE(l.Col("l_shipdate"), date("1996-12-31")),
	))
	l = l.Project("l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	j := l.Join(supN, []string{"l_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
			BuildOut: []string{"n_name"}})
	// Rename via projection is implicit: the build column arrives as
	// n_name; track it as the supplier nation by position.
	j = j.Map(op.NamedExpr{Name: "supp_nation", Type: storage.TString, Expr: col(j, "n_name")})
	j = j.Project("l_orderkey", "l_extendedprice", "l_discount", "l_shipdate", "supp_nation")

	o := scan("orders")
	o = o.Project("o_orderkey", "o_custkey")
	j2 := j.Join(o, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_extendedprice", "l_discount", "l_shipdate", "supp_nation"},
			BuildOut: []string{"o_custkey"}})
	j3 := j2.Join(custN, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_extendedprice", "l_discount", "l_shipdate", "supp_nation"},
			BuildOut: []string{"n_name"}})
	j3 = j3.Map(op.NamedExpr{Name: "cust_nation", Type: storage.TString, Expr: col(j3, "n_name")})
	pair := j3.Select(op.Or(
		op.And(op.StrEQ(j3.Col("supp_nation"), "FRANCE"), op.StrEQ(j3.Col("cust_nation"), "GERMANY")),
		op.And(op.StrEQ(j3.Col("supp_nation"), "GERMANY"), op.StrEQ(j3.Col("cust_nation"), "FRANCE")),
	))
	pair = pair.Map(
		op.NamedExpr{Name: "l_year", Type: storage.TInt64, Expr: op.Year(pair.Col("l_shipdate"))},
		op.NamedExpr{Name: "volume", Type: storage.TDecimal, Expr: revenue(pair)},
	)
	g := pair.GroupBy([]string{"supp_nation", "cust_nation", "l_year"},
		sumDec("revenue", col(pair, "volume")))
	g = g.OrderBy([]op.SortKey{asc(g, "supp_nation"), asc(g, "cust_nation"), asc(g, "l_year")}, 0)
	return plan.NewQuery("q7", g)
}

// q8: national market share of BRAZIL in AMERICA for a part type.
func q8(Params) *plan.Query {
	part := scan("part")
	part = part.Select(op.StrEQ(part.Col("p_type"), "ECONOMY ANODIZED STEEL"))
	part = part.Project("p_partkey")

	l := scan("lineitem")
	lp := l.Join(part, []string{"l_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}})

	sup := nationOf(scan("supplier"), "s_nationkey", []string{"s_suppkey"})
	lps := lp.Join(sup, []string{"l_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_extendedprice", "l_discount"},
			BuildOut: []string{"n_name"}})
	lps = lps.Map(op.NamedExpr{Name: "supp_nation", Type: storage.TString, Expr: col(lps, "n_name")})

	o := scan("orders")
	o = o.Select(op.And(
		op.I64GE(o.Col("o_orderdate"), date("1995-01-01")),
		op.I64LE(o.Col("o_orderdate"), date("1996-12-31")),
	))
	o = o.Project("o_orderkey", "o_custkey", "o_orderdate")
	natAm := nationInRegion("AMERICA")
	cust := scan("customer")
	custAm := cust.Join(natAm, []string{"c_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"c_custkey"}})
	oc := o.Join(custAm, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"o_orderkey", "o_orderdate"}})

	j := lps.Join(oc, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_extendedprice", "l_discount", "supp_nation"},
			BuildOut: []string{"o_orderdate"}})
	j = j.Map(
		op.NamedExpr{Name: "o_year", Type: storage.TInt64, Expr: op.Year(j.Col("o_orderdate"))},
		op.NamedExpr{Name: "volume", Type: storage.TDecimal, Expr: revenue(j)},
	)
	j = j.Map(op.NamedExpr{Name: "brazil_volume", Type: storage.TDecimal,
		Expr: op.CaseWhen(op.StrEQ(j.Col("supp_nation"), "BRAZIL"), col(j, "volume"), op.ConstI(0))})
	g := j.GroupBy([]string{"o_year"},
		sumDec("sum_brazil", col(j, "brazil_volume")),
		sumDec("sum_total", col(j, "volume")))
	g = g.Map(op.NamedExpr{Name: "mkt_share", Type: storage.TDecimal,
		Expr: op.Ratio(col(g, "sum_brazil"), col(g, "sum_total"), 100)})
	g = g.Project("o_year", "mkt_share")
	g = g.OrderBy([]op.SortKey{asc(g, "o_year")}, 0)
	return plan.NewQuery("q8", g)
}
