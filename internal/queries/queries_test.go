package queries

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"hsqp/internal/cluster"
	"hsqp/internal/ref"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

const testSF = 0.01

var (
	dbOnce sync.Once
	testDB *tpch.Database
)

func getDB() *tpch.Database {
	dbOnce.Do(func() {
		testDB = tpch.Generate(testSF, 42)
	})
	return testDB
}

// limitSortKeys lists, for queries with LIMIT, the output columns that are
// fully determined by the ORDER BY (ties below the limit boundary may
// legitimately differ between engines in the remaining columns).
var limitSortKeys = map[int][]int{
	2:  {0},    // s_acctbal (desc) — name/partkey ties can straddle the cut
	3:  {1, 2}, // revenue, o_orderdate
	10: {2},    // revenue
	18: {4, 3}, // o_totalprice, o_orderdate
	21: {1},    // numwait
}

func formatRow(vals []any) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		if v == nil {
			parts[i] = "∅"
		} else {
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	return strings.Join(parts, "|")
}

func batchRows(b *storage.Batch) [][]any {
	out := make([][]any, b.Rows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

func compareResults(t *testing.T, q int, got *storage.Batch, want *ref.Result) {
	t.Helper()
	gotRows := batchRows(got)
	if len(gotRows) != len(want.Rows) {
		t.Fatalf("q%d: got %d rows, want %d\nfirst got: %v\nfirst want: %v",
			q, len(gotRows), len(want.Rows), head(gotRows), headRef(want.Rows))
	}
	if keys, limited := limitSortKeys[q]; limited {
		for i := range gotRows {
			for _, k := range keys {
				g := fmt.Sprintf("%v", gotRows[i][k])
				w := fmt.Sprintf("%v", want.Rows[i][k])
				if g != w {
					t.Fatalf("q%d row %d col %d: got %s want %s", q, i, k, g, w)
				}
			}
		}
		// The full row set must still agree as a multiset on the sort-key
		// columns (already checked positionally), so nothing more here.
		return
	}
	// Unlimited queries: compare the full rows as ordered sets; the plans
	// and the reference sort identically, but hash iteration may produce
	// ties in different orders, so fall back to multiset comparison on
	// mismatch.
	gotS := make([]string, len(gotRows))
	wantS := make([]string, len(want.Rows))
	for i := range gotRows {
		gotS[i] = formatRow(gotRows[i])
		wantS[i] = formatRow(want.Rows[i])
	}
	ordered := true
	for i := range gotS {
		if gotS[i] != wantS[i] {
			ordered = false
			break
		}
	}
	if ordered {
		return
	}
	g2 := append([]string{}, gotS...)
	w2 := append([]string{}, wantS...)
	sort.Strings(g2)
	sort.Strings(w2)
	for i := range g2 {
		if g2[i] != w2[i] {
			t.Fatalf("q%d: result mismatch (row %d after sort)\ngot:  %s\nwant: %s", q, i, g2[i], w2[i])
		}
	}
}

func head(rows [][]any) string {
	if len(rows) == 0 {
		return "<none>"
	}
	return formatRow(rows[0])
}

func headRef(rows []ref.Row) string {
	if len(rows) == 0 {
		return "<none>"
	}
	return formatRow(rows[0])
}

func newCluster(t testing.TB, servers int, classic bool) *cluster.Cluster {
	c, err := cluster.New(cluster.Config{
		Servers:          servers,
		WorkersPerServer: 4,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		Classic:          classic,
		TimeScale:        0.005, // conformance tests: network nearly free
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func runConformance(t *testing.T, servers int, partitioned, classic bool) {
	db := getDB()
	c := newCluster(t, servers, classic)
	c.LoadTPCH(db, partitioned)
	for _, q := range All() {
		q := q
		t.Run(fmt.Sprintf("q%02d", q), func(t *testing.T) {
			plan := MustBuild(q, Params{SF: testSF})
			got, _, err := c.Run(plan)
			if err != nil {
				t.Fatalf("q%d: %v", q, err)
			}
			want, err := ref.Run(q, db, testSF)
			if err != nil {
				t.Fatalf("ref q%d: %v", q, err)
			}
			compareResults(t, q, got, want)
		})
	}
}

func TestTPCHSingleServer(t *testing.T)           { runConformance(t, 1, false, false) }
func TestTPCHDistributedChunked(t *testing.T)     { runConformance(t, 3, false, false) }
func TestTPCHDistributedPartitioned(t *testing.T) { runConformance(t, 3, true, false) }
func TestTPCHClassicExchange(t *testing.T)        { runConformance(t, 3, false, true) }
