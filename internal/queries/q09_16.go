package queries

import (
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// q9: product type profit measure, grouped by nation and year.
func q9(Params) *plan.Query {
	part := scan("part")
	part = part.Select(op.StrContains(part.Col("p_name"), "green"))
	part = part.Project("p_partkey")

	l := scan("lineitem")
	lp := l.Join(part, []string{"l_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"}})

	sup := nationOf(scan("supplier"), "s_nationkey", []string{"s_suppkey"})
	lps := lp.Join(sup, []string{"l_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"},
			BuildOut: []string{"n_name"}})

	ps := scan("partsupp")
	ps = ps.Project("ps_partkey", "ps_suppkey", "ps_supplycost")
	j := lps.Join(ps, []string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_orderkey", "l_quantity", "l_extendedprice", "l_discount", "n_name"},
			BuildOut: []string{"ps_supplycost"}})

	o := scan("orders")
	o = o.Project("o_orderkey", "o_orderdate")
	j2 := j.Join(o, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_quantity", "l_extendedprice", "l_discount", "n_name", "ps_supplycost"},
			BuildOut: []string{"o_orderdate"}})
	j2 = j2.Map(
		op.NamedExpr{Name: "o_year", Type: storage.TInt64, Expr: op.Year(j2.Col("o_orderdate"))},
		op.NamedExpr{Name: "amount", Type: storage.TDecimal,
			Expr: func() op.Expr {
				rev := revenue(j2)
				cost := op.MulDec(col(j2, "ps_supplycost"), col(j2, "l_quantity"))
				return func(b *storage.Batch, i int) op.Val {
					return op.Val{I: rev(b, i).I - cost(b, i).I}
				}
			}()},
	)
	g := j2.GroupBy([]string{"n_name", "o_year"}, sumDec("sum_profit", col(j2, "amount")))
	g = g.OrderBy([]op.SortKey{asc(g, "n_name"), desc(g, "o_year")}, 0)
	return plan.NewQuery("q9", g)
}

// q10: returned item reporting — top 20 customers by lost revenue.
func q10(Params) *plan.Query {
	o := scan("orders")
	o = o.Select(op.And(
		op.I64GE(o.Col("o_orderdate"), date("1993-10-01")),
		op.I64LT(o.Col("o_orderdate"), date("1994-01-01")),
	))
	o = o.Project("o_orderkey", "o_custkey")
	l := scan("lineitem")
	l = l.Select(op.StrEQ(l.Col("l_returnflag"), "R"))
	l = l.Project("l_orderkey", "l_extendedprice", "l_discount")
	j := l.Join(o, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_extendedprice", "l_discount"},
			BuildOut: []string{"o_custkey"}})
	j = j.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(j)})
	g := j.GroupBy([]string{"o_custkey"}, sumDec("revenue", col(j, "rev")))

	cust := nationOf(scan("customer"), "c_nationkey",
		[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment"})
	f := g.Join(cust, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"revenue"},
			BuildOut: []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment", "n_name"}})
	f = f.Project("c_custkey", "c_name", "revenue", "c_acctbal", "n_name", "c_address", "c_phone", "c_comment")
	f = f.OrderBy([]op.SortKey{desc(f, "revenue"), asc(f, "c_custkey")}, 20)
	return plan.NewQuery("q10", f)
}

// q11: important stock identification — HAVING against a scalar subquery
// over the same join (fraction 0.0001/SF).
func q11(p Params) *plan.Query {
	frac := 0.0001
	if p.SF > 0 {
		frac = 0.0001 / p.SF
	}
	nat := scan("nation")
	nat = nat.Select(op.StrEQ(nat.Col("n_name"), "GERMANY"))
	sup := scan("supplier")
	sup = sup.Join(nat, []string{"s_nationkey"}, []string{"n_nationkey"},
		plan.JoinSpec{Type: op.Semi, ProbeOut: []string{"s_suppkey"}})
	ps := scan("partsupp")
	base := ps.Join(sup, []string{"ps_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Semi, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"ps_partkey", "ps_supplycost", "ps_availqty"}})
	availIdx := base.Col("ps_availqty")
	base = base.Map(op.NamedExpr{Name: "value", Type: storage.TDecimal,
		Expr: op.MulDec(col(base, "ps_supplycost"),
			func(b *storage.Batch, i int) op.Val {
				// availqty is an integer count; scale to decimal.
				return op.Val{I: b.Cols[availIdx].I64[i] * 100}
			})})

	grouped := base.GroupBy([]string{"ps_partkey"}, sumDec("value", col(base, "value")))
	total := base.GroupByCols(nil, sumDec("total", col(base, "value")))

	f := grouped.Join(total, nil, nil, plan.JoinSpec{
		Type: op.Semi,
		Residual: func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool {
			return float64(probe.Cols[1].I64[pi]) > float64(build.Cols[0].I64[bi])*frac
		},
	})
	f = f.OrderBy([]op.SortKey{desc(f, "value")}, 0)
	return plan.NewQuery("q11", f)
}

// q12: shipping modes and order priority.
func q12(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.And(
		op.StrIn(l.Col("l_shipmode"), "MAIL", "SHIP"),
		op.ColLT(l.Col("l_commitdate"), l.Col("l_receiptdate")),
		op.ColLT(l.Col("l_shipdate"), l.Col("l_commitdate")),
		op.I64GE(l.Col("l_receiptdate"), date("1994-01-01")),
		op.I64LT(l.Col("l_receiptdate"), date("1995-01-01")),
	))
	l = l.Project("l_orderkey", "l_shipmode")
	o := scan("orders")
	o = o.Project("o_orderkey", "o_orderpriority")
	j := l.Join(o, []string{"l_orderkey"}, []string{"o_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"l_shipmode"},
			BuildOut: []string{"o_orderpriority"}})
	high := op.StrIn(j.Col("o_orderpriority"), "1-URGENT", "2-HIGH")
	j = j.Map(
		op.NamedExpr{Name: "high_line", Type: storage.TInt64,
			Expr: op.CaseWhen(high, op.ConstI(1), op.ConstI(0))},
		op.NamedExpr{Name: "low_line", Type: storage.TInt64,
			Expr: op.CaseWhen(high, op.ConstI(0), op.ConstI(1))},
	)
	g := j.GroupBy([]string{"l_shipmode"},
		sumInt("high_line_count", col(j, "high_line")),
		sumInt("low_line_count", col(j, "low_line")))
	g = g.OrderBy([]op.SortKey{asc(g, "l_shipmode")}, 0)
	return plan.NewQuery("q12", g)
}

// q13: customer distribution — left outer join with a filtered build side.
func q13(Params) *plan.Query {
	o := scan("orders")
	o = o.Select(op.Not(op.Like(o.Col("o_comment"), "%special%requests%")))
	o = o.Project("o_orderkey", "o_custkey")
	c := scan("customer")
	c = c.Project("c_custkey")
	j := c.Join(o, []string{"c_custkey"}, []string{"o_custkey"},
		plan.JoinSpec{Type: op.LeftOuter,
			ProbeOut: []string{"c_custkey"},
			BuildOut: []string{"o_orderkey"}})
	perCust := j.GroupBy([]string{"c_custkey"},
		countNonNull("c_count", col(j, "o_orderkey")))
	dist := perCust.GroupBy([]string{"c_count"}, count("custdist"))
	dist = dist.OrderBy([]op.SortKey{desc(dist, "custdist"), desc(dist, "c_count")}, 0)
	return plan.NewQuery("q13", dist)
}

// q14: promotion effect — conditional aggregate ratio.
func q14(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.And(
		op.I64GE(l.Col("l_shipdate"), date("1995-09-01")),
		op.I64LT(l.Col("l_shipdate"), date("1995-10-01")),
	))
	l = l.Project("l_partkey", "l_extendedprice", "l_discount")
	part := scan("part")
	part = part.Project("p_partkey", "p_type")
	j := l.Join(part, []string{"l_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"l_extendedprice", "l_discount"},
			BuildOut: []string{"p_type"}})
	j = j.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(j)})
	j = j.Map(op.NamedExpr{Name: "promo_rev", Type: storage.TDecimal,
		Expr: op.CaseWhen(op.StrPrefix(j.Col("p_type"), "PROMO"), col(j, "rev"), op.ConstI(0))})
	g := j.GroupByCols(nil,
		sumDec("sum_promo", col(j, "promo_rev")),
		sumDec("sum_rev", col(j, "rev")))
	g = g.Map(op.NamedExpr{Name: "promo_revenue", Type: storage.TDecimal,
		Expr: op.Ratio(col(g, "sum_promo"), col(g, "sum_rev"), 10000)})
	g = g.Project("promo_revenue")
	return plan.NewQuery("q14", g)
}

// q15: top supplier — revenue view + max scalar + value join.
func q15(Params) *plan.Query {
	l := scan("lineitem")
	l = l.Select(op.And(
		op.I64GE(l.Col("l_shipdate"), date("1996-01-01")),
		op.I64LT(l.Col("l_shipdate"), date("1996-04-01")),
	))
	l = l.Project("l_suppkey", "l_extendedprice", "l_discount")
	l = l.Map(op.NamedExpr{Name: "rev", Type: storage.TDecimal, Expr: revenue(l)})
	view := l.GroupBy([]string{"l_suppkey"}, sumDec("total_revenue", col(l, "rev")))
	maxRev := view.GroupByCols(nil, maxDec("max_revenue", col(view, "total_revenue")))

	top := view.Join(maxRev, []string{"total_revenue"}, []string{"max_revenue"},
		plan.JoinSpec{Type: op.Semi})
	sup := scan("supplier")
	f := top.Join(sup, []string{"l_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"total_revenue"},
			BuildOut: []string{"s_suppkey", "s_name", "s_address", "s_phone"}})
	f = f.Project("s_suppkey", "s_name", "s_address", "s_phone", "total_revenue")
	f = f.OrderBy([]op.SortKey{asc(f, "s_suppkey")}, 0)
	return plan.NewQuery("q15", f)
}

// q16: parts/supplier relationship — anti-join against complaint
// suppliers, count(distinct) via a two-level aggregation.
func q16(Params) *plan.Query {
	part := scan("part")
	part = part.Select(op.And(
		op.Not(op.StrEQ(part.Col("p_brand"), "Brand#45")),
		op.Not(op.StrPrefix(part.Col("p_type"), "MEDIUM POLISHED")),
		func() op.Pred {
			sizes := map[int64]struct{}{49: {}, 14: {}, 23: {}, 45: {}, 19: {}, 3: {}, 36: {}, 9: {}}
			c := part.Col("p_size")
			return func(b *storage.Batch, i int) bool {
				_, ok := sizes[b.Cols[c].I64[i]]
				return ok
			}
		}(),
	))
	ps := scan("partsupp")
	j := ps.Join(part, []string{"ps_partkey"}, []string{"p_partkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"ps_suppkey"},
			BuildOut: []string{"p_brand", "p_type", "p_size"}})
	bad := scan("supplier")
	bad = bad.Select(op.Like(bad.Col("s_comment"), "%Customer%Complaints%"))
	bad = bad.Project("s_suppkey")
	j = j.Join(bad, []string{"ps_suppkey"}, []string{"s_suppkey"},
		plan.JoinSpec{Type: op.Anti, Strategy: plan.BroadcastBuild})
	// count(distinct ps_suppkey): first collapse duplicates, then count.
	uniq := j.GroupBy([]string{"p_brand", "p_type", "p_size", "ps_suppkey"})
	g := uniq.GroupBy([]string{"p_brand", "p_type", "p_size"}, count("supplier_cnt"))
	g = g.OrderBy([]op.SortKey{
		desc(g, "supplier_cnt"), asc(g, "p_brand"), asc(g, "p_type"), asc(g, "p_size"),
	}, 0)
	return plan.NewQuery("q16", g)
}
