// Package cluster assembles N in-process server nodes into the distributed
// query engine of the paper: per server a NUMA topology, a registered
// message pool, a communication multiplexer with its network goroutine,
// an RDMA or TCP endpoint on the shared switch fabric, and a morsel-driven
// execution engine. It loads TPC-H style databases under chunked,
// partitioned or replicated placement (§4.1) and executes distributed
// query plans.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/exchange"
	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/obs"
	"hsqp/internal/plan"
	"hsqp/internal/rdma"
	"hsqp/internal/sim"
	"hsqp/internal/spin"
	"hsqp/internal/storage"
	"hsqp/internal/tcp"
	"hsqp/internal/tpch"
)

// TransportKind selects the wire protocol (the three engines of Figure 3).
type TransportKind int

const (
	// RDMA is the paper's communication multiplexer over InfiniBand verbs.
	RDMA TransportKind = iota
	// TCPoIB is TCP via IP-over-InfiniBand (connected mode, tuned §2.1.2).
	TCPoIB
	// TCPGbE is TCP over Gigabit Ethernet.
	TCPGbE
)

func (t TransportKind) String() string {
	switch t {
	case RDMA:
		return "rdma"
	case TCPoIB:
		return "tcp-ipoib"
	case TCPGbE:
		return "tcp-gbe"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(t))
	}
}

// RegistrationCost is the modeled cost of registering (pinning) a fresh
// memory region with the HCA (§2.2.2); amortized away by pool reuse.
const RegistrationCost = 40 * time.Microsecond

// Config configures a cluster.
type Config struct {
	Servers          int
	Topology         *numa.Topology // per server; TwoSocket() if nil
	WorkersPerServer int            // engine workers; topology cores if 0
	Transport        TransportKind
	// Rate overrides the link data rate; zero selects QDR for RDMA/TCPoIB
	// and GbE for TCPGbE.
	Rate fabric.Rate
	// TimeScale converts simulated network seconds to wall seconds.
	// Zero = DefaultTimeScale.
	TimeScale float64
	// Scheduling enables round-robin network scheduling (§3.2.3).
	Scheduling bool
	// AllocPolicy is the message-buffer allocation policy (Figure 9).
	AllocPolicy numa.AllocPolicy
	// Classic compiles plans in the classic exchange-operator model.
	Classic bool
	// Skew tunes adaptive skew handling for plan.SkewAdaptive joins (zero
	// values select the exchange package defaults).
	Skew exchange.SkewConfig
	// Serial executes each server's pipelines strictly in compile order
	// (the pre-DAG execution model) instead of scheduling the pipeline DAG
	// on the worker pool — kept as an ablation/reference path.
	Serial bool
	// DisablePreAgg turns off pre-aggregation (ablation).
	DisablePreAgg bool
	// NoFuse disables operator fusion: filters, maps and projections run
	// as separate batch-at-a-time operators (ablation for the fused path).
	NoFuse bool
	// NoPushdown disables column pruning below exchange sends (ablation
	// for the wire-byte reduction).
	NoPushdown  bool
	MorselSize  int
	MessageSize int
	// AfterScan/AfterExchange insert extra operators into every compiled
	// plan (competitor engine styles; see internal/competitors).
	AfterScan     func(schema *storage.Schema) []engine.Op
	AfterExchange func(schema *storage.Schema) []engine.Op
	// ReplicaFactor is the default per-table replica factor recorded by
	// LoadTable (LoadTableReplicas overrides it per table). With r ≥ 2 each
	// partition of a chunked or hash-partitioned table exists on r servers,
	// so losing one server is recoverable and RunContext can transparently
	// restart queries on the survivors. Zero means 1 (no redundancy:
	// an unplanned server loss makes such tables unrecoverable).
	ReplicaFactor int
	// HeartbeatInterval is how often a query's coordinator probes the
	// participants for liveness while the query runs. Zero means 10ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long the coordinator waits for a probe echo
	// before suspecting the peer. It must comfortably exceed the worst
	// head-of-line wait behind full-size messages on the simulated link or
	// a loaded cluster evicts healthy servers. Zero means 1s.
	HeartbeatTimeout time.Duration
	// DisableFailureDetection turns the per-query heartbeat watchdog off
	// (crash faults are still detected through the failing server's own
	// run error; hangs and partitions then go unnoticed).
	DisableFailureDetection bool
	// PhaseHook, when set, is invoked synchronously at query lifecycle
	// boundaries (after compile, at execution launch) on every attempt —
	// the injection point for sim.FaultInjector.
	PhaseHook func(phase sim.QueryPhase)
}

// DefaultTimeScale calibrates the simulated network against the in-process
// engine's compute speed so that the paper's compute:network balance is
// preserved (see DESIGN.md §2). Experiments at SF ≈ 0.05–0.2 with this
// scale reproduce the paper's shapes.
const DefaultTimeScale = 12.0

// Node is one simulated server.
type Node struct {
	ID     int
	Topo   *numa.Topology
	Pool   *memory.Pool
	Mux    *mux.Mux
	Engine *engine.Engine

	transport mux.Transport
	tcpEP     *tcp.Endpoint
	rdmaEP    *rdma.Endpoint

	// alive turns false when the server is killed or evicted; hung marks a
	// frozen (SIGSTOPped) process. Both are observed by the per-query
	// failure detector.
	alive    atomic.Bool
	hung     atomic.Bool
	killOnce sync.Once

	mu     sync.Mutex
	tables map[string]plan.TableInfo
}

// Alive reports whether the server has not been killed or evicted.
func (n *Node) Alive() bool { return n.alive.Load() }

// kill tears the node's runtime components down in leak-free order: the
// multiplexer first (its stop channel unblocks senders and receivers),
// then the engine (in-flight runs abort with ErrCancelled), then the
// transport. Idempotent: eviction after a KillServer re-runs it as a
// no-op.
func (n *Node) kill() {
	n.killOnce.Do(func() {
		n.alive.Store(false)
		n.Mux.Close()
		n.Engine.Close()
		n.transport.Close()
	})
}

// Cluster is the whole simulated deployment.
type Cluster struct {
	cfg Config

	// memMu is the membership lock: queries and Prepare hold it for read
	// over one attempt, membership changes (AddServer, RemoveServer, table
	// loads, failure eviction) hold it for write. A membership change
	// therefore waits for in-flight attempts to drain — an aborted attempt
	// releases quickly — and no attempt ever observes a half-rebuilt mesh.
	memMu sync.RWMutex
	fab   *fabric.Fabric
	Nodes []*Node
	// catalog retains every loaded table's source batch and placement spec.
	// It stands in for the replicated storage layer: with replica factor
	// r ≥ 2 each partition exists on r servers, and after a membership
	// change the new placement is recomputed deterministically from the
	// retained source — byte-identical to what replica recovery would
	// reassemble.
	catalog map[string]*tableSpec

	// fabPtr/nodesPtr mirror fab/Nodes for lock-free readers (KillServer
	// and friends run inside a query attempt that already holds the read
	// lock, so they must not touch memMu themselves).
	fabPtr   atomic.Pointer[fabric.Fabric]
	nodesPtr atomic.Pointer[[]*Node]

	nextQueryID atomic.Int32
	closed      atomic.Bool
	// epoch counts placement generations: every table (re)load and every
	// membership change bumps it *after* the new tables are installed, so
	// plan and result caches keyed on it can never pair a new epoch with
	// old placements.
	epoch atomic.Uint64
}

// tableSpec is one catalog entry: everything needed to re-partition the
// table over a changed membership.
type tableSpec struct {
	src       *storage.Batch
	placement storage.Placement
	partCol   int
	replicas  int
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", cfg.Servers)
	}
	if cfg.Topology == nil {
		cfg.Topology = numa.TwoSocket()
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = DefaultTimeScale
	}
	if cfg.Rate == 0 {
		if cfg.Transport == TCPGbE {
			cfg.Rate = fabric.GbE
		} else {
			cfg.Rate = fabric.IB4xQDR
		}
	}
	if cfg.MorselSize <= 0 {
		cfg.MorselSize = engine.DefaultMorselSize
	}

	c := &Cluster{cfg: cfg, catalog: map[string]*tableSpec{}}
	nodes := make([]*Node, 0, cfg.Servers)
	for id := 0; id < cfg.Servers; id++ {
		node, err := c.newNodeShell(id)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
	}
	if err := c.wireMesh(nodes); err != nil {
		return nil, err
	}
	c.startMesh()
	mActiveServers.Set(float64(len(nodes)))
	return c, nil
}

// newNodeShell builds the durable half of a server — NUMA topology,
// registered message pool and worker-pool engine — which survives
// membership rebuilds. The network half (mux + endpoint) is attached by
// wireMesh.
func (c *Cluster) newNodeShell(id int) (*Node, error) {
	topo := c.cfg.Topology
	scale := c.cfg.TimeScale
	pool := memory.NewPool(topo, c.cfg.AllocPolicy, c.cfg.MessageSize, func() {
		spin.Burn(time.Duration(float64(RegistrationCost) * scale))
	})
	eng, err := engine.New(engine.Config{
		Topology:   topo,
		Workers:    c.cfg.WorkersPerServer,
		MorselSize: c.cfg.MorselSize,
	})
	if err != nil {
		return nil, err
	}
	node := &Node{ID: id, Topo: topo, Pool: pool, Engine: eng, tables: map[string]plan.TableInfo{}}
	node.alive.Store(true)
	return node, nil
}

// wireMesh builds a fresh fabric sized to the node list and attaches a new
// multiplexer and endpoint to every node (dense server ids 0..n-1 mapped
// one-to-one onto fabric ports). It installs the new mesh into the cluster
// but does not start it; call startMesh once tables are in place.
func (c *Cluster) wireMesh(nodes []*Node) error {
	n := len(nodes)
	fab, err := fabric.New(fabric.Config{
		Ports:     n,
		Rate:      c.cfg.Rate,
		TimeScale: c.cfg.TimeScale,
	})
	if err != nil {
		return err
	}
	for id, node := range nodes {
		node.ID = id
		m, err := mux.New(mux.Config{
			Server:     id,
			Servers:    n,
			Topology:   node.Topo,
			Pool:       node.Pool,
			Scheduling: c.cfg.Scheduling,
		})
		if err != nil {
			return err
		}
		var tr mux.Transport
		node.tcpEP, node.rdmaEP = nil, nil
		switch c.cfg.Transport {
		case RDMA:
			ep := rdma.NewEndpoint(fab, id, m.RecvAlloc, m.OnRecv, m.OnInline)
			node.rdmaEP = ep
			tr = ep
		case TCPoIB:
			ep := tcp.NewEndpoint(fab, id,
				tcp.Config{Mode: tcp.ModeConnected, NICLocal: true, TunedInterrupts: true},
				m.RecvAlloc, m.OnRecv, m.OnInline)
			node.tcpEP = ep
			tr = ep
		case TCPGbE:
			ep := tcp.NewEndpoint(fab, id, tcp.Config{Mode: tcp.ModeEthernet, Offload: true, NICLocal: true},
				m.RecvAlloc, m.OnRecv, m.OnInline)
			node.tcpEP = ep
			tr = ep
		default:
			return fmt.Errorf("cluster: unknown transport %v", c.cfg.Transport)
		}
		m.SetTransport(tr)
		node.Mux = m
		node.transport = tr
	}
	c.fab = fab
	c.Nodes = nodes
	c.cfg.Servers = n
	c.fabPtr.Store(fab)
	c.nodesPtr.Store(&nodes)
	return nil
}

// startMesh starts the current fabric, transports and multiplexers.
func (c *Cluster) startMesh() {
	c.fab.Start()
	for _, n := range c.Nodes {
		n.transport.Start()
		n.Mux.Start()
	}
}

// Config returns the cluster configuration. Servers reflects the current
// membership.
func (c *Cluster) Config() Config {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.cfg
}

// Servers returns the current number of servers in the membership.
func (c *Cluster) Servers() int { return len(*c.nodesPtr.Load()) }

// Fabric exposes the underlying fabric (stats). Membership changes replace
// the fabric; the returned handle keeps reporting the mesh it belonged to.
func (c *Cluster) Fabric() *fabric.Fabric { return c.fabPtr.Load() }

// Close shuts everything down. It must not race with membership changes
// (it deliberately takes no membership lock, so that queries hung without
// a cancel channel are aborted by the engine teardown instead of
// deadlocking a lock acquisition).
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, n := range *c.nodesPtr.Load() {
		n.Engine.Close()
		n.Mux.Close()
		n.transport.Close()
	}
	c.fabPtr.Load().Stop()
}

// Epoch identifies the current table-placement generation: it advances on
// every LoadTable, so prepared plans and cached results carry the epoch
// they were built against and can be discarded when the data changes.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// LoadTable distributes one relation over the cluster with the
// configuration's default replica factor.
func (c *Cluster) LoadTable(name string, b *storage.Batch, placement storage.Placement, partCol int) {
	c.LoadTableReplicas(name, b, placement, partCol, c.cfg.ReplicaFactor)
}

// LoadTableReplicas distributes one relation over the cluster and records
// its replica factor. The factor does not change the primary placement —
// chunked and hash-partitioned tables keep one primary partition per
// server — it records on how many servers each partition additionally
// exists, which decides whether an *unplanned* server loss is recoverable
// (see RemoveServer and RunContext). Replicated placement implies full
// redundancy regardless of the factor. The epoch is bumped only after the
// new placement is installed on every node, so an epoch value can never be
// observed ahead of the tables it describes.
func (c *Cluster) LoadTableReplicas(name string, b *storage.Batch, placement storage.Placement, partCol, replicas int) {
	if replicas < 1 {
		replicas = 1
	}
	spec := &tableSpec{src: b, placement: placement, partCol: partCol, replicas: replicas}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	c.catalog[name] = spec
	c.installLocked(name, spec, c.Nodes)
	mEpoch.Set(float64(c.epoch.Add(1)))
}

// installLocked computes the table's placement for the given node list and
// installs one fragment per node. Splits are pure functions of (source,
// server count), so reinstalling after a membership change reproduces
// byte-identical contents. Caller holds memMu for write.
func (c *Cluster) installLocked(name string, spec *tableSpec, nodes []*Node) {
	n := len(nodes)
	var parts []*storage.Batch
	var info func(id int) plan.TableInfo
	switch spec.placement {
	case storage.PlacementChunked:
		parts = storage.SplitChunked(spec.src, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{} }
	case storage.PlacementPartitioned:
		parts = storage.SplitPartitioned(spec.src, spec.partCol, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{PartCols: []int{spec.partCol}} }
	case storage.PlacementReplicated:
		parts = storage.Replicate(spec.src, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{Replicated: true} }
	default:
		panic(fmt.Sprintf("cluster: unknown placement %v", spec.placement))
	}
	for id, node := range nodes {
		t := storage.NewTable(name, spec.src.Schema)
		t.DistributeToSockets(parts[id], node.Topo)
		ti := info(id)
		ti.Table = t
		node.mu.Lock()
		node.tables[name] = ti
		node.mu.Unlock()
	}
}

// LoadTPCH loads a generated TPC-H database. Under partitioned placement,
// nation and region are replicated and all other relations are
// hash-partitioned by the first primary-key column (§4.3.1); under chunked
// placement relations are split into contiguous chunks as generated, with
// nation and region still replicated (they are fixed-size catalogs).
func (c *Cluster) LoadTPCH(db *tpch.Database, partitioned bool) {
	for name, b := range db.Tables {
		switch {
		case name == "nation" || name == "region":
			c.LoadTable(name, b, storage.PlacementReplicated, 0)
		case partitioned:
			c.LoadTable(name, b, storage.PlacementPartitioned, tpch.PrimaryKeyColumn(name))
		default:
			c.LoadTable(name, b, storage.PlacementChunked, 0)
		}
	}
}

// QueryStats reports the network and scheduling activity of one query run.
// The network counters (BytesSent, MessagesSent, …) are cluster-wide
// deltas over the query's wall interval: when other queries execute
// concurrently their traffic is included, so treat them as exact only for
// queries run alone. WireBytes is per-query exact (summed from the
// query's own exchange sends) and should be preferred for byte-savings
// claims.
type QueryStats struct {
	// Duration is the query's end-to-end latency inside the cluster:
	// Compile + Exec. It excludes any admission queueing (QueueWait).
	Duration time.Duration
	// QueueWait is how long the query waited for an execution slot before
	// compilation started. Zero for direct Cluster.Run calls; populated by
	// Session (and the serving tier's weighted-fair admission).
	QueueWait time.Duration
	// Compile is the plan-compilation time summed over the per-server
	// compile loop (the cost a plan cache amortizes away).
	Compile time.Duration
	// Exec is the wall time of the distributed pipeline-DAG execution.
	// Compile, Exec and Duration cover the successful attempt; aborted
	// attempts' time shows up only in the failover-latency histogram.
	Exec time.Duration
	// Restarts counts how many times the query was transparently restarted
	// after a server loss (0 for an untroubled run).
	Restarts     int
	BytesSent    uint64 // wire bytes between servers
	MessagesSent uint64
	StolenMsgs   uint64
	LocalMsgs    uint64
	// PipelineStats[server] lists per-pipeline wall/busy times as measured
	// by that server's DAG scheduler.
	PipelineStats [][]engine.PipelineStat
	// ServerOverlap[server] is the fraction of the server's active span
	// during which at least two pipelines executed concurrently
	// (compute/communication overlap; 0 under strictly serial execution).
	ServerOverlap []float64
	// Trace is the query's merged distributed trace (queue/compile/
	// per-pipeline/exchange spans across servers), built after execution
	// from the pipeline stats. Nil when observability is disabled
	// (obs.SetEnabled(false)). Render with Trace.WriteChromeJSON.
	Trace *obs.Trace
}

// WireBytes sums the exact wire bytes of this query's own exchange sends
// across all servers (headers + payload + Last markers, broadcast buffers
// counted once per destination). Unlike BytesSent it is sourced from the
// per-pipeline sink stats, so it stays exact when other queries share the
// cluster.
func (s *QueryStats) WireBytes() uint64 {
	var total uint64
	for _, server := range s.PipelineStats {
		for _, p := range server {
			total += p.SinkBytes
		}
	}
	return total
}

// MaxOverlap returns the highest per-server overlap ratio of the run.
func (s *QueryStats) MaxOverlap() float64 {
	max := 0.0
	for _, o := range s.ServerOverlap {
		if o > max {
			max = o
		}
	}
	return max
}

// ConcurrentPipelines reports the peak number of pipelines that were in
// flight simultaneously on server id.
func (s *QueryStats) ConcurrentPipelines(id int) int {
	if id < 0 || id >= len(s.PipelineStats) {
		return 0
	}
	return engine.PeakConcurrency(s.PipelineStats[id])
}

// PeakConcurrentPipelines is the highest ConcurrentPipelines value across
// all servers of the run.
func (s *QueryStats) PeakConcurrentPipelines() int {
	peak := 0
	for id := range s.PipelineStats {
		if c := s.ConcurrentPipelines(id); c > peak {
			peak = c
		}
	}
	return peak
}

// compileAll lowers the query on every listed server with the shared query
// id and the identical exchange-id sequence. On error the exchange state
// already opened by earlier servers is released.
func (c *Cluster) compileAll(nodes []*Node, q *plan.Query, qid int32, cancel <-chan struct{}) ([]*plan.Compiled, error) {
	compiled := make([]*plan.Compiled, len(nodes))
	for id, node := range nodes {
		var next int32
		env := &plan.Env{
			QueryID:          qid,
			ServerID:         id,
			Servers:          len(nodes),
			WorkersPerServer: node.Engine.Workers(),
			Engine:           node.Engine,
			Mux:              node.Mux,
			Pool:             node.Pool,
			Topo:             node.Topo,
			Scale:            c.cfg.TimeScale,
			Classic:          c.cfg.Classic,
			Skew:             c.cfg.Skew,
			Cancel:           cancel,
			DisablePreAgg:    c.cfg.DisablePreAgg,
			NoFuse:           c.cfg.NoFuse,
			NoPushdown:       c.cfg.NoPushdown,
			MorselSize:       c.cfg.MorselSize,
			AfterScan:        c.cfg.AfterScan,
			AfterExchange:    c.cfg.AfterExchange,
			Lookup:           node.lookup,
			NextExID: func() int32 {
				next++
				return next - 1
			},
		}
		cp, err := plan.Compile(q, env)
		if err != nil {
			for _, n := range nodes {
				n.Mux.CloseQuery(qid)
			}
			return nil, err
		}
		compiled[id] = cp
	}
	return compiled, nil
}

// SchedulerDelay reports the worst per-server delay between run start and
// the first morsel dispatched for this query — the engine-level queueing a
// query experiences when many runs share the worker pools (an SLO
// component distinct from admission QueueWait).
func (s *QueryStats) SchedulerDelay() time.Duration {
	var worst time.Duration
	for _, st := range s.PipelineStats {
		if d := engine.FirstDispatch(st); d > worst {
			worst = d
		}
	}
	return worst
}

func (n *Node) lookup(name string) (plan.TableInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ti, ok := n.tables[name]
	if !ok {
		return plan.TableInfo{}, fmt.Errorf("cluster: server %d has no table %q", n.ID, name)
	}
	return ti, nil
}

// TCPStats aggregates TCP endpoint statistics over all nodes (zero for
// RDMA clusters).
func (c *Cluster) TCPStats() tcp.Stats {
	var out tcp.Stats
	for _, n := range c.Nodes {
		if n.tcpEP == nil {
			continue
		}
		s := n.tcpEP.Stats()
		out.BytesSent += s.BytesSent
		out.BytesReceived += s.BytesReceived
		out.MsgsSent += s.MsgsSent
		out.MsgsReceived += s.MsgsReceived
		out.Segments += s.Segments
		out.CPUSeconds += s.CPUSeconds
	}
	return out
}

// RDMAStats aggregates RDMA endpoint statistics over all nodes.
func (c *Cluster) RDMAStats() rdma.Stats {
	var out rdma.Stats
	for _, n := range c.Nodes {
		if n.rdmaEP == nil {
			continue
		}
		s := n.rdmaEP.Stats()
		out.BytesSent += s.BytesSent
		out.BytesReceived += s.BytesReceived
		out.MsgsSent += s.MsgsSent
		out.MsgsReceived += s.MsgsReceived
		out.CPUSeconds += s.CPUSeconds
	}
	return out
}
