// Package cluster assembles N in-process server nodes into the distributed
// query engine of the paper: per server a NUMA topology, a registered
// message pool, a communication multiplexer with its network goroutine,
// an RDMA or TCP endpoint on the shared switch fabric, and a morsel-driven
// execution engine. It loads TPC-H style databases under chunked,
// partitioned or replicated placement (§4.1) and executes distributed
// query plans.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/exchange"
	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/obs"
	"hsqp/internal/plan"
	"hsqp/internal/rdma"
	"hsqp/internal/spin"
	"hsqp/internal/storage"
	"hsqp/internal/tcp"
	"hsqp/internal/tpch"
)

// TransportKind selects the wire protocol (the three engines of Figure 3).
type TransportKind int

const (
	// RDMA is the paper's communication multiplexer over InfiniBand verbs.
	RDMA TransportKind = iota
	// TCPoIB is TCP via IP-over-InfiniBand (connected mode, tuned §2.1.2).
	TCPoIB
	// TCPGbE is TCP over Gigabit Ethernet.
	TCPGbE
)

func (t TransportKind) String() string {
	switch t {
	case RDMA:
		return "rdma"
	case TCPoIB:
		return "tcp-ipoib"
	case TCPGbE:
		return "tcp-gbe"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(t))
	}
}

// RegistrationCost is the modeled cost of registering (pinning) a fresh
// memory region with the HCA (§2.2.2); amortized away by pool reuse.
const RegistrationCost = 40 * time.Microsecond

// Config configures a cluster.
type Config struct {
	Servers          int
	Topology         *numa.Topology // per server; TwoSocket() if nil
	WorkersPerServer int            // engine workers; topology cores if 0
	Transport        TransportKind
	// Rate overrides the link data rate; zero selects QDR for RDMA/TCPoIB
	// and GbE for TCPGbE.
	Rate fabric.Rate
	// TimeScale converts simulated network seconds to wall seconds.
	// Zero = DefaultTimeScale.
	TimeScale float64
	// Scheduling enables round-robin network scheduling (§3.2.3).
	Scheduling bool
	// AllocPolicy is the message-buffer allocation policy (Figure 9).
	AllocPolicy numa.AllocPolicy
	// Classic compiles plans in the classic exchange-operator model.
	Classic bool
	// Skew tunes adaptive skew handling for plan.SkewAdaptive joins (zero
	// values select the exchange package defaults).
	Skew exchange.SkewConfig
	// Serial executes each server's pipelines strictly in compile order
	// (the pre-DAG execution model) instead of scheduling the pipeline DAG
	// on the worker pool — kept as an ablation/reference path.
	Serial bool
	// DisablePreAgg turns off pre-aggregation (ablation).
	DisablePreAgg bool
	// NoFuse disables operator fusion: filters, maps and projections run
	// as separate batch-at-a-time operators (ablation for the fused path).
	NoFuse bool
	// NoPushdown disables column pruning below exchange sends (ablation
	// for the wire-byte reduction).
	NoPushdown  bool
	MorselSize  int
	MessageSize int
	// AfterScan/AfterExchange insert extra operators into every compiled
	// plan (competitor engine styles; see internal/competitors).
	AfterScan     func(schema *storage.Schema) []engine.Op
	AfterExchange func(schema *storage.Schema) []engine.Op
}

// DefaultTimeScale calibrates the simulated network against the in-process
// engine's compute speed so that the paper's compute:network balance is
// preserved (see DESIGN.md §2). Experiments at SF ≈ 0.05–0.2 with this
// scale reproduce the paper's shapes.
const DefaultTimeScale = 12.0

// Node is one simulated server.
type Node struct {
	ID     int
	Topo   *numa.Topology
	Pool   *memory.Pool
	Mux    *mux.Mux
	Engine *engine.Engine

	transport mux.Transport
	tcpEP     *tcp.Endpoint
	rdmaEP    *rdma.Endpoint

	mu     sync.Mutex
	tables map[string]plan.TableInfo
}

// Cluster is the whole simulated deployment.
type Cluster struct {
	cfg   Config
	fab   *fabric.Fabric
	Nodes []*Node

	nextQueryID atomic.Int32
	closed      atomic.Bool
	// epoch counts table (re)loads; plan and result caches key on it so a
	// reload invalidates every cached artifact compiled against the old
	// placement.
	epoch atomic.Uint64
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", cfg.Servers)
	}
	if cfg.Topology == nil {
		cfg.Topology = numa.TwoSocket()
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = DefaultTimeScale
	}
	if cfg.Rate == 0 {
		if cfg.Transport == TCPGbE {
			cfg.Rate = fabric.GbE
		} else {
			cfg.Rate = fabric.IB4xQDR
		}
	}
	if cfg.MorselSize <= 0 {
		cfg.MorselSize = engine.DefaultMorselSize
	}

	fab, err := fabric.New(fabric.Config{
		Ports:     cfg.Servers,
		Rate:      cfg.Rate,
		TimeScale: cfg.TimeScale,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fab: fab}

	for id := 0; id < cfg.Servers; id++ {
		topo := cfg.Topology
		scale := cfg.TimeScale
		pool := memory.NewPool(topo, cfg.AllocPolicy, cfg.MessageSize, func() {
			spin.Burn(time.Duration(float64(RegistrationCost) * scale))
		})
		m, err := mux.New(mux.Config{
			Server:     id,
			Servers:    cfg.Servers,
			Topology:   topo,
			Pool:       pool,
			Scheduling: cfg.Scheduling,
		})
		if err != nil {
			return nil, err
		}
		var tr mux.Transport
		node := &Node{ID: id, Topo: topo, Pool: pool, Mux: m, tables: map[string]plan.TableInfo{}}
		switch cfg.Transport {
		case RDMA:
			ep := rdma.NewEndpoint(fab, id, m.RecvAlloc, m.OnRecv, m.OnInline)
			node.rdmaEP = ep
			tr = ep
		case TCPoIB:
			ep := tcp.NewEndpoint(fab, id,
				tcp.Config{Mode: tcp.ModeConnected, NICLocal: true, TunedInterrupts: true},
				m.RecvAlloc, m.OnRecv, m.OnInline)
			node.tcpEP = ep
			tr = ep
		case TCPGbE:
			ep := tcp.NewEndpoint(fab, id, tcp.Config{Mode: tcp.ModeEthernet, Offload: true, NICLocal: true},
				m.RecvAlloc, m.OnRecv, m.OnInline)
			node.tcpEP = ep
			tr = ep
		default:
			return nil, fmt.Errorf("cluster: unknown transport %v", cfg.Transport)
		}
		m.SetTransport(tr)
		node.transport = tr
		eng, err := engine.New(engine.Config{
			Topology:   topo,
			Workers:    cfg.WorkersPerServer,
			MorselSize: cfg.MorselSize,
		})
		if err != nil {
			return nil, err
		}
		node.Engine = eng
		c.Nodes = append(c.Nodes, node)
	}

	fab.Start()
	for _, n := range c.Nodes {
		n.transport.Start()
		n.Mux.Start()
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Fabric exposes the underlying fabric (stats).
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// Close shuts everything down.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, n := range c.Nodes {
		n.Engine.Close()
		n.Mux.Close()
		n.transport.Close()
	}
	c.fab.Stop()
}

// Epoch identifies the current table-placement generation: it advances on
// every LoadTable, so prepared plans and cached results carry the epoch
// they were built against and can be discarded when the data changes.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// LoadTable distributes one relation over the cluster.
func (c *Cluster) LoadTable(name string, b *storage.Batch, placement storage.Placement, partCol int) {
	mEpoch.Set(float64(c.epoch.Add(1)))
	n := c.cfg.Servers
	var parts []*storage.Batch
	var info func(id int) plan.TableInfo
	switch placement {
	case storage.PlacementChunked:
		parts = storage.SplitChunked(b, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{} }
	case storage.PlacementPartitioned:
		parts = storage.SplitPartitioned(b, partCol, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{PartCols: []int{partCol}} }
	case storage.PlacementReplicated:
		parts = storage.Replicate(b, n)
		info = func(int) plan.TableInfo { return plan.TableInfo{Replicated: true} }
	default:
		panic(fmt.Sprintf("cluster: unknown placement %v", placement))
	}
	for id, node := range c.Nodes {
		t := storage.NewTable(name, b.Schema)
		t.DistributeToSockets(parts[id], node.Topo)
		ti := info(id)
		ti.Table = t
		node.mu.Lock()
		node.tables[name] = ti
		node.mu.Unlock()
	}
}

// LoadTPCH loads a generated TPC-H database. Under partitioned placement,
// nation and region are replicated and all other relations are
// hash-partitioned by the first primary-key column (§4.3.1); under chunked
// placement relations are split into contiguous chunks as generated, with
// nation and region still replicated (they are fixed-size catalogs).
func (c *Cluster) LoadTPCH(db *tpch.Database, partitioned bool) {
	for name, b := range db.Tables {
		switch {
		case name == "nation" || name == "region":
			c.LoadTable(name, b, storage.PlacementReplicated, 0)
		case partitioned:
			c.LoadTable(name, b, storage.PlacementPartitioned, tpch.PrimaryKeyColumn(name))
		default:
			c.LoadTable(name, b, storage.PlacementChunked, 0)
		}
	}
}

// QueryStats reports the network and scheduling activity of one query run.
// The network counters (BytesSent, MessagesSent, …) are cluster-wide
// deltas over the query's wall interval: when other queries execute
// concurrently their traffic is included, so treat them as exact only for
// queries run alone. WireBytes is per-query exact (summed from the
// query's own exchange sends) and should be preferred for byte-savings
// claims.
type QueryStats struct {
	// Duration is the query's end-to-end latency inside the cluster:
	// Compile + Exec. It excludes any admission queueing (QueueWait).
	Duration time.Duration
	// QueueWait is how long the query waited for an execution slot before
	// compilation started. Zero for direct Cluster.Run calls; populated by
	// Session (and the serving tier's weighted-fair admission).
	QueueWait time.Duration
	// Compile is the plan-compilation time summed over the per-server
	// compile loop (the cost a plan cache amortizes away).
	Compile time.Duration
	// Exec is the wall time of the distributed pipeline-DAG execution.
	Exec         time.Duration
	BytesSent    uint64 // wire bytes between servers
	MessagesSent uint64
	StolenMsgs   uint64
	LocalMsgs    uint64
	// PipelineStats[server] lists per-pipeline wall/busy times as measured
	// by that server's DAG scheduler.
	PipelineStats [][]engine.PipelineStat
	// ServerOverlap[server] is the fraction of the server's active span
	// during which at least two pipelines executed concurrently
	// (compute/communication overlap; 0 under strictly serial execution).
	ServerOverlap []float64
	// Trace is the query's merged distributed trace (queue/compile/
	// per-pipeline/exchange spans across servers), built after execution
	// from the pipeline stats. Nil when observability is disabled
	// (obs.SetEnabled(false)). Render with Trace.WriteChromeJSON.
	Trace *obs.Trace
}

// WireBytes sums the exact wire bytes of this query's own exchange sends
// across all servers (headers + payload + Last markers, broadcast buffers
// counted once per destination). Unlike BytesSent it is sourced from the
// per-pipeline sink stats, so it stays exact when other queries share the
// cluster.
func (s *QueryStats) WireBytes() uint64 {
	var total uint64
	for _, server := range s.PipelineStats {
		for _, p := range server {
			total += p.SinkBytes
		}
	}
	return total
}

// MaxOverlap returns the highest per-server overlap ratio of the run.
func (s *QueryStats) MaxOverlap() float64 {
	max := 0.0
	for _, o := range s.ServerOverlap {
		if o > max {
			max = o
		}
	}
	return max
}

// ConcurrentPipelines reports the peak number of pipelines that were in
// flight simultaneously on server id.
func (s *QueryStats) ConcurrentPipelines(id int) int {
	if id < 0 || id >= len(s.PipelineStats) {
		return 0
	}
	return engine.PeakConcurrency(s.PipelineStats[id])
}

// PeakConcurrentPipelines is the highest ConcurrentPipelines value across
// all servers of the run.
func (s *QueryStats) PeakConcurrentPipelines() int {
	peak := 0
	for id := range s.PipelineStats {
		if c := s.ConcurrentPipelines(id); c > peak {
			peak = c
		}
	}
	return peak
}

// Run executes a query across the cluster and returns the coordinator's
// result rows. Queries submitted concurrently (from several goroutines,
// or through a Session) share the worker pools, multiplexers and network
// schedule; the engine interleaves their morsels fairly.
func (c *Cluster) Run(q *plan.Query) (*storage.Batch, QueryStats, error) {
	return c.RunWithCancel(q, nil)
}

// RunWithCancel is Run with a caller-supplied cancellation channel:
// closing userCancel aborts this query (and only this query) cluster-wide;
// the other queries sharing the engine keep running.
func (c *Cluster) RunWithCancel(q *plan.Query, userCancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	var before []mux.Stats
	for _, n := range c.Nodes {
		before = append(before, n.Mux.Stats())
	}

	// Every query gets a cluster-wide id; the multiplexers route messages
	// on (QueryID, ExchangeID), so each query's exchange-id sequence can
	// start at zero — concurrent queries reuse the same exchange ids
	// without colliding.
	qid := c.nextQueryID.Add(1)
	// The cancel channel exists before compilation: skew-adaptive plans
	// capture it so an aborted query unblocks send finalizes waiting for
	// remote sketches.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	abort := func() { cancelOnce.Do(func() { close(cancel) }) }
	if userCancel != nil {
		userDone := make(chan struct{})
		defer close(userDone)
		go func() {
			select {
			case <-userCancel:
				abort()
			case <-userDone:
			}
		}()
	}
	compileStart := time.Now()
	compiled, err := c.compileAll(q, qid, cancel)
	if err != nil {
		mQueryErrors.Inc()
		return nil, QueryStats{}, err
	}
	compileDur := time.Since(compileStart)
	defer func() {
		// Forget this query's exchanges and drop any stragglers so the
		// multiplexer maps don't grow across queries.
		for _, node := range c.Nodes {
			node.Mux.CloseQuery(qid)
		}
	}()

	// One DAG scheduler per server node. A failing server cancels the
	// others so a bad operator aborts the query instead of deadlocking the
	// cluster on never-sent Last markers — but only this query: its cancel
	// channel is private, so concurrent queries are isolated from the
	// failure.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, c.cfg.Servers)
	pstats := make([][]engine.PipelineStat, c.cfg.Servers)
	for id, node := range c.Nodes {
		wg.Add(1)
		go func(id int, node *Node) {
			defer wg.Done()
			g := compiled[id].Graph()
			if c.cfg.Serial {
				g = engine.ChainGraph(g.Pipelines)
			}
			st, err := node.Engine.RunGraph(g, engine.RunOptions{
				Coordinator: id == 0,
				Cancel:      cancel,
			})
			pstats[id] = st
			if err != nil {
				errs[id] = err
				abort()
			}
		}(id, node)
	}
	wg.Wait()
	dur := time.Since(start)
	var firstErr error
	for id, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("cluster: server %d: %w", id, err)
		if firstErr == nil || errors.Is(firstErr, engine.ErrCancelled) {
			// Prefer the root cause over cascade cancellations.
			if firstErr == nil || !errors.Is(err, engine.ErrCancelled) {
				firstErr = wrapped
			}
		}
	}
	if firstErr != nil {
		mQueryErrors.Inc()
		return nil, QueryStats{}, firstErr
	}

	mQueries.Inc()
	mCompileSeconds.ObserveDuration(compileDur)
	mExecSeconds.ObserveDuration(dur)
	stats := QueryStats{
		Duration:      compileDur + dur,
		Compile:       compileDur,
		Exec:          dur,
		PipelineStats: pstats,
	}
	if obs.Enabled() {
		stats.Trace = buildTrace(qid, c.cfg.Servers, compileDur, pstats)
	}
	for _, st := range pstats {
		stats.ServerOverlap = append(stats.ServerOverlap, engine.OverlapRatio(st))
	}
	for id, n := range c.Nodes {
		s := n.Mux.Stats()
		stats.BytesSent += s.BytesSent - before[id].BytesSent
		stats.MessagesSent += s.MsgsSent - before[id].MsgsSent
		stats.StolenMsgs += s.StolenMsgs - before[id].StolenMsgs
		stats.LocalMsgs += s.LocalMsgs - before[id].LocalMsgs
	}
	result := compiled[0].Result.Flatten(compiled[0].Schema)
	return result, stats, nil
}

// compileAll lowers the query on every server with the shared query id and
// the identical exchange-id sequence. On error the exchange state already
// opened by earlier servers is released.
func (c *Cluster) compileAll(q *plan.Query, qid int32, cancel <-chan struct{}) ([]*plan.Compiled, error) {
	compiled := make([]*plan.Compiled, c.cfg.Servers)
	for id, node := range c.Nodes {
		var next int32
		env := &plan.Env{
			QueryID:          qid,
			ServerID:         id,
			Servers:          c.cfg.Servers,
			WorkersPerServer: node.Engine.Workers(),
			Engine:           node.Engine,
			Mux:              node.Mux,
			Pool:             node.Pool,
			Topo:             node.Topo,
			Scale:            c.cfg.TimeScale,
			Classic:          c.cfg.Classic,
			Skew:             c.cfg.Skew,
			Cancel:           cancel,
			DisablePreAgg:    c.cfg.DisablePreAgg,
			NoFuse:           c.cfg.NoFuse,
			NoPushdown:       c.cfg.NoPushdown,
			MorselSize:       c.cfg.MorselSize,
			AfterScan:        c.cfg.AfterScan,
			AfterExchange:    c.cfg.AfterExchange,
			Lookup:           node.lookup,
			NextExID: func() int32 {
				next++
				return next - 1
			},
		}
		cp, err := plan.Compile(q, env)
		if err != nil {
			for _, n := range c.Nodes {
				n.Mux.CloseQuery(qid)
			}
			return nil, err
		}
		compiled[id] = cp
	}
	return compiled, nil
}

// SchedulerDelay reports the worst per-server delay between run start and
// the first morsel dispatched for this query — the engine-level queueing a
// query experiences when many runs share the worker pools (an SLO
// component distinct from admission QueueWait).
func (s *QueryStats) SchedulerDelay() time.Duration {
	var worst time.Duration
	for _, st := range s.PipelineStats {
		if d := engine.FirstDispatch(st); d > worst {
			worst = d
		}
	}
	return worst
}

func (n *Node) lookup(name string) (plan.TableInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ti, ok := n.tables[name]
	if !ok {
		return plan.TableInfo{}, fmt.Errorf("cluster: server %d has no table %q", n.ID, name)
	}
	return ti, nil
}

// TCPStats aggregates TCP endpoint statistics over all nodes (zero for
// RDMA clusters).
func (c *Cluster) TCPStats() tcp.Stats {
	var out tcp.Stats
	for _, n := range c.Nodes {
		if n.tcpEP == nil {
			continue
		}
		s := n.tcpEP.Stats()
		out.BytesSent += s.BytesSent
		out.BytesReceived += s.BytesReceived
		out.MsgsSent += s.MsgsSent
		out.MsgsReceived += s.MsgsReceived
		out.Segments += s.Segments
		out.CPUSeconds += s.CPUSeconds
	}
	return out
}

// RDMAStats aggregates RDMA endpoint statistics over all nodes.
func (c *Cluster) RDMAStats() rdma.Stats {
	var out rdma.Stats
	for _, n := range c.Nodes {
		if n.rdmaEP == nil {
			continue
		}
		s := n.rdmaEP.Stats()
		out.BytesSent += s.BytesSent
		out.BytesReceived += s.BytesReceived
		out.MsgsSent += s.MsgsSent
		out.MsgsReceived += s.MsgsReceived
		out.CPUSeconds += s.CPUSeconds
	}
	return out
}
