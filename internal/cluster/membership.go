package cluster

import (
	"fmt"
	"sort"

	"hsqp/internal/storage"
)

// This file implements elastic membership: servers join and leave a live
// cluster, placements are recomputed online, and unplanned losses are
// recovered from replicas.
//
// Membership invariants (docs/invariants.md "Membership"):
//
//   - The epoch is bumped exactly once per membership change, strictly
//     after the re-partitioned tables are installed on every surviving
//     node (install-then-bump), so no cache can pair a new epoch with old
//     placements or vice versa.
//   - No exchange send ever targets a removed server: a membership change
//     holds the write side of memMu, which waits out every in-flight query
//     attempt (each holds the read side), and the rebuild gives every
//     survivor a fresh multiplexer whose mesh only knows the new dense ids
//     0..n-1. Stragglers addressed to the old mesh died with it.

// AddServer grows the cluster by one server: a new node joins the mesh,
// every cataloged table is re-partitioned over the enlarged membership
// (replicated tables are copied to the joiner), and the epoch advances.
// It returns the new server's id. In-flight queries drain first; queries
// started after the change compile against the new membership.
func (c *Cluster) AddServer() (int, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return 0, fmt.Errorf("cluster: AddServer on a closed cluster")
	}
	id := len(c.Nodes)
	//lint:allow lockblock memMu is the membership lock, not a mux/exchange lock: the write side holds it precisely to drain queries and block while the mesh is torn down and rebuilt; nothing reached from here waits on memMu itself
	node, err := c.newNodeShell(id)
	if err != nil {
		return 0, err
	}
	next := make([]*Node, 0, id+1)
	next = append(next, c.Nodes...)
	next = append(next, node)
	//lint:allow lockblock memMu is the membership lock: blocking here while old muxes close is the design (in-flight queries drained first via the write acquire), and rebuildLocked never waits on memMu itself
	if err := c.rebuildLocked(next, nil); err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveServer gracefully removes server id: its data is re-partitioned
// onto the survivors before it leaves (the catalog's retained source
// stands in for the shipped partitions), its exchange state has already
// been drained — the membership write lock waits out in-flight queries,
// whose deferred Mux.CloseQuery released every (QueryID, ExchangeID)
// route — and the epoch advances. A graceful removal never loses data,
// so it is legal at any replica factor; contrast KillServer.
func (c *Cluster) RemoveServer(id int) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("cluster: RemoveServer on a closed cluster")
	}
	if id < 0 || id >= len(c.Nodes) {
		return fmt.Errorf("cluster: RemoveServer: no server %d (membership has %d)", id, len(c.Nodes))
	}
	if len(c.Nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last server")
	}
	leaving := c.Nodes[id]
	next := make([]*Node, 0, len(c.Nodes)-1)
	next = append(next, c.Nodes[:id]...)
	next = append(next, c.Nodes[id+1:]...)
	//lint:allow lockblock memMu is the membership lock: the write acquire drained every query, so closing the departing server's mux here cannot deadlock against memMu
	return c.rebuildLocked(next, leaving)
}

// evictFailed removes a server that was lost unplanned (killed, hung or
// partitioned). Unlike RemoveServer it refuses when any non-replicated
// table has no redundancy: with replica factor 1 the lost server's
// partitions existed nowhere else, so a transparent restart would return
// wrong (partial) answers. Eviction by node pointer is idempotent across
// concurrent queries — whoever gets the write lock first evicts, the
// rest find the node gone and succeed.
func (c *Cluster) evictFailed(node *Node) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	idx := -1
	for i, n := range c.Nodes {
		if n == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil // already evicted by a concurrent query's failover
	}
	if len(c.Nodes) == 1 {
		return fmt.Errorf("cluster: lost the last server")
	}
	for _, name := range c.catalogNames() {
		spec := c.catalog[name]
		if spec.placement != storage.PlacementReplicated && spec.replicas < 2 {
			return fmt.Errorf("cluster: table %q has replica factor %d: its partitions on the lost server are unrecoverable",
				name, spec.replicas)
		}
	}
	next := make([]*Node, 0, len(c.Nodes)-1)
	next = append(next, c.Nodes[:idx]...)
	next = append(next, c.Nodes[idx+1:]...)
	//lint:allow lockblock memMu is the membership lock: the failed attempt released its read side before calling evictFailed, and the watchdog already fenced the dead node, so the rebuild's mux closes complete without waiting on memMu
	return c.rebuildLocked(next, node)
}

// rebuildLocked replaces the mesh: it stops the old fabric and every old
// multiplexer/endpoint, wires a fresh fully-connected mesh over the new
// node list (dense ids 0..n-1), re-partitions every cataloged table from
// its retained source, and only then bumps the epoch. A departing node's
// engine is shut down too. Caller holds memMu for write; with the write
// lock held no query attempt is in flight, so the teardown closes quiet
// components.
func (c *Cluster) rebuildLocked(next []*Node, departing *Node) error {
	for _, n := range c.Nodes {
		n.Mux.Close()
		n.transport.Close()
	}
	c.fab.Stop()
	if departing != nil {
		departing.kill()
	}
	if err := c.wireMesh(next); err != nil {
		return err
	}
	for _, name := range c.catalogNames() {
		c.installLocked(name, c.catalog[name], next)
	}
	c.startMesh()
	// Install-then-bump: the epoch advances only after the new placements
	// are visible on every node (membership invariant).
	mEpoch.Set(float64(c.epoch.Add(1)))
	mMembershipChanges.Inc()
	mActiveServers.Set(float64(len(next)))
	return nil
}

// catalogNames returns the cataloged table names in sorted order so
// rebuilds touch tables in a deterministic sequence.
func (c *Cluster) catalogNames() []string {
	names := make([]string, 0, len(c.catalog))
	for name := range c.catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- fault surface (sim.Target) ---
//
// KillServer, HangServer and PartitionServer deliberately take no
// membership lock: they are invoked from fault injectors while a query
// attempt holds the read side of memMu (taking it again would deadlock
// behind a waiting writer), so they operate only on node-local state via
// the lock-free mirrors. Recovery — detection, eviction, restart — is the
// job of RunContext.

// KillServer crashes server id immediately: its multiplexer, engine and
// endpoint shut down mid-flight, aborting its share of any running query.
// The server stays in the membership (marked dead) until a query's
// failover or an explicit RemoveServer evicts it. Idempotent.
func (c *Cluster) KillServer(id int) error {
	node, err := c.nodeByID(id)
	if err != nil {
		return err
	}
	node.kill()
	return nil
}

// HangServer freezes server id like SIGSTOP: it stops sending, never
// answers liveness probes, but its simulated NIC keeps consuming inbound
// traffic (the kernel ACKs for a stopped process). Detected by the
// heartbeat watchdog — which runs on each query's coordinator, so hanging
// a query's own coordinator stalls that query until its context cancels
// it (a frozen process cannot detect its own freeze; in a full system the
// client or a peer detector would time out instead).
func (c *Cluster) HangServer(id int) error {
	node, err := c.nodeByID(id)
	if err != nil {
		return err
	}
	node.hung.Store(true)
	node.Mux.Freeze(true)
	return nil
}

// PartitionServer cuts server id off at the switch: all fabric traffic to
// and from it — data and inline probes alike — is dropped while the
// process keeps running. Detected by the heartbeat watchdog.
func (c *Cluster) PartitionServer(id int) error {
	node, err := c.nodeByID(id)
	if err != nil {
		return err
	}
	c.fabPtr.Load().SetPartitioned(node.ID, true)
	return nil
}

func (c *Cluster) nodeByID(id int) (*Node, error) {
	nodes := *c.nodesPtr.Load()
	if id < 0 || id >= len(nodes) {
		return nil, fmt.Errorf("cluster: no server %d (membership has %d)", id, len(nodes))
	}
	return nodes[id], nil
}
