package cluster

import (
	"fmt"
	"strings"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/obs"
)

// Cluster-level metrics on the process-wide registry.
var (
	mQueries = obs.Default().Counter("hsqp_cluster_queries_total",
		"Distributed query runs completed successfully.")
	mQueryErrors = obs.Default().Counter("hsqp_cluster_query_errors_total",
		"Distributed query runs that failed or were cancelled.")
	mEpoch = obs.Default().Gauge("hsqp_cluster_epoch",
		"Data epoch: bumped on every table (re)load; caches key on it.")
	mCompileSeconds = obs.Default().Histogram("hsqp_cluster_compile_seconds",
		"Plan compilation latency across all servers of a run.", nil)
	mExecSeconds = obs.Default().Histogram("hsqp_cluster_exec_seconds",
		"Distributed execution wall time (excludes compile and queueing).", nil)
	mQueueWaitSeconds = obs.Default().Histogram("hsqp_cluster_queue_wait_seconds",
		"Admission-queue wait before an execution slot was granted.", nil)
	mSessionQueued = obs.Default().Gauge("hsqp_cluster_session_queued",
		"Queries waiting for an admission slot across sessions.")
	mSessionRunning = obs.Default().Gauge("hsqp_cluster_session_running",
		"Queries holding an execution slot across sessions.")
	mRestarts = obs.Default().Counter("hsqp_cluster_query_restarts_total",
		"Transparent query restarts after a server loss.")
	mMembershipChanges = obs.Default().Counter("hsqp_cluster_membership_changes_total",
		"Completed membership changes (joins, removals and evictions).")
	mActiveServers = obs.Default().Gauge("hsqp_cluster_active_servers",
		"Servers in the current membership.")
	mFailoverSeconds = obs.Default().Histogram("hsqp_cluster_failover_seconds",
		"Time from first detected server loss to the restarted query's success.", nil)
)

// buildTrace assembles the per-query distributed trace from data the run
// already collected: the compile interval and every server's per-pipeline
// wall intervals (with exchange finalize sub-spans). Span offsets are
// relative to compile start; Session.RunContext shifts the whole trace and
// prepends the admission-queue span. Cost is one small allocation per
// pipeline after the query finished — nothing on the execution hot path.
func buildTrace(qid int32, servers int, compileDur time.Duration, pstats [][]engine.PipelineStat) *obs.Trace {
	tr := obs.NewTrace(uint64(qid))
	tr.ControlPID = servers
	tr.SetProcessName(servers, "coordinator")
	tr.SetThreadName(servers, 0, "control")
	tr.Add(obs.Span{
		Name: "compile", Cat: "compile", PID: servers, TID: 0,
		Start: 0, Dur: compileDur,
	})
	for id, stats := range pstats {
		tr.SetProcessName(id, fmt.Sprintf("server %d", id))
		for pi, p := range stats {
			if p.Skipped || p.End <= p.Start {
				continue
			}
			tid := pi + 1
			tr.SetThreadName(id, tid, p.Name)
			cat := "pipeline"
			if strings.HasPrefix(p.SinkName, "send(") {
				cat = "exchange"
			}
			args := map[string]any{
				"morsels":  p.Morsels,
				"busy_ms":  float64(p.Busy) / float64(time.Millisecond),
				"sink":     p.SinkName,
				"sinkRows": p.SinkRows,
			}
			if p.SinkBytes > 0 {
				args["wireBytes"] = p.SinkBytes
			}
			tr.Add(obs.Span{
				Name: p.Name, Cat: cat, PID: id, TID: tid,
				Start: compileDur + p.Start, Dur: p.End - p.Start, Args: args,
			})
			if p.Finalize > 0 {
				// Finalize is the tail of the pipeline interval: exchange
				// sends flush their last buffers and Last markers here.
				fcat := "finalize"
				if cat == "exchange" {
					fcat = "exchange-finalize"
				}
				tr.Add(obs.Span{
					Name: p.SinkName + " finalize", Cat: fcat, PID: id, TID: tid,
					Start: compileDur + p.End - p.Finalize, Dur: p.Finalize,
				})
			}
		}
	}
	return tr
}
