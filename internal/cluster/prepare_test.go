package cluster

import (
	"testing"

	"hsqp/internal/storage"
)

// TestPreparedStatement: a prepared query runs repeatedly with results
// identical to ad-hoc execution, and reloading a table bumps the cluster
// epoch so the handle reports itself stale.
func TestPreparedStatement(t *testing.T) {
	orders := testOrders(500)
	c := newTestCluster(t, 3, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	q := groupByQueryPlan()
	direct, _, err := c.Run(q)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want := rowSet(direct)

	p, err := c.Prepare(groupByQueryPlan())
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if p.Schema() == nil {
		t.Fatal("prepared statement has no schema")
	}
	if p.Epoch() != c.Epoch() {
		t.Fatalf("prepared at epoch %d, cluster at %d", p.Epoch(), c.Epoch())
	}
	for i := 0; i < 3; i++ {
		res, _, err := p.Run()
		if err != nil {
			t.Fatalf("prepared run %d: %v", i, err)
		}
		got := rowSet(res)
		if len(got) != len(want) {
			t.Fatalf("prepared run %d: %d rows, want %d", i, len(got), len(want))
		}
		for r := range got {
			if got[r] != want[r] {
				t.Fatalf("prepared run %d row %d: %q != %q", i, r, got[r], want[r])
			}
		}
		if p.Stale() {
			t.Fatalf("prepared statement stale after run %d without reload", i)
		}
	}

	// A prepare must not leak per-query routing state (it compiles then
	// immediately closes the query id on every server).
	for _, n := range c.Nodes {
		ex, pend := n.Mux.TableSizes()
		if ex != 0 || pend != 0 {
			t.Fatalf("server %d holds %d exchanges, %d pending after prepared runs; want 0/0", n.ID, ex, pend)
		}
	}

	// Reloading data invalidates: epoch moves, handle turns stale.
	before := c.Epoch()
	c.LoadTable("orders", testOrders(600), storage.PlacementChunked, 0)
	if c.Epoch() == before {
		t.Fatal("LoadTable did not bump the cluster epoch")
	}
	if !p.Stale() {
		t.Fatal("prepared statement not stale after table reload")
	}
}

// TestPrepareUnknownTable: prepare surfaces compile errors up front without
// leaking query state.
func TestPrepareUnknownTable(t *testing.T) {
	c := newTestCluster(t, 2, RDMA, true)
	if _, err := c.Prepare(groupByQueryPlan()); err == nil {
		t.Fatal("prepare against missing table succeeded, want error")
	}
	for _, n := range c.Nodes {
		ex, pend := n.Mux.TableSizes()
		if ex != 0 || pend != 0 {
			t.Fatalf("server %d holds %d exchanges, %d pending after failed prepare; want 0/0", n.ID, ex, pend)
		}
	}
}
