package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hsqp/internal/queries"
	"hsqp/internal/ref"
	"hsqp/internal/sim"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

const chaosSF = 0.01

var (
	chaosDBOnce sync.Once
	chaosDB     *tpch.Database
)

func getChaosDB() *tpch.Database {
	chaosDBOnce.Do(func() {
		chaosDB = tpch.Generate(chaosSF, 42)
	})
	return chaosDB
}

// newChaosCluster builds a 3-server cluster with replica factor 2 (every
// partition survives one server loss) and a fast failure detector, wired
// to the given phase hook.
func newChaosCluster(t *testing.T, hook func(sim.QueryPhase)) *Cluster {
	t.Helper()
	c, err := New(Config{
		Servers:           3,
		WorkersPerServer:  4,
		Transport:         RDMA,
		Scheduling:        true,
		TimeScale:         0.005, // chaos tests: network nearly free
		MorselSize:        4096,
		MessageSize:       64 * 1024,
		ReplicaFactor:     2,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		PhaseHook:         hook,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// renderRows formats a result set row by row for byte-identical
// comparison.
func renderRows(rows [][]any) string {
	var sb strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func refRows(t *testing.T, q int) string {
	t.Helper()
	want, err := ref.Run(q, getChaosDB(), chaosSF)
	if err != nil {
		t.Fatalf("ref q%d: %v", q, err)
	}
	rows := make([][]any, len(want.Rows))
	for i, r := range want.Rows {
		rows[i] = r
	}
	return renderRows(rows)
}

// runChaosQ12 executes Q12 against a cluster that loses one server
// mid-query and asserts the failover was transparent: one restart, a
// 2-server surviving membership, and a result byte-identical to the
// reference interpreter's.
func runChaosQ12(t *testing.T, kind sim.FaultKind) {
	db := getChaosDB()
	var inj *sim.FaultInjector
	c := newChaosCluster(t, func(p sim.QueryPhase) { inj.OnPhase(p) })
	// Kill server 2 — a non-coordinator — once execution is underway.
	inj = sim.NewFaultInjector(c, sim.FaultPlan{Kind: kind, Server: 2, Phase: sim.PhaseExecuting})
	c.LoadTPCH(db, false)

	q12 := queries.MustBuild(12, queries.Params{SF: chaosSF})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, stats, err := c.RunContext(ctx, q12)
	if err != nil {
		t.Fatalf("RunContext under %v fault: %v", kind, err)
	}
	if !inj.Fired() {
		t.Fatal("fault injector never fired")
	}
	if injErr := inj.Err(); injErr != nil {
		t.Fatalf("fault injection: %v", injErr)
	}
	if stats.Restarts != 1 {
		t.Fatalf("QueryStats.Restarts = %d, want 1", stats.Restarts)
	}
	if c.Servers() != 2 {
		t.Fatalf("surviving membership has %d servers, want 2", c.Servers())
	}

	gotS := renderRows(batchRowsChaos(got))
	wantS := refRows(t, 12)
	if gotS != wantS {
		t.Fatalf("q12 after %v failover differs from reference\ngot:\n%s\nwant:\n%s", kind, gotS, wantS)
	}

	// The shrunk cluster keeps serving: a fresh run (no fault left to
	// inject) must agree byte-for-byte too.
	got2, stats2, err := c.RunContext(ctx, q12)
	if err != nil {
		t.Fatalf("post-failover run: %v", err)
	}
	if stats2.Restarts != 0 {
		t.Fatalf("post-failover Restarts = %d, want 0", stats2.Restarts)
	}
	if got2S := renderRows(batchRowsChaos(got2)); got2S != wantS {
		t.Fatalf("q12 on the shrunk cluster differs from reference\ngot:\n%s\nwant:\n%s", got2S, wantS)
	}
}

func batchRowsChaos(b *storage.Batch) [][]any {
	out := make([][]any, b.Rows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

func TestChaosKillMidQuery(t *testing.T)      { runChaosQ12(t, sim.FaultKill) }
func TestChaosHangMidQuery(t *testing.T)      { runChaosQ12(t, sim.FaultHang) }
func TestChaosPartitionMidQuery(t *testing.T) { runChaosQ12(t, sim.FaultPartition) }

// TestChaosUnrecoverableWithoutReplicas pins the replica gate: with
// replica factor 1 a killed server's partitions exist nowhere else, so the
// restart must be refused and the error must say why.
func TestChaosUnrecoverableWithoutReplicas(t *testing.T) {
	var inj *sim.FaultInjector
	c, err := New(Config{
		Servers:           3,
		WorkersPerServer:  4,
		Transport:         RDMA,
		Scheduling:        true,
		TimeScale:         0.005,
		MorselSize:        4096,
		MessageSize:       64 * 1024,
		ReplicaFactor:     1,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		PhaseHook:         func(p sim.QueryPhase) { inj.OnPhase(p) },
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	inj = sim.NewFaultInjector(c, sim.FaultPlan{Kind: sim.FaultKill, Server: 2, Phase: sim.PhaseExecuting})
	c.LoadTPCH(getChaosDB(), false)

	q12 := queries.MustBuild(12, queries.Params{SF: chaosSF})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, _, err = c.RunContext(ctx, q12)
	if err == nil {
		t.Fatal("RunContext should fail: the lost partitions have no replicas")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("error should name the unrecoverable table, got: %v", err)
	}
	if c.Servers() != 3 {
		t.Fatalf("failed eviction must leave the membership intact, got %d servers", c.Servers())
	}
}
