package cluster

import (
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// Prepared is a query validated against the cluster once and executable
// many times — the prepare/execute split of a serving tier. Prepare pays
// the full per-server plan compilation up front (catching unknown tables
// or columns at prepare time, and building the plan's schema-specialized
// codecs into the process-wide cache), so later executions skip statement
// construction and validation entirely and reuse the warmed codecs: the
// compile cost is amortized across users the same way §2.2.2 amortizes
// message-buffer registration across sends.
//
// A Prepared is safe for concurrent use: the underlying plan tree is
// immutable during compilation and execution, so many sessions may Run
// the same handle at once.
type Prepared struct {
	c      *Cluster
	q      *plan.Query
	schema *storage.Schema
	epoch  uint64
}

// Prepare validates the query by compiling it on every server (the same
// compile path Run uses), releases the validation run's exchange state,
// and returns a reusable handle. The handle records the cluster epoch it
// was prepared against; see Stale.
func (c *Cluster) Prepare(q *plan.Query) (*Prepared, error) {
	qid := c.nextQueryID.Add(1)
	compiled, err := c.compileAll(q, qid, nil)
	if err != nil {
		return nil, err
	}
	// The validation compile opened real exchange state on every
	// multiplexer; nothing ran, so closing the query id frees all of it.
	for _, n := range c.Nodes {
		n.Mux.CloseQuery(qid)
	}
	return &Prepared{c: c, q: q, schema: compiled[0].Schema, epoch: c.Epoch()}, nil
}

// Query returns the underlying plan.
func (p *Prepared) Query() *plan.Query { return p.q }

// Schema returns the result schema determined at prepare time.
func (p *Prepared) Schema() *storage.Schema { return p.schema }

// Epoch returns the cluster epoch the statement was prepared against.
func (p *Prepared) Epoch() uint64 { return p.epoch }

// Stale reports whether the cluster's tables changed since Prepare; a
// plan cache should drop stale entries and re-prepare.
func (p *Prepared) Stale() bool { return p.epoch != p.c.Epoch() }

// Run executes the prepared query (Cluster.Run without re-validation).
func (p *Prepared) Run() (*storage.Batch, QueryStats, error) {
	return p.c.Run(p.q)
}

// RunWithCancel is Run with a per-query cancellation channel.
func (p *Prepared) RunWithCancel(cancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	return p.c.RunWithCancel(p.q, cancel)
}
