package cluster

import (
	"context"

	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// Prepared is a query validated against the cluster once and executable
// many times — the prepare/execute split of a serving tier. Prepare pays
// the full per-server plan compilation up front (catching unknown tables
// or columns at prepare time, and building the plan's schema-specialized
// codecs into the process-wide cache), so later executions skip statement
// construction and validation entirely and reuse the warmed codecs: the
// compile cost is amortized across users the same way §2.2.2 amortizes
// message-buffer registration across sends.
//
// A Prepared is safe for concurrent use: the underlying plan tree is
// immutable during compilation and execution, so many sessions may Run
// the same handle at once.
type Prepared struct {
	c      *Cluster
	q      *plan.Query
	schema *storage.Schema
	epoch  uint64
}

// Prepare validates the query by compiling it on every server (the same
// compile path Run uses), releases the validation run's exchange state,
// and returns a reusable handle. The handle records the cluster epoch it
// was prepared against; see Stale. Compilation and the epoch read happen
// under one membership read lock, so the recorded epoch always matches
// the placements the plan was validated against — a concurrent table load
// either completes before the compile or after the epoch was read, never
// in between.
func (c *Cluster) Prepare(q *plan.Query) (*Prepared, error) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	qid := c.nextQueryID.Add(1)
	compiled, err := c.compileAll(c.Nodes, q, qid, nil)
	if err != nil {
		return nil, err
	}
	// The validation compile opened real exchange state on every
	// multiplexer; nothing ran, so closing the query id frees all of it.
	for _, n := range c.Nodes {
		n.Mux.CloseQuery(qid)
	}
	return &Prepared{c: c, q: q, schema: compiled[0].Schema, epoch: c.Epoch()}, nil
}

// Query returns the underlying plan.
func (p *Prepared) Query() *plan.Query { return p.q }

// Schema returns the result schema determined at prepare time.
func (p *Prepared) Schema() *storage.Schema { return p.schema }

// Epoch returns the cluster epoch the statement was prepared against.
func (p *Prepared) Epoch() uint64 { return p.epoch }

// Stale reports whether the cluster's tables changed since Prepare; a
// plan cache should drop stale entries and re-prepare.
func (p *Prepared) Stale() bool { return p.epoch != p.c.Epoch() }

// RunContext executes the prepared query (Cluster.RunContext without
// re-validation).
func (p *Prepared) RunContext(ctx context.Context, opts ...RunOption) (*storage.Batch, QueryStats, error) {
	return p.c.RunContext(ctx, p.q, opts...)
}

// Run executes the prepared query.
//
// Deprecated: use RunContext.
func (p *Prepared) Run() (*storage.Batch, QueryStats, error) {
	return p.c.RunContext(context.Background(), p.q)
}

// RunWithCancel is Run with a per-query cancellation channel.
//
// Deprecated: use RunContext; ctx cancellation replaces the channel.
func (p *Prepared) RunWithCancel(cancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	ctx, stop := contextForChannel(cancel)
	defer stop()
	return p.c.RunContext(ctx, p.q)
}
