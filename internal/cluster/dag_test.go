package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// rowSet renders a batch as order-independent, sorted row strings so DAG
// and serial executions can be compared exactly.
func rowSet(b *storage.Batch) []string {
	rows := make([]string, 0, b.Rows())
	for i := 0; i < b.Rows(); i++ {
		var sb strings.Builder
		for ci, col := range b.Cols {
			if ci > 0 {
				sb.WriteByte('|')
			}
			if col.IsNull(i) {
				sb.WriteString("∅")
				continue
			}
			switch col.Type {
			case storage.TString:
				sb.WriteString(col.Str[i])
			case storage.TFloat64:
				fmt.Fprintf(&sb, "%.6f", col.F64[i])
			default:
				fmt.Fprintf(&sb, "%d", col.I64[i])
			}
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return rows
}

func newTPCHCluster(t *testing.T, serial bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        RDMA,
		Scheduling:       true,
		Serial:           serial,
		TimeScale:        0.01,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDAGMatchesSerialTPCH is the acceptance gate of the DAG scheduler: a
// distributed TPC-H join query at SF 0.1 must produce identical results
// under DAG scheduling and under the old serial pipeline order, and the
// DAG run must actually overlap pipelines (≥ 2 concurrent on at least one
// server, overlap ratio > 0).
func TestDAGMatchesSerialTPCH(t *testing.T) {
	const sf = 0.1
	db := tpch.Generate(sf, 42)

	dag := newTPCHCluster(t, false)
	serial := newTPCHCluster(t, true)
	dag.LoadTPCH(db, false)
	serial.LoadTPCH(db, false)

	for _, qn := range []int{5, 12} {
		qn := qn
		t.Run(fmt.Sprintf("q%02d", qn), func(t *testing.T) {
			q := queries.MustBuild(qn, queries.Params{SF: sf})
			gotDAG, stats, err := dag.Run(q)
			if err != nil {
				t.Fatalf("dag run: %v", err)
			}
			qs := queries.MustBuild(qn, queries.Params{SF: sf})
			gotSerial, serialStats, err := serial.Run(qs)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}

			dagRows, serialRows := rowSet(gotDAG), rowSet(gotSerial)
			if len(dagRows) != len(serialRows) {
				t.Fatalf("q%d: dag %d rows, serial %d rows", qn, len(dagRows), len(serialRows))
			}
			for i := range dagRows {
				if dagRows[i] != serialRows[i] {
					t.Fatalf("q%d row %d differs:\n dag:    %s\n serial: %s", qn, i, dagRows[i], serialRows[i])
				}
			}

			if ov := stats.MaxOverlap(); ov <= 0 {
				t.Fatalf("q%d: DAG run shows no pipeline overlap (ratios %v)", qn, stats.ServerOverlap)
			}
			concurrent := stats.PeakConcurrentPipelines()
			if concurrent < 2 {
				t.Fatalf("q%d: peak concurrent pipelines %d, want ≥ 2", qn, concurrent)
			}
			t.Logf("q%d: dag=%v serial=%v overlap=%.2f peak-concurrency=%d",
				qn, stats.Duration, serialStats.Duration, stats.MaxOverlap(), concurrent)
		})
	}
}

// TestSerialModeHasNoOverlap pins the ablation semantics: under
// Config.Serial the chain graph forbids concurrent pipelines.
func TestSerialModeHasNoOverlap(t *testing.T) {
	orders := testOrders(2000)
	c := newTestCluster(t, 2, RDMA, false)
	// newTestCluster builds a DAG cluster; run the same query through a
	// serial cluster and compare overlap.
	s, err := New(Config{
		Servers:          2,
		WorkersPerServer: 4,
		Transport:        RDMA,
		Serial:           true,
		TimeScale:        0.01,
		MorselSize:       64,
		MessageSize:      8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)
	s.LoadTable("orders", orders, storage.PlacementChunked, 0)

	want := expectedGroupSums(orders)
	for name, cl := range map[string]*Cluster{"dag": c, "serial": s} {
		got := runGroupByQuery(t, cl)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s group %d: got %d want %d", name, k, got[k], v)
			}
		}
	}

	// The name of the test: serial execution must report zero overlap and
	// never run two pipelines at once.
	root := plan.Scan("orders", orders.Schema).
		GroupBy([]string{"o_cust"},
			op.AggSpec{Kind: op.Sum, Name: "rev", Arg: op.Col(2), ArgType: storage.TDecimal})
	_, stats, err := s.Run(plan.NewQuery("serial-overlap-check", root))
	if err != nil {
		t.Fatal(err)
	}
	if ov := stats.MaxOverlap(); ov != 0 {
		t.Fatalf("serial run reports overlap %v, want 0", ov)
	}
	if peak := stats.PeakConcurrentPipelines(); peak > 1 {
		t.Fatalf("serial run reports %d concurrent pipelines, want ≤ 1", peak)
	}
}
