package cluster

import (
	"errors"
	"strings"
	"testing"

	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// TestMuxStateFreedAcrossQueries is the regression test for the routing
// leak: the multiplexer used to keep registered-exchange and pending
// entries forever. 100 sequential queries must leave every node's routing
// tables empty.
func TestMuxStateFreedAcrossQueries(t *testing.T) {
	orders := testOrders(500)
	c := newTestCluster(t, 3, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	for i := 0; i < 100; i++ {
		got := runGroupByQuery(t, c)
		if len(got) != 7 {
			t.Fatalf("query %d: %d groups, want 7", i, len(got))
		}
		for _, n := range c.Nodes {
			ex, pend := n.Mux.TableSizes()
			if ex != 0 || pend != 0 {
				t.Fatalf("after query %d: server %d holds %d exchanges, %d pending entries; want 0/0",
					i, n.ID, ex, pend)
			}
		}
	}
}

// concurrentConformanceQueries is the mixed workload of the acceptance
// test: k queries over TPC-H Q1/Q5/Q12.
func concurrentConformanceQueries(sf float64) []*plan.Query {
	var qs []*plan.Query
	for _, qn := range []int{1, 5, 12, 12, 5, 1} {
		qs = append(qs, queries.MustBuild(qn, queries.Params{SF: sf}))
	}
	return qs
}

// TestConcurrentQueriesMatchSerial: k mixed queries (Q1/Q5/Q12) executed
// concurrently over one cluster must produce byte-identical (canonical
// row order) results to the same queries run back-to-back serially.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	const sf = 0.05
	db := tpch.Generate(sf, 42)
	c := newTPCHCluster(t, false)
	c.LoadTPCH(db, false)

	qs := concurrentConformanceQueries(sf)
	want := make([][]string, len(qs))
	for i, q := range qs {
		res, _, err := c.Run(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q.Name, err)
		}
		want[i] = rowSet(res)
	}

	outcomes := c.RunConcurrent(concurrentConformanceQueries(sf), 4)
	for i, out := range outcomes {
		if out.Err != nil {
			t.Fatalf("concurrent %s: %v", qs[i].Name, out.Err)
		}
		got := rowSet(out.Result)
		if len(got) != len(want[i]) {
			t.Fatalf("query %d (%s): %d rows concurrent vs %d serial", i, qs[i].Name, len(got), len(want[i]))
		}
		for r := range got {
			if got[r] != want[i][r] {
				t.Fatalf("query %d (%s) row %d differs:\n concurrent: %s\n serial:     %s",
					i, qs[i].Name, r, got[r], want[i][r])
			}
		}
	}
}

// TestSessionAdmissionControl pins the overload semantics: when every
// execution slot and every queue position is taken, Run fails fast with
// ErrOverloaded; once capacity frees up, queries are admitted again.
func TestSessionAdmissionControl(t *testing.T) {
	orders := testOrders(200)
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	s := c.NewSession(SessionConfig{MaxConcurrent: 2, MaxQueued: 1})
	if got := s.Config(); got.MaxConcurrent != 2 || got.MaxQueued != 1 {
		t.Fatalf("config defaults drifted: %+v", got)
	}

	// Fill every admission ticket (2 slots + 1 queue position) by hand —
	// deterministic, no timing dependence on real queries.
	for i := 0; i < 3; i++ {
		s.tickets <- struct{}{}
	}
	if _, _, err := s.Run(groupByQueryPlan()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded session returned %v, want ErrOverloaded", err)
	}
	// One caller leaves the queue: the next query must be admitted and run.
	<-s.tickets
	if _, _, err := s.Run(groupByQueryPlan()); err != nil {
		t.Fatalf("run after capacity freed: %v", err)
	}
	for i := 0; i < 2; i++ {
		<-s.tickets
	}

	s.Close()
	if _, _, err := s.Run(groupByQueryPlan()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed session returned %v, want ErrSessionClosed", err)
	}
}

// TestPerQueryCancellation: cancelling one query aborts it cluster-wide
// while the engine keeps serving others.
func TestPerQueryCancellation(t *testing.T) {
	orders := testOrders(2000)
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	cancelled := make(chan struct{})
	close(cancelled)
	_, _, err := c.RunWithCancel(groupByQueryPlan(), cancelled)
	if err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("pre-cancelled query returned %v, want cancellation error", err)
	}

	// The same cluster must still execute queries normally afterwards.
	got := runGroupByQuery(t, c)
	if len(got) != 7 {
		t.Fatalf("post-cancel query broken: %d groups, want 7", len(got))
	}
}

// groupByQueryPlan builds the sum-by-customer plan used by the session
// tests (same shape as runGroupByQuery).
func groupByQueryPlan() *plan.Query {
	schema := storage.NewSchema(
		storage.Field{Name: "o_key", Type: storage.TInt64},
		storage.Field{Name: "o_cust", Type: storage.TInt64},
		storage.Field{Name: "o_price", Type: storage.TDecimal},
	)
	root := plan.Scan("orders", schema).
		GroupBy([]string{"o_cust"},
			op.AggSpec{Kind: op.Sum, Name: "rev", Arg: op.Col(2), ArgType: storage.TDecimal})
	return plan.NewQuery("sum-by-cust", root)
}
