package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// dumpTables renders every node's installed table contents to a string —
// rows in storage order, all columns — so placements can be compared
// byte-for-byte across membership changes.
func dumpTables(t *testing.T, c *Cluster, names ...string) string {
	t.Helper()
	var sb strings.Builder
	for _, node := range c.Nodes {
		for _, name := range names {
			ti, err := node.lookup(name)
			if err != nil {
				t.Fatalf("server %d: %v", node.ID, err)
			}
			b := ti.Table.Flatten()
			fmt.Fprintf(&sb, "server %d table %s (%d rows, part=%v repl=%v)\n",
				node.ID, name, b.Rows(), ti.PartCols, ti.Replicated)
			for r := 0; r < b.Rows(); r++ {
				for ci, v := range b.Row(r) {
					if ci > 0 {
						sb.WriteByte('|')
					}
					fmt.Fprintf(&sb, "%v", v)
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// TestMembershipRoundTrip is the placement property test: growing the
// cluster by one server and then removing that server must round-trip to
// byte-identical per-node table contents, for every placement mode.
// Splits are pure functions of (source, server count), so the property is
// what makes transparent restart after a membership change sound.
func TestMembershipRoundTrip(t *testing.T) {
	placements := []struct {
		name      string
		placement storage.Placement
	}{
		{"chunked", storage.PlacementChunked},
		{"partitioned", storage.PlacementPartitioned},
		{"replicated", storage.PlacementReplicated},
	}
	for _, pc := range placements {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			c := newTestCluster(t, 3, RDMA, false)
			orders := testOrders(1000)
			c.LoadTableReplicas("orders", orders, pc.placement, 1, 2)

			before := dumpTables(t, c, "orders")
			epoch0 := c.Epoch()

			id, err := c.AddServer()
			if err != nil {
				t.Fatalf("AddServer: %v", err)
			}
			if id != 3 || c.Servers() != 4 {
				t.Fatalf("AddServer: got id %d, %d servers; want 3, 4", id, c.Servers())
			}
			if got := c.Epoch(); got != epoch0+1 {
				t.Fatalf("epoch after AddServer: got %d, want %d", got, epoch0+1)
			}
			// The enlarged membership must hold the full relation and answer
			// queries against it.
			mid := dumpTables(t, c, "orders")
			if mid == before {
				t.Fatalf("%s: placement unchanged after AddServer", pc.name)
			}
			if got := runGroupByQuery(t, c); len(got) != 7 {
				t.Fatalf("group-by on 4 servers: got %d groups, want 7", len(got))
			}

			if err := c.RemoveServer(id); err != nil {
				t.Fatalf("RemoveServer: %v", err)
			}
			if c.Servers() != 3 {
				t.Fatalf("after RemoveServer: %d servers, want 3", c.Servers())
			}
			if got := c.Epoch(); got != epoch0+2 {
				t.Fatalf("epoch after RemoveServer: got %d, want %d (monotonic, one bump per change)", got, epoch0+2)
			}

			after := dumpTables(t, c, "orders")
			if before != after {
				t.Fatalf("%s: AddServer→RemoveServer did not round-trip\nbefore:\n%s\nafter:\n%s",
					pc.name, head200(before), head200(after))
			}
			if got := runGroupByQuery(t, c); len(got) != 7 {
				t.Fatalf("group-by after round-trip: got %d groups, want 7", len(got))
			}
		})
	}
}

func head200(s string) string {
	if len(s) > 200 {
		return s[:200] + "…"
	}
	return s
}

// TestRemoveLastServerRefused pins the membership floor.
func TestRemoveLastServerRefused(t *testing.T) {
	c := newTestCluster(t, 1, RDMA, false)
	if err := c.RemoveServer(0); err == nil {
		t.Fatal("RemoveServer on a one-server cluster should be refused")
	}
}

// TestRunContextAcrossMembershipChange: queries issued after a change
// compile against the new membership and still answer correctly.
func TestRunContextAcrossMembershipChange(t *testing.T) {
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", testOrders(500), storage.PlacementChunked, 0)
	want := expectedGroupSums(testOrders(500))

	check := func() {
		got := runGroupByQuery(t, c)
		if len(got) != len(want) {
			t.Fatalf("got %d groups, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("group %d: got %d, want %d", k, got[k], v)
			}
		}
	}
	check()
	if _, err := c.AddServer(); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	check()
	if err := c.RemoveServer(1); err != nil {
		t.Fatalf("RemoveServer: %v", err)
	}
	check()
}

// TestRunContextCancel pins the ctx plumbing of the redesigned API: a
// cancelled context aborts the query and surfaces a non-nil error without
// evicting anybody.
func TestRunContextCancel(t *testing.T) {
	c := newTestCluster(t, 2, RDMA, false)
	c.LoadTable("orders", testOrders(2000), storage.PlacementChunked, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	schema := storage.NewSchema(
		storage.Field{Name: "o_key", Type: storage.TInt64},
		storage.Field{Name: "o_cust", Type: storage.TInt64},
		storage.Field{Name: "o_price", Type: storage.TDecimal},
	)
	root := plan.Scan("orders", schema).
		GroupBy([]string{"o_cust"})
	_, _, err := c.RunContext(ctx, plan.NewQuery("cancelled", root))
	if err == nil {
		t.Fatal("RunContext with cancelled ctx should fail")
	}
	if c.Servers() != 2 {
		t.Fatalf("cancellation must not evict servers: %d left", c.Servers())
	}
}
