package cluster

import (
	"fmt"
	"sort"
	"testing"

	"hsqp/internal/fabric"
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// testOrders builds a small orders-like batch.
func testOrders(n int) *storage.Batch {
	schema := storage.NewSchema(
		storage.Field{Name: "o_key", Type: storage.TInt64},
		storage.Field{Name: "o_cust", Type: storage.TInt64},
		storage.Field{Name: "o_price", Type: storage.TDecimal},
	)
	b := storage.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i+1), int64(i%7), int64((i%100)*100))
	}
	return b
}

func testCustomers(n int) *storage.Batch {
	schema := storage.NewSchema(
		storage.Field{Name: "c_key", Type: storage.TInt64},
		storage.Field{Name: "c_name", Type: storage.TString},
	)
	b := storage.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i), fmt.Sprintf("cust-%d", i))
	}
	return b
}

func newTestCluster(t *testing.T, servers int, transport TransportKind, scheduling bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Servers:          servers,
		WorkersPerServer: 4,
		Transport:        transport,
		Scheduling:       scheduling,
		TimeScale:        0.01, // fast tests: network nearly free
		Rate:             fabric.IB4xQDR,
		MorselSize:       64,
		MessageSize:      8 * 1024,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// expectedGroupSums computes sum(o_price) per o_cust directly.
func expectedGroupSums(orders *storage.Batch) map[int64]int64 {
	out := map[int64]int64{}
	for i := 0; i < orders.Rows(); i++ {
		out[orders.Cols[1].I64[i]] += orders.Cols[2].I64[i]
	}
	return out
}

func runGroupByQuery(t *testing.T, c *Cluster) map[int64]int64 {
	t.Helper()
	schema := storage.NewSchema(
		storage.Field{Name: "o_key", Type: storage.TInt64},
		storage.Field{Name: "o_cust", Type: storage.TInt64},
		storage.Field{Name: "o_price", Type: storage.TDecimal},
	)
	root := plan.Scan("orders", schema).
		GroupBy([]string{"o_cust"},
			op.AggSpec{Kind: op.Sum, Name: "rev", Arg: op.Col(2), ArgType: storage.TDecimal})
	res, _, err := c.Run(plan.NewQuery("sum-by-cust", root))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := map[int64]int64{}
	for i := 0; i < res.Rows(); i++ {
		got[res.Cols[0].I64[i]] = res.Cols[1].I64[i]
	}
	return got
}

func TestDistributedGroupBy(t *testing.T) {
	orders := testOrders(1000)
	want := expectedGroupSums(orders)
	for _, transport := range []TransportKind{RDMA, TCPoIB, TCPGbE} {
		for _, servers := range []int{1, 2, 4} {
			for _, sched := range []bool{false, true} {
				name := fmt.Sprintf("%v/%dsrv/sched=%v", transport, servers, sched)
				t.Run(name, func(t *testing.T) {
					c := newTestCluster(t, servers, transport, sched)
					c.LoadTable("orders", orders, storage.PlacementChunked, 0)
					got := runGroupByQuery(t, c)
					if len(got) != len(want) {
						t.Fatalf("got %d groups, want %d", len(got), len(want))
					}
					for k, v := range want {
						if got[k] != v {
							t.Errorf("group %d: got %d want %d", k, got[k], v)
						}
					}
				})
			}
		}
	}
}

func TestDistributedJoin(t *testing.T) {
	orders := testOrders(500)
	customers := testCustomers(7)
	oschema := orders.Schema
	cschema := customers.Schema

	// Expected: count of join results = all orders (every o_cust in 0..6
	// matches), and revenue per customer name.
	want := expectedGroupSums(orders)

	for _, strategy := range []plan.JoinStrategy{plan.PartitionBoth, plan.BroadcastBuild} {
		for _, servers := range []int{1, 3} {
			t.Run(fmt.Sprintf("strat=%d/%dsrv", strategy, servers), func(t *testing.T) {
				c := newTestCluster(t, servers, RDMA, true)
				c.LoadTable("orders", orders, storage.PlacementChunked, 0)
				c.LoadTable("customers", customers, storage.PlacementChunked, 0)

				root := plan.Scan("orders", oschema).
					Join(plan.Scan("customers", cschema),
						[]string{"o_cust"}, []string{"c_key"},
						plan.JoinSpec{Type: op.Inner, Strategy: strategy}).
					GroupBy([]string{"c_key"},
						op.AggSpec{Kind: op.Sum, Name: "rev", Arg: op.Col(2), ArgType: storage.TDecimal},
						op.AggSpec{Kind: op.Count, Name: "cnt"})
				res, _, err := c.Run(plan.NewQuery("join-group", root))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Rows() != len(want) {
					t.Fatalf("got %d result rows, want %d", res.Rows(), len(want))
				}
				for i := 0; i < res.Rows(); i++ {
					k := res.Cols[0].I64[i]
					if res.Cols[1].I64[i] != want[k] {
						t.Errorf("cust %d: rev %d want %d", k, res.Cols[1].I64[i], want[k])
					}
				}
			})
		}
	}
}

func TestPartitionedPlacementLocalJoin(t *testing.T) {
	// Both relations partitioned on the join key: the join must be
	// co-located and ship (almost) nothing.
	orders := testOrders(600)
	customers := testCustomers(7)
	c := newTestCluster(t, 3, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementPartitioned, 1)       // by o_cust
	c.LoadTable("customers", customers, storage.PlacementPartitioned, 0) // by c_key

	root := plan.Scan("orders", orders.Schema).
		Join(plan.Scan("customers", customers.Schema),
			[]string{"o_cust"}, []string{"c_key"},
			plan.JoinSpec{Type: op.Inner}).
		GroupBy([]string{"c_key"},
			op.AggSpec{Kind: op.Count, Name: "cnt"})
	res, stats, err := c.Run(plan.NewQuery("colocated", root))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	total := int64(0)
	for i := 0; i < res.Rows(); i++ {
		total += res.Cols[1].I64[i]
	}
	if total != 600 {
		t.Fatalf("join produced %d rows, want 600", total)
	}
	// The join itself is local; only the group-by shuffle and the final
	// gather move data. o_cust == c_key is also the grouping key, so the
	// pre-aggregated groups are already on the right servers.
	t.Logf("bytes shipped: %d in %d messages", stats.BytesSent, stats.MessagesSent)
}

func TestTopKDistributed(t *testing.T) {
	orders := testOrders(300)
	c := newTestCluster(t, 2, RDMA, false)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	root := plan.Scan("orders", orders.Schema).
		OrderBy([]op.SortKey{{Col: 2, Desc: true}, {Col: 0}}, 10)
	res, _, err := c.Run(plan.NewQuery("topk", root))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Rows() != 10 {
		t.Fatalf("got %d rows, want 10", res.Rows())
	}
	// Verify against a straight sort.
	prices := make([]int64, orders.Rows())
	copy(prices, orders.Cols[2].I64)
	sort.Slice(prices, func(a, b int) bool { return prices[a] > prices[b] })
	for i := 0; i < 10; i++ {
		if res.Cols[2].I64[i] != prices[i] {
			t.Errorf("rank %d: price %d want %d", i, res.Cols[2].I64[i], prices[i])
		}
	}
}

func TestClassicModeGroupBy(t *testing.T) {
	orders := testOrders(800)
	want := expectedGroupSums(orders)
	c, err := New(Config{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        RDMA,
		Classic:          true,
		TimeScale:        0.01,
		MorselSize:       64,
		MessageSize:      8 * 1024,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)
	got := runGroupByQuery(t, c)
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("group %d: got %d want %d", k, got[k], v)
		}
	}
}
