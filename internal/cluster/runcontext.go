package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/mux"
	"hsqp/internal/obs"
	"hsqp/internal/plan"
	"hsqp/internal/sim"
	"hsqp/internal/storage"
)

// ErrServerLost marks a query failure caused by losing a server (crash,
// hang or network partition). RunContext retries such failures on the
// surviving membership; when retries are exhausted or recovery is
// impossible the surfaced error still matches errors.Is(err, ErrServerLost).
var ErrServerLost = errors.New("cluster: server lost")

// DefaultMaxRestarts bounds how many times RunContext transparently
// restarts a query after server losses before giving up.
const DefaultMaxRestarts = 2

// DefaultHeartbeatInterval/Timeout tune the per-query liveness watchdog.
// The timeout is deliberately generous: probes share the simulated links
// with full-size exchange messages, so a probe can wait out a deep
// head-of-line backlog on a loaded cluster without the peer being dead.
const (
	DefaultHeartbeatInterval = 10 * time.Millisecond
	DefaultHeartbeatTimeout  = time.Second
)

// RunOptions is the resolved form of a RunOption list. Callers normally
// use the With* options; the serving tier resolves them explicitly to read
// BypassResultCache.
type RunOptions struct {
	// Tenant labels the query for admission control. Sessions with an
	// Admission controller queue per tenant; the bare cluster ignores it.
	Tenant string
	// MaxRestarts bounds transparent restarts after server losses.
	// Negative means 0 (fail on the first loss).
	MaxRestarts int
	// BypassResultCache asks the serving tier to execute instead of
	// answering from its result cache. The cluster itself has no result
	// cache; serve consumes this option.
	BypassResultCache bool
}

// RunOption customizes one RunContext call.
type RunOption func(*RunOptions)

// WithTenant labels the query with a tenant for weighted-fair admission.
func WithTenant(tenant string) RunOption {
	return func(o *RunOptions) { o.Tenant = tenant }
}

// WithMaxRestarts overrides DefaultMaxRestarts for this query.
func WithMaxRestarts(n int) RunOption {
	return func(o *RunOptions) {
		if n < 0 {
			n = 0
		}
		o.MaxRestarts = n
	}
}

// WithBypassResultCache forces execution even when the serving tier holds
// a cached result for the statement.
func WithBypassResultCache() RunOption {
	return func(o *RunOptions) { o.BypassResultCache = true }
}

// ResolveRunOptions applies opts over the defaults.
func ResolveRunOptions(opts ...RunOption) RunOptions {
	o := RunOptions{MaxRestarts: DefaultMaxRestarts}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// RunContext executes a query across the cluster and returns the
// coordinator's result rows. It is the single run entry point: ctx
// cancellation threads into the engine's per-query cancel channel (the
// whole distributed run aborts when ctx is done), and a server lost
// mid-query is detected, evicted from the membership, and the query
// transparently recompiled and restarted on the survivors — up to
// WithMaxRestarts times, reported in QueryStats.Restarts.
//
// Queries submitted concurrently share the worker pools, multiplexers and
// network schedule; the engine interleaves their morsels fairly.
func (c *Cluster) RunContext(ctx context.Context, q *plan.Query, opts ...RunOption) (*storage.Batch, QueryStats, error) {
	o := ResolveRunOptions(opts...)
	restarts := 0
	var failoverStart time.Time
	for {
		res, stats, att, err := c.runAttempt(ctx, q)
		if err == nil {
			stats.Restarts = restarts
			if restarts > 0 {
				mFailoverSeconds.ObserveDuration(time.Since(failoverStart))
			}
			return res, stats, nil
		}
		lost, isolated := att.lost()
		if len(lost) == 0 || ctx.Err() != nil {
			// Not a membership failure (bad plan, user cancellation, …):
			// surface as-is.
			return nil, QueryStats{}, err
		}
		err = fmt.Errorf("%w: %v", ErrServerLost, err)
		if isolated {
			// The coordinator cannot reach a majority of the membership: it
			// is the isolated side of the partition and must not evict the
			// (presumably healthy) rest. In a full system the surviving
			// majority would elect a new coordinator; here the failure is
			// surfaced.
			return nil, QueryStats{}, fmt.Errorf("cluster: coordinator isolated from %d of %d servers: %w",
				len(lost), len(att.nodes), err)
		}
		if restarts >= o.MaxRestarts {
			return nil, QueryStats{}, fmt.Errorf("cluster: giving up after %d restart(s): %w", restarts, err)
		}
		if failoverStart.IsZero() {
			failoverStart = time.Now()
		}
		for _, node := range lost {
			if evictErr := c.evictFailed(node); evictErr != nil {
				return nil, QueryStats{}, fmt.Errorf("cluster: restart impossible: %v: %w", evictErr, err)
			}
		}
		restarts++
		mRestarts.Inc()
	}
}

// attempt captures one execution attempt's membership snapshot and what
// the failure detector concluded about it.
type attempt struct {
	nodes []*Node

	mu       sync.Mutex
	suspects []*Node // watchdog-detected: unreachable or frozen
	majority bool    // watchdog lost a majority: the coordinator is suspect
}

// lost returns the participants this attempt lost — watchdog suspects
// plus every node whose alive flag dropped (crashes are visible without a
// probe timeout) — and whether the coordinator itself is the isolated
// side.
func (a *attempt) lost() ([]*Node, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]*Node(nil), a.suspects...)
	for _, n := range a.nodes {
		if !n.alive.Load() {
			dup := false
			for _, s := range out {
				if s == n {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, n)
			}
		}
	}
	return out, a.majority
}

// runAttempt executes the query once against the current membership. It
// holds the membership read lock for the whole attempt, so the node set,
// table placements and epoch are stable underneath it.
func (c *Cluster) runAttempt(ctx context.Context, q *plan.Query) (*storage.Batch, QueryStats, *attempt, error) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	nodes := append([]*Node(nil), c.Nodes...)
	att := &attempt{nodes: nodes}

	var before []mux.Stats
	for _, n := range nodes {
		before = append(before, n.Mux.Stats())
	}

	// Every attempt gets a fresh cluster-wide id; the multiplexers route
	// messages on (QueryID, ExchangeID), so each query's exchange-id
	// sequence can start at zero — concurrent queries (and a restarted
	// attempt racing its predecessor's stragglers) never collide.
	qid := c.nextQueryID.Add(1)
	// The cancel channel exists before compilation: skew-adaptive plans
	// capture it so an aborted query unblocks send finalizes waiting for
	// remote sketches.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	abort := func() { cancelOnce.Do(func() { close(cancel) }) }
	// Thread ctx through the scheduler's cancel channel.
	if done := ctx.Done(); done != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-done:
				abort()
			case <-watcherDone:
			}
		}()
	}
	compileStart := time.Now()
	compiled, err := c.compileAll(nodes, q, qid, cancel)
	if err != nil {
		mQueryErrors.Inc()
		return nil, QueryStats{}, att, err
	}
	compileDur := time.Since(compileStart)
	defer func() {
		// Forget this query's exchanges and drop any stragglers so the
		// multiplexer maps don't grow across queries.
		for _, node := range nodes {
			node.Mux.CloseQuery(qid)
		}
	}()
	if hook := c.cfg.PhaseHook; hook != nil {
		hook(sim.PhaseCompiled)
	}

	// The watchdog probes the participants while the attempt runs: a crash
	// is caught by the failing server's own run error, but a hung or
	// partitioned server produces no error — only silence — so the
	// coordinator's probes are what turn that silence into an abort.
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	if len(nodes) > 1 && !c.cfg.DisableFailureDetection {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			c.watch(att, abort, watchStop)
		}()
	}

	// One DAG scheduler per server node. A failing server cancels the
	// others so a bad operator aborts the query instead of deadlocking the
	// cluster on never-sent Last markers — but only this query: its cancel
	// channel is private, so concurrent queries are isolated from the
	// failure.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	pstats := make([][]engine.PipelineStat, len(nodes))
	for id, node := range nodes {
		wg.Add(1)
		go func(id int, node *Node) {
			defer wg.Done()
			g := compiled[id].Graph()
			if c.cfg.Serial {
				g = engine.ChainGraph(g.Pipelines)
			}
			st, err := node.Engine.RunGraph(g, engine.RunOptions{
				Coordinator: id == 0,
				Cancel:      cancel,
			})
			pstats[id] = st
			if err != nil {
				errs[id] = err
				abort()
			}
		}(id, node)
	}
	if hook := c.cfg.PhaseHook; hook != nil {
		hook(sim.PhaseExecuting)
	}
	//lint:allow lockblock attempts hold only the read side of memMu (membership changes queue behind them by design), and the watchdog unwedges this wait by fencing dead peers (kill + PeerDown) without ever taking memMu
	wg.Wait()
	close(watchStop)
	//lint:allow lockblock the watchdog goroutine never takes memMu; closing watchStop guarantees it exits
	watchWG.Wait()
	dur := time.Since(start)
	var firstErr error
	for id, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("cluster: server %d: %w", id, err)
		if firstErr == nil || errors.Is(firstErr, engine.ErrCancelled) {
			// Prefer the root cause over cascade cancellations.
			if firstErr == nil || !errors.Is(err, engine.ErrCancelled) {
				firstErr = wrapped
			}
		}
	}
	if firstErr != nil {
		mQueryErrors.Inc()
		return nil, QueryStats{}, att, firstErr
	}

	mQueries.Inc()
	mCompileSeconds.ObserveDuration(compileDur)
	mExecSeconds.ObserveDuration(dur)
	stats := QueryStats{
		Duration:      compileDur + dur,
		Compile:       compileDur,
		Exec:          dur,
		PipelineStats: pstats,
	}
	if obs.Enabled() {
		stats.Trace = buildTrace(qid, len(nodes), compileDur, pstats)
	}
	for _, st := range pstats {
		stats.ServerOverlap = append(stats.ServerOverlap, engine.OverlapRatio(st))
	}
	for id, n := range nodes {
		s := n.Mux.Stats()
		stats.BytesSent += s.BytesSent - before[id].BytesSent
		stats.MessagesSent += s.MsgsSent - before[id].MsgsSent
		stats.StolenMsgs += s.StolenMsgs - before[id].StolenMsgs
		stats.LocalMsgs += s.LocalMsgs - before[id].LocalMsgs
	}
	result := compiled[0].Result.Flatten(compiled[0].Schema)
	return result, stats, att, nil
}

// watch is the per-attempt liveness watchdog: from the attempt's
// coordinator it probes every other participant each heartbeat interval
// (two consecutive missed echoes make a suspect — one miss can be a probe
// lost behind a full send queue at fabric teardown) and aborts the attempt
// when any participant is dead, frozen or unreachable.
func (c *Cluster) watch(att *attempt, abort func(), stop <-chan struct{}) {
	interval := c.cfg.HeartbeatInterval
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	timeout := c.cfg.HeartbeatTimeout
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	coord := att.nodes[0]
	misses := make([]int, len(att.nodes))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		var down []*Node
		for i, node := range att.nodes {
			if !node.alive.Load() {
				down = append(down, node)
				continue
			}
			if i == 0 {
				continue // the coordinator does not probe itself
			}
			if coord.Mux.Ping(i, timeout) {
				misses[i] = 0
				continue
			}
			select {
			case <-stop:
				// The attempt finished while we waited on a probe; a late
				// echo is not a failure.
				return
			default:
			}
			misses[i]++
			if misses[i] >= 2 {
				down = append(down, node)
			}
		}
		if len(down) == 0 {
			continue
		}
		att.mu.Lock()
		att.suspects = down
		att.majority = len(down) > len(att.nodes)/2
		att.mu.Unlock()
		// Fence every suspect (STONITH): a hung or partitioned server may
		// still hold send queues full of traffic and workers blocked on
		// them; killing it unblocks everything it owns. Then tell every
		// survivor's multiplexer the peer is gone, so schedule barriers
		// with it complete instead of parking the survivors' network loops.
		for _, node := range down {
			node.kill()
		}
		for _, node := range att.nodes {
			if !node.alive.Load() {
				continue
			}
			for j, d := range att.nodes {
				if !d.alive.Load() {
					node.Mux.PeerDown(j)
				}
			}
		}
		abort()
		return
	}
}

// --- deprecated entry points (thin wrappers over RunContext) ---

// Run executes a query across the cluster.
//
// Deprecated: use RunContext.
func (c *Cluster) Run(q *plan.Query) (*storage.Batch, QueryStats, error) {
	return c.RunContext(context.Background(), q)
}

// RunWithCancel is Run with a caller-supplied cancellation channel:
// closing userCancel aborts this query (and only this query) cluster-wide.
//
// Deprecated: use RunContext; ctx cancellation replaces the channel.
func (c *Cluster) RunWithCancel(q *plan.Query, userCancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	ctx, stop := contextForChannel(userCancel)
	defer stop()
	return c.RunContext(ctx, q)
}

// contextForChannel adapts a legacy cancellation channel to a Context for
// the deprecated wrappers. The returned stop func releases the adapter
// goroutine; always call it.
func contextForChannel(cancel <-chan struct{}) (context.Context, func()) {
	if cancel == nil {
		return context.Background(), func() {}
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			cancelCtx()
		case <-done:
		}
	}()
	return ctx, func() {
		close(done)
		cancelCtx()
	}
}
