package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/obs"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// ErrOverloaded is returned by Session.Run when both the execution slots
// and the bounded admission queue are full: the caller should back off and
// retry instead of piling more work onto a saturated cluster.
var ErrOverloaded = errors.New("cluster: session overloaded: admission queue full")

// ErrSessionClosed is returned by Session.Run after Close, and by queries
// still queued when Close is called: a draining session fails its queue
// fast instead of starting new work.
var ErrSessionClosed = errors.New("cluster: session closed")

// Admission orders queued queries for execution slots, replacing the
// session's flat FIFO handout. Implementations decide which waiting query
// runs next (e.g. the serving tier's per-tenant weighted-fair scheduler).
type Admission interface {
	// Acquire blocks until the query may execute and returns a release
	// function for its slot. Closing cancel abandons the wait; the
	// returned error is surfaced to the caller.
	Acquire(tenant string, cancel <-chan struct{}) (release func(), err error)
}

// SessionConfig tunes a Session's admission control.
type SessionConfig struct {
	// MaxConcurrent is how many queries may execute on the cluster at once
	// through this session. Zero means DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueued bounds how many additional queries may wait for a slot.
	// A query arriving when MaxConcurrent are running and MaxQueued are
	// waiting fails fast with ErrOverloaded. Zero means 4×MaxConcurrent;
	// negative means no queue (immediate rejection when slots are busy).
	MaxQueued int
	// Admission, when set, replaces the FIFO slot handout: every query
	// passes through Admission.Acquire (with its RunTenant tenant label,
	// "" for plain Run) instead of the built-in slot channel. MaxConcurrent
	// and MaxQueued are ignored; the controller owns both bounds.
	Admission Admission
}

// DefaultMaxConcurrent is the default number of in-flight queries per
// session.
const DefaultMaxConcurrent = 4

func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	switch {
	case cfg.MaxQueued == 0:
		cfg.MaxQueued = 4 * cfg.MaxConcurrent
	case cfg.MaxQueued < 0:
		cfg.MaxQueued = 0
	}
	return cfg
}

// Session executes queries concurrently on one cluster with bounded
// admission: at most MaxConcurrent queries run at a time, at most
// MaxQueued more wait in line, and anything beyond that is rejected with
// ErrOverloaded so overload degrades into queueing (then fast rejection)
// instead of thrashing the worker pools. A Session is safe for concurrent
// use by many goroutines — it is the "millions of users" front door.
type Session struct {
	c   *Cluster
	cfg SessionConfig

	// tickets has capacity MaxConcurrent+MaxQueued and gates admission
	// (fast-fail when full); slots has capacity MaxConcurrent and gates
	// execution (queued queries block here, in FIFO-ish channel order).
	tickets chan struct{}
	slots   chan struct{}

	// closing is closed by Close so queries still waiting for a slot fail
	// fast with ErrSessionClosed while in-flight queries run to completion.
	closing chan struct{}

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Observability counters for the serving tier: queries waiting for a
	// slot and queries currently executing.
	queued  atomic.Int32
	running atomic.Int32
}

// NewSession creates a session on the cluster.
func (c *Cluster) NewSession(cfg SessionConfig) *Session {
	cfg = cfg.withDefaults()
	return &Session{
		c:       c,
		cfg:     cfg,
		tickets: make(chan struct{}, cfg.MaxConcurrent+cfg.MaxQueued),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		closing: make(chan struct{}),
	}
}

// Config returns the session's effective (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Queued reports how many queries are waiting for an execution slot.
func (s *Session) Queued() int { return int(s.queued.Load()) }

// Running reports how many queries hold an execution slot right now.
func (s *Session) Running() int { return int(s.running.Load()) }

// RunContext executes one query through the session's admission control.
// It blocks while the query is queued or running and returns the
// coordinator's result rows; ErrOverloaded is returned immediately when
// the admission queue is full. ctx cancellation aborts the query whether
// it is still queued or already executing; WithTenant selects whose
// admission queue the query waits in when the session has an Admission
// controller. The returned QueryStats records the admission wait in
// QueueWait.
func (s *Session) RunContext(ctx context.Context, q *plan.Query, opts ...RunOption) (*storage.Batch, QueryStats, error) {
	o := ResolveRunOptions(opts...)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, QueryStats{}, ErrSessionClosed
	}
	s.wg.Add(1)
	ticketed := false
	if s.cfg.Admission == nil {
		select {
		case s.tickets <- struct{}{}:
			ticketed = true
		default:
			s.wg.Done()
			s.mu.Unlock()
			return nil, QueryStats{}, ErrOverloaded
		}
	}
	s.mu.Unlock()
	defer func() {
		if ticketed {
			<-s.tickets
		}
		s.wg.Done()
	}()

	queued := time.Now()
	release, err := s.acquire(o.Tenant, ctx.Done())
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer release()
	wait := time.Since(queued)
	mQueueWaitSeconds.ObserveDuration(wait)

	res, stats, err := s.c.RunContext(ctx, q, opts...)
	stats.QueueWait = wait
	if stats.Trace != nil {
		// Make room for the admission phase at the front of the timeline
		// so the trace shows the full serving-path latency split.
		stats.Trace.Shift(wait)
		stats.Trace.Add(obs.Span{
			Name: "queue", Cat: "queue",
			PID: stats.Trace.ControlPID, TID: 0,
			Start: 0, Dur: wait,
		})
	}
	return res, stats, err
}

// Run executes one query through the session's admission control.
//
// Deprecated: use RunContext.
func (s *Session) Run(q *plan.Query) (*storage.Batch, QueryStats, error) {
	return s.RunContext(context.Background(), q)
}

// RunWithCancel is Run with a per-query cancellation channel: closing it
// aborts this query only (whether still queued or already executing).
//
// Deprecated: use RunContext; ctx cancellation replaces the channel.
func (s *Session) RunWithCancel(q *plan.Query, cancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	ctx, stop := contextForChannel(cancel)
	defer stop()
	return s.RunContext(ctx, q)
}

// RunTenant is RunWithCancel with a tenant label.
//
// Deprecated: use RunContext with WithTenant.
func (s *Session) RunTenant(tenant string, q *plan.Query, cancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	ctx, stop := contextForChannel(cancel)
	defer stop()
	return s.RunContext(ctx, q, WithTenant(tenant))
}

// acquire waits for an execution slot: through the Admission controller
// when configured, otherwise on the built-in slot channel. A close of the
// session fails queued waiters fast; a query cancel while queued surfaces
// the same sentinel as a cancel during execution, so
// errors.Is(err, engine.ErrCancelled) works regardless of which phase the
// cancellation raced with.
func (s *Session) acquire(tenant string, cancel <-chan struct{}) (func(), error) {
	s.queued.Add(1)
	mSessionQueued.Add(1)
	defer func() {
		s.queued.Add(-1)
		mSessionQueued.Add(-1)
	}()
	granted := func(release func()) func() {
		s.running.Add(1)
		mSessionRunning.Add(1)
		return func() {
			s.running.Add(-1)
			mSessionRunning.Add(-1)
			release()
		}
	}
	if adm := s.cfg.Admission; adm != nil {
		// Merge query cancel and session close into the one channel the
		// controller watches.
		stop := make(chan struct{})
		var stopOnce sync.Once
		closeStop := func() { stopOnce.Do(func() { close(stop) }) }
		defer closeStop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cancel:
			case <-s.closing:
			case <-done:
			}
			closeStop()
		}()
		release, err := adm.Acquire(tenant, stop)
		if err == nil {
			return granted(release), nil
		}
		select {
		case <-s.closing:
			return nil, ErrSessionClosed
		default:
		}
		select {
		case <-cancel:
			return nil, fmt.Errorf("cluster: query cancelled while queued: %w", engine.ErrCancelled)
		default:
		}
		return nil, err
	}

	// Admitted (ticket held by the caller for the query's whole lifetime):
	// wait, bounded by the ticket count, for an execution slot. A nil
	// cancel channel blocks forever in the select, which is exactly the
	// uncancellable case.
	select {
	case s.slots <- struct{}{}:
		return granted(func() { <-s.slots }), nil
	case <-s.closing:
		return nil, ErrSessionClosed
	case <-cancel:
		return nil, fmt.Errorf("cluster: query cancelled while queued: %w", engine.ErrCancelled)
	}
}

// Close marks the session closed and drains it: queries already holding an
// execution slot run to completion, queries still waiting in the admission
// queue fail fast with ErrSessionClosed, and new Run calls are rejected.
// Close returns once every outstanding call has finished. The underlying
// cluster stays open.
func (s *Session) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closing)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// QueryOutcome is one query's result within a concurrent batch.
type QueryOutcome struct {
	Result *storage.Batch
	Stats  QueryStats
	Err    error
	// QueueWait, Compile and Execute split the query's latency into its
	// serving-path phases: admission-queue wait, per-server plan
	// compilation, and distributed execution. (End-to-end latency as seen
	// by the caller is the sum of the three.)
	QueueWait time.Duration
	Compile   time.Duration
	Execute   time.Duration
	// Trace is the query's merged distributed trace (also available as
	// Stats.Trace); nil when observability is disabled.
	Trace *obs.Trace
}

// RunConcurrent executes the queries concurrently over the cluster —
// at most maxConcurrent at a time (0 = DefaultMaxConcurrent) — and
// returns the outcomes in input order. The admission queue is sized to
// hold the whole batch, so no query is rejected; overload just queues.
//
// Deprecated: create a Session and issue RunContext calls; this helper
// remains as a convenience over exactly that.
func (c *Cluster) RunConcurrent(qs []*plan.Query, maxConcurrent int) []QueryOutcome {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	s := c.NewSession(SessionConfig{MaxConcurrent: maxConcurrent, MaxQueued: len(qs)})
	defer s.Close()
	out := make([]QueryOutcome, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *plan.Query) {
			defer wg.Done()
			res, stats, err := s.RunContext(context.Background(), q)
			out[i] = QueryOutcome{
				Result:    res,
				Stats:     stats,
				Err:       err,
				QueueWait: stats.QueueWait,
				Compile:   stats.Compile,
				Execute:   stats.Exec,
				Trace:     stats.Trace,
			}
		}(i, q)
	}
	wg.Wait()
	return out
}
