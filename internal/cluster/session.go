package cluster

import (
	"errors"
	"fmt"
	"sync"

	"hsqp/internal/engine"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
)

// ErrOverloaded is returned by Session.Run when both the execution slots
// and the bounded admission queue are full: the caller should back off and
// retry instead of piling more work onto a saturated cluster.
var ErrOverloaded = errors.New("cluster: session overloaded: admission queue full")

// ErrSessionClosed is returned by Session.Run after Close.
var ErrSessionClosed = errors.New("cluster: session closed")

// SessionConfig tunes a Session's admission control.
type SessionConfig struct {
	// MaxConcurrent is how many queries may execute on the cluster at once
	// through this session. Zero means DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueued bounds how many additional queries may wait for a slot.
	// A query arriving when MaxConcurrent are running and MaxQueued are
	// waiting fails fast with ErrOverloaded. Zero means 4×MaxConcurrent;
	// negative means no queue (immediate rejection when slots are busy).
	MaxQueued int
}

// DefaultMaxConcurrent is the default number of in-flight queries per
// session.
const DefaultMaxConcurrent = 4

func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	switch {
	case cfg.MaxQueued == 0:
		cfg.MaxQueued = 4 * cfg.MaxConcurrent
	case cfg.MaxQueued < 0:
		cfg.MaxQueued = 0
	}
	return cfg
}

// Session executes queries concurrently on one cluster with bounded
// admission: at most MaxConcurrent queries run at a time, at most
// MaxQueued more wait in line, and anything beyond that is rejected with
// ErrOverloaded so overload degrades into queueing (then fast rejection)
// instead of thrashing the worker pools. A Session is safe for concurrent
// use by many goroutines — it is the "millions of users" front door.
type Session struct {
	c   *Cluster
	cfg SessionConfig

	// tickets has capacity MaxConcurrent+MaxQueued and gates admission
	// (fast-fail when full); slots has capacity MaxConcurrent and gates
	// execution (queued queries block here, in FIFO-ish channel order).
	tickets chan struct{}
	slots   chan struct{}

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewSession creates a session on the cluster.
func (c *Cluster) NewSession(cfg SessionConfig) *Session {
	cfg = cfg.withDefaults()
	return &Session{
		c:       c,
		cfg:     cfg,
		tickets: make(chan struct{}, cfg.MaxConcurrent+cfg.MaxQueued),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Config returns the session's effective (defaulted) configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// Run executes one query through the session's admission control. It
// blocks while the query is queued or running and returns the
// coordinator's result rows; ErrOverloaded is returned immediately when
// the admission queue is full.
func (s *Session) Run(q *plan.Query) (*storage.Batch, QueryStats, error) {
	return s.RunWithCancel(q, nil)
}

// RunWithCancel is Run with a per-query cancellation channel: closing it
// aborts this query only (whether still queued or already executing).
func (s *Session) RunWithCancel(q *plan.Query, cancel <-chan struct{}) (*storage.Batch, QueryStats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, QueryStats{}, ErrSessionClosed
	}
	select {
	case s.tickets <- struct{}{}:
		s.wg.Add(1)
	default:
		s.mu.Unlock()
		return nil, QueryStats{}, ErrOverloaded
	}
	s.mu.Unlock()
	defer func() {
		<-s.tickets
		s.wg.Done()
	}()

	// Admitted: wait (bounded by the ticket count) for an execution slot.
	// A cancel while queued surfaces the same sentinel as a cancel during
	// execution, so errors.Is(err, engine.ErrCancelled) works regardless
	// of which phase the cancellation raced with.
	if cancel != nil {
		select {
		case s.slots <- struct{}{}:
		case <-cancel:
			return nil, QueryStats{}, fmt.Errorf("cluster: query cancelled while queued: %w", engine.ErrCancelled)
		}
	} else {
		s.slots <- struct{}{}
	}
	defer func() { <-s.slots }()
	return s.c.RunWithCancel(q, cancel)
}

// Close marks the session closed and waits for in-flight (queued and
// executing) queries to drain. The underlying cluster stays open.
func (s *Session) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// QueryOutcome is one query's result within a concurrent batch.
type QueryOutcome struct {
	Result *storage.Batch
	Stats  QueryStats
	Err    error
}

// RunConcurrent executes the queries concurrently over the cluster —
// at most maxConcurrent at a time (0 = DefaultMaxConcurrent) — and
// returns the outcomes in input order. The admission queue is sized to
// hold the whole batch, so no query is rejected; overload just queues.
func (c *Cluster) RunConcurrent(qs []*plan.Query, maxConcurrent int) []QueryOutcome {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	s := c.NewSession(SessionConfig{MaxConcurrent: maxConcurrent, MaxQueued: len(qs)})
	defer s.Close()
	out := make([]QueryOutcome, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *plan.Query) {
			defer wg.Done()
			res, stats, err := s.Run(q)
			out[i] = QueryOutcome{Result: res, Stats: stats, Err: err}
		}(i, q)
	}
	wg.Wait()
	return out
}
