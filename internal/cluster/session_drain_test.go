package cluster

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hsqp/internal/storage"
)

// gateAdmission is a test Admission controller whose grants are handed out
// explicitly by the test: Acquire blocks until the test sends on grant (or
// the session cancels the wait), making drain scenarios deterministic.
type gateAdmission struct {
	grant chan struct{}
}

var errGateCancelled = errors.New("gate: cancelled")

func (g *gateAdmission) Acquire(tenant string, cancel <-chan struct{}) (func(), error) {
	select {
	case <-g.grant:
		return func() {}, nil
	case <-cancel:
		return nil, errGateCancelled
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// TestSessionCloseDrain pins the drain contract: Close lets the in-flight
// query run to completion, fails every queued query fast with
// ErrSessionClosed, rejects new Run calls, and leaks no goroutines.
func TestSessionCloseDrain(t *testing.T) {
	orders := testOrders(500)
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	// Warm up once so any lazily-started engine goroutines are excluded
	// from the leak baseline.
	if _, _, err := c.Run(groupByQueryPlan()); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	baseline := runtime.NumGoroutine()

	g := &gateAdmission{grant: make(chan struct{}, 1)}
	s := c.NewSession(SessionConfig{Admission: g})

	type outcome struct {
		stats QueryStats
		err   error
	}
	run := func(ch chan outcome) {
		_, stats, err := s.RunTenant("t", groupByQueryPlan(), nil)
		ch <- outcome{stats, err}
	}

	// A is granted admission immediately and starts executing.
	g.grant <- struct{}{}
	aCh := make(chan outcome, 1)
	go run(aCh)
	waitFor(t, "query A to start", func() bool { return s.Running() == 1 || len(aCh) == 1 })

	// B and C queue behind the (empty) gate.
	bCh := make(chan outcome, 1)
	cCh := make(chan outcome, 1)
	go run(bCh)
	go run(cCh)
	waitFor(t, "B and C to queue", func() bool { return s.Queued() >= 2 })

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	// Queued queries fail fast with ErrSessionClosed — not the gate's own
	// cancellation error, and without waiting for A.
	for _, ch := range []chan outcome{bCh, cCh} {
		select {
		case out := <-ch:
			if !errors.Is(out.err, ErrSessionClosed) {
				t.Fatalf("queued query returned %v, want ErrSessionClosed", out.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued query did not fail fast on Close")
		}
	}

	// The in-flight query completes successfully and Close waits for it.
	select {
	case out := <-aCh:
		if out.err != nil {
			t.Fatalf("in-flight query failed during drain: %v", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query did not complete")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}

	if _, _, err := s.Run(groupByQueryPlan()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Run after Close returned %v, want ErrSessionClosed", err)
	}
	if s.Queued() != 0 || s.Running() != 0 {
		t.Fatalf("counters after drain: queued=%d running=%d, want 0/0", s.Queued(), s.Running())
	}

	// No goroutine leak: everything the session spawned must be gone.
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= baseline })
}

// TestSessionCloseFailsFIFOQueue covers the built-in FIFO slot path: queries
// blocked on a full slot channel fail fast with ErrSessionClosed on Close.
func TestSessionCloseFailsFIFOQueue(t *testing.T) {
	orders := testOrders(200)
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	s := c.NewSession(SessionConfig{MaxConcurrent: 1, MaxQueued: 4})
	// Occupy the single execution slot by hand so queued queries park
	// deterministically in acquire's select.
	s.slots <- struct{}{}

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := s.Run(groupByQueryPlan())
			errs <- err
		}()
	}
	waitFor(t, "queries to queue on the slot channel", func() bool { return s.Queued() >= 2 })

	s.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrSessionClosed) {
				t.Fatalf("queued query returned %v, want ErrSessionClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued query did not fail fast on Close")
		}
	}
	<-s.slots
}

// TestSessionQueueWaitRecorded: a query that had to wait for admission
// reports a non-zero QueueWait, and the timing split adds up to Duration.
func TestSessionQueueWaitRecorded(t *testing.T) {
	orders := testOrders(500)
	c := newTestCluster(t, 2, RDMA, true)
	c.LoadTable("orders", orders, storage.PlacementChunked, 0)

	g := &gateAdmission{grant: make(chan struct{})}
	s := c.NewSession(SessionConfig{Admission: g})
	defer s.Close()

	done := make(chan QueryStats, 1)
	go func() {
		_, stats, err := s.RunContext(context.Background(), groupByQueryPlan(), WithTenant("t"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
		done <- stats
	}()
	waitFor(t, "query to queue", func() bool { return s.Queued() == 1 })
	time.Sleep(20 * time.Millisecond) // measurable admission wait
	g.grant <- struct{}{}
	stats := <-done

	if stats.QueueWait < 10*time.Millisecond {
		t.Fatalf("QueueWait = %v, want >= 10ms of gated wait", stats.QueueWait)
	}
	if stats.Compile <= 0 || stats.Exec <= 0 {
		t.Fatalf("timing split missing: compile=%v exec=%v", stats.Compile, stats.Exec)
	}
	if stats.Duration != stats.Compile+stats.Exec {
		t.Fatalf("Duration %v != Compile %v + Exec %v", stats.Duration, stats.Compile, stats.Exec)
	}
}
