package cluster

import (
	"encoding/json"
	"strings"
	"testing"

	"hsqp/internal/obs"
	"hsqp/internal/queries"
	"hsqp/internal/tpch"
)

// TestQueryTraceCoverage is the tracing acceptance gate: a 3-server Q12
// run through a Session must produce a trace whose span tree covers the
// admission queue, compilation, every non-skipped pipeline on every
// server, and the exchange sends — and the rendered Chrome JSON must be
// loadable.
func TestQueryTraceCoverage(t *testing.T) {
	const sf = 0.02
	db := tpch.Generate(sf, 42)
	c := newTPCHCluster(t, false)
	c.LoadTPCH(db, false)

	s := c.NewSession(SessionConfig{MaxConcurrent: 2})
	defer s.Close()
	q := queries.MustBuild(12, queries.Params{SF: sf})
	_, stats, err := s.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	tr := stats.Trace
	if tr == nil {
		t.Fatal("QueryStats.Trace is nil with observability enabled")
	}

	if n := tr.SpanCount("queue"); n != 1 {
		t.Errorf("queue spans = %d, want 1", n)
	}
	if n := tr.SpanCount("compile"); n != 1 {
		t.Errorf("compile spans = %d, want 1", n)
	}
	if tr.SpanCount("exchange") == 0 {
		t.Error("no exchange-send spans in trace")
	}

	// Every pipeline that did work on any server must appear as a span
	// under that server's pid.
	type key struct {
		pid  int
		name string
	}
	spans := map[key]bool{}
	for _, sp := range tr.Spans {
		spans[key{sp.PID, sp.Name}] = true
	}
	for id, ps := range stats.PipelineStats {
		for _, p := range ps {
			if p.Skipped || p.End <= p.Start {
				continue
			}
			if !spans[key{id, p.Name}] {
				t.Errorf("server %d pipeline %q missing from trace", id, p.Name)
			}
		}
	}

	// Phase ordering: queue starts at 0, compile right after, execution
	// spans after compile.
	for _, sp := range tr.Spans {
		switch sp.Cat {
		case "queue":
			if sp.Start != 0 {
				t.Errorf("queue span starts at %v, want 0", sp.Start)
			}
		case "pipeline", "exchange":
			if sp.Start < stats.QueueWait+stats.Compile {
				t.Errorf("span %q starts at %v, before queue+compile (%v)",
					sp.Name, sp.Start, stats.QueueWait+stats.Compile)
			}
		}
	}

	// The rendered JSON must be a loadable Chrome trace with our spans in.
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) < len(tr.Spans) {
		t.Fatalf("JSON has %d events for %d spans", len(doc.TraceEvents), len(tr.Spans))
	}
}

// TestTraceDisabled pins the -noobs contract: with observability off, no
// trace is built (and nothing panics for callers that check).
func TestTraceDisabled(t *testing.T) {
	const sf = 0.01
	db := tpch.Generate(sf, 42)
	c := newTPCHCluster(t, false)
	c.LoadTPCH(db, false)

	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	_, stats, err := c.Run(queries.MustBuild(12, queries.Params{SF: sf}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trace != nil {
		t.Fatal("trace built with observability disabled")
	}
}
