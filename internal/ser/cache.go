package ser

import (
	"sync"
	"sync/atomic"

	"hsqp/internal/storage"
)

// The codec cache amortizes NewCodec across executions of the same plan,
// the serving-tier analogue of the message-pool registration reuse of
// §2.2.2: a prepared statement's schema pointers are stable across runs,
// so every execution after the first reuses the specialized
// encoder/decoder closures instead of rebuilding them. A Codec is
// stateless after construction (the closures write only into
// caller-supplied buffers), so one cached instance may serve many
// concurrent exchanges.
var (
	codecCache     sync.Map // *storage.Schema → *Codec
	codecCacheSize atomic.Int64
)

// maxCachedCodecs bounds the cache: ad-hoc plans create fresh schema
// pointers, and without a bound the map would grow with every one-shot
// query. Crossing the bound drops the whole cache (entries still in use
// stay alive through their holders' references).
const maxCachedCodecs = 4096

// For returns a codec for the schema, reusing the cached one when this
// exact *Schema has been seen before. Plans compiled repeatedly (prepared
// statements, cached query templates) hit the cache on every compile after
// the first; a fresh schema costs one NewCodec, same as before.
func For(schema *storage.Schema) *Codec {
	if c, ok := codecCache.Load(schema); ok {
		return c.(*Codec)
	}
	c := NewCodec(schema)
	if actual, loaded := codecCache.LoadOrStore(schema, c); loaded {
		return actual.(*Codec)
	}
	if codecCacheSize.Add(1) > maxCachedCodecs {
		codecCache.Range(func(k, _ any) bool {
			codecCache.Delete(k)
			return true
		})
		codecCacheSize.Store(0)
	}
	return c
}
