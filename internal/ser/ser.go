// Package ser implements the densely-packed binary tuple serialization
// format of Figure 8 and the schema-specialized (de)serializers of §3.2.1.
//
// The format has three parts per tuple:
//
//  1. the values of all fixed-size attributes that are NOT NULL-able, in a
//     deterministic order: first by data type, then by schema order;
//  2. for each nullable fixed-size attribute, a null indicator byte
//     followed by the value iff present;
//  3. variable-length attributes (strings), stored as a uint32 size and
//     the raw bytes (with a null indicator byte first when nullable).
//
// HyPer generates this code with LLVM for the specific input schema so no
// schema interpretation happens per tuple. The Go equivalent: NewCodec
// precomputes the field classification and emits per-field closures, so
// the per-tuple loop dispatches through a compact closure array instead of
// interpreting the schema.
package ser

import (
	"encoding/binary"
	"fmt"

	"hsqp/internal/storage"
)

// Codec serializes and deserializes tuples of one schema.
type Codec struct {
	schema *storage.Schema

	// Order-of-emission field lists (Figure 8).
	fixedNotNull []int // part 1, sorted by (type, schema order)
	nullableFix  []int // part 2
	varlen       []int // part 3 (schema order)

	enc []func(b *storage.Batch, row int, out []byte) []byte
	dec []func(in []byte, b *storage.Batch) ([]byte, error)
}

// NewCodec builds a specialized codec for the schema.
func NewCodec(schema *storage.Schema) *Codec {
	c := &Codec{schema: schema}
	// Classify fields.
	for i, f := range schema.Fields {
		switch {
		case !f.Type.Fixed():
			c.varlen = append(c.varlen, i)
		case f.Nullable:
			c.nullableFix = append(c.nullableFix, i)
		default:
			c.fixedNotNull = append(c.fixedNotNull, i)
		}
	}
	// Part 1 is ordered by data type first, schema order second.
	sortByTypeThenOrder(schema, c.fixedNotNull)

	emit := func(idx int, mode emitMode) {
		f := schema.Fields[idx]
		c.enc = append(c.enc, makeEncoder(idx, f, mode))
		c.dec = append(c.dec, makeDecoder(idx, f, mode))
	}
	for _, i := range c.fixedNotNull {
		emit(i, emitPlain)
	}
	for _, i := range c.nullableFix {
		emit(i, emitNullable)
	}
	for _, i := range c.varlen {
		if schema.Fields[i].Nullable {
			emit(i, emitVarNullable)
		} else {
			emit(i, emitVar)
		}
	}
	return c
}

// Schema returns the codec's schema.
func (c *Codec) Schema() *storage.Schema { return c.schema }

// EncodeRow appends the serialized form of row `row` of b to out.
func (c *Codec) EncodeRow(b *storage.Batch, row int, out []byte) []byte {
	for _, e := range c.enc {
		out = e(b, row, out)
	}
	return out
}

// RowSize returns the serialized size of row `row` without encoding it.
func (c *Codec) RowSize(b *storage.Batch, row int) int {
	n := 0
	for _, i := range c.fixedNotNull {
		n += c.schema.Fields[i].Type.FixedSize()
	}
	for _, i := range c.nullableFix {
		n++ // indicator
		if !b.Cols[i].IsNull(row) {
			n += c.schema.Fields[i].Type.FixedSize()
		}
	}
	for _, i := range c.varlen {
		if c.schema.Fields[i].Nullable {
			n++
			if b.Cols[i].IsNull(row) {
				continue
			}
		}
		n += 4 + len(b.Cols[i].Str[row])
	}
	return n
}

// DecodeAll decodes the whole buffer into dst, appending rows. It returns
// the number of rows decoded. A schema whose rows serialize to zero bytes
// (no decodable fields) cannot make progress against a non-empty buffer;
// that case returns an error instead of looping forever.
func (c *Codec) DecodeAll(in []byte, dst *storage.Batch) (int, error) {
	rows := 0
	for len(in) > 0 {
		var err error
		before := len(in)
		for _, d := range c.dec {
			if in, err = d(in, dst); err != nil {
				return rows, fmt.Errorf("ser: row %d: %w", rows, err)
			}
		}
		if len(in) >= before {
			return rows, fmt.Errorf("ser: no progress decoding row %d: schema has no decodable fields but %d input bytes remain", rows, len(in))
		}
		rows++
	}
	return rows, nil
}

type emitMode int

const (
	emitPlain emitMode = iota
	emitNullable
	emitVar
	emitVarNullable
)

func makeEncoder(idx int, f storage.Field, mode emitMode) func(*storage.Batch, int, []byte) []byte {
	t := f.Type
	switch mode {
	case emitPlain:
		switch t {
		case storage.TDate:
			return func(b *storage.Batch, row int, out []byte) []byte {
				return binary.LittleEndian.AppendUint32(out, uint32(int32(b.Cols[idx].I64[row])))
			}
		case storage.TFloat64:
			return func(b *storage.Batch, row int, out []byte) []byte {
				bits := f64bits(b.Cols[idx].F64[row])
				return binary.LittleEndian.AppendUint64(out, bits)
			}
		default: // int64, decimal
			return func(b *storage.Batch, row int, out []byte) []byte {
				return binary.LittleEndian.AppendUint64(out, uint64(b.Cols[idx].I64[row]))
			}
		}
	case emitNullable:
		return func(b *storage.Batch, row int, out []byte) []byte {
			col := b.Cols[idx]
			if col.IsNull(row) {
				return append(out, 0)
			}
			out = append(out, 1)
			switch t {
			case storage.TDate:
				return binary.LittleEndian.AppendUint32(out, uint32(int32(col.I64[row])))
			case storage.TFloat64:
				return binary.LittleEndian.AppendUint64(out, f64bits(col.F64[row]))
			default:
				return binary.LittleEndian.AppendUint64(out, uint64(col.I64[row]))
			}
		}
	case emitVar:
		return func(b *storage.Batch, row int, out []byte) []byte {
			s := b.Cols[idx].Str[row]
			out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
			return append(out, s...)
		}
	default: // emitVarNullable
		return func(b *storage.Batch, row int, out []byte) []byte {
			col := b.Cols[idx]
			if col.IsNull(row) {
				return append(out, 0)
			}
			out = append(out, 1)
			s := col.Str[row]
			out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
			return append(out, s...)
		}
	}
}

func makeDecoder(idx int, f storage.Field, mode emitMode) func([]byte, *storage.Batch) ([]byte, error) {
	t := f.Type
	errShort := fmt.Errorf("ser: truncated input for field %q", f.Name)
	readFixed := func(in []byte, col *storage.Column) ([]byte, error) {
		switch t {
		case storage.TDate:
			if len(in) < 4 {
				return nil, errShort
			}
			col.AppendI64(int64(int32(binary.LittleEndian.Uint32(in))))
			return in[4:], nil
		case storage.TFloat64:
			if len(in) < 8 {
				return nil, errShort
			}
			col.AppendF64(f64frombits(binary.LittleEndian.Uint64(in)))
			return in[8:], nil
		default:
			if len(in) < 8 {
				return nil, errShort
			}
			col.AppendI64(int64(binary.LittleEndian.Uint64(in)))
			return in[8:], nil
		}
	}
	switch mode {
	case emitPlain:
		return func(in []byte, b *storage.Batch) ([]byte, error) {
			return readFixed(in, b.Cols[idx])
		}
	case emitNullable:
		return func(in []byte, b *storage.Batch) ([]byte, error) {
			if len(in) < 1 {
				return nil, errShort
			}
			ind := in[0]
			in = in[1:]
			if ind == 0 {
				b.Cols[idx].AppendNull()
				return in, nil
			}
			return readFixed(in, b.Cols[idx])
		}
	case emitVar:
		return func(in []byte, b *storage.Batch) ([]byte, error) {
			if len(in) < 4 {
				return nil, errShort
			}
			n := int(binary.LittleEndian.Uint32(in))
			in = in[4:]
			if len(in) < n {
				return nil, errShort
			}
			b.Cols[idx].AppendStr(string(in[:n]))
			return in[n:], nil
		}
	default: // emitVarNullable
		return func(in []byte, b *storage.Batch) ([]byte, error) {
			if len(in) < 1 {
				return nil, errShort
			}
			ind := in[0]
			in = in[1:]
			if ind == 0 {
				b.Cols[idx].AppendNull()
				return in, nil
			}
			if len(in) < 4 {
				return nil, errShort
			}
			n := int(binary.LittleEndian.Uint32(in))
			in = in[4:]
			if len(in) < n {
				return nil, errShort
			}
			b.Cols[idx].AppendStr(string(in[:n]))
			return in[n:], nil
		}
	}
}

func sortByTypeThenOrder(schema *storage.Schema, idx []int) {
	// Insertion sort: field lists are tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			ta, tb := schema.Fields[a].Type, schema.Fields[b].Type
			if ta > tb || (ta == tb && a > b) {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			} else {
				break
			}
		}
	}
}
