package ser

import (
	"math"
	"testing"
	"testing/quick"

	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

func partsuppBatch() *storage.Batch {
	// The Figure 8 example relation.
	b := storage.NewBatch(tpch.PartSuppSchema(), 3)
	b.AppendRow(int64(1), int64(2), int64(100), int64(5000), "carefully final deposits")
	b.AppendRow(int64(7), int64(9), int64(0), int64(1), "")
	b.AppendRow(int64(3), int64(4), int64(9999), int64(99999), "x")
	return b
}

func TestRoundTripPartsupp(t *testing.T) {
	b := partsuppBatch()
	c := NewCodec(b.Schema)
	var buf []byte
	for i := 0; i < b.Rows(); i++ {
		if got, want := c.RowSize(b, i), len(c.EncodeRow(b, i, nil)); got != want {
			t.Fatalf("row %d: RowSize %d != encoded %d", i, got, want)
		}
		buf = c.EncodeRow(b, i, buf)
	}
	out := storage.NewBatch(b.Schema, b.Rows())
	n, err := c.DecodeAll(buf, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != b.Rows() {
		t.Fatalf("decoded %d rows, want %d", n, b.Rows())
	}
	for i := 0; i < b.Rows(); i++ {
		for col := range b.Cols {
			if b.Cols[col].Value(i) != out.Cols[col].Value(i) {
				t.Fatalf("row %d col %d: %v != %v", i, col, b.Cols[col].Value(i), out.Cols[col].Value(i))
			}
		}
	}
}

func TestRoundTripNullable(t *testing.T) {
	schema := storage.NewSchema(
		storage.Field{Name: "id", Type: storage.TInt64},
		storage.Field{Name: "opt", Type: storage.TDecimal, Nullable: true},
		storage.Field{Name: "d", Type: storage.TDate, Nullable: true},
		storage.Field{Name: "s", Type: storage.TString, Nullable: true},
		storage.Field{Name: "f", Type: storage.TFloat64},
	)
	b := storage.NewBatch(schema, 3)
	b.AppendRow(int64(1), nil, int64(9000), "hello", 1.25)
	b.AppendRow(int64(2), int64(-42), nil, nil, math.Inf(1))
	b.AppendRow(int64(3), int64(0), int64(0), "", -0.0)

	c := NewCodec(schema)
	var buf []byte
	for i := 0; i < b.Rows(); i++ {
		buf = c.EncodeRow(b, i, buf)
	}
	out := storage.NewBatch(schema, 3)
	if _, err := c.DecodeAll(buf, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Rows(); i++ {
		for col := range b.Cols {
			if b.Cols[col].Value(i) != out.Cols[col].Value(i) {
				t.Fatalf("row %d col %d: %v != %v", i, col, b.Cols[col].Value(i), out.Cols[col].Value(i))
			}
		}
	}
}

func TestDenseLayout(t *testing.T) {
	// Fixed NOT NULL attributes serialize with zero per-field overhead:
	// the partsupp row of Figure 8 has 4 fixed fields (8 bytes each) plus
	// one varchar (4-byte length prefix).
	b := partsuppBatch()
	c := NewCodec(b.Schema)
	comment := b.Cols[4].Str[0]
	want := 4*8 + 4 + len(comment)
	if got := c.RowSize(b, 0); got != want {
		t.Fatalf("row size %d, want %d (densely packed)", got, want)
	}
}

func TestTruncatedInputFails(t *testing.T) {
	b := partsuppBatch()
	c := NewCodec(b.Schema)
	buf := c.EncodeRow(b, 0, nil)
	for cut := 1; cut < len(buf); cut += 7 {
		out := storage.NewBatch(b.Schema, 1)
		if _, err := c.DecodeAll(buf[:len(buf)-cut], out); err == nil {
			t.Fatalf("truncation by %d bytes not detected", cut)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	schema := storage.NewSchema(
		storage.Field{Name: "a", Type: storage.TInt64},
		storage.Field{Name: "b", Type: storage.TString},
		storage.Field{Name: "c", Type: storage.TDecimal, Nullable: true},
	)
	c := NewCodec(schema)
	f := func(a int64, s string, d int64, null bool) bool {
		b := storage.NewBatch(schema, 1)
		if null {
			b.AppendRow(a, s, nil)
		} else {
			b.AppendRow(a, s, d)
		}
		buf := c.EncodeRow(b, 0, nil)
		out := storage.NewBatch(schema, 1)
		if _, err := c.DecodeAll(buf, out); err != nil {
			return false
		}
		return out.Cols[0].Value(0) == b.Cols[0].Value(0) &&
			out.Cols[1].Value(0) == b.Cols[1].Value(0) &&
			out.Cols[2].Value(0) == b.Cols[2].Value(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllTPCHSchemasRoundTrip(t *testing.T) {
	db := tpch.Generate(0.001, 7)
	for name, batch := range db.Tables {
		c := NewCodec(batch.Schema)
		rows := min(batch.Rows(), 200)
		var buf []byte
		for i := 0; i < rows; i++ {
			buf = c.EncodeRow(batch, i, buf)
		}
		out := storage.NewBatch(batch.Schema, rows)
		n, err := c.DecodeAll(buf, out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != rows {
			t.Fatalf("%s: decoded %d, want %d", name, n, rows)
		}
		for i := 0; i < rows; i++ {
			for col := range batch.Cols {
				if batch.Cols[col].Value(i) != out.Cols[col].Value(i) {
					t.Fatalf("%s row %d col %d mismatch", name, i, col)
				}
			}
		}
	}
}
