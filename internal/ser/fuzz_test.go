package ser

import (
	"fmt"
	"testing"
	"time"

	"hsqp/internal/storage"
)

// fuzzRNG deterministically derives values from the fuzz input: it
// consumes the input bytes first, then continues with a splitmix-style
// generator seeded by what it has read, so every input prefix yields a
// different but reproducible (schema, rows) pair.
type fuzzRNG struct {
	data []byte
	i    int
	s    uint64
}

func (r *fuzzRNG) byte() byte {
	if r.i < len(r.data) {
		b := r.data[r.i]
		r.i++
		r.s = r.s*0x9E3779B97F4A7C15 + uint64(b) + 1
		return b
	}
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return byte(r.s >> 33)
}

func (r *fuzzRNG) intn(n int) int { return int(r.byte()) % n }

var fuzzTypes = []storage.Type{
	storage.TInt64, storage.TDecimal, storage.TDate, storage.TFloat64, storage.TString,
}

// genSchema derives a random 1..6-field schema mixing fixed/varlen and
// nullable/not-null fields.
func genSchema(r *fuzzRNG) *storage.Schema {
	n := 1 + r.intn(6)
	fields := make([]storage.Field, n)
	for i := range fields {
		fields[i] = storage.Field{
			Name:     fmt.Sprintf("f%d", i),
			Type:     fuzzTypes[r.intn(len(fuzzTypes))],
			Nullable: r.intn(2) == 1,
		}
	}
	return storage.NewSchema(fields...)
}

// genBatch fills 0..8 rows with random values (including NULLs for
// nullable fields; dates stay within int32, floats avoid NaN).
func genBatch(r *fuzzRNG, schema *storage.Schema) *storage.Batch {
	rows := r.intn(9)
	b := storage.NewBatch(schema, rows)
	for i := 0; i < rows; i++ {
		vals := make([]any, schema.Len())
		for c, f := range schema.Fields {
			if f.Nullable && r.intn(4) == 0 {
				vals[c] = nil
				continue
			}
			switch f.Type {
			case storage.TFloat64:
				vals[c] = float64(int64(uint64(r.byte())<<8|uint64(r.byte()))-32768) * 0.25
			case storage.TDate:
				vals[c] = int64(int32(uint32(r.byte())<<24 | uint32(r.byte())<<8 | uint32(r.byte())))
			case storage.TString:
				s := make([]byte, r.intn(20))
				for j := range s {
					s[j] = r.byte()
				}
				vals[c] = string(s)
			default: // int64, decimal
				v := int64(uint64(r.byte())<<56|uint64(r.byte())<<32|uint64(r.byte())<<16) - (1 << 55)
				vals[c] = v
			}
		}
		b.AppendRow(vals...)
	}
	return b
}

// FuzzCodecRoundTrip checks the two wire-format invariants over random
// schemas (nullable/varlen mixes) and random rows:
//
//  1. encode → DecodeAll round-trips every value;
//  2. DecodeAll of a truncated buffer errors at EVERY prefix length that
//     does not fall exactly on a row boundary, and decodes exactly the
//     whole rows when it does (no infinite loop, no partial row).
func FuzzCodecRoundTrip(f *testing.F) {
	// Seed corpus: empty, short, and structured inputs covering the
	// all-fixed, all-varlen, and mixed schema shapes.
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Add([]byte("nullable varlen mixes"))
	f.Add([]byte{4, 1, 4, 1, 3, 0, 3, 0, 2, 1, 8, 255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzRNG{data: data}
		schema := genSchema(r)
		in := genBatch(r, schema)
		c := NewCodec(schema)

		// Encode, recording the row boundaries.
		var buf []byte
		boundaries := map[int]int{0: 0} // byte offset → rows before it
		for i := 0; i < in.Rows(); i++ {
			if got, want := c.RowSize(in, i), len(c.EncodeRow(in, i, nil)); got != want {
				t.Fatalf("row %d: RowSize %d != encoded size %d", i, got, want)
			}
			buf = c.EncodeRow(in, i, buf)
			boundaries[len(buf)] = i + 1
		}

		// Full round trip.
		out := storage.NewBatch(schema, in.Rows())
		n, err := c.DecodeAll(buf, out)
		if err != nil {
			t.Fatalf("decode of intact buffer failed: %v", err)
		}
		if n != in.Rows() {
			t.Fatalf("decoded %d rows, want %d", n, in.Rows())
		}
		for i := 0; i < in.Rows(); i++ {
			for col := range in.Cols {
				if in.Cols[col].Value(i) != out.Cols[col].Value(i) {
					t.Fatalf("row %d col %d: %v != %v", i, col,
						in.Cols[col].Value(i), out.Cols[col].Value(i))
				}
			}
		}

		// Truncation: every non-boundary prefix must error; boundary
		// prefixes must decode exactly the whole rows before them.
		for p := 0; p < len(buf); p++ {
			dst := storage.NewBatch(schema, in.Rows())
			n, err := c.DecodeAll(buf[:p], dst)
			if rows, ok := boundaries[p]; ok {
				if err != nil {
					t.Fatalf("prefix %d is a row boundary but errored: %v", p, err)
				}
				if n != rows {
					t.Fatalf("prefix %d decoded %d rows, want %d", p, n, rows)
				}
			} else if err == nil {
				t.Fatalf("prefix %d of %d decoded %d rows without error; want truncation error", p, len(buf), n)
			}
		}
	})
}

// TestDecodeAllNoProgress: a codec over a schema with no decodable fields
// cannot consume input; a non-empty buffer must produce an error, not an
// infinite loop.
func TestDecodeAllNoProgress(t *testing.T) {
	schema := storage.NewSchema()
	c := NewCodec(schema)
	dst := storage.NewBatch(schema, 0)
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		n, err = c.DecodeAll([]byte{1, 2, 3}, dst)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("DecodeAll hangs on a schema with no decodable fields")
	}
	if err == nil {
		t.Fatalf("decoded %d rows from undecodable input without error", n)
	}
}
