package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("final time %v, want 3", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterChains(t *testing.T) {
	s := New()
	hits := 0
	var step func()
	step = func() {
		hits++
		if hits < 5 {
			s.After(1, step)
		}
	}
	s.After(1, step)
	s.RunAll()
	if hits != 5 {
		t.Fatalf("got %d hits, want 5", hits)
	}
	if s.Now() != 5 {
		t.Fatalf("final time %v, want 5", s.Now())
	}
}

func TestRunLimit(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, func() { ran++ })
	s.At(10, func() { ran++ })
	s.Run(5)
	if ran != 1 {
		t.Fatalf("ran %d events before limit, want 1", ran)
	}
	if s.Now() != 5 {
		t.Fatalf("time %v, want 5 (the limit)", s.Now())
	}
	s.RunAll()
	if ran != 2 {
		t.Fatalf("pending event lost: ran=%d", ran)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.RunAll()
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := NewResource(s, "link", 100) // 100 units/sec
	var done []Time
	r.Acquire(100, func() { done = append(done, s.Now()) }) // 1s
	r.Acquire(100, func() { done = append(done, s.Now()) }) // queued behind
	s.RunAll()
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("completions %v, want [1 2]", done)
	}
	if r.BusySeconds() != 2 {
		t.Fatalf("busy %v, want 2", r.BusySeconds())
	}
	if math.Abs(r.Utilization()-1.0) > 1e-9 {
		t.Fatalf("utilization %v, want 1", r.Utilization())
	}
}

func TestResourceThroughputProperty(t *testing.T) {
	// Property: serving n jobs of size s at capacity c takes exactly
	// n×s/c when they arrive together.
	f := func(n uint8, size uint16, cap16 uint16) bool {
		jobs := int(n%20) + 1
		sz := float64(size%1000) + 1
		capacity := float64(cap16%5000) + 1
		s := New()
		r := NewResource(s, "r", capacity)
		for i := 0; i < jobs; i++ {
			r.Acquire(sz, nil)
		}
		end := s.RunAll()
		_ = end
		want := Time(float64(jobs) * sz / capacity)
		return math.Abs(float64(r.FreeAt()-want)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
