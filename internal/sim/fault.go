package sim

import (
	"fmt"
	"sync"
)

// QueryPhase identifies a point in a distributed query's lifecycle at
// which a fault injector may fire. The cluster invokes its configured
// phase hook at each boundary; see cluster.Config.PhaseHook.
type QueryPhase int

const (
	// PhaseCompiled fires after the plan has been compiled on every server
	// and its exchange state opened, before any morsel executes.
	PhaseCompiled QueryPhase = iota
	// PhaseExecuting fires once the per-server execution has been
	// launched: scans are already producing morsels when the hook runs.
	PhaseExecuting
)

func (p QueryPhase) String() string {
	switch p {
	case PhaseCompiled:
		return "compiled"
	case PhaseExecuting:
		return "executing"
	default:
		return fmt.Sprintf("QueryPhase(%d)", int(p))
	}
}

// FaultKind selects what happens to the targeted server.
type FaultKind int

const (
	// FaultKill crashes the server process: its engine, multiplexer and
	// endpoint shut down immediately.
	FaultKill FaultKind = iota
	// FaultHang freezes the server process (SIGSTOP): it stops sending and
	// answers no probes, but its NIC keeps consuming inbound traffic.
	FaultHang
	// FaultPartition cuts the server's switch port: all traffic to and
	// from it is dropped, while the process itself keeps running.
	FaultPartition
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultHang:
		return "hang"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Target is the surface a fault injector manipulates. The cluster
// implements it; keeping the interface here lets the simulation kernel
// define fault plans without importing the engine.
type Target interface {
	// KillServer crashes server id immediately.
	KillServer(id int) error
	// HangServer freezes server id (stops sending, ignores probes).
	HangServer(id int) error
	// PartitionServer cuts server id off from the network fabric.
	PartitionServer(id int) error
}

// FaultPlan describes one fault: which server, what happens to it, and at
// which query phase it strikes.
type FaultPlan struct {
	Kind   FaultKind
	Server int
	Phase  QueryPhase
}

// FaultInjector arms a single fault against a target and fires it the
// first time the planned phase is reached; subsequent phases (including
// the retried query's) are ignored. Safe for concurrent use.
type FaultInjector struct {
	target Target
	plan   FaultPlan

	mu    sync.Mutex
	fired bool
	err   error
}

// NewFaultInjector arms plan against target.
func NewFaultInjector(target Target, plan FaultPlan) *FaultInjector {
	return &FaultInjector{target: target, plan: plan}
}

// OnPhase fires the armed fault if p matches the plan and it has not fired
// yet. Pass it as (or call it from) the cluster's phase hook.
func (fi *FaultInjector) OnPhase(p QueryPhase) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.fired || p != fi.plan.Phase {
		return
	}
	fi.fired = true
	switch fi.plan.Kind {
	case FaultKill:
		fi.err = fi.target.KillServer(fi.plan.Server)
	case FaultHang:
		fi.err = fi.target.HangServer(fi.plan.Server)
	case FaultPartition:
		fi.err = fi.target.PartitionServer(fi.plan.Server)
	default:
		fi.err = fmt.Errorf("sim: unknown fault kind %v", fi.plan.Kind)
	}
}

// Fired reports whether the fault has been injected.
func (fi *FaultInjector) Fired() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.fired
}

// Err returns the error the fault injection itself produced, if any.
func (fi *FaultInjector) Err() error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.err
}
