// Package sim provides a small discrete-event simulation kernel with a
// virtual clock, an event queue and contended resources.
//
// It is used by the network microbenchmarks (Figures 4 and 5 of the paper)
// that model CPU cost, memory-bus traffic and link occupancy analytically
// in virtual time, where wall-clock execution would be too slow or too
// noisy to reproduce the paper's numbers.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Event is a scheduled callback.
type event struct {
	at    Time
	seq   int64
	fn    func()
	index int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now    Time
	queue  eventQueue
	seq    int64
	nsteps int64
}

// New creates an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() int64 { return s.nsteps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a modeling bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Run processes events until the queue is empty or until virtual time
// exceeds limit (use math.Inf(1) for no limit). It returns the final time.
func (s *Sim) Run(limit Time) Time {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.at > limit {
			// Put it back and stop; the event remains pending.
			heap.Push(&s.queue, e)
			s.now = limit
			return s.now
		}
		s.now = e.at
		s.nsteps++
		e.fn()
	}
	return s.now
}

// RunAll processes all events with no time limit.
func (s *Sim) RunAll() Time { return s.Run(Time(math.Inf(1))) }

// Resource is a FIFO-served resource with a given service capacity
// expressed in units per second (e.g. bytes/s for a link, cycles/s for a
// CPU). Acquire schedules work of a given size and calls done when the
// resource has finished serving it. Requests are serialized: the resource
// serves one request at a time, which models a single link, core or bus.
type Resource struct {
	sim      *Sim
	Name     string
	Capacity float64 // units per second
	free     Time    // next time the resource is free
	busy     float64 // total busy seconds, for utilization accounting
}

// NewResource creates a resource attached to the simulator.
func NewResource(s *Sim, name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, Name: name, Capacity: capacity}
}

// Acquire enqueues size units of work and invokes done at completion time.
func (r *Resource) Acquire(size float64, done func()) {
	start := r.free
	if start < r.sim.now {
		start = r.sim.now
	}
	dur := Time(size / r.Capacity)
	r.free = start + dur
	r.busy += float64(dur)
	if done != nil {
		r.sim.At(r.free, done)
	}
}

// AcquireAt behaves like Acquire but the work may not start before t.
func (r *Resource) AcquireAt(t Time, size float64, done func()) {
	start := r.free
	if start < t {
		start = t
	}
	if start < r.sim.now {
		start = r.sim.now
	}
	dur := Time(size / r.Capacity)
	r.free = start + dur
	r.busy += float64(dur)
	if done != nil {
		r.sim.At(r.free, done)
	}
}

// BusySeconds reports the accumulated busy time of the resource.
func (r *Resource) BusySeconds() float64 { return r.busy }

// Utilization reports busy time divided by elapsed virtual time.
func (r *Resource) Utilization() float64 {
	if r.sim.now == 0 {
		return 0
	}
	return r.busy / float64(r.sim.now)
}

// FreeAt returns the next time the resource is available.
func (r *Resource) FreeAt() Time { return r.free }
