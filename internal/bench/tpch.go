package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/queries"
	"hsqp/internal/tpch"
)

// QuickQueries is the default per-experiment query subset: a mix of
// scan-bound (1, 6), join/shuffle-bound (3, 5, 12) and aggregation-bound
// (14, 18) queries, so that transport and scheduling effects show without
// running the full suite per configuration.
var QuickQueries = []int{1, 3, 5, 6, 12, 14, 18}

// Workload fixes the dataset of an experiment.
type Workload struct {
	SF      float64
	Seed    uint64
	Queries []int
	// Partitioned selects partitioned placement (else chunked).
	Partitioned bool
	// Repeat runs each query this many times and keeps the fastest
	// (noise suppression). Zero means 2.
	Repeat int
}

func (w Workload) withDefaults() Workload {
	if w.SF == 0 {
		w.SF = 0.05
	}
	if w.Seed == 0 {
		w.Seed = 42
	}
	if len(w.Queries) == 0 {
		w.Queries = QuickQueries
	}
	if w.Repeat == 0 {
		w.Repeat = 2
	}
	return w
}

// dbCache shares generated databases across experiments in one process.
var (
	dbMu    sync.Mutex
	dbCache = map[string]*tpch.Database{}
)

// DB returns the cached database for (sf, seed).
func DB(sf float64, seed uint64) *tpch.Database {
	key := fmt.Sprintf("%g/%d", sf, seed)
	dbMu.Lock()
	defer dbMu.Unlock()
	if db := dbCache[key]; db != nil {
		return db
	}
	db := tpch.Generate(sf, seed)
	dbCache[key] = db
	return db
}

// RunResult is the outcome of one TPC-H run on one configuration.
type RunResult struct {
	Times map[int]time.Duration
	Total time.Duration
	Stats cluster.QueryStats
	// Overlap is the highest per-server compute/communication overlap
	// ratio observed across the workload's queries (0 under serial
	// execution; > 0 means the DAG scheduler ran pipelines concurrently).
	Overlap float64
	// PeakPipelines is the maximum number of pipelines in flight at once
	// on any server across the workload.
	PeakPipelines int
}

// QpH extrapolates queries-per-hour from the run (like Figure 12(a)).
func (r RunResult) QpH() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(len(r.Times)) / r.Total.Hours()
}

// GeoMeanSeconds returns the geometric mean of the per-query times.
func (r RunResult) GeoMeanSeconds() float64 {
	ds := make([]time.Duration, 0, len(r.Times))
	for _, d := range r.Times {
		ds = append(ds, d)
	}
	return GeoMean(ds)
}

// warmupOnce runs a throwaway workload once per process before the first
// measurement: thread-pool ramp-up, heap sizing and CPU frequency state
// otherwise penalize whichever configuration happens to run first.
var warmupOnce sync.Once

// Warmup primes the process. All experiment entry points call it; exposed
// for external benchmark drivers.
func Warmup() {
	warmupOnce.Do(func() {
		c, err := cluster.New(cluster.Config{
			Servers:          2,
			WorkersPerServer: 4,
			Transport:        cluster.RDMA,
			Scheduling:       true,
			TimeScale:        1,
		})
		if err != nil {
			return
		}
		defer c.Close()
		c.LoadTPCH(DB(0.02, 42), false)
		_, _ = RunOnCluster(c, Workload{SF: 0.02, Queries: []int{1, 5, 18}, Repeat: 1})
	})
}

// RunTPCH executes the workload's queries on a fresh cluster built from
// cfg and tears the cluster down again.
func RunTPCH(cfg cluster.Config, w Workload) (RunResult, error) {
	Warmup()
	w = w.withDefaults()
	c, err := cluster.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer c.Close()
	c.LoadTPCH(DB(w.SF, w.Seed), w.Partitioned)
	return RunOnCluster(c, w)
}

// RunOnCluster executes the workload's queries on an existing, loaded
// cluster.
func RunOnCluster(c *cluster.Cluster, w Workload) (RunResult, error) {
	w = w.withDefaults()
	res := RunResult{Times: make(map[int]time.Duration, len(w.Queries))}
	for _, q := range w.Queries {
		qp, err := queries.Build(q, queries.Params{SF: w.SF})
		if err != nil {
			return res, err
		}
		var best cluster.QueryStats
		for r := 0; r < w.Repeat; r++ {
			_, stats, err := c.RunContext(context.Background(), qp)
			if err != nil {
				return res, fmt.Errorf("bench: q%d: %w", q, err)
			}
			if r == 0 || stats.Duration < best.Duration {
				best = stats
			}
		}
		res.Times[q] = best.Duration
		res.Total += best.Duration
		res.Stats.BytesSent += best.BytesSent
		res.Stats.MessagesSent += best.MessagesSent
		res.Stats.StolenMsgs += best.StolenMsgs
		res.Stats.LocalMsgs += best.LocalMsgs
		if o := best.MaxOverlap(); o > res.Overlap {
			res.Overlap = o
		}
		if cc := best.PeakConcurrentPipelines(); cc > res.PeakPipelines {
			res.PeakPipelines = cc
		}
	}
	return res, nil
}
