package bench

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// encodeResult serializes a result batch row by row into one comparable
// byte string (the wire codec is deterministic for a fixed schema).
func encodeResult(b *storage.Batch) []byte {
	c := ser.NewCodec(b.Schema)
	var out []byte
	for i := 0; i < b.Rows(); i++ {
		out = c.EncodeRow(b, i, out)
	}
	return out
}

// TestSkewAdaptiveConformance is the acceptance check for the adaptive
// skew subsystem on the examples/skew workload (Zipf 1.1, 3 servers):
// the adaptive strategy must produce byte-identical results to both the
// static-partition and classic engines, and (without the race detector
// distorting the compute/network balance) beat static hash partitioning
// by at least 20% wall time.
func TestSkewAdaptiveConformance(t *testing.T) {
	f := SkewedJoin{Rows: 200_000, Transport: cluster.TCPGbE, Runs: 2}
	f.defaults()
	if f.Zipf != 1.1 || f.Servers != 3 {
		t.Fatalf("acceptance workload drifted: zipf %v servers %d", f.Zipf, f.Servers)
	}
	build, probe := buildSkewTables(f.Rows, f.Keys, f.Zipf)

	run := func() (times map[string]time.Duration, err error) {
		times = map[string]time.Duration{}
		var want []byte
		for _, eng := range skewEngines {
			res, stats, err := f.RunEngine(eng.name, build, probe)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", eng.name, err)
			}
			if res.Rows() == 0 {
				return nil, fmt.Errorf("%s: empty result", eng.name)
			}
			got := encodeResult(res)
			if eng.name == "static" {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("%s result differs from static (%d vs %d bytes)", eng.name, len(got), len(want))
			}
			times[eng.name] = stats.Duration
		}
		return times, nil
	}

	times, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Log("race detector enabled: skipping the wall-time assertion")
		return
	}
	// Wall-time acceptance with one retry: the figure is stable (the win
	// is ~1.5x) but CI machines stall.
	for attempt := 0; ; attempt++ {
		adaptive, static := times["adaptive"], times["static"]
		t.Logf("attempt %d: static %v, classic %v, adaptive %v (%.2fx)",
			attempt, static, times["classic"], adaptive, static.Seconds()/adaptive.Seconds())
		if adaptive <= static*8/10 {
			return
		}
		if attempt >= 1 {
			t.Fatalf("adaptive %v is not >=20%% faster than static %v", adaptive, static)
		}
		if times, err = run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSkewSweepSmoke runs a reduced sweep end-to-end: every (zipf, engine)
// cell must execute without error and produce positive runtimes.
func TestSkewSweepSmoke(t *testing.T) {
	f := SkewSweep{
		SkewedJoin: SkewedJoin{Rows: 30_000, Keys: 3_000, Runs: 1},
		ZipfList:   []float64{0, 1.1},
	}
	pts, err := f.Run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*len(skewEngines) {
		t.Fatalf("got %d points, want %d", len(pts), 2*len(skewEngines))
	}
	for _, p := range pts {
		if p.Time <= 0 {
			t.Fatalf("%s at z=%.1f: non-positive time", p.Engine, p.Zipf)
		}
	}
}
