package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"hsqp/internal/cluster"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/storage"
)

// fusionLimitSortKeys mirrors the conformance convention from
// internal/queries: for queries with LIMIT, only the columns fully
// determined by the ORDER BY are comparable across engines — ties below
// the limit boundary may legitimately differ in the remaining columns.
var fusionLimitSortKeys = map[int][]int{
	2:  {0},    // s_acctbal (desc)
	3:  {1, 2}, // revenue, o_orderdate
	10: {2},    // revenue
	18: {4, 3}, // o_totalprice, o_orderdate
	21: {1},    // numwait
}

// canonicalCols renders the given columns of every row, sorts the rendered
// rows and concatenates them — CanonicalRows restricted to a column subset.
func canonicalCols(b *storage.Batch, cols []int) []byte {
	rows := make([]string, b.Rows())
	for i := range rows {
		parts := make([]string, len(cols))
		for j, c := range cols {
			parts[j] = fmt.Sprintf("%v", b.Cols[c].Value(i))
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return []byte(strings.Join(rows, "\n"))
}

// TestFusionPushdownConformance is the acceptance check for the fused hot
// path: every TPC-H query must produce byte-identical canonical results
// under the default engine (operator fusion + column pruning below
// exchanges) and under the -nofuse/-nopushdown ablation, and the
// explain-analyze output of the fused run must report per-operator rows
// and time for every plan.
func TestFusionPushdownConformance(t *testing.T) {
	db := DB(0.01, 42)
	newC := func(ablation bool) *cluster.Cluster {
		c, err := cluster.New(cluster.Config{
			Servers:          3,
			WorkersPerServer: 4,
			Transport:        cluster.RDMA,
			Scheduling:       true,
			TimeScale:        0.005,
			MorselSize:       4096,
			MessageSize:      64 * 1024,
			NoFuse:           ablation,
			NoPushdown:       ablation,
		})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		t.Cleanup(c.Close)
		c.LoadTPCH(db, false)
		return c
	}
	fused, ablated := newC(false), newC(true)

	for _, qn := range queries.All() {
		qn := qn
		t.Run(fmt.Sprintf("q%02d", qn), func(t *testing.T) {
			q := queries.MustBuild(qn, queries.Params{SF: 0.01})
			got, stats, err := fused.Run(q)
			if err != nil {
				t.Fatalf("fused q%d: %v", qn, err)
			}
			want, _, err := ablated.Run(queries.MustBuild(qn, queries.Params{SF: 0.01}))
			if err != nil {
				t.Fatalf("ablated q%d: %v", qn, err)
			}
			if got.Rows() != want.Rows() {
				t.Fatalf("q%d: fused %d rows, ablated %d", qn, got.Rows(), want.Rows())
			}
			var g, w []byte
			if keys, limited := fusionLimitSortKeys[qn]; limited {
				g, w = canonicalCols(got, keys), canonicalCols(want, keys)
			} else {
				g, w = CanonicalRows(got), CanonicalRows(want)
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("q%d: fused result differs from ablation (%d vs %d canonical bytes)",
					qn, len(g), len(w))
			}
			// The analyze output must profile every executed operator.
			ea := plan.ExplainAnalyze(q, stats.PipelineStats)
			if !strings.Contains(ea, "rows in=") || !strings.Contains(ea, "time=") {
				t.Fatalf("q%d: explain analyze lacks per-operator rows/time:\n%s", qn, ea)
			}
		})
	}
}

// TestPushdownWireReduction pins the wire-byte win of pushing projections
// below exchange sends: a shuffle join whose probe relation drags a wide
// pad column it never outputs must ship at least 20% fewer bytes with
// pruning enabled. Byte counts come from the query's own exchange sends
// (QueryStats.WireBytes), so they are exact and deterministic.
func TestPushdownWireReduction(t *testing.T) {
	build, probe := buildSkewTables(60_000, 6_000, 0) // uniform keys: pure pushdown, no skew handling
	run := func(noPushdown bool) (rows int, wire uint64) {
		c, err := cluster.New(cluster.Config{
			Servers:          3,
			WorkersPerServer: 4,
			Transport:        cluster.TCPGbE,
			Scheduling:       true,
			TimeScale:        0.005,
			NoPushdown:       noPushdown,
		})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		defer c.Close()
		c.LoadTable("skew_build", build, storage.PlacementChunked, 0)
		c.LoadTable("skew_probe", probe, storage.PlacementChunked, 0)
		res, stats, err := c.Run(skewQuery(plan.PartitionBoth))
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows(), stats.WireBytes()
	}
	rowsOn, wireOn := run(false)
	rowsOff, wireOff := run(true)
	if rowsOn != rowsOff || rowsOn == 0 {
		t.Fatalf("result drift: %d rows with pushdown, %d without", rowsOn, rowsOff)
	}
	if wireOn == 0 || wireOff == 0 {
		t.Fatalf("missing wire-byte accounting: %d with pushdown, %d without", wireOn, wireOff)
	}
	t.Logf("wire bytes: %d with pushdown, %d without (%.1f%% reduction)",
		wireOn, wireOff, 100*(1-float64(wireOn)/float64(wireOff)))
	if float64(wireOn) > 0.8*float64(wireOff) {
		t.Fatalf("pushdown saved <20%%: %d vs %d bytes", wireOn, wireOff)
	}
}
