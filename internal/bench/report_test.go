package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bbbb"}}
	tab.Add("x", "1")
	tab.Add("longer", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	// Columns align: header and separator have same visible width.
	if len(lines[1]) < len("longer  bbbb") {
		t.Fatalf("columns not padded: %q", lines[1])
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	g := GeoMean([]time.Duration{time.Second, 4 * time.Second})
	if math.Abs(g-2.0) > 1e-9 {
		t.Fatalf("geomean %v, want 2", g)
	}
}

func TestFormatHelpers(t *testing.T) {
	if Dur(1500*time.Millisecond) != "1.50s" {
		t.Fatal(Dur(1500 * time.Millisecond))
	}
	if Dur(2500*time.Microsecond) != "2.5ms" {
		t.Fatal(Dur(2500 * time.Microsecond))
	}
	if MB(3<<20) != "3.00MB" || MB(2<<30) != "2.00GB" {
		t.Fatal("MB formatting")
	}
	if F2(1.234) != "1.23" {
		t.Fatal("F2")
	}
}

func TestRunResultMetrics(t *testing.T) {
	r := RunResult{
		Times: map[int]time.Duration{1: time.Second, 2: time.Second},
		Total: 2 * time.Second,
	}
	if math.Abs(r.QpH()-3600) > 1e-6 {
		t.Fatalf("QpH %v", r.QpH())
	}
	if math.Abs(r.GeoMeanSeconds()-1) > 1e-9 {
		t.Fatalf("geomean %v", r.GeoMeanSeconds())
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.withDefaults()
	if w.SF != 0.05 || w.Seed != 42 || len(w.Queries) == 0 || w.Repeat != 2 {
		t.Fatalf("defaults: %+v", w)
	}
}

func TestSkewAnalysisShape(t *testing.T) {
	var buf bytes.Buffer
	pts := Skew{Values: 50_000, Draws: 200_000}.Run(&buf)
	if len(pts) != 2 {
		t.Fatal("want 2 points")
	}
	if pts[1].Overload <= pts[0].Overload {
		t.Fatalf("240 units must be worse than 6: %+v", pts)
	}
}
