package bench

import (
	"fmt"
	"io"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/fabric"
	"hsqp/internal/numa"
)

// Figure2 sweeps the number of cores per server for hybrid parallelism vs
// the classic exchange-operator model: hybrid keeps scaling, classic
// plateaus because its n×t fixed parallel units fragment the work, shrink
// message batching and cannot steal from stragglers.
type Figure2 struct {
	Workload  Workload
	Servers   int
	CoreSteps []int
	TimeScale float64
}

// Figure2Point is one measured configuration.
type Figure2Point struct {
	Cores           int
	Hybrid, Classic time.Duration
}

// Run executes the sweep.
func (f Figure2) Run(w io.Writer) ([]Figure2Point, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if len(f.CoreSteps) == 0 {
		f.CoreSteps = []int{1, 2, 4}
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	var out []Figure2Point
	tab := &Table{
		Title:  "Figure 2: hybrid vs classic exchange, scaling with cores per server",
		Header: []string{"cores/server", "hybrid", "classic", "hybrid speedup", "classic speedup"},
	}
	var base Figure2Point
	for i, cores := range f.CoreSteps {
		p := Figure2Point{Cores: cores}
		for _, classic := range []bool{false, true} {
			cfg := cluster.Config{
				Servers:          f.Servers,
				WorkersPerServer: cores,
				Transport:        cluster.RDMA,
				Scheduling:       true,
				Classic:          classic,
				TimeScale:        f.TimeScale,
			}
			res, err := RunTPCH(cfg, f.Workload)
			if err != nil {
				return nil, err
			}
			if classic {
				p.Classic = res.Total
			} else {
				p.Hybrid = res.Total
			}
		}
		if i == 0 {
			base = p
		}
		out = append(out, p)
		tab.Add(fmt.Sprintf("%d", cores), Dur(p.Hybrid), Dur(p.Classic),
			F2(base.Hybrid.Seconds()/p.Hybrid.Seconds()),
			F2(base.Classic.Seconds()/p.Classic.Seconds()))
	}
	tab.Fprint(w)
	return out, nil
}

// Figure3 scales the cluster from 1 to N servers at a fixed data set size
// for the three engines: RDMA+scheduling, TCP over InfiniBand, TCP over
// GbE. The paper: RDMA reaches 3.5× at 6 servers, IPoIB-TCP hovers near
// 1×, GbE drops to ~1/6×.
type Figure3 struct {
	Workload   Workload
	MaxServers int
	Workers    int
	TimeScale  float64
}

// Figure3Point is one (servers, engine) measurement.
type Figure3Point struct {
	Servers int
	Speedup map[string]float64
}

// Engines in display order.
var figure3Engines = []struct {
	Name      string
	Transport cluster.TransportKind
	Sched     bool
}{
	{"RDMA+sched", cluster.RDMA, true},
	{"TCP/IPoIB", cluster.TCPoIB, false},
	{"TCP/GbE", cluster.TCPGbE, false},
}

// Run executes the sweep; the single-server baseline is shared.
func (f Figure3) Run(w io.Writer) ([]Figure3Point, error) {
	if f.MaxServers == 0 {
		f.MaxServers = 4
	}
	if f.Workers == 0 {
		f.Workers = 3
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	// Single-server baseline: no network involved, one engine suffices.
	baseCfg := cluster.Config{
		Servers:          1,
		WorkersPerServer: f.Workers,
		Transport:        cluster.RDMA,
		TimeScale:        f.TimeScale,
	}
	base, err := RunTPCH(baseCfg, f.Workload)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Figure 3: cluster scale-out speedup over one server (fixed data size)",
		Header: []string{"servers", "RDMA+sched", "TCP/IPoIB", "TCP/GbE"},
	}
	tab.Add("1", "1.00", "1.00", "1.00")
	out := []Figure3Point{{Servers: 1, Speedup: map[string]float64{
		"RDMA+sched": 1, "TCP/IPoIB": 1, "TCP/GbE": 1,
	}}}
	for servers := 2; servers <= f.MaxServers; servers++ {
		p := Figure3Point{Servers: servers, Speedup: map[string]float64{}}
		for _, e := range figure3Engines {
			cfg := cluster.Config{
				Servers:          servers,
				WorkersPerServer: f.Workers,
				Transport:        e.Transport,
				Scheduling:       e.Sched,
				TimeScale:        f.TimeScale,
			}
			res, err := RunTPCH(cfg, f.Workload)
			if err != nil {
				return nil, err
			}
			p.Speedup[e.Name] = base.Total.Seconds() / res.Total.Seconds()
		}
		out = append(out, p)
		tab.Add(fmt.Sprintf("%d", servers),
			F2(p.Speedup["RDMA+sched"]), F2(p.Speedup["TCP/IPoIB"]), F2(p.Speedup["TCP/GbE"]))
	}
	tab.Fprint(w)
	return out, nil
}

// Figure9 compares message-buffer allocation policies on the 4-socket
// server (NUMA-aware vs interleaved vs one-socket); the paper measures
// −17% and −52% of queries/hour respectively.
type Figure9 struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
}

// Figure9Point is one allocation policy's throughput.
type Figure9Point struct {
	Policy numa.AllocPolicy
	QpH    float64
	// RemoteFrac is the measured fraction of message bytes that crossed
	// QPI — the deterministic mechanism behind the Figure 9 deltas.
	RemoteFrac float64
}

// Run executes the comparison.
func (f Figure9) Run(w io.Writer) ([]Figure9Point, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 8 // spread over the 4 sockets
	}
	if f.TimeScale == 0 {
		// Figure 9 measures an *intra-server* memory effect: the paper's
		// 4-socket box is QPI-bound, not network-bound. A small time scale
		// keeps the simulated network out of the critical path so the
		// buffer-placement penalty is visible, as in the paper.
		f.TimeScale = 2
	}
	var out []Figure9Point
	tab := &Table{
		Title:  "Figure 9: NUMA-aware message allocation, 4-socket server",
		Header: []string{"allocation", "queries/hour", "relative", "remote bytes"},
	}
	var baseQpH float64
	wl := f.Workload
	if wl.Repeat == 0 {
		wl.Repeat = 5 // the policy deltas are tens of percent; damp noise
	}
	for _, policy := range []numa.AllocPolicy{numa.AllocLocal, numa.AllocInterleaved, numa.AllocSingleSocket} {
		cfg := cluster.Config{
			Servers:          f.Servers,
			WorkersPerServer: f.Workers,
			Topology:         numa.FourSocket(),
			Transport:        cluster.RDMA,
			Scheduling:       true,
			AllocPolicy:      policy,
			TimeScale:        f.TimeScale,
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		c.LoadTPCH(DB(wl.SF, 42), wl.Partitioned)
		res, err := RunOnCluster(c, wl)
		if err != nil {
			c.Close()
			return nil, err
		}
		var local, remote uint64
		for _, n := range c.Nodes {
			l, r := n.Topo.Stats()
			local += l
			remote += r
		}
		c.Close()
		qph := res.QpH()
		frac := 0.0
		if local+remote > 0 {
			frac = float64(remote) / float64(local+remote)
		}
		if policy == numa.AllocLocal {
			baseQpH = qph
		}
		out = append(out, Figure9Point{Policy: policy, QpH: qph, RemoteFrac: frac})
		tab.Add(policy.String(), fmt.Sprintf("%.0f", qph), F2(qph/baseQpH),
			fmt.Sprintf("%.0f%%", frac*100))
	}
	tab.Fprint(w)
	return out, nil
}

// Figure11 measures per-query scalability for every TPC-H query across
// server counts and the three engines.
type Figure11 struct {
	Workload   Workload
	ServerList []int
	Workers    int
	TimeScale  float64
}

// Figure11Cell is one (query, servers, engine) speedup.
type Figure11Cell struct {
	Query   int
	Servers int
	Engine  string
	Speedup float64
}

// Run executes the full grid (expensive; trim Workload.Queries and
// ServerList for quick runs).
func (f Figure11) Run(w io.Writer) ([]Figure11Cell, error) {
	if len(f.ServerList) == 0 {
		f.ServerList = []int{1, 2, 4}
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	wl := f.Workload.withDefaults()
	// Baselines per query at one server.
	base, err := RunTPCH(cluster.Config{
		Servers: 1, WorkersPerServer: f.Workers, Transport: cluster.RDMA, TimeScale: f.TimeScale,
	}, wl)
	if err != nil {
		return nil, err
	}
	var cells []Figure11Cell
	tab := &Table{
		Title:  "Figure 11: per-query scalability (speedup over one server)",
		Header: []string{"query", "engine"},
	}
	for _, s := range f.ServerList {
		tab.Header = append(tab.Header, fmt.Sprintf("%d srv", s))
	}
	for _, q := range wl.Queries {
		for _, e := range figure3Engines {
			row := []string{fmt.Sprintf("Q%d", q), e.Name}
			for _, servers := range f.ServerList {
				var sp float64
				if servers == 1 {
					sp = 1
				} else {
					res, err := RunTPCH(cluster.Config{
						Servers:          servers,
						WorkersPerServer: f.Workers,
						Transport:        e.Transport,
						Scheduling:       e.Sched,
						TimeScale:        f.TimeScale,
					}, Workload{SF: wl.SF, Seed: wl.Seed, Queries: []int{q}, Partitioned: wl.Partitioned})
					if err != nil {
						return nil, err
					}
					sp = base.Times[q].Seconds() / res.Times[q].Seconds()
				}
				cells = append(cells, Figure11Cell{Query: q, Servers: servers, Engine: e.Name, Speedup: sp})
				row = append(row, F2(sp))
			}
			tab.Add(row...)
		}
	}
	tab.Fprint(w)
	return cells, nil
}

// SchedulingImpact measures §4.2.2: network scheduling on/off per
// transport (paper: +230% on GbE, ~0% on IPoIB-TCP, +12.2% on RDMA).
type SchedulingImpact struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
}

// SchedulingImpactPoint is one transport's improvement.
type SchedulingImpactPoint struct {
	Transport   string
	Improvement float64 // (t_unsched / t_sched) − 1
}

// Run executes the comparison.
func (f SchedulingImpact) Run(w io.Writer) ([]SchedulingImpactPoint, error) {
	if f.Servers == 0 {
		f.Servers = 4
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	var out []SchedulingImpactPoint
	tab := &Table{
		Title:  "§4.2.2: impact of network scheduling per transport",
		Header: []string{"transport", "unscheduled", "scheduled", "improvement"},
	}
	for _, e := range []struct {
		name string
		kind cluster.TransportKind
	}{
		{"TCP/GbE", cluster.TCPGbE},
		{"TCP/IPoIB", cluster.TCPoIB},
		{"RDMA", cluster.RDMA},
	} {
		times := map[bool]time.Duration{}
		for _, sched := range []bool{false, true} {
			res, err := RunTPCH(cluster.Config{
				Servers:          f.Servers,
				WorkersPerServer: f.Workers,
				Transport:        e.kind,
				Scheduling:       sched,
				TimeScale:        f.TimeScale,
			}, f.Workload)
			if err != nil {
				return nil, err
			}
			times[sched] = res.Total
		}
		imp := times[false].Seconds()/times[true].Seconds() - 1
		out = append(out, SchedulingImpactPoint{Transport: e.name, Improvement: imp})
		tab.Add(e.name, Dur(times[false]), Dur(times[true]), fmt.Sprintf("%+.1f%%", imp*100))
	}
	tab.Fprint(w)
	return out, nil
}

// ScaleFactorScaling reruns the workload at SF and 3×SF (§4.3.3: HyPer
// 3.1×, Vectorwise 2.2×, MemSQL 3.4× from SF 100 → 300).
type ScaleFactorScaling struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
}

// Run executes the comparison and returns time(3×SF)/time(SF).
func (f ScaleFactorScaling) Run(w io.Writer) (float64, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	wl := f.Workload.withDefaults()
	cfg := cluster.Config{
		Servers:          f.Servers,
		WorkersPerServer: f.Workers,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        f.TimeScale,
	}
	small, err := RunTPCH(cfg, wl)
	if err != nil {
		return 0, err
	}
	big := wl
	big.SF = wl.SF * 3
	large, err := RunTPCH(cfg, big)
	if err != nil {
		return 0, err
	}
	ratio := large.Total.Seconds() / small.Total.Seconds()
	tab := &Table{
		Title:  "§4.3.3: input size scaling (SF → 3×SF)",
		Header: []string{"SF", "total", "ratio"},
	}
	tab.Add(fmt.Sprintf("%g", wl.SF), Dur(small.Total), "1.00")
	tab.Add(fmt.Sprintf("%g", big.SF), Dur(large.Total), F2(ratio))
	tab.Fprint(w)
	return ratio, nil
}

// Table1 prints the data-link standard comparison.
func Table1(w io.Writer) *Table {
	tab := &Table{
		Title:  "Table 1: network data link standards",
		Header: []string{"standard", "GB/s", "latency"},
	}
	for _, r := range []fabric.Rate{fabric.GbE, fabric.IB4xSDR, fabric.IB4xDDR, fabric.IB4xQDR, fabric.IB4xFDR, fabric.IB4xEDR} {
		tab.Add(fabric.NameOf(r), fmt.Sprintf("%.3g", float64(r)/1e9), fabric.LatencyOf(r).String())
	}
	tab.Fprint(w)
	return tab
}
