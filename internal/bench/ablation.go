package bench

import (
	"context"
	"io"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/queries"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// PreAggAblation quantifies the pre-aggregation optimization of
// Figure 6(c): group-bys either pre-aggregate locally before shuffling
// (the paper's plan) or ship raw rows and aggregate once after the
// exchange.
type PreAggAblation struct {
	SF        float64
	Servers   int
	Workers   int
	TimeScale float64
}

// PreAggResult reports both variants.
type PreAggResult struct {
	With, Without           time.Duration
	BytesWith, BytesWithout uint64
}

// Run executes the ablation on the aggregation-heavy queries.
func (f PreAggAblation) Run(w io.Writer) (PreAggResult, error) {
	if f.SF == 0 {
		f.SF = 0.05
	}
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	wl := Workload{SF: f.SF, Queries: []int{1, 13, 15, 20}}
	var out PreAggResult
	for _, disable := range []bool{false, true} {
		res, err := RunTPCH(cluster.Config{
			Servers:          f.Servers,
			WorkersPerServer: f.Workers,
			Transport:        cluster.RDMA,
			Scheduling:       true,
			DisablePreAgg:    disable,
			TimeScale:        f.TimeScale,
		}, wl)
		if err != nil {
			return out, err
		}
		if disable {
			out.Without = res.Total
			out.BytesWithout = res.Stats.BytesSent
		} else {
			out.With = res.Total
			out.BytesWith = res.Stats.BytesSent
		}
	}
	tab := &Table{
		Title:  "Ablation: pre-aggregation before group-by exchanges (Figure 6(c))",
		Header: []string{"variant", "time", "data shuffled"},
	}
	tab.Add("pre-aggregate", Dur(out.With), MB(out.BytesWith))
	tab.Add("raw shuffle", Dur(out.Without), MB(out.BytesWithout))
	tab.Fprint(w)
	return out, nil
}

// GroupJoinAblation compares HyPer's Γ⨝ groupjoin (used by Q18's plan)
// against the classical aggregate-then-join rewrite of the same query.
type GroupJoinAblation struct {
	SF        float64
	Servers   int
	Workers   int
	TimeScale float64
}

// q18AggThenJoin is TPC-H Q18 without the groupjoin: aggregate lineitem by
// orderkey into a separate hash table, then hash-join orders against it.
func q18AggThenJoin() *plan.Query {
	l := plan.Scan("lineitem", tpch.LineitemSchema())
	l = l.Project("l_orderkey", "l_quantity")
	sums := l.GroupBy([]string{"l_orderkey"},
		op.AggSpec{Kind: op.Sum, Name: "sum_qty", Arg: op.Col(1), ArgType: storage.TDecimal})
	o := plan.Scan("orders", tpch.OrdersSchema())
	o = o.ProjectCols([]int{
		o.Col("o_orderkey"), o.Col("o_custkey"), o.Col("o_totalprice"), o.Col("o_orderdate"),
	})
	j := o.Join(sums, []string{"o_orderkey"}, []string{"l_orderkey"},
		plan.JoinSpec{Type: op.Inner,
			ProbeOut: []string{"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"},
			BuildOut: []string{"sum_qty"}})
	big := j.Select(op.I64GT(j.Col("sum_qty"), 300*100))
	cust := plan.Scan("customer", tpch.CustomerSchema())
	f := big.Join(cust, []string{"o_custkey"}, []string{"c_custkey"},
		plan.JoinSpec{Type: op.Inner, Strategy: plan.BroadcastBuild,
			ProbeOut: []string{"o_orderkey", "o_totalprice", "o_orderdate", "sum_qty"},
			BuildOut: []string{"c_name", "c_custkey"}})
	f = f.Project("c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty")
	f = f.OrderBy([]op.SortKey{
		{Col: f.Col("o_totalprice"), Desc: true}, {Col: f.Col("o_orderdate")},
	}, 100)
	return plan.NewQuery("q18-agg-then-join", f)
}

// Run executes both Q18 variants and verifies they agree.
func (f GroupJoinAblation) Run(w io.Writer) (groupjoin, aggjoin time.Duration, err error) {
	if f.SF == 0 {
		f.SF = 0.05
	}
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	Warmup()
	c, err := cluster.New(cluster.Config{
		Servers:          f.Servers,
		WorkersPerServer: f.Workers,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        f.TimeScale,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	c.LoadTPCH(DB(f.SF, 42), false)

	run := func(q *plan.Query) (time.Duration, int, error) {
		var best time.Duration
		var rows int
		for r := 0; r < 2; r++ {
			res, stats, err := c.RunContext(context.Background(), q)
			if err != nil {
				return 0, 0, err
			}
			if r == 0 || stats.Duration < best {
				best = stats.Duration
			}
			rows = res.Rows()
		}
		return best, rows, nil
	}
	gjTime, gjRows, err := run(queries.MustBuild(18, queries.Params{SF: f.SF}))
	if err != nil {
		return 0, 0, err
	}
	ajTime, ajRows, err := run(q18AggThenJoin())
	if err != nil {
		return 0, 0, err
	}
	tab := &Table{
		Title:  "Ablation: Q18 via groupjoin (Γ⨝) vs aggregate-then-join",
		Header: []string{"plan", "time", "rows"},
	}
	tab.Add("groupjoin", Dur(gjTime), itoa(gjRows))
	tab.Add("agg-then-join", Dur(ajTime), itoa(ajRows))
	tab.Fprint(w)
	return gjTime, ajTime, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
