package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/queries"
	"hsqp/internal/sim"
)

// Chaos measures per-query fault tolerance end to end: a 3-server cluster
// (replica factor 2) loses one server mid-query — killed, hung, or
// partitioned — and the coordinator detects the loss, evicts the server,
// and transparently restarts the query on the survivors. Reported per
// fault kind: the undisturbed baseline latency, the end-to-end latency of
// the run that absorbed the fault, and the restart count. A final
// elasticity phase times online AddServer/RemoveServer membership changes
// (epoch bump + mesh rebuild + re-partitioning every table).
type Chaos struct {
	SF    float64 // scale factor (default 0.01)
	Query int     // statement (default 12)
}

// ChaosOutcome is one fault kind's measurement.
type ChaosOutcome struct {
	Kind      sim.FaultKind
	Baseline  time.Duration // same query, no fault, same initial cluster
	Disturbed time.Duration // wall time including detection + restart
	Restarts  int
	Survivors int
}

// ChaosResult aggregates the experiment.
type ChaosResult struct {
	Outcomes   []ChaosOutcome
	AddServer  time.Duration // online join: rebuild + re-partition
	DropServer time.Duration // graceful removal, same work
}

func (c Chaos) defaults() Chaos {
	if c.SF <= 0 {
		c.SF = 0.01
	}
	if c.Query <= 0 {
		c.Query = 12
	}
	return c
}

func (c Chaos) newCluster(hook func(sim.QueryPhase)) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Servers:           3,
		WorkersPerServer:  4,
		Transport:         cluster.RDMA,
		Scheduling:        true,
		TimeScale:         0.005,
		MorselSize:        4096,
		MessageSize:       64 * 1024,
		ReplicaFactor:     2,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
		PhaseHook:         hook,
	})
}

// Run executes the experiment. w may be nil for silent runs.
func (c Chaos) Run(w io.Writer) (ChaosResult, error) {
	c = c.defaults()
	var res ChaosResult
	db := DB(c.SF, 42)
	q := queries.MustBuild(c.Query, queries.Params{SF: c.SF})
	ctx := context.Background()

	for _, kind := range []sim.FaultKind{sim.FaultKill, sim.FaultHang, sim.FaultPartition} {
		var inj *sim.FaultInjector
		cl, err := c.newCluster(func(p sim.QueryPhase) { inj.OnPhase(p) })
		if err != nil {
			return res, err
		}
		inj = sim.NewFaultInjector(cl, sim.FaultPlan{Kind: kind, Server: 2, Phase: sim.PhaseExecuting})
		cl.LoadTPCH(db, false)

		// Baseline on the intact cluster: the injector only fires at the
		// executing phase of the *measured* run below — arm it afterwards.
		// sim.FaultInjector fires once, so run the baseline on a separate
		// uninjected cluster to keep the phases apart.
		base, err := c.newCluster(nil)
		if err != nil {
			cl.Close()
			return res, err
		}
		base.LoadTPCH(db, false)
		if _, _, err := base.RunContext(ctx, q); err != nil { // warm
			base.Close()
			cl.Close()
			return res, err
		}
		_, bstats, err := base.RunContext(ctx, q)
		base.Close()
		if err != nil {
			cl.Close()
			return res, err
		}

		t0 := time.Now()
		_, stats, err := cl.RunContext(ctx, q)
		wall := time.Since(t0)
		survivors := cl.Servers()
		cl.Close()
		if err != nil {
			return res, fmt.Errorf("chaos %v: %w", kind, err)
		}
		if stats.Restarts == 0 {
			return res, fmt.Errorf("chaos %v: query was never disturbed", kind)
		}
		res.Outcomes = append(res.Outcomes, ChaosOutcome{
			Kind:      kind,
			Baseline:  bstats.Duration,
			Disturbed: wall,
			Restarts:  stats.Restarts,
			Survivors: survivors,
		})
	}

	// Elasticity: time the online membership changes on a loaded cluster.
	cl, err := c.newCluster(nil)
	if err != nil {
		return res, err
	}
	defer cl.Close()
	cl.LoadTPCH(db, false)
	t0 := time.Now()
	id, err := cl.AddServer()
	if err != nil {
		return res, err
	}
	res.AddServer = time.Since(t0)
	if _, _, err := cl.RunContext(ctx, q); err != nil {
		return res, fmt.Errorf("post-join run: %w", err)
	}
	t0 = time.Now()
	if err := cl.RemoveServer(id); err != nil {
		return res, err
	}
	res.DropServer = time.Since(t0)
	if _, _, err := cl.RunContext(ctx, q); err != nil {
		return res, fmt.Errorf("post-removal run: %w", err)
	}

	if w != nil {
		tab := &Table{
			Title: fmt.Sprintf("Per-query fault tolerance (SF %g, q%d, 3 servers, replica factor 2)",
				c.SF, c.Query),
			Header: []string{"fault", "baseline", "with failover", "restarts", "survivors"},
		}
		for _, o := range res.Outcomes {
			tab.Add(o.Kind.String(), Dur(o.Baseline), Dur(o.Disturbed),
				fmt.Sprintf("%d", o.Restarts), fmt.Sprintf("%d", o.Survivors))
		}
		tab.Fprint(w)
		fmt.Fprintf(w, "online membership change: join %s, graceful removal %s (epoch bump + mesh rebuild + re-partition)\n",
			Dur(res.AddServer), Dur(res.DropServer))
	}
	return res, nil
}
