//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under the detector (instrumentation shifts the
// compute/network balance the skew figures measure).
const raceEnabled = false
