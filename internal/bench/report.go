// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation, each regenerating the corresponding
// rows/series from the simulated cluster. EXPERIMENTS.md records
// paper-vs-measured for every entry.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(width) {
				parts[i] = pad(c, width[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Dur formats a duration compactly.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// GeoMean returns the geometric mean of positive durations, in seconds.
func GeoMean(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		s := d.Seconds()
		if s <= 0 {
			s = 1e-9
		}
		sum += math.Log(s)
	}
	return math.Exp(sum / float64(len(ds)))
}

// MB renders byte counts as mega/gigabytes.
func MB(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	default:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	}
}
