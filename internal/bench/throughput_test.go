package bench

import (
	"bytes"
	"io"
	"testing"
)

// TestThroughputConcurrentSpeedup is the acceptance gate of the
// multi-query engine: 8 concurrent TPC-H Q12 streams on the simulated
// 3-server cluster must (a) produce byte-identical (canonical row order)
// per-query results to the same 8 queries run back-to-back, and (b) —
// without the race detector distorting the compute/network balance —
// achieve at least 1.5× the queries/sec of the serial baseline.
func TestThroughputConcurrentSpeedup(t *testing.T) {
	f := Throughput{}
	f.defaults()
	if f.Streams != 8 || f.Servers != 3 || len(f.Queries) != 1 || f.Queries[0] != 12 {
		t.Fatalf("acceptance workload drifted: %+v", f)
	}

	run := func() (ThroughputResult, error) {
		res, err := Throughput{}.Run(io.Discard)
		if err != nil {
			return res, err
		}
		for i := range res.SerialResults {
			if len(res.SerialResults[i]) == 0 {
				t.Fatalf("query %d: empty serial result", i)
			}
			if !bytes.Equal(res.SerialResults[i], res.ConcurrentResults[i]) {
				t.Fatalf("query %d: concurrent result differs from serial (%d vs %d bytes)",
					i, len(res.ConcurrentResults[i]), len(res.SerialResults[i]))
			}
		}
		return res, nil
	}

	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Log("race detector enabled: skipping the throughput assertion")
		return
	}
	// Timing acceptance with one retry: the figure is stable (~1.9x) but
	// CI machines stall.
	for attempt := 0; ; attempt++ {
		t.Logf("attempt %d: serial %v (%.1f qps), concurrent %v (%.1f qps), speedup %.2fx",
			attempt, res.SerialWall, res.SerialQPS, res.ConcurrentWall, res.ConcurrentQPS, res.Speedup)
		if res.Speedup >= 1.5 {
			return
		}
		if attempt >= 1 {
			t.Fatalf("concurrent throughput %.2fx of serial, want >= 1.5x", res.Speedup)
		}
		if res, err = run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestThroughputMixedStreams runs the Q1/Q12 mix end to end (the smoke
// configuration CI benches): every stream must complete with a conforming
// result.
func TestThroughputMixedStreams(t *testing.T) {
	res, err := Throughput{Streams: 4, Queries: []int{1, 12}, SF: 0.005}.Run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 4 {
		t.Fatalf("ran %d queries, want 4", res.Queries)
	}
	for i := range res.SerialResults {
		if !bytes.Equal(res.SerialResults[i], res.ConcurrentResults[i]) {
			t.Fatalf("query %d: concurrent result differs from serial", i)
		}
	}
	if res.ConcurrentQPS <= 0 || res.SerialQPS <= 0 {
		t.Fatalf("non-positive qps: %+v", res)
	}
}
