package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/fabric"
	"hsqp/internal/queries"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// Throughput measures multi-query throughput on one shared cluster: the
// same batch of TPC-H queries is executed once back-to-back (serial
// baseline) and once as N concurrent client streams running through a
// Session, reporting queries/second and the p50/p99 per-query latency of
// both modes. Concurrent streams overlap one query's network waits with
// another's compute — the wall-time win of making the whole stack
// multi-query.
type Throughput struct {
	Servers int // cluster size (default 3)
	Workers int // workers per server (default 4)
	Streams int // concurrent client streams (default 8)
	Rounds  int // queries issued per stream (default 1)
	// Queries are the TPC-H query numbers the streams cycle through
	// (stream i runs Queries[i%len]); default {12}.
	Queries []int
	// MaxConcurrent caps in-flight queries through the session (default:
	// Streams — every stream may be in flight).
	MaxConcurrent int
	SF            float64
	Transport     cluster.TransportKind
	// Rate is the link data rate; zero selects fabric.GbE (NOT the
	// transport's native default): the headline experiment runs RDMA
	// semantics on a GbE-speed link, isolating the wall-clock network
	// wait from TCP's modeled CPU cost. Pass the native rate (e.g.
	// fabric.IB4xQDR) explicitly to measure a fast link.
	Rate      fabric.Rate
	TimeScale float64 // default cluster.DefaultTimeScale
	// Scheduling overrides round-robin network scheduling (nil = on).
	Scheduling *bool
	// MessageSize overrides the exchange message size (0 = default 512 KB).
	MessageSize int
}

func (f *Throughput) defaults() {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.Streams == 0 {
		f.Streams = 8
	}
	if f.Rounds == 0 {
		f.Rounds = 1
	}
	if len(f.Queries) == 0 {
		f.Queries = []int{12}
	}
	if f.MaxConcurrent == 0 {
		f.MaxConcurrent = f.Streams
	}
	if f.SF == 0 {
		// Small per-query working set: per-query wall time is dominated by
		// network waits rather than by a saturated resource, which is the
		// regime where multi-query execution reclaims idle time. (At much
		// larger SF the single simulated GbE-rate link — or, on a 1-core
		// host, the CPU — is already saturated serially and concurrency
		// cannot multiply throughput.)
		f.SF = 0.005
	}
	if f.Rate == 0 {
		// Default the link to GbE rate regardless of transport semantics:
		// the headline experiment runs the paper's multiplexer (RDMA
		// semantics, no per-byte CPU cost) on a slow link, so queries are
		// genuinely network-bound and the wall-clock waits are overlappable.
		f.Rate = fabric.GbE
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
}

// ThroughputResult reports both modes of one Throughput run.
type ThroughputResult struct {
	Queries        int // total queries executed per mode
	SerialWall     time.Duration
	ConcurrentWall time.Duration
	SerialQPS      float64
	ConcurrentQPS  float64
	Speedup        float64 // ConcurrentQPS / SerialQPS
	SerialP50      time.Duration
	SerialP99      time.Duration
	ConcurrentP50  time.Duration
	ConcurrentP99  time.Duration
	// SerialWireBytes/ConcurrentWireBytes sum each mode's per-query exact
	// wire bytes (from the queries' own exchange sends), so the byte
	// accounting stays exact even while queries share the cluster.
	SerialWireBytes     uint64
	ConcurrentWireBytes uint64
	// Results holds one canonical per-query result encoding per batch
	// entry, serial mode first — the conformance hook for tests.
	SerialResults     [][]byte
	ConcurrentResults [][]byte
}

// percentile returns the nearest-rank percentile: for small samples
// (8 streams) p99 is the maximum, so a single straggler query is visible
// in the tracked tail-latency metric instead of being truncated away.
func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Run executes the workload and prints a two-row table.
func (f Throughput) Run(w io.Writer) (ThroughputResult, error) {
	f.defaults()
	Warmup()

	c, err := cluster.New(cluster.Config{
		Servers:          f.Servers,
		WorkersPerServer: f.Workers,
		Transport:        f.Transport,
		Rate:             f.Rate,
		Scheduling:       f.Scheduling == nil || *f.Scheduling,
		TimeScale:        f.TimeScale,
		MessageSize:      f.MessageSize,
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer c.Close()
	c.LoadTPCH(DB(f.SF, 42), false)

	total := f.Streams * f.Rounds
	qn := func(i int) int { return f.Queries[i%len(f.Queries)] }

	res := ThroughputResult{
		Queries:           total,
		SerialResults:     make([][]byte, total),
		ConcurrentResults: make([][]byte, total),
	}

	// Steady-state warmup: run the concurrent batch once unmeasured. The
	// multi-query working set needs several times the buffers of a single
	// query, and registering a fresh buffer with the HCA costs real
	// (modeled) CPU — the paper amortizes registration by pool reuse
	// (§2.2.2), so throughput is measured against warm pools, the way a
	// continuously serving cluster runs. Both measured phases share the
	// warmed state, keeping the comparison fair.
	{
		var wwg sync.WaitGroup
		warm := c.NewSession(cluster.SessionConfig{MaxConcurrent: f.MaxConcurrent, MaxQueued: f.Streams})
		for s := 0; s < f.Streams; s++ {
			wwg.Add(1)
			go func(s int) {
				defer wwg.Done()
				q, err := queries.Build(qn(s), queries.Params{SF: f.SF})
				if err != nil {
					return
				}
				_, _, _ = warm.RunContext(context.Background(), q)
			}(s)
		}
		wwg.Wait()
		warm.Close()
	}

	// Serial baseline: the same queries, back to back on the same cluster.
	serialLat := make([]time.Duration, total)
	serialStart := time.Now()
	for i := 0; i < total; i++ {
		q, err := queries.Build(qn(i), queries.Params{SF: f.SF})
		if err != nil {
			return res, err
		}
		t0 := time.Now()
		out, stats, err := c.RunContext(context.Background(), q)
		if err != nil {
			return res, fmt.Errorf("bench: serial q%d: %w", qn(i), err)
		}
		serialLat[i] = time.Since(t0)
		res.SerialWireBytes += stats.WireBytes()
		res.SerialResults[i] = CanonicalRows(out)
	}
	res.SerialWall = time.Since(serialStart)

	// Concurrent mode: Streams client goroutines, each issuing Rounds
	// queries through one admission-controlled session.
	sess := c.NewSession(cluster.SessionConfig{
		MaxConcurrent: f.MaxConcurrent,
		MaxQueued:     total, // a benchmark client never gets rejected
	})
	defer sess.Close()
	concLat := make([]time.Duration, total)
	errs := make([]error, f.Streams)
	// Accumulated in a typed atomic and published to the plain result
	// field only after wg.Wait(): mixing atomic adds with plain reads of
	// the same field is a race (atomicmix).
	var concWire atomic.Uint64
	var wg sync.WaitGroup
	concStart := time.Now()
	for s := 0; s < f.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < f.Rounds; r++ {
				i := s + r*f.Streams
				q, err := queries.Build(qn(i), queries.Params{SF: f.SF})
				if err != nil {
					errs[s] = err
					return
				}
				t0 := time.Now()
				out, stats, err := sess.RunContext(context.Background(), q)
				if err != nil {
					errs[s] = fmt.Errorf("bench: stream %d q%d: %w", s, qn(i), err)
					return
				}
				concLat[i] = time.Since(t0)
				concWire.Add(stats.WireBytes())
				res.ConcurrentResults[i] = CanonicalRows(out)
			}
		}(s)
	}
	wg.Wait()
	res.ConcurrentWireBytes = concWire.Load()
	res.ConcurrentWall = time.Since(concStart)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	res.SerialQPS = float64(total) / res.SerialWall.Seconds()
	res.ConcurrentQPS = float64(total) / res.ConcurrentWall.Seconds()
	if res.SerialQPS > 0 {
		res.Speedup = res.ConcurrentQPS / res.SerialQPS
	}
	res.SerialP50 = percentile(serialLat, 0.50)
	res.SerialP99 = percentile(serialLat, 0.99)
	res.ConcurrentP50 = percentile(concLat, 0.50)
	res.ConcurrentP99 = percentile(concLat, 0.99)

	if w != nil {
		tab := &Table{
			Title: fmt.Sprintf("Multi-query throughput — %d×q%v streams, %d servers, %v, SF %g",
				f.Streams, f.Queries, f.Servers, f.Transport, f.SF),
			Header: []string{"mode", "queries", "wall", "qps", "p50", "p99", "wire"},
		}
		tab.Add("serial", fmt.Sprintf("%d", total), Dur(res.SerialWall),
			F2(res.SerialQPS), Dur(res.SerialP50), Dur(res.SerialP99), MB(res.SerialWireBytes))
		tab.Add("concurrent", fmt.Sprintf("%d", total), Dur(res.ConcurrentWall),
			F2(res.ConcurrentQPS), Dur(res.ConcurrentP50), Dur(res.ConcurrentP99), MB(res.ConcurrentWireBytes))
		tab.Fprint(w)
		fmt.Fprintf(w, "throughput speedup: %.2fx\n", res.Speedup)
	}
	return res, nil
}

// CanonicalRows serializes a batch into a canonical byte string: every row
// is wire-encoded separately (the codec is deterministic for a schema) and
// the encoded rows are sorted before concatenation. Result row *order* is
// scheduling-dependent — hash tables drain in worker order — so byte-exact
// conformance across serial and concurrent executions compares canonical
// encodings.
func CanonicalRows(b *storage.Batch) []byte {
	c := ser.NewCodec(b.Schema)
	rows := make([][]byte, b.Rows())
	for i := range rows {
		rows[i] = c.EncodeRow(b, i, nil)
	}
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i], rows[j]) < 0 })
	var out []byte
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
