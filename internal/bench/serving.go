package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/queries"
	"hsqp/internal/serve"
)

// Serving measures the serving tier end to end over a loopback socket:
// cold statements (plan build + per-server validation compile + execution),
// plan-cache hits (execution only, result cache bypassed) and result-cache
// hits (no execution at all), then a mixed-tenant phase that exercises the
// weighted-fair admission under contention and reports per-tenant latency
// percentiles.
type Serving struct {
	Servers int     // cluster size (default 3)
	SF      float64 // scale factor (default 0.01)
	Slots   int     // concurrent execution slots (default 2)
	Iters   int     // warm samples per query per phase (default 5)
	Queries []int   // statements (default 1, 5, 6, 12, 14)

	// Fairness phase: per-tenant client streams and requests per stream.
	FairStreams  int // client connections per tenant (default 2)
	FairRequests int // requests per connection (default 10)
}

// ServingResult is the measured serving-path latency profile.
type ServingResult struct {
	ColdP50      time.Duration // build + prepare + execute
	PlanHitP50   time.Duration // execute only (result cache bypassed)
	ResultHitP50 time.Duration // cached bytes, no execution

	// Speedups are paired per query (cold sample vs that query's warm
	// median), then averaged — pooling across queries of different cost
	// would compare apples to oranges.
	PlanSpeedup   float64 // cold / plan-hit
	ResultSpeedup float64 // cold / result-hit

	Tenants []serve.TenantStats // fairness-phase snapshot (heavy w=4, light w=1)
}

func (s Serving) defaults() Serving {
	if s.Servers <= 0 {
		s.Servers = 3
	}
	if s.SF <= 0 {
		s.SF = 0.01
	}
	if s.Slots <= 0 {
		s.Slots = 2
	}
	if s.Iters <= 0 {
		s.Iters = 5
	}
	if len(s.Queries) == 0 {
		s.Queries = []int{1, 5, 6, 12, 14}
	}
	if s.FairStreams <= 0 {
		s.FairStreams = 2
	}
	if s.FairRequests <= 0 {
		s.FairRequests = 10
	}
	return s
}

// Run starts an in-process server, drives it through the wire protocol and
// reports latency per serving path. w may be nil for silent runs.
func (s Serving) Run(w io.Writer) (ServingResult, error) {
	s = s.defaults()
	var res ServingResult

	c, err := cluster.New(cluster.Config{
		Servers:          s.Servers,
		WorkersPerServer: 4,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        0.005,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()
	c.LoadTPCH(DB(s.SF, 42), false)

	srv := serve.New(serve.Config{
		Cluster: c,
		SF:      s.SF,
		Seed:    42,
		Tenants: map[string]int{"heavy": 4, "light": 1},
		Slots:   s.Slots,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	go srv.Serve(lis)
	defer srv.Shutdown()
	addr := lis.Addr().String()

	cl, err := serve.Dial(addr, "bench")
	if err != nil {
		return res, err
	}
	defer cl.Close()

	stmt := func(q int) string { return fmt.Sprintf("q%d", q) }
	bypass := serve.ExecOpts{BypassResultCache: true}

	// Warm the engine before timing anything: the first-ever execution of
	// a query pays worker-pool spin-up, codec-cache fills and cold data
	// structures that have nothing to do with plan preparation. Direct
	// cluster runs leave the server's plan cache untouched, so the cold
	// phase below still pays build + prepare — and only that — on top of a
	// warm execution path.
	for _, q := range s.Queries {
		qp, err := queries.Build(q, queries.Params{SF: s.SF})
		if err != nil {
			return res, err
		}
		if _, _, err := c.RunContext(context.Background(), qp); err != nil {
			return res, fmt.Errorf("warmup q%d: %w", q, err)
		}
	}

	// Phase 1 — cold: each statement's first request pays plan build, the
	// per-server validation compile and execution. A statement is cold only
	// once per epoch, so cold samples come from distinct queries.
	var cold, planHit, resultHit []time.Duration
	coldByQ := map[int]time.Duration{}
	for _, q := range s.Queries {
		_, st, err := cl.ExecWithOpts(stmt(q), bypass)
		if err != nil {
			return res, fmt.Errorf("cold q%d: %w", q, err)
		}
		if st.PlanHit {
			return res, fmt.Errorf("cold q%d unexpectedly hit the plan cache", q)
		}
		cold = append(cold, st.Wall)
		coldByQ[q] = st.Wall
	}

	// Phase 2 — plan-cache hits: same statements again, result cache still
	// bypassed, so the full execution runs on a cached plan.
	planHitByQ := map[int][]time.Duration{}
	for i := 0; i < s.Iters; i++ {
		for _, q := range s.Queries {
			_, st, err := cl.ExecWithOpts(stmt(q), bypass)
			if err != nil {
				return res, fmt.Errorf("planhit q%d: %w", q, err)
			}
			if !st.PlanHit {
				return res, fmt.Errorf("warm q%d missed the plan cache", q)
			}
			planHit = append(planHit, st.Wall)
			planHitByQ[q] = append(planHitByQ[q], st.Wall)
		}
	}

	// Phase 3 — result-cache hits: one priming execution per statement
	// fills the cache, then every repeat is served from encoded bytes.
	for _, q := range s.Queries {
		if _, _, err := cl.Exec(stmt(q)); err != nil {
			return res, fmt.Errorf("prime q%d: %w", q, err)
		}
	}
	resultHitByQ := map[int][]time.Duration{}
	for i := 0; i < s.Iters; i++ {
		for _, q := range s.Queries {
			_, st, err := cl.Exec(stmt(q))
			if err != nil {
				return res, fmt.Errorf("resulthit q%d: %w", q, err)
			}
			if !st.ResultHit {
				return res, fmt.Errorf("repeat q%d missed the result cache", q)
			}
			resultHit = append(resultHit, st.Wall)
			resultHitByQ[q] = append(resultHitByQ[q], st.Wall)
		}
	}

	res.ColdP50 = percentile(cold, 0.50)
	res.PlanHitP50 = percentile(planHit, 0.50)
	res.ResultHitP50 = percentile(resultHit, 0.50)
	pairedSpeedup := func(warm map[int][]time.Duration) float64 {
		var sum float64
		var n int
		for _, q := range s.Queries {
			w := percentile(warm[q], 0.50)
			if w > 0 {
				sum += float64(coldByQ[q]) / float64(w)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	res.PlanSpeedup = pairedSpeedup(planHitByQ)
	res.ResultSpeedup = pairedSpeedup(resultHitByQ)

	// Phase 4 — fairness: heavy (weight 4) and light (weight 1) tenants
	// saturate the slots with cache-bypassed executions; the QoS snapshot
	// then carries per-tenant queue/total p50/p99.
	var wg sync.WaitGroup
	errCh := make(chan error, 2*s.FairStreams)
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < s.FairStreams; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				tc, err := serve.Dial(addr, tenant)
				if err != nil {
					errCh <- err
					return
				}
				defer tc.Close()
				for r := 0; r < s.FairRequests; r++ {
					if _, _, err := tc.ExecWithOpts("q6", bypass); err != nil {
						errCh <- err
						return
					}
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return res, fmt.Errorf("fairness phase: %w", err)
	}
	for _, ts := range srv.TenantStats() {
		if ts.Tenant == "heavy" || ts.Tenant == "light" {
			res.Tenants = append(res.Tenants, ts)
		}
	}
	sort.Slice(res.Tenants, func(i, j int) bool { return res.Tenants[i].Tenant < res.Tenants[j].Tenant })

	if w != nil {
		tab := &Table{
			Title:  fmt.Sprintf("Serving paths (SF %g, %d servers, %d slots, loopback TCP)", s.SF, s.Servers, s.Slots),
			Header: []string{"path", "samples", "p50"},
		}
		tab.Add("cold (build+prepare+exec)", fmt.Sprintf("%d", len(cold)), Dur(res.ColdP50))
		tab.Add("plan-cache hit (exec only)", fmt.Sprintf("%d", len(planHit)), Dur(res.PlanHitP50))
		tab.Add("result-cache hit (no exec)", fmt.Sprintf("%d", len(resultHit)), Dur(res.ResultHitP50))
		tab.Fprint(w)
		fmt.Fprintf(w, "plan-cache speedup: %.2fx   result-cache speedup: %.2fx\n",
			res.PlanSpeedup, res.ResultSpeedup)

		ft := &Table{
			Title:  "Weighted-fair admission (heavy w=4 vs light w=1, saturated)",
			Header: []string{"tenant", "weight", "served", "queue p50", "queue p99", "total p50", "total p99"},
		}
		for _, ts := range res.Tenants {
			ft.Add(ts.Tenant, fmt.Sprintf("%d", ts.Weight), fmt.Sprintf("%d", ts.Served),
				Dur(ts.QueueP50), Dur(ts.QueueP99), Dur(ts.TotalP50), Dur(ts.TotalP99))
		}
		ft.Fprint(w)
	}
	return res, nil
}
