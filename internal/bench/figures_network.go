package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/rdma"
	"hsqp/internal/tcp"
)

// Figure4 prints the memory-bus trips of the classic I/O model vs data
// direct I/O (§2.1.1): DDIO cuts 3 bus transfers per side to 1, and NUIOA
// restricts DDIO to the NIC-local socket.
func Figure4(w io.Writer) *Table {
	tab := &Table{
		Title:  "Figure 4: memory-bus traffic per payload byte (model)",
		Header: []string{"configuration", "sender reads", "sender writes", "receiver reads", "receiver writes"},
	}
	// Classic I/O: app buffer read from RAM, socket-buffer copy through
	// RAM, NIC reads from RAM; receiver mirrors it.
	tab.Add("classic I/O", "3.00", "2.00", "2.00", "3.00")
	// DDIO, NIC-local thread: the paper's PCM measurement.
	tab.Add("DDIO, NUIOA-local", "1.03", "0.00", "0.00", "1.02")
	// DDIO defeated by a NUIOA-remote network thread.
	tab.Add("DDIO, NUIOA-remote", "2.11", "0.00", "1.50", "2.33")
	tab.Fprint(w)
	return tab
}

// TransportVariant is one bar of Figure 5.
type TransportVariant struct {
	Name string
	// TCP is nil for the RDMA variant.
	TCP *tcp.Config
}

// Figure5Variants returns the paper's tuning ladder.
func Figure5Variants() []TransportVariant {
	return []TransportVariant{
		{"TCP w/o offload", &tcp.Config{Mode: tcp.ModeDatagram, Offload: false, NICLocal: true}},
		{"default TCP", &tcp.Config{Mode: tcp.ModeDatagram, Offload: true, NICLocal: true}},
		{"TCP 64k MTU", &tcp.Config{Mode: tcp.ModeConnected, NICLocal: true}},
		{"TCP interrupts", &tcp.Config{Mode: tcp.ModeConnected, NICLocal: true, TunedInterrupts: true}},
		{"default RDMA", nil},
	}
}

// Figure5 runs the single-stream transport microbenchmark (§2.1.2):
// `Messages` transfers of `MessageSize` bytes between two servers,
// unidirectional and bidirectional.
type Figure5 struct {
	Messages    int
	MessageSize int
	TimeScale   float64
}

// Figure5Point is one variant's throughput in simulated GB/s.
type Figure5Point struct {
	Name           string
	Unidirectional float64
	Bidirectional  float64
}

// Run executes all variants.
func (f Figure5) Run(w io.Writer) ([]Figure5Point, error) {
	if f.Messages == 0 {
		f.Messages = 150
	}
	if f.MessageSize == 0 {
		f.MessageSize = memory.DefaultMessageSize
	}
	if f.TimeScale == 0 {
		f.TimeScale = 4
	}
	var out []Figure5Point
	tab := &Table{
		Title:  fmt.Sprintf("Figure 5: transport tuning (%d × %d KB, one stream)", f.Messages, f.MessageSize/1024),
		Header: []string{"variant", "unidirectional GB/s", "bidirectional GB/s"},
	}
	for _, v := range Figure5Variants() {
		uni, err := f.measure(v, false)
		if err != nil {
			return nil, err
		}
		bidi, err := f.measure(v, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure5Point{Name: v.Name, Unidirectional: uni, Bidirectional: bidi})
		tab.Add(v.Name, F2(uni), F2(bidi))
	}
	tab.Fprint(w)
	return out, nil
}

// measure runs one stream (or two opposing streams) and returns the
// per-stream payload throughput in simulated GB/s.
func (f Figure5) measure(v TransportVariant, bidi bool) (float64, error) {
	fab, err := fabric.New(fabric.Config{
		Ports:     2,
		Rate:      fabric.IB4xQDR,
		TimeScale: f.TimeScale,
	})
	if err != nil {
		return 0, err
	}
	topo := numa.TwoSocket()
	pools := [2]*memory.Pool{
		memory.NewPool(topo, numa.AllocLocal, f.MessageSize, nil),
		memory.NewPool(topo, numa.AllocLocal, f.MessageSize, nil),
	}
	done := [2]chan struct{}{make(chan struct{}, 1), make(chan struct{}, 1)}
	var counts [2]int
	var mu sync.Mutex
	endpoints := make([]mux.Transport, 2)
	for i := 0; i < 2; i++ {
		i := i
		onRecv := func(m *memory.Message) {
			m.Release()
			mu.Lock()
			counts[i]++
			c := counts[i]
			mu.Unlock()
			if c == f.Messages {
				done[i] <- struct{}{}
			}
		}
		onInline := func(int, uint32) {}
		if v.TCP != nil {
			endpoints[i] = tcp.NewEndpoint(fab, i, *v.TCP, pools[i].Get0, onRecv, onInline)
		} else {
			endpoints[i] = rdma.NewEndpoint(fab, i, pools[i].Get0, onRecv, onInline)
		}
	}
	fab.Start()
	for _, ep := range endpoints {
		ep.Start()
	}
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
		fab.Stop()
	}()

	send := func(from int) {
		to := 1 - from
		for k := 0; k < f.Messages; k++ {
			m := pools[from].Get0()
			m.Content = m.Content[:f.MessageSize-memory.HeaderSize]
			endpoints[from].Send(to, m)
		}
	}
	start := time.Now()
	if bidi {
		go send(1)
	}
	go send(0)
	<-done[1]
	if bidi {
		<-done[0]
	}
	wall := time.Since(start)
	simSeconds := wall.Seconds() / f.TimeScale
	perStream := float64(f.Messages) * float64(f.MessageSize) / simSeconds / 1e9
	return perStream, nil
}

// Figure10b measures all-to-all throughput with and without round-robin
// network scheduling as the cluster grows (paper: +40% at 8 servers).
type Figure10b struct {
	ServerList  []int
	MessagesPer int
	MessageSize int
	TimeScale   float64
}

// Figure10bPoint is one cluster size's per-server throughput (GB/s).
type Figure10bPoint struct {
	Servers              int
	AllToAll, RoundRobin float64
}

// Run executes the sweep.
func (f Figure10b) Run(w io.Writer) ([]Figure10bPoint, error) {
	if len(f.ServerList) == 0 {
		f.ServerList = []int{2, 4, 6, 8}
	}
	if f.MessagesPer == 0 {
		f.MessagesPer = 240
	}
	if f.MessageSize == 0 {
		f.MessageSize = memory.DefaultMessageSize
	}
	if f.TimeScale == 0 {
		f.TimeScale = 2
	}
	var out []Figure10bPoint
	tab := &Table{
		Title:  "Figure 10(b): all-to-all vs round-robin scheduling",
		Header: []string{"servers", "all-to-all GB/s", "round-robin GB/s", "improvement"},
	}
	for _, n := range f.ServerList {
		p := Figure10bPoint{Servers: n}
		for _, sched := range []bool{false, true} {
			// Average several trials: contention patterns vary run to run.
			var sum float64
			const trials = 3
			for t := 0; t < trials; t++ {
				thr, err := allToAll(n, f.MessagesPer, f.MessageSize, f.TimeScale, sched)
				if err != nil {
					return nil, err
				}
				sum += thr
			}
			thr := sum / trials
			if sched {
				p.RoundRobin = thr
			} else {
				p.AllToAll = thr
			}
		}
		out = append(out, p)
		tab.Add(fmt.Sprintf("%d", n), F2(p.AllToAll), F2(p.RoundRobin),
			fmt.Sprintf("%+.0f%%", (p.RoundRobin/p.AllToAll-1)*100))
	}
	tab.Fprint(w)
	return out, nil
}

// Figure10c sweeps the message size under scheduling: small messages
// cannot amortize the synchronization barriers; ≥512 KB hides them
// completely.
type Figure10c struct {
	Servers    int
	TotalBytes int
	Sizes      []int
	TimeScale  float64
}

// Figure10cPoint is one message size's throughput.
type Figure10cPoint struct {
	Size       int
	Throughput float64
}

// Run executes the sweep.
func (f Figure10c) Run(w io.Writer) ([]Figure10cPoint, error) {
	if f.Servers == 0 {
		f.Servers = 4
	}
	if f.TotalBytes == 0 {
		f.TotalBytes = 48 << 20
	}
	if len(f.Sizes) == 0 {
		f.Sizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 512 << 10, 2 << 20}
	}
	if f.TimeScale == 0 {
		f.TimeScale = 2
	}
	var out []Figure10cPoint
	tab := &Table{
		Title:  fmt.Sprintf("Figure 10(c): throughput vs message size (%d servers, scheduled)", f.Servers),
		Header: []string{"message size", "GB/s"},
	}
	for _, size := range f.Sizes {
		per := f.TotalBytes / size
		if per < 8 {
			per = 8
		}
		thr, err := allToAll(f.Servers, per, size, f.TimeScale, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure10cPoint{Size: size, Throughput: thr})
		tab.Add(fmt.Sprintf("%dKB", size/1024), F2(thr))
	}
	tab.Fprint(w)
	return out, nil
}

// allToAll runs the raw shuffle microbenchmark through the real
// multiplexers: every server sends msgsPer messages of msgSize bytes,
// spread round-robin over all other servers, and consumes its inbound
// stream. Returns the per-server payload throughput in simulated GB/s.
func allToAll(servers, msgsPer, msgSize int, timeScale float64, scheduling bool) (float64, error) {
	fab, err := fabric.New(fabric.Config{
		Ports:     servers,
		Rate:      fabric.IB4xQDR,
		TimeScale: timeScale,
	})
	if err != nil {
		return 0, err
	}
	topo := numa.TwoSocket()
	muxes := make([]*mux.Mux, servers)
	endpoints := make([]*rdma.Endpoint, servers)
	recvs := make([]*mux.ExchangeRecv, servers)
	const exID = int32(7)
	for i := 0; i < servers; i++ {
		pool := memory.NewPool(topo, numa.AllocLocal, msgSize, nil)
		m, err := mux.New(mux.Config{
			Server:     i,
			Servers:    servers,
			Topology:   topo,
			Pool:       pool,
			Scheduling: scheduling,
		})
		if err != nil {
			return 0, err
		}
		ep := rdma.NewEndpoint(fab, i, m.RecvAlloc, m.OnRecv, m.OnInline)
		m.SetTransport(ep)
		muxes[i] = m
		endpoints[i] = ep
		recvs[i] = m.OpenExchange(0, exID, servers)
	}
	fab.Start()
	for i, m := range muxes {
		endpoints[i].Start()
		m.Start()
	}
	defer func() {
		for i, m := range muxes {
			m.Close()
			endpoints[i].Close()
		}
		fab.Stop()
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < servers; i++ {
		i := i
		pool := memory.NewPool(topo, numa.AllocLocal, msgSize, nil)
		wg.Add(1)
		go func() { // producer
			defer wg.Done()
			// Receivers assert strictly increasing per-sender sequence
			// numbers, so stamp one counter per destination.
			seq := make([]uint32, servers)
			for k := 0; k < msgsPer; k++ {
				dst := (i + 1 + k%(servers-1)) % servers
				m := pool.Get(0)
				m.Content = m.Content[:msgSize-memory.HeaderSize]
				m.ExchangeID = exID
				m.Sender = i
				m.Seq = seq[dst]
				seq[dst]++
				muxes[i].Send(dst, m)
			}
			for d := 0; d < servers; d++ {
				last := pool.Get(0)
				last.ExchangeID = exID
				last.Sender = i
				last.Last = true
				last.Seq = seq[d]
				muxes[i].Send(d, last)
			}
		}()
		wg.Add(1)
		go func() { // consumer
			defer wg.Done()
			for {
				msg := recvs[i].Recv(0)
				if msg == nil {
					return
				}
				msg.Release()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	simSeconds := wall.Seconds() / timeScale
	perServer := float64(msgsPer) * float64(msgSize) / simSeconds / 1e9
	return perServer, nil
}
