package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/competitors"
	"hsqp/internal/fabric"
	"hsqp/internal/tpch"
)

// Figure12a compares the modeled distributed SQL systems by
// queries-per-hour on the same workload (paper: Spark 77, Impala 123,
// MemSQL 544, Vectorwise 3856, HyPer chunked 16090 / partitioned 20739).
type Figure12a struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
	// IncludeInterpreted also runs the very slow Spark/Impala styles
	// (expensive; off for quick runs).
	IncludeInterpreted bool
}

// Figure12aPoint is one system's throughput.
type Figure12aPoint struct {
	System string
	QpH    float64
}

// Run executes the comparison.
func (f Figure12a) Run(w io.Writer) ([]Figure12aPoint, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	styles := []competitors.Style{competitors.MemSQLStyle, competitors.VectorwiseStyle}
	if f.IncludeInterpreted {
		styles = append([]competitors.Style{competitors.SparkSQLStyle, competitors.ImpalaStyle}, styles...)
	}
	var out []Figure12aPoint
	tab := &Table{
		Title:  "Figure 12(a): queries per hour by system style",
		Header: []string{"system", "placement", "queries/hour"},
	}
	run := func(name string, cfg cluster.Config, partitioned bool) error {
		wl := f.Workload
		wl.Partitioned = partitioned
		res, err := RunTPCH(cfg, wl)
		if err != nil {
			return err
		}
		out = append(out, Figure12aPoint{System: name, QpH: res.QpH()})
		placement := "chunked"
		if partitioned {
			placement = "partitioned"
		}
		tab.Add(name, placement, fmt.Sprintf("%.0f", res.QpH()))
		return nil
	}
	for _, s := range styles {
		cfg := competitors.ClusterConfig(s, f.Servers, f.Workers, f.TimeScale)
		if err := run(s.String(), cfg, s.Partitioned()); err != nil {
			return nil, err
		}
	}
	hyper := competitors.ClusterConfig(competitors.HyPerStyle, f.Servers, f.Workers, f.TimeScale)
	if err := run("HyPer (chunked)", hyper, false); err != nil {
		return nil, err
	}
	if err := run("HyPer (partitioned)", hyper, true); err != nil {
		return nil, err
	}
	tab.Fprint(w)
	return out, nil
}

// Figure12b sweeps the network bandwidth (GbE → SDR → DDR → QDR) and
// reports each system's speedup over its own GbE run. Paper: HyPer-RDMA
// scales ~12×, TCP engines plateau around 4×, MemSQL ~1.2×.
type Figure12b struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
}

// Figure12bPoint is one (system, rate) speedup over GbE.
type Figure12bPoint struct {
	System  string
	Rate    fabric.Rate
	Speedup float64
}

// Run executes the sweep.
func (f Figure12b) Run(w io.Writer) ([]Figure12bPoint, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	rates := []fabric.Rate{fabric.GbE, fabric.IB4xSDR, fabric.IB4xDDR, fabric.IB4xQDR}
	systems := []struct {
		name        string
		style       competitors.Style
		partitioned bool
	}{
		{"HyPer (RDMA)", competitors.HyPerStyle, false},
		{"HyPer (TCP)", competitors.HyPerTCPStyle, false},
		{"Vectorwise-style", competitors.VectorwiseStyle, true},
		{"MemSQL-style", competitors.MemSQLStyle, true},
	}
	var out []Figure12bPoint
	tab := &Table{
		Title:  "Figure 12(b): speedup over GbE as the data rate grows",
		Header: []string{"system", "GbE", "SDR", "DDR", "QDR"},
	}
	for _, sys := range systems {
		base := time.Duration(0)
		row := []string{sys.name}
		for _, rate := range rates {
			cfg := competitors.ClusterConfig(sys.style, f.Servers, f.Workers, f.TimeScale)
			cfg.Rate = rate
			wl := f.Workload
			wl.Partitioned = sys.partitioned
			res, err := RunTPCH(cfg, wl)
			if err != nil {
				return nil, err
			}
			if rate == fabric.GbE {
				base = res.Total
			}
			sp := base.Seconds() / res.Total.Seconds()
			out = append(out, Figure12bPoint{System: sys.name, Rate: rate, Speedup: sp})
			row = append(row, F2(sp))
		}
		tab.Add(row...)
	}
	tab.Fprint(w)
	return out, nil
}

// Table2 produces the detailed per-query comparison: runtimes per system,
// messages sent and data shuffled, geometric mean and queries/hour.
type Table2 struct {
	Workload  Workload
	Servers   int
	Workers   int
	TimeScale float64
	// IncludeInterpreted adds the slow Spark-/Impala-style engines.
	IncludeInterpreted bool
}

// Table2Column is one system's full-run measurement.
type Table2Column struct {
	System   string
	Times    map[int]time.Duration
	Shuffled uint64
	Messages uint64
	Total    time.Duration
	GeoMean  float64
	QpH      float64
}

// Run executes the comparison.
func (f Table2) Run(w io.Writer) ([]Table2Column, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	type sys struct {
		name        string
		style       competitors.Style
		partitioned bool
	}
	systems := []sys{
		{"MemSQL-style", competitors.MemSQLStyle, true},
		{"Vectorwise-style", competitors.VectorwiseStyle, true},
		{"HyPer (chunked)", competitors.HyPerStyle, false},
		{"HyPer (partitioned)", competitors.HyPerStyle, true},
	}
	if f.IncludeInterpreted {
		systems = append([]sys{
			{"SparkSQL-style", competitors.SparkSQLStyle, false},
			{"Impala-style", competitors.ImpalaStyle, false},
		}, systems...)
	}
	var cols []Table2Column
	for _, s := range systems {
		cfg := competitors.ClusterConfig(s.style, f.Servers, f.Workers, f.TimeScale)
		wl := f.Workload
		wl.Partitioned = s.partitioned
		res, err := RunTPCH(cfg, wl)
		if err != nil {
			return nil, err
		}
		cols = append(cols, Table2Column{
			System:   s.name,
			Times:    res.Times,
			Shuffled: res.Stats.BytesSent,
			Messages: res.Stats.MessagesSent,
			Total:    res.Total,
			GeoMean:  res.GeoMeanSeconds(),
			QpH:      res.QpH(),
		})
	}
	// Render.
	wl := f.Workload.withDefaults()
	qs := append([]int{}, wl.Queries...)
	sort.Ints(qs)
	tab := &Table{Title: "Table 2: detailed query runtimes", Header: []string{"query"}}
	for _, c := range cols {
		tab.Header = append(tab.Header, c.System)
	}
	for _, q := range qs {
		row := []string{fmt.Sprintf("Q%d", q)}
		for _, c := range cols {
			row = append(row, Dur(c.Times[q]))
		}
		tab.Add(row...)
	}
	addSummary := func(label string, fn func(Table2Column) string) {
		row := []string{label}
		for _, c := range cols {
			row = append(row, fn(c))
		}
		tab.Add(row...)
	}
	addSummary("messages", func(c Table2Column) string { return fmt.Sprintf("%d", c.Messages) })
	addSummary("data shuffled", func(c Table2Column) string { return MB(c.Shuffled) })
	addSummary("total", func(c Table2Column) string { return Dur(c.Total) })
	addSummary("geo mean (s)", func(c Table2Column) string { return fmt.Sprintf("%.4f", c.GeoMean) })
	addSummary("queries/hour", func(c Table2Column) string { return fmt.Sprintf("%.0f", c.QpH) })
	tab.Fprint(w)
	return cols, nil
}

// Skew reproduces the §3.1 analysis: the largest partition's overload
// factor under Zipf-skewed keys for 240 parallel units (classic exchange,
// 6 servers × 40 threads) vs 6 (hybrid parallelism).
type Skew struct {
	Zipf   float64
	Values int
	Draws  int
}

// SkewPoint is one unit-count's overload factor.
type SkewPoint struct {
	Units    int
	Overload float64 // max partition ÷ ideal share
}

// Run executes the analysis.
func (f Skew) Run(w io.Writer) []SkewPoint {
	if f.Zipf == 0 {
		f.Zipf = 0.84
	}
	if f.Values == 0 {
		f.Values = 1_000_000
	}
	if f.Draws == 0 {
		f.Draws = 2_000_000
	}
	var out []SkewPoint
	tab := &Table{
		Title:  fmt.Sprintf("§3.1: skew impact (Zipf z=%.2f): overload of the largest partition", f.Zipf),
		Header: []string{"parallel units", "max/ideal", "input increase"},
	}
	for _, units := range []int{6, 240} {
		ov := tpch.MaxPartitionShare(f.Values, f.Zipf, f.Draws, units, 7)
		out = append(out, SkewPoint{Units: units, Overload: ov})
		tab.Add(fmt.Sprintf("%d", units), F2(ov), fmt.Sprintf("%+.1f%%", (ov-1)*100))
	}
	tab.Fprint(w)
	return out
}
