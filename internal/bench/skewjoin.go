package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/exchange"
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// SkewedJoin complements Figure 2: it isolates the mechanism that makes
// classic exchange operators plateau (§3.1). The probe relation's join key
// follows a Zipf distribution; the classic model assigns each of the n×t
// hash partitions to one fixed worker, so the worker owning the heavy keys
// becomes the straggler the whole query waits for, while hybrid
// parallelism partitions only across the n servers and lets all of a
// server's workers steal messages from the overloaded partition.
//
// Three engines are compared:
//
//   - static: hybrid parallelism with static hash partitioning — tolerates
//     moderate skew (per-server stealing) but still ships every tuple of a
//     heavy key to its one owning server;
//   - classic: the classic exchange-operator model (n×t fixed parallel
//     units, no stealing) — the Figure 2 baseline;
//   - adaptive: hybrid parallelism plus Flow-Join-style skew handling —
//     heavy hitters are detected online through a Space-Saving sketch over
//     the first morsels, their build rows are selectively broadcast, and
//     their probe tuples stay on the origin server.
type SkewedJoin struct {
	Servers   int
	Workers   int
	Rows      int     // probe rows
	Keys      int     // distinct join keys
	Zipf      float64 // skew parameter (paper analyzes z = 0.84)
	TimeScale float64
	Runs      int // best-of runs per engine (default 2)
	// Transport selects the simulated interconnect (zero value: RDMA).
	// Skew handling is about the straggler's network link, so the figure is
	// most telling on a bandwidth-limited transport (TCPGbE): on the
	// simulated Infiniband fabric this workload is compute-bound and the
	// static and adaptive engines converge.
	Transport cluster.TransportKind
	// Skew tunes the adaptive engine. All-zero selects a grid tuned for
	// this workload: sample two early morsels' worth of keys and treat the
	// whole detectable Zipf head as hot (the build side is tiny, so
	// broadcasting a generous hot set costs almost nothing while every hot
	// probe tuple kept off the wire relieves the straggler link).
	Skew exchange.SkewConfig
}

// SkewedJoinPoint is one engine's runtime at one skew level.
type SkewedJoinPoint struct {
	Engine string
	Zipf   float64
	Time   time.Duration
	Bytes  uint64 // per-query exact wire bytes (summed from the query's exchange sends)
}

// skewEngine is one cell of the comparison grid: label, classic exchange
// model, join strategy.
type skewEngine struct {
	name     string
	classic  bool
	strategy plan.JoinStrategy
}

var skewEngines = []skewEngine{
	{"static", false, plan.PartitionBoth},
	{"classic", true, plan.PartitionBoth},
	{"adaptive", false, plan.SkewAdaptive},
}

// buildSkewTables generates the synthetic build/probe relations.
func buildSkewTables(rows, keys int, z float64) (build, probe *storage.Batch) {
	buildSchema := storage.NewSchema(
		storage.Field{Name: "r_key", Type: storage.TInt64},
		storage.Field{Name: "r_payload", Type: storage.TInt64},
	)
	build = storage.NewBatch(buildSchema, keys)
	for k := 0; k < keys; k++ {
		build.AppendRow(int64(k), int64(k*7))
	}
	probe = storage.NewBatch(skewProbeSchema(), rows)
	zf := tpch.NewZipf(keys, z, 99)
	// The pad models the payload columns a real probe tuple drags through
	// the shuffle: the straggler's link carries full tuples, not bare keys.
	pad := "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := 0; i < rows; i++ {
		probe.AppendRow(int64(zf.Next()), int64(i), pad)
	}
	return build, probe
}

// skewQuery builds the shuffle-join-aggregate query under one strategy.
func skewQuery(strategy plan.JoinStrategy) *plan.Query {
	s := plan.Scan("skew_probe", skewProbeSchema())
	r := plan.Scan("skew_build", skewBuildSchema())
	j := s.Join(r, []string{"s_key"}, []string{"r_key"},
		plan.JoinSpec{Type: op.Inner, Strategy: strategy,
			ProbeOut: []string{"s_key", "s_val"},
			BuildOut: []string{"r_payload"}})
	g := j.GroupBy([]string{"s_key"},
		op.AggSpec{Kind: op.Sum, Name: "v", Arg: op.Col(j.Col("s_val")), ArgType: storage.TInt64})
	top := g.OrderBy([]op.SortKey{{Col: 1, Desc: true}}, 10)
	return plan.NewQuery("skewjoin", top)
}

func skewBuildSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Field{Name: "r_key", Type: storage.TInt64},
		storage.Field{Name: "r_payload", Type: storage.TInt64},
	)
}

func skewProbeSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Field{Name: "s_key", Type: storage.TInt64},
		storage.Field{Name: "s_val", Type: storage.TInt64},
		storage.Field{Name: "s_pad", Type: storage.TString},
	)
}

// RunEngine executes one engine of the comparison and returns the query
// result with the best-of-Runs stats (used by the conformance test to
// check all three engines produce identical rows).
func (f SkewedJoin) RunEngine(name string, build, probe *storage.Batch) (*storage.Batch, cluster.QueryStats, error) {
	var eng *skewEngine
	for i := range skewEngines {
		if skewEngines[i].name == name {
			eng = &skewEngines[i]
			break
		}
	}
	if eng == nil {
		return nil, cluster.QueryStats{}, fmt.Errorf("bench: unknown skew engine %q", name)
	}
	c, err := cluster.New(cluster.Config{
		Servers:          f.Servers,
		WorkersPerServer: f.Workers,
		Transport:        f.Transport,
		Scheduling:       true,
		Classic:          eng.classic,
		Skew:             f.Skew,
		TimeScale:        f.TimeScale,
		// The synthetic query drops s_pad at the probe, so column pruning
		// would (correctly) strip it below the exchange and dissolve the
		// very network bottleneck this figure isolates. Keep the modeled
		// payload on the wire.
		NoPushdown: true,
	})
	if err != nil {
		return nil, cluster.QueryStats{}, err
	}
	defer c.Close()
	c.LoadTable("skew_build", build, storage.PlacementChunked, 0)
	c.LoadTable("skew_probe", probe, storage.PlacementChunked, 0)
	runs := f.Runs
	if runs <= 0 {
		runs = 2
	}
	var bestRes *storage.Batch
	var bestStats cluster.QueryStats
	for r := 0; r < runs; r++ {
		res, stats, err := c.RunContext(context.Background(), skewQuery(eng.strategy))
		if err != nil {
			return nil, cluster.QueryStats{}, err
		}
		if r == 0 || stats.Duration < bestStats.Duration {
			bestRes, bestStats = res, stats
		}
	}
	return bestRes, bestStats, nil
}

func (f *SkewedJoin) defaults() {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.Rows == 0 {
		f.Rows = 600_000
	}
	if f.Keys == 0 {
		f.Keys = 20_000
	}
	if f.Zipf == 0 {
		// With only n×t = 12 parallel units (the host bounds t), z must be
		// higher than the paper's 0.84 to overload one unit the way 240
		// units are overloaded at z = 0.84: the paper's point is that the
		// *more* parallel units there are, the *less* skew is needed to
		// create a straggler.
		f.Zipf = 1.1
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	if f.Skew == (exchange.SkewConfig{}) {
		f.Skew = exchange.SkewConfig{SampleBudget: 4096, HotFraction: 0.002, MaxHot: 128}
	}
}

// Run executes the three-engine comparison at one skew level.
func (f SkewedJoin) Run(w io.Writer) ([]SkewedJoinPoint, error) {
	f.defaults()
	build, probe := buildSkewTables(f.Rows, f.Keys, f.Zipf)

	var out []SkewedJoinPoint
	tab := &Table{
		Title: fmt.Sprintf("§3.1 skewed shuffle join (Zipf z=%.2f, %d rows): static vs classic vs adaptive",
			f.Zipf, f.Rows),
		Header: []string{"engine", "time", "shuffled", "speedup vs static"},
	}
	var staticTime time.Duration
	for _, eng := range skewEngines {
		_, stats, err := f.RunEngine(eng.name, build, probe)
		if err != nil {
			return nil, err
		}
		if eng.name == "static" {
			staticTime = stats.Duration
		}
		out = append(out, SkewedJoinPoint{Engine: eng.name, Zipf: f.Zipf, Time: stats.Duration, Bytes: stats.WireBytes()})
		tab.Add(eng.name, Dur(stats.Duration), MB(stats.WireBytes()),
			F2(staticTime.Seconds()/stats.Duration.Seconds())+"x")
	}
	tab.Fprint(w)
	return out, nil
}

// SkewSweep is the skew-tolerance figure: the three engines across a Zipf
// exponent sweep. At z = 0 (uniform) the adaptive engine should cost the
// same as static partitioning (the sketch finds no heavy hitters and every
// tuple keeps its hash route); as z grows, static partitioning degrades
// into a straggler-bound shuffle while the adaptive engine spreads every
// heavy key over all servers.
type SkewSweep struct {
	SkewedJoin
	// ZipfList are the skew levels swept (default 0, 0.6, 0.9, 1.1, 1.4).
	ZipfList []float64
}

// Run executes the sweep.
func (f SkewSweep) Run(w io.Writer) ([]SkewedJoinPoint, error) {
	f.defaults()
	if len(f.ZipfList) == 0 {
		f.ZipfList = []float64{0, 0.6, 0.9, 1.1, 1.4}
	}
	tab := &Table{
		Title: fmt.Sprintf("adaptive skew handling: shuffle join runtime across Zipf skew (%d rows, %d servers)",
			f.Rows, f.Servers),
		Header: []string{"zipf", "static", "classic", "adaptive", "adaptive speedup", "bytes saved"},
	}
	var out []SkewedJoinPoint
	for _, z := range f.ZipfList {
		build, probe := buildSkewTables(f.Rows, f.Keys, z)
		times := map[string]time.Duration{}
		bytes := map[string]uint64{}
		for _, eng := range skewEngines {
			run := f.SkewedJoin
			run.Zipf = z
			_, stats, err := run.RunEngine(eng.name, build, probe)
			if err != nil {
				return nil, err
			}
			times[eng.name] = stats.Duration
			bytes[eng.name] = stats.WireBytes()
			out = append(out, SkewedJoinPoint{Engine: eng.name, Zipf: z, Time: stats.Duration, Bytes: stats.WireBytes()})
		}
		saved := "-"
		if bytes["static"] > bytes["adaptive"] {
			saved = MB(bytes["static"] - bytes["adaptive"])
		}
		tab.Add(fmt.Sprintf("%.1f", z), Dur(times["static"]), Dur(times["classic"]), Dur(times["adaptive"]),
			F2(times["static"].Seconds()/times["adaptive"].Seconds())+"x", saved)
	}
	tab.Fprint(w)
	return out, nil
}
