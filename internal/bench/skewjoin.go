package bench

import (
	"fmt"
	"io"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// SkewedJoin complements Figure 2: it isolates the mechanism that makes
// classic exchange operators plateau (§3.1). The probe relation's join key
// follows a Zipf distribution; the classic model assigns each of the n×t
// hash partitions to one fixed worker, so the worker owning the heavy keys
// becomes the straggler the whole query waits for, while hybrid
// parallelism partitions only across the n servers and lets all of a
// server's workers steal messages from the overloaded partition.
type SkewedJoin struct {
	Servers   int
	Workers   int
	Rows      int     // probe rows
	Keys      int     // distinct join keys
	Zipf      float64 // skew parameter (paper analyzes z = 0.84)
	TimeScale float64
}

// SkewedJoinPoint is one engine's runtime.
type SkewedJoinPoint struct {
	Engine string
	Time   time.Duration
}

// buildSkewTables generates the synthetic build/probe relations.
func buildSkewTables(rows, keys int, z float64) (build, probe *storage.Batch) {
	buildSchema := storage.NewSchema(
		storage.Field{Name: "r_key", Type: storage.TInt64},
		storage.Field{Name: "r_payload", Type: storage.TInt64},
	)
	build = storage.NewBatch(buildSchema, keys)
	for k := 0; k < keys; k++ {
		build.AppendRow(int64(k), int64(k*7))
	}
	probeSchema := storage.NewSchema(
		storage.Field{Name: "s_key", Type: storage.TInt64},
		storage.Field{Name: "s_val", Type: storage.TInt64},
	)
	probe = storage.NewBatch(probeSchema, rows)
	zf := tpch.NewZipf(keys, z, 99)
	for i := 0; i < rows; i++ {
		probe.AppendRow(int64(zf.Next()), int64(i))
	}
	return build, probe
}

// Run executes the comparison.
func (f SkewedJoin) Run(w io.Writer) ([]SkewedJoinPoint, error) {
	if f.Servers == 0 {
		f.Servers = 3
	}
	if f.Workers == 0 {
		f.Workers = 4
	}
	if f.Rows == 0 {
		f.Rows = 600_000
	}
	if f.Keys == 0 {
		f.Keys = 20_000
	}
	if f.Zipf == 0 {
		// With only n×t = 12 parallel units (the host bounds t), z must be
		// higher than the paper's 0.84 to overload one unit the way 240
		// units are overloaded at z = 0.84: the paper's point is that the
		// *more* parallel units there are, the *less* skew is needed to
		// create a straggler.
		f.Zipf = 1.1
	}
	if f.TimeScale == 0 {
		f.TimeScale = cluster.DefaultTimeScale
	}
	build, probe := buildSkewTables(f.Rows, f.Keys, f.Zipf)

	makeQuery := func() *plan.Query {
		s := plan.Scan("skew_probe", probe.Schema)
		r := plan.Scan("skew_build", build.Schema)
		j := s.Join(r, []string{"s_key"}, []string{"r_key"},
			plan.JoinSpec{Type: op.Inner, Strategy: plan.PartitionBoth,
				ProbeOut: []string{"s_key", "s_val"},
				BuildOut: []string{"r_payload"}})
		g := j.GroupBy([]string{"s_key"},
			op.AggSpec{Kind: op.Sum, Name: "v", Arg: op.Col(j.Col("s_val")), ArgType: storage.TInt64})
		top := g.OrderBy([]op.SortKey{{Col: 1, Desc: true}}, 10)
		return plan.NewQuery("skewjoin", top)
	}

	var out []SkewedJoinPoint
	tab := &Table{
		Title: fmt.Sprintf("§3.1 skewed shuffle join (Zipf z=%.2f, %d rows): hybrid vs classic",
			f.Zipf, f.Rows),
		Header: []string{"engine", "time", "slowdown vs hybrid"},
	}
	var hybridTime time.Duration
	for _, classic := range []bool{false, true} {
		c, err := cluster.New(cluster.Config{
			Servers:          f.Servers,
			WorkersPerServer: f.Workers,
			Transport:        cluster.RDMA,
			Scheduling:       true,
			Classic:          classic,
			TimeScale:        f.TimeScale,
		})
		if err != nil {
			return nil, err
		}
		c.LoadTable("skew_build", build, storage.PlacementChunked, 0)
		c.LoadTable("skew_probe", probe, storage.PlacementChunked, 0)
		var best time.Duration
		for r := 0; r < 2; r++ {
			_, stats, err := c.Run(makeQuery())
			if err != nil {
				c.Close()
				return nil, err
			}
			if r == 0 || stats.Duration < best {
				best = stats.Duration
			}
		}
		c.Close()
		name := "hybrid"
		if classic {
			name = "classic"
		} else {
			hybridTime = best
		}
		out = append(out, SkewedJoinPoint{Engine: name, Time: best})
		tab.Add(name, Dur(best), F2(best.Seconds()/hybridTime.Seconds()))
	}
	tab.Fprint(w)
	return out, nil
}
