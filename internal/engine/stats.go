package engine

import (
	"sort"
	"time"
)

// PipelineStat reports one pipeline's execution inside a graph run. Start
// and End are relative to the run start; Start is the moment the first
// morsel was dispatched (streaming pipelines that waited for network input
// start late even though they were runnable from the beginning). Busy is
// the summed worker time spent processing this pipeline's morsels across
// the pool.
type PipelineStat struct {
	Name    string
	Skipped bool
	Start   time.Duration
	End     time.Duration
	Busy    time.Duration
	// Finalize is the wall time the sink's Finalize took (included in the
	// Start..End interval; exchange sends flush their last buffers here).
	Finalize time.Duration
	Morsels  int
	// Ops reports per-operator execution counters in pipeline order
	// (explain analyze).
	Ops []OpStat
	// SinkName/SinkRows/SinkBytes describe the pipeline breaker when it
	// implements SinkStats (exchange sends report exact wire bytes).
	SinkName  string
	SinkRows  uint64
	SinkBytes uint64
}

// OpStat is the execution profile of one operator inside a pipeline:
// rows entering and leaving, summed worker wall time, and how many fresh
// batch materializations it performed (operators that pool their scratch
// buffers report their own count through AllocCounter).
type OpStat struct {
	Name    string
	RowsIn  int64
	RowsOut int64
	Batches int64
	Allocs  int64
	Time    time.Duration
}

// sweepEvent is one endpoint of a pipeline's wall interval.
type sweepEvent struct {
	t     time.Duration
	delta int
}

// sweepEvents builds the sorted interval endpoints of all pipelines that
// did work. At equal timestamps a close sorts before an open, so
// back-to-back pipelines never count as concurrent.
func sweepEvents(stats []PipelineStat) []sweepEvent {
	var evs []sweepEvent
	for _, st := range stats {
		if st.Skipped || st.Morsels == 0 || st.End <= st.Start {
			continue
		}
		evs = append(evs, sweepEvent{st.Start, +1}, sweepEvent{st.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta
	})
	return evs
}

// PeakConcurrency returns the true maximum number of pipelines in flight
// at the same instant (sweep over start/end events — pairwise interval
// overlap would overestimate: A overlapping B and separately C does not
// mean B and C ever ran together).
func PeakConcurrency(stats []PipelineStat) int {
	depth, peak := 0, 0
	for _, e := range sweepEvents(stats) {
		depth += e.delta
		if depth > peak {
			peak = depth
		}
	}
	return peak
}

// OverlapRatio measures compute/communication overlap on one server: the
// fraction of the time during which at least one pipeline was in flight
// that at least *two* were. 0 means strictly serial execution (the old
// ordered-list model); values approaching 1 mean the DAG kept several
// pipelines busy simultaneously.
func OverlapRatio(stats []PipelineStat) float64 {
	evs := sweepEvents(stats)
	if len(evs) == 0 {
		return 0
	}
	var anyT, overlapT time.Duration
	depth := 0
	prev := evs[0].t
	for _, e := range evs {
		if e.t > prev {
			if depth >= 1 {
				anyT += e.t - prev
			}
			if depth >= 2 {
				overlapT += e.t - prev
			}
			prev = e.t
		}
		depth += e.delta
	}
	if anyT == 0 {
		return 0
	}
	return float64(overlapT) / float64(anyT)
}

// FirstDispatch returns the delay between the run's submission and the
// moment the shared worker pool dispatched its first morsel for it — the
// engine-level queue wait a query experiences when many runs compete for
// the pool. Zero when the run was picked up immediately (or did no work).
func FirstDispatch(stats []PipelineStat) time.Duration {
	first := time.Duration(-1)
	for _, st := range stats {
		if st.Skipped || st.Morsels == 0 {
			continue
		}
		if first < 0 || st.Start < first {
			first = st.Start
		}
	}
	if first < 0 {
		return 0
	}
	return first
}
