package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/storage"
)

// pstate is the lifecycle of one pipeline inside a scheduler run.
type pstate int8

const (
	psBlocked    pstate = iota // unmet dependencies
	psRunnable                 // dispatchable: workers may pull morsels
	psFinalizing               // source drained, Finalize in flight
	psDone                     // finalized (or skipped)
)

// pipeNode is the scheduler's view of one pipeline.
type pipeNode struct {
	p       *Pipeline
	poll    PollSource     // non-nil when the source is pollable
	hint    LocalityHinter // non-nil when the source advertises locality
	deps    int            // unmet dependency count
	depOn   []int          // pipelines waiting on this one
	state   pstate
	active  int  // workers currently processing a morsel
	srcDone bool // source reported exhaustion
	skipped bool // coordinator-only pipeline on a non-coordinator

	started  bool
	startT   time.Duration
	endT     time.Duration
	busy     time.Duration
	finalize time.Duration // wall time spent in the sink's Finalize
	morsels  int
	ops      []opCounter // per-operator counters, parallel to p.Ops
}

// opCounter accumulates one operator's execution profile. Workers update
// it outside the scheduler lock, so all fields are atomics.
type opCounter struct {
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	batches atomic.Int64
	allocs  atomic.Int64 // batches returned that were not the input batch
	nanos   atomic.Int64
}

// scheduler tracks pipeline readiness by in-degree counting and hands
// morsels from all runnable pipelines to the engine's pool workers. A
// pipeline drains when its source is exhausted and no worker still holds
// one of its morsels; its sink then finalizes exactly once, unlocking its
// dependents.
//
// One scheduler is one query's run. Several schedulers can be active on
// the engine at once; workers pull from them through tryMorsel (never
// blocking inside a scheduler), and the scheduler reports new work to the
// shared pool through notify.
type scheduler struct {
	mu sync.Mutex

	nodes     []pipeNode
	remaining int // pipelines not yet done
	inFlight  int // morsels being processed across all pipelines

	// notify rouses the engine's pool workers: notify(false) wakes one
	// (one delivery = one unit of work), notify(true) wakes all (pipeline
	// completions can unlock many dependents; worker-targeted sources need
	// the one worker that can consume the delivery to look). It may be
	// called with s.mu held — the engine never holds its own mutex while
	// calling into a scheduler.
	notify func(all bool)

	err      error
	aborted  bool
	finished bool
	start    time.Time
	doneCh   chan struct{}
}

func newScheduler(g *Graph, isCoordinator bool, notify func(all bool)) *scheduler {
	s := &scheduler{
		nodes:  make([]pipeNode, len(g.Pipelines)),
		notify: notify,
		doneCh: make(chan struct{}),
		start:  time.Now(),
	}
	for i, p := range g.Pipelines {
		n := &s.nodes[i]
		n.p = p
		n.ops = make([]opCounter, len(p.Ops))
		n.deps = len(g.deps(i))
		n.skipped = p.CoordinatorOnly && !isCoordinator
		n.poll, _ = p.Source.(PollSource)
		n.hint, _ = p.Source.(LocalityHinter)
		for _, d := range g.deps(i) {
			s.nodes[d].depOn = append(s.nodes[d].depOn, i)
		}
	}
	s.remaining = len(s.nodes)

	s.mu.Lock()
	// Skipped pipelines complete immediately (without finalizing their
	// sink) so their dependents unblock.
	for i := range s.nodes {
		if s.nodes[i].skipped {
			s.completeLocked(i, nil)
		}
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.state == psBlocked && n.deps == 0 {
			n.state = psRunnable
		}
	}
	if s.remaining == 0 && !s.finished {
		s.finishLocked()
	}
	s.mu.Unlock()

	// Register wake callbacks so message arrival restarts idle workers.
	// Sources whose input is addressed to one specific worker (classic
	// exchanges) must wake everyone: a Signal could rouse a worker that
	// cannot consume the delivery, which would strand it forever.
	for i := range s.nodes {
		if ws, ok := s.nodes[i].p.Source.(WakeSource); ok && !s.nodes[i].skipped {
			if tw, ok := s.nodes[i].p.Source.(TargetedWakeSource); ok && tw.WakeTargetsWorker() {
				ws.SetWake(s.wakeAll)
			} else {
				ws.SetWake(s.wake)
			}
		}
	}
	return s
}

// wake is called by streaming sources when new input may be available.
// One delivery is one unit of work, so one pool worker is woken (a worker
// that consumes it re-polls and drains any burst itself); completions
// still broadcast because they can unlock many dependents at once.
func (s *scheduler) wake() {
	s.notify(false)
}

// wakeAll is the wake for worker-targeted sources: every parked worker
// must look, because only one specific worker can consume the delivery.
func (s *scheduler) wakeAll() {
	s.notify(true)
}

// cancel aborts the run; in-flight morsels complete, nothing new starts.
func (s *scheduler) cancel(err error) {
	s.mu.Lock()
	if !s.finished && !s.aborted {
		s.aborted = true
		if s.err == nil {
			s.err = err
		}
		if s.inFlight == 0 {
			s.finishLocked()
		} else {
			s.notify(true)
		}
	}
	s.mu.Unlock()
}

// tryMorsel picks a runnable pipeline and pulls one morsel from it for
// worker w, without ever parking the worker: the engine loops over all
// active runs and sleeps on its own condition when every run is idle.
//
// Pipelines whose sources still hold NUMA-local work for w's socket are
// preferred (pass 0); when w's socket is dry everywhere the worker steals
// remote morsels and work from other pipelines (pass 1). Sources are
// always pulled outside the scheduler lock: they take their own locks and
// may invoke wake callbacks from other goroutines.
//
// The return value is (pipeline, morsel, progress): a nil morsel with
// progress=true means the call advanced the run another way (finalized a
// drained pipeline), so the caller should rescan; progress=false means
// this run has nothing to offer right now.
func (s *scheduler) tryMorsel(w *Worker) (node int, b *storage.Batch, progress bool) {
	s.mu.Lock()
	if s.finished || s.aborted {
		s.mu.Unlock()
		return 0, nil, false
	}
	for pass := 0; pass < 2; pass++ {
		for i := range s.nodes {
			n := &s.nodes[i]
			if n.state != psRunnable || n.srcDone {
				continue
			}
			local := n.hint == nil || n.hint.HasLocal(w.Node)
			if (pass == 0) != local {
				continue
			}
			n.active++
			s.inFlight++
			s.mu.Unlock()
			mb, srcDone := s.pull(n, w)
			s.mu.Lock()
			if mb != nil {
				if !n.started {
					n.started = true
					n.startT = time.Since(s.start)
				}
				n.morsels++
				s.mu.Unlock()
				mMorsels.Inc()
				if pass == 1 {
					// Pass 1 only runs when w's socket was dry everywhere:
					// this morsel was stolen across sockets or pipelines.
					mSteals.Inc()
				}
				return i, mb, true
			}
			n.active--
			s.inFlight--
			if srcDone {
				n.srcDone = true
				s.checkSourceErrLocked(n)
			}
			if !s.aborted && n.srcDone && n.active == 0 && n.state == psRunnable {
				s.finalizeLocked(i, w)
				s.mu.Unlock()
				return 0, nil, true // completion may have unlocked dependents
			}
			if s.aborted && s.inFlight == 0 && !s.finished {
				// Aborted runs must not flush sinks of a query being torn
				// down; this worker held the last in-flight slot, so it
				// ends the run (mirrors finishMorsel).
				s.finishLocked()
			}
			if s.finished || s.aborted {
				s.mu.Unlock()
				return 0, nil, false
			}
		}
	}
	s.mu.Unlock()
	return 0, nil, false
}

// pull fetches one morsel, preferring the non-blocking Poll protocol.
func (s *scheduler) pull(n *pipeNode, w *Worker) (*storage.Batch, bool) {
	if n.poll != nil {
		return n.poll.Poll(w)
	}
	b := n.p.Source.Next(w)
	return b, b == nil
}

// process pushes one morsel through the pipeline, converting panics into
// errors so a bad operator cannot kill the whole cluster simulation. Each
// operator call is bracketed with row/time counters (atomics, no lock) —
// the raw material of explain analyze.
func (s *scheduler) process(w *Worker, node int, b *storage.Batch) (err error) {
	n := &s.nodes[node]
	p := n.p
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline %q worker panicked: %v", p.Name, r)
		}
	}()
	for oi, op := range p.Ops {
		c := &n.ops[oi]
		in := b
		rowsIn := int64(b.Rows())
		t0 := time.Now()
		b = op.Process(w, b)
		c.nanos.Add(int64(time.Since(t0)))
		c.batches.Add(1)
		c.rowsIn.Add(rowsIn)
		if b == nil || b.Rows() == 0 {
			return nil
		}
		c.rowsOut.Add(int64(b.Rows()))
		if b != in {
			c.allocs.Add(1)
		}
	}
	p.Sink.Consume(w, b)
	return nil
}

// finishMorsel returns a worker's morsel slot and drives drain detection.
func (s *scheduler) finishMorsel(i int, d time.Duration, err error, w *Worker) {
	s.mu.Lock()
	n := &s.nodes[i]
	n.active--
	s.inFlight--
	n.busy += d
	mBusyNanos.AddDuration(d)
	if err != nil {
		s.abortLocked(err)
	}
	if !s.aborted && n.srcDone && n.active == 0 && n.state == psRunnable {
		s.finalizeLocked(i, w)
	} else if s.aborted && s.inFlight == 0 && !s.finished {
		s.finishLocked()
	}
	s.mu.Unlock()
}

// checkSourceErrLocked aborts the run when a drained source reports a
// mid-stream failure (FallibleSource), naming the pipeline.
func (s *scheduler) checkSourceErrLocked(n *pipeNode) {
	fs, ok := n.p.Source.(FallibleSource)
	if !ok {
		return
	}
	if err := fs.Err(); err != nil {
		s.abortLocked(fmt.Errorf("pipeline %q source: %w", n.p.Name, err))
	}
}

// finalizeLocked finalizes pipeline i's sink (outside the lock: sinks send
// messages, which can re-enter the scheduler through wake callbacks) and
// completes it. w is the pool worker driving the finalize; NUMA-aware
// sinks (WorkerFinalizer) allocate their flush buffers on its socket.
func (s *scheduler) finalizeLocked(i int, w *Worker) {
	n := &s.nodes[i]
	n.state = psFinalizing
	if !n.started {
		// A pipeline whose source yielded nothing still finalizes (empty
		// hash table, Last markers); its wall interval is just that point.
		n.started = true
		n.startT = time.Since(s.start)
	}
	// The Finalize call counts as in-flight work: a concurrent cancel must
	// not complete the run (and release the engine for the next graph)
	// while a sink is still flushing messages.
	s.inFlight++
	s.mu.Unlock()
	t0 := time.Now()
	err := safeFinalize(n.p, w)
	fin := time.Since(t0)
	mFinalizeNanos.AddDuration(fin)
	s.mu.Lock()
	n.finalize = fin
	s.inFlight--
	s.completeLocked(i, err)
}

func safeFinalize(p *Pipeline, w *Worker) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline %q finalize panicked: %v", p.Name, r)
		}
	}()
	if wf, ok := p.Sink.(WorkerFinalizer); ok && w != nil {
		return wf.FinalizeOn(w)
	}
	return p.Sink.Finalize()
}

// completeLocked marks pipeline i done and unlocks its dependents.
func (s *scheduler) completeLocked(i int, err error) {
	n := &s.nodes[i]
	n.state = psDone
	n.endT = time.Since(s.start)
	s.remaining--
	if err != nil {
		s.abortLocked(fmt.Errorf("pipeline %q: %w", n.p.Name, err))
	}
	for _, d := range n.depOn {
		dn := &s.nodes[d]
		dn.deps--
		if dn.state == psBlocked && dn.deps == 0 && !s.aborted {
			dn.state = psRunnable
		}
	}
	if s.remaining == 0 || (s.aborted && s.inFlight == 0) {
		if !s.finished {
			s.finishLocked()
		}
	}
	s.notify(true)
}

func (s *scheduler) abortLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	s.aborted = true
}

func (s *scheduler) finishLocked() {
	s.finished = true
	close(s.doneCh)
	s.notify(true)
}

// results reports per-pipeline statistics and the run error, if any.
func (s *scheduler) results() ([]PipelineStat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := make([]PipelineStat, len(s.nodes))
	for i := range s.nodes {
		n := &s.nodes[i]
		stats[i] = PipelineStat{
			Name:     n.p.Name,
			Skipped:  n.skipped,
			Start:    n.startT,
			End:      n.endT,
			Busy:     n.busy,
			Finalize: n.finalize,
			Morsels:  n.morsels,
		}
		if len(n.p.Ops) > 0 {
			ops := make([]OpStat, len(n.p.Ops))
			for oi, op := range n.p.Ops {
				c := &n.ops[oi]
				allocs := c.allocs.Load()
				if ac, ok := op.(AllocCounter); ok {
					allocs = int64(ac.BatchAllocs())
				}
				ops[oi] = OpStat{
					Name:    displayName(op),
					RowsIn:  c.rowsIn.Load(),
					RowsOut: c.rowsOut.Load(),
					Batches: c.batches.Load(),
					Allocs:  allocs,
					Time:    time.Duration(c.nanos.Load()),
				}
			}
			stats[i].Ops = ops
		}
		if !n.skipped {
			stats[i].SinkName = displayName(n.p.Sink)
			if ss, ok := n.p.Sink.(SinkStats); ok {
				stats[i].SinkRows, stats[i].SinkBytes = ss.SinkStats()
			}
		}
	}
	if s.err != nil {
		return stats, fmt.Errorf("engine: %w", s.err)
	}
	return stats, nil
}

// displayName resolves an operator/sink label: NamedOp if implemented,
// otherwise the lower-cased Go type name without package or pointer.
func displayName(x any) string {
	if n, ok := x.(NamedOp); ok {
		return n.OpName()
	}
	name := strings.TrimPrefix(fmt.Sprintf("%T", x), "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.ToLower(name)
}
