package engine

import "hsqp/internal/obs"

// Pool-level metrics on the process-wide registry. One process hosts
// every simulated server's engine, so these aggregate across the cluster
// the same way a per-process exporter would.
var (
	mWorkers = obs.Default().Gauge("hsqp_engine_workers",
		"Worker threads across all engine pools in the process.")
	mActiveRuns = obs.Default().Gauge("hsqp_engine_active_runs",
		"Graph runs (queries) currently registered on engine pools.")
	mMorsels = obs.Default().Counter("hsqp_engine_morsels_total",
		"Morsels dispatched to workers.")
	mSteals = obs.Default().Counter("hsqp_engine_steals_total",
		"Morsels obtained by stealing (non-NUMA-local pass).")
	mBusyNanos = obs.Default().Counter("hsqp_engine_busy_nanoseconds_total",
		"Summed worker time spent processing morsels, in nanoseconds.")
	mFinalizeNanos = obs.Default().Counter("hsqp_engine_finalize_nanoseconds_total",
		"Summed worker time spent in sink finalization, in nanoseconds.")
)
