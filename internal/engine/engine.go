// Package engine implements intra-server morsel-driven parallelism
// (Leis et al. [20], §3.2 of the paper): query pipelines are executed by a
// persistent pool of workers pinned (logically) to NUMA sockets; the input
// of a pipeline is split into constant-size morsels; workers prefer
// NUMA-local morsels and steal across sockets — and across pipelines —
// when their own node runs dry. Each worker pushes its morsel through the
// whole pipeline until a pipeline breaker (sink) is reached, keeping
// intermediate data hot.
//
// Pipelines are organized into a Graph: explicit dependency edges
// (build-before-probe, materialize-before-consume) gate when a pipeline
// becomes runnable, and a Scheduler dispatches morsels from *all* runnable
// pipelines to idle workers. Sources that stream from the network
// implement PollSource so a pipeline with no input yet parks without
// blocking a worker, which is what lets exchange-receive pipelines overlap
// with upstream compute (hybrid parallelism, §3).
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

// DefaultMorselSize is the number of tuples per morsel.
const DefaultMorselSize = 16384

// ErrCancelled is returned by RunGraph when the run was cancelled through
// RunOptions.Cancel before completing. (No "engine:" prefix — results()
// adds it when wrapping.)
var ErrCancelled = errors.New("run cancelled")

// Worker identifies one worker thread and its NUMA placement.
type Worker struct {
	ID   int
	Node numa.Node
}

// Source produces morsels for a pipeline. Implementations must be safe for
// concurrent use; Next returns nil when the source is exhausted for good.
type Source interface {
	Next(w *Worker) *storage.Batch
}

// PollSource is a Source that can distinguish "no input available yet"
// from "exhausted". The scheduler uses Poll instead of Next so a worker is
// never parked inside a source: (nil, false) means try again later,
// (nil, true) means the source is drained for good.
type PollSource interface {
	Source
	Poll(w *Worker) (b *storage.Batch, done bool)
}

// WakeSource is implemented by sources whose input arrives asynchronously
// (exchange receives). SetWake registers a callback fired whenever new
// input may be available, so the scheduler can sleep instead of spinning.
type WakeSource interface {
	SetWake(f func())
}

// TargetedWakeSource is implemented by streaming sources whose deliveries
// are addressed to one specific worker (the classic exchange model's fixed
// parallel units). Their wake callbacks broadcast to the whole pool — a
// single-worker wake could rouse a worker that cannot consume the message.
type TargetedWakeSource interface {
	WakeTargetsWorker() bool
}

// LocalityHinter lets a source advertise whether it still holds
// NUMA-local work for a socket. The scheduler prefers pipelines with local
// morsels and falls back to remote ones (socket stealing) when dry.
type LocalityHinter interface {
	HasLocal(node numa.Node) bool
}

// FallibleSource is a Source that can fail mid-stream (an exchange receive
// hitting a corrupt message). Such a source reports exhaustion through the
// normal Next/Poll protocol and records the cause; the scheduler checks
// Err when the source drains and aborts the run with the pipeline's name
// instead of relying on panic recovery.
type FallibleSource interface {
	Err() error
}

// WorkerFinalizer is a Sink whose Finalize needs to know which pool worker
// runs it — send-side exchanges allocate their flush and Last-marker
// buffers NUMA-local to the finalizing worker instead of defaulting to
// socket 0. The scheduler prefers FinalizeOn over Finalize when
// implemented.
type WorkerFinalizer interface {
	FinalizeOn(w *Worker) error
}

// Op transforms one morsel batch. It may return its input unchanged, a new
// batch, or nil (all rows filtered). Implementations must be safe for
// concurrent use by distinct workers.
type Op interface {
	Process(w *Worker, b *storage.Batch) *storage.Batch
}

// NamedOp lets an operator or sink pick its display name in explain
// analyze output; the default is the lower-cased Go type name.
type NamedOp interface {
	OpName() string
}

// AllocCounter is implemented by operators that track their own batch
// materializations (scratch-pooling operators report only true
// allocations). Without it, the scheduler counts every returned batch
// that is not the input batch as one materialization.
type AllocCounter interface {
	BatchAllocs() uint64
}

// SinkStats is implemented by sinks that can report what they absorbed:
// total rows and, for exchange sends, the exact bytes they put on the
// wire. The scheduler surfaces both in PipelineStat.
type SinkStats interface {
	SinkStats() (rows, bytes uint64)
}

// Sink is a pipeline breaker: it consumes the final batches of a pipeline
// and materializes state (hash table, aggregate table, sort run, outgoing
// exchange messages). Consume is called concurrently; Finalize exactly
// once after all workers finished.
type Sink interface {
	Consume(w *Worker, b *storage.Batch)
	Finalize() error
}

// Pipeline is one parallel execution stage: source → ops → sink.
type Pipeline struct {
	Name   string
	Source Source
	Ops    []Op
	Sink   Sink
	// CoordinatorOnly pipelines run only on the coordinating server
	// (final merges of distributed plans).
	CoordinatorOnly bool
}

// Graph is a set of pipelines plus explicit dependency edges: Deps[i]
// lists the pipeline indexes whose sinks must have finalized before
// pipeline i may start. Edges replace the implicit ordering of a flat
// pipeline list; independent pipelines (two hash builds, an
// exchange-receive and its upstream compute) run concurrently.
type Graph struct {
	Pipelines []*Pipeline
	Deps      [][]int
}

// ChainGraph builds a graph that executes pipelines strictly in slice
// order — the pre-DAG serial semantics, kept for ablation and as a
// reference path in tests.
func ChainGraph(pipelines []*Pipeline) *Graph {
	deps := make([][]int, len(pipelines))
	for i := 1; i < len(pipelines); i++ {
		deps[i] = []int{i - 1}
	}
	return &Graph{Pipelines: pipelines, Deps: deps}
}

// Validate checks edge indexes and rejects dependency cycles.
func (g *Graph) Validate() error {
	n := len(g.Pipelines)
	if len(g.Deps) > n {
		return fmt.Errorf("engine: graph has %d dep lists for %d pipelines", len(g.Deps), n)
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, deps := range g.Deps {
		for _, d := range deps {
			if d < 0 || d >= n {
				return fmt.Errorf("engine: pipeline %d depends on out-of-range pipeline %d", i, d)
			}
			if d == i {
				return fmt.Errorf("engine: pipeline %d depends on itself", i)
			}
			indeg[i]++
			dependents[d] = append(dependents[d], i)
		}
	}
	// Kahn's algorithm: every pipeline must be reachable from the sources.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range dependents[v] {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("engine: pipeline dependency graph has a cycle")
	}
	return nil
}

// deps returns the dependency list of pipeline i (Deps may be shorter than
// Pipelines when trailing pipelines have no dependencies).
func (g *Graph) deps(i int) []int {
	if i < len(g.Deps) {
		return g.Deps[i]
	}
	return nil
}

// Engine is one server's persistent worker pool. Workers are started once
// at New, participate in every graph run submitted to the engine, and live
// until Close.
//
// Several graph runs — several queries — may be active at once: RunGraph
// registers its scheduler in the active set and every pool worker
// round-robins across the set per morsel, so concurrent queries share the
// pool fairly instead of queueing behind each other. Each run keeps its
// own cancellation and error state; a failing or cancelled query never
// disturbs the others.
type Engine struct {
	topo       *numa.Topology
	workers    []Worker
	morselSize int

	mu      sync.Mutex
	cond    *sync.Cond
	runs    []*scheduler // active graph runs sharing the pool
	wakeSeq uint64       // bumped whenever any run may have new work
	stop    bool
	wg      sync.WaitGroup

	rr atomic.Uint64 // rotates the first run each morsel pull looks at
}

// Config configures an engine.
type Config struct {
	Topology *numa.Topology
	// Workers is the number of worker threads. Zero means one per core of
	// the topology.
	Workers int
	// MorselSize overrides DefaultMorselSize when positive.
	MorselSize int
}

// New creates an engine and starts its worker pool.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("engine: topology is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Workers
	if n <= 0 {
		n = cfg.Topology.TotalCores()
	}
	ms := cfg.MorselSize
	if ms <= 0 {
		ms = DefaultMorselSize
	}
	e := &Engine{topo: cfg.Topology, morselSize: ms}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < n; i++ {
		// Workers are assigned to sockets round-robin so every socket has
		// workers even when n < TotalCores.
		e.workers = append(e.workers, Worker{ID: i, Node: numa.Node(i % cfg.Topology.Sockets)})
	}
	for i := range e.workers {
		e.wg.Add(1)
		go e.workerLoop(&e.workers[i])
	}
	mWorkers.Add(float64(n))
	return e, nil
}

// Close stops the worker pool. Runs still active are aborted (their
// RunGraph callers return ErrCancelled) — with no workers left, nothing
// else could ever finish them.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return
	}
	e.stop = true
	// Snapshot under the same critical section that sets stop: any run
	// attached earlier is in the snapshot, any later RunGraph is refused.
	runs := append([]*scheduler(nil), e.runs...)
	e.cond.Broadcast()
	e.mu.Unlock()
	mWorkers.Add(-float64(len(e.workers)))
	e.wg.Wait()
	// Workers have drained their in-flight morsels and exited, so each
	// remaining run has inFlight == 0 and cancel completes it immediately,
	// unblocking its RunGraph caller.
	for _, s := range runs {
		s.cancel(ErrCancelled)
	}
}

// Workers returns the number of worker threads.
func (e *Engine) Workers() int { return len(e.workers) }

// MorselSize returns the configured morsel size.
func (e *Engine) MorselSize() int { return e.morselSize }

// Topology returns the engine's NUMA topology.
func (e *Engine) Topology() *numa.Topology { return e.topo }

// pulse records that new work may be available somewhere in the active
// set and rouses parked workers. Schedulers call it from their wake
// callbacks and on pipeline completions (lock order: a scheduler's mutex
// may be held while pulsing; the engine mutex is never held while calling
// into a scheduler).
func (e *Engine) pulse(all bool) {
	e.mu.Lock()
	e.wakeSeq++
	if all {
		e.cond.Broadcast()
	} else {
		e.cond.Signal()
	}
	e.mu.Unlock()
}

// workerLoop is one pool worker: it scans the active runs — starting at a
// rotating offset so morsel dispatch round-robins across concurrent
// queries — executes one morsel (or one finalize) per scan, and parks on
// the engine condition when no run has work.
func (e *Engine) workerLoop(w *Worker) {
	defer e.wg.Done()
	var runs []*scheduler
	e.mu.Lock()
	for {
		if e.stop {
			e.mu.Unlock()
			return
		}
		seq := e.wakeSeq
		prev := len(runs)
		runs = append(runs[:0], e.runs...)
		// Drop stale scheduler pointers beyond the new length: a parked
		// worker must not keep the previous query's graph (sinks, hash
		// tables) reachable through its snapshot's backing array. (When
		// append grew the array, the old one is unreferenced already.)
		if prev > len(runs) && prev <= cap(runs) {
			clear(runs[len(runs):prev])
		}
		e.mu.Unlock()

		worked := false
		if n := len(runs); n > 0 {
			off := int(e.rr.Add(1)-1) % n
			for k := 0; k < n; k++ {
				s := runs[(off+k)%n]
				i, b, progress := s.tryMorsel(w)
				if b != nil {
					t0 := time.Now()
					err := s.process(w, i, b)
					s.finishMorsel(i, time.Since(t0), err, w)
					// Morsel boundaries are the engine's cooperative
					// scheduling points: without this, one worker can drain
					// a cheap source before its peers are ever scheduled on
					// a loaded (or single-core) host.
					runtime.Gosched()
				}
				if progress {
					worked = true
					break // re-rotate so queries stay fairly interleaved
				}
			}
		}
		e.mu.Lock()
		if !worked && e.wakeSeq == seq && !e.stop {
			e.cond.Wait()
		}
	}
}

// RunOptions configures one graph execution.
type RunOptions struct {
	// Coordinator enables CoordinatorOnly pipelines; on other servers they
	// are skipped (their dependents are unblocked immediately, their sinks
	// never finalize).
	Coordinator bool
	// Cancel aborts the run when closed (e.g. because another server of the
	// cluster failed); RunGraph then returns ErrCancelled.
	Cancel <-chan struct{}
}

// RunGraph executes a pipeline DAG on the worker pool and returns
// per-pipeline statistics. Worker panics are captured and returned as an
// error wrapping the first panic with its pipeline name.
func (e *Engine) RunGraph(g *Graph, opt RunOptions) ([]PipelineStat, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, p := range g.Pipelines {
		if p.CoordinatorOnly && !opt.Coordinator {
			continue
		}
		if p.Source == nil || p.Sink == nil {
			return nil, fmt.Errorf("engine: pipeline %q needs a source and a sink", p.Name)
		}
	}
	s := newScheduler(g, opt.Coordinator, e.pulse)
	if opt.Cancel != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-opt.Cancel:
				s.cancel(ErrCancelled)
			case <-watcherDone:
			}
		}()
	}
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: RunGraph on a closed engine")
	}
	e.runs = append(e.runs, s)
	e.wakeSeq++
	e.cond.Broadcast()
	e.mu.Unlock()
	mActiveRuns.Add(1)

	<-s.doneCh

	e.mu.Lock()
	for i, r := range e.runs {
		if r == s {
			e.runs = append(e.runs[:i], e.runs[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	mActiveRuns.Add(-1)
	return s.results()
}

// RunPipeline executes one pipeline to completion with all workers.
func (e *Engine) RunPipeline(p *Pipeline) error {
	_, err := e.RunGraph(&Graph{Pipelines: []*Pipeline{p}}, RunOptions{Coordinator: true})
	return err
}

// RunPlan executes pipelines strictly in slice order (the pre-DAG
// execution model, kept for ablation); isCoordinator gates
// coordinator-only pipelines.
func (e *Engine) RunPlan(pipelines []*Pipeline, isCoordinator bool) error {
	_, err := e.RunGraph(ChainGraph(pipelines), RunOptions{Coordinator: isCoordinator})
	return err
}
