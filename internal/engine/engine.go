// Package engine implements intra-server morsel-driven parallelism
// (Leis et al. [20], §3.2 of the paper): query pipelines are executed by a
// pool of workers pinned (logically) to NUMA sockets; the input of a
// pipeline is split into constant-size morsels; workers prefer NUMA-local
// morsels and steal across sockets when their own node runs dry. Each
// worker pushes its morsel through the whole pipeline until a pipeline
// breaker (sink) is reached, keeping intermediate data hot.
package engine

import (
	"fmt"
	"sync"

	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

// DefaultMorselSize is the number of tuples per morsel.
const DefaultMorselSize = 16384

// Worker identifies one worker thread and its NUMA placement.
type Worker struct {
	ID   int
	Node numa.Node
}

// Source produces morsels for a pipeline. Implementations must be safe for
// concurrent use; Next returns nil when the source is exhausted for good.
type Source interface {
	Next(w *Worker) *storage.Batch
}

// Op transforms one morsel batch. It may return its input unchanged, a new
// batch, or nil (all rows filtered). Implementations must be safe for
// concurrent use by distinct workers.
type Op interface {
	Process(w *Worker, b *storage.Batch) *storage.Batch
}

// Sink is a pipeline breaker: it consumes the final batches of a pipeline
// and materializes state (hash table, aggregate table, sort run, outgoing
// exchange messages). Consume is called concurrently; Finalize exactly
// once after all workers finished.
type Sink interface {
	Consume(w *Worker, b *storage.Batch)
	Finalize() error
}

// Pipeline is one parallel execution stage: source → ops → sink.
type Pipeline struct {
	Name   string
	Source Source
	Ops    []Op
	Sink   Sink
	// CoordinatorOnly pipelines run only on the coordinating server
	// (final merges of distributed plans).
	CoordinatorOnly bool
}

// Engine is one server's worker pool.
type Engine struct {
	topo       *numa.Topology
	workers    []Worker
	morselSize int
}

// Config configures an engine.
type Config struct {
	Topology *numa.Topology
	// Workers is the number of worker threads. Zero means one per core of
	// the topology.
	Workers int
	// MorselSize overrides DefaultMorselSize when positive.
	MorselSize int
}

// New creates an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("engine: topology is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Workers
	if n <= 0 {
		n = cfg.Topology.TotalCores()
	}
	ms := cfg.MorselSize
	if ms <= 0 {
		ms = DefaultMorselSize
	}
	e := &Engine{topo: cfg.Topology, morselSize: ms}
	for i := 0; i < n; i++ {
		// Workers are assigned to sockets round-robin so every socket has
		// workers even when n < TotalCores.
		e.workers = append(e.workers, Worker{ID: i, Node: numa.Node(i % cfg.Topology.Sockets)})
	}
	return e, nil
}

// Workers returns the number of worker threads.
func (e *Engine) Workers() int { return len(e.workers) }

// MorselSize returns the configured morsel size.
func (e *Engine) MorselSize() int { return e.morselSize }

// Topology returns the engine's NUMA topology.
func (e *Engine) Topology() *numa.Topology { return e.topo }

// RunPipeline executes one pipeline to completion with all workers.
func (e *Engine) RunPipeline(p *Pipeline) error {
	if p.Source == nil || p.Sink == nil {
		return fmt.Errorf("engine: pipeline %q needs a source and a sink", p.Name)
	}
	var wg sync.WaitGroup
	panics := make(chan any, len(e.workers))
	for i := range e.workers {
		w := &e.workers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			for {
				b := p.Source.Next(w)
				if b == nil {
					return
				}
				for _, op := range p.Ops {
					b = op.Process(w, b)
					if b == nil || b.Rows() == 0 {
						b = nil
						break
					}
				}
				if b != nil {
					p.Sink.Consume(w, b)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(fmt.Sprintf("engine: pipeline %q worker panicked: %v", p.Name, r))
	default:
	}
	return p.Sink.Finalize()
}

// RunPlan executes pipelines in order; isCoordinator gates
// coordinator-only pipelines.
func (e *Engine) RunPlan(pipelines []*Pipeline, isCoordinator bool) error {
	for _, p := range pipelines {
		if p.CoordinatorOnly && !isCoordinator {
			continue
		}
		if err := e.RunPipeline(p); err != nil {
			return fmt.Errorf("engine: pipeline %q: %w", p.Name, err)
		}
	}
	return nil
}
