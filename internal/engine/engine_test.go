package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

type countSource struct {
	mu   sync.Mutex
	left int
	b    *storage.Batch
}

func (s *countSource) Next(*Worker) *storage.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.left == 0 {
		return nil
	}
	s.left--
	return s.b
}

type countSink struct {
	batches   atomic.Int64
	finalized atomic.Int64
	workers   sync.Map
}

func (s *countSink) Consume(w *Worker, b *storage.Batch) {
	s.batches.Add(1)
	s.workers.Store(w.ID, true)
}
func (s *countSink) Finalize() error {
	s.finalized.Add(1)
	return nil
}

func smallBatch() *storage.Batch {
	sch := storage.NewSchema(storage.Field{Name: "x", Type: storage.TInt64})
	b := storage.NewBatch(sch, 1)
	b.AppendRow(int64(1))
	return b
}

func TestAllWorkersParticipate(t *testing.T) {
	e, err := New(Config{Topology: numa.TwoSocket(), Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if e.Workers() != 6 {
		t.Fatalf("workers %d", e.Workers())
	}
	src := &countSource{left: 10000, b: smallBatch()}
	sink := &countSink{}
	if err := e.RunPipeline(&Pipeline{Name: "p", Source: src, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if sink.batches.Load() != 10000 {
		t.Fatalf("consumed %d, want 10000", sink.batches.Load())
	}
	if sink.finalized.Load() != 1 {
		t.Fatal("Finalize must run exactly once")
	}
	n := 0
	sink.workers.Range(func(any, any) bool { n++; return true })
	if n < 2 {
		t.Fatalf("only %d workers participated", n)
	}
}

func TestWorkerSocketAssignment(t *testing.T) {
	e, _ := New(Config{Topology: numa.TwoSocket(), Workers: 4})
	t.Cleanup(e.Close)
	sockets := map[numa.Node]int{}
	for _, w := range e.workers {
		sockets[w.Node]++
	}
	if sockets[0] != 2 || sockets[1] != 2 {
		t.Fatalf("workers unevenly pinned: %v", sockets)
	}
}

func TestCoordinatorOnlySkipped(t *testing.T) {
	e, _ := New(Config{Topology: numa.TwoSocket(), Workers: 2})
	t.Cleanup(e.Close)
	sink := &countSink{}
	p := []*Pipeline{{
		Name:            "coord",
		Source:          &countSource{left: 5, b: smallBatch()},
		Sink:            sink,
		CoordinatorOnly: true,
	}}
	if err := e.RunPlan(p, false); err != nil {
		t.Fatal(err)
	}
	if sink.batches.Load() != 0 {
		t.Fatal("coordinator-only pipeline ran on a non-coordinator")
	}
	if err := e.RunPlan(p, true); err != nil {
		t.Fatal(err)
	}
	if sink.batches.Load() != 5 {
		t.Fatal("coordinator-only pipeline skipped on the coordinator")
	}
}

func TestOpChainShortCircuit(t *testing.T) {
	e, _ := New(Config{Topology: numa.TwoSocket(), Workers: 2})
	t.Cleanup(e.Close)
	sink := &countSink{}
	dropAll := opFunc(func(w *Worker, b *storage.Batch) *storage.Batch { return nil })
	if err := e.RunPipeline(&Pipeline{
		Name:   "drop",
		Source: &countSource{left: 10, b: smallBatch()},
		Ops:    []Op{dropAll},
		Sink:   sink,
	}); err != nil {
		t.Fatal(err)
	}
	if sink.batches.Load() != 0 {
		t.Fatal("sink saw dropped batches")
	}
}

type opFunc func(*Worker, *storage.Batch) *storage.Batch

func (f opFunc) Process(w *Worker, b *storage.Batch) *storage.Batch { return f(w, b) }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	e, err := New(Config{Topology: numa.TwoSocket()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	if e.Workers() != 20 {
		t.Fatalf("default workers %d, want TotalCores=20", e.Workers())
	}
	if e.MorselSize() != DefaultMorselSize {
		t.Fatal("default morsel size wrong")
	}
	if err := e.RunPipeline(&Pipeline{Name: "bad"}); err == nil {
		t.Fatal("pipeline without source/sink accepted")
	}
}
