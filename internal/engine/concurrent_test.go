package engine

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

// TestConcurrentGraphsShareThePool runs many graphs on one engine at the
// same time: every run must consume exactly its own morsels and finalize
// its own sink exactly once — queries sharing the pool must not leak work
// into each other.
func TestConcurrentGraphsShareThePool(t *testing.T) {
	e := newTestEngine(t, 6)
	const runs = 8
	const morsels = 2000

	srcs := make([]*countSource, runs)
	sinks := make([]*countSink, runs)
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for r := 0; r < runs; r++ {
		srcs[r] = &countSource{left: morsels, b: smallBatch()}
		sinks[r] = &countSink{}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = e.RunPipeline(&Pipeline{Name: "p", Source: srcs[r], Sink: sinks[r]})
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		if got := sinks[r].batches.Load(); got != morsels {
			t.Fatalf("run %d consumed %d morsels, want %d", r, got, morsels)
		}
		if sinks[r].finalized.Load() != 1 {
			t.Fatalf("run %d finalized %d times", r, sinks[r].finalized.Load())
		}
	}
}

// TestFairDispatchAcrossQueries: a short query submitted while a long
// query is running must not starve behind it — round-robin morsel
// dispatch interleaves the two, so the short one finishes first.
func TestFairDispatchAcrossQueries(t *testing.T) {
	e := newTestEngine(t, 4)

	longSrc := &countSource{left: 400000, b: smallBatch()}
	var longDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.RunPipeline(&Pipeline{Name: "long", Source: longSrc, Sink: &countSink{}}); err != nil {
			t.Errorf("long run: %v", err)
		}
		longDone.Store(true)
	}()

	// Wait until the long query is actually consuming morsels.
	for {
		longSrc.mu.Lock()
		started := longSrc.left < 400000
		longSrc.mu.Unlock()
		if started {
			break
		}
		runtime.Gosched()
	}
	if err := e.RunPipeline(&Pipeline{Name: "short", Source: &countSource{left: 100, b: smallBatch()}, Sink: &countSink{}}); err != nil {
		t.Fatalf("short run: %v", err)
	}
	if longDone.Load() {
		t.Fatal("short query finished only after the long query drained: dispatch is not fair")
	}
	wg.Wait()
}

// TestErrorIsolationBetweenRuns: a panicking operator aborts its own run
// with a named error while a concurrently executing run completes
// untouched.
func TestErrorIsolationBetweenRuns(t *testing.T) {
	e := newTestEngine(t, 4)

	goodSrc := &countSource{left: 50000, b: smallBatch()}
	goodSink := &countSink{}
	var wg sync.WaitGroup
	var goodErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		goodErr = e.RunPipeline(&Pipeline{Name: "good", Source: goodSrc, Sink: goodSink})
	}()

	badErr := e.RunPipeline(&Pipeline{
		Name:   "bad",
		Source: &countSource{left: 10, b: smallBatch()},
		Ops:    []Op{opFunc(func(w *Worker, b *storage.Batch) *storage.Batch { panic("boom") })},
		Sink:   &countSink{},
	})
	if badErr == nil || !strings.Contains(badErr.Error(), `pipeline "bad"`) {
		t.Fatalf("bad run error = %v, want panic naming the pipeline", badErr)
	}

	wg.Wait()
	if goodErr != nil {
		t.Fatalf("good run failed alongside the bad one: %v", goodErr)
	}
	if goodSink.batches.Load() != 50000 {
		t.Fatalf("good run consumed %d morsels, want 50000", goodSink.batches.Load())
	}
}

// blockedSource never yields and never reports done — it models an
// exchange receive whose senders have gone away.
type blockedSource struct{}

func (blockedSource) Next(*Worker) *storage.Batch         { return nil }
func (blockedSource) Poll(*Worker) (*storage.Batch, bool) { return nil, false }
func (blockedSource) SetWake(func())                      {}

// TestCloseAbortsActiveRuns: closing the engine while a graph is still
// waiting for input must abort the run (ErrCancelled) instead of leaving
// RunGraph blocked forever on a pool with no workers.
func TestCloseAbortsActiveRuns(t *testing.T) {
	e, err := New(Config{Topology: numa.TwoSocket(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- e.RunPipeline(&Pipeline{Name: "stuck", Source: blockedSource{}, Sink: &countSink{}})
	}()
	// Let the run attach before closing.
	for {
		e.mu.Lock()
		attached := len(e.runs) > 0
		e.mu.Unlock()
		if attached {
			break
		}
		runtime.Gosched()
	}
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("aborted run returned %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunGraph still blocked 10s after Engine.Close")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Engine.Close did not return")
	}
}
