package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

// guardedSource fails the run (via a recorded flag) when pulled before an
// upstream gate opened — used to prove build-before-probe ordering.
type guardedSource struct {
	inner    Source
	gate     *atomic.Bool
	violated atomic.Bool
}

func (s *guardedSource) Next(w *Worker) *storage.Batch {
	if !s.gate.Load() {
		s.violated.Store(true)
	}
	return s.inner.Next(w)
}

// gateSink flips a gate on Finalize.
type gateSink struct {
	countSink
	gate *atomic.Bool
}

func (s *gateSink) Finalize() error {
	s.gate.Store(true)
	return s.countSink.Finalize()
}

func newTestEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e, err := New(Config{Topology: numa.TwoSocket(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestDAGDependencyOrdering: a dependent pipeline (probe) must not pull a
// single morsel before its dependency (build) finalized its sink.
func TestDAGDependencyOrdering(t *testing.T) {
	e := newTestEngine(t, 6)
	for round := 0; round < 20; round++ {
		var gate atomic.Bool
		build := &Pipeline{
			Name:   "build",
			Source: &countSource{left: 50, b: smallBatch()},
			Sink:   &gateSink{gate: &gate},
		}
		probeSrc := &guardedSource{inner: &countSource{left: 50, b: smallBatch()}, gate: &gate}
		probeSink := &countSink{}
		probe := &Pipeline{Name: "probe", Source: probeSrc, Sink: probeSink}
		_, err := e.RunGraph(&Graph{
			Pipelines: []*Pipeline{build, probe},
			Deps:      [][]int{nil, {0}},
		}, RunOptions{Coordinator: true})
		if err != nil {
			t.Fatal(err)
		}
		if probeSrc.violated.Load() {
			t.Fatal("probe pipeline pulled a morsel before build finalized")
		}
		if probeSink.batches.Load() != 50 {
			t.Fatalf("probe consumed %d, want 50", probeSink.batches.Load())
		}
	}
}

// socketSource hands out morsels only to (or preferentially reports local
// work for) one socket, to steer the scheduler's first-pass choice.
type socketSource struct {
	mu   sync.Mutex
	left int
	node numa.Node
	b    *storage.Batch
}

func (s *socketSource) Next(*Worker) *storage.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.left == 0 {
		return nil
	}
	s.left--
	return s.b
}

func (s *socketSource) HasLocal(node numa.Node) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.left > 0 && node == s.node
}

// TestCrossPipelineWorkStealing: two concurrent pipelines, each advertising
// NUMA-local work for only one socket. The socket-1 pipeline is tiny, so
// socket-1 workers go dry and must steal work from the other *pipeline* to
// finish the run.
func TestCrossPipelineWorkStealing(t *testing.T) {
	e := newTestEngine(t, 4) // 2 per socket on TwoSocket
	big := &socketSource{left: 4000, node: 0, b: smallBatch()}
	small := &socketSource{left: 4, node: 1, b: smallBatch()}
	bigSink := &countSink{}
	smallSink := &countSink{}
	_, err := e.RunGraph(&Graph{Pipelines: []*Pipeline{
		{Name: "big", Source: big, Sink: bigSink},
		{Name: "small", Source: small, Sink: smallSink},
	}}, RunOptions{Coordinator: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := bigSink.batches.Load() + smallSink.batches.Load(); got != 4004 {
		t.Fatalf("consumed %d morsels, want 4004", got)
	}
	workers := 0
	bigSink.workers.Range(func(any, any) bool { workers++; return true })
	if workers < 3 {
		t.Fatalf("big pipeline processed by %d workers; want socket-1 workers to steal in (≥3)", workers)
	}
}

// TestWorkerPanicReturnsError: a panicking operator must surface as an
// error naming the pipeline, not kill the process.
func TestWorkerPanicReturnsError(t *testing.T) {
	e := newTestEngine(t, 4)
	boom := opFunc(func(w *Worker, b *storage.Batch) *storage.Batch { panic("kaboom") })
	err := e.RunPipeline(&Pipeline{
		Name:   "explosive",
		Source: &countSource{left: 100, b: smallBatch()},
		Ops:    []Op{boom},
		Sink:   &countSink{},
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	if !strings.Contains(err.Error(), "explosive") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error %q does not name the pipeline and panic", err)
	}
	// The pool must survive for the next run.
	sink := &countSink{}
	if err := e.RunPipeline(&Pipeline{Name: "after", Source: &countSource{left: 10, b: smallBatch()}, Sink: sink}); err != nil {
		t.Fatalf("pool broken after panic: %v", err)
	}
	if sink.batches.Load() != 10 {
		t.Fatalf("post-panic run consumed %d, want 10", sink.batches.Load())
	}
}

// TestFinalizePanicReturnsError: panics in Sink.Finalize are captured too.
func TestFinalizePanicReturnsError(t *testing.T) {
	e := newTestEngine(t, 2)
	err := e.RunPipeline(&Pipeline{
		Name:   "final-boom",
		Source: &countSource{left: 5, b: smallBatch()},
		Sink:   &panicSink{},
	})
	if err == nil || !strings.Contains(err.Error(), "final-boom") {
		t.Fatalf("finalize panic not reported: %v", err)
	}
}

type panicSink struct{ countSink }

func (s *panicSink) Finalize() error { panic("finalize kaboom") }

// pollGate is a PollSource that stays pending until released, then yields
// its morsels — a stand-in for an exchange receive.
type pollGate struct {
	mu       sync.Mutex
	released bool
	left     int
	b        *storage.Batch
	wake     func()
}

func (s *pollGate) Next(w *Worker) *storage.Batch {
	b, _ := s.Poll(w)
	return b
}

func (s *pollGate) Poll(*Worker) (*storage.Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.released {
		return nil, false
	}
	if s.left == 0 {
		return nil, true
	}
	s.left--
	return s.b, false
}

func (s *pollGate) SetWake(f func()) {
	s.mu.Lock()
	s.wake = f
	s.mu.Unlock()
}

func (s *pollGate) release() {
	s.mu.Lock()
	s.released = true
	f := s.wake
	s.mu.Unlock()
	if f != nil {
		f()
	}
}

// TestStreamingSourceOverlap: a pending streaming pipeline must not stall
// the run — a compute pipeline proceeds, and when input arrives the
// streaming pipeline drains and finalizes.
func TestStreamingSourceOverlap(t *testing.T) {
	e := newTestEngine(t, 4)
	gate := &pollGate{left: 20, b: smallBatch()}
	computeSink := &countSink{}
	streamSink := &countSink{}
	go func() {
		time.Sleep(2 * time.Millisecond)
		gate.release()
	}()
	stats, err := e.RunGraph(&Graph{Pipelines: []*Pipeline{
		{Name: "stream", Source: gate, Sink: streamSink},
		{Name: "compute", Source: &countSource{left: 3000, b: smallBatch()}, Sink: computeSink},
	}}, RunOptions{Coordinator: true})
	if err != nil {
		t.Fatal(err)
	}
	if streamSink.batches.Load() != 20 || computeSink.batches.Load() != 3000 {
		t.Fatalf("consumed stream=%d compute=%d", streamSink.batches.Load(), computeSink.batches.Load())
	}
	if streamSink.finalized.Load() != 1 {
		t.Fatal("streaming pipeline did not finalize exactly once")
	}
	for _, st := range stats {
		if st.Morsels == 0 {
			t.Fatalf("pipeline %s reported zero morsels", st.Name)
		}
	}
}

// TestGraphValidation rejects malformed graphs.
func TestGraphValidation(t *testing.T) {
	p := &Pipeline{Name: "p", Source: &countSource{}, Sink: &countSink{}}
	if err := (&Graph{Pipelines: []*Pipeline{p, p}, Deps: [][]int{{1}, {0}}}).Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := (&Graph{Pipelines: []*Pipeline{p}, Deps: [][]int{{3}}}).Validate(); err == nil {
		t.Fatal("out-of-range dep accepted")
	}
	if err := (&Graph{Pipelines: []*Pipeline{p}, Deps: [][]int{{0}}}).Validate(); err == nil {
		t.Fatal("self dep accepted")
	}
	if err := (&Graph{Pipelines: []*Pipeline{p, p}, Deps: [][]int{nil, {0}}}).Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

// TestOverlapRatio checks the interval sweep.
func TestOverlapRatio(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	serial := []PipelineStat{
		{Name: "a", Start: ms(0), End: ms(10), Morsels: 1},
		{Name: "b", Start: ms(10), End: ms(20), Morsels: 1},
	}
	if r := OverlapRatio(serial); r != 0 {
		t.Fatalf("serial overlap %v, want 0", r)
	}
	full := []PipelineStat{
		{Name: "a", Start: ms(0), End: ms(10), Morsels: 1},
		{Name: "b", Start: ms(0), End: ms(10), Morsels: 1},
	}
	if r := OverlapRatio(full); r != 1 {
		t.Fatalf("full overlap %v, want 1", r)
	}
	half := []PipelineStat{
		{Name: "a", Start: ms(0), End: ms(10), Morsels: 1},
		{Name: "b", Start: ms(5), End: ms(15), Morsels: 1},
	}
	if r := OverlapRatio(half); r < 0.32 || r > 0.34 {
		t.Fatalf("partial overlap %v, want ~1/3", r)
	}
	skippedOnly := []PipelineStat{{Name: "s", Skipped: true}}
	if r := OverlapRatio(skippedOnly); r != 0 {
		t.Fatalf("skipped-only overlap %v, want 0", r)
	}
}

// TestPeakConcurrency: true simultaneous depth, not pairwise overlap —
// A=[0,10] overlaps B=[1,2] and C=[8,9], but B and C never run together,
// so the peak is 2, not 3.
func TestPeakConcurrency(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	stats := []PipelineStat{
		{Name: "a", Start: ms(0), End: ms(10), Morsels: 1},
		{Name: "b", Start: ms(1), End: ms(2), Morsels: 1},
		{Name: "c", Start: ms(8), End: ms(9), Morsels: 1},
	}
	if p := PeakConcurrency(stats); p != 2 {
		t.Fatalf("peak %d, want 2 (pairwise overlap must not inflate the depth)", p)
	}
	serial := []PipelineStat{
		{Name: "a", Start: ms(0), End: ms(5), Morsels: 1},
		{Name: "b", Start: ms(5), End: ms(10), Morsels: 1},
	}
	if p := PeakConcurrency(serial); p != 1 {
		t.Fatalf("back-to-back pipelines reported peak %d, want 1", p)
	}
	if p := PeakConcurrency(nil); p != 0 {
		t.Fatalf("empty stats peak %d, want 0", p)
	}
}

// TestCancelAbortsRun: closing the cancel channel ends a run whose
// streaming source never delivers.
func TestCancelAbortsRun(t *testing.T) {
	e := newTestEngine(t, 2)
	cancel := make(chan struct{})
	gate := &pollGate{left: 1, b: smallBatch()} // never released
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(cancel)
	}()
	done := make(chan error, 1)
	go func() {
		_, err := e.RunGraph(&Graph{Pipelines: []*Pipeline{
			{Name: "starved", Source: gate, Sink: &countSink{}},
		}}, RunOptions{Coordinator: true, Cancel: cancel})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock the run")
	}
}

// TestPipelineStatsAccounting: wall intervals nest inside the run and busy
// time accumulates.
func TestPipelineStatsAccounting(t *testing.T) {
	e := newTestEngine(t, 4)
	slow := opFunc(func(w *Worker, b *storage.Batch) *storage.Batch {
		time.Sleep(50 * time.Microsecond)
		return b
	})
	stats, err := e.RunGraph(&Graph{Pipelines: []*Pipeline{
		{Name: "p", Source: &countSource{left: 40, b: smallBatch()}, Ops: []Op{slow}, Sink: &countSink{}},
	}}, RunOptions{Coordinator: true})
	if err != nil {
		t.Fatal(err)
	}
	st := stats[0]
	if st.Morsels != 40 {
		t.Fatalf("morsels %d, want 40", st.Morsels)
	}
	if st.Busy < 40*50*time.Microsecond {
		t.Fatalf("busy %v too small", st.Busy)
	}
	if st.End <= st.Start && st.Morsels > 0 {
		t.Fatalf("empty wall interval [%v,%v]", st.Start, st.End)
	}
}

func ExampleChainGraph() {
	g := ChainGraph([]*Pipeline{{Name: "a"}, {Name: "b"}, {Name: "c"}})
	fmt.Println(g.Deps)
	// Output: [[] [0] [1]]
}
