package exchange

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hsqp/internal/engine"
	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/op"
	"hsqp/internal/rdma"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

type harness struct {
	muxes []*mux.Mux
	pools []*memory.Pool
	engs  []*engine.Engine
	topo  *numa.Topology
	stop  func()
}

func newHarness(t *testing.T, servers int) *harness {
	t.Helper()
	fab, err := fabric.New(fabric.Config{Ports: servers, Rate: fabric.IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	topo := numa.TwoSocket()
	h := &harness{topo: topo}
	eps := make([]*rdma.Endpoint, servers)
	for i := 0; i < servers; i++ {
		pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
		m, err := mux.New(mux.Config{Server: i, Servers: servers, Topology: topo, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		ep := rdma.NewEndpoint(fab, i, m.RecvAlloc, m.OnRecv, m.OnInline)
		m.SetTransport(ep)
		eng, err := engine.New(engine.Config{Topology: topo, Workers: 3, MorselSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		h.muxes = append(h.muxes, m)
		h.pools = append(h.pools, pool)
		h.engs = append(h.engs, eng)
		eps[i] = ep
	}
	fab.Start()
	for i, m := range h.muxes {
		eps[i].Start()
		m.Start()
	}
	h.stop = func() {
		for i, m := range h.muxes {
			h.engs[i].Close()
			m.Close()
			eps[i].Close()
		}
		fab.Stop()
	}
	t.Cleanup(h.stop)
	return h
}

func rows(n, server int) *storage.Batch {
	schema := storage.NewSchema(
		storage.Field{Name: "k", Type: storage.TInt64},
		storage.Field{Name: "tag", Type: storage.TString},
	)
	b := storage.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i), fmt.Sprintf("s%d-%d", server, i))
	}
	return b
}

// runExchange pushes each server's rows through a Send sink and collects
// what each server's Source yields.
func runExchange(t *testing.T, servers int, mode Mode, rowsPer int) []map[string]bool {
	t.Helper()
	h := newHarness(t, servers)
	schema := rows(1, 0).Schema
	codec := ser.NewCodec(schema)

	recvs := make([]*mux.ExchangeRecv, servers)
	for i, m := range h.muxes {
		recvs[i] = m.OpenExchange(0, 1, servers)
	}
	var wg sync.WaitGroup
	got := make([]map[string]bool, servers)
	for i := 0; i < servers; i++ {
		i := i
		got[i] = map[string]bool{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			send := NewSend(SendConfig{
				Mux:        h.muxes[i],
				Pool:       h.pools[i],
				ExID:       1,
				Mode:       mode,
				Servers:    servers,
				Keys:       []int{0},
				Codec:      codec,
				NumWorkers: h.engs[i].Workers(),
			})
			if err := h.engs[i].RunPipeline(&engine.Pipeline{
				Name:   "send",
				Source: op.NewBatchSource(op.SplitIntoMorsels([]*storage.Batch{rows(rowsPer, i)}, 16)),
				Sink:   send,
			}); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := &Source{Recv: recvs[i], Codec: codec, Topo: h.topo, Scale: 0.001}
			w := &engine.Worker{ID: 0, Node: 0}
			for {
				b := src.Next(w)
				if b == nil {
					return
				}
				for r := 0; r < b.Rows(); r++ {
					got[i][b.Cols[1].Str[r]] = true
				}
			}
		}()
	}
	wg.Wait()
	return got
}

func TestPartitionExchangeCompleteAndDisjoint(t *testing.T) {
	const servers, rowsPer = 3, 200
	got := runExchange(t, servers, ModePartition, rowsPer)
	union := map[string]int{}
	for _, g := range got {
		for tag := range g {
			union[tag]++
		}
	}
	if len(union) != servers*rowsPer {
		t.Fatalf("union has %d tags, want %d", len(union), servers*rowsPer)
	}
	for tag, c := range union {
		if c != 1 {
			t.Fatalf("tag %s delivered to %d servers (partitioning must be disjoint)", tag, c)
		}
	}
	// Same key from different servers must land on the same server.
	keyHome := map[string]int{}
	for srv, g := range got {
		for tag := range g {
			var s, k int
			fmt.Sscanf(tag, "s%d-%d", &s, &k)
			key := fmt.Sprintf("%d", k)
			if prev, ok := keyHome[key]; ok && prev != srv {
				t.Fatalf("key %s split across servers %d and %d", key, prev, srv)
			}
			keyHome[key] = srv
		}
	}
}

func TestBroadcastExchangeReachesEveryone(t *testing.T) {
	const servers, rowsPer = 3, 50
	got := runExchange(t, servers, ModeBroadcast, rowsPer)
	for srv, g := range got {
		if len(g) != servers*rowsPer {
			t.Fatalf("server %d saw %d rows, want all %d", srv, len(g), servers*rowsPer)
		}
	}
}

func TestGatherExchangeCoordinatorOnly(t *testing.T) {
	const servers, rowsPer = 3, 60
	h := newHarness(t, servers)
	schema := rows(1, 0).Schema
	codec := ser.NewCodec(schema)
	recv := h.muxes[0].OpenExchange(0, 1, servers) // coordinator only
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			send := NewSend(SendConfig{
				Mux: h.muxes[i], Pool: h.pools[i], ExID: 1, Mode: ModeGather,
				Servers: servers, Codec: codec, NumWorkers: h.engs[i].Workers(),
			})
			if err := h.engs[i].RunPipeline(&engine.Pipeline{
				Name:   "send",
				Source: op.NewBatchSource([]*storage.Batch{rows(rowsPer, i)}),
				Sink:   send,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	count := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := &Source{Recv: recv, Codec: codec, Topo: h.topo, Scale: 0.001}
		w := &engine.Worker{ID: 0, Node: 0}
		for {
			b := src.Next(w)
			if b == nil {
				return
			}
			count += b.Rows()
		}
	}()
	wg.Wait()
	if count != servers*rowsPer {
		t.Fatalf("coordinator received %d rows, want %d", count, servers*rowsPer)
	}
}

func TestMessagePoolRecycledAcrossExchange(t *testing.T) {
	const servers = 2
	got := runExchange(t, servers, ModePartition, 500)
	if len(got[0])+len(got[1]) != servers*500 {
		t.Fatal("rows lost")
	}
}

// TestFinalizeBuffersNUMALocal: under AllocLocal, the flush and
// Last-marker buffers allocated by FinalizeOn must be homed on the
// finalizing worker's socket, not socket 0.
func TestFinalizeBuffersNUMALocal(t *testing.T) {
	h := newHarness(t, 1)
	schema := rows(1, 0).Schema
	codec := ser.NewCodec(schema)
	recv := h.muxes[0].OpenExchange(0, 1, 1)
	send := NewSend(SendConfig{
		Mux: h.muxes[0], Pool: h.pools[0], ExID: 1, Mode: ModePartition,
		Servers: 1, Keys: []int{0}, Codec: codec, NumWorkers: h.engs[0].Workers(),
	})
	w := &engine.Worker{ID: 0, Node: 1} // socket 1 worker
	send.Consume(w, rows(5, 0))
	if err := send.FinalizeOn(w); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		msg, done := recv.TryRecv(1)
		if msg == nil {
			if done {
				break
			}
			continue
		}
		seen++
		if msg.Node != 1 {
			t.Fatalf("finalize buffer homed on node %d, want the finalizing worker's node 1", msg.Node)
		}
		msg.Release()
	}
	if seen < 2 { // at least the data flush and the Last marker
		t.Fatalf("received %d messages, want >= 2", seen)
	}
}

// TestCorruptMessagePropagatesError: a message that fails deserialization
// must cancel the run through the scheduler's per-pipeline error path
// (FallibleSource), naming the pipeline — not via panic recovery.
func TestCorruptMessagePropagatesError(t *testing.T) {
	h := newHarness(t, 1)
	schema := rows(1, 0).Schema // (int64 k, string tag)
	codec := ser.NewCodec(schema)
	recv := h.muxes[0].OpenExchange(0, 1, 1)

	// A row whose string length field claims far more bytes than follow.
	msg := h.pools[0].Get(0)
	msg.ExchangeID = 1
	msg.Sender = 0
	msg.Seq = 0
	msg.Content = append(msg.Content, 1, 2, 3, 4, 5, 6, 7, 8) // k
	msg.Content = append(msg.Content, 0xff, 0xff, 0xff, 0x7f) // tag length: 2 GB
	h.muxes[0].Send(0, msg)

	sink := &op.Collector{}
	err := h.engs[0].RunPipeline(&engine.Pipeline{
		Name:   "recv",
		Source: &Source{Recv: recv, Codec: codec, Topo: h.topo, Scale: 0.001},
		Sink:   sink,
	})
	if err == nil {
		t.Fatal("corrupt message did not abort the run")
	}
	if !strings.Contains(err.Error(), "recv") || !strings.Contains(err.Error(), "corrupt message") {
		t.Fatalf("error does not name the pipeline and cause: %v", err)
	}
}

// skewRows builds a probe batch where roughly half the rows carry the hot
// key and the rest spread over cold keys, each row tagged with its origin.
func skewRows(n, server int, hotKey int64, coldKeys int) *storage.Batch {
	schema := storage.NewSchema(
		storage.Field{Name: "k", Type: storage.TInt64},
		storage.Field{Name: "tag", Type: storage.TString},
	)
	b := storage.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		k := hotKey
		if i%2 == 0 {
			k = int64(1000 + (server*n+i)%coldKeys)
		}
		b.AppendRow(k, fmt.Sprintf("s%d-%d", server, i))
	}
	return b
}

// TestSkewAdaptiveExchange drives the full adaptive flow at the exchange
// level: 3 servers sample a hot-key-heavy probe stream, agree on the hot
// set via the sketch control exchange, and then (a) hot probe tuples stay
// on their origin server, (b) cold keys land on exactly one server,
// (c) hot build rows are replicated to every server and cold build rows
// to exactly one.
func TestSkewAdaptiveExchange(t *testing.T) {
	const (
		servers  = 3
		rowsPer  = 3000
		hotKey   = int64(42)
		coldKeys = 50
	)
	h := newHarness(t, servers)
	probeSchema := skewRows(1, 0, hotKey, coldKeys).Schema
	probeCodec := ser.NewCodec(probeSchema)
	buildSchema := storage.NewSchema(
		storage.Field{Name: "k", Type: storage.TInt64},
		storage.Field{Name: "btag", Type: storage.TString},
	)
	buildCodec := ser.NewCodec(buildSchema)

	skCfg := SkewConfig{SampleBudget: 512, HotFraction: 0.2, MaxHot: 8}
	coords := make([]*SkewCoord, servers)
	probeRecvs := make([]*mux.ExchangeRecv, servers)
	buildRecvs := make([]*mux.ExchangeRecv, servers)
	for i, m := range h.muxes {
		coords[i] = NewSkewCoord(SkewCoordConfig{
			Mux: m, Pool: h.pools[i], ExID: 7, Servers: servers, Config: skCfg,
		})
		probeRecvs[i] = m.OpenExchange(0, 8, servers)
		buildRecvs[i] = m.OpenExchange(0, 9, servers)
	}

	// Per server: one graph with the probe-send and the (gated) build-send.
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		i := i
		probeSend := NewSend(SendConfig{
			Mux: h.muxes[i], Pool: h.pools[i], ExID: 8, Mode: ModeSkewProbe,
			Servers: servers, Keys: []int{0}, Codec: probeCodec,
			NumWorkers: h.engs[i].Workers(), Skew: coords[i],
		})
		build := storage.NewBatch(buildSchema, coldKeys+1)
		build.AppendRow(hotKey, fmt.Sprintf("b%d-hot", i))
		for k := 0; k < coldKeys; k++ {
			if k%servers == i { // each server owns a share of the cold build keys
				build.AppendRow(int64(1000+k), fmt.Sprintf("b%d-%d", i, k))
			}
		}
		buildSend := NewSend(SendConfig{
			Mux: h.muxes[i], Pool: h.pools[i], ExID: 9, Mode: ModeSkewBuild,
			Servers: servers, Keys: []int{0}, Codec: buildCodec,
			NumWorkers: h.engs[i].Workers(), Skew: coords[i],
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := &engine.Graph{Pipelines: []*engine.Pipeline{
				{Name: "probe-send",
					Source: op.NewBatchSource(op.SplitIntoMorsels([]*storage.Batch{skewRows(rowsPer, i, hotKey, coldKeys)}, 64)),
					Sink:   probeSend},
				{Name: "build-send",
					Source: NewGatedSource(op.NewBatchSource([]*storage.Batch{build}), coords[i]),
					Sink:   buildSend},
			}}
			if _, err := h.engs[i].RunGraph(g, engine.RunOptions{Coordinator: i == 0}); err != nil {
				t.Error(err)
			}
		}()
	}

	type recvRow struct {
		key int64
		tag string
	}
	drain := func(recvs []*mux.ExchangeRecv, codec *ser.Codec) [][]recvRow {
		out := make([][]recvRow, servers)
		var dwg sync.WaitGroup
		for i := 0; i < servers; i++ {
			i := i
			dwg.Add(1)
			go func() {
				defer dwg.Done()
				src := &Source{Recv: recvs[i], Codec: codec, Topo: h.topo, Scale: 0.001}
				w := &engine.Worker{ID: 0, Node: 0}
				for {
					b := src.Next(w)
					if b == nil {
						return
					}
					for r := 0; r < b.Rows(); r++ {
						out[i] = append(out[i], recvRow{b.Cols[0].I64[r], b.Cols[1].Str[r]})
					}
				}
			}()
		}
		dwg.Wait()
		return out
	}
	probeGot := drain(probeRecvs, probeCodec)
	buildGot := drain(buildRecvs, buildCodec)
	wg.Wait()

	for i, c := range coords {
		if !c.Ready() {
			t.Fatalf("server %d: skew decision never published", i)
		}
		if !c.Hot(storage.HashI64(hotKey)) {
			t.Fatalf("server %d: hot key not detected (stats %+v)", i, c.Stats())
		}
	}

	// (a)+(b): probe side complete, hot rows on their origin server, cold
	// keys on exactly one server.
	total := 0
	coldHome := map[int64]int{}
	for srv, rs := range probeGot {
		total += len(rs)
		for _, r := range rs {
			var origin, idx int
			fmt.Sscanf(r.tag, "s%d-%d", &origin, &idx)
			if r.key == hotKey {
				if origin != srv {
					t.Fatalf("hot probe row %q shipped from server %d to %d", r.tag, origin, srv)
				}
			} else {
				if prev, ok := coldHome[r.key]; ok && prev != srv {
					t.Fatalf("cold key %d split across servers %d and %d", r.key, prev, srv)
				}
				coldHome[r.key] = srv
			}
		}
	}
	if total != servers*rowsPer {
		t.Fatalf("probe side delivered %d rows, want %d", total, servers*rowsPer)
	}

	// (c): every server holds all hot build rows; cold build rows land once.
	coldBuild := map[string]int{}
	for srv, rs := range buildGot {
		hot := 0
		for _, r := range rs {
			if r.key == hotKey {
				hot++
			} else {
				coldBuild[r.tag]++
				if storage.PartitionOf(storage.HashI64(r.key), servers) != srv {
					t.Fatalf("cold build row %q landed on server %d, not its hash owner", r.tag, srv)
				}
			}
		}
		if hot != servers {
			t.Fatalf("server %d holds %d hot build rows, want one per sender (%d)", srv, hot, servers)
		}
	}
	for tag, cnt := range coldBuild {
		if cnt != 1 {
			t.Fatalf("cold build row %q delivered %d times", tag, cnt)
		}
	}
}

// TestSkewCoordCancelUnblocks: a query cancelled while the heavy-hitter
// gather is still waiting for remote sketches must unblock WaitReady with
// an error (and terminate the gather goroutine) instead of deadlocking a
// send finalize forever.
func TestSkewCoordCancelUnblocks(t *testing.T) {
	h := newHarness(t, 2)
	cancel := make(chan struct{})
	mk := func(i int) *SkewCoord {
		return NewSkewCoord(SkewCoordConfig{
			Mux: h.muxes[i], Pool: h.pools[i], ExID: 3, Servers: 2,
			Config: SkewConfig{SampleBudget: 4}, Cancel: cancel,
		})
	}
	c0, _ := mk(0), mk(1)
	// Server 0 publishes its sketch; server 1 never does (it "crashed"),
	// so the cluster-wide decision can never complete.
	c0.CompleteSampling(0)
	done := make(chan error, 1)
	go func() { done <- c0.WaitReady() }()
	select {
	case err := <-done:
		t.Fatalf("WaitReady returned before cancel: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(cancel)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitReady must fail when the query is cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock WaitReady")
	}
}
