package exchange

import (
	"fmt"
	"sync"
	"testing"

	"hsqp/internal/engine"
	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/op"
	"hsqp/internal/rdma"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

type harness struct {
	muxes []*mux.Mux
	pools []*memory.Pool
	engs  []*engine.Engine
	topo  *numa.Topology
	stop  func()
}

func newHarness(t *testing.T, servers int) *harness {
	t.Helper()
	fab, err := fabric.New(fabric.Config{Ports: servers, Rate: fabric.IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	topo := numa.TwoSocket()
	h := &harness{topo: topo}
	eps := make([]*rdma.Endpoint, servers)
	for i := 0; i < servers; i++ {
		pool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
		m, err := mux.New(mux.Config{Server: i, Servers: servers, Topology: topo, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		ep := rdma.NewEndpoint(fab, i, m.RecvAlloc, m.OnRecv, m.OnInline)
		m.SetTransport(ep)
		eng, err := engine.New(engine.Config{Topology: topo, Workers: 3, MorselSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		h.muxes = append(h.muxes, m)
		h.pools = append(h.pools, pool)
		h.engs = append(h.engs, eng)
		eps[i] = ep
	}
	fab.Start()
	for i, m := range h.muxes {
		eps[i].Start()
		m.Start()
	}
	h.stop = func() {
		for i, m := range h.muxes {
			h.engs[i].Close()
			m.Close()
			eps[i].Close()
		}
		fab.Stop()
	}
	t.Cleanup(h.stop)
	return h
}

func rows(n, server int) *storage.Batch {
	schema := storage.NewSchema(
		storage.Field{Name: "k", Type: storage.TInt64},
		storage.Field{Name: "tag", Type: storage.TString},
	)
	b := storage.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i), fmt.Sprintf("s%d-%d", server, i))
	}
	return b
}

// runExchange pushes each server's rows through a Send sink and collects
// what each server's Source yields.
func runExchange(t *testing.T, servers int, mode Mode, rowsPer int) []map[string]bool {
	t.Helper()
	h := newHarness(t, servers)
	schema := rows(1, 0).Schema
	codec := ser.NewCodec(schema)

	recvs := make([]*mux.ExchangeRecv, servers)
	for i, m := range h.muxes {
		recvs[i] = m.OpenExchange(1, servers)
	}
	var wg sync.WaitGroup
	got := make([]map[string]bool, servers)
	for i := 0; i < servers; i++ {
		i := i
		got[i] = map[string]bool{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			send := NewSend(SendConfig{
				Mux:        h.muxes[i],
				Pool:       h.pools[i],
				ExID:       1,
				Mode:       mode,
				Servers:    servers,
				Keys:       []int{0},
				Codec:      codec,
				NumWorkers: h.engs[i].Workers(),
			})
			if err := h.engs[i].RunPipeline(&engine.Pipeline{
				Name:   "send",
				Source: op.NewBatchSource(op.SplitIntoMorsels([]*storage.Batch{rows(rowsPer, i)}, 16)),
				Sink:   send,
			}); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := &Source{Recv: recvs[i], Codec: codec, Topo: h.topo, Scale: 0.001}
			w := &engine.Worker{ID: 0, Node: 0}
			for {
				b := src.Next(w)
				if b == nil {
					return
				}
				for r := 0; r < b.Rows(); r++ {
					got[i][b.Cols[1].Str[r]] = true
				}
			}
		}()
	}
	wg.Wait()
	return got
}

func TestPartitionExchangeCompleteAndDisjoint(t *testing.T) {
	const servers, rowsPer = 3, 200
	got := runExchange(t, servers, ModePartition, rowsPer)
	union := map[string]int{}
	for _, g := range got {
		for tag := range g {
			union[tag]++
		}
	}
	if len(union) != servers*rowsPer {
		t.Fatalf("union has %d tags, want %d", len(union), servers*rowsPer)
	}
	for tag, c := range union {
		if c != 1 {
			t.Fatalf("tag %s delivered to %d servers (partitioning must be disjoint)", tag, c)
		}
	}
	// Same key from different servers must land on the same server.
	keyHome := map[string]int{}
	for srv, g := range got {
		for tag := range g {
			var s, k int
			fmt.Sscanf(tag, "s%d-%d", &s, &k)
			key := fmt.Sprintf("%d", k)
			if prev, ok := keyHome[key]; ok && prev != srv {
				t.Fatalf("key %s split across servers %d and %d", key, prev, srv)
			}
			keyHome[key] = srv
		}
	}
}

func TestBroadcastExchangeReachesEveryone(t *testing.T) {
	const servers, rowsPer = 3, 50
	got := runExchange(t, servers, ModeBroadcast, rowsPer)
	for srv, g := range got {
		if len(g) != servers*rowsPer {
			t.Fatalf("server %d saw %d rows, want all %d", srv, len(g), servers*rowsPer)
		}
	}
}

func TestGatherExchangeCoordinatorOnly(t *testing.T) {
	const servers, rowsPer = 3, 60
	h := newHarness(t, servers)
	schema := rows(1, 0).Schema
	codec := ser.NewCodec(schema)
	recv := h.muxes[0].OpenExchange(1, servers) // coordinator only
	var wg sync.WaitGroup
	for i := 0; i < servers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			send := NewSend(SendConfig{
				Mux: h.muxes[i], Pool: h.pools[i], ExID: 1, Mode: ModeGather,
				Servers: servers, Codec: codec, NumWorkers: h.engs[i].Workers(),
			})
			if err := h.engs[i].RunPipeline(&engine.Pipeline{
				Name:   "send",
				Source: op.NewBatchSource([]*storage.Batch{rows(rowsPer, i)}),
				Sink:   send,
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	count := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := &Source{Recv: recv, Codec: codec, Topo: h.topo, Scale: 0.001}
		w := &engine.Worker{ID: 0, Node: 0}
		for {
			b := src.Next(w)
			if b == nil {
				return
			}
			count += b.Rows()
		}
	}()
	wg.Wait()
	if count != servers*rowsPer {
		t.Fatalf("coordinator received %d rows, want %d", count, servers*rowsPer)
	}
}

func TestMessagePoolRecycledAcrossExchange(t *testing.T) {
	const servers = 2
	got := runExchange(t, servers, ModePartition, 500)
	if len(got[0])+len(got[1]) != servers*500 {
		t.Fatal("rows lost")
	}
}
