// Package exchange implements the decoupled exchange operators of §3.2.1.
//
// A decoupled exchange operator only talks to its server's communication
// multiplexer — it is unaware of every other exchange operator, local or
// remote. The send side consumes tuples from the preceding pipeline
// operator, partitions them by the CRC32 hash of the key attributes (or
// serializes once and broadcasts with a retain count), fills 512 KB pooled
// messages with the schema-specialized wire format of Figure 8, and hands
// full messages to the multiplexer. The receive side pulls messages from
// the per-NUMA-socket queues (stealing when local ones run dry),
// deserializes and pushes the tuples into the next pipeline.
//
// The same package implements the classic exchange-operator baseline
// (Mode ModeClassicPartition): n×t parallel units with fixed partition
// assignment and no stealing — used by Figure 2's comparison.
package exchange

import (
	"fmt"
	"sync/atomic"

	"hsqp/internal/engine"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// Mode selects the data movement pattern.
type Mode int

const (
	// ModePartition hash-partitions tuples into one message stream per
	// server (hybrid parallelism: servers are the parallel units).
	ModePartition Mode = iota
	// ModeBroadcast serializes tuples once and sends the message to every
	// server, using a retain count instead of copies.
	ModeBroadcast
	// ModeGather sends all tuples to the coordinator (server 0).
	ModeGather
	// ModeClassicPartition hash-partitions into n×t streams, one per
	// (server, worker) parallel unit — the classic baseline.
	ModeClassicPartition
)

func (m Mode) String() string {
	switch m {
	case ModePartition:
		return "partition"
	case ModeBroadcast:
		return "broadcast"
	case ModeGather:
		return "gather"
	case ModeClassicPartition:
		return "classic-partition"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SendConfig configures a send-side exchange operator.
type SendConfig struct {
	Mux     *mux.Mux
	Pool    *memory.Pool
	ExID    int32
	Mode    Mode
	Servers int
	// WorkersPerServer is required for ModeClassicPartition (t).
	WorkersPerServer int
	// Keys are the partition key columns (partition modes).
	Keys []int
	// Codec serializes the input schema.
	Codec *ser.Codec
	// NumWorkers is this engine's worker count (per-worker send state).
	NumWorkers int
	// Topo/Scale charge the QPI cost of serializing into a message buffer
	// homed on another socket (Figure 9's send-side share).
	Topo  *numa.Topology
	Scale float64
}

// Send is the send-side pipeline breaker.
type Send struct {
	cfg     SendConfig
	units   int // number of destination streams
	workers []workerSendState

	tuplesSent atomic.Uint64
}

type workerSendState struct {
	// open[unit] is the message currently being filled for a destination.
	open []*memory.Message
	_pad [8]uint64 // avoid false sharing between workers
}

// NewSend creates the sink.
func NewSend(cfg SendConfig) *Send {
	units := cfg.Servers
	switch cfg.Mode {
	case ModeClassicPartition:
		units = cfg.Servers * cfg.WorkersPerServer
		if cfg.WorkersPerServer <= 0 {
			panic("exchange: classic partition needs WorkersPerServer")
		}
	case ModeBroadcast, ModeGather:
		units = 1 // one stream, fanned out / directed by flush
	}
	s := &Send{cfg: cfg, units: units}
	s.workers = make([]workerSendState, cfg.NumWorkers)
	for i := range s.workers {
		s.workers[i].open = make([]*memory.Message, units)
	}
	return s
}

// TuplesSent reports how many tuples passed through the operator.
func (s *Send) TuplesSent() uint64 { return s.tuplesSent.Load() }

// Consume implements engine.Sink: partition/serialize (step 2 of
// Figure 7) and pass full messages to the multiplexer (step 3).
func (s *Send) Consume(w *engine.Worker, b *storage.Batch) {
	st := &s.workers[w.ID]
	n := b.Rows()
	s.tuplesSent.Add(uint64(n))
	for i := 0; i < n; i++ {
		unit := 0
		switch s.cfg.Mode {
		case ModePartition:
			unit = storage.PartitionOf(storage.HashRow(b, s.cfg.Keys, i), s.cfg.Servers)
		case ModeClassicPartition:
			unit = storage.PartitionOf(storage.HashRow(b, s.cfg.Keys, i), s.units)
		}
		msg := st.open[unit]
		if msg == nil {
			msg = s.newMessage(w)
			st.open[unit] = msg
		}
		need := s.cfg.Codec.RowSize(b, i)
		if need > msg.Remaining() {
			if need > msg.Capacity() {
				panic(fmt.Sprintf("exchange: tuple of %d bytes exceeds message capacity %d", need, msg.Capacity()))
			}
			s.dispatch(unit, msg, false)
			msg = s.newMessage(w)
			st.open[unit] = msg
		}
		before := len(msg.Content)
		msg.Content = s.cfg.Codec.EncodeRow(b, i, msg.Content)
		if s.cfg.Topo != nil {
			s.cfg.Topo.Charge(w.Node, msg.Node, len(msg.Content)-before, s.cfg.Scale)
		}
	}
}

func (s *Send) newMessage(w *engine.Worker) *memory.Message {
	// Step 4 of Figure 7: reuse a NUMA-local message from the pool.
	return s.cfg.Pool.Get(w.Node)
}

// dispatch routes one finished message stream unit. The header is stamped
// here, before the message is handed over, because a broadcast shares one
// buffer across destinations.
func (s *Send) dispatch(unit int, msg *memory.Message, last bool) {
	msg.Last = last
	msg.ExchangeID = s.cfg.ExID
	msg.Sender = s.cfg.Mux.ServerID()
	switch s.cfg.Mode {
	case ModePartition:
		s.cfg.Mux.Send(unit, msg)
	case ModeClassicPartition:
		srv := unit / s.cfg.WorkersPerServer
		msg.Part = int16(unit % s.cfg.WorkersPerServer)
		s.cfg.Mux.Send(srv, msg)
	case ModeGather:
		s.cfg.Mux.Send(0, msg)
	case ModeBroadcast:
		// One buffer, n references: retain for the n−1 extra destinations.
		if s.cfg.Servers > 1 {
			msg.Retain(s.cfg.Servers - 1)
		}
		for d := 0; d < s.cfg.Servers; d++ {
			s.cfg.Mux.Send(d, msg)
		}
	}
}

// Finalize flushes all partially filled messages and emits the Last
// markers that close this server's contribution to the exchange.
func (s *Send) Finalize() error {
	for wi := range s.workers {
		st := &s.workers[wi]
		for unit, msg := range st.open {
			if msg != nil && len(msg.Content) > 0 {
				s.dispatch(unit, msg, false)
			} else if msg != nil {
				msg.Release()
			}
			st.open[unit] = nil
		}
	}
	// Last markers: empty messages flagged Last.
	stamp := func(m *memory.Message) *memory.Message {
		m.Last = true
		m.ExchangeID = s.cfg.ExID
		m.Sender = s.cfg.Mux.ServerID()
		return m
	}
	switch s.cfg.Mode {
	case ModePartition:
		for d := 0; d < s.cfg.Servers; d++ {
			s.cfg.Mux.Send(d, stamp(s.cfg.Pool.Get(0)))
		}
	case ModeClassicPartition:
		for u := 0; u < s.units; u++ {
			m := stamp(s.cfg.Pool.Get(0))
			m.Part = int16(u % s.cfg.WorkersPerServer)
			s.cfg.Mux.Send(u/s.cfg.WorkersPerServer, m)
		}
	case ModeGather:
		s.cfg.Mux.Send(0, stamp(s.cfg.Pool.Get(0)))
	case ModeBroadcast:
		for d := 0; d < s.cfg.Servers; d++ {
			s.cfg.Mux.Send(d, stamp(s.cfg.Pool.Get(0)))
		}
	}
	return nil
}

// Source is the receive-side exchange: an engine.Source yielding
// deserialized batches (steps 5–7 of Figure 7).
type Source struct {
	Recv  *mux.ExchangeRecv
	Codec *ser.Codec
	Topo  *numa.Topology
	// Scale is the simulation time scale for the NUMA remote-access
	// charge.
	Scale float64
	// Classic makes workers consume only their fixed partition.
	Classic bool

	tuplesRecv atomic.Uint64
}

// Next implements engine.Source (blocking receive).
func (src *Source) Next(w *engine.Worker) *storage.Batch {
	for {
		var msg *memory.Message
		if src.Classic {
			msg = src.Recv.RecvWorker(w.ID)
		} else {
			msg = src.Recv.Recv(w.Node)
		}
		if msg == nil {
			return nil
		}
		if b := src.decode(w, msg); b != nil {
			return b
		}
	}
}

// Poll implements engine.PollSource: it never blocks, reporting
// (nil, false) while the exchange is still open but has no message queued
// — the distinction that lets a receive pipeline become runnable as soon
// as the first message lands instead of stalling a whole plan stage.
func (src *Source) Poll(w *engine.Worker) (*storage.Batch, bool) {
	for {
		var msg *memory.Message
		var done bool
		if src.Classic {
			msg, done = src.Recv.TryRecvWorker(w.ID)
		} else {
			msg, done = src.Recv.TryRecv(w.Node)
		}
		if msg == nil {
			return nil, done
		}
		if b := src.decode(w, msg); b != nil {
			return b, false
		}
	}
}

// SetWake implements engine.WakeSource.
func (src *Source) SetWake(f func()) { src.Recv.SetWake(f) }

// WakeTargetsWorker implements engine.TargetedWakeSource: classic-mode
// deliveries land in one fixed worker's private queue, so wakes must reach
// the whole pool.
func (src *Source) WakeTargetsWorker() bool { return src.Classic }

// decode deserializes one message (step 6 of Figure 7), releasing the
// buffer back to the pool; nil for bare Last markers.
func (src *Source) decode(w *engine.Worker, msg *memory.Message) *storage.Batch {
	if len(msg.Content) == 0 {
		msg.Release()
		return nil // bare Last marker
	}
	// Touching a message homed on another socket streams it over QPI.
	if src.Topo != nil {
		src.Topo.Charge(w.Node, msg.Node, len(msg.Content), src.Scale)
	}
	b := storage.NewBatch(src.Codec.Schema(), 256)
	if _, err := src.Codec.DecodeAll(msg.Content, b); err != nil {
		msg.Release()
		panic(fmt.Sprintf("exchange: corrupt message for exchange: %v", err))
	}
	msg.Release()
	src.tuplesRecv.Add(uint64(b.Rows()))
	if b.Rows() == 0 {
		return nil
	}
	return b
}

// TuplesReceived reports how many tuples were deserialized.
func (src *Source) TuplesReceived() uint64 { return src.tuplesRecv.Load() }
