// Package exchange implements the decoupled exchange operators of §3.2.1.
//
// A decoupled exchange operator only talks to its server's communication
// multiplexer — it is unaware of every other exchange operator, local or
// remote. The send side consumes tuples from the preceding pipeline
// operator, partitions them by the CRC32 hash of the key attributes (or
// serializes once and broadcasts with a retain count), fills 512 KB pooled
// messages with the schema-specialized wire format of Figure 8, and hands
// full messages to the multiplexer. The receive side pulls messages from
// the per-NUMA-socket queues (stealing when local ones run dry),
// deserializes and pushes the tuples into the next pipeline.
//
// The same package implements the classic exchange-operator baseline
// (Mode ModeClassicPartition): n×t parallel units with fixed partition
// assignment and no stealing — used by Figure 2's comparison.
//
// Adaptive skew handling (Flow-Join style, see skew.go): the probe-side
// send samples key hashes through a Space-Saving sketch during the first
// morsels, the per-server sketches are merged cluster-wide, and tuples of
// globally heavy keys switch routes — heavy probe tuples stay on their
// origin server while the build side replicates heavy keys to every
// server through the Retain-based selective-broadcast stream. Cold keys
// keep ordinary hash partitioning.
package exchange

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hsqp/internal/engine"
	"hsqp/internal/invariant"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// Mode selects the data movement pattern.
type Mode int

const (
	// ModePartition hash-partitions tuples into one message stream per
	// server (hybrid parallelism: servers are the parallel units).
	ModePartition Mode = iota
	// ModeBroadcast serializes tuples once and sends the message to every
	// server, using a retain count instead of copies.
	ModeBroadcast
	// ModeGather sends all tuples to the coordinator (server 0).
	ModeGather
	// ModeClassicPartition hash-partitions into n×t streams, one per
	// (server, worker) parallel unit — the classic baseline.
	ModeClassicPartition
	// ModeSkewProbe is the probe side of a skew-adaptive join: key hashes
	// are sampled through the SkewCoord's sketch during the first morsels;
	// after the cluster-wide heavy-hitter decision, tuples of hot keys stay
	// on their origin server and cold keys hash-partition as usual.
	ModeSkewProbe
	// ModeSkewBuild is the build side of a skew-adaptive join: tuples of
	// hot keys are replicated to every server through a Retain-based
	// selective-broadcast stream, cold keys hash-partition. The pipeline
	// feeding this sink must be gated on the SkewCoord decision
	// (GatedSource).
	ModeSkewBuild
)

func (m Mode) String() string {
	switch m {
	case ModePartition:
		return "partition"
	case ModeBroadcast:
		return "broadcast"
	case ModeGather:
		return "gather"
	case ModeClassicPartition:
		return "classic-partition"
	case ModeSkewProbe:
		return "skew-probe"
	case ModeSkewBuild:
		return "skew-build"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SendConfig configures a send-side exchange operator.
type SendConfig struct {
	Mux  *mux.Mux
	Pool *memory.Pool
	// QueryID identifies the query this exchange belongs to; the
	// multiplexer routes on (QueryID, ExID) so concurrent queries may reuse
	// the same exchange-id sequence.
	QueryID int32
	ExID    int32
	Mode    Mode
	Servers int
	// WorkersPerServer is required for ModeClassicPartition (t).
	WorkersPerServer int
	// Keys are the partition key columns (partition modes).
	Keys []int
	// Codec serializes the input schema.
	Codec *ser.Codec
	// NumWorkers is this engine's worker count (per-worker send state).
	NumWorkers int
	// Topo/Scale charge the QPI cost of serializing into a message buffer
	// homed on another socket (Figure 9's send-side share).
	Topo  *numa.Topology
	Scale float64
	// Skew is the per-server heavy-hitter coordinator shared by the probe
	// and build sides of one skew-adaptive join (ModeSkewProbe /
	// ModeSkewBuild).
	Skew *SkewCoord
}

// Send is the send-side pipeline breaker.
type Send struct {
	cfg     SendConfig
	units   int // number of destination streams
	workers []workerSendState

	// destSeq[d] is the next wire sequence number for destination server d.
	// Stamping and handing the message to the multiplexer happen under
	// destMu[d] so each per-destination stream stays strictly increasing
	// even when workers dispatch concurrently — per-destination locks,
	// because Mux.Send can block on a backed-up link and one straggler
	// destination must not head-of-line-block sends to healthy ones.
	// broadcastStamped acquires all locks in index order.
	destMu  []sync.Mutex
	destSeq []uint32

	lastNode   atomic.Int32 // node of the most recent consuming worker
	tuplesSent atomic.Uint64
	hotTuples  atomic.Uint64 // tuples routed via the hot-key path
	bytesSent  atomic.Uint64 // wire bytes (header + payload) handed to the mux
}

type workerSendState struct {
	// open[unit] is the message currently being filled for a destination.
	open []*memory.Message
	// held buffers batches during the skew sampling phase (ModeSkewProbe):
	// nothing is routed until the cluster-wide heavy-hitter set is known.
	held []*storage.Batch
	_pad [8]uint64 // avoid false sharing between workers
}

// NewSend creates the sink.
func NewSend(cfg SendConfig) *Send {
	units := cfg.Servers
	switch cfg.Mode {
	case ModeClassicPartition:
		units = cfg.Servers * cfg.WorkersPerServer
		if cfg.WorkersPerServer <= 0 {
			invariant.Failf("exchange: classic partition needs WorkersPerServer")
		}
	case ModeBroadcast, ModeGather:
		units = 1 // one stream, fanned out / directed by flush
	case ModeSkewBuild:
		// One stream per server for cold keys plus the selective-broadcast
		// stream for hot keys.
		units = cfg.Servers + 1
	}
	if (cfg.Mode == ModeSkewProbe || cfg.Mode == ModeSkewBuild) && cfg.Skew == nil {
		invariant.Failf("exchange: skew modes need a SkewCoord")
	}
	s := &Send{cfg: cfg, units: units,
		destMu: make([]sync.Mutex, cfg.Servers), destSeq: make([]uint32, cfg.Servers)}
	s.workers = make([]workerSendState, cfg.NumWorkers)
	for i := range s.workers {
		s.workers[i].open = make([]*memory.Message, units)
	}
	return s
}

// TuplesSent reports how many tuples passed through the operator.
func (s *Send) TuplesSent() uint64 { return s.tuplesSent.Load() }

// HotTuples reports how many tuples took the hot-key route (stayed local
// on the probe side, selective-broadcast on the build side).
func (s *Send) HotTuples() uint64 { return s.hotTuples.Load() }

// BytesSent reports the exact wire bytes (headers + payload, including
// loopback partitions to this server and Last markers) this exchange put
// on the multiplexer. Broadcast buffers count once per destination.
func (s *Send) BytesSent() uint64 { return s.bytesSent.Load() }

// SinkStats implements engine.SinkStats: the per-pipeline stats expose
// tuples and exact wire bytes, so per-query byte accounting no longer
// depends on cluster-wide mux deltas.
func (s *Send) SinkStats() (rows, bytes uint64) {
	return s.tuplesSent.Load(), s.bytesSent.Load()
}

// OpName implements engine.NamedOp.
func (s *Send) OpName() string { return "send(" + s.cfg.Mode.String() + ")" }

// Consume implements engine.Sink: partition/serialize (step 2 of
// Figure 7) and pass full messages to the multiplexer (step 3).
func (s *Send) Consume(w *engine.Worker, b *storage.Batch) {
	st := &s.workers[w.ID]
	s.lastNode.Store(int32(w.Node))
	s.tuplesSent.Add(uint64(b.Rows()))
	switch s.cfg.Mode {
	case ModeSkewProbe:
		sk := s.cfg.Skew
		if !sk.Ready() {
			// Sampling phase: hold the batch and feed the sketch; the
			// worker that exhausts the budget publishes the local sketch
			// (non-blocking — the cluster-wide merge runs asynchronously).
			st.held = append(st.held, b)
			if sk.ObserveBatch(b, s.cfg.Keys) {
				sk.CompleteSampling(w.Node)
			}
			return
		}
		s.flushHeld(st, w.Node)
	case ModeSkewBuild:
		// Plans gate the build pipeline on the decision (GatedSource); a
		// direct caller may not, so block defensively.
		if !s.cfg.Skew.Ready() {
			if err := s.cfg.Skew.WaitReady(); err != nil {
				return // query is being cancelled; drop
			}
		}
	}
	s.routeBatch(st, w.Node, b)
}

// flushHeld routes the batches a worker buffered during skew sampling.
func (s *Send) flushHeld(st *workerSendState, node numa.Node) {
	if len(st.held) == 0 {
		return
	}
	held := st.held
	st.held = nil
	for _, b := range held {
		s.routeBatch(st, node, b)
	}
}

// routeBatch serializes every row of b into the open message of its
// destination stream, dispatching messages as they fill up.
func (s *Send) routeBatch(st *workerSendState, node numa.Node, b *storage.Batch) {
	n := b.Rows()
	var hot uint64 // tallied locally; one shared atomic add per batch
	for i := 0; i < n; i++ {
		unit := 0
		switch s.cfg.Mode {
		case ModePartition:
			unit = storage.PartitionOf(storage.HashRow(b, s.cfg.Keys, i), s.cfg.Servers)
		case ModeClassicPartition:
			unit = storage.PartitionOf(storage.HashRow(b, s.cfg.Keys, i), s.units)
		case ModeSkewProbe:
			h := storage.HashRow(b, s.cfg.Keys, i)
			if s.cfg.Skew.Hot(h) {
				// Hot probe tuples stay local: every server holds the
				// broadcast build rows of hot keys, so probing on the
				// origin server is correct and spreads the heavy key over
				// all servers instead of one owner.
				unit = s.cfg.Mux.ServerID()
				hot++
			} else {
				unit = storage.PartitionOf(h, s.cfg.Servers)
			}
		case ModeSkewBuild:
			h := storage.HashRow(b, s.cfg.Keys, i)
			if s.cfg.Skew.Hot(h) {
				unit = s.units - 1 // selective-broadcast stream
				hot++
			} else {
				unit = storage.PartitionOf(h, s.cfg.Servers)
			}
		}
		msg := st.open[unit]
		if msg == nil {
			msg = s.newMessage(node)
			//lint:allow poolsafe open per-destination buffers are owned by this thread state and flushed (dispatched or released) in finalizeOn
			st.open[unit] = msg
		}
		need := s.cfg.Codec.RowSize(b, i)
		if need > msg.Remaining() {
			if need > msg.Capacity() {
				invariant.Failf("exchange: tuple of %d bytes exceeds message capacity %d", need, msg.Capacity())
			}
			s.dispatch(unit, msg, false)
			msg = s.newMessage(node)
			//lint:allow poolsafe open per-destination buffers are owned by this thread state and flushed (dispatched or released) in finalizeOn
			st.open[unit] = msg
		}
		before := len(msg.Content)
		msg.Content = s.cfg.Codec.EncodeRow(b, i, msg.Content)
		if s.cfg.Topo != nil {
			s.cfg.Topo.Charge(node, msg.Node, len(msg.Content)-before, s.cfg.Scale)
		}
	}
	if hot > 0 {
		s.hotTuples.Add(hot)
	}
}

func (s *Send) newMessage(node numa.Node) *memory.Message {
	// Step 4 of Figure 7: reuse a NUMA-local message from the pool.
	return s.cfg.Pool.Get(node)
}

// sendStamped stamps the next per-destination sequence number and hands
// the message to the multiplexer. Allocation and enqueue happen under the
// destination's mutex so its stream stays strictly increasing.
func (s *Send) sendStamped(dst int, msg *memory.Message) {
	s.bytesSent.Add(uint64(msg.WireSize()))
	mWireBytes.Add(uint64(msg.WireSize()))
	mMessages.Inc()
	s.destMu[dst].Lock()
	msg.Seq = s.destSeq[dst]
	s.destSeq[dst]++
	//lint:allow lockblock stamping and enqueue must be atomic per destination; destMu is leaf-level and Mux.Send blocks only on transport backpressure, never on destMu
	s.cfg.Mux.Send(dst, msg)
	s.destMu[dst].Unlock()
}

// broadcastStamped sends one shared buffer to every server via the retain
// count. The single wire sequence number must be valid for all
// destinations, so it holds every destination lock (in index order, so
// concurrent broadcasts cannot deadlock), takes the maximum of the
// per-destination counters and advances them all past it — destination
// streams may skip values but never regress.
func (s *Send) broadcastStamped(msg *memory.Message) {
	s.bytesSent.Add(uint64(msg.WireSize()) * uint64(s.cfg.Servers))
	mWireBytes.Add(uint64(msg.WireSize()) * uint64(s.cfg.Servers))
	mMessages.Add(uint64(s.cfg.Servers))
	for d := range s.destMu {
		s.destMu[d].Lock()
	}
	seq := uint32(0)
	for _, v := range s.destSeq {
		if v > seq {
			seq = v
		}
	}
	msg.Seq = seq
	for d := range s.destSeq {
		s.destSeq[d] = seq + 1
	}
	// One buffer, n references: retain for the n−1 extra destinations.
	if s.cfg.Servers > 1 {
		msg.Retain(s.cfg.Servers - 1)
	}
	for d := 0; d < s.cfg.Servers; d++ {
		//lint:allow lockblock the broadcast seq must be valid for all destinations, so all destMu are held (in index order); Mux.Send never takes destMu
		s.cfg.Mux.Send(d, msg)
	}
	for d := range s.destMu {
		s.destMu[d].Unlock()
	}
}

// dispatch routes one finished message stream unit. The header is stamped
// here, before the message is handed over, because a broadcast shares one
// buffer across destinations.
func (s *Send) dispatch(unit int, msg *memory.Message, last bool) {
	msg.Last = last
	msg.QueryID = s.cfg.QueryID
	msg.ExchangeID = s.cfg.ExID
	msg.Sender = s.cfg.Mux.ServerID()
	switch s.cfg.Mode {
	case ModePartition, ModeSkewProbe:
		s.sendStamped(unit, msg)
	case ModeClassicPartition:
		srv := unit / s.cfg.WorkersPerServer
		msg.Part = int16(unit % s.cfg.WorkersPerServer)
		s.sendStamped(srv, msg)
	case ModeGather:
		s.sendStamped(0, msg)
	case ModeBroadcast:
		s.broadcastStamped(msg)
	case ModeSkewBuild:
		if unit == s.units-1 {
			s.broadcastStamped(msg) // hot keys: selective broadcast
		} else {
			s.sendStamped(unit, msg)
		}
	}
}

// Finalize flushes all partially filled messages and emits the Last
// markers that close this server's contribution to the exchange. Without
// scheduler support the flush buffers are allocated on the node of the
// last consuming worker (FinalizeOn is preferred).
func (s *Send) Finalize() error {
	return s.finalizeOn(numa.Node(s.lastNode.Load()))
}

// FinalizeOn implements engine.WorkerFinalizer: flush and Last-marker
// buffers are allocated NUMA-local to the finalizing worker, honoring the
// pool's AllocLocal policy instead of defaulting to socket 0.
func (s *Send) FinalizeOn(w *engine.Worker) error {
	return s.finalizeOn(w.Node)
}

func (s *Send) finalizeOn(node numa.Node) error {
	if s.cfg.Mode == ModeSkewProbe {
		// A probe input smaller than the sample budget completes sampling
		// here; then wait for the cluster-wide decision and route whatever
		// the workers buffered.
		sk := s.cfg.Skew
		sk.CompleteSampling(node)
		if err := sk.WaitReady(); err != nil {
			return err
		}
		for wi := range s.workers {
			s.flushHeld(&s.workers[wi], node)
		}
	}
	for wi := range s.workers {
		st := &s.workers[wi]
		for unit, msg := range st.open {
			if msg != nil && len(msg.Content) > 0 {
				s.dispatch(unit, msg, false)
			} else if msg != nil {
				msg.Release()
			}
			st.open[unit] = nil
		}
	}
	// Last markers: empty messages flagged Last, one per destination
	// server (the broadcast streams contribute data only — completion is
	// tracked per sender).
	stamp := func(m *memory.Message) *memory.Message {
		m.Last = true
		m.QueryID = s.cfg.QueryID
		m.ExchangeID = s.cfg.ExID
		m.Sender = s.cfg.Mux.ServerID()
		return m
	}
	switch s.cfg.Mode {
	case ModePartition, ModeSkewProbe, ModeSkewBuild, ModeBroadcast:
		for d := 0; d < s.cfg.Servers; d++ {
			s.sendStamped(d, stamp(s.cfg.Pool.Get(node)))
		}
	case ModeClassicPartition:
		for u := 0; u < s.units; u++ {
			m := stamp(s.cfg.Pool.Get(node))
			m.Part = int16(u % s.cfg.WorkersPerServer)
			s.sendStamped(u/s.cfg.WorkersPerServer, m)
		}
	case ModeGather:
		s.sendStamped(0, stamp(s.cfg.Pool.Get(node)))
	}
	return nil
}

// Source is the receive-side exchange: an engine.Source yielding
// deserialized batches (steps 5–7 of Figure 7).
type Source struct {
	Recv  *mux.ExchangeRecv
	Codec *ser.Codec
	Topo  *numa.Topology
	// Scale is the simulation time scale for the NUMA remote-access
	// charge.
	Scale float64
	// Classic makes workers consume only their fixed partition.
	Classic bool

	tuplesRecv atomic.Uint64

	failMu  sync.Mutex
	failure error
}

// Next implements engine.Source (blocking receive).
func (src *Source) Next(w *engine.Worker) *storage.Batch {
	for {
		if src.Err() != nil {
			return nil
		}
		var msg *memory.Message
		if src.Classic {
			msg = src.Recv.RecvWorker(w.ID)
		} else {
			msg = src.Recv.Recv(w.Node)
		}
		if msg == nil {
			return nil
		}
		if b := src.decode(w, msg); b != nil {
			return b
		}
	}
}

// Poll implements engine.PollSource: it never blocks, reporting
// (nil, false) while the exchange is still open but has no message queued
// — the distinction that lets a receive pipeline become runnable as soon
// as the first message lands instead of stalling a whole plan stage.
func (src *Source) Poll(w *engine.Worker) (*storage.Batch, bool) {
	for {
		if src.Err() != nil {
			return nil, true
		}
		var msg *memory.Message
		var done bool
		if src.Classic {
			msg, done = src.Recv.TryRecvWorker(w.ID)
		} else {
			msg, done = src.Recv.TryRecv(w.Node)
		}
		if msg == nil {
			return nil, done
		}
		if b := src.decode(w, msg); b != nil {
			return b, false
		}
	}
}

// SetWake implements engine.WakeSource.
func (src *Source) SetWake(f func()) { src.Recv.SetWake(f) }

// WakeTargetsWorker implements engine.TargetedWakeSource: classic-mode
// deliveries land in one fixed worker's private queue, so wakes must reach
// the whole pool.
func (src *Source) WakeTargetsWorker() bool { return src.Classic }

// Err implements engine.FallibleSource: a corrupt message records the
// failure here and reports the source as drained; the scheduler aborts
// the run with the pipeline's name, cancelling the query cluster-wide
// instead of relying on panic recovery.
func (src *Source) Err() error {
	src.failMu.Lock()
	defer src.failMu.Unlock()
	return src.failure
}

func (src *Source) fail(err error) {
	src.failMu.Lock()
	if src.failure == nil {
		src.failure = err
	}
	src.failMu.Unlock()
}

// decode deserializes one message (step 6 of Figure 7), releasing the
// buffer back to the pool; nil for bare Last markers or on a recorded
// decode failure.
func (src *Source) decode(w *engine.Worker, msg *memory.Message) *storage.Batch {
	if len(msg.Content) == 0 {
		msg.Release()
		return nil // bare Last marker
	}
	// Touching a message homed on another socket streams it over QPI.
	if src.Topo != nil {
		src.Topo.Charge(w.Node, msg.Node, len(msg.Content), src.Scale)
	}
	b := storage.NewBatch(src.Codec.Schema(), 256)
	if _, err := src.Codec.DecodeAll(msg.Content, b); err != nil {
		sender := msg.Sender
		msg.Release()
		src.fail(fmt.Errorf("exchange %d: corrupt message from server %d: %w",
			src.Recv.ExID(), sender, err))
		return nil
	}
	msg.Release()
	src.tuplesRecv.Add(uint64(b.Rows()))
	if b.Rows() == 0 {
		return nil
	}
	return b
}

// TuplesReceived reports how many tuples were deserialized.
func (src *Source) TuplesReceived() uint64 { return src.tuplesRecv.Load() }
