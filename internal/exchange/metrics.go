package exchange

import "hsqp/internal/obs"

// Wire-traffic metrics on the process-wide registry, aggregated across
// every send-side exchange in the simulated cluster. Exact per-query
// bytes remain available via QueryStats.WireBytes; these counters are the
// live cluster-wide view an operator scrapes.
var (
	mWireBytes = obs.Default().Counter("hsqp_exchange_wire_bytes_total",
		"Bytes handed to the multiplexer by send-side exchanges.")
	mMessages = obs.Default().Counter("hsqp_exchange_messages_total",
		"Messages handed to the multiplexer by send-side exchanges.")
)
