// Adaptive skew handling for distributed joins (Flow-Join style; cf.
// Rödiger et al., "Flow-Join: Adaptive Skew Handling for Distributed
// Joins over High-Speed Networks").
//
// Hash-partitioning a Zipf-distributed join key sends every tuple of a
// heavy key to one owning server, which becomes the straggler the whole
// query waits for (§3.1). The SkewCoord detects heavy keys online: the
// probe-side send samples the key hashes of its first morsels through a
// Space-Saving sketch, every server broadcasts its local sketch over a
// dedicated control exchange (one Retain-shared buffer), and each server
// merges all n sketches with the same deterministic function — so the
// cluster agrees on one global hot-key set without a coordinator round
// trip. Tuples then switch routes: hot build keys are replicated to all
// servers (selective broadcast), hot probe tuples stay on their origin
// server, and cold keys keep hash partitioning. Each probe tuple is still
// processed exactly once and each build tuple lands exactly once per
// receiving server, so join results are identical to the static plan.
package exchange

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hsqp/internal/engine"
	"hsqp/internal/invariant"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/sketch"
	"hsqp/internal/storage"
)

// Skew-handling defaults.
const (
	// DefaultSampleBudget is how many probe tuples a server samples before
	// publishing its sketch — two default morsels: enough for a stable
	// top-k estimate, early enough that almost the whole shuffle is routed
	// adaptively.
	DefaultSampleBudget = 2 * 16384
	// DefaultHotFraction is the minimum estimated global frequency share
	// for a key to be broadcast instead of partitioned.
	DefaultHotFraction = 0.01
	// DefaultMaxHot caps the hot set (and sizes the sketch).
	DefaultMaxHot = 64
)

// SkewConfig tunes adaptive skew handling; zero values select defaults.
type SkewConfig struct {
	// SampleBudget is the number of tuples each server samples before
	// publishing its sketch.
	SampleBudget int
	// HotFraction is the minimum share of the globally sampled tuples a
	// key hash must hold to be treated as a heavy hitter.
	HotFraction float64
	// MaxHot caps the number of heavy hitters.
	MaxHot int
}

func (c SkewConfig) withDefaults() SkewConfig {
	if c.SampleBudget <= 0 {
		c.SampleBudget = DefaultSampleBudget
	}
	if c.HotFraction <= 0 {
		c.HotFraction = DefaultHotFraction
	}
	if c.MaxHot <= 0 {
		c.MaxHot = DefaultMaxHot
	}
	return c
}

// SkewStats reports what the coordinator decided.
type SkewStats struct {
	SampledTuples int    // tuples sampled locally
	GlobalSampled uint64 // tuples sampled cluster-wide
	HotKeys       int    // size of the agreed hot-hash set
}

// SkewCoordConfig wires a SkewCoord.
type SkewCoordConfig struct {
	Mux     *mux.Mux
	Pool    *memory.Pool
	QueryID int32 // query the control exchange belongs to
	ExID    int32 // dedicated control exchange carrying the sketches
	Servers int
	Config  SkewConfig
	// Cancel, when closed, aborts WaitReady so a failing query cannot
	// deadlock a server inside a send finalize waiting for sketches that
	// will never arrive.
	Cancel <-chan struct{}
}

// SkewCoord is the per-server heavy-hitter coordinator shared by the
// probe- and build-side sends of one skew-adaptive join. All servers run
// the identical merge over the identical n sketches, so the published
// hot set is globally consistent — the invariant that makes local probing
// of broadcast build rows correct.
type SkewCoord struct {
	cfg  SkewCoordConfig
	recv *mux.ExchangeRecv

	mu       sync.Mutex
	sk       *sketch.SpaceSaving
	sampling bool
	sampled  int
	wakes    []func()

	completeOnce sync.Once
	ready        chan struct{}
	readyFlag    atomic.Bool
	hot          map[uint32]struct{}
	stats        SkewStats
}

// NewSkewCoord creates the coordinator and opens its control exchange
// (every server sends exactly one Last-flagged sketch message).
func NewSkewCoord(cfg SkewCoordConfig) *SkewCoord {
	if cfg.Mux == nil || cfg.Pool == nil {
		invariant.Failf("exchange: SkewCoord needs a mux and a pool")
	}
	if cfg.Servers < 1 {
		invariant.Failf("exchange: SkewCoord needs at least one server")
	}
	cfg.Config = cfg.Config.withDefaults()
	c := &SkewCoord{
		cfg:      cfg,
		recv:     cfg.Mux.OpenExchange(cfg.QueryID, cfg.ExID, cfg.Servers),
		sampling: true,
		// Oversize the sketch relative to the hot-set cap for accuracy.
		sk:    sketch.New(4 * cfg.Config.MaxHot),
		ready: make(chan struct{}),
	}
	return c
}

// ObserveBatch feeds the key hashes of b into the sketch during the
// sampling phase. It returns true exactly once: for the batch that
// exhausts the sample budget (the caller then invokes CompleteSampling).
func (c *SkewCoord) ObserveBatch(b *storage.Batch, keys []int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sampling {
		return false
	}
	n := b.Rows()
	for i := 0; i < n; i++ {
		c.sk.Observe(storage.HashRow(b, keys, i))
	}
	c.sampled += n
	if c.sampled >= c.cfg.Config.SampleBudget {
		c.sampling = false
		return true
	}
	return false
}

// CompleteSampling ends the sampling phase (idempotent): the local sketch
// is broadcast to every server through the control exchange — one shared
// buffer, Retain-counted — and the cluster-wide merge starts in the
// background. It never blocks on the network.
func (c *SkewCoord) CompleteSampling(node numa.Node) {
	c.completeOnce.Do(func() {
		c.mu.Lock()
		c.sampling = false
		c.stats.SampledTuples = c.sampled
		ents := c.sk.Entries()
		total := c.sk.Total()
		c.mu.Unlock()

		msg := c.cfg.Pool.Get(node)
		msg.QueryID = c.cfg.QueryID
		msg.ExchangeID = c.cfg.ExID
		msg.Sender = c.cfg.Mux.ServerID()
		msg.Last = true // one sketch per sender closes the exchange
		msg.Seq = 0     // first and only message on this sender's streams
		msg.Content = encodeSketch(msg.Content, total, ents, msg.Remaining())
		if c.cfg.Servers > 1 {
			msg.Retain(c.cfg.Servers - 1)
		}
		for d := 0; d < c.cfg.Servers; d++ {
			c.cfg.Mux.Send(d, msg)
		}
		go c.gather()
	})
}

// gather collects all n sketches, merges them deterministically and
// publishes the global hot set. A cancelled query aborts the wait (a
// crashed server never sends its sketch; without the cancel path this
// goroutine and the retained sketch buffers would leak until the mux
// closes) — WaitReady callers then fail through their own Cancel select.
func (c *SkewCoord) gather() {
	wake := make(chan struct{}, 1)
	c.recv.SetWake(func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	})
	merged := map[uint32]uint64{}
	var grand uint64
	for {
		msg, done := c.recv.TryRecv(0)
		if msg == nil {
			if done {
				break // all sketches in (or the mux is shutting down)
			}
			select {
			case <-wake:
			case <-c.cfg.Cancel:
				c.drainAborted()
				return
			}
			continue
		}
		total, ents := decodeSketch(msg.Content)
		grand += total
		for _, e := range ents {
			merged[e.Item] += e.Count
		}
		msg.Release()
	}
	hot := make(map[uint32]struct{})
	if grand > 0 {
		thresh := uint64(float64(grand) * c.cfg.Config.HotFraction)
		if thresh < 2 {
			thresh = 2
		}
		type cand struct {
			h   uint32
			cnt uint64
		}
		var cands []cand
		for h, cnt := range merged {
			if cnt >= thresh {
				//lint:allow wiredeterminism sorted below by (count, hash) and hash is the unique map key, so the comparator is total
				cands = append(cands, cand{h, cnt})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].cnt != cands[j].cnt {
				return cands[i].cnt > cands[j].cnt
			}
			return cands[i].h < cands[j].h
		})
		if len(cands) > c.cfg.Config.MaxHot {
			cands = cands[:c.cfg.Config.MaxHot]
		}
		for _, cd := range cands {
			hot[cd.h] = struct{}{}
		}
	}
	c.mu.Lock()
	c.hot = hot
	c.stats.GlobalSampled = grand
	c.stats.HotKeys = len(hot)
	wakes := append([]func(){}, c.wakes...)
	c.mu.Unlock()
	c.readyFlag.Store(true)
	close(c.ready)
	for _, f := range wakes {
		f()
	}
}

// drainAborted releases whatever sketch messages already arrived when the
// query was cancelled mid-gather.
func (c *SkewCoord) drainAborted() {
	for {
		msg, _ := c.recv.TryRecv(0)
		if msg == nil {
			return
		}
		msg.Release()
	}
}

// Ready reports whether the cluster-wide hot set has been published.
func (c *SkewCoord) Ready() bool { return c.readyFlag.Load() }

// ReadyCh is closed when the hot set is published.
func (c *SkewCoord) ReadyCh() <-chan struct{} { return c.ready }

// WaitReady blocks until the hot set is published or the query is
// cancelled.
func (c *SkewCoord) WaitReady() error {
	if c.readyFlag.Load() {
		return nil
	}
	if c.cfg.Cancel == nil {
		<-c.ready
		return nil
	}
	select {
	case <-c.ready:
		return nil
	case <-c.cfg.Cancel:
		return fmt.Errorf("exchange: skew decision abandoned: query cancelled")
	}
}

// Hot reports whether a key hash is in the global hot set. Only
// meaningful after Ready; during sampling it reports false.
func (c *SkewCoord) Hot(h uint32) bool {
	if !c.readyFlag.Load() {
		return false
	}
	_, ok := c.hot[h]
	return ok
}

// Stats returns the decision statistics (call after Ready).
func (c *SkewCoord) Stats() SkewStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AddWake registers a callback fired when the hot set is published (used
// by GatedSource to re-wake the scheduler). Fires immediately if already
// published.
func (c *SkewCoord) AddWake(f func()) {
	c.mu.Lock()
	c.wakes = append(c.wakes, f)
	ready := c.readyFlag.Load()
	c.mu.Unlock()
	if ready {
		f()
	}
}

// --- sketch wire format: [uint64 total][uint32 n][n × (uint32 hash, uint64 count)] ---

func encodeSketch(out []byte, total uint64, ents []sketch.Entry, capacity int) []byte {
	maxEnts := (capacity - 12) / 12
	if len(ents) > maxEnts {
		ents = ents[:maxEnts]
	}
	out = binary.LittleEndian.AppendUint64(out, total)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ents)))
	for _, e := range ents {
		out = binary.LittleEndian.AppendUint32(out, e.Item)
		out = binary.LittleEndian.AppendUint64(out, e.Count)
	}
	return out
}

func decodeSketch(in []byte) (total uint64, ents []sketch.Entry) {
	if len(in) < 12 {
		return 0, nil
	}
	total = binary.LittleEndian.Uint64(in)
	n := int(binary.LittleEndian.Uint32(in[8:]))
	in = in[12:]
	for i := 0; i < n && len(in) >= 12; i++ {
		ents = append(ents, sketch.Entry{
			Item:  binary.LittleEndian.Uint32(in),
			Count: binary.LittleEndian.Uint64(in[4:]),
		})
		in = in[12:]
	}
	return total, ents
}

// GatedSource wraps the build-side input of a skew-adaptive join: it
// reports "no input yet" (without blocking a worker) until the hot-key
// decision is published, then delegates to the inner source. The build
// tuples must not be routed before the decision because hot and cold keys
// take different routes on every server.
type GatedSource struct {
	inner engine.Source
	coord *SkewCoord
}

// NewGatedSource wraps inner, gating it on coord's decision.
func NewGatedSource(inner engine.Source, coord *SkewCoord) *GatedSource {
	return &GatedSource{inner: inner, coord: coord}
}

// Next implements engine.Source (blocking until the decision is ready).
func (g *GatedSource) Next(w *engine.Worker) *storage.Batch {
	if err := g.coord.WaitReady(); err != nil {
		return nil
	}
	return g.inner.Next(w)
}

// Poll implements engine.PollSource: (nil, false) parks the pipeline
// until the decision wake fires.
func (g *GatedSource) Poll(w *engine.Worker) (*storage.Batch, bool) {
	if !g.coord.Ready() {
		return nil, false
	}
	if p, ok := g.inner.(engine.PollSource); ok {
		return p.Poll(w)
	}
	b := g.inner.Next(w)
	return b, b == nil
}

// SetWake implements engine.WakeSource: the scheduler is woken both by
// the decision and by the inner source's own deliveries.
func (g *GatedSource) SetWake(f func()) {
	g.coord.AddWake(f)
	if ws, ok := g.inner.(engine.WakeSource); ok {
		ws.SetWake(f)
	}
}

// HasLocal implements engine.LocalityHinter.
func (g *GatedSource) HasLocal(node numa.Node) bool {
	if !g.coord.Ready() {
		return false
	}
	if h, ok := g.inner.(engine.LocalityHinter); ok {
		return h.HasLocal(node)
	}
	return true
}

// Err implements engine.FallibleSource (forwarded from the inner source).
func (g *GatedSource) Err() error {
	if fs, ok := g.inner.(engine.FallibleSource); ok {
		return fs.Err()
	}
	return nil
}
