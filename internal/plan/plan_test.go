package plan

import (
	"strings"
	"testing"

	"hsqp/internal/op"
	"hsqp/internal/storage"
)

func testSchemas() (*storage.Schema, *storage.Schema) {
	left := storage.NewSchema(
		storage.Field{Name: "l_k", Type: storage.TInt64},
		storage.Field{Name: "l_v", Type: storage.TDecimal},
	)
	right := storage.NewSchema(
		storage.Field{Name: "r_k", Type: storage.TInt64},
		storage.Field{Name: "r_name", Type: storage.TString},
	)
	return left, right
}

func TestBuilderSchemas(t *testing.T) {
	ls, rs := testSchemas()
	l := Scan("left", ls)
	r := Scan("right", rs)

	sel := l.Select(op.I64GT(l.Col("l_v"), 0))
	if !sel.Schema().Equal(ls) {
		t.Fatal("select must preserve schema")
	}
	proj := l.Project("l_v")
	if proj.Schema().Len() != 1 || proj.Schema().Fields[0].Name != "l_v" {
		t.Fatal("project schema wrong")
	}
	m := l.Map(op.NamedExpr{Name: "x", Type: storage.TInt64, Expr: op.ConstI(1)})
	if m.Schema().Len() != 3 || m.Col("x") != 2 {
		t.Fatal("map schema wrong")
	}
	j := l.Join(r, []string{"l_k"}, []string{"r_k"}, JoinSpec{Type: op.Inner})
	if j.Schema().Len() != 4 {
		t.Fatalf("inner join schema %v", j.Schema())
	}
	semi := l.Join(r, []string{"l_k"}, []string{"r_k"}, JoinSpec{Type: op.Semi})
	if !semi.Schema().Equal(ls) {
		t.Fatal("semi join must keep probe schema only")
	}
	outer := l.Join(r, []string{"l_k"}, []string{"r_k"},
		JoinSpec{Type: op.LeftOuter, BuildOut: []string{"r_name"}})
	f := outer.Schema().Fields[2]
	if f.Name != "r_name" || !f.Nullable {
		t.Fatalf("left outer build column must be nullable: %+v", f)
	}
	g := l.GroupBy([]string{"l_k"},
		op.AggSpec{Kind: op.Sum, Name: "s", Arg: op.Col(1), ArgType: storage.TDecimal},
		op.AggSpec{Kind: op.Count, Name: "c"},
		op.AggSpec{Kind: op.Avg, Name: "a", Arg: op.Col(1), ArgType: storage.TDecimal},
	)
	gs := g.Schema()
	if gs.Len() != 4 || gs.Fields[1].Type != storage.TDecimal ||
		gs.Fields[2].Type != storage.TInt64 || gs.Fields[3].Type != storage.TDecimal {
		t.Fatalf("groupby schema %v", gs)
	}
	gj := l.GroupJoin(r, []string{"l_k"}, []string{"r_k"}, nil,
		op.AggSpec{Kind: op.Count, Name: "n"})
	if gj.Schema().Len() != 3 || gj.Col("n") != 2 {
		t.Fatalf("groupjoin schema %v", gj.Schema())
	}
}

func TestJoinKeyArityMismatchPanics(t *testing.T) {
	ls, rs := testSchemas()
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	Scan("l", ls).Join(Scan("r", rs), []string{"l_k"}, nil, JoinSpec{Type: op.Inner})
}

func TestExplainMentionsOperators(t *testing.T) {
	ls, rs := testSchemas()
	root := Scan("left", ls).
		Select(op.I64GT(1, 0)).
		Join(Scan("right", rs), []string{"l_k"}, []string{"r_k"},
			JoinSpec{Type: op.Inner, Strategy: BroadcastBuild}).
		GroupBy([]string{"l_k"}, op.AggSpec{Kind: op.Count, Name: "n"}).
		OrderBy([]op.SortKey{{Col: 1, Desc: true}}, 5)
	out := Explain(NewQuery("demo", root))
	for _, want := range []string{"scan left", "scan right", "select", "inner join",
		"[broadcast build]", "groupby", "top-5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainSkewAdaptive(t *testing.T) {
	ls, rs := testSchemas()
	root := Scan("left", ls).Join(Scan("right", rs), []string{"l_k"}, []string{"r_k"},
		JoinSpec{Type: op.Inner, Strategy: SkewAdaptive})
	out := Explain(NewQuery("demo", root))
	if !strings.Contains(out, "[skew-adaptive") {
		t.Fatalf("explain missing skew-adaptive strategy:\n%s", out)
	}
}

func TestAlignedAndRemap(t *testing.T) {
	if !aligned([]int{1, 2}, []int{1, 2}) {
		t.Fatal("aligned false negative")
	}
	if aligned([]int{2, 1}, []int{1, 2}) || aligned(nil, []int{0}) || aligned([]int{0}, []int{0, 1}) {
		t.Fatal("aligned false positive")
	}
	if got := remap([]int{3, 1}, []int{1, 5, 3}); got == nil || got[0] != 2 || got[1] != 0 {
		t.Fatalf("remap: %v", got)
	}
	if remap([]int{4}, []int{1, 2}) != nil {
		t.Fatal("remap of dropped column must be nil")
	}
	if got := remap([]int{7}, nil); got == nil || got[0] != 7 {
		t.Fatal("remap with nil projection must be identity")
	}
}
