package plan

import (
	"fmt"
	"strings"
	"time"

	"hsqp/internal/engine"
)

// Explain renders the logical plan tree (Figure 6 style): one operator per
// line, children indented.
func Explain(q *Query) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", q.Name)
	explainNode(&sb, q.Root, 0)
	return sb.String()
}

func explainNode(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case KScan:
		fmt.Fprintf(sb, "%sscan %s %v\n", indent, n.Table, colNames(n))
	case KSelect:
		fmt.Fprintf(sb, "%sselect\n", indent)
		explainNode(sb, n.In, depth+1)
	case KMap:
		names := make([]string, len(n.Exprs))
		for i, e := range n.Exprs {
			names[i] = e.Name
		}
		fmt.Fprintf(sb, "%smap %v\n", indent, names)
		explainNode(sb, n.In, depth+1)
	case KProject:
		fmt.Fprintf(sb, "%sproject %v\n", indent, colNames(n))
		explainNode(sb, n.In, depth+1)
	case KJoin:
		strat := ""
		switch n.Strategy {
		case BroadcastBuild:
			strat = " [broadcast build]"
		case PartitionBoth:
			strat = " [partition both]"
		case LocalJoin:
			strat = " [local]"
		case SkewAdaptive:
			strat = " [skew-adaptive: hot keys broadcast build + probe local, cold keys partitioned]"
		}
		fmt.Fprintf(sb, "%s%s join%s\n", indent, n.JoinType, strat)
		fmt.Fprintf(sb, "%s  probe:\n", indent)
		explainNode(sb, n.Probe, depth+2)
		fmt.Fprintf(sb, "%s  build:\n", indent)
		explainNode(sb, n.Build, depth+2)
	case KGroupJoin:
		fmt.Fprintf(sb, "%sgroupjoin (Γ⨝, %d aggs)\n", indent, len(n.Aggs))
		fmt.Fprintf(sb, "%s  probe:\n", indent)
		explainNode(sb, n.Probe, depth+2)
		fmt.Fprintf(sb, "%s  build:\n", indent)
		explainNode(sb, n.Build, depth+2)
	case KGroupBy:
		fmt.Fprintf(sb, "%sgroupby (%d keys, %d aggs)\n", indent, len(n.Keys), len(n.Aggs))
		explainNode(sb, n.In, depth+1)
	case KTopK:
		if n.Limit > 0 {
			fmt.Fprintf(sb, "%stop-%d\n", indent, n.Limit)
		} else {
			fmt.Fprintf(sb, "%ssort\n", indent)
		}
		explainNode(sb, n.In, depth+1)
	}
}

// ExplainAnalyze renders the logical plan followed by the measured
// physical execution: per server, per pipeline, the morsel count and
// wall/busy times, then one line per operator with rows in/out, summed
// worker time and fresh-batch materializations, and the sink's rows (and
// exact wire bytes for exchange sends). stats is
// cluster.QueryStats.PipelineStats — one slice per server.
func ExplainAnalyze(q *Query, stats [][]engine.PipelineStat) string {
	var sb strings.Builder
	sb.WriteString(Explain(q))
	for sid, server := range stats {
		fmt.Fprintf(&sb, "\nserver %d:\n", sid)
		for _, p := range server {
			if p.Skipped {
				fmt.Fprintf(&sb, "  pipeline %s [skipped: coordinator-only]\n", p.Name)
				continue
			}
			fmt.Fprintf(&sb, "  pipeline %s: %d morsels, busy %v, wall %v..%v\n",
				p.Name, p.Morsels, round(p.Busy), round(p.Start), round(p.End))
			for _, o := range p.Ops {
				fmt.Fprintf(&sb, "    op %s: rows in=%d out=%d, batches=%d, time=%v, allocs=%d\n",
					o.Name, o.RowsIn, o.RowsOut, o.Batches, round(o.Time), o.Allocs)
			}
			switch {
			case p.SinkName == "":
			case p.SinkRows == 0 && p.SinkBytes == 0:
				// Sink does not report counters (only exchange sends do).
				fmt.Fprintf(&sb, "    sink %s\n", p.SinkName)
			default:
				fmt.Fprintf(&sb, "    sink %s: rows=%d", p.SinkName, p.SinkRows)
				if p.SinkBytes > 0 {
					fmt.Fprintf(&sb, ", wire bytes=%d", p.SinkBytes)
				}
				sb.WriteString("\n")
			}
		}
	}
	return sb.String()
}

// round trims durations to microseconds so analyze output stays readable.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func colNames(n *Node) []string {
	out := make([]string, n.schema.Len())
	for i, f := range n.schema.Fields {
		out[i] = f.Name
	}
	if len(out) > 6 {
		out = append(out[:6], fmt.Sprintf("…+%d", len(out)-6))
	}
	return out
}
