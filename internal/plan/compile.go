package plan

import (
	"fmt"

	"hsqp/internal/engine"
	"hsqp/internal/exchange"
	"hsqp/internal/memory"
	"hsqp/internal/mux"
	"hsqp/internal/numa"
	"hsqp/internal/op"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// TableInfo is what the compiler needs to know about a base relation on
// this server.
type TableInfo struct {
	Table *storage.Table
	// PartCols are the columns the relation is hash-partitioned on across
	// servers (nil for chunked placement).
	PartCols []int
	// Replicated marks relations fully present on every server.
	Replicated bool
}

// Env is the per-server compilation environment.
type Env struct {
	// QueryID is the cluster-wide id of the query being compiled; it is
	// stamped into every exchange the plan opens so the multiplexer can
	// route concurrent queries' messages on (QueryID, ExchangeID).
	QueryID          int32
	ServerID         int
	Servers          int
	WorkersPerServer int
	Engine           *engine.Engine
	Mux              *mux.Mux
	Pool             *memory.Pool
	Topo             *numa.Topology
	Scale            float64
	// Classic compiles exchanges in the classic exchange-operator model
	// (n×t fixed parallel units, Figure 2 baseline).
	Classic bool
	// Skew tunes adaptive skew handling for SkewAdaptive joins (zero
	// values select the exchange package defaults).
	Skew exchange.SkewConfig
	// Cancel, when closed, aborts in-flight skew decisions so a failing
	// query cannot deadlock a send finalize waiting for remote sketches.
	Cancel <-chan struct{}
	// DisablePreAgg turns off pre-aggregation before group-by exchanges
	// (ablation).
	DisablePreAgg bool
	// NoFuse compiles filters/maps/projections as separate batch-at-a-time
	// operators instead of fusing adjacent runs into op.FusedStage
	// (ablation for the single-pass hot path).
	NoFuse bool
	// NoPushdown disables join-input column pruning below exchange sends
	// (ablation for the wire-byte reduction).
	NoPushdown bool
	// Lookup resolves a table name.
	Lookup func(name string) (TableInfo, error)
	// NextExID allocates globally consistent exchange ids; every server
	// must produce the same sequence for the same plan.
	NextExID func() int32
	// MorselSize for splitting materialized intermediates.
	MorselSize int
	// AfterScan, if set, returns extra operators inserted after every base
	// relation scan (competitor engine styles model scan-time
	// deserialization and row-at-a-time interpretation here).
	AfterScan func(schema *storage.Schema) []engine.Op
	// AfterExchange, if set, returns extra operators inserted after every
	// receive-side exchange.
	AfterExchange func(schema *storage.Schema) []engine.Op
}

// stream is a partially compiled dataflow: a source plus pending operators.
type stream struct {
	source engine.Source
	ops    []engine.Op
	schema *storage.Schema
	// part: the stream is hash-partitioned across servers on these
	// columns (nil = unknown/not partitioned).
	part []int
	// replicated: every server sees the full stream.
	replicated bool
	// coordOnly: the stream only exists on the coordinator.
	coordOnly bool
	// deps: pipeline indexes whose sinks must finalize before a pipeline
	// consuming this stream may start (hash builds, materialized
	// aggregates/sorts the source lazily reads). Exchange-receive streams
	// carry no deps — they poll the multiplexer and become runnable as
	// soon as the first message lands.
	deps []int
	// rows is a rough upper-bound cardinality estimate (exact at the scan,
	// carried through filters unreduced, multiplied by sender count across
	// exchanges). Pre-sizes hash tables; 0 = unknown.
	rows int
}

// Compiled is the result of compiling a query for one server: a pipeline
// DAG whose dependency edges (build-before-probe,
// materialize-before-consume, coordinator-merge-last) are emitted during
// compilation instead of being implied by slice order.
type Compiled struct {
	Pipelines []*engine.Pipeline
	// Deps[i] lists the pipelines that must finalize before Pipelines[i]
	// starts.
	Deps [][]int
	// Result collects the final rows (only populated on the coordinator).
	Result *op.Collector
	Schema *storage.Schema
}

// Graph returns the executable pipeline DAG.
func (c *Compiled) Graph() *engine.Graph {
	return &engine.Graph{Pipelines: c.Pipelines, Deps: c.Deps}
}

type compiler struct {
	env  *Env
	pipe []*engine.Pipeline
	deps [][]int
}

// Compile lowers a query to this server's pipelines.
func Compile(q *Query, env *Env) (*Compiled, error) {
	c := &compiler{env: env}
	out, err := c.build(q.Root)
	if err != nil {
		return nil, fmt.Errorf("plan: compile %s: %w", q.Name, err)
	}
	// Bring the final stream to the coordinator (merges last: the output
	// pipeline depends on everything the final stream materializes).
	res := &op.Collector{}
	if out.coordOnly || env.Servers == 1 {
		c.add(&engine.Pipeline{
			Name:            q.Name + "/output",
			Source:          out.source,
			Ops:             out.ops,
			Sink:            res,
			CoordinatorOnly: out.coordOnly,
		}, out.deps)
	} else {
		gathered := c.gather(q.Name+"/gather", out)
		c.add(&engine.Pipeline{
			Name:            q.Name + "/output",
			Source:          gathered.source,
			Ops:             gathered.ops,
			Sink:            res,
			CoordinatorOnly: true,
		}, gathered.deps)
	}
	return &Compiled{Pipelines: c.pipe, Deps: c.deps, Result: res, Schema: q.Root.Schema()}, nil
}

// add appends a pipeline with its dependency edges and returns its index.
// Every pipeline passes through the fusion pass here, so fused execution
// applies uniformly — scans, exchange receives and materialized
// intermediates alike.
func (c *compiler) add(p *engine.Pipeline, deps []int) int {
	if !c.env.NoFuse {
		p.Ops = fuseOps(p.Ops, p.Sink, c.env.Engine.Workers())
	}
	c.pipe = append(c.pipe, p)
	c.deps = append(c.deps, deps)
	return len(c.pipe) - 1
}

// fuseOps collapses every maximal run of Filter/MapOp/Project operators
// into one op.FusedStage (single-pass evaluation over a selection vector).
// Even single-operator runs are wrapped: the fused path routes its scratch
// through per-worker buffers instead of fresh storage.NewBatch allocations
// per morsel.
func fuseOps(ops []engine.Op, sink engine.Sink, workers int) []engine.Op {
	out := make([]engine.Op, 0, len(ops))
	for i := 0; i < len(ops); {
		if !fusible(ops[i]) {
			out = append(out, ops[i])
			i++
			continue
		}
		j := i
		for j < len(ops) && fusible(ops[j]) {
			j++
		}
		out = append(out, op.NewFused(ops[i:j], workers, scratchSafe(ops[j:], sink)))
		i = j
	}
	return out
}

func fusible(o engine.Op) bool {
	switch o.(type) {
	case *op.Filter, *op.MapOp, *op.Project:
		return true
	}
	return false
}

// scratchSafe decides whether a fused stage may reuse its scratch buffers
// across morsels: sound only when no downstream operator or sink retains
// the batch beyond its synchronous call. A JoinProbe downstream always
// re-materializes its output; the whitelisted sinks consume without
// retaining. Anything unknown (including retaining sinks like JoinBuild
// and Collector) forces fresh allocations.
func scratchSafe(rest []engine.Op, sink engine.Sink) bool {
	for _, o := range rest {
		switch o.(type) {
		case *op.JoinProbe:
			return true
		case *op.Filter, *op.MapOp, *op.Project:
			// Pass-through-ish: may forward the batch unchanged; keep
			// scanning toward the sink.
		default:
			return false
		}
	}
	switch sink.(type) {
	case *exchange.Send, *op.GroupBy, *op.TopK, *op.GroupJoinProbe:
		return true
	}
	return false
}

// withDep returns a fresh dependency list extending deps with d.
func withDep(deps []int, d int) []int {
	out := make([]int, 0, len(deps)+1)
	out = append(out, deps...)
	return append(out, d)
}

func (c *compiler) build(n *Node) (*stream, error) {
	switch n.Kind {
	case KScan:
		return c.buildScan(n)
	case KSelect:
		in, err := c.build(n.In)
		if err != nil {
			return nil, err
		}
		in.ops = append(in.ops, &op.Filter{Pred: n.Pred})
		in.schema = n.schema
		return in, nil
	case KMap:
		in, err := c.build(n.In)
		if err != nil {
			return nil, err
		}
		in.ops = append(in.ops, op.NewMap(in.schema, n.Exprs))
		in.schema = n.schema
		return in, nil
	case KProject:
		in, err := c.build(n.In)
		if err != nil {
			return nil, err
		}
		in.ops = append(in.ops, op.NewProject(in.schema, n.Cols))
		in.part = remap(in.part, n.Cols)
		in.schema = n.schema
		return in, nil
	case KJoin:
		return c.buildJoin(n)
	case KGroupJoin:
		return c.buildGroupJoin(n)
	case KGroupBy:
		return c.buildGroupBy(n)
	case KTopK:
		return c.buildTopK(n)
	default:
		return nil, fmt.Errorf("plan: unknown node kind %d", n.Kind)
	}
}

func (c *compiler) buildScan(n *Node) (*stream, error) {
	info, err := c.env.Lookup(n.Table)
	if err != nil {
		return nil, err
	}
	if !info.Table.Schema.Equal(n.schema) {
		return nil, fmt.Errorf("plan: scan %s schema mismatch: plan %v vs stored %v",
			n.Table, n.schema, info.Table.Schema)
	}
	out := &stream{
		source:     op.NewTableSource(info.Table, c.env.Topo.Sockets, c.env.MorselSize),
		schema:     n.schema,
		part:       info.PartCols,
		replicated: info.Replicated,
		rows:       info.Table.Rows(),
	}
	if c.env.AfterScan != nil {
		out.ops = append(out.ops, c.env.AfterScan(n.schema)...)
	}
	return out, nil
}

// exchangeStream cuts the stream with a send-side exchange and returns the
// receive-side stream. senders is the number of servers contributing.
func (c *compiler) exchangeStream(name string, in *stream, mode exchange.Mode, keys []int) *stream {
	return c.exchangeStreamSkew(name, in, mode, keys, nil)
}

// exchangeStreamSkew is exchangeStream with an optional skew coordinator:
// the probe and build sides of a skew-adaptive join share one coordinator,
// and the build side is gated on its decision (hot and cold keys take
// different routes, so no build tuple may be routed before the
// cluster-wide hot set is agreed).
func (c *compiler) exchangeStreamSkew(name string, in *stream, mode exchange.Mode, keys []int, skew *exchange.SkewCoord) *stream {
	env := c.env
	if env.Classic && mode == exchange.ModePartition {
		mode = exchange.ModeClassicPartition
	}
	exID := env.NextExID()
	// ser.For reuses the schema's specialized codec across compiles: a
	// cached/prepared plan keeps its schema pointers, so re-executions skip
	// codec construction entirely.
	codec := ser.For(in.schema)
	senders := env.Servers
	if in.coordOnly {
		senders = 1
	}
	send := exchange.NewSend(exchange.SendConfig{
		Mux:              env.Mux,
		Pool:             env.Pool,
		QueryID:          env.QueryID,
		ExID:             exID,
		Mode:             mode,
		Servers:          env.Servers,
		WorkersPerServer: env.WorkersPerServer,
		Keys:             keys,
		Codec:            codec,
		NumWorkers:       env.Engine.Workers(),
		Topo:             env.Topo,
		Scale:            env.Scale,
		Skew:             skew,
	})
	source := in.source
	if mode == exchange.ModeSkewBuild {
		source = exchange.NewGatedSource(source, skew)
	}
	c.add(&engine.Pipeline{
		Name:            name,
		Source:          source,
		Ops:             in.ops,
		Sink:            send,
		CoordinatorOnly: in.coordOnly,
	}, in.deps)
	// Non-coordinator servers still contribute a Last marker when they
	// skip a coordinator-only send pipeline? No: senders is 1 then, and
	// only the coordinator opens/sends. Receivers must know the count.
	var recv *mux.ExchangeRecv
	classic := mode == exchange.ModeClassicPartition
	openHere := true
	if mode == exchange.ModeGather && env.ServerID != 0 {
		openHere = false
	}
	if openHere {
		if classic {
			recv = env.Mux.OpenExchangeClassic(env.QueryID, exID, senders, env.Engine.Workers())
		} else {
			recv = env.Mux.OpenExchange(env.QueryID, exID, senders)
		}
	}
	out := &stream{
		schema: in.schema,
		// Receive-side estimate: every sender contributes up to its local
		// cardinality (exact for broadcast/gather, an upper bound for hash
		// partitioning, where rows spread over the receivers).
		rows: in.rows * senders,
	}
	if recv != nil {
		out.source = &exchange.Source{
			Recv:    recv,
			Codec:   codec,
			Topo:    env.Topo,
			Scale:   env.Scale,
			Classic: classic,
		}
		if env.AfterExchange != nil {
			out.ops = append(out.ops, env.AfterExchange(in.schema)...)
		}
	} else {
		out.source = op.EmptySource{}
	}
	switch mode {
	case exchange.ModePartition, exchange.ModeClassicPartition:
		out.part = append([]int{}, keys...)
	case exchange.ModeBroadcast:
		out.replicated = true
	case exchange.ModeGather:
		out.coordOnly = true
	}
	return out
}

// gather routes a stream to the coordinator.
func (c *compiler) gather(name string, in *stream) *stream {
	if in.coordOnly {
		return in
	}
	return c.exchangeStream(name, in, exchange.ModeGather, nil)
}

func (c *compiler) buildJoin(n *Node) (*stream, error) {
	bs, err := c.build(n.Build)
	if err != nil {
		return nil, err
	}
	ps, err := c.build(n.Probe)
	if err != nil {
		return nil, err
	}
	strat := c.decideJoin(n, bs, ps)

	// Local copies of the join metadata: column pruning rewrites them into
	// the pruned column space, and n is shared by every server's compile —
	// Node fields must never be mutated.
	buildKeys, probeKeys := n.BuildKeys, n.ProbeKeys
	buildOut, probeOut := n.BuildOut, n.ProbeOut

	// Pushdown below exchanges: a side that is about to be serialized onto
	// the wire is narrowed to the columns the join actually consumes (its
	// keys plus its output columns), so dropped columns never reach the
	// codec. Residual predicates capture original column indexes of both
	// sides, so they disable pruning.
	if !c.env.NoPushdown && n.Residual == nil {
		pruneBuild, pruneProbe := false, false
		switch strat {
		case BroadcastBuild:
			pruneBuild = !bs.replicated
		case PartitionBoth:
			pruneBuild = !aligned(bs.part, buildKeys)
			pruneProbe = !aligned(ps.part, probeKeys)
		case SkewAdaptive:
			pruneBuild, pruneProbe = true, true
		}
		if pruneBuild {
			if keep, ok := pruneCols(bs.schema.Len(), buildKeys, buildOut); ok {
				bs.ops = append(bs.ops, op.NewProject(bs.schema, keep))
				bs.schema = bs.schema.Project(keep)
				bs.part = remap(bs.part, keep)
				buildKeys = remap(buildKeys, keep)
				buildOut = remap(buildOut, keep)
			}
		}
		if pruneProbe {
			if keep, ok := pruneCols(ps.schema.Len(), probeKeys, probeOut); ok {
				ps.ops = append(ps.ops, op.NewProject(ps.schema, keep))
				ps.schema = ps.schema.Project(keep)
				ps.part = remap(ps.part, keep)
				probeKeys = remap(probeKeys, keep)
				probeOut = remap(probeOut, keep)
			}
		}
	}

	switch strat {
	case BroadcastBuild:
		if !bs.replicated {
			bs = c.exchangeStream(joinName(n, "broadcast"), bs, exchange.ModeBroadcast, nil)
		}
	case PartitionBoth:
		if !aligned(bs.part, buildKeys) {
			bs = c.exchangeStream(joinName(n, "shuffle-build"), bs, exchange.ModePartition, buildKeys)
		}
		if !aligned(ps.part, probeKeys) {
			ps = c.exchangeStream(joinName(n, "shuffle-probe"), ps, exchange.ModePartition, probeKeys)
		}
	case SkewAdaptive:
		// One coordinator per join per server; its control exchange id is
		// allocated first so every server produces the identical id
		// sequence (sketch, probe shuffle, build shuffle).
		coord := exchange.NewSkewCoord(exchange.SkewCoordConfig{
			Mux:     c.env.Mux,
			Pool:    c.env.Pool,
			QueryID: c.env.QueryID,
			ExID:    c.env.NextExID(),
			Servers: c.env.Servers,
			Config:  c.env.Skew,
			Cancel:  c.env.Cancel,
		})
		ps = c.exchangeStreamSkew(joinName(n, "skew-shuffle-probe"), ps, exchange.ModeSkewProbe, probeKeys, coord)
		bs = c.exchangeStreamSkew(joinName(n, "skew-shuffle-build"), bs, exchange.ModeSkewBuild, buildKeys, coord)
	case LocalJoin:
		// Nothing to move.
	}
	if bs.coordOnly && !ps.coordOnly {
		// A coordinator-only build (e.g. a gathered scalar) joined with a
		// distributed probe must be broadcast back to all servers.
		bs = c.exchangeStream(joinName(n, "scalar-broadcast"), bs, exchange.ModeBroadcast, nil)
	}

	jb := op.NewJoinBuild(bs.schema, buildKeys)
	jb.ExpectRows(bs.rows, c.env.MorselSize)
	build := c.add(&engine.Pipeline{
		Name:            joinName(n, "build"),
		Source:          bs.source,
		Ops:             bs.ops,
		Sink:            jb,
		CoordinatorOnly: bs.coordOnly,
	}, bs.deps)
	probe := op.NewJoinProbe(jb, n.JoinType, ps.schema, probeKeys, probeOut, buildOut, n.Residual)
	ps.ops = append(ps.ops, probe)
	// Build-before-probe: whichever pipeline ends up running the probe
	// operator must wait for the hash table to finalize.
	ps.deps = withDep(ps.deps, build)
	ps.schema = n.schema
	// Resulting partitioning: the probe keys survive if they are among the
	// emitted probe columns.
	switch strat {
	case PartitionBoth:
		ps.part = remap(probeKeys, probeOut)
	case SkewAdaptive:
		// Hot probe tuples stayed on their origin server, so the output is
		// NOT partitioned on the join keys: a downstream group-by must
		// re-shuffle or it would aggregate the same hot key on several
		// servers (double counting).
		ps.part = nil
	default:
		ps.part = remap(ps.part, probeOut)
	}
	ps.replicated = ps.replicated && bs.replicated
	return ps, nil
}

// pruneCols computes the columns (ascending) of a width-column schema that
// a join side must keep: its keys and output columns. ok is false when
// nothing can be pruned.
func pruneCols(width int, keys, out []int) (keep []int, ok bool) {
	need := make([]bool, width)
	for _, c := range keys {
		need[c] = true
	}
	for _, c := range out {
		need[c] = true
	}
	for i, b := range need {
		if b {
			keep = append(keep, i)
		}
	}
	if len(keep) == width {
		return nil, false
	}
	return keep, true
}

func (c *compiler) decideJoin(n *Node, bs, ps *stream) JoinStrategy {
	if c.env.Servers == 1 || (bs.coordOnly && ps.coordOnly) {
		return LocalJoin
	}
	if n.Strategy == LocalJoin {
		return LocalJoin
	}
	if bs.replicated {
		// The build side is already everywhere.
		return LocalJoin
	}
	if n.Strategy == BroadcastBuild {
		return BroadcastBuild
	}
	if aligned(bs.part, n.BuildKeys) && aligned(ps.part, n.ProbeKeys) {
		return LocalJoin
	}
	if n.Strategy == SkewAdaptive {
		if c.env.Classic {
			// The classic exchange-operator baseline has no adaptive
			// machinery; keep it an honest static comparison point.
			return PartitionBoth
		}
		return SkewAdaptive
	}
	return PartitionBoth
}

func (c *compiler) buildGroupJoin(n *Node) (*stream, error) {
	bs, err := c.build(n.Build)
	if err != nil {
		return nil, err
	}
	ps, err := c.build(n.Probe)
	if err != nil {
		return nil, err
	}
	if c.env.Servers > 1 && !(bs.coordOnly && ps.coordOnly) {
		if !bs.replicated && !aligned(bs.part, n.BuildKeys) {
			bs = c.exchangeStream(joinName(n, "gj-shuffle-build"), bs, exchange.ModePartition, n.BuildKeys)
		}
		if !aligned(ps.part, n.ProbeKeys) && !bs.replicated {
			ps = c.exchangeStream(joinName(n, "gj-shuffle-probe"), ps, exchange.ModePartition, n.ProbeKeys)
		}
	}
	gjb := op.NewGroupJoinBuild(n.Build.Schema(), n.BuildKeys, n.Aggs)
	build := c.add(&engine.Pipeline{
		Name:   joinName(n, "gj-build"),
		Source: bs.source,
		Ops:    bs.ops,
		Sink:   gjb,
	}, bs.deps)
	gjp := &op.GroupJoinProbe{Build: gjb, ProbeKeys: n.ProbeKeys, Residual: n.Residual}
	probe := c.add(&engine.Pipeline{
		Name:   joinName(n, "gj-probe"),
		Source: ps.source,
		Ops:    ps.ops,
		Sink:   gjp,
	}, withDep(ps.deps, build))
	// The output schema is the build schema plus aggregates, so the build
	// stream's partitioning survives positionally.
	return &stream{
		source: &op.LazySource{Fn: gjb.ResultBatches, Morsel: c.env.MorselSize},
		schema: n.schema,
		part:   bs.part,
		deps:   []int{probe},
	}, nil
}

func (c *compiler) buildGroupBy(n *Node) (*stream, error) {
	in, err := c.build(n.In)
	if err != nil {
		return nil, err
	}
	env := c.env
	workers := env.Engine.Workers()

	// A replicated input would multiply counts if every server aggregated
	// its full copy: restrict it to the coordinator's copy instead.
	if in.replicated && env.Servers > 1 && !in.coordOnly {
		in.coordOnly = true
		in.replicated = false
	}
	local := env.Servers == 1 || in.coordOnly ||
		(len(n.Keys) > 0 && aligned(in.part, n.Keys))

	if local {
		gb := op.NewGroupBy(in.schema, n.Keys, n.Aggs, workers).WithHint(in.rows)
		agg := c.add(&engine.Pipeline{
			Name:            gbName(n, "agg"),
			Source:          in.source,
			Ops:             in.ops,
			Sink:            gb,
			CoordinatorOnly: in.coordOnly,
		}, in.deps)
		return &stream{
			source:    &op.LazySource{Fn: gb.FinalBatches, Morsel: env.MorselSize},
			schema:    n.schema,
			part:      groupPart(n, in),
			coordOnly: in.coordOnly,
			deps:      []int{agg},
		}, nil
	}

	if len(n.Keys) == 0 {
		// Scalar aggregate: local partial → gather → merge on coordinator.
		partial := op.NewGroupBy(in.schema, nil, n.Aggs, workers).WithHint(in.rows)
		pa := c.add(&engine.Pipeline{
			Name:   gbName(n, "partial"),
			Source: in.source,
			Ops:    in.ops,
			Sink:   partial,
		}, in.deps)
		ps := partial.PartialSchema()
		mid := &stream{
			source: &op.LazySource{Fn: partial.PartialBatches, Morsel: env.MorselSize},
			schema: ps,
			deps:   []int{pa},
		}
		mid = c.gather(gbName(n, "gather"), mid)
		merge := op.NewGroupBy(ps, nil, op.MergeSpecs(n.Aggs, 0), workers)
		mg := c.add(&engine.Pipeline{
			Name:            gbName(n, "merge"),
			Source:          mid.source,
			Ops:             mid.ops,
			Sink:            merge,
			CoordinatorOnly: true,
		}, mid.deps)
		return &stream{
			source:    &op.LazySource{Fn: merge.FinalBatches, Morsel: env.MorselSize},
			schema:    n.schema,
			coordOnly: true,
			deps:      []int{mg},
		}, nil
	}

	if env.DisablePreAgg {
		// Ablation: shuffle raw rows, aggregate once after the exchange.
		shuffled := c.exchangeStream(gbName(n, "shuffle-raw"), in, exchange.ModePartition, n.Keys)
		gb := op.NewGroupBy(shuffled.schema, n.Keys, n.Aggs, workers).WithHint(shuffled.rows)
		agg := c.add(&engine.Pipeline{
			Name:   gbName(n, "agg"),
			Source: shuffled.source,
			Ops:    shuffled.ops,
			Sink:   gb,
		}, shuffled.deps)
		return &stream{
			source: &op.LazySource{Fn: gb.FinalBatches, Morsel: env.MorselSize},
			schema: n.schema,
			part:   identity(len(n.Keys)),
			deps:   []int{agg},
		}, nil
	}

	// Pre-aggregate locally (Figure 6(c)), shuffle partials on the group
	// keys, merge.
	partial := op.NewGroupBy(in.schema, n.Keys, n.Aggs, workers).WithHint(in.rows)
	pa := c.add(&engine.Pipeline{
		Name:   gbName(n, "preagg"),
		Source: in.source,
		Ops:    in.ops,
		Sink:   partial,
	}, in.deps)
	ps := partial.PartialSchema()
	mid := &stream{
		source: &op.LazySource{Fn: partial.PartialBatches, Morsel: env.MorselSize},
		schema: ps,
		deps:   []int{pa},
		rows:   in.rows, // partial groups are bounded by the input rows
	}
	mid = c.exchangeStream(gbName(n, "shuffle"), mid, exchange.ModePartition, identity(len(n.Keys)))
	merge := op.NewGroupBy(ps, identity(len(n.Keys)), op.MergeSpecs(n.Aggs, len(n.Keys)), workers).WithHint(mid.rows)
	mg := c.add(&engine.Pipeline{
		Name:   gbName(n, "merge"),
		Source: mid.source,
		Ops:    mid.ops,
		Sink:   merge,
	}, mid.deps)
	return &stream{
		source: &op.LazySource{Fn: merge.FinalBatches, Morsel: env.MorselSize},
		schema: n.schema,
		part:   identity(len(n.Keys)),
		deps:   []int{mg},
	}, nil
}

func (c *compiler) buildTopK(n *Node) (*stream, error) {
	in, err := c.build(n.In)
	if err != nil {
		return nil, err
	}
	env := c.env
	if env.Servers == 1 || in.coordOnly {
		tk := op.NewTopK(in.schema, n.SortKeys, n.Limit)
		sortP := c.add(&engine.Pipeline{
			Name:            "topk",
			Source:          in.source,
			Ops:             in.ops,
			Sink:            tk,
			CoordinatorOnly: in.coordOnly,
		}, in.deps)
		return &stream{
			source:    &op.LazySource{Fn: tk.Batches, Morsel: env.MorselSize},
			schema:    n.schema,
			coordOnly: in.coordOnly,
			deps:      []int{sortP},
		}, nil
	}
	// Local top-k bounds what is shipped; the coordinator re-sorts.
	local := op.NewTopK(in.schema, n.SortKeys, n.Limit)
	lp := c.add(&engine.Pipeline{
		Name:   "topk/local",
		Source: in.source,
		Ops:    in.ops,
		Sink:   local,
	}, in.deps)
	mid := &stream{
		source: &op.LazySource{Fn: local.Batches, Morsel: env.MorselSize},
		schema: in.schema,
		deps:   []int{lp},
	}
	mid = c.gather("topk/gather", mid)
	final := op.NewTopK(in.schema, n.SortKeys, n.Limit)
	fp := c.add(&engine.Pipeline{
		Name:            "topk/final",
		Source:          mid.source,
		Ops:             mid.ops,
		Sink:            final,
		CoordinatorOnly: true,
	}, mid.deps)
	return &stream{
		source:    &op.LazySource{Fn: final.Batches, Morsel: env.MorselSize},
		schema:    n.schema,
		coordOnly: true,
		deps:      []int{fp},
	}, nil
}

// aligned reports whether the stream partitioning matches the keys
// positionally.
func aligned(part, keys []int) bool {
	if part == nil || len(part) != len(keys) {
		return false
	}
	for i := range part {
		if part[i] != keys[i] {
			return false
		}
	}
	return true
}

// remap translates column indexes through a projection; nil if any column
// is dropped.
func remap(cols, proj []int) []int {
	if cols == nil {
		return nil
	}
	if proj == nil {
		return cols
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		found := -1
		for p, pc := range proj {
			if pc == c {
				found = p
				break
			}
		}
		if found < 0 {
			return nil
		}
		out[i] = found
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func groupPart(n *Node, in *stream) []int {
	if len(n.Keys) == 0 {
		return nil
	}
	if aligned(in.part, n.Keys) {
		return identity(len(n.Keys))
	}
	return nil
}

func joinName(n *Node, stage string) string {
	return fmt.Sprintf("join(%s)/%s", n.JoinType, stage)
}

func gbName(n *Node, stage string) string {
	return fmt.Sprintf("groupby(%d keys)/%s", len(n.Keys), stage)
}
