// Package plan provides the logical query plan and the distributed plan
// compiler: it turns an operator tree into per-server morsel pipelines,
// inserting decoupled exchange operators where data must move — hash
// partitioning for joins and aggregations, broadcast when one join input
// is small (Figure 6(c)), pre-aggregation before reshuffling group-bys,
// and a final gather to the coordinator.
package plan

import (
	"fmt"

	"hsqp/internal/op"
	"hsqp/internal/storage"
)

// Kind enumerates logical operators.
type Kind int

const (
	// KScan reads a base relation fragment.
	KScan Kind = iota
	// KSelect filters rows.
	KSelect
	// KMap appends computed columns.
	KMap
	// KProject keeps/reorders columns.
	KProject
	// KJoin is a hash join (inner/leftouter/semi/anti).
	KJoin
	// KGroupBy is a hash aggregation.
	KGroupBy
	// KGroupJoin is HyPer's Γ⨝ (join+group-by on the same key).
	KGroupJoin
	// KTopK sorts and optionally limits.
	KTopK
)

// JoinStrategy selects how a distributed join moves data.
type JoinStrategy int

const (
	// AutoStrategy partitions both sides unless placement makes the join
	// co-located.
	AutoStrategy JoinStrategy = iota
	// BroadcastBuild replicates the build side to every server; the probe
	// side stays local. Beneficial when |build| < |probe| / (n−1) (§3.1).
	BroadcastBuild
	// PartitionBoth hash-partitions both inputs on the join keys.
	PartitionBoth
	// LocalJoin asserts the join is already co-located (placement).
	LocalJoin
	// SkewAdaptive hash-partitions both inputs but detects heavy probe
	// keys online (Space-Saving sketch over the first morsels, merged
	// cluster-wide): tuples of hot keys switch to a selective-broadcast
	// route — the build side of a hot key is replicated to every server
	// while its probe tuples stay on their origin server — and cold keys
	// keep hash partitioning. Tolerates Zipf-skewed join keys without a
	// straggler server; falls back to PartitionBoth under the classic
	// exchange-operator model.
	SkewAdaptive
)

// Node is a logical plan operator.
type Node struct {
	Kind   Kind
	schema *storage.Schema

	// Children: unary ops use In; KJoin/KGroupJoin use Build and Probe.
	In    *Node
	Build *Node
	Probe *Node

	// KScan
	Table string

	// KSelect
	Pred op.Pred

	// KMap
	Exprs []op.NamedExpr

	// KProject
	Cols []int

	// KJoin
	JoinType  op.JoinType
	BuildKeys []int
	ProbeKeys []int
	Residual  op.ResidualPred
	Strategy  JoinStrategy
	// ProbeOut/BuildOut select output columns (nil = all).
	ProbeOut []int
	BuildOut []int

	// KGroupBy / KGroupJoin
	Keys []int
	Aggs []op.AggSpec

	// KTopK
	SortKeys []op.SortKey
	Limit    int
}

// Schema returns the node's output schema.
func (n *Node) Schema() *storage.Schema { return n.schema }

// Col resolves a column name in the node's output schema.
func (n *Node) Col(name string) int { return n.schema.MustColIndex(name) }

// Scan creates a base-relation scan. The schema is the relation schema as
// stored (the catalog validates it at execution time).
func Scan(table string, schema *storage.Schema) *Node {
	return &Node{Kind: KScan, Table: table, schema: schema}
}

// Select filters with pred.
func (n *Node) Select(pred op.Pred) *Node {
	return &Node{Kind: KSelect, In: n, Pred: pred, schema: n.schema}
}

// Map appends computed columns.
func (n *Node) Map(exprs ...op.NamedExpr) *Node {
	m := op.NewMap(n.schema, exprs)
	return &Node{Kind: KMap, In: n, Exprs: exprs, schema: m.Schema}
}

// Project keeps the named columns in order.
func (n *Node) Project(names ...string) *Node {
	cols := make([]int, len(names))
	for i, nm := range names {
		cols[i] = n.Col(nm)
	}
	return n.ProjectCols(cols)
}

// ProjectCols keeps the given column indexes in order.
func (n *Node) ProjectCols(cols []int) *Node {
	return &Node{Kind: KProject, In: n, Cols: cols, schema: n.schema.Project(cols)}
}

// JoinSpec carries the optional knobs of a join.
type JoinSpec struct {
	Type     op.JoinType
	Strategy JoinStrategy
	Residual op.ResidualPred
	// ProbeOut/BuildOut are output column names (nil = all columns).
	ProbeOut []string
	BuildOut []string
}

// Join hash-joins probe (receiver) with build on name-resolved keys.
// The receiver is the probe (streaming) side.
func (n *Node) Join(build *Node, probeKeys, buildKeys []string, spec JoinSpec) *Node {
	pk := make([]int, len(probeKeys))
	for i, k := range probeKeys {
		pk[i] = n.Col(k)
	}
	bk := make([]int, len(buildKeys))
	for i, k := range buildKeys {
		bk[i] = build.Col(k)
	}
	if len(pk) != len(bk) {
		panic(fmt.Sprintf("plan: join key arity mismatch %d vs %d", len(pk), len(bk)))
	}
	probeOut := resolveAll(n.schema, spec.ProbeOut)
	var buildOut []int
	if spec.Type == op.Inner || spec.Type == op.LeftOuter {
		buildOut = resolveAll(build.schema, spec.BuildOut)
	}
	// Output schema: probe columns, then build columns (nullable for
	// left outer).
	out := &storage.Schema{}
	for _, c := range probeOut {
		out.Fields = append(out.Fields, n.schema.Fields[c])
	}
	for _, c := range buildOut {
		f := build.schema.Fields[c]
		if spec.Type == op.LeftOuter {
			f.Nullable = true
		}
		out.Fields = append(out.Fields, f)
	}
	return &Node{
		Kind:      KJoin,
		Build:     build,
		Probe:     n,
		JoinType:  spec.Type,
		BuildKeys: bk,
		ProbeKeys: pk,
		Residual:  spec.Residual,
		Strategy:  spec.Strategy,
		ProbeOut:  probeOut,
		BuildOut:  buildOut,
		schema:    out,
	}
}

// GroupBy aggregates by the named key columns.
func (n *Node) GroupBy(keys []string, aggs ...op.AggSpec) *Node {
	kc := make([]int, len(keys))
	for i, k := range keys {
		kc[i] = n.Col(k)
	}
	return n.GroupByCols(kc, aggs...)
}

// GroupByCols aggregates by key column indexes.
func (n *Node) GroupByCols(keys []int, aggs ...op.AggSpec) *Node {
	out := &storage.Schema{}
	for _, k := range keys {
		out.Fields = append(out.Fields, n.schema.Fields[k])
	}
	for _, a := range aggs {
		out.Fields = append(out.Fields, a.ResultField())
	}
	return &Node{Kind: KGroupBy, In: n, Keys: keys, Aggs: aggs, schema: out}
}

// GroupJoin combines a join and a group-by on the same key: the receiver
// is the probe (aggregated) side, build the group side. Output: build
// columns then aggregate values, one row per matched build row.
func (n *Node) GroupJoin(build *Node, probeKeys, buildKeys []string, residual op.ResidualPred, aggs ...op.AggSpec) *Node {
	pk := make([]int, len(probeKeys))
	for i, k := range probeKeys {
		pk[i] = n.Col(k)
	}
	bk := make([]int, len(buildKeys))
	for i, k := range buildKeys {
		bk[i] = build.Col(k)
	}
	out := &storage.Schema{Fields: append([]storage.Field{}, build.schema.Fields...)}
	for _, a := range aggs {
		out.Fields = append(out.Fields, a.ResultField())
	}
	return &Node{
		Kind:      KGroupJoin,
		Build:     build,
		Probe:     n,
		BuildKeys: bk,
		ProbeKeys: pk,
		Residual:  residual,
		Aggs:      aggs,
		schema:    out,
	}
}

// OrderBy sorts by the named columns; desc selects per-key direction.
func (n *Node) OrderBy(keys []op.SortKey, limit int) *Node {
	return &Node{Kind: KTopK, In: n, SortKeys: keys, Limit: limit, schema: n.schema}
}

func resolveAll(s *storage.Schema, names []string) []int {
	if names == nil {
		out := make([]int, s.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, len(names))
	for i, nm := range names {
		out[i] = s.MustColIndex(nm)
	}
	return out
}

// Query is a named root.
type Query struct {
	Name string
	Root *Node
}

// NewQuery wraps a plan root.
func NewQuery(name string, root *Node) *Query {
	return &Query{Name: name, Root: root}
}
