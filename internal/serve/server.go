package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"hsqp/internal/cluster"
	"hsqp/internal/obs"
	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// Config configures a serving tier over one cluster.
type Config struct {
	// Cluster executes the queries; the caller keeps ownership (the server
	// never closes it).
	Cluster *cluster.Cluster
	// SF is the scale factor of the loaded database (statement parameters
	// and the HelloOK advertisement).
	SF float64
	// Seed is the generator seed of the loaded database, advertised to
	// clients so they can regenerate it for verification.
	Seed uint64
	// Tenants maps tenant name → weight for weighted-fair admission.
	// Unknown tenants are admitted with weight 1.
	Tenants map[string]int
	// Slots is how many queries may execute concurrently (default
	// cluster.DefaultMaxConcurrent).
	Slots int
	// MaxQueuedPerTenant bounds each tenant's admission queue (default
	// DefaultMaxQueued).
	MaxQueuedPerTenant int
	// PlanCacheEntries bounds the compiled-plan cache (default
	// DefaultPlanCacheEntries).
	PlanCacheEntries int
	// ResultCacheBytes is the result cache budget (default
	// DefaultResultCacheBytes); DisableResultCache turns the cache off
	// entirely (every request executes).
	ResultCacheBytes   int64
	DisableResultCache bool
	// SlowQueryThreshold enables the slow-query log: every request whose
	// total latency (queue + compile + execute + streaming) reaches the
	// threshold is written to SlowQueryLog as one structured line with the
	// phase split and wire bytes. Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

// Server is the network front door: it owns the listener, the caches, the
// admission controller and a cluster.Session, and serves any number of
// concurrent client connections.
type Server struct {
	cfg     Config
	qos     *QoS
	session *cluster.Session
	plans   *PlanCache
	results *ResultCache
	slow    *obs.SlowLog

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	reqWG  sync.WaitGroup // in-flight requests (queued or executing)
	connWG sync.WaitGroup // live connection handlers
	done   chan struct{}  // closed when Shutdown finishes
	doneMu sync.Once
}

// New creates a server over the cluster.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = cluster.DefaultMaxConcurrent
	}
	qos := NewQoS(cfg.Slots, cfg.Tenants, cfg.MaxQueuedPerTenant)
	s := &Server{
		cfg:     cfg,
		qos:     qos,
		session: cfg.Cluster.NewSession(cluster.SessionConfig{Admission: qos}),
		plans:   NewPlanCache(cfg.Cluster, cfg.SF, cfg.PlanCacheEntries),
		conns:   map[net.Conn]struct{}{},
		done:    make(chan struct{}),
	}
	if !cfg.DisableResultCache {
		s.results = NewResultCache(cfg.ResultCacheBytes)
	}
	if cfg.SlowQueryThreshold > 0 {
		w := cfg.SlowQueryLog
		if w == nil {
			w = os.Stderr
		}
		s.slow = obs.NewSlowLog(w, cfg.SlowQueryThreshold)
	}
	s.registerCollect()
	return s
}

// SlowQueryCount reports how many requests the slow-query log recorded.
func (s *Server) SlowQueryCount() uint64 { return s.slow.Count() }

// Serve accepts connections on lis until Shutdown closes it. It always
// returns a non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown drains the server gracefully: stop accepting, fail queued
// requests fast (ErrDraining), let in-flight queries complete and their
// responses flush, then close every connection. Safe to call more than
// once; Done is closed when the first call finishes.
func (s *Server) Shutdown() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if already {
		<-s.done
		return
	}
	if lis != nil {
		lis.Close()
	}
	s.qos.Close()     // queued admission waiters fail fast
	s.reqWG.Wait()    // in-flight requests complete and responses flush
	s.session.Close() // no stragglers: the session drains instantly now
	// Snapshot under the lock, close outside it: Close on a hung
	// connection may block, and connection handlers take s.mu on their
	// exit path — closing under the lock can deadlock the drain.
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close() // unblock idle readers
	}
	s.connWG.Wait()
	s.doneMu.Do(func() { close(s.done) })
}

// Done is closed once a Shutdown completes.
func (s *Server) Done() <-chan struct{} { return s.done }

// TenantStats returns the per-tenant QoS/latency snapshot.
func (s *Server) TenantStats() []TenantStats { return s.qos.Snapshot() }

// PlanCacheStats snapshots the plan cache counters.
func (s *Server) PlanCacheStats() PlanCacheStats { return s.plans.Stats() }

// ResultCacheStats snapshots the result cache counters (zero value when
// the cache is disabled).
func (s *Server) ResultCacheStats() ResultCacheStats {
	if s.results == nil {
		return ResultCacheStats{}
	}
	return s.results.Stats()
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connWG.Done()
	}()
	mConns.Add(1)
	defer mConns.Add(-1)
	br := bufio.NewReaderSize(countingReader{r: conn}, 64<<10)
	bw := bufio.NewWriterSize(countingWriter{w: conn}, 64<<10)

	tenant, err := s.handshake(br, bw)
	if err != nil {
		return
	}

	handles := map[uint32]string{} // prepared-statement handle → statement
	var nextHandle uint32

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		if !s.beginRequest() {
			s.writeError(bw, ErrDraining)
			return
		}
		switch typ {
		case framePrepare:
			stmt, _, perr := getString(payload)
			if perr == nil {
				var n int
				if n, perr = ParseStatement(stmt); perr == nil {
					stmt = fmt.Sprintf("q%d", n)
				}
			}
			if perr == nil {
				var p *cluster.Prepared
				p, _, perr = s.plans.Get(stmt)
				if perr == nil {
					nextHandle++
					handles[nextHandle] = stmt
					out := putU32(nil, nextHandle)
					out = putSchema(out, p.Schema())
					perr = writeFrame(bw, framePrepared, out)
				}
			}
			err = s.finishRequest(bw, perr)
		case frameExec:
			err = s.handleExec(bw, tenant, payload, handles)
		case frameCloseStmt:
			h, _, perr := getU32(payload)
			if perr == nil {
				delete(handles, h)
				perr = writeFrame(bw, frameOK, nil)
			}
			err = s.finishRequest(bw, perr)
		case frameShutdown:
			writeFrame(bw, frameOK, nil)
			bw.Flush()
			s.reqWG.Done()
			go s.Shutdown()
			return
		default:
			err = s.finishRequest(bw, fmt.Errorf("serve: unknown frame type 0x%02x", typ))
		}
		if err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// beginRequest registers an in-flight request unless the server drains.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// finishRequest completes a request begun with beginRequest, converting a
// handler error into an Error frame (connection-level write errors
// propagate).
func (s *Server) finishRequest(bw *bufio.Writer, err error) error {
	defer s.reqWG.Done()
	if err == nil {
		return nil
	}
	return s.writeError(bw, err)
}

func (s *Server) writeError(bw *bufio.Writer, err error) error {
	if werr := writeFrame(bw, frameError, putString(nil, err.Error())); werr != nil {
		return werr
	}
	return bw.Flush()
}

func (s *Server) handshake(br *bufio.Reader, bw *bufio.Writer) (string, error) {
	typ, payload, err := readFrame(br)
	if err != nil {
		return "", err
	}
	if typ != frameHello || len(payload) < 1 {
		s.writeError(bw, errors.New("serve: expected Hello"))
		return "", errors.New("bad hello")
	}
	if payload[0] != ProtoVersion {
		s.writeError(bw, fmt.Errorf("serve: protocol version %d not supported (want %d)", payload[0], ProtoVersion))
		return "", errors.New("version mismatch")
	}
	tenant, _, err := getString(payload[1:])
	if err != nil {
		return "", err
	}
	if tenant == "" {
		tenant = "default"
	}
	weight := s.cfg.Tenants[tenant]
	if weight < 1 {
		weight = 1
	}
	out := []byte{ProtoVersion}
	out = putF64(out, s.cfg.SF)
	out = putU64(out, s.cfg.Seed)
	out = putU32(out, uint32(weight))
	if err := writeFrame(bw, frameHelloOK, out); err != nil {
		return "", err
	}
	return tenant, bw.Flush()
}

// doneInfo is what a Done frame reports, plus serve-internal detail for
// the slow-query log (wire bytes and the cache path are not on the wire).
type doneInfo struct {
	rows      uint64
	flags     byte
	queueWait time.Duration
	compile   time.Duration
	exec      time.Duration
	total     time.Duration
	wireBytes uint64
	path      string // executed | result-hit | shared
}

func (s *Server) handleExec(bw *bufio.Writer, tenant string, payload []byte, handles map[uint32]string) error {
	start := time.Now()
	if len(payload) < 1 {
		return s.finishRequest(bw, errors.New("serve: corrupt Exec frame"))
	}
	flags := payload[0]
	handle, rest, err := getU32(payload[1:])
	if err != nil {
		return s.finishRequest(bw, err)
	}
	stmt, _, err := getString(rest)
	if err != nil {
		return s.finishRequest(bw, err)
	}
	if handle != NoHandle {
		ps, ok := handles[handle]
		if !ok {
			return s.finishRequest(bw, fmt.Errorf("serve: unknown prepared-statement handle %d", handle))
		}
		stmt = ps
	}
	n, err := ParseStatement(stmt)
	if err != nil {
		return s.finishRequest(bw, err)
	}
	norm := fmt.Sprintf("q%d", n)

	entry, info, err := s.execStatement(tenant, norm, flags&execBypassResultCache != 0)
	if err != nil {
		return s.finishRequest(bw, err)
	}
	info.total = time.Since(start)
	s.qos.Observe(tenant, info.queueWait, info.total)
	mRequests.With(tenant).Inc()
	if s.slow.Observe(obs.SlowQuery{
		Tenant: tenant, Statement: norm, Rows: int(entry.Rows),
		QueueWait: info.queueWait, Compile: info.compile, Exec: info.exec,
		Total: info.total, WireBytes: info.wireBytes, Path: info.path,
	}) {
		mSlowQueries.Inc()
	}

	// Stream: Schema, Batches, Done.
	if err := writeFrame(bw, frameSchema, entry.SchemaPayload); err != nil {
		return s.finishRequest(bw, err)
	}
	for _, b := range entry.Batches {
		if err := writeFrame(bw, frameBatch, b); err != nil {
			return s.finishRequest(bw, err)
		}
	}
	out := putU64(nil, entry.Rows)
	out = append(out, info.flags)
	out = putU64(out, uint64(info.queueWait))
	out = putU64(out, uint64(info.compile))
	out = putU64(out, uint64(info.exec))
	out = putU64(out, uint64(info.total))
	return s.finishRequest(bw, writeFrame(bw, frameDone, out))
}

// execStatement resolves the statement through the result cache (unless
// bypassed or disabled) and the plan cache.
func (s *Server) execStatement(tenant, norm string, bypass bool) (*ResultEntry, doneInfo, error) {
	if s.results == nil || bypass {
		return s.runStatement(tenant, norm)
	}
	key := fmt.Sprintf("%s|e%d", norm, s.cfg.Cluster.Epoch())
	var leader doneInfo
	entry, src, err := s.results.Do(key, func() (*ResultEntry, error) {
		e, info, err := s.runStatement(tenant, norm)
		leader = info
		return e, err
	})
	if err != nil {
		return nil, doneInfo{}, err
	}
	switch src {
	case ResultExecuted:
		return entry, leader, nil
	case ResultShared:
		return entry, doneInfo{rows: entry.Rows, flags: doneResultHit | doneShared, path: "shared"}, nil
	default:
		return entry, doneInfo{rows: entry.Rows, flags: doneResultHit, path: "result-hit"}, nil
	}
}

// runStatement executes the statement through the plan cache and the
// weighted-fair session, returning the encoded result.
func (s *Server) runStatement(tenant, norm string) (*ResultEntry, doneInfo, error) {
	prepared, planHit, err := s.plans.Get(norm)
	if err != nil {
		return nil, doneInfo{}, err
	}
	res, stats, err := s.session.RunContext(context.Background(), prepared.Query(), cluster.WithTenant(tenant))
	if err != nil {
		return nil, doneInfo{}, err
	}
	entry := encodeResult(res)
	info := doneInfo{
		rows:      entry.Rows,
		queueWait: stats.QueueWait,
		compile:   stats.Compile,
		exec:      stats.Exec,
		wireBytes: stats.WireBytes(),
		path:      "executed",
	}
	if planHit {
		info.flags |= donePlanHit
	}
	return entry, info, nil
}

// resultBatchRows caps rows per Batch frame so very large results stream
// instead of building one giant frame.
const resultBatchRows = 8192

// encodeResult captures a result batch as wire frames (ser tuple format).
func encodeResult(b *storage.Batch) *ResultEntry {
	codec := ser.For(b.Schema)
	e := &ResultEntry{
		SchemaPayload: putSchema(nil, b.Schema),
		Rows:          uint64(b.Rows()),
	}
	for start := 0; start < b.Rows(); start += resultBatchRows {
		end := start + resultBatchRows
		if end > b.Rows() {
			end = b.Rows()
		}
		payload := putU32(nil, uint32(end-start))
		for r := start; r < end; r++ {
			payload = codec.EncodeRow(b, r, payload)
		}
		e.Batches = append(e.Batches, payload)
	}
	return e
}
