package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"hsqp/internal/ser"
	"hsqp/internal/storage"
)

// ServerInfo is what the server advertises in HelloOK.
type ServerInfo struct {
	SF     float64 // scale factor of the loaded database
	Seed   uint64  // generator seed (clients can regenerate for verification)
	Weight int     // this tenant's admission weight
}

// ExecStats reports one served request as seen by the client.
type ExecStats struct {
	Rows      int
	PlanHit   bool // compiled-plan cache hit (no prepare/compile)
	ResultHit bool // result cache hit (no execution at all)
	Shared    bool // single-flight: shared a concurrent identical run
	QueueWait time.Duration
	Compile   time.Duration
	Exec      time.Duration
	Total     time.Duration // server-side serving time
	Wall      time.Duration // client-observed round-trip
}

// ExecOpts tunes one Exec request.
type ExecOpts struct {
	// BypassResultCache forces execution even when a cached result exists.
	BypassResultCache bool
}

// Client is one tenant connection to an hsqpd server. It is not safe for
// concurrent use (the protocol is one request/response at a time per
// connection); open one Client per concurrent stream.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// Info is the server's HelloOK advertisement.
	Info ServerInfo
}

// Dial connects and performs the Hello handshake as the tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	hello := []byte{ProtoVersion}
	hello = putString(hello, tenant)
	if err := c.request(frameHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == frameError {
		conn.Close()
		return nil, decodeError(payload)
	}
	if typ != frameHelloOK || len(payload) < 1 || payload[0] != ProtoVersion {
		conn.Close()
		return nil, errors.New("serve: bad HelloOK")
	}
	rest := payload[1:]
	if c.Info.SF, rest, err = getF64(rest); err == nil {
		if c.Info.Seed, rest, err = getU64(rest); err == nil {
			var w uint32
			if w, _, err = getU32(rest); err == nil {
				c.Info.Weight = int(w)
			}
		}
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) request(typ byte, payload []byte) error {
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func decodeError(payload []byte) error {
	msg, _, err := getString(payload)
	if err != nil {
		return errors.New("serve: malformed error frame")
	}
	return fmt.Errorf("serve: server error: %s", msg)
}

// Stmt is a prepared statement handle on one connection.
type Stmt struct {
	c      *Client
	handle uint32
	schema *storage.Schema
}

// Schema is the statement's result schema as reported at prepare time.
func (st *Stmt) Schema() *storage.Schema { return st.schema }

// Prepare registers the statement server-side (compiling and caching its
// plan) and returns a handle for repeated execution.
func (c *Client) Prepare(stmt string) (*Stmt, error) {
	if err := c.request(framePrepare, putString(nil, stmt)); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if typ == frameError {
		return nil, decodeError(payload)
	}
	if typ != framePrepared {
		return nil, fmt.Errorf("serve: unexpected frame 0x%02x to Prepare", typ)
	}
	handle, rest, err := getU32(payload)
	if err != nil {
		return nil, err
	}
	schema, _, err := getSchema(rest)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, handle: handle, schema: schema}, nil
}

// Exec executes the prepared statement.
func (st *Stmt) Exec() (*storage.Batch, ExecStats, error) {
	return st.c.exec("", st.handle, ExecOpts{})
}

// ExecOpts executes the prepared statement with options.
func (st *Stmt) ExecOpts(opts ExecOpts) (*storage.Batch, ExecStats, error) {
	return st.c.exec("", st.handle, opts)
}

// Close releases the statement handle server-side.
func (st *Stmt) Close() error {
	if err := st.c.request(frameCloseStmt, putU32(nil, st.handle)); err != nil {
		return err
	}
	typ, payload, err := readFrame(st.c.br)
	if err != nil {
		return err
	}
	if typ == frameError {
		return decodeError(payload)
	}
	return nil
}

// Exec executes a statement by text ("q12").
func (c *Client) Exec(stmt string) (*storage.Batch, ExecStats, error) {
	return c.exec(stmt, NoHandle, ExecOpts{})
}

// ExecWithOpts executes a statement by text with options.
func (c *Client) ExecWithOpts(stmt string, opts ExecOpts) (*storage.Batch, ExecStats, error) {
	return c.exec(stmt, NoHandle, opts)
}

func (c *Client) exec(stmt string, handle uint32, opts ExecOpts) (*storage.Batch, ExecStats, error) {
	start := time.Now()
	var flags byte
	if opts.BypassResultCache {
		flags |= execBypassResultCache
	}
	payload := []byte{flags}
	payload = putU32(payload, handle)
	payload = putString(payload, stmt)
	if err := c.request(frameExec, payload); err != nil {
		return nil, ExecStats{}, err
	}

	// Response stream: Schema, Batch*, Done (or Error at any boundary).
	var batch *storage.Batch
	var codec *ser.Codec
	for {
		typ, payload, err := readFrame(c.br)
		if err != nil {
			return nil, ExecStats{}, err
		}
		switch typ {
		case frameError:
			return nil, ExecStats{}, decodeError(payload)
		case frameSchema:
			schema, _, err := getSchema(payload)
			if err != nil {
				return nil, ExecStats{}, err
			}
			batch = storage.NewBatch(schema, 0)
			codec = ser.For(schema)
		case frameBatch:
			if batch == nil {
				return nil, ExecStats{}, errors.New("serve: Batch before Schema")
			}
			n, rows, err := getU32(payload)
			if err != nil {
				return nil, ExecStats{}, err
			}
			got, err := codec.DecodeAll(rows, batch)
			if err != nil {
				return nil, ExecStats{}, fmt.Errorf("serve: decoding result batch: %w", err)
			}
			if got != int(n) {
				return nil, ExecStats{}, fmt.Errorf("serve: batch advertised %d rows, decoded %d", n, got)
			}
		case frameDone:
			if batch == nil {
				return nil, ExecStats{}, errors.New("serve: Done before Schema")
			}
			stats, err := decodeDone(payload)
			if err != nil {
				return nil, ExecStats{}, err
			}
			if stats.Rows != batch.Rows() {
				return nil, ExecStats{}, fmt.Errorf("serve: Done advertised %d rows, decoded %d", stats.Rows, batch.Rows())
			}
			stats.Wall = time.Since(start)
			return batch, stats, nil
		default:
			return nil, ExecStats{}, fmt.Errorf("serve: unexpected frame 0x%02x in result stream", typ)
		}
	}
}

func decodeDone(payload []byte) (ExecStats, error) {
	rows, rest, err := getU64(payload)
	if err != nil {
		return ExecStats{}, err
	}
	if len(rest) < 1 {
		return ExecStats{}, errors.New("serve: corrupt Done frame")
	}
	flags := rest[0]
	rest = rest[1:]
	var qw, cp, ex, tot uint64
	if qw, rest, err = getU64(rest); err == nil {
		if cp, rest, err = getU64(rest); err == nil {
			if ex, rest, err = getU64(rest); err == nil {
				tot, _, err = getU64(rest)
			}
		}
	}
	if err != nil {
		return ExecStats{}, err
	}
	return ExecStats{
		Rows:      int(rows),
		PlanHit:   flags&donePlanHit != 0,
		ResultHit: flags&doneResultHit != 0,
		Shared:    flags&doneShared != 0,
		QueueWait: time.Duration(qw),
		Compile:   time.Duration(cp),
		Exec:      time.Duration(ex),
		Total:     time.Duration(tot),
	}, nil
}

// Shutdown asks the server to drain and exit (in-flight queries complete,
// queued ones fail fast).
func (c *Client) Shutdown() error {
	if err := c.request(frameShutdown, nil); err != nil {
		return err
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return err
	}
	if typ == frameError {
		return decodeError(payload)
	}
	if typ != frameOK {
		return fmt.Errorf("serve: unexpected frame 0x%02x to Shutdown", typ)
	}
	return nil
}
