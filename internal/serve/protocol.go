// Package serve is the network-facing serving tier: a TCP server speaking
// a small length-prefixed request/response protocol, a compiled-plan cache
// (prepare once, plan compilation amortized across users — the serving-
// path analogue of the message-buffer registration reuse of §2.2.2), a
// result cache with single-flight deduplication for identical read-only
// queries, and per-tenant weighted-fair admission with latency accounting
// layered on cluster.Session. It is where the engine meets untrusted,
// concurrent, heterogeneous traffic.
//
// # Wire protocol
//
// Every frame is
//
//	uint32 little-endian length (of what follows) | uint8 type | payload
//
// Strings are uvarint length + bytes; integers are little-endian. A
// connection opens with Hello/HelloOK, then carries one request/response
// exchange at a time:
//
//	Hello     c→s  version u8, tenant string
//	HelloOK   s→c  version u8, sf f64bits, seed u64, weight u32
//	Prepare   c→s  statement string                ("q1".."q22")
//	Prepared  s→c  handle u32, result schema
//	Exec      c→s  flags u8 (1 = bypass result cache), handle u32
//	               (NoHandle = by text), statement string
//	Schema    s→c  result schema (first frame of a result stream)
//	Batch     s→c  row count u32, tuples in the ser wire format
//	Done      s→c  rows u64, flags u8 (plan hit | result hit | shared),
//	               queue-wait, compile, exec, total (u64 nanoseconds each)
//	Error     s→c  message string
//	CloseStmt c→s  handle u32  → OK
//	Shutdown  c→s  → OK, then the server drains and exits
//	OK        s→c  empty
//
// Result rows ride the same densely-packed tuple format the exchanges use
// (internal/ser), so a served result is byte-compatible with an engine
// shuffle of the same schema.
package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hsqp/internal/storage"
)

// ProtoVersion is the protocol revision spoken by this package.
const ProtoVersion = 1

// Frame types.
const (
	frameHello     = 0x01
	frameHelloOK   = 0x02
	framePrepare   = 0x03
	framePrepared  = 0x04
	frameExec      = 0x05
	frameSchema    = 0x06
	frameBatch     = 0x07
	frameDone      = 0x08
	frameError     = 0x09
	frameCloseStmt = 0x0a
	frameShutdown  = 0x0b
	frameOK        = 0x0c
)

// Exec flags (request).
const (
	// execBypassResultCache forces execution even when a cached result
	// exists (benchmark ablation; also the escape hatch for callers that
	// must not observe caching).
	execBypassResultCache = 1 << 0
)

// Done flags (response).
const (
	donePlanHit   = 1 << 0 // compiled-plan cache hit (no prepare/compile)
	doneResultHit = 1 << 1 // result cache hit (no execution at all)
	doneShared    = 1 << 2 // single-flight: rode another request's run
)

// NoHandle in an Exec frame means "execute the statement text".
const NoHandle = ^uint32(0)

// maxFrame bounds a single frame; larger results stream as many Batch
// frames, so this is per-frame, not per-result.
const maxFrame = 64 << 20

var errFrameTooLarge = fmt.Errorf("serve: frame exceeds %d bytes", maxFrame)

// writeFrame emits one frame. The caller flushes.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return errFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, rejecting oversized or truncated input.
func readFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, errors.New("serve: zero-length frame")
	}
	if n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return buf[0], buf[1:], nil
}

// --- payload primitives ---

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func getString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, errors.New("serve: corrupt string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func getU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errors.New("serve: corrupt u32")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("serve: corrupt u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// putSchema encodes a result schema: field count, then per field the
// name, type byte and nullable byte.
func putSchema(b []byte, s *storage.Schema) []byte {
	b = binary.AppendUvarint(b, uint64(s.Len()))
	for _, f := range s.Fields {
		b = putString(b, f.Name)
		b = append(b, byte(f.Type))
		if f.Nullable {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func getSchema(b []byte) (*storage.Schema, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<16 {
		return nil, nil, errors.New("serve: corrupt schema")
	}
	b = b[sz:]
	fields := make([]storage.Field, 0, n)
	for i := uint64(0); i < n; i++ {
		name, rest, err := getString(b)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < 2 {
			return nil, nil, errors.New("serve: corrupt schema field")
		}
		typ := storage.Type(rest[0])
		if typ > storage.TString {
			return nil, nil, fmt.Errorf("serve: unknown column type %d", rest[0])
		}
		fields = append(fields, storage.Field{Name: name, Type: typ, Nullable: rest[1] == 1})
		b = rest[2:]
	}
	return storage.NewSchema(fields...), b, nil
}

func putF64(b []byte, v float64) []byte {
	return putU64(b, math.Float64bits(v))
}

func getF64(b []byte) (float64, []byte, error) {
	u, rest, err := getU64(b)
	return math.Float64frombits(u), rest, err
}
