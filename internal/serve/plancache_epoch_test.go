package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hsqp/internal/cluster"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// TestPlanCacheEpochConsistency is the regression test for the prepare/
// epoch race: Get used to compute the cache key from the epoch *before*
// the single-flight prepare ran, so a table load racing with the prepare
// could leave an entry whose key epoch disagreed with the epoch the plan
// was actually compiled against. The invariant now enforced: every cached
// entry's key epoch equals its handle's Prepared.Epoch().
func TestPlanCacheEpochConsistency(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Servers:          2,
		WorkersPerServer: 2,
		Transport:        cluster.RDMA,
		TimeScale:        0.005,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	db := tpch.Generate(0.005, 1)
	c.LoadTPCH(db, false)
	nation := db.Tables["nation"]

	pc := NewPlanCache(c, 0.005, 0)

	// Storm: several goroutines resolving statements while a loader keeps
	// reloading a table (each reload bumps the epoch). The race window is
	// between Get's key computation and the end of its prepare.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stmts := []string{"q6", "q12", "q14"}
			for i := 0; i < 60; i++ {
				stmt := stmts[(g+i)%len(stmts)]
				p, _, err := pc.Get(stmt)
				if err != nil {
					t.Errorf("Get(%s): %v", stmt, err)
					return
				}
				if p == nil {
					t.Errorf("Get(%s): nil handle", stmt)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			c.LoadTable("nation", nation, storage.PlacementReplicated, 0)
		}
	}()
	wg.Wait()

	// Invariant: key epoch == handle epoch for every surviving entry.
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.entries) == 0 {
		t.Fatal("plan cache ended empty")
	}
	for key, e := range pc.entries {
		if e.prepared == nil {
			t.Errorf("entry %q has no handle after all gets returned", key)
			continue
		}
		keyEpoch := parseKeyEpoch(t, key)
		if got := e.prepared.Epoch(); got != keyEpoch {
			t.Errorf("entry %q: key epoch %d but prepared against epoch %d", key, keyEpoch, got)
		}
	}
}

func parseKeyEpoch(t *testing.T, key string) uint64 {
	t.Helper()
	i := strings.LastIndex(key, "|e")
	if i < 0 {
		t.Fatalf("malformed plan-cache key %q", key)
	}
	n, err := strconv.ParseUint(key[i+2:], 10, 64)
	if err != nil {
		t.Fatalf("malformed plan-cache key %q: %v", key, err)
	}
	return n
}

// TestPlanCacheRekeyedEntryIsHit pins the re-key path: an entry moved to
// the epoch its plan was prepared against must serve later lookups at
// that epoch as a cache hit.
func TestPlanCacheRekeyedEntryIsHit(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Servers:          2,
		WorkersPerServer: 2,
		Transport:        cluster.RDMA,
		TimeScale:        0.005,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	db := tpch.Generate(0.005, 1)
	c.LoadTPCH(db, false)

	pc := NewPlanCache(c, 0.005, 0)
	p1, hit, err := pc.Get("q6")
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	p2, hit, err := pc.Get("q6")
	if err != nil || !hit || p2 != p1 {
		t.Fatalf("second Get: hit=%v same=%v err=%v", hit, p2 == p1, err)
	}
	// A table load invalidates: the next Get must re-prepare at the new
	// epoch and key the entry there.
	c.LoadTable("nation", db.Tables["nation"], storage.PlacementReplicated, 0)
	p3, hit, err := pc.Get("q6")
	if err != nil || hit {
		t.Fatalf("post-load Get: hit=%v err=%v", hit, err)
	}
	if p3.Epoch() != c.Epoch() {
		t.Fatalf("post-load handle epoch %d, cluster epoch %d", p3.Epoch(), c.Epoch())
	}
	key := fmt.Sprintf("q6|e%d", p3.Epoch())
	pc.mu.Lock()
	e, ok := pc.entries[key]
	pc.mu.Unlock()
	if !ok || e.prepared != p3 {
		t.Fatalf("entry not keyed at the prepared epoch (ok=%v)", ok)
	}
}
