package serve

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func queuedTotal(q *QoS) int {
	n := 0
	for _, t := range q.Snapshot() {
		n += t.Queued
	}
	return n
}

func waitQueued(t *testing.T, q *QoS, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for queuedTotal(q) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d queued, want %d", queuedTotal(q), want)
		}
		runtime.Gosched()
	}
}

// TestQoSWeightedDispatch pins the stride schedule exactly: with one slot
// held, 8 queued "heavy" (weight 4) and 2 queued "light" (weight 1)
// requests drain in the deterministic order h l h h h h l h h h — the
// weight-4 tenant gets 4× the dispatch share while both queue.
func TestQoSWeightedDispatch(t *testing.T) {
	q := NewQoS(1, map[string]int{"heavy": 4, "light": 1, "hold": 1}, 0)

	holdRelease, err := q.Acquire("hold", nil)
	if err != nil {
		t.Fatalf("hold acquire: %v", err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, err := q.Acquire(tenant, nil)
				if err != nil {
					t.Errorf("%s acquire: %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant[:1])
				mu.Unlock()
				release()
			}()
		}
	}
	enqueue("heavy", 8)
	waitQueued(t, q, 8)
	enqueue("light", 2)
	waitQueued(t, q, 10)

	holdRelease()
	wg.Wait()

	got := strings.Join(order, " ")
	want := "h l h h h h l h h h"
	if got != want {
		t.Fatalf("dispatch order %q, want %q", got, want)
	}

	snap := q.Snapshot()
	byName := map[string]TenantStats{}
	for _, s := range snap {
		byName[s.Tenant] = s
	}
	if byName["heavy"].Weight != 4 || byName["light"].Weight != 1 {
		t.Fatalf("weights drifted: %+v", snap)
	}
}

// TestQoSDirectGrantWhenUncontended: with free slots and nobody queued,
// Acquire returns immediately without blocking.
func TestQoSDirectGrantWhenUncontended(t *testing.T) {
	q := NewQoS(2, nil, 0)
	r1, err := q.Acquire("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Acquire("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	// Released slots are reusable.
	r3, err := q.Acquire("c", nil)
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

// TestQoSQueueBound: a tenant whose queue is full is rejected with
// ErrQueueFull without blocking; other tenants are unaffected.
func TestQoSQueueBound(t *testing.T) {
	q := NewQoS(1, nil, 2)
	hold, err := q.Acquire("hold", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if release, err := q.Acquire("a", nil); err == nil {
				release()
			}
		}()
	}
	waitQueued(t, q, 2)
	if _, err := q.Acquire("a", closedChan()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full tenant queue returned %v, want ErrQueueFull", err)
	}
	hold()
	wg.Wait()
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestQoSCancelWhileQueued: closing the cancel channel abandons the wait
// without leaking the slot.
func TestQoSCancelWhileQueued(t *testing.T) {
	q := NewQoS(1, nil, 0)
	hold, err := q.Acquire("hold", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := q.Acquire("a", cancel)
		got <- err
	}()
	waitQueued(t, q, 1)
	close(cancel)
	if err := <-got; err == nil {
		t.Fatal("cancelled Acquire returned nil error")
	}
	hold()
	// The slot must be free again despite the abandoned waiter.
	release, err := q.Acquire("b", nil)
	if err != nil {
		t.Fatalf("slot leaked after cancelled waiter: %v", err)
	}
	release()
}

// TestQoSCloseDrains: Close fails every queued waiter fast with ErrDraining
// and rejects later Acquires.
func TestQoSCloseDrains(t *testing.T) {
	q := NewQoS(1, nil, 0)
	hold, err := q.Acquire("hold", nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := q.Acquire("a", nil)
			errs <- err
		}()
	}
	waitQueued(t, q, 3)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrDraining) {
				t.Fatalf("queued waiter got %v, want ErrDraining", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter did not fail fast on Close")
		}
	}
	if _, err := q.Acquire("a", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire after Close returned %v, want ErrDraining", err)
	}
	hold() // release after close must not panic
}

// TestQoSWindowRotation pins the recent-latency ring semantics: the
// percentile window holds exactly the latWindow most recent observations,
// so old outliers age out after one full rotation and partially rotated
// windows mix old and new samples at their true ranks.
func TestQoSWindowRotation(t *testing.T) {
	q := NewQoS(1, nil, 0)
	slow, fast := 100*time.Millisecond, 1*time.Millisecond

	// Fill the window entirely with slow observations.
	for i := 0; i < latWindow; i++ {
		q.Observe("a", slow, slow)
	}
	s := q.Snapshot()[0]
	if s.QueueP50 != slow || s.QueueP99 != slow {
		t.Fatalf("full slow window: p50=%v p99=%v, want %v", s.QueueP50, s.QueueP99, slow)
	}

	// Overwrite just over half the ring with fast observations: the
	// median flips to fast, but the p99 still sees the surviving slow
	// tail (1024-600=424 slow samples remain, rank 1014 > 600).
	const half = latWindow/2 + 88 // 600
	for i := 0; i < half; i++ {
		q.Observe("a", fast, fast)
	}
	s = q.Snapshot()[0]
	if s.QueueP50 != fast {
		t.Fatalf("half-rotated p50=%v, want %v (window not overwriting in place)", s.QueueP50, fast)
	}
	if s.QueueP99 != slow {
		t.Fatalf("half-rotated p99=%v, want %v (old tail aged out too early)", s.QueueP99, slow)
	}

	// Complete the rotation: every slow sample has been overwritten, so
	// the p99 collapses to fast — outliers do not haunt the window
	// forever.
	for i := half; i < latWindow; i++ {
		q.Observe("a", fast, fast)
	}
	s = q.Snapshot()[0]
	if s.QueueP99 != fast || s.TotalP99 != fast {
		t.Fatalf("fully rotated p99=%v/%v, want %v", s.QueueP99, s.TotalP99, fast)
	}
	if want := uint64(2 * latWindow); s.Served != want {
		t.Fatalf("served=%d, want %d (served must count beyond the window)", s.Served, want)
	}
}

// TestQoSObserveQuantiles: latency accounting reports nearest-rank p50/p99
// per tenant.
func TestQoSObserveQuantiles(t *testing.T) {
	q := NewQoS(1, map[string]int{"a": 2}, 0)
	for i := 1; i <= 100; i++ {
		q.Observe("a", time.Duration(i)*time.Millisecond, time.Duration(2*i)*time.Millisecond)
	}
	snap := q.Snapshot()
	if len(snap) != 1 || snap[0].Tenant != "a" {
		t.Fatalf("snapshot: %+v", snap)
	}
	s := snap[0]
	if s.Served != 100 {
		t.Fatalf("served=%d, want 100", s.Served)
	}
	if s.QueueP50 != 50*time.Millisecond || s.QueueP99 != 99*time.Millisecond {
		t.Fatalf("queue p50=%v p99=%v, want 50ms/99ms", s.QueueP50, s.QueueP99)
	}
	if s.TotalP50 != 100*time.Millisecond || s.TotalP99 != 198*time.Millisecond {
		t.Fatalf("total p50=%v p99=%v, want 100ms/198ms", s.TotalP50, s.TotalP99)
	}
}
