package serve

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrDraining is returned to queued requests when the server drains:
// in-flight queries complete, waiting ones fail fast.
var ErrDraining = errors.New("serve: server draining")

// ErrQueueFull is returned when a tenant's admission queue is at capacity.
var ErrQueueFull = errors.New("serve: tenant admission queue full")

// QoS is a weighted-fair admission controller: a fixed number of
// execution slots is handed out across tenants by stride scheduling. Every
// tenant carries a virtual-time pass; dispatching a tenant's request
// advances its pass by strideScale/weight, and the next free slot goes to
// the queued tenant with the smallest pass. A weight-4 tenant therefore
// receives 4× the dispatch share of a weight-1 tenant while both queue,
// and an idle tenant re-joins at the current virtual time instead of
// cashing in its idle period as a burst. Within one tenant, requests
// dispatch FIFO. It implements cluster.Admission.
type QoS struct {
	mu      sync.Mutex
	free    int
	maxQ    int
	tenants map[string]*tenantState
	vtime   uint64
	closed  bool
}

const strideScale = 1 << 20

// latWindow is how many recent requests per tenant feed the latency
// percentiles.
const latWindow = 1024

type tenantState struct {
	name   string
	weight int
	stride uint64
	pass   uint64
	queue  []*qosWaiter

	// Latency accounting (SLO stats): a ring of the most recent
	// queue-wait and total latencies.
	served     uint64
	queueWaits []time.Duration
	totals     []time.Duration
	ring       int
}

type qosWaiter struct {
	ready     chan error
	abandoned bool
}

// NewQoS creates a controller with the given concurrent-execution slots
// (minimum 1), per-tenant weights (tenants absent from the map get weight
// 1 on first use) and per-tenant queue bound (<=0 = DefaultMaxQueued).
func NewQoS(slots int, weights map[string]int, maxQueued int) *QoS {
	if slots < 1 {
		slots = 1
	}
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueued
	}
	q := &QoS{free: slots, maxQ: maxQueued, tenants: map[string]*tenantState{}}
	for name, w := range weights {
		q.tenant(name, w)
	}
	return q
}

// DefaultMaxQueued bounds each tenant's admission queue.
const DefaultMaxQueued = 256

func (q *QoS) tenant(name string, weight int) *tenantState {
	if t, ok := q.tenants[name]; ok {
		return t
	}
	if weight < 1 {
		weight = 1
	}
	t := &tenantState{
		name:       name,
		weight:     weight,
		stride:     strideScale / uint64(weight),
		pass:       q.vtime,
		queueWaits: make([]time.Duration, 0, latWindow),
		totals:     make([]time.Duration, 0, latWindow),
	}
	q.tenants[name] = t
	return t
}

// Acquire implements cluster.Admission: it blocks until the tenant is
// dispatched an execution slot, the cancel channel closes, or the
// controller drains. The release function must be called exactly once.
func (q *QoS) Acquire(tenant string, cancel <-chan struct{}) (func(), error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	t := q.tenant(tenant, 1)
	if q.free > 0 && !q.anyQueuedLocked() {
		// Uncontended: take a slot directly, charging the tenant's pass so
		// the share accounting stays truthful when contention starts.
		q.free--
		q.chargeLocked(t)
		q.mu.Unlock()
		return q.releaseFunc(), nil
	}
	if len(t.queue) >= q.maxQ {
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	// Joining the queue from idle resets the pass to the current virtual
	// time (no bursting on stale credit).
	if len(t.queue) == 0 && t.pass < q.vtime {
		t.pass = q.vtime
	}
	w := &qosWaiter{ready: make(chan error, 1)}
	t.queue = append(t.queue, w)
	q.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err
		}
		return q.releaseFunc(), nil
	case <-cancel:
		q.mu.Lock()
		w.abandoned = true
		q.mu.Unlock()
		// The dispatcher may have raced us: if a grant is already in the
		// buffered channel, pass the slot on instead of leaking it.
		select {
		case err := <-w.ready:
			if err == nil {
				q.mu.Lock()
				//lint:allow lockblock every waiter's ready chan is buffered(1) and receives exactly one grant, so the send in dispatchLocked cannot block
				q.dispatchLocked()
				q.mu.Unlock()
			}
		default:
		}
		return nil, errors.New("serve: request cancelled while queued")
	}
}

func (q *QoS) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			//lint:allow lockblock every waiter's ready chan is buffered(1) and receives exactly one grant, so the send in dispatchLocked cannot block
			q.dispatchLocked()
			q.mu.Unlock()
		})
	}
}

// dispatchLocked hands the freed slot to the queued tenant with the
// smallest pass (ties broken by name for determinism), or banks it.
func (q *QoS) dispatchLocked() {
	for {
		var best *tenantState
		for _, t := range q.tenants {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
				best = t
			}
		}
		if best == nil {
			q.free++
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		if w.abandoned {
			continue // slot stays in hand; pick the next waiter
		}
		q.chargeLocked(best)
		w.ready <- nil
		return
	}
}

func (q *QoS) chargeLocked(t *tenantState) {
	t.pass += t.stride
	q.vtime = t.pass
}

func (q *QoS) anyQueuedLocked() bool {
	for _, t := range q.tenants {
		if len(t.queue) > 0 {
			return true
		}
	}
	return false
}

// Close drains the controller: every queued waiter fails fast with
// ErrDraining and later Acquires are rejected. Slots already granted
// finish normally (their release is a no-op beyond bookkeeping).
func (q *QoS) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, t := range q.tenants {
		for _, w := range t.queue {
			if !w.abandoned {
				//lint:allow lockblock ready is buffered(1); dequeue happens under q.mu so each waiter gets at most one send
				w.ready <- ErrDraining
			}
		}
		t.queue = nil
	}
}

// Observe records one completed request's queue wait and total latency
// for the tenant's SLO stats.
func (q *QoS) Observe(tenant string, queueWait, total time.Duration) {
	mQueueWait.With(tenant).ObserveDuration(queueWait)
	mTotalLatency.With(tenant).ObserveDuration(total)
	mServed.With(tenant).Inc()
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenant, 1)
	t.served++
	if len(t.totals) < latWindow {
		t.queueWaits = append(t.queueWaits, queueWait)
		t.totals = append(t.totals, total)
	} else {
		t.queueWaits[t.ring] = queueWait
		t.totals[t.ring] = total
		t.ring = (t.ring + 1) % latWindow
	}
}

// TenantStats is one tenant's serving-path SLO snapshot.
type TenantStats struct {
	Tenant   string
	Weight   int
	Served   uint64
	Queued   int
	QueueP50 time.Duration
	QueueP99 time.Duration
	TotalP50 time.Duration
	TotalP99 time.Duration
}

// Snapshot returns per-tenant stats sorted by tenant name.
func (q *QoS) Snapshot() []TenantStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantStats, 0, len(q.tenants))
	for _, t := range q.tenants {
		//lint:allow wiredeterminism sorted below by tenant name, the unique map key, so the comparator is total
		out = append(out, TenantStats{
			Tenant:   t.name,
			Weight:   t.weight,
			Served:   t.served,
			Queued:   len(t.queue),
			QueueP50: quantile(t.queueWaits, 0.50),
			QueueP99: quantile(t.queueWaits, 0.99),
			TotalP50: quantile(t.totals, 0.50),
			TotalP99: quantile(t.totals, 0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// quantile is the nearest-rank percentile over an unsorted sample window.
func quantile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
