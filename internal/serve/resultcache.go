package serve

import (
	"container/list"
	"sync"
)

// ResultEntry is one cached query result in wire form: the Schema frame
// payload plus the Batch frame payloads exactly as they stream to a
// client. Caching the encoded frames (not the row values) makes a hit a
// pure memcpy onto the connection and guarantees cached responses are
// byte-identical to the fresh one they were captured from.
type ResultEntry struct {
	SchemaPayload []byte
	Batches       [][]byte
	Rows          uint64
	size          int64
}

// Size is the entry's byte footprint charged against the cache budget.
func (e *ResultEntry) Size() int64 {
	if e.size == 0 {
		s := int64(len(e.SchemaPayload))
		for _, b := range e.Batches {
			s += int64(len(b))
		}
		e.size = s + 64 // bookkeeping overhead
	}
	return e.size
}

// ResultSource says how a request's result was obtained.
type ResultSource int

const (
	// ResultExecuted: this request ran the query (cache miss).
	ResultExecuted ResultSource = iota
	// ResultShared: an identical concurrent request was already executing;
	// this one waited and shares its result (single-flight).
	ResultShared
	// ResultCached: served from the cache, no execution at all.
	ResultCached
)

// ResultCache is a byte-budgeted LRU of encoded query results with
// single-flight admission: N concurrent identical requests trigger exactly
// one execution — one caller fills, the others block on the in-flight
// entry and share its bytes. All queries in this system are read-only, so
// a cached result stays valid until the keyed cluster epoch changes
// (reload), budget pressure evicts it, or the server drops it.
type ResultCache struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*rcEntry
	lru     *list.List // completed entries only; front = most recent
	total   int64

	hits, misses, shared, evictions uint64
}

type rcEntry struct {
	key   string
	ready chan struct{} // closed once res/err is set
	res   *ResultEntry
	err   error
	lruEl *list.Element // nil while in flight or after eviction
}

// DefaultResultCacheBytes is the default budget (64 MiB).
const DefaultResultCacheBytes = 64 << 20

// NewResultCache creates a cache with the byte budget (<= 0 selects
// DefaultResultCacheBytes).
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultCacheBytes
	}
	return &ResultCache{
		maxBytes: maxBytes,
		entries:  map[string]*rcEntry{},
		lru:      list.New(),
	}
}

// Do returns the result for key, calling fill at most once across all
// concurrent callers with the same key. Errors are not cached: the failed
// flight is forgotten so the next request retries.
func (rc *ResultCache) Do(key string, fill func() (*ResultEntry, error)) (*ResultEntry, ResultSource, error) {
	rc.mu.Lock()
	if e, ok := rc.entries[key]; ok {
		inFlight := e.lruEl == nil
		if !inFlight {
			rc.lru.MoveToFront(e.lruEl)
			rc.hits++
			mResultHits.Inc()
		} else {
			rc.shared++
			mResultShared.Inc()
		}
		rc.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, ResultShared, e.err
		}
		if inFlight {
			return e.res, ResultShared, nil
		}
		return e.res, ResultCached, nil
	}
	e := &rcEntry{key: key, ready: make(chan struct{})}
	rc.entries[key] = e
	rc.misses++
	mResultMisses.Inc()
	rc.mu.Unlock()

	res, err := fill()
	e.res, e.err = res, err
	rc.mu.Lock()
	if err != nil {
		if cur, ok := rc.entries[key]; ok && cur == e {
			delete(rc.entries, key)
		}
	} else if cur, ok := rc.entries[key]; ok && cur == e {
		e.lruEl = rc.lru.PushFront(key)
		rc.total += res.Size()
		rc.evictLocked(e)
	}
	rc.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, ResultExecuted, err
	}
	return res, ResultExecuted, nil
}

// evictLocked drops least-recently-used completed entries until the cache
// fits the budget. keep (the entry just inserted) is exempt while other
// entries remain, but is itself dropped when it alone exceeds the budget —
// the response still streams to its waiters, it just isn't retained.
func (rc *ResultCache) evictLocked(keep *rcEntry) {
	for rc.total > rc.maxBytes {
		el := rc.lru.Back()
		if el == nil {
			return
		}
		key := el.Value.(string)
		e := rc.entries[key]
		if e == keep && rc.lru.Len() == 1 {
			rc.removeLocked(e)
			return
		}
		if e == keep {
			// Skip the fresh entry while older ones can go first.
			rc.lru.MoveToFront(el)
			continue
		}
		rc.removeLocked(e)
	}
}

func (rc *ResultCache) removeLocked(e *rcEntry) {
	rc.lru.Remove(e.lruEl)
	e.lruEl = nil
	delete(rc.entries, e.key)
	rc.total -= e.res.Size()
	rc.evictions++
	mResultEvictions.Inc()
}

// ResultCacheStats is a point-in-time counters snapshot.
type ResultCacheStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      uint64
	Misses    uint64
	Shared    uint64 // single-flight followers served without execution
	Evictions uint64
}

// Stats snapshots the cache counters.
func (rc *ResultCache) Stats() ResultCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultCacheStats{
		Entries:   rc.lru.Len(),
		Bytes:     rc.total,
		MaxBytes:  rc.maxBytes,
		Hits:      rc.hits,
		Misses:    rc.misses,
		Shared:    rc.shared,
		Evictions: rc.evictions,
	}
}
