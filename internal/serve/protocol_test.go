package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"hsqp/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xab}, 100_000)}
	for i, p := range payloads {
		if err := writeFrame(w, byte(i+1), p); err != nil {
			t.Fatalf("writeFrame %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	for i, p := range payloads {
		typ, got, err := readFrame(r)
		if err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %#x, want %#x", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestFrameRejectsOversizedAndTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, frameBatch, make([]byte, maxFrame)); err == nil {
		t.Fatal("oversized frame accepted on write")
	}

	// A length header beyond maxFrame must be rejected before allocation.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Fatal("oversized frame accepted on read")
	}

	// Truncated payload: header promises 10 bytes, stream has 3.
	binary.LittleEndian.PutUint32(hdr[:4], 10)
	short := append(hdr[:4], 1, 2, 3)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(short))); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Zero-length frame (no type byte).
	binary.LittleEndian.PutUint32(hdr[:4], 0)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:4]))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestStringAndIntRoundTrip(t *testing.T) {
	b := putString(nil, "tenant-α/β")
	b = putU32(b, 0xdeadbeef)
	b = putU64(b, 1<<63|7)
	b = putF64(b, 0.01)

	s, rest, err := getString(b)
	if err != nil || s != "tenant-α/β" {
		t.Fatalf("getString: %q, %v", s, err)
	}
	u32, rest, err := getU32(rest)
	if err != nil || u32 != 0xdeadbeef {
		t.Fatalf("getU32: %#x, %v", u32, err)
	}
	u64, rest, err := getU64(rest)
	if err != nil || u64 != 1<<63|7 {
		t.Fatalf("getU64: %#x, %v", u64, err)
	}
	f, rest, err := getF64(rest)
	if err != nil || f != 0.01 {
		t.Fatalf("getF64: %v, %v", f, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}

	// Corrupt string: claimed length beyond the buffer.
	if _, _, err := getString([]byte{0x7f, 'a'}); err == nil {
		t.Fatal("corrupt string accepted")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := storage.NewSchema(
		storage.Field{Name: "l_returnflag", Type: storage.TString},
		storage.Field{Name: "sum_qty", Type: storage.TDecimal},
		storage.Field{Name: "cnt", Type: storage.TInt64},
		storage.Field{Name: "maybe", Type: storage.TFloat64, Nullable: true},
	)
	got, rest, err := getSchema(putSchema(nil, s))
	if err != nil {
		t.Fatalf("getSchema: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got.Len() != s.Len() {
		t.Fatalf("%d fields, want %d", got.Len(), s.Len())
	}
	for i, f := range s.Fields {
		g := got.Fields[i]
		if g.Name != f.Name || g.Type != f.Type || g.Nullable != f.Nullable {
			t.Fatalf("field %d: %+v, want %+v", i, g, f)
		}
	}

	// Unknown column type must be rejected.
	bad := putSchema(nil, storage.NewSchema(storage.Field{Name: "x", Type: storage.TInt64}))
	bad[len(bad)-2] = 0xff
	if _, _, err := getSchema(bad); err == nil {
		t.Fatal("unknown column type accepted")
	}
}

func TestParseStatement(t *testing.T) {
	ok := map[string]int{"q1": 1, "Q12": 12, "5": 5, "q22": 22}
	for in, want := range ok {
		n, err := ParseStatement(in)
		if err != nil || n != want {
			t.Fatalf("ParseStatement(%q) = %d, %v; want %d", in, n, err, want)
		}
	}
	for _, in := range []string{"", "q0", "q23", "x7", "qq1", "q1x", "select 1"} {
		if _, err := ParseStatement(in); err == nil {
			t.Fatalf("ParseStatement(%q) accepted", in)
		} else if !strings.Contains(err.Error(), "statement") {
			t.Fatalf("ParseStatement(%q) error %q lacks context", in, err)
		}
	}
}
