package serve

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func entryOfSize(n int) *ResultEntry {
	return &ResultEntry{
		SchemaPayload: bytes.Repeat([]byte{0x01}, 16),
		Batches:       [][]byte{bytes.Repeat([]byte{0x02}, n-16)},
		Rows:          1,
	}
}

// TestResultCacheSingleFlight: N concurrent identical requests trigger
// exactly one execution; the rest share its bytes.
func TestResultCacheSingleFlight(t *testing.T) {
	rc := NewResultCache(1 << 20)
	const n = 16
	var fills atomic.Int32
	block := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*ResultEntry, n)
	sources := make([]ResultSource, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			res, src, err := rc.Do("q1|e1", func() (*ResultEntry, error) {
				fills.Add(1)
				<-block // hold the flight open so followers pile up
				return entryOfSize(1000), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i], sources[i] = res, src
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(block)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	var executed, followers int
	for i, src := range sources {
		switch src {
		case ResultExecuted:
			executed++
		case ResultShared, ResultCached:
			followers++
		}
		if !bytes.Equal(results[i].Batches[0], results[0].Batches[0]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
	if executed != 1 || followers != n-1 {
		t.Fatalf("executed=%d followers=%d, want 1/%d", executed, followers, n-1)
	}
	st := rc.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses=%d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits=%d shared=%d, want sum %d", st.Hits, st.Shared, n-1)
	}
}

// TestResultCacheHitIsByteIdentical: a cached response returns the very
// same encoded frames the fresh execution produced.
func TestResultCacheHitIsByteIdentical(t *testing.T) {
	rc := NewResultCache(1 << 20)
	fill := func() (*ResultEntry, error) {
		return &ResultEntry{
			SchemaPayload: []byte{1, 2, 3},
			Batches:       [][]byte{{4, 5}, {6, 7, 8}},
			Rows:          5,
		}, nil
	}
	fresh, src, err := rc.Do("k", fill)
	if err != nil || src != ResultExecuted {
		t.Fatalf("fresh: src=%v err=%v", src, err)
	}
	cached, src, err := rc.Do("k", func() (*ResultEntry, error) {
		t.Fatal("cache hit must not execute")
		return nil, nil
	})
	if err != nil || src != ResultCached {
		t.Fatalf("cached: src=%v err=%v", src, err)
	}
	if !bytes.Equal(cached.SchemaPayload, fresh.SchemaPayload) || len(cached.Batches) != len(fresh.Batches) {
		t.Fatal("cached entry differs from fresh")
	}
	for i := range fresh.Batches {
		if !bytes.Equal(cached.Batches[i], fresh.Batches[i]) {
			t.Fatalf("batch %d differs", i)
		}
	}
	if cached.Rows != fresh.Rows {
		t.Fatalf("rows %d != %d", cached.Rows, fresh.Rows)
	}
}

// TestResultCacheEviction: the byte budget evicts least-recently-used
// entries, and an entry larger than the whole budget is served but not
// retained.
func TestResultCacheEviction(t *testing.T) {
	rc := NewResultCache(1500) // fits one 600-byte entry (+64 overhead), not three
	mustFill := func(key string, size int) {
		t.Helper()
		if _, _, err := rc.Do(key, func() (*ResultEntry, error) { return entryOfSize(size), nil }); err != nil {
			t.Fatalf("fill %s: %v", key, err)
		}
	}
	mustFill("a", 600)
	mustFill("b", 600)
	mustFill("c", 600) // budget now exceeded: "a" (LRU) must go
	st := rc.Stats()
	if st.Evictions == 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("evictions=%d bytes=%d/%d: budget not enforced", st.Evictions, st.Bytes, st.MaxBytes)
	}
	refilled := false
	rc.Do("a", func() (*ResultEntry, error) { refilled = true; return entryOfSize(600), nil })
	if !refilled {
		t.Fatal("evicted entry still served from cache")
	}

	// Touching "c" promotes it, so the next insert evicts "a" again, not "c".
	rc.Do("c", func() (*ResultEntry, error) { t.Fatal("c evicted prematurely"); return nil, nil })
	mustFill("d", 600)
	rc.Do("c", func() (*ResultEntry, error) { t.Fatal("LRU order ignored: recently-used c evicted"); return nil, nil })

	// A single entry above the whole budget streams to its waiter but is
	// not retained.
	huge := NewResultCache(100)
	if _, src, err := huge.Do("big", func() (*ResultEntry, error) { return entryOfSize(5000), nil }); err != nil || src != ResultExecuted {
		t.Fatalf("oversized fill: src=%v err=%v", src, err)
	}
	if st := huge.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
}

// TestResultCacheExactCounts pins the counter semantics exactly: every
// completed-entry reuse is a hit, every flight start is a miss, every
// in-flight piggyback is shared, and every budget-pressure drop is an
// eviction. These counters feed `hsqp client -stats` and /metrics, so
// their meaning must not drift.
func TestResultCacheExactCounts(t *testing.T) {
	rc := NewResultCache(1500) // two 600-byte entries (+64 overhead each) fit, three do not
	mustFill := func(key string) {
		t.Helper()
		if _, _, err := rc.Do(key, func() (*ResultEntry, error) { return entryOfSize(600), nil }); err != nil {
			t.Fatalf("fill %s: %v", key, err)
		}
	}
	mustHit := func(key string) {
		t.Helper()
		if _, src, err := rc.Do(key, func() (*ResultEntry, error) {
			t.Errorf("hit on %s executed", key)
			return nil, nil
		}); err != nil || src != ResultCached {
			t.Fatalf("hit %s: src=%v err=%v", key, src, err)
		}
	}

	mustFill("a") // miss 1
	mustHit("a")  // hit 1
	mustHit("a")  // hit 2
	mustFill("b") // miss 2
	mustFill("c") // miss 3; exceeds budget, evicts LRU "a"

	st := rc.Stats()
	want := ResultCacheStats{Entries: 2, Bytes: st.Bytes, MaxBytes: 1500,
		Hits: 2, Misses: 3, Shared: 0, Evictions: 1}
	if st != want {
		t.Fatalf("stats after miss/hit/hit/miss/miss+evict:\n got %+v\nwant %+v", st, want)
	}

	// One blocked flight plus one follower: exactly one extra miss and one
	// shared, zero extra hits.
	block := make(chan struct{})
	flightDone := make(chan error, 2)
	go func() {
		_, _, err := rc.Do("d", func() (*ResultEntry, error) {
			<-block
			return entryOfSize(100), nil
		})
		flightDone <- err
	}()
	waitStats(t, rc, func(s ResultCacheStats) bool { return s.Misses == 4 })
	go func() {
		_, src, err := rc.Do("d", func() (*ResultEntry, error) {
			t.Error("follower executed")
			return nil, nil
		})
		if err == nil && src != ResultShared {
			t.Errorf("follower src=%v, want ResultShared", src)
		}
		flightDone <- err
	}()
	waitStats(t, rc, func(s ResultCacheStats) bool { return s.Shared == 1 })
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-flightDone; err != nil {
			t.Fatalf("flight: %v", err)
		}
	}
	st = rc.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Shared != 1 || st.Evictions != 1 {
		t.Fatalf("after single-flight pair: hits=%d misses=%d shared=%d evictions=%d, want 2/4/1/1",
			st.Hits, st.Misses, st.Shared, st.Evictions)
	}
}

func waitStats(t *testing.T, rc *ResultCache, ok func(ResultCacheStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok(rc.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for cache state: %+v", rc.Stats())
		}
		runtime.Gosched()
	}
}

// TestResultCacheErrorsNotCached: a failed flight is forgotten so the next
// identical request retries.
func TestResultCacheErrorsNotCached(t *testing.T) {
	rc := NewResultCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := rc.Do("k", func() (*ResultEntry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	retried := false
	if _, _, err := rc.Do("k", func() (*ResultEntry, error) { retried = true; return entryOfSize(100), nil }); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if !retried {
		t.Fatal("error was cached; retry did not execute")
	}
}
