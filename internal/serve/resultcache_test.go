package serve

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func entryOfSize(n int) *ResultEntry {
	return &ResultEntry{
		SchemaPayload: bytes.Repeat([]byte{0x01}, 16),
		Batches:       [][]byte{bytes.Repeat([]byte{0x02}, n-16)},
		Rows:          1,
	}
}

// TestResultCacheSingleFlight: N concurrent identical requests trigger
// exactly one execution; the rest share its bytes.
func TestResultCacheSingleFlight(t *testing.T) {
	rc := NewResultCache(1 << 20)
	const n = 16
	var fills atomic.Int32
	block := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*ResultEntry, n)
	sources := make([]ResultSource, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			res, src, err := rc.Do("q1|e1", func() (*ResultEntry, error) {
				fills.Add(1)
				<-block // hold the flight open so followers pile up
				return entryOfSize(1000), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i], sources[i] = res, src
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(block)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	var executed, followers int
	for i, src := range sources {
		switch src {
		case ResultExecuted:
			executed++
		case ResultShared, ResultCached:
			followers++
		}
		if !bytes.Equal(results[i].Batches[0], results[0].Batches[0]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
	if executed != 1 || followers != n-1 {
		t.Fatalf("executed=%d followers=%d, want 1/%d", executed, followers, n-1)
	}
	st := rc.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses=%d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != n-1 {
		t.Fatalf("hits=%d shared=%d, want sum %d", st.Hits, st.Shared, n-1)
	}
}

// TestResultCacheHitIsByteIdentical: a cached response returns the very
// same encoded frames the fresh execution produced.
func TestResultCacheHitIsByteIdentical(t *testing.T) {
	rc := NewResultCache(1 << 20)
	fill := func() (*ResultEntry, error) {
		return &ResultEntry{
			SchemaPayload: []byte{1, 2, 3},
			Batches:       [][]byte{{4, 5}, {6, 7, 8}},
			Rows:          5,
		}, nil
	}
	fresh, src, err := rc.Do("k", fill)
	if err != nil || src != ResultExecuted {
		t.Fatalf("fresh: src=%v err=%v", src, err)
	}
	cached, src, err := rc.Do("k", func() (*ResultEntry, error) {
		t.Fatal("cache hit must not execute")
		return nil, nil
	})
	if err != nil || src != ResultCached {
		t.Fatalf("cached: src=%v err=%v", src, err)
	}
	if !bytes.Equal(cached.SchemaPayload, fresh.SchemaPayload) || len(cached.Batches) != len(fresh.Batches) {
		t.Fatal("cached entry differs from fresh")
	}
	for i := range fresh.Batches {
		if !bytes.Equal(cached.Batches[i], fresh.Batches[i]) {
			t.Fatalf("batch %d differs", i)
		}
	}
	if cached.Rows != fresh.Rows {
		t.Fatalf("rows %d != %d", cached.Rows, fresh.Rows)
	}
}

// TestResultCacheEviction: the byte budget evicts least-recently-used
// entries, and an entry larger than the whole budget is served but not
// retained.
func TestResultCacheEviction(t *testing.T) {
	rc := NewResultCache(1500) // fits one 600-byte entry (+64 overhead), not three
	mustFill := func(key string, size int) {
		t.Helper()
		if _, _, err := rc.Do(key, func() (*ResultEntry, error) { return entryOfSize(size), nil }); err != nil {
			t.Fatalf("fill %s: %v", key, err)
		}
	}
	mustFill("a", 600)
	mustFill("b", 600)
	mustFill("c", 600) // budget now exceeded: "a" (LRU) must go
	st := rc.Stats()
	if st.Evictions == 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("evictions=%d bytes=%d/%d: budget not enforced", st.Evictions, st.Bytes, st.MaxBytes)
	}
	refilled := false
	rc.Do("a", func() (*ResultEntry, error) { refilled = true; return entryOfSize(600), nil })
	if !refilled {
		t.Fatal("evicted entry still served from cache")
	}

	// Touching "c" promotes it, so the next insert evicts "a" again, not "c".
	rc.Do("c", func() (*ResultEntry, error) { t.Fatal("c evicted prematurely"); return nil, nil })
	mustFill("d", 600)
	rc.Do("c", func() (*ResultEntry, error) { t.Fatal("LRU order ignored: recently-used c evicted"); return nil, nil })

	// A single entry above the whole budget streams to its waiter but is
	// not retained.
	huge := NewResultCache(100)
	if _, src, err := huge.Do("big", func() (*ResultEntry, error) { return entryOfSize(5000), nil }); err != nil || src != ResultExecuted {
		t.Fatalf("oversized fill: src=%v err=%v", src, err)
	}
	if st := huge.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry retained: %+v", st)
	}
}

// TestResultCacheErrorsNotCached: a failed flight is forgotten so the next
// identical request retries.
func TestResultCacheErrorsNotCached(t *testing.T) {
	rc := NewResultCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := rc.Do("k", func() (*ResultEntry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	retried := false
	if _, _, err := rc.Do("k", func() (*ResultEntry, error) { retried = true; return entryOfSize(100), nil }); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if !retried {
		t.Fatal("error was cached; retry did not execute")
	}
}
