package serve

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hsqp/internal/cluster"
	"hsqp/internal/queries"
)

// ParseStatement resolves a statement text to a TPC-H query number.
// Accepted forms: "q12", "Q12", "12".
func ParseStatement(stmt string) (int, error) {
	s := strings.TrimSpace(strings.ToLower(stmt))
	s = strings.TrimPrefix(s, "q")
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 || n > 22 {
		return 0, fmt.Errorf("serve: unknown statement %q (want q1..q22)", stmt)
	}
	return n, nil
}

// PlanCache caches prepared statements cluster-wide: the first request for
// a statement pays plan construction plus the full per-server validation
// compile (cluster.Prepare); every later request — from any tenant, on any
// connection — reuses the handle. Entries are keyed on
// (statement, cluster epoch), so a table reload naturally invalidates, and
// evicted LRU beyond MaxEntries. Concurrent first requests for the same
// statement are deduplicated: exactly one caller prepares, the rest wait.
type PlanCache struct {
	c   *cluster.Cluster
	sf  float64
	max int

	mu      sync.Mutex
	entries map[string]*planEntry
	lru     *list.List // front = most recent; values are keys

	hits, misses uint64
}

type planEntry struct {
	key      string
	ready    chan struct{} // closed when prepared (or failed)
	prepared *cluster.Prepared
	err      error
	lruEl    *list.Element
}

// NewPlanCache creates a plan cache over the cluster. maxEntries <= 0
// means DefaultPlanCacheEntries.
func NewPlanCache(c *cluster.Cluster, sf float64, maxEntries int) *PlanCache {
	if maxEntries <= 0 {
		maxEntries = DefaultPlanCacheEntries
	}
	return &PlanCache{
		c:       c,
		sf:      sf,
		max:     maxEntries,
		entries: map[string]*planEntry{},
		lru:     list.New(),
	}
}

// DefaultPlanCacheEntries holds every TPC-H template with room to spare.
const DefaultPlanCacheEntries = 64

// Get returns the prepared statement for the text, preparing it on first
// use. hit reports whether the plan came from the cache (no compile).
//
// The cache maintains that an entry's key epoch always equals its
// handle's Prepared.Epoch(). The key is computed before the prepare runs,
// so a table load (or membership change) racing with the single-flight
// prepare can advance the epoch in between; such an entry would be keyed
// on the old epoch but hold a plan compiled against the new placements —
// never stale, but unreachable by future lookups. Get detects the
// mismatch after preparing and re-keys the entry under the epoch the plan
// was actually prepared against.
func (pc *PlanCache) Get(stmt string) (p *cluster.Prepared, hit bool, err error) {
	epoch := pc.c.Epoch()
	key := fmt.Sprintf("%s|e%d", stmt, epoch)

	pc.mu.Lock()
	if e, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(e.lruEl)
		pc.hits++
		mPlanHits.Inc()
		pc.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		// A waiter that piggybacked on an in-flight prepare still avoided
		// the compile, which is what "hit" means to the caller.
		return e.prepared, true, nil
	}
	e := &planEntry{key: key, ready: make(chan struct{})}
	e.lruEl = pc.lru.PushFront(key)
	pc.entries[key] = e
	pc.misses++
	mPlanMisses.Inc()
	for pc.lru.Len() > pc.max {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(string))
	}
	pc.mu.Unlock()

	// Prepare outside the lock: building and validating the plan compiles
	// it on every server.
	p, err = pc.prepare(stmt)
	e.prepared, e.err = p, err
	close(e.ready)
	if err != nil {
		// Do not cache failures.
		pc.mu.Lock()
		if cur, ok := pc.entries[key]; ok && cur == e {
			pc.lru.Remove(e.lruEl)
			delete(pc.entries, key)
		}
		pc.mu.Unlock()
		return nil, false, err
	}
	if p.Epoch() != epoch {
		// A table load (or membership change) raced with the prepare: the
		// plan was compiled against a newer epoch than the key says. Re-key
		// the entry so the key-epoch == handle-epoch invariant holds and
		// future lookups at the new epoch hit it.
		newKey := fmt.Sprintf("%s|e%d", stmt, p.Epoch())
		pc.mu.Lock()
		if cur, ok := pc.entries[key]; ok && cur == e {
			pc.lru.Remove(e.lruEl)
			delete(pc.entries, key)
		}
		if _, ok := pc.entries[newKey]; !ok {
			ne := &planEntry{key: newKey, ready: e.ready, prepared: p}
			ne.lruEl = pc.lru.PushFront(newKey)
			pc.entries[newKey] = ne
			for pc.lru.Len() > pc.max {
				oldest := pc.lru.Back()
				pc.lru.Remove(oldest)
				delete(pc.entries, oldest.Value.(string))
			}
		}
		pc.mu.Unlock()
	}
	return p, false, nil
}

func (pc *PlanCache) prepare(stmt string) (*cluster.Prepared, error) {
	n, err := ParseStatement(stmt)
	if err != nil {
		return nil, err
	}
	q, err := queries.Build(n, queries.Params{SF: pc.sf})
	if err != nil {
		return nil, err
	}
	return pc.c.Prepare(q)
}

// PlanCacheStats is a point-in-time counters snapshot.
type PlanCacheStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
}

// Stats snapshots the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{Entries: len(pc.entries), Hits: pc.hits, Misses: pc.misses}
}
