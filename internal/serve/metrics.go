package serve

import (
	"io"

	"hsqp/internal/obs"
)

// Serving-tier metrics on the process-wide registry. Event-driven
// counters and histograms update inline; point-in-time gauges (queue
// depth, latency percentiles, cache occupancy) are set by a collect hook
// the Server registers under the "serve" key, so they are computed once
// per scrape instead of per request.
var (
	mConns = obs.Default().Gauge("hsqp_serve_connections_active",
		"Client connections currently open.")
	mBytesIn = obs.Default().Counter("hsqp_serve_bytes_in_total",
		"Bytes read from client connections.")
	mBytesOut = obs.Default().Counter("hsqp_serve_bytes_out_total",
		"Bytes written to client connections.")
	mRequests = obs.Default().CounterVec("hsqp_serve_requests_total",
		"Exec requests handled, by tenant.", "tenant")
	mSlowQueries = obs.Default().Counter("hsqp_serve_slow_queries_total",
		"Requests that crossed the slow-query threshold.")

	mQueueWait = obs.Default().HistogramVec("hsqp_serve_queue_wait_seconds",
		"Admission-queue wait per request, by tenant.", nil, "tenant")
	mTotalLatency = obs.Default().HistogramVec("hsqp_serve_request_seconds",
		"End-to-end request latency, by tenant.", nil, "tenant")
	mServed = obs.Default().CounterVec("hsqp_serve_qos_served_total",
		"Requests completed through QoS accounting, by tenant.", "tenant")

	mQueueDepth = obs.Default().GaugeVec("hsqp_serve_qos_queue_depth",
		"Requests waiting in the tenant's admission queue.", "tenant")
	mTenantWeight = obs.Default().GaugeVec("hsqp_serve_qos_weight",
		"Configured stride-scheduling weight, by tenant.", "tenant")
	mQueueP50 = obs.Default().GaugeVec("hsqp_serve_qos_queue_p50_seconds",
		"p50 admission-queue wait over the tenant's recent-latency window.", "tenant")
	mQueueP99 = obs.Default().GaugeVec("hsqp_serve_qos_queue_p99_seconds",
		"p99 admission-queue wait over the tenant's recent-latency window.", "tenant")
	mTotalP50 = obs.Default().GaugeVec("hsqp_serve_qos_total_p50_seconds",
		"p50 total request latency over the tenant's recent-latency window.", "tenant")
	mTotalP99 = obs.Default().GaugeVec("hsqp_serve_qos_total_p99_seconds",
		"p99 total request latency over the tenant's recent-latency window.", "tenant")

	mPlanHits = obs.Default().Counter("hsqp_serve_plancache_hits_total",
		"Plan-cache hits (compile avoided).")
	mPlanMisses = obs.Default().Counter("hsqp_serve_plancache_misses_total",
		"Plan-cache misses (statement compiled on every server).")
	mPlanEntries = obs.Default().Gauge("hsqp_serve_plancache_entries",
		"Prepared statements currently cached.")

	mResultHits = obs.Default().Counter("hsqp_serve_resultcache_hits_total",
		"Result-cache hits (encoded bytes replayed, no execution).")
	mResultMisses = obs.Default().Counter("hsqp_serve_resultcache_misses_total",
		"Result-cache misses (request executed and filled the cache).")
	mResultShared = obs.Default().Counter("hsqp_serve_resultcache_shared_total",
		"Single-flight followers that shared an in-flight execution.")
	mResultEvictions = obs.Default().Counter("hsqp_serve_resultcache_evictions_total",
		"Entries evicted by the result cache's byte budget.")
	mResultEntries = obs.Default().Gauge("hsqp_serve_resultcache_entries",
		"Completed results currently cached.")
	mResultBytes = obs.Default().Gauge("hsqp_serve_resultcache_bytes",
		"Bytes held by the result cache.")
)

// registerCollect binds the snapshot gauges to this server instance. The
// keyed hook replaces any previous server's binding, so reconstructing a
// server (tests, restarts) never accumulates stale closures.
func (s *Server) registerCollect() {
	obs.Default().OnCollect("serve", func() {
		for _, ts := range s.qos.Snapshot() {
			mQueueDepth.With(ts.Tenant).Set(float64(ts.Queued))
			mTenantWeight.With(ts.Tenant).Set(float64(ts.Weight))
			mQueueP50.With(ts.Tenant).Set(ts.QueueP50.Seconds())
			mQueueP99.With(ts.Tenant).Set(ts.QueueP99.Seconds())
			mTotalP50.With(ts.Tenant).Set(ts.TotalP50.Seconds())
			mTotalP99.With(ts.Tenant).Set(ts.TotalP99.Seconds())
		}
		mPlanEntries.Set(float64(s.plans.Stats().Entries))
		rc := s.ResultCacheStats()
		mResultEntries.Set(float64(rc.Entries))
		mResultBytes.Set(float64(rc.Bytes))
	})
}

// countingReader / countingWriter wrap a connection's two directions with
// byte counters (placed under the bufio layers, so they count wire bytes,
// not buffered writes).
type countingReader struct{ r io.Reader }

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		mBytesIn.Add(uint64(n))
	}
	return n, err
}

type countingWriter struct{ w io.Writer }

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		mBytesOut.Add(uint64(n))
	}
	return n, err
}
