// Integration tests for the serving tier: a real Server on a loopback
// listener over a real cluster, driven through the wire protocol by Client.
// They pin the acceptance contract: served results — fresh, plan-cache hit,
// result-cache hit, prepared, single-flight shared — are byte-identical to
// a direct cluster.Run of the same query.
package serve_test

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hsqp/internal/bench"
	"hsqp/internal/cluster"
	"hsqp/internal/queries"
	"hsqp/internal/serve"
	"hsqp/internal/tpch"
)

const (
	testSF   = 0.01
	testSeed = 42
)

var (
	dbOnce sync.Once
	testDB *tpch.Database
)

func getDB() *tpch.Database {
	dbOnce.Do(func() { testDB = tpch.Generate(testSF, testSeed) })
	return testDB
}

func newServedCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Servers:          3,
		WorkersPerServer: 4,
		Transport:        cluster.RDMA,
		Scheduling:       true,
		TimeScale:        0.005,
		MorselSize:       4096,
		MessageSize:      64 * 1024,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	c.LoadTPCH(getDB(), false)
	return c
}

// startServer runs a serving tier over a fresh cluster on a loopback
// listener and returns its address plus the underlying pieces.
func startServer(t testing.TB, mod func(*serve.Config)) (addr string, srv *serve.Server, c *cluster.Cluster) {
	t.Helper()
	c = newServedCluster(t)
	cfg := serve.Config{Cluster: c, SF: testSF, Seed: testSeed}
	if mod != nil {
		mod(&cfg)
	}
	srv = serve.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Shutdown)
	return lis.Addr().String(), srv, c
}

// TestServedResultsMatchDirect is the conformance acceptance test: for
// Q1/Q5/Q12, the result served over the wire — fresh, from the result
// cache, cache-bypassed, and via a prepared statement — is byte-identical
// (canonical row encoding) to a direct cluster.Run.
func TestServedResultsMatchDirect(t *testing.T) {
	addr, _, c := startServer(t, nil)
	cl, err := serve.Dial(addr, "conformance")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	for _, qn := range []int{1, 5, 12} {
		stmt := map[int]string{1: "q1", 5: "q5", 12: "q12"}[qn]
		direct, _, err := c.Run(queries.MustBuild(qn, queries.Params{SF: testSF}))
		if err != nil {
			t.Fatalf("direct %s: %v", stmt, err)
		}
		want := bench.CanonicalRows(direct)

		fresh, stats, err := cl.Exec(stmt)
		if err != nil {
			t.Fatalf("served %s: %v", stmt, err)
		}
		if stats.ResultHit {
			t.Fatalf("%s: first execution reported a result-cache hit", stmt)
		}
		if got := bench.CanonicalRows(fresh); !bytes.Equal(got, want) {
			t.Fatalf("%s: served result differs from direct run (%d vs %d rows)", stmt, fresh.Rows(), direct.Rows())
		}

		cached, stats, err := cl.Exec(stmt)
		if err != nil {
			t.Fatalf("cached %s: %v", stmt, err)
		}
		if !stats.ResultHit {
			t.Fatalf("%s: repeat execution missed the result cache", stmt)
		}
		if got := bench.CanonicalRows(cached); !bytes.Equal(got, want) {
			t.Fatalf("%s: cached result differs from direct run", stmt)
		}

		bypassed, stats, err := cl.ExecWithOpts(stmt, serve.ExecOpts{BypassResultCache: true})
		if err != nil {
			t.Fatalf("bypass %s: %v", stmt, err)
		}
		if stats.ResultHit {
			t.Fatalf("%s: bypassed execution reported a result-cache hit", stmt)
		}
		if got := bench.CanonicalRows(bypassed); !bytes.Equal(got, want) {
			t.Fatalf("%s: bypassed result differs from direct run", stmt)
		}

		st, err := cl.Prepare(stmt)
		if err != nil {
			t.Fatalf("prepare %s: %v", stmt, err)
		}
		if st.Schema().Len() != direct.Schema.Len() {
			t.Fatalf("%s: prepared schema has %d fields, want %d", stmt, st.Schema().Len(), direct.Schema.Len())
		}
		prepped, _, err := st.Exec()
		if err != nil {
			t.Fatalf("prepared exec %s: %v", stmt, err)
		}
		if got := bench.CanonicalRows(prepped); !bytes.Equal(got, want) {
			t.Fatalf("%s: prepared result differs from direct run", stmt)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close stmt %s: %v", stmt, err)
		}
	}
}

// TestServingPlanCacheHit: the second execution of a statement (result
// cache bypassed) reuses the compiled plan — PlanHit reported on the wire,
// one miss and the rest hits in the server counters.
func TestServingPlanCacheHit(t *testing.T) {
	addr, srv, _ := startServer(t, nil)
	cl, err := serve.Dial(addr, "t")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	_, stats, err := cl.ExecWithOpts("q1", serve.ExecOpts{BypassResultCache: true})
	if err != nil {
		t.Fatalf("cold exec: %v", err)
	}
	if stats.PlanHit {
		t.Fatal("cold execution reported a plan-cache hit")
	}
	for i := 0; i < 3; i++ {
		_, stats, err = cl.ExecWithOpts("q1", serve.ExecOpts{BypassResultCache: true})
		if err != nil {
			t.Fatalf("warm exec %d: %v", i, err)
		}
		if !stats.PlanHit {
			t.Fatalf("warm execution %d missed the plan cache", i)
		}
		if stats.ResultHit {
			t.Fatalf("bypassed execution %d reported a result hit", i)
		}
	}
	pcs := srv.PlanCacheStats()
	if pcs.Misses != 1 || pcs.Hits < 3 {
		t.Fatalf("plan cache stats %+v, want 1 miss and >=3 hits", pcs)
	}
}

// TestServingSingleFlight: N concurrent identical requests over separate
// connections execute exactly once; every response is byte-identical.
func TestServingSingleFlight(t *testing.T) {
	addr, srv, _ := startServer(t, nil)
	const n = 8
	var wg sync.WaitGroup
	canon := make([][]byte, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := serve.Dial(addr, "t")
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			res, stats, err := cl.Exec("q5")
			if err != nil {
				errs[i] = err
				return
			}
			canon[i] = bench.CanonicalRows(res)
			hits[i] = stats.ResultHit
		}(i)
	}
	wg.Wait()
	executed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !hits[i] {
			executed++
		}
		if !bytes.Equal(canon[i], canon[0]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
	if executed != 1 {
		t.Fatalf("%d of %d concurrent identical requests executed, want exactly 1", executed, n)
	}
	if st := srv.ResultCacheStats(); st.Misses != 1 {
		t.Fatalf("result cache misses=%d, want 1", st.Misses)
	}
}

// TestServingErrorKeepsConnection: a bad statement returns an Error frame
// and the connection stays usable.
func TestServingErrorKeepsConnection(t *testing.T) {
	addr, _, _ := startServer(t, nil)
	cl, err := serve.Dial(addr, "t")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if _, _, err := cl.Exec("q99"); err == nil || !strings.Contains(err.Error(), "statement") {
		t.Fatalf("bad statement returned %v, want statement error", err)
	}
	if _, err := cl.Prepare("nope"); err == nil {
		t.Fatal("bad prepare succeeded")
	}
	if _, _, err := cl.Exec("q1"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

// TestServingHandshake: the server advertises SF, seed and the tenant's
// configured weight; a version-mismatched client is rejected.
func TestServingHandshake(t *testing.T) {
	addr, _, _ := startServer(t, func(cfg *serve.Config) {
		cfg.Tenants = map[string]int{"heavy": 4}
	})
	cl, err := serve.Dial(addr, "heavy")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if cl.Info.SF != testSF || cl.Info.Seed != testSeed || cl.Info.Weight != 4 {
		t.Fatalf("HelloOK advertised %+v, want sf=%v seed=%d weight=4", cl.Info, testSF, testSeed)
	}
	cl2, err := serve.Dial(addr, "unknown-tenant")
	if err != nil {
		t.Fatalf("dial unknown tenant: %v", err)
	}
	defer cl2.Close()
	if cl2.Info.Weight != 1 {
		t.Fatalf("unknown tenant weight %d, want 1", cl2.Info.Weight)
	}
}

// TestServerShutdownDrain: a client-initiated Shutdown completes in-flight
// work, closes Done, and later connections are refused.
func TestServerShutdownDrain(t *testing.T) {
	addr, srv, _ := startServer(t, nil)
	cl, err := serve.Dial(addr, "t")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if _, _, err := cl.Exec("q12"); err != nil {
		t.Fatalf("exec: %v", err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("server did not finish draining")
	}
	if _, err := serve.Dial(addr, "t"); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
