package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDelivery(t *testing.T) {
	fab, err := New(Config{Ports: 3, Rate: IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	var got [3]atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(6)
	for p := 0; p < 3; p++ {
		p := p
		fab.RegisterSink(p, func(m *Message) {
			got[p].Add(1)
			wg.Done()
		})
	}
	fab.Start()
	defer fab.Stop()
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src != dst {
				fab.Send(&Message{Src: src, Dst: dst, Size: 100})
			}
		}
	}
	wg.Wait()
	for p := 0; p < 3; p++ {
		if got[p].Load() != 2 {
			t.Fatalf("port %d got %d messages, want 2", p, got[p].Load())
		}
	}
	if fab.MessagesDelivered() != 6 {
		t.Fatalf("delivered %d", fab.MessagesDelivered())
	}
}

func TestLoopbackSkipsSwitch(t *testing.T) {
	fab, _ := New(Config{Ports: 1, Rate: GbE, TimeScale: 1})
	done := make(chan struct{})
	fab.RegisterSink(0, func(m *Message) { close(done) })
	fab.Start()
	defer fab.Stop()
	start := time.Now()
	fab.Send(&Message{Src: 0, Dst: 0, Size: 10 << 20}) // 10MB at GbE would take 80ms+
	<-done
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("loopback paid switch pacing")
	}
}

func TestBadAddressPanics(t *testing.T) {
	fab, _ := New(Config{Ports: 2, Rate: GbE})
	fab.RegisterSink(0, func(*Message) {})
	fab.RegisterSink(1, func(*Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("bad destination did not panic")
		}
	}()
	fab.Send(&Message{Src: 0, Dst: 5, Size: 1})
}

func TestPacingEnforcesRate(t *testing.T) {
	// 20 × 1 MB at a simulated 1 GB/s with scale 1 must take ≈20 ms wall,
	// give or take burst catch-up and scheduling.
	fab, _ := New(Config{Ports: 2, Rate: 1e9, TimeScale: 1})
	const n = 40
	var wg sync.WaitGroup
	wg.Add(n)
	fab.RegisterSink(0, func(*Message) {})
	fab.RegisterSink(1, func(*Message) { wg.Done() })
	fab.Start()
	defer fab.Stop()
	start := time.Now()
	go func() {
		for i := 0; i < n; i++ {
			fab.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20})
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	wantMin := 25 * time.Millisecond // 40 MB over 1 GB/s ≈ 42 ms, minus burst credit
	if elapsed < wantMin {
		t.Fatalf("pacing too fast: %v for 40MB at 1GB/s", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("pacing too slow: %v", elapsed)
	}
}

func TestRatePresetsOrdered(t *testing.T) {
	rates := []Rate{GbE, IB4xSDR, IB4xDDR, IB4xQDR, IB4xFDR, IB4xEDR}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("rates not increasing at %d", i)
		}
		if LatencyOf(rates[i]) >= LatencyOf(rates[i-1]) {
			t.Fatalf("latencies not decreasing at %d", i)
		}
	}
	if NameOf(GbE) != "GbE" || NameOf(IB4xQDR) != "IB 4xQDR" {
		t.Fatal("names broken")
	}
	// Table 1 ratio: QDR is 32× GbE.
	if IB4xQDR/GbE != 32 {
		t.Fatalf("QDR/GbE = %v, want 32", IB4xQDR/GbE)
	}
}

func TestConfigDefaults(t *testing.T) {
	fab, err := New(Config{Ports: 2, Rate: IB4xQDR})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fab.Config()
	if cfg.TimeScale != 1 || cfg.Credits != 4 || cfg.EgressQueue != 64 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Latency != LatencyOf(IB4xQDR) {
		t.Fatalf("latency default: %v", cfg.Latency)
	}
	if _, err := New(Config{Ports: 0, Rate: 1}); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := New(Config{Ports: 1, Rate: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
}
