// Package fabric simulates the "network in the large": the cluster
// interconnect (Figure 1, Table 1 of the paper).
//
// The fabric connects N endpoints through a single switch, like the
// paper's 8-port InfiniScale IV. The model is an input-queued switch:
//
//   - every endpoint has an egress link (host → switch) and an ingress
//     link (switch → host), each paced at the configured data rate;
//   - each ingress port grants a fixed number of credits (buffer slots);
//     a sender that targets a port whose credits are exhausted blocks,
//     and because its egress queue is FIFO, the messages *behind* the
//     blocked head also stall — head-of-line blocking / credit
//     starvation, exactly the switch-contention mechanism of §3.2.3;
//   - pacing happens in wall-clock time scaled by TimeScale, so the
//     bandwidth *ratios* between data rates (Table 1) are preserved while
//     experiments stay fast.
//
// Uncoordinated all-to-all traffic collides on ingress ports and loses
// throughput; the round-robin schedule of package sched avoids collisions
// by construction. This reproduces Figure 10(b) without hard-coding its
// outcome.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Rate is a link data rate in (simulated) bytes per second.
type Rate float64

// Data rates from Table 1 of the paper.
const (
	GbE     Rate = 0.125e9
	IB4xSDR Rate = 1e9
	IB4xDDR Rate = 2e9
	IB4xQDR Rate = 4e9
	IB4xFDR Rate = 6.8e9
	IB4xEDR Rate = 12.1e9
)

// LatencyOf returns the one-way latency of a data link standard (Table 1).
func LatencyOf(r Rate) time.Duration {
	switch r {
	case GbE:
		return 340 * time.Microsecond
	case IB4xSDR:
		return 5 * time.Microsecond
	case IB4xDDR:
		return 2500 * time.Nanosecond
	case IB4xQDR:
		return 1300 * time.Nanosecond
	case IB4xFDR:
		return 700 * time.Nanosecond
	case IB4xEDR:
		return 500 * time.Nanosecond
	default:
		return 5 * time.Microsecond
	}
}

// NameOf returns the human name of a data link standard.
func NameOf(r Rate) string {
	switch r {
	case GbE:
		return "GbE"
	case IB4xSDR:
		return "IB 4xSDR"
	case IB4xDDR:
		return "IB 4xDDR"
	case IB4xQDR:
		return "IB 4xQDR"
	case IB4xFDR:
		return "IB 4xFDR"
	case IB4xEDR:
		return "IB 4xEDR"
	default:
		return fmt.Sprintf("%.3g GB/s", float64(r)/1e9)
	}
}

// Message is one transfer unit on the fabric.
type Message struct {
	Src, Dst int
	// Size is the number of (simulated) wire bytes, used for pacing.
	Size int
	// Payload travels by reference: zero copies happen in the fabric
	// itself. Transports add their own copy semantics on top (RDMA: none;
	// TCP: application↔socket buffer copies).
	Payload any
	// Inline marks a low-latency inline message (scheduling barriers).
	Inline bool
}

// Config configures a fabric.
type Config struct {
	// Ports is the number of endpoints attached to the switch.
	Ports int
	// Rate is the per-link data rate in simulated bytes/second.
	Rate Rate
	// Latency is the simulated one-way latency. Zero means LatencyOf(Rate).
	Latency time.Duration
	// TimeScale converts simulated seconds to wall-clock seconds
	// (wall = sim × TimeScale). Zero means 1.0.
	TimeScale float64
	// Credits is the number of ingress buffer slots per port. Zero means 4.
	Credits int
	// EgressQueue is the per-sender FIFO depth. Zero means 64.
	EgressQueue int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Latency == 0 {
		out.Latency = LatencyOf(out.Rate)
	}
	if out.TimeScale == 0 {
		out.TimeScale = 1.0
	}
	if out.Credits == 0 {
		out.Credits = 4
	}
	if out.EgressQueue == 0 {
		out.EgressQueue = 64
	}
	return out
}

// Fabric is the switch plus its links. Create with New, then RegisterSink
// for each port, then Start.
type Fabric struct {
	cfg     Config
	egress  []chan *Message // per-sender FIFO
	ingress []chan *Message // per-receiver credit-bounded buffer
	sinks   []func(*Message)
	epace   []*pacer // egress link pacers
	ipace   []*pacer // ingress link pacers

	bytesDelivered atomic.Uint64
	msgsDelivered  atomic.Uint64
	msgsDropped    atomic.Uint64

	// partitioned[port] marks a port cut off from the switch: the switch
	// drops every frame to or from it (a cable pull / switch-port failure).
	// Loopback traffic never reaches the switch and is unaffected.
	partitioned []atomic.Bool

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
	started   atomic.Bool
}

// New creates a fabric. Sinks must be registered before Start.
func New(cfg Config) (*Fabric, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("fabric: need at least one port, got %d", cfg.Ports)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("fabric: rate must be positive, got %v", cfg.Rate)
	}
	c := cfg.withDefaults()
	f := &Fabric{
		cfg:         c,
		egress:      make([]chan *Message, c.Ports),
		ingress:     make([]chan *Message, c.Ports),
		sinks:       make([]func(*Message), c.Ports),
		epace:       make([]*pacer, c.Ports),
		ipace:       make([]*pacer, c.Ports),
		partitioned: make([]atomic.Bool, c.Ports),
		stopCh:      make(chan struct{}),
	}
	for i := 0; i < c.Ports; i++ {
		f.egress[i] = make(chan *Message, c.EgressQueue)
		f.ingress[i] = make(chan *Message, c.Credits)
		f.epace[i] = newPacer(float64(c.Rate), c.TimeScale)
		f.ipace[i] = newPacer(float64(c.Rate), c.TimeScale)
	}
	return f, nil
}

// Config returns the effective configuration.
func (f *Fabric) Config() Config { return f.cfg }

// RegisterSink installs the delivery callback for a port. The callback runs
// on the port's ingress goroutine; it must not block for long or it stalls
// the simulated link (which is realistic: an unread receive queue exerts
// backpressure).
func (f *Fabric) RegisterSink(port int, sink func(*Message)) {
	if f.started.Load() {
		panic("fabric: RegisterSink after Start")
	}
	f.sinks[port] = sink
}

// Start launches the per-port pump goroutines.
func (f *Fabric) Start() {
	f.startOnce.Do(func() {
		f.started.Store(true)
		for i := 0; i < f.cfg.Ports; i++ {
			if f.sinks[i] == nil {
				panic(fmt.Sprintf("fabric: port %d has no sink", i))
			}
			f.wg.Add(2)
			go f.egressPump(i)
			go f.ingressPump(i)
		}
	})
}

// Stop shuts the fabric down. In-flight messages may be dropped; callers
// should quiesce traffic first.
func (f *Fabric) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
}

// Send enqueues a message on the source port's egress FIFO. It blocks when
// the FIFO is full (backpressure into the application, like a full send
// work queue). Send panics on malformed addresses: that is a harness bug,
// not a runtime condition.
func (f *Fabric) Send(m *Message) {
	if m.Src < 0 || m.Src >= f.cfg.Ports || m.Dst < 0 || m.Dst >= f.cfg.Ports {
		panic(fmt.Sprintf("fabric: bad address src=%d dst=%d ports=%d", m.Src, m.Dst, f.cfg.Ports))
	}
	if m.Src == m.Dst {
		// Loopback skips the switch: deliver directly, still counting it.
		f.deliver(m)
		return
	}
	select {
	case f.egress[m.Src] <- m:
	case <-f.stopCh:
	}
}

// TrySend is a non-blocking Send. It reports whether the message was
// queued.
func (f *Fabric) TrySend(m *Message) bool {
	if m.Src == m.Dst {
		f.deliver(m)
		return true
	}
	select {
	case f.egress[m.Src] <- m:
		return true
	default:
		return false
	}
}

// SetPartitioned cuts port off from (or reconnects it to) the switch.
// While partitioned, every non-loopback message to or from the port —
// inline barriers and probes included — is silently dropped at the switch,
// exactly like a pulled cable: neither side gets an error, traffic just
// stops. Payloads of dropped messages are not released back to their
// pools; the simulation accepts that bounded leak the same way a real NIC
// loses in-flight frames.
func (f *Fabric) SetPartitioned(port int, on bool) {
	f.partitioned[port].Store(on)
}

// Partitioned reports whether the port is currently cut off.
func (f *Fabric) Partitioned(port int) bool { return f.partitioned[port].Load() }

// MessagesDropped returns the number of messages dropped at partitioned
// ports.
func (f *Fabric) MessagesDropped() uint64 { return f.msgsDropped.Load() }

// BytesDelivered returns the total payload bytes delivered so far.
func (f *Fabric) BytesDelivered() uint64 { return f.bytesDelivered.Load() }

// MessagesDelivered returns the number of messages delivered so far.
func (f *Fabric) MessagesDelivered() uint64 { return f.msgsDelivered.Load() }

// ResetCounters zeroes the delivery counters.
func (f *Fabric) ResetCounters() {
	f.bytesDelivered.Store(0)
	f.msgsDelivered.Store(0)
}

// egressPump serializes a host's outgoing messages onto its uplink, then
// forwards to the target ingress port. The forward blocks when the target
// port is out of credits; because this pump is the only consumer of the
// host's FIFO, everything behind the head message stalls too (HOL).
func (f *Fabric) egressPump(port int) {
	defer f.wg.Done()
	for {
		select {
		case m := <-f.egress[port]:
			f.epace[port].wait(m.Size)
			if f.partitioned[m.Src].Load() || f.partitioned[m.Dst].Load() {
				// The switch drops frames touching a partitioned port after
				// the sender paid its egress serialization — the sender
				// cannot tell a drop from a delivery.
				f.msgsDropped.Add(1)
				continue
			}
			select {
			case f.ingress[m.Dst] <- m:
			case <-f.stopCh:
				return
			}
		case <-f.stopCh:
			return
		}
	}
}

// ingressPump serializes a host's incoming messages on its downlink and
// delivers them to the sink.
func (f *Fabric) ingressPump(port int) {
	defer f.wg.Done()
	lat := time.Duration(float64(f.cfg.Latency) * f.cfg.TimeScale)
	for {
		select {
		case m := <-f.ingress[port]:
			f.ipace[port].wait(m.Size)
			if lat > 0 && m.Inline {
				// Inline messages are latency-bound, not bandwidth-bound;
				// model their fixed cost explicitly.
				sleepFor(lat)
			}
			f.deliver(m)
		case <-f.stopCh:
			return
		}
	}
}

func (f *Fabric) deliver(m *Message) {
	f.bytesDelivered.Add(uint64(m.Size))
	f.msgsDelivered.Add(1)
	f.sinks[m.Dst](m)
}

// pacer enforces a byte rate in wall-clock time. It tracks the time the
// link becomes free; waiters sleep (or briefly spin, for sub-scheduler
// durations) until their transmission completes. The mutex serializes the
// link — one transmission at a time, FIFO by arrival.
//
// The bucket allows bounded *catch-up*: when the pump goroutine wakes late
// (GC, OS jitter), nextFree lies in the past and subsequent transmissions
// may start back-dated by up to `burst`, so transient scheduling delays do
// not permanently deflate the modeled link rate.
type pacer struct {
	mu       sync.Mutex
	nextFree time.Time
	rate     float64 // simulated bytes per second
	scale    float64 // wall seconds per simulated second
	burst    time.Duration
}

func newPacer(rate, scale float64) *pacer {
	return &pacer{rate: rate, scale: scale, burst: 6 * time.Millisecond}
}

// wait blocks until size bytes have "crossed" the link.
func (p *pacer) wait(size int) {
	if size <= 0 {
		return
	}
	durWall := time.Duration(float64(size) / p.rate * p.scale * float64(time.Second))
	p.mu.Lock()
	now := time.Now()
	start := p.nextFree
	if floor := now.Add(-p.burst); start.Before(floor) {
		start = floor // idle link: don't grant unbounded credit
	}
	done := start.Add(durWall)
	p.nextFree = done
	p.mu.Unlock()
	sleepUntil(done)
}

// sleepUntil waits for a pacing deadline. The host kernel's sleep
// granularity is coarse (time.Sleep can overshoot by 1–2 ms), so short
// waits spin; long waits sleep and let the pacer's burst catch-up absorb
// the overshoot, keeping the modeled rate exact for sustained streams.
func sleepUntil(t time.Time) {
	d := time.Until(t)
	switch {
	case d <= 0:
		return
	case d <= 300*time.Microsecond:
		for time.Now().Before(t) {
		}
	default:
		time.Sleep(d)
	}
}

func sleepFor(d time.Duration) { sleepUntil(time.Now().Add(d)) }
