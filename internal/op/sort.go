package op

import (
	"sort"
	"sync"

	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// TopK is a sort / top-k pipeline breaker: it collects all input rows,
// sorts them by the keys and optionally keeps only the first Limit rows.
// Limit ≤ 0 means full sort (ORDER BY without LIMIT).
type TopK struct {
	Keys   []SortKey
	Limit  int
	Schema *storage.Schema

	mu   sync.Mutex
	rows *storage.Batch
	out  *storage.Batch
}

// NewTopK creates the sink.
func NewTopK(schema *storage.Schema, keys []SortKey, limit int) *TopK {
	return &TopK{Keys: keys, Limit: limit, Schema: schema, rows: storage.NewBatch(schema, 1024)}
}

// Consume implements engine.Sink.
func (t *TopK) Consume(_ *engine.Worker, b *storage.Batch) {
	t.mu.Lock()
	for i := 0; i < b.Rows(); i++ {
		t.rows.AppendRowFrom(b, i)
	}
	t.mu.Unlock()
}

// Finalize sorts and truncates.
func (t *TopK) Finalize() error {
	n := t.rows.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return CompareRows(t.rows, idx[a], t.rows, idx[b], t.Keys) < 0
	})
	if t.Limit > 0 && t.Limit < n {
		idx = idx[:t.Limit]
	}
	out := storage.NewBatch(t.Schema, len(idx))
	for _, i := range idx {
		out.AppendRowFrom(t.rows, i)
	}
	t.out = out
	t.rows = nil
	return nil
}

// Batches returns the sorted result.
func (t *TopK) Batches() []*storage.Batch {
	if t.out == nil {
		panic("op: TopK batches requested before Finalize")
	}
	return []*storage.Batch{t.out}
}

// CompareRows orders row ai of a against row bi of b under the sort keys:
// −1, 0 or 1. NULLs sort first.
func CompareRows(a *storage.Batch, ai int, b *storage.Batch, bi int, keys []SortKey) int {
	for _, k := range keys {
		ca, cb := a.Cols[k.Col], b.Cols[k.Col]
		cmp := compareVal(ca, ai, cb, bi)
		if k.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

func compareVal(ca *storage.Column, ai int, cb *storage.Column, bi int) int {
	an, bn := ca.IsNull(ai), cb.IsNull(bi)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	switch ca.Type {
	case storage.TString:
		switch {
		case ca.Str[ai] < cb.Str[bi]:
			return -1
		case ca.Str[ai] > cb.Str[bi]:
			return 1
		}
	case storage.TFloat64:
		switch {
		case ca.F64[ai] < cb.F64[bi]:
			return -1
		case ca.F64[ai] > cb.F64[bi]:
			return 1
		}
	default:
		switch {
		case ca.I64[ai] < cb.I64[bi]:
			return -1
		case ca.I64[ai] > cb.I64[bi]:
			return 1
		}
	}
	return 0
}
