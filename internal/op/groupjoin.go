package op

import (
	"sync"

	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// GroupJoin implements HyPer's Γ⨝ operator (Figure 6: TPC-H query 17 uses
// a groupjoin of part and lineitem): it combines a join and a group-by on
// the same key in one pass. The left (build) side becomes the groups; the
// right (probe) side streams and folds its tuples into the aggregate
// states of the matching group. Finalize emits one row per matched group:
// the left row followed by the aggregate values.
//
// Compared to aggregate-then-join it saves one hash table and one
// materialization — the ablation benchmark BenchmarkGroupJoinAblation
// quantifies this.

// GroupJoinBuild is the left-side pipeline breaker.
type GroupJoinBuild struct {
	Keys   []int
	Schema *storage.Schema
	Aggs   []AggSpec

	jb    *JoinBuild
	locks []sync.Mutex
	state [][]aggState // [build row][agg]
	hit   []bool       // build row matched at least once
}

// NewGroupJoinBuild creates the build sink.
func NewGroupJoinBuild(schema *storage.Schema, keys []int, aggs []AggSpec) *GroupJoinBuild {
	return &GroupJoinBuild{
		Keys:   keys,
		Schema: schema,
		Aggs:   aggs,
		jb:     NewJoinBuild(schema, keys),
		locks:  make([]sync.Mutex, 256),
	}
}

// Consume implements engine.Sink.
func (g *GroupJoinBuild) Consume(w *engine.Worker, b *storage.Batch) { g.jb.Consume(w, b) }

// Finalize builds the hash table and allocates aggregate states.
func (g *GroupJoinBuild) Finalize() error {
	if err := g.jb.Finalize(); err != nil {
		return err
	}
	n := g.jb.Table().Size()
	g.state = make([][]aggState, n)
	for i := range g.state {
		g.state[i] = make([]aggState, len(g.Aggs))
	}
	g.hit = make([]bool, n)
	return nil
}

// GroupJoinProbe is the right-side sink: it folds probe tuples into the
// matching group's aggregates.
type GroupJoinProbe struct {
	Build     *GroupJoinBuild
	ProbeKeys []int
	// Residual optionally restricts which probe tuples join.
	Residual ResidualPred
}

// Consume implements engine.Sink.
func (p *GroupJoinProbe) Consume(_ *engine.Worker, b *storage.Batch) {
	g := p.Build
	ht := g.jb.Table()
	for i := 0; i < b.Rows(); i++ {
		h := storage.HashRow(b, p.ProbeKeys, i)
		for bi := ht.First(h); bi >= 0; bi = ht.Next(bi) {
			if !ht.KeyEq(bi, b, p.ProbeKeys, i) {
				continue
			}
			if p.Residual != nil && !p.Residual(b, i, ht.Build, int(bi)) {
				continue
			}
			lock := &g.locks[uint32(bi)&255]
			lock.Lock()
			g.hit[bi] = true
			st := g.state[bi]
			for a := range g.Aggs {
				// Aggregate arguments are evaluated over the probe batch.
				spec := g.Aggs[a]
				updateProbeAgg(&st[a], &spec, b, i)
			}
			lock.Unlock()
		}
	}
}

// updateProbeAgg mirrors GroupBy.update but lives here to keep the
// concurrency contract (caller holds the group lock) explicit.
func updateProbeAgg(st *aggState, spec *AggSpec, b *storage.Batch, i int) {
	switch spec.Kind {
	case Count:
		if spec.Arg != nil {
			if v := spec.Arg(b, i); v.Null {
				return
			}
		}
		st.cnt++
	case Sum, Avg:
		v := spec.Arg(b, i)
		if v.Null {
			return
		}
		if spec.ArgType == storage.TFloat64 {
			st.f += v.F
		} else {
			st.i += v.I
		}
		st.cnt++
		st.set = true
	case Min, Max:
		v := spec.Arg(b, i)
		if v.Null {
			return
		}
		if !st.set {
			st.i, st.f, st.s, st.set = v.I, v.F, v.S, true
			return
		}
		less := false
		switch spec.ArgType {
		case storage.TFloat64:
			less = v.F < st.f
		case storage.TString:
			less = v.S < st.s
		default:
			less = v.I < st.i
		}
		if (spec.Kind == Min) == less {
			st.i, st.f, st.s = v.I, v.F, v.S
		}
	}
}

// Finalize implements engine.Sink.
func (p *GroupJoinProbe) Finalize() error { return nil }

// ResultSchema returns the output schema: left columns then aggregates.
func (g *GroupJoinBuild) ResultSchema() *storage.Schema {
	out := &storage.Schema{Fields: append([]storage.Field{}, g.Schema.Fields...)}
	for _, a := range g.Aggs {
		out.Fields = append(out.Fields, a.ResultField())
	}
	return out
}

// ResultBatches emits one row per matched group.
func (g *GroupJoinBuild) ResultBatches() []*storage.Batch {
	build := g.jb.Table().Build
	out := storage.NewBatch(g.ResultSchema(), 1024)
	for bi := 0; bi < build.Rows(); bi++ {
		if !g.hit[bi] {
			continue
		}
		for c := range build.Cols {
			out.Cols[c].AppendFrom(build.Cols[c], bi)
		}
		for a := range g.Aggs {
			appendFinal(out.Cols[len(build.Cols)+a], &g.state[bi][a], &g.Aggs[a])
		}
	}
	return []*storage.Batch{out}
}
