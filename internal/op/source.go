package op

import (
	"sync"

	"hsqp/internal/engine"
	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

// TableSource yields morsels from a table's NUMA-homed segments. Workers
// receive morsels of their own socket first and steal from other sockets
// when theirs is exhausted (morsel-driven NUMA-local processing, §3.2).
type TableSource struct {
	mu      sync.Mutex
	cursors [][]segCursor // per NUMA node
	morsel  int
}

type segCursor struct {
	seg *storage.Segment
	off int
}

// NewTableSource creates a source over the table with the given morsel
// size.
func NewTableSource(t *storage.Table, sockets, morselSize int) *TableSource {
	s := &TableSource{morsel: morselSize, cursors: make([][]segCursor, sockets)}
	for _, seg := range t.Segments {
		n := int(seg.Node)
		if n < 0 || n >= sockets {
			n = 0
		}
		s.cursors[n] = append(s.cursors[n], segCursor{seg: seg})
	}
	return s
}

// Next returns the next morsel: a zero-copy column-window view over the
// segment.
func (s *TableSource) Next(w *engine.Worker) *storage.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	node := int(w.Node)
	if node < 0 || node >= len(s.cursors) {
		node = 0
	}
	// Own node first, then steal round-robin.
	for d := 0; d < len(s.cursors); d++ {
		n := (node + d) % len(s.cursors)
		for ci := range s.cursors[n] {
			c := &s.cursors[n][ci]
			if c.seg == nil || c.off >= c.seg.Rows() {
				continue
			}
			lo := c.off
			hi := min(lo+s.morsel, c.seg.Rows())
			c.off = hi
			return sliceBatch(c.seg.Batch, lo, hi)
		}
	}
	return nil
}

// HasLocal implements engine.LocalityHinter: it reports whether the table
// still holds unscanned morsels homed on the given socket, so the
// scheduler can prefer pipelines with NUMA-local work for a worker before
// letting it steal remote morsels or switch pipelines.
func (s *TableSource) HasLocal(node numa.Node) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int(node)
	if n < 0 || n >= len(s.cursors) {
		return false
	}
	for ci := range s.cursors[n] {
		c := &s.cursors[n][ci]
		if c.seg != nil && c.off < c.seg.Rows() {
			return true
		}
	}
	return false
}

// sliceBatch returns a window [lo,hi) over b sharing the column storage.
func sliceBatch(b *storage.Batch, lo, hi int) *storage.Batch {
	out := &storage.Batch{Schema: b.Schema, Cols: make([]*storage.Column, len(b.Cols))}
	for i, c := range b.Cols {
		w := &storage.Column{Type: c.Type, Nullable: c.Nullable}
		switch c.Type {
		case storage.TFloat64:
			w.F64 = c.F64[lo:hi]
		case storage.TString:
			w.Str = c.Str[lo:hi]
		default:
			w.I64 = c.I64[lo:hi]
		}
		if c.Nullable {
			w.Valid = c.Valid[lo:hi]
		}
		out.Cols[i] = w
	}
	return out
}

// BatchSource yields a fixed list of batches, one per Next call.
type BatchSource struct {
	mu      sync.Mutex
	batches []*storage.Batch
	next    int
}

// NewBatchSource creates a source over pre-materialized batches.
func NewBatchSource(batches []*storage.Batch) *BatchSource {
	return &BatchSource{batches: batches}
}

// Next returns the next batch or nil.
func (s *BatchSource) Next(*engine.Worker) *storage.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.next < len(s.batches) {
		b := s.batches[s.next]
		s.next++
		if b != nil && b.Rows() > 0 {
			return b
		}
	}
	return nil
}

// EmptySource yields nothing (plan stages that don't run on this server).
type EmptySource struct{}

// Next always returns nil.
func (EmptySource) Next(*engine.Worker) *storage.Batch { return nil }

// Collector is a sink that gathers all batches of a pipeline (the local
// materialization at the top of a plan or below a pipeline breaker that
// needs full input).
type Collector struct {
	mu      sync.Mutex
	batches []*storage.Batch
	rows    int
}

// Consume appends the batch.
func (c *Collector) Consume(_ *engine.Worker, b *storage.Batch) {
	c.mu.Lock()
	c.batches = append(c.batches, b)
	c.rows += b.Rows()
	c.mu.Unlock()
}

// Finalize implements engine.Sink.
func (c *Collector) Finalize() error { return nil }

// Batches returns the collected batches.
func (c *Collector) Batches() []*storage.Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches
}

// Rows returns the number of collected rows.
func (c *Collector) Rows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}

// Flatten merges all collected batches into one (small results only).
func (c *Collector) Flatten(schema *storage.Schema) *storage.Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := storage.NewBatch(schema, c.rows)
	for _, b := range c.batches {
		for i := 0; i < b.Rows(); i++ {
			out.AppendRowFrom(b, i)
		}
	}
	return out
}

// LazySource defers batch production until execution time: earlier
// pipelines materialize state (aggregates, sorts) that only exists after
// their Finalize, while plans are wired up front.
type LazySource struct {
	Fn     func() []*storage.Batch
	Morsel int

	mu    sync.Mutex
	inner *BatchSource
}

// Next implements engine.Source.
func (s *LazySource) Next(w *engine.Worker) *storage.Batch {
	s.mu.Lock()
	if s.inner == nil {
		batches := s.Fn()
		if s.Morsel > 0 {
			batches = SplitIntoMorsels(batches, s.Morsel)
		}
		s.inner = NewBatchSource(batches)
	}
	inner := s.inner
	s.mu.Unlock()
	return inner.Next(w)
}

// SplitIntoMorsels re-slices batches into windows of at most morsel rows
// so that several workers can share large materialized results.
func SplitIntoMorsels(batches []*storage.Batch, morsel int) []*storage.Batch {
	var out []*storage.Batch
	for _, b := range batches {
		n := b.Rows()
		if n <= morsel {
			if n > 0 {
				out = append(out, b)
			}
			continue
		}
		for lo := 0; lo < n; lo += morsel {
			out = append(out, sliceBatch(b, lo, min(lo+morsel, n)))
		}
	}
	return out
}
