package op

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// FusedStage evaluates a run of adjacent non-blocking operators — filters,
// computed-column maps and projections — in one pass over the morsel.
// Instead of materializing a batch between every stage (Filter copies the
// survivors, MapOp allocates a column per expression, Project allocates a
// header), it keeps a selection vector of surviving row indexes over the
// *original* morsel: filters shrink the selection, map expressions are
// evaluated only at selected positions into per-worker scratch columns,
// projections just re-point the working column set. Rows are copied at most
// once, at the very end — and not at all when every row survives (the
// output then shares the input's column storage).
//
// Scratch reuse: each worker owns a scratch slot (selection vector,
// computed-column buffers, output batch), so steady-state execution does
// not allocate per morsel. That is only sound when the downstream consumer
// does not retain the batch beyond its synchronous Process/Consume call;
// the planner sets reuse accordingly (a JoinProbe downstream always
// re-materializes, sends/aggregations/top-k consume without retaining,
// hash builds and collectors retain and force reuse off).
type FusedStage struct {
	steps []fusedStep
	names []string // per-step labels for OpName
	reuse bool

	schemaOnce sync.Once
	outSchema  *storage.Schema

	allocs  atomic.Uint64 // fresh column/batch materializations
	scratch []fusedScratch
}

type fusedStepKind int

const (
	stepFilter fusedStepKind = iota
	stepMap
	stepProject
)

type fusedStep struct {
	kind  fusedStepKind
	pred  Pred        // stepFilter
	exprs []NamedExpr // stepMap
	cols  []int       // stepProject
}

// fusedScratch is one worker's reusable state.
type fusedScratch struct {
	sel      []int32
	work     []*storage.Column
	proj     []*storage.Column
	view     storage.Batch
	computed [][]*storage.Column // [step][expr]
	out      *storage.Batch      // compacted-output batch (reuse mode)
	_pad     [8]uint64           // avoid false sharing between slots
}

// NewFused fuses a run of *Filter/*MapOp/*Project operators. numWorkers
// sizes the per-worker scratch slots; reuse enables cross-morsel scratch
// reuse (see the type comment for when that is sound).
func NewFused(ops []engine.Op, numWorkers int, reuse bool) *FusedStage {
	f := &FusedStage{reuse: reuse}
	for _, o := range ops {
		switch t := o.(type) {
		case *Filter:
			f.steps = append(f.steps, fusedStep{kind: stepFilter, pred: t.Pred})
			f.names = append(f.names, "select")
		case *MapOp:
			f.steps = append(f.steps, fusedStep{kind: stepMap, exprs: t.Exprs})
			f.names = append(f.names, "map")
		case *Project:
			f.steps = append(f.steps, fusedStep{kind: stepProject, cols: t.Cols})
			f.names = append(f.names, "project")
		default:
			panic(fmt.Sprintf("op: NewFused: %T is not a fusible operator", o))
		}
	}
	if numWorkers < 1 {
		numWorkers = 1
	}
	f.scratch = make([]fusedScratch, numWorkers)
	for i := range f.scratch {
		f.scratch[i].computed = make([][]*storage.Column, len(f.steps))
	}
	return f
}

// OpName implements engine.NamedOp.
func (f *FusedStage) OpName() string {
	return "fused(" + strings.Join(f.names, "+") + ")"
}

// BatchAllocs implements engine.AllocCounter: the number of fresh column
// and batch materializations across the whole run (scratch-pooled buffers
// count once, at first use).
func (f *FusedStage) BatchAllocs() uint64 { return f.allocs.Load() }

// Schema returns the output schema. It is derived lazily from the first
// batch, so it is only available after the first Process call.
func (f *FusedStage) Schema() *storage.Schema { return f.outSchema }

func (f *FusedStage) deriveSchema(in *storage.Schema) *storage.Schema {
	cur := in
	for i := range f.steps {
		st := &f.steps[i]
		switch st.kind {
		case stepMap:
			out := &storage.Schema{Fields: append([]storage.Field{}, cur.Fields...)}
			for _, e := range st.exprs {
				out.Fields = append(out.Fields, storage.Field{Name: e.Name, Type: e.Type})
			}
			cur = out
		case stepProject:
			cur = cur.Project(st.cols)
		}
	}
	return cur
}

// Process implements engine.Op.
func (f *FusedStage) Process(w *engine.Worker, b *storage.Batch) *storage.Batch {
	f.schemaOnce.Do(func() { f.outSchema = f.deriveSchema(b.Schema) })
	slot := 0
	if w != nil {
		slot = w.ID % len(f.scratch)
	}
	sc := &f.scratch[slot]
	n := b.Rows()
	cols := append(sc.work[:0], b.Cols...)
	sel := sc.sel[:0]
	allPass := true

	for si := range f.steps {
		st := &f.steps[si]
		switch st.kind {
		case stepFilter:
			sc.view.Cols = cols
			v := &sc.view
			if allPass {
				for i := 0; i < n; i++ {
					if st.pred(v, i) {
						if !allPass {
							sel = append(sel, int32(i))
						}
					} else if allPass {
						sel = sel[:0]
						for j := 0; j < i; j++ {
							sel = append(sel, int32(j))
						}
						allPass = false
					}
				}
			} else {
				kept := sel[:0]
				for _, i := range sel {
					if st.pred(v, int(i)) {
						kept = append(kept, i)
					}
				}
				sel = kept
			}
			if !allPass && len(sel) == 0 {
				sc.work, sc.sel = cols[:0], sel[:0]
				return nil
			}
		case stepMap:
			sc.view.Cols = cols
			v := &sc.view
			if sc.computed[si] == nil {
				sc.computed[si] = make([]*storage.Column, len(st.exprs))
			}
			for ei := range st.exprs {
				e := &st.exprs[ei]
				col := sc.computed[si][ei]
				if col == nil || !f.reuse {
					col = &storage.Column{Type: e.Type}
					sc.computed[si][ei] = col
					f.allocs.Add(1)
				}
				growCol(col, n)
				// Expressions see the pre-map column layout (like MapOp) and
				// run only at surviving positions; values land at their
				// original row index so the selection stays valid.
				if allPass {
					for i := 0; i < n; i++ {
						setComputed(col, i, e.Type, e.Expr(v, i))
					}
				} else {
					for _, i := range sel {
						setComputed(col, int(i), e.Type, e.Expr(v, int(i)))
					}
				}
				cols = append(cols, col)
			}
		case stepProject:
			// Swap the two scratch column slices so the remap never aliases
			// its own source.
			tmp := sc.proj[:0]
			for _, ci := range st.cols {
				tmp = append(tmp, cols[ci])
			}
			sc.proj = cols[:0]
			cols = tmp
		}
	}

	sc.work = cols[:0]
	if allPass {
		// Zero-copy: every row survived, share the final column set.
		f.allocs.Add(1)
		return &storage.Batch{Schema: f.outSchema, Cols: append(make([]*storage.Column, 0, len(cols)), cols...)}
	}
	var out *storage.Batch
	if f.reuse {
		if sc.out == nil {
			sc.out = storage.NewBatch(f.outSchema, len(sel))
			f.allocs.Add(1)
		} else {
			sc.out.Reset()
		}
		out = sc.out
	} else {
		out = storage.NewBatch(f.outSchema, len(sel))
		f.allocs.Add(1)
	}
	for ci, src := range cols {
		gatherCol(out.Cols[ci], src, sel)
	}
	sc.sel = sel[:0]
	return out
}

// growCol resizes a scratch column to exactly n indexable slots, reusing
// the backing arrays when the capacity suffices.
func growCol(c *storage.Column, n int) {
	switch c.Type {
	case storage.TFloat64:
		if cap(c.F64) >= n {
			c.F64 = c.F64[:n]
		} else {
			c.F64 = make([]float64, n)
		}
	case storage.TString:
		if cap(c.Str) >= n {
			c.Str = c.Str[:n]
		} else {
			c.Str = make([]string, n)
		}
	default:
		if cap(c.I64) >= n {
			c.I64 = c.I64[:n]
		} else {
			c.I64 = make([]int64, n)
		}
	}
}

// setComputed stores an expression value at row i. Computed columns are
// non-nullable (MapOp semantics: NULL results store the zero value).
func setComputed(c *storage.Column, i int, t storage.Type, v Val) {
	switch t {
	case storage.TFloat64:
		c.F64[i] = v.F
	case storage.TString:
		c.Str[i] = v.S
	default:
		c.I64[i] = v.I
	}
}

// gatherCol appends the selected rows of src to dst with typed loops
// (no per-value interface dispatch).
func gatherCol(dst, src *storage.Column, sel []int32) {
	switch src.Type {
	case storage.TFloat64:
		for _, i := range sel {
			dst.F64 = append(dst.F64, src.F64[i])
		}
	case storage.TString:
		for _, i := range sel {
			dst.Str = append(dst.Str, src.Str[i])
		}
	default:
		for _, i := range sel {
			dst.I64 = append(dst.I64, src.I64[i])
		}
	}
	if dst.Nullable {
		if src.Nullable {
			for _, i := range sel {
				dst.Valid = append(dst.Valid, src.Valid[i])
			}
		} else {
			for range sel {
				dst.Valid = append(dst.Valid, true)
			}
		}
	}
}
