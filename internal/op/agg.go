package op

import (
	"fmt"

	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// AggKind selects an aggregate function.
type AggKind int

const (
	// Sum adds the argument (int64/decimal or float).
	Sum AggKind = iota
	// Count counts rows (Arg nil) or non-NULL arguments.
	Count
	// Min keeps the smallest argument.
	Min
	// Max keeps the largest argument.
	Max
	// Avg divides the sum by the count (decimal or float).
	Avg
	// AvgMerge combines partial (sum, count) pairs — used by the final
	// stage of a distributed average; Arg is the sum column, Arg2 the
	// count column.
	AvgMerge
)

func (k AggKind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	case AvgMerge:
		return "avgmerge"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec describes one aggregate output.
type AggSpec struct {
	Kind    AggKind
	Name    string
	Arg     Expr         // nil only for Count(*)
	Arg2    Expr         // AvgMerge: the partial count column
	ArgType storage.Type // type of Arg (drives arithmetic and output type)
}

// ResultField returns the output schema field of the aggregate.
func (a AggSpec) ResultField() storage.Field {
	switch a.Kind {
	case Count:
		return storage.Field{Name: a.Name, Type: storage.TInt64}
	case Avg, AvgMerge:
		t := a.ArgType
		if t != storage.TFloat64 {
			t = storage.TDecimal
		}
		return storage.Field{Name: a.Name, Type: t}
	default:
		return storage.Field{Name: a.Name, Type: a.ArgType}
	}
}

// aggState is the running state of one aggregate in one group.
type aggState struct {
	i   int64
	f   float64
	s   string
	cnt int64
	set bool
}

// aggChain is a pre-sizable chained hash index over group ids: heads is a
// power-of-two bucket array, next/hashes are indexed by group id. It
// replaces the old map[uint32][]int32, which allocated one slice per
// distinct hash and rehashed as the table grew; sized from the planner's
// cardinality estimate, a build inserts without ever rehashing.
type aggChain struct {
	mask   uint32
	heads  []int32
	next   []int32
	hashes []uint32 // full hash per group: cheap equality pre-check + rehash
}

func newAggChain(hint int) aggChain {
	buckets := nextPow2(hint)
	c := aggChain{heads: make([]int32, buckets), mask: uint32(buckets - 1)}
	for i := range c.heads {
		c.heads[i] = -1
	}
	return c
}

// add registers the next group id under hash h, doubling the bucket array
// when the load factor reaches 1.
func (c *aggChain) add(h uint32) int32 {
	if len(c.next) >= len(c.heads) {
		c.grow()
	}
	id := int32(len(c.next))
	b := h & c.mask
	c.next = append(c.next, c.heads[b])
	c.hashes = append(c.hashes, h)
	c.heads[b] = id
	return id
}

func (c *aggChain) grow() {
	buckets := len(c.heads) * 2
	c.heads = make([]int32, buckets)
	c.mask = uint32(buckets - 1)
	for i := range c.heads {
		c.heads[i] = -1
	}
	for id, h := range c.hashes {
		b := h & c.mask
		c.next[id] = c.heads[b]
		c.heads[b] = int32(id)
	}
}

// aggTable is one worker's (or the merged) grouping hash table.
type aggTable struct {
	keys   *storage.Batch // one row per group: the key columns
	idx    aggChain
	states [][]aggState // [group][agg]
}

// aggTable sizing bounds: hints are estimates (often row counts, an upper
// bound on groups), so cap the per-worker bucket allocation; the merged
// table is sized exactly and gets a higher ceiling.
const (
	minAggHint      = 64
	maxAggHint      = 1 << 14
	maxMergedHint   = 1 << 20
	maxAggKeysAlloc = 4096
)

func newAggTable(keySchema *storage.Schema, hint int) *aggTable {
	keysCap := hint
	if keysCap > maxAggKeysAlloc {
		keysCap = maxAggKeysAlloc
	}
	return &aggTable{
		keys: storage.NewBatch(keySchema, keysCap),
		idx:  newAggChain(hint),
	}
}

// groupFor finds or creates the group of row i (keyed by keyCols of b).
func (t *aggTable) groupFor(b *storage.Batch, keyCols []int, i int, nAggs int) int32 {
	if len(keyCols) == 0 {
		if len(t.states) == 0 {
			t.states = append(t.states, make([]aggState, nAggs))
		}
		return 0
	}
	h := storage.HashRow(b, keyCols, i)
	for g := t.idx.heads[h&t.idx.mask]; g >= 0; g = t.idx.next[g] {
		if t.idx.hashes[g] == h && keysEqual(t.keys, int(g), b, keyCols, i) {
			return g
		}
	}
	g := t.idx.add(h)
	for k, kc := range keyCols {
		t.keys.Cols[k].AppendFrom(b.Cols[kc], i)
	}
	t.states = append(t.states, make([]aggState, nAggs))
	return g
}

func keysEqual(keys *storage.Batch, g int, b *storage.Batch, keyCols []int, i int) bool {
	for k := range keys.Cols {
		kc := keys.Cols[k]
		bc := b.Cols[keyCols[k]]
		kn, bn := kc.IsNull(g), bc.IsNull(i)
		if kn || bn {
			if kn && bn {
				continue // grouping treats NULLs as equal
			}
			return false
		}
		switch kc.Type {
		case storage.TString:
			if kc.Str[g] != bc.Str[i] {
				return false
			}
		case storage.TFloat64:
			if kc.F64[g] != bc.F64[i] {
				return false
			}
		default:
			if kc.I64[g] != bc.I64[i] {
				return false
			}
		}
	}
	return true
}

// GroupBy is the hash-aggregation pipeline breaker. Workers aggregate into
// thread-local tables; Finalize merges them. It supports both roles of a
// distributed aggregation: PartialBatches emits mergeable state (the
// pre-aggregation of Figure 6(c)), FinalBatches emits finished values.
type GroupBy struct {
	Keys     []int
	Aggs     []AggSpec
	InSchema *storage.Schema

	keySchema *storage.Schema
	tables    []*aggTable // per worker
	merged    *aggTable
}

// NewGroupBy creates the sink. numWorkers is the engine's worker count.
func NewGroupBy(in *storage.Schema, keys []int, aggs []AggSpec, numWorkers int) *GroupBy {
	ks := in.Project(keys)
	g := &GroupBy{Keys: keys, Aggs: aggs, InSchema: in, keySchema: ks}
	g.tables = make([]*aggTable, numWorkers)
	for i := range g.tables {
		g.tables[i] = newAggTable(ks, minAggHint)
	}
	return g
}

// WithHint pre-sizes the per-worker tables for an expected input
// cardinality (rows across all workers, an upper bound on groups) and
// returns g. Must be called before any Consume. The hint is clamped —
// low-cardinality aggregations (Q1: 4 groups from 6M rows) must not pay
// for row-count-sized bucket arrays.
func (g *GroupBy) WithHint(rows int) *GroupBy {
	if rows <= 0 {
		return g
	}
	hint := rows / len(g.tables)
	if hint < minAggHint {
		hint = minAggHint
	}
	if hint > maxAggHint {
		hint = maxAggHint
	}
	for i := range g.tables {
		g.tables[i] = newAggTable(g.keySchema, hint)
	}
	return g
}

// Consume implements engine.Sink: thread-local aggregation.
func (g *GroupBy) Consume(w *engine.Worker, b *storage.Batch) {
	t := g.tables[w.ID]
	n := b.Rows()
	for i := 0; i < n; i++ {
		grp := t.groupFor(b, g.Keys, i, len(g.Aggs))
		st := t.states[grp]
		for a := range g.Aggs {
			g.update(&st[a], &g.Aggs[a], b, i)
		}
	}
}

func (g *GroupBy) update(st *aggState, spec *AggSpec, b *storage.Batch, i int) {
	switch spec.Kind {
	case Count:
		if spec.Arg != nil {
			if v := spec.Arg(b, i); v.Null {
				return
			}
		}
		st.cnt++
	case Sum:
		v := spec.Arg(b, i)
		if v.Null {
			return
		}
		if spec.ArgType == storage.TFloat64 {
			st.f += v.F
		} else {
			st.i += v.I
		}
		st.set = true
	case Avg:
		v := spec.Arg(b, i)
		if v.Null {
			return
		}
		if spec.ArgType == storage.TFloat64 {
			st.f += v.F
		} else {
			st.i += v.I
		}
		st.cnt++
		st.set = true
	case AvgMerge:
		v, c := spec.Arg(b, i), spec.Arg2(b, i)
		if v.Null {
			return
		}
		if spec.ArgType == storage.TFloat64 {
			st.f += v.F
		} else {
			st.i += v.I
		}
		st.cnt += c.I
		st.set = true
	case Min, Max:
		v := spec.Arg(b, i)
		if v.Null {
			return
		}
		if !st.set {
			st.i, st.f, st.s, st.set = v.I, v.F, v.S, true
			return
		}
		less := false
		switch spec.ArgType {
		case storage.TFloat64:
			less = v.F < st.f
		case storage.TString:
			less = v.S < st.s
		default:
			less = v.I < st.I64()
		}
		if (spec.Kind == Min) == less {
			st.i, st.f, st.s = v.I, v.F, v.S
		}
	}
}

// I64 is a tiny accessor keeping update readable.
func (s *aggState) I64() int64 { return s.i }

// Finalize merges the thread-local tables. The merged table is pre-sized
// exactly from the per-worker group counts (their sum bounds the merged
// cardinality), so the merge never rehashes.
func (g *GroupBy) Finalize() error {
	total := 0
	for _, t := range g.tables {
		total += len(t.states)
	}
	if total < minAggHint {
		total = minAggHint
	}
	if total > maxMergedHint {
		total = maxMergedHint
	}
	merged := newAggTable(g.keySchema, total)
	for _, t := range g.tables {
		for grp := range t.states {
			mg := merged.groupFor(t.keys, identityCols(len(g.Keys)), grp, len(g.Aggs))
			dst := merged.states[mg]
			src := t.states[grp]
			for a := range g.Aggs {
				mergeState(&dst[a], &src[a], &g.Aggs[a])
			}
		}
	}
	// Scalar aggregation always has its single group, even on empty input.
	if len(g.Keys) == 0 && len(merged.states) == 0 {
		merged.states = append(merged.states, make([]aggState, len(g.Aggs)))
	}
	g.merged = merged
	g.tables = nil
	return nil
}

// identityCols returns [0,1,…,n).
func identityCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func mergeState(dst, src *aggState, spec *AggSpec) {
	switch spec.Kind {
	case Count:
		dst.cnt += src.cnt
	case Sum, Avg, AvgMerge:
		dst.i += src.i
		dst.f += src.f
		dst.cnt += src.cnt
		dst.set = dst.set || src.set
	case Min, Max:
		if !src.set {
			return
		}
		if !dst.set {
			*dst = *src
			return
		}
		less := false
		switch spec.ArgType {
		case storage.TFloat64:
			less = src.f < dst.f
		case storage.TString:
			less = src.s < dst.s
		default:
			less = src.i < dst.i
		}
		if (spec.Kind == Min) == less {
			dst.i, dst.f, dst.s = src.i, src.f, src.s
		}
	}
}

// FinalSchema is the output schema of FinalBatches: keys then aggregates.
func (g *GroupBy) FinalSchema() *storage.Schema {
	out := &storage.Schema{Fields: append([]storage.Field{}, g.keySchema.Fields...)}
	for _, a := range g.Aggs {
		out.Fields = append(out.Fields, a.ResultField())
	}
	return out
}

// PartialSchema is the output schema of PartialBatches: keys, then per
// aggregate its mergeable state columns (Avg contributes sum and count).
func (g *GroupBy) PartialSchema() *storage.Schema {
	out := &storage.Schema{Fields: append([]storage.Field{}, g.keySchema.Fields...)}
	for _, a := range g.Aggs {
		switch a.Kind {
		case Count:
			out.Fields = append(out.Fields, storage.Field{Name: a.Name, Type: storage.TInt64})
		case Avg, AvgMerge:
			t := a.ArgType
			if t != storage.TFloat64 {
				t = storage.TDecimal
			}
			out.Fields = append(out.Fields,
				storage.Field{Name: a.Name + "$sum", Type: t},
				storage.Field{Name: a.Name + "$cnt", Type: storage.TInt64})
		case Min, Max:
			out.Fields = append(out.Fields, storage.Field{Name: a.Name, Type: a.ArgType, Nullable: true})
		default: // Sum
			out.Fields = append(out.Fields, storage.Field{Name: a.Name, Type: a.ArgType})
		}
	}
	return out
}

// FinalBatches materializes finished aggregate values.
func (g *GroupBy) FinalBatches() []*storage.Batch {
	return g.emit(true)
}

// PartialBatches materializes mergeable state for a downstream merge
// aggregation.
func (g *GroupBy) PartialBatches() []*storage.Batch {
	return g.emit(false)
}

func (g *GroupBy) emit(final bool) []*storage.Batch {
	if g.merged == nil {
		panic("op: GroupBy batches requested before Finalize")
	}
	schema := g.PartialSchema()
	if final {
		schema = g.FinalSchema()
	}
	t := g.merged
	out := storage.NewBatch(schema, len(t.states))
	for grp := range t.states {
		for k := range g.Keys {
			out.Cols[k].AppendFrom(t.keys.Cols[k], grp)
		}
		c := len(g.Keys)
		for a := range g.Aggs {
			st := &t.states[grp][a]
			spec := &g.Aggs[a]
			if final {
				appendFinal(out.Cols[c], st, spec)
				c++
				continue
			}
			switch spec.Kind {
			case Count:
				out.Cols[c].AppendI64(st.cnt)
				c++
			case Avg, AvgMerge:
				if spec.ArgType == storage.TFloat64 {
					out.Cols[c].AppendF64(st.f)
				} else {
					out.Cols[c].AppendI64(st.i)
				}
				out.Cols[c+1].AppendI64(st.cnt)
				c += 2
			case Min, Max:
				if !st.set {
					out.Cols[c].AppendNull()
				} else {
					appendFinal(out.Cols[c], st, spec)
				}
				c++
			default:
				if spec.ArgType == storage.TFloat64 {
					out.Cols[c].AppendF64(st.f)
				} else {
					out.Cols[c].AppendI64(st.i)
				}
				c++
			}
		}
	}
	return []*storage.Batch{out}
}

func appendFinal(col *storage.Column, st *aggState, spec *AggSpec) {
	switch spec.Kind {
	case Count:
		col.AppendI64(st.cnt)
	case Avg, AvgMerge:
		if st.cnt == 0 {
			if col.Nullable {
				col.AppendNull()
			} else if spec.ArgType == storage.TFloat64 {
				col.AppendF64(0)
			} else {
				col.AppendI64(0)
			}
			return
		}
		if spec.ArgType == storage.TFloat64 {
			col.AppendF64(st.f / float64(st.cnt))
		} else {
			col.AppendI64(st.i / st.cnt)
		}
	default:
		switch spec.ArgType {
		case storage.TFloat64:
			col.AppendF64(st.f)
		case storage.TString:
			col.AppendStr(st.s)
		default:
			col.AppendI64(st.i)
		}
	}
}

// MergeSpecs rewrites aggregate specs to run over a partial schema
// produced by PartialBatches: Sum→Sum, Count→Sum, Min→Min, Max→Max,
// Avg→AvgMerge. keyCount is the number of key columns preceding the state
// columns in the partial schema.
func MergeSpecs(aggs []AggSpec, keyCount int) []AggSpec {
	out := make([]AggSpec, 0, len(aggs))
	c := keyCount
	for _, a := range aggs {
		switch a.Kind {
		case Count:
			out = append(out, AggSpec{Kind: Sum, Name: a.Name, Arg: Col(c), ArgType: storage.TInt64})
			c++
		case Avg, AvgMerge:
			t := a.ArgType
			if t != storage.TFloat64 {
				t = storage.TDecimal
			}
			out = append(out, AggSpec{Kind: AvgMerge, Name: a.Name, Arg: Col(c), Arg2: Col(c + 1), ArgType: t})
			c += 2
		default:
			out = append(out, AggSpec{Kind: a.Kind, Name: a.Name, Arg: Col(c), ArgType: a.ArgType})
			c++
		}
	}
	return out
}
