// Package op implements the relational operators of the execution engine:
// sources, filters, projections, hash joins (inner/semi/anti/outer),
// hash-based grouping/aggregation, the groupjoin of Figure 6, and
// sort/top-k — all designed so that any number of morsel workers can
// process the same pipeline job in parallel (§3.2).
package op

import (
	"strings"

	"hsqp/internal/storage"
)

// Val is a scalar expression value. Exactly one of I/F/S is meaningful,
// according to the expression's declared type; Null marks SQL NULL.
type Val struct {
	I    int64
	F    float64
	S    string
	Null bool
}

// Expr evaluates a scalar over one row of a batch.
type Expr func(b *storage.Batch, i int) Val

// Pred evaluates a boolean over one row of a batch. NULL comparisons
// evaluate to false, per SQL three-valued logic collapsing to rejection.
type Pred func(b *storage.Batch, i int) bool

// Col returns the value of column c (any type).
func Col(c int) Expr {
	return func(b *storage.Batch, i int) Val {
		col := b.Cols[c]
		if col.IsNull(i) {
			return Val{Null: true}
		}
		switch col.Type {
		case storage.TFloat64:
			return Val{F: col.F64[i]}
		case storage.TString:
			return Val{S: col.Str[i]}
		default:
			return Val{I: col.I64[i]}
		}
	}
}

// ConstI returns a constant integer-backed value.
func ConstI(v int64) Expr { return func(*storage.Batch, int) Val { return Val{I: v} } }

// MulDec multiplies two decimal(2) expressions, keeping two decimals
// (truncating, like fixed-point engines do).
func MulDec(a, e Expr) Expr {
	return func(b *storage.Batch, i int) Val {
		x, y := a(b, i), e(b, i)
		if x.Null || y.Null {
			return Val{Null: true}
		}
		return Val{I: x.I * y.I / 100}
	}
}

// SubDecConst computes (c − expr) for decimals, e.g. (1 − l_discount).
func SubDecConst(c int64, e Expr) Expr {
	return func(b *storage.Batch, i int) Val {
		v := e(b, i)
		if v.Null {
			return v
		}
		return Val{I: c - v.I}
	}
}

// AddDecConst computes (c + expr) for decimals, e.g. (1 + l_tax).
func AddDecConst(c int64, e Expr) Expr {
	return func(b *storage.Batch, i int) Val {
		v := e(b, i)
		if v.Null {
			return v
		}
		return Val{I: c + v.I}
	}
}

// Year extracts the year of a date column.
func Year(c int) Expr {
	return func(b *storage.Batch, i int) Val {
		return Val{I: int64(storage.DateYear(b.Cols[c].I64[i]))}
	}
}

// CaseWhen returns thenE when pred holds, elseE otherwise.
func CaseWhen(pred Pred, thenE, elseE Expr) Expr {
	return func(b *storage.Batch, i int) Val {
		if pred(b, i) {
			return thenE(b, i)
		}
		return elseE(b, i)
	}
}

// --- predicates ---

// And combines predicates conjunctively.
func And(ps ...Pred) Pred {
	return func(b *storage.Batch, i int) bool {
		for _, p := range ps {
			if !p(b, i) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Pred) Pred {
	return func(b *storage.Batch, i int) bool {
		for _, p := range ps {
			if p(b, i) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Pred) Pred {
	return func(b *storage.Batch, i int) bool { return !p(b, i) }
}

// I64Between holds when lo ≤ col ≤ hi (int64-backed columns).
func I64Between(c int, lo, hi int64) Pred {
	return func(b *storage.Batch, i int) bool {
		v := b.Cols[c].I64[i]
		return v >= lo && v <= hi
	}
}

// I64LT holds when col < v.
func I64LT(c int, v int64) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].I64[i] < v }
}

// I64GE holds when col ≥ v.
func I64GE(c int, v int64) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].I64[i] >= v }
}

// I64GT holds when col > v.
func I64GT(c int, v int64) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].I64[i] > v }
}

// I64LE holds when col ≤ v.
func I64LE(c int, v int64) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].I64[i] <= v }
}

// I64EQ holds when col = v.
func I64EQ(c int, v int64) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].I64[i] == v }
}

// ColEQ holds when two int64-backed columns are equal.
func ColEQ(a, b int) Pred {
	return func(batch *storage.Batch, i int) bool {
		return batch.Cols[a].I64[i] == batch.Cols[b].I64[i]
	}
}

// ColLT holds when col a < col b (int64-backed).
func ColLT(a, b int) Pred {
	return func(batch *storage.Batch, i int) bool {
		return batch.Cols[a].I64[i] < batch.Cols[b].I64[i]
	}
}

// ColNE holds when col a ≠ col b (int64-backed).
func ColNE(a, b int) Pred {
	return func(batch *storage.Batch, i int) bool {
		return batch.Cols[a].I64[i] != batch.Cols[b].I64[i]
	}
}

// StrEQ holds when a string column equals v.
func StrEQ(c int, v string) Pred {
	return func(b *storage.Batch, i int) bool { return b.Cols[c].Str[i] == v }
}

// StrIn holds when a string column is one of vs.
func StrIn(c int, vs ...string) Pred {
	set := make(map[string]struct{}, len(vs))
	for _, v := range vs {
		set[v] = struct{}{}
	}
	return func(b *storage.Batch, i int) bool {
		_, ok := set[b.Cols[c].Str[i]]
		return ok
	}
}

// StrPrefix holds for LIKE 'p%'.
func StrPrefix(c int, p string) Pred {
	return func(b *storage.Batch, i int) bool { return strings.HasPrefix(b.Cols[c].Str[i], p) }
}

// StrContains holds for LIKE '%p%'.
func StrContains(c int, p string) Pred {
	return func(b *storage.Batch, i int) bool { return strings.Contains(b.Cols[c].Str[i], p) }
}

// Like matches a SQL LIKE pattern with % wildcards (no '_' support:
// TPC-H does not use it).
func Like(c int, pattern string) Pred {
	return func(b *storage.Batch, i int) bool { return storage.MatchLike(b.Cols[c].Str[i], pattern) }
}

// DivDecConst divides a decimal expression by an integer constant
// (truncating), e.g. sum(l_extendedprice) / 7.
func DivDecConst(e Expr, c int64) Expr {
	return func(b *storage.Batch, i int) Val {
		v := e(b, i)
		if v.Null {
			return v
		}
		return Val{I: v.I / c}
	}
}

// Ratio computes a×scale/b over two integer-backed expressions
// (truncating). With scale=10000 the result of two decimal sums is a
// percentage in hundredths (Q14); with scale=100 it is a plain two-decimal
// ratio (Q8).
func Ratio(a, b Expr, scale int64) Expr {
	return func(batch *storage.Batch, i int) Val {
		x, y := a(batch, i), b(batch, i)
		if x.Null || y.Null || y.I == 0 {
			return Val{Null: true}
		}
		return Val{I: x.I * scale / y.I}
	}
}

// Substr returns s[from:from+n] of a string column (byte offsets; TPC-H
// only slices ASCII phone numbers).
func Substr(c int, from, n int) Expr {
	return func(b *storage.Batch, i int) Val {
		s := b.Cols[c].Str[i]
		if from >= len(s) {
			return Val{S: ""}
		}
		end := from + n
		if end > len(s) {
			end = len(s)
		}
		return Val{S: s[from:end]}
	}
}

// StrPrefixIn holds when the first n bytes of a string column are one of
// the given values (Q22 country codes).
func StrPrefixIn(c int, n int, vs ...string) Pred {
	set := make(map[string]struct{}, len(vs))
	for _, v := range vs {
		set[v] = struct{}{}
	}
	return func(b *storage.Batch, i int) bool {
		s := b.Cols[c].Str[i]
		if len(s) < n {
			return false
		}
		_, ok := set[s[:n]]
		return ok
	}
}
