package op

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// JoinType selects the join semantics. All joins are probe-side oriented:
// the build side is materialized into a hash table, the probe side streams.
type JoinType int

const (
	// Inner emits probe⨝build combinations.
	Inner JoinType = iota
	// LeftOuter preserves probe rows without matches (build columns NULL).
	LeftOuter
	// Semi emits probe rows that have at least one match.
	Semi
	// Anti emits probe rows that have no match.
	Anti
)

func (t JoinType) String() string {
	switch t {
	case Inner:
		return "inner"
	case LeftOuter:
		return "leftouter"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	default:
		return fmt.Sprintf("JoinType(%d)", int(t))
	}
}

// ResidualPred evaluates a non-equality join condition over a matched
// (probe row, build row) pair.
type ResidualPred func(probe *storage.Batch, pi int, build *storage.Batch, bi int) bool

// HashTable is the shared build-side state of a hash join: a chained
// index over the consolidated build batch. heads is a power-of-two bucket
// array sized once from the exact build cardinality (no rehash, no
// per-bucket slice allocations — the old map[uint32][]int32 paid both);
// next chains build rows within a bucket in ascending row order.
type HashTable struct {
	Build *storage.Batch
	Keys  []int
	mask  uint32
	heads []int32 // bucket → first build row, -1 = empty
	next  []int32 // build row → next row in its bucket, -1 = end
}

// First returns the first candidate build row for a hash (-1 if none).
// Buckets may mix different key hashes; KeyEq filters false candidates.
func (h *HashTable) First(hash uint32) int32 { return h.heads[hash&h.mask] }

// Next returns the next candidate after build row i (-1 at chain end).
func (h *HashTable) Next(i int32) int32 { return h.next[i] }

// KeyEq checks key equality between build row bi and probe row pi.
func (h *HashTable) KeyEq(bi int32, probe *storage.Batch, probeKeys []int, pi int) bool {
	for k, bk := range h.Keys {
		bc := h.Build.Cols[bk]
		pc := probe.Cols[probeKeys[k]]
		if bc.IsNull(int(bi)) || pc.IsNull(pi) {
			return false
		}
		switch bc.Type {
		case storage.TString:
			if bc.Str[bi] != pc.Str[pi] {
				return false
			}
		case storage.TFloat64:
			if bc.F64[bi] != pc.F64[pi] {
				return false
			}
		default:
			if bc.I64[bi] != pc.I64[pi] {
				return false
			}
		}
	}
	return true
}

// Size returns the number of build rows.
func (h *HashTable) Size() int { return h.Build.Rows() }

// JoinBuild is the build-side pipeline breaker: workers collect morsels
// into per-worker shards (no shared lock on the hot path), Finalize
// consolidates them and builds the hash table.
//
// Duplicate-build invariant (skew-adaptive joins): under the SkewAdaptive
// strategy the build rows of a hot key are replicated to every server, so
// this server's table may hold "duplicate" partitions — build rows whose
// key it does not own. That is correct as long as (a) each build tuple is
// routed to any given server at most once (the send-side routes each
// tuple either to its owner or to the broadcast stream, never both) and
// (b) each probe tuple is processed on exactly one server (hot probe
// tuples stay on their origin server, cold ones go to the key's owner).
// The hash table itself chains every received row; it must NOT
// deduplicate keys — two build tuples with equal keys are distinct match
// partners, replicated copies of one tuple never share a server.
type JoinBuild struct {
	Keys   []int
	Schema *storage.Schema

	shards [joinBuildShards]joinBuildShard
	ht     *HashTable
}

// joinBuildShards spreads concurrent Consume calls over independent
// locks; workers map onto shards by id.
const joinBuildShards = 8

type joinBuildShard struct {
	mu      sync.Mutex
	batches []*storage.Batch
	rows    int
	// Pad the 40 payload bytes to 128 (a 64-byte multiple) so adjacent
	// shards never share a cache line.
	_pad [11]uint64
}

// NewJoinBuild creates a build sink keyed on the given columns of schema.
func NewJoinBuild(schema *storage.Schema, keys []int) *JoinBuild {
	return &JoinBuild{Keys: keys, Schema: schema}
}

// ExpectRows pre-sizes the per-shard batch lists from the planner's input
// cardinality estimate (exact for local builds, an upper bound across an
// exchange). morsel is the engine's morsel size. Call before Consume.
func (jb *JoinBuild) ExpectRows(rows, morsel int) {
	if rows <= 0 || morsel <= 0 {
		return
	}
	perShard := rows/morsel/joinBuildShards + 1
	for i := range jb.shards {
		jb.shards[i].batches = make([]*storage.Batch, 0, perShard)
	}
}

// Consume implements engine.Sink.
func (jb *JoinBuild) Consume(w *engine.Worker, b *storage.Batch) {
	idx := 0
	if w != nil {
		idx = w.ID % joinBuildShards
	}
	sh := &jb.shards[idx]
	sh.mu.Lock()
	sh.batches = append(sh.batches, b)
	sh.rows += b.Rows()
	sh.mu.Unlock()
}

// Rows returns the number of build rows collected so far.
func (jb *JoinBuild) Rows() int {
	n := 0
	for i := range jb.shards {
		sh := &jb.shards[i]
		sh.mu.Lock()
		n += sh.rows
		sh.mu.Unlock()
	}
	return n
}

// Finalize consolidates the collected batches (in shard order, so the
// layout does not depend on consume interleaving beyond batch arrival
// order) and builds the table.
func (jb *JoinBuild) Finalize() error {
	build := storage.NewBatch(jb.Schema, jb.Rows())
	for i := range jb.shards {
		sh := &jb.shards[i]
		for _, b := range sh.batches {
			for r := 0; r < b.Rows(); r++ {
				build.AppendRowFrom(b, r)
			}
		}
		sh.batches = nil
	}
	// The index is built once here from the exact observed cardinality —
	// there is no rehash-during-build to kill. Rows are inserted in
	// descending order (push-front), so chains iterate ascending, matching
	// the append order of the old map-based table.
	rows := build.Rows()
	buckets := nextPow2(rows)
	heads := make([]int32, buckets)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int32, rows)
	mask := uint32(buckets - 1)
	for i := rows - 1; i >= 0; i-- {
		h := storage.HashRow(build, jb.Keys, i) & mask
		next[i] = heads[h]
		heads[h] = int32(i)
	}
	jb.ht = &HashTable{Build: build, Keys: jb.Keys, mask: mask, heads: heads, next: next}
	return nil
}

// nextPow2 returns the smallest power of two ≥ n (min 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Table returns the built hash table (after Finalize).
func (jb *JoinBuild) Table() *HashTable {
	if jb.ht == nil {
		panic("op: JoinBuild.Table before Finalize")
	}
	return jb.ht
}

// JoinProbe is the probe-side operator.
type JoinProbe struct {
	Build     *JoinBuild
	Type      JoinType
	ProbeKeys []int
	Residual  ResidualPred // optional

	// Output column selection: probe columns first, then build columns.
	// For Semi/Anti only probe columns are emitted.
	ProbeCols []int
	BuildCols []int
	Schema    *storage.Schema

	// rowsIn/rowsOut feed the running match-rate estimate that pre-sizes
	// the output batch: expanding joins stop regrowing mid-morsel,
	// selective joins stop over-allocating the full b.Rows() guess.
	rowsIn  atomic.Uint64
	rowsOut atomic.Uint64
}

// NewJoinProbe constructs the probe operator. probeSchema is the schema of
// the probe stream; probeCols/buildCols select the output (pruning unused
// columns as early as possible, §3.2.1). For LeftOuter, emitted build
// columns become nullable in the output schema.
func NewJoinProbe(build *JoinBuild, typ JoinType, probeSchema *storage.Schema,
	probeKeys []int, probeCols, buildCols []int, residual ResidualPred) *JoinProbe {

	if len(probeKeys) != len(build.Keys) {
		panic(fmt.Sprintf("op: probe has %d keys, build %d", len(probeKeys), len(build.Keys)))
	}
	out := &storage.Schema{}
	for _, c := range probeCols {
		out.Fields = append(out.Fields, probeSchema.Fields[c])
	}
	if typ == Inner || typ == LeftOuter {
		for _, c := range buildCols {
			f := build.Schema.Fields[c]
			if typ == LeftOuter {
				f.Nullable = true
			}
			out.Fields = append(out.Fields, f)
		}
	} else {
		buildCols = nil
	}
	return &JoinProbe{
		Build:     build,
		Type:      typ,
		ProbeKeys: probeKeys,
		Residual:  residual,
		ProbeCols: probeCols,
		BuildCols: buildCols,
		Schema:    out,
	}
}

// OpName implements engine.NamedOp.
func (jp *JoinProbe) OpName() string { return "probe(" + jp.Type.String() + ")" }

// Process implements engine.Op.
func (jp *JoinProbe) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	ht := jp.Build.Table()
	out := storage.NewBatch(jp.Schema, jp.outCap(b.Rows()))
	for i := 0; i < b.Rows(); i++ {
		matched := false
		for bi := ht.First(storage.HashRow(b, jp.ProbeKeys, i)); bi >= 0; bi = ht.Next(bi) {
			if !ht.KeyEq(bi, b, jp.ProbeKeys, i) {
				continue
			}
			if jp.Residual != nil && !jp.Residual(b, i, ht.Build, int(bi)) {
				continue
			}
			matched = true
			switch jp.Type {
			case Inner, LeftOuter:
				jp.emit(out, b, i, ht.Build, int(bi))
			case Semi:
				// One match suffices.
			case Anti:
				// A match disqualifies the probe row.
			}
			if jp.Type != Inner && jp.Type != LeftOuter {
				break
			}
		}
		switch jp.Type {
		case Semi:
			if matched {
				jp.emitProbeOnly(out, b, i)
			}
		case Anti:
			if !matched {
				jp.emitProbeOnly(out, b, i)
			}
		case LeftOuter:
			if !matched {
				jp.emitProbeWithNulls(out, b, i)
			}
		}
	}
	jp.rowsIn.Add(uint64(b.Rows()))
	jp.rowsOut.Add(uint64(out.Rows()))
	if out.Rows() == 0 {
		return nil
	}
	return out
}

// outCap estimates the output size of a morsel with n probe rows from the
// observed match rate, with ~12% headroom; the first morsel falls back to
// the neutral n guess.
func (jp *JoinProbe) outCap(n int) int {
	in := jp.rowsIn.Load()
	if in == 0 {
		return n
	}
	est := int(float64(jp.rowsOut.Load())/float64(in)*float64(n)) + n/8 + 8
	if est < 1 {
		est = 1
	}
	return est
}

func (jp *JoinProbe) emit(out, probe *storage.Batch, pi int, build *storage.Batch, bi int) {
	c := 0
	for _, pc := range jp.ProbeCols {
		out.Cols[c].AppendFrom(probe.Cols[pc], pi)
		c++
	}
	for _, bc := range jp.BuildCols {
		out.Cols[c].AppendFrom(build.Cols[bc], bi)
		c++
	}
}

func (jp *JoinProbe) emitProbeOnly(out, probe *storage.Batch, pi int) {
	for c, pc := range jp.ProbeCols {
		out.Cols[c].AppendFrom(probe.Cols[pc], pi)
	}
}

func (jp *JoinProbe) emitProbeWithNulls(out, probe *storage.Batch, pi int) {
	c := 0
	for _, pc := range jp.ProbeCols {
		out.Cols[c].AppendFrom(probe.Cols[pc], pi)
		c++
	}
	for range jp.BuildCols {
		out.Cols[c].AppendNull()
		c++
	}
}
