package op

import (
	"fmt"
	"testing"
	"testing/quick"

	"hsqp/internal/engine"
	"hsqp/internal/numa"
	"hsqp/internal/storage"
)

func testEngine(t *testing.T, workers int) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{Topology: numa.TwoSocket(), Workers: workers, MorselSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func intBatch(n int) *storage.Batch {
	s := storage.NewSchema(
		storage.Field{Name: "k", Type: storage.TInt64},
		storage.Field{Name: "v", Type: storage.TInt64},
	)
	b := storage.NewBatch(s, n)
	for i := 0; i < n; i++ {
		b.AppendRow(int64(i), int64(i%10))
	}
	return b
}

func tableOf(b *storage.Batch, topo *numa.Topology) *storage.Table {
	t := storage.NewTable("t", b.Schema)
	t.DistributeToSockets(b, topo)
	return t
}

func TestFilterKeepsMatching(t *testing.T) {
	f := &Filter{Pred: I64LT(0, 10)}
	b := intBatch(100)
	out := f.Process(nil, b)
	if out.Rows() != 10 {
		t.Fatalf("filtered to %d rows, want 10", out.Rows())
	}
	// All-pass returns the input unchanged (no copy).
	all := &Filter{Pred: I64GE(0, 0)}
	if got := all.Process(nil, b); got != b {
		t.Fatal("all-pass filter copied the batch")
	}
	// None-pass returns nil.
	none := &Filter{Pred: I64LT(0, 0)}
	if got := none.Process(nil, b); got != nil {
		t.Fatal("none-pass filter returned rows")
	}
}

func TestProjectSharesColumns(t *testing.T) {
	b := intBatch(10)
	p := NewProject(b.Schema, []int{1})
	out := p.Process(nil, b)
	if out.Schema.Fields[0].Name != "v" || out.Rows() != 10 {
		t.Fatalf("projection wrong: %v", out.Schema)
	}
	if out.Cols[0] != b.Cols[1] {
		t.Fatal("projection should share column storage")
	}
}

func TestMapComputes(t *testing.T) {
	b := intBatch(5)
	m := NewMap(b.Schema, []NamedExpr{{
		Name: "sum", Type: storage.TInt64,
		Expr: func(b *storage.Batch, i int) Val {
			return Val{I: b.Cols[0].I64[i] + b.Cols[1].I64[i]}
		},
	}})
	out := m.Process(nil, b)
	for i := 0; i < 5; i++ {
		if out.Cols[2].I64[i] != b.Cols[0].I64[i]+b.Cols[1].I64[i] {
			t.Fatalf("row %d wrong", i)
		}
	}
}

func runJoin(t *testing.T, typ JoinType, residual ResidualPred) *storage.Batch {
	t.Helper()
	e := testEngine(t, 4)
	topo := e.Topology()

	buildSchema := storage.NewSchema(
		storage.Field{Name: "bk", Type: storage.TInt64},
		storage.Field{Name: "bv", Type: storage.TString},
	)
	build := storage.NewBatch(buildSchema, 8)
	for i := 0; i < 8; i++ {
		build.AppendRow(int64(i), fmt.Sprintf("b%d", i))
	}
	probe := intBatch(100) // k: 0..99, v: k%10

	jb := NewJoinBuild(buildSchema, []int{0})
	if err := e.RunPipeline(&engine.Pipeline{
		Name:   "build",
		Source: NewTableSource(tableOf(build, topo), topo.Sockets, 16),
		Sink:   jb,
	}); err != nil {
		t.Fatal(err)
	}
	var buildCols []int
	if typ == Inner || typ == LeftOuter {
		buildCols = []int{1}
	}
	probeOp := NewJoinProbe(jb, typ, probe.Schema, []int{1}, []int{0, 1}, buildCols, residual)
	col := &Collector{}
	if err := e.RunPipeline(&engine.Pipeline{
		Name:   "probe",
		Source: NewTableSource(tableOf(probe, topo), topo.Sockets, 16),
		Ops:    []engine.Op{probeOp},
		Sink:   col,
	}); err != nil {
		t.Fatal(err)
	}
	return col.Flatten(probeOp.Schema)
}

func TestHashJoinTypes(t *testing.T) {
	// probe.v ∈ 0..9; build.bk ∈ 0..7 → v 0..7 match (80 rows), 8..9 not.
	inner := runJoin(t, Inner, nil)
	if inner.Rows() != 80 {
		t.Fatalf("inner: %d rows, want 80", inner.Rows())
	}
	semi := runJoin(t, Semi, nil)
	if semi.Rows() != 80 {
		t.Fatalf("semi: %d rows, want 80", semi.Rows())
	}
	anti := runJoin(t, Anti, nil)
	if anti.Rows() != 20 {
		t.Fatalf("anti: %d rows, want 20", anti.Rows())
	}
	outer := runJoin(t, LeftOuter, nil)
	if outer.Rows() != 100 {
		t.Fatalf("leftouter: %d rows, want 100", outer.Rows())
	}
	nulls := 0
	for i := 0; i < outer.Rows(); i++ {
		if outer.Cols[2].IsNull(i) {
			nulls++
		}
	}
	if nulls != 20 {
		t.Fatalf("leftouter: %d NULL build values, want 20", nulls)
	}
}

func TestJoinResidual(t *testing.T) {
	// Residual keeps only probe rows with k < 50.
	res := func(probe *storage.Batch, pi int, _ *storage.Batch, _ int) bool {
		return probe.Cols[0].I64[pi] < 50
	}
	inner := runJoin(t, Inner, res)
	if inner.Rows() != 40 {
		t.Fatalf("residual inner: %d rows, want 40", inner.Rows())
	}
	anti := runJoin(t, Anti, res)
	// Anti: no match ⇔ v ∈ {8,9} or k ≥ 50 → 20 + 40 (k≥50, v≤7) = 60.
	if anti.Rows() != 60 {
		t.Fatalf("residual anti: %d rows, want 60", anti.Rows())
	}
}

func TestGroupByParallelMatchesSequential(t *testing.T) {
	b := intBatch(5000)
	topo := numa.TwoSocket()
	want := map[int64]int64{}
	for i := 0; i < b.Rows(); i++ {
		want[b.Cols[1].I64[i]] += b.Cols[0].I64[i]
	}
	for _, workers := range []int{1, 4, 8} {
		e := testEngine(t, workers)
		gb := NewGroupBy(b.Schema, []int{1}, []AggSpec{
			{Kind: Sum, Name: "s", Arg: Col(0), ArgType: storage.TInt64},
			{Kind: Count, Name: "c"},
			{Kind: Min, Name: "mn", Arg: Col(0), ArgType: storage.TInt64},
			{Kind: Max, Name: "mx", Arg: Col(0), ArgType: storage.TInt64},
			{Kind: Avg, Name: "av", Arg: Col(0), ArgType: storage.TInt64},
		}, e.Workers())
		if err := e.RunPipeline(&engine.Pipeline{
			Name:   "agg",
			Source: NewTableSource(tableOf(b, topo), topo.Sockets, 64),
			Sink:   gb,
		}); err != nil {
			t.Fatal(err)
		}
		out := gb.FinalBatches()[0]
		if out.Rows() != len(want) {
			t.Fatalf("workers=%d: %d groups, want %d", workers, out.Rows(), len(want))
		}
		for i := 0; i < out.Rows(); i++ {
			k := out.Cols[0].I64[i]
			if out.Cols[1].I64[i] != want[k] {
				t.Fatalf("workers=%d group %d: sum %d want %d", workers, k, out.Cols[1].I64[i], want[k])
			}
			if out.Cols[2].I64[i] != 500 {
				t.Fatalf("count %d, want 500", out.Cols[2].I64[i])
			}
			if out.Cols[3].I64[i] != k { // min of i with i%10==k is k itself
				t.Fatalf("min %d want %d", out.Cols[3].I64[i], k)
			}
			if out.Cols[4].I64[i] != 4990+k {
				t.Fatalf("max %d want %d", out.Cols[4].I64[i], 4990+k)
			}
			if out.Cols[5].I64[i] != want[k]/500 {
				t.Fatalf("avg %d want %d", out.Cols[5].I64[i], want[k]/500)
			}
		}
	}
}

func TestPartialMergeEqualsDirect(t *testing.T) {
	// Property: partial aggregation + merge must equal direct aggregation.
	b := intBatch(3000)
	topo := numa.TwoSocket()
	aggs := []AggSpec{
		{Kind: Sum, Name: "s", Arg: Col(0), ArgType: storage.TInt64},
		{Kind: Count, Name: "c"},
		{Kind: Avg, Name: "a", Arg: Col(0), ArgType: storage.TInt64},
		{Kind: Min, Name: "mn", Arg: Col(0), ArgType: storage.TInt64},
	}
	e := testEngine(t, 4)
	direct := NewGroupBy(b.Schema, []int{1}, aggs, e.Workers())
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "direct", Source: NewTableSource(tableOf(b, topo), topo.Sockets, 64), Sink: direct,
	}); err != nil {
		t.Fatal(err)
	}
	partial := NewGroupBy(b.Schema, []int{1}, aggs, e.Workers())
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "partial", Source: NewTableSource(tableOf(b, topo), topo.Sockets, 64), Sink: partial,
	}); err != nil {
		t.Fatal(err)
	}
	ps := partial.PartialSchema()
	merge := NewGroupBy(ps, []int{0}, MergeSpecs(aggs, 1), e.Workers())
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "merge", Source: NewBatchSource(partial.PartialBatches()), Sink: merge,
	}); err != nil {
		t.Fatal(err)
	}
	d := direct.FinalBatches()[0]
	m := merge.FinalBatches()[0]
	if d.Rows() != m.Rows() {
		t.Fatalf("group counts differ: %d vs %d", d.Rows(), m.Rows())
	}
	index := map[int64][]any{}
	for i := 0; i < d.Rows(); i++ {
		index[d.Cols[0].I64[i]] = d.Row(i)
	}
	for i := 0; i < m.Rows(); i++ {
		want := index[m.Cols[0].I64[i]]
		got := m.Row(i)
		for c := range got {
			if got[c] != want[c] {
				t.Fatalf("group %d col %d: %v vs %v", m.Cols[0].I64[i], c, got[c], want[c])
			}
		}
	}
}

func TestScalarAggEmptyInput(t *testing.T) {
	e := testEngine(t, 2)
	schema := intBatch(0).Schema
	gb := NewGroupBy(schema, nil, []AggSpec{
		{Kind: Count, Name: "c"},
		{Kind: Sum, Name: "s", Arg: Col(0), ArgType: storage.TInt64},
	}, e.Workers())
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "scalar", Source: NewBatchSource(nil), Sink: gb,
	}); err != nil {
		t.Fatal(err)
	}
	out := gb.FinalBatches()[0]
	if out.Rows() != 1 || out.Cols[0].I64[0] != 0 || out.Cols[1].I64[0] != 0 {
		t.Fatalf("empty scalar agg: %v", out.Row(0))
	}
}

func TestTopKOrderAndLimit(t *testing.T) {
	e := testEngine(t, 4)
	topo := e.Topology()
	b := intBatch(1000)
	tk := NewTopK(b.Schema, []SortKey{{Col: 0, Desc: true}}, 7)
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "topk", Source: NewTableSource(tableOf(b, topo), topo.Sockets, 64), Sink: tk,
	}); err != nil {
		t.Fatal(err)
	}
	out := tk.Batches()[0]
	if out.Rows() != 7 {
		t.Fatalf("rows %d", out.Rows())
	}
	for i := 0; i < 7; i++ {
		if out.Cols[0].I64[i] != int64(999-i) {
			t.Fatalf("rank %d: %d", i, out.Cols[0].I64[i])
		}
	}
}

func TestGroupJoinMatchesAggThenJoin(t *testing.T) {
	e := testEngine(t, 4)
	topo := e.Topology()
	buildSchema := storage.NewSchema(storage.Field{Name: "gk", Type: storage.TInt64})
	build := storage.NewBatch(buildSchema, 5)
	for i := 0; i < 5; i++ {
		build.AppendRow(int64(i))
	}
	probe := intBatch(1000) // v = k%10; groups 0..4 match

	gjb := NewGroupJoinBuild(buildSchema, []int{0}, []AggSpec{
		{Kind: Sum, Name: "s", Arg: Col(0), ArgType: storage.TInt64},
		{Kind: Count, Name: "c"},
	})
	if err := e.RunPipeline(&engine.Pipeline{
		Name: "gj-build", Source: NewTableSource(tableOf(build, topo), topo.Sockets, 16), Sink: gjb,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunPipeline(&engine.Pipeline{
		Name:   "gj-probe",
		Source: NewTableSource(tableOf(probe, topo), topo.Sockets, 64),
		Sink:   &GroupJoinProbe{Build: gjb, ProbeKeys: []int{1}},
	}); err != nil {
		t.Fatal(err)
	}
	out := gjb.ResultBatches()[0]
	if out.Rows() != 5 {
		t.Fatalf("%d matched groups, want 5", out.Rows())
	}
	want := map[int64]int64{}
	for i := 0; i < probe.Rows(); i++ {
		want[probe.Cols[1].I64[i]] += probe.Cols[0].I64[i]
	}
	for i := 0; i < out.Rows(); i++ {
		g := out.Cols[0].I64[i]
		if out.Cols[1].I64[i] != want[g] {
			t.Fatalf("group %d: sum %d want %d", g, out.Cols[1].I64[i], want[g])
		}
		if out.Cols[2].I64[i] != 100 {
			t.Fatalf("group %d: count %d want 100", g, out.Cols[2].I64[i])
		}
	}
}

func TestExprHelpers(t *testing.T) {
	s := storage.NewSchema(
		storage.Field{Name: "d", Type: storage.TDecimal},
		storage.Field{Name: "dt", Type: storage.TDate},
		storage.Field{Name: "s", Type: storage.TString},
	)
	b := storage.NewBatch(s, 1)
	b.AppendRow(int64(250), storage.MustDate("1997-03-15"), "49-123-456-7890")

	if MulDec(Col(0), ConstI(200))(b, 0).I != 500 { // 2.50 × 2.00
		t.Fatal("MulDec")
	}
	if SubDecConst(100, Col(0))(b, 0).I != -150 {
		t.Fatal("SubDecConst")
	}
	if AddDecConst(100, Col(0))(b, 0).I != 350 {
		t.Fatal("AddDecConst")
	}
	if Year(1)(b, 0).I != 1997 {
		t.Fatal("Year")
	}
	if DivDecConst(Col(0), 7)(b, 0).I != 35 {
		t.Fatal("DivDecConst")
	}
	if Ratio(Col(0), ConstI(1000), 100)(b, 0).I != 25 {
		t.Fatal("Ratio")
	}
	if Substr(2, 0, 2)(b, 0).S != "49" {
		t.Fatal("Substr")
	}
	if !StrPrefixIn(2, 2, "49", "13")(b, 0) {
		t.Fatal("StrPrefixIn")
	}
	if CaseWhen(I64GT(0, 0), ConstI(1), ConstI(2))(b, 0).I != 1 {
		t.Fatal("CaseWhen")
	}
}

func TestPredicateCombinators(t *testing.T) {
	b := intBatch(1)
	tr := func(*storage.Batch, int) bool { return true }
	fa := func(*storage.Batch, int) bool { return false }
	if !And(tr, tr)(b, 0) || And(tr, fa)(b, 0) {
		t.Fatal("And")
	}
	if !Or(fa, tr)(b, 0) || Or(fa, fa)(b, 0) {
		t.Fatal("Or")
	}
	if Not(tr)(b, 0) {
		t.Fatal("Not")
	}
}

func TestCompareRowsProperty(t *testing.T) {
	s := storage.NewSchema(storage.Field{Name: "x", Type: storage.TInt64})
	keys := []SortKey{{Col: 0}}
	f := func(a, b int64) bool {
		ba := storage.NewBatch(s, 1)
		ba.AppendRow(a)
		bb := storage.NewBatch(s, 1)
		bb.AppendRow(b)
		cmp := CompareRows(ba, 0, bb, 0, keys)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
