package op

import (
	"hsqp/internal/engine"
	"hsqp/internal/storage"
)

// Filter keeps the rows satisfying the predicate.
type Filter struct {
	Pred Pred
}

// Process implements engine.Op.
func (f *Filter) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	n := b.Rows()
	// First pass: find the passing rows; avoid copying when all pass.
	var keep []int
	allPass := true
	for i := 0; i < n; i++ {
		if f.Pred(b, i) {
			if !allPass {
				keep = append(keep, i)
			}
		} else if allPass {
			keep = make([]int, i, n)
			for j := 0; j < i; j++ {
				keep[j] = j
			}
			allPass = false
		}
	}
	if allPass {
		return b
	}
	if len(keep) == 0 {
		return nil
	}
	out := storage.NewBatch(b.Schema, len(keep))
	for _, i := range keep {
		out.AppendRowFrom(b, i)
	}
	return out
}

// Project keeps (and reorders) the given columns. Column storage is shared
// with the input: batches are immutable once produced.
type Project struct {
	Cols []int
	// Schema is the output schema (projection of the input schema).
	Schema *storage.Schema
}

// NewProject builds a projection over the input schema.
func NewProject(in *storage.Schema, cols []int) *Project {
	return &Project{Cols: cols, Schema: in.Project(cols)}
}

// Process implements engine.Op.
func (p *Project) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	out := &storage.Batch{Schema: p.Schema, Cols: make([]*storage.Column, len(p.Cols))}
	for i, c := range p.Cols {
		out.Cols[i] = b.Cols[c]
	}
	return out
}

// NamedExpr is a computed output column.
type NamedExpr struct {
	Name string
	Type storage.Type
	Expr Expr
}

// MapOp appends computed columns to the batch (keeping all input columns).
type MapOp struct {
	Exprs []NamedExpr
	// Schema is the output schema: input schema + computed fields.
	Schema *storage.Schema
}

// NewMap builds a map operator over the input schema.
func NewMap(in *storage.Schema, exprs []NamedExpr) *MapOp {
	out := &storage.Schema{Fields: append([]storage.Field{}, in.Fields...)}
	for _, e := range exprs {
		out.Fields = append(out.Fields, storage.Field{Name: e.Name, Type: e.Type})
	}
	return &MapOp{Exprs: exprs, Schema: out}
}

// Process implements engine.Op.
func (m *MapOp) Process(_ *engine.Worker, b *storage.Batch) *storage.Batch {
	n := b.Rows()
	out := &storage.Batch{Schema: m.Schema, Cols: make([]*storage.Column, 0, len(b.Cols)+len(m.Exprs))}
	out.Cols = append(out.Cols, b.Cols...)
	for _, e := range m.Exprs {
		col := storage.NewColumn(e.Type, false, n)
		for i := 0; i < n; i++ {
			v := e.Expr(b, i)
			switch e.Type {
			case storage.TFloat64:
				col.AppendF64(v.F)
			case storage.TString:
				col.AppendStr(v.S)
			default:
				col.AppendI64(v.I)
			}
		}
		out.Cols = append(out.Cols, col)
	}
	return out
}
