package ref

import (
	"hsqp/internal/tpch"
)

func q1(db *tpch.Database, _ float64) *Result {
	l := table(db, "lineitem")
	cutoff := date("1998-09-02")
	type state struct {
		qty, base, disc, charge, discSum int64
		cnt                              int64
	}
	groups := map[[2]string]*state{}
	for i := 0; i < l.rows(); i++ {
		if l.i64("l_shipdate", i) > cutoff {
			continue
		}
		key := [2]string{l.str("l_returnflag", i), l.str("l_linestatus", i)}
		st := groups[key]
		if st == nil {
			st = &state{}
			groups[key] = st
		}
		ext := l.i64("l_extendedprice", i)
		dc := l.i64("l_discount", i)
		tax := l.i64("l_tax", i)
		rev := mulDec(ext, 100-dc)
		st.qty += l.i64("l_quantity", i)
		st.base += ext
		st.disc += rev
		st.charge += mulDec(rev, 100+tax)
		st.discSum += dc
		st.cnt++
	}
	var rows []Row
	for key, st := range groups {
		rows = append(rows, Row{
			key[0], key[1], st.qty, st.base, st.disc, st.charge,
			st.qty / st.cnt, st.base / st.cnt, st.discSum / st.cnt, st.cnt,
		})
	}
	sortRows(rows, []int{0, 1}, []bool{false, false})
	return &Result{
		Cols: []string{"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
			"sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc", "count_order"},
		Rows: rows,
	}
}

func q2(db *tpch.Database, _ float64) *Result {
	nation := table(db, "nation")
	region := table(db, "region")
	supplier := table(db, "supplier")
	part := table(db, "part")
	partsupp := table(db, "partsupp")

	euRegion := map[int64]bool{}
	for i := 0; i < region.rows(); i++ {
		if region.str("r_name", i) == "EUROPE" {
			euRegion[region.i64("r_regionkey", i)] = true
		}
	}
	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		if euRegion[nation.i64("n_regionkey", i)] {
			natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
		}
	}
	type supInfo struct {
		name, address, phone, comment, nation string
		acctbal                               int64
	}
	sups := map[int64]supInfo{}
	for i := 0; i < supplier.rows(); i++ {
		nm, ok := natName[supplier.i64("s_nationkey", i)]
		if !ok {
			continue
		}
		sups[supplier.i64("s_suppkey", i)] = supInfo{
			name:    supplier.str("s_name", i),
			address: supplier.str("s_address", i),
			phone:   supplier.str("s_phone", i),
			comment: supplier.str("s_comment", i),
			nation:  nm,
			acctbal: supplier.i64("s_acctbal", i),
		}
	}
	wantPart := map[int64]string{} // partkey → mfgr
	for i := 0; i < part.rows(); i++ {
		if part.i64("p_size", i) == 15 && like(part.str("p_type", i), "%BRASS") {
			wantPart[part.i64("p_partkey", i)] = part.str("p_mfgr", i)
		}
	}
	// Min supplycost per part over EU suppliers.
	minCost := map[int64]int64{}
	for i := 0; i < partsupp.rows(); i++ {
		pk := partsupp.i64("ps_partkey", i)
		if _, ok := wantPart[pk]; !ok {
			continue
		}
		if _, ok := sups[partsupp.i64("ps_suppkey", i)]; !ok {
			continue
		}
		c := partsupp.i64("ps_supplycost", i)
		if cur, ok := minCost[pk]; !ok || c < cur {
			minCost[pk] = c
		}
	}
	var rows []Row
	for i := 0; i < partsupp.rows(); i++ {
		pk := partsupp.i64("ps_partkey", i)
		mfgr, ok := wantPart[pk]
		if !ok {
			continue
		}
		s, ok := sups[partsupp.i64("ps_suppkey", i)]
		if !ok {
			continue
		}
		if partsupp.i64("ps_supplycost", i) != minCost[pk] {
			continue
		}
		rows = append(rows, Row{s.acctbal, s.name, s.nation, pk, mfgr, s.address, s.phone, s.comment})
	}
	sortRows(rows, []int{0, 2, 1, 3}, []bool{true, false, false, false})
	rows = limit(rows, 100)
	return &Result{
		Cols: []string{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment"},
		Rows: rows,
	}
}

func q3(db *tpch.Database, _ float64) *Result {
	cutoff := date("1995-03-15")
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")

	building := map[int64]bool{}
	for i := 0; i < customer.rows(); i++ {
		if customer.str("c_mktsegment", i) == "BUILDING" {
			building[customer.i64("c_custkey", i)] = true
		}
	}
	type oinfo struct {
		date, prio int64
	}
	want := map[int64]oinfo{}
	for i := 0; i < orders.rows(); i++ {
		if orders.i64("o_orderdate", i) < cutoff && building[orders.i64("o_custkey", i)] {
			want[orders.i64("o_orderkey", i)] = oinfo{
				date: orders.i64("o_orderdate", i),
				prio: orders.i64("o_shippriority", i),
			}
		}
	}
	type key struct {
		ok, date, prio int64
	}
	rev := map[key]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		if lineitem.i64("l_shipdate", i) <= cutoff {
			continue
		}
		ok := lineitem.i64("l_orderkey", i)
		o, found := want[ok]
		if !found {
			continue
		}
		rev[key{ok, o.date, o.prio}] += mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
	}
	var rows []Row
	for k, r := range rev {
		rows = append(rows, Row{k.ok, r, k.date, k.prio})
	}
	sortRows(rows, []int{1, 2}, []bool{true, false})
	rows = limit(rows, 10)
	return &Result{Cols: []string{"l_orderkey", "revenue", "o_orderdate", "o_shippriority"}, Rows: rows}
}

func q4(db *tpch.Database, _ float64) *Result {
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	lo, hi := date("1993-07-01"), date("1993-10-01")

	late := map[int64]bool{}
	for i := 0; i < lineitem.rows(); i++ {
		if lineitem.i64("l_commitdate", i) < lineitem.i64("l_receiptdate", i) {
			late[lineitem.i64("l_orderkey", i)] = true
		}
	}
	counts := map[string]int64{}
	for i := 0; i < orders.rows(); i++ {
		d := orders.i64("o_orderdate", i)
		if d >= lo && d < hi && late[orders.i64("o_orderkey", i)] {
			counts[orders.str("o_orderpriority", i)]++
		}
	}
	var rows []Row
	for p, c := range counts {
		rows = append(rows, Row{p, c})
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"o_orderpriority", "order_count"}, Rows: rows}
}

func q5(db *tpch.Database, _ float64) *Result {
	nation := table(db, "nation")
	region := table(db, "region")
	supplier := table(db, "supplier")
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	lo, hi := date("1994-01-01"), date("1995-01-01")

	asia := map[int64]bool{}
	for i := 0; i < region.rows(); i++ {
		if region.str("r_name", i) == "ASIA" {
			asia[region.i64("r_regionkey", i)] = true
		}
	}
	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		if asia[nation.i64("n_regionkey", i)] {
			natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
		}
	}
	supNation := map[int64]int64{} // suppkey → nationkey (Asia only)
	for i := 0; i < supplier.rows(); i++ {
		nk := supplier.i64("s_nationkey", i)
		if _, ok := natName[nk]; ok {
			supNation[supplier.i64("s_suppkey", i)] = nk
		}
	}
	custNation := map[int64]int64{}
	for i := 0; i < customer.rows(); i++ {
		custNation[customer.i64("c_custkey", i)] = customer.i64("c_nationkey", i)
	}
	orderCustNation := map[int64]int64{} // orderkey → cust nationkey for date-filtered orders
	for i := 0; i < orders.rows(); i++ {
		d := orders.i64("o_orderdate", i)
		if d >= lo && d < hi {
			orderCustNation[orders.i64("o_orderkey", i)] = custNation[orders.i64("o_custkey", i)]
		}
	}
	revByNation := map[string]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		cnk, ok := orderCustNation[lineitem.i64("l_orderkey", i)]
		if !ok {
			continue
		}
		snk, ok := supNation[lineitem.i64("l_suppkey", i)]
		if !ok || snk != cnk {
			continue
		}
		revByNation[natName[snk]] += mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
	}
	var rows []Row
	for n, r := range revByNation {
		rows = append(rows, Row{n, r})
	}
	sortRows(rows, []int{1}, []bool{true})
	return &Result{Cols: []string{"n_name", "revenue"}, Rows: rows}
}

func q6(db *tpch.Database, _ float64) *Result {
	lineitem := table(db, "lineitem")
	lo, hi := date("1994-01-01"), date("1995-01-01")
	var sum int64
	for i := 0; i < lineitem.rows(); i++ {
		d := lineitem.i64("l_shipdate", i)
		disc := lineitem.i64("l_discount", i)
		if d >= lo && d < hi && disc >= 5 && disc <= 7 && lineitem.i64("l_quantity", i) < 24*100 {
			sum += mulDec(lineitem.i64("l_extendedprice", i), disc)
		}
	}
	return &Result{Cols: []string{"revenue"}, Rows: []Row{{sum}}}
}

func q7(db *tpch.Database, _ float64) *Result {
	nation := table(db, "nation")
	supplier := table(db, "supplier")
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	lo, hi := date("1995-01-01"), date("1996-12-31")

	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
	}
	interesting := func(n string) bool { return n == "FRANCE" || n == "GERMANY" }
	supNation := map[int64]string{}
	for i := 0; i < supplier.rows(); i++ {
		if n := natName[supplier.i64("s_nationkey", i)]; interesting(n) {
			supNation[supplier.i64("s_suppkey", i)] = n
		}
	}
	custNation := map[int64]string{}
	for i := 0; i < customer.rows(); i++ {
		if n := natName[customer.i64("c_nationkey", i)]; interesting(n) {
			custNation[customer.i64("c_custkey", i)] = n
		}
	}
	orderCustNation := map[int64]string{}
	for i := 0; i < orders.rows(); i++ {
		if n, ok := custNation[orders.i64("o_custkey", i)]; ok {
			orderCustNation[orders.i64("o_orderkey", i)] = n
		}
	}
	type key struct {
		sn, cn string
		yr     int64
	}
	vol := map[key]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		d := lineitem.i64("l_shipdate", i)
		if d < lo || d > hi {
			continue
		}
		sn, ok := supNation[lineitem.i64("l_suppkey", i)]
		if !ok {
			continue
		}
		cn, ok := orderCustNation[lineitem.i64("l_orderkey", i)]
		if !ok || sn == cn {
			continue
		}
		vol[key{sn, cn, year(d)}] += mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
	}
	var rows []Row
	for k, v := range vol {
		rows = append(rows, Row{k.sn, k.cn, k.yr, v})
	}
	sortRows(rows, []int{0, 1, 2}, []bool{false, false, false})
	return &Result{Cols: []string{"supp_nation", "cust_nation", "l_year", "revenue"}, Rows: rows}
}

func q8(db *tpch.Database, _ float64) *Result {
	nation := table(db, "nation")
	region := table(db, "region")
	supplier := table(db, "supplier")
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	part := table(db, "part")
	lo, hi := date("1995-01-01"), date("1996-12-31")

	wantPart := map[int64]bool{}
	for i := 0; i < part.rows(); i++ {
		if part.str("p_type", i) == "ECONOMY ANODIZED STEEL" {
			wantPart[part.i64("p_partkey", i)] = true
		}
	}
	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
	}
	america := map[int64]bool{}
	for i := 0; i < region.rows(); i++ {
		if region.str("r_name", i) == "AMERICA" {
			america[region.i64("r_regionkey", i)] = true
		}
	}
	amNation := map[int64]bool{}
	for i := 0; i < nation.rows(); i++ {
		if america[nation.i64("n_regionkey", i)] {
			amNation[nation.i64("n_nationkey", i)] = true
		}
	}
	supNation := map[int64]string{}
	for i := 0; i < supplier.rows(); i++ {
		supNation[supplier.i64("s_suppkey", i)] = natName[supplier.i64("s_nationkey", i)]
	}
	amCust := map[int64]bool{}
	for i := 0; i < customer.rows(); i++ {
		if amNation[customer.i64("c_nationkey", i)] {
			amCust[customer.i64("c_custkey", i)] = true
		}
	}
	orderDate := map[int64]int64{}
	for i := 0; i < orders.rows(); i++ {
		d := orders.i64("o_orderdate", i)
		if d >= lo && d <= hi && amCust[orders.i64("o_custkey", i)] {
			orderDate[orders.i64("o_orderkey", i)] = d
		}
	}
	type sums struct{ brazil, total int64 }
	byYear := map[int64]*sums{}
	for i := 0; i < lineitem.rows(); i++ {
		if !wantPart[lineitem.i64("l_partkey", i)] {
			continue
		}
		d, ok := orderDate[lineitem.i64("l_orderkey", i)]
		if !ok {
			continue
		}
		v := mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
		yr := year(d)
		s := byYear[yr]
		if s == nil {
			s = &sums{}
			byYear[yr] = s
		}
		s.total += v
		if supNation[lineitem.i64("l_suppkey", i)] == "BRAZIL" {
			s.brazil += v
		}
	}
	var rows []Row
	for yr, s := range byYear {
		share := int64(0)
		if s.total != 0 {
			share = s.brazil * 100 / s.total
		}
		rows = append(rows, Row{yr, share})
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"o_year", "mkt_share"}, Rows: rows}
}
