package ref

import (
	"strings"

	"hsqp/internal/tpch"
)

func q9(db *tpch.Database, _ float64) *Result {
	part := table(db, "part")
	supplier := table(db, "supplier")
	nation := table(db, "nation")
	partsupp := table(db, "partsupp")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")

	greenPart := map[int64]bool{}
	for i := 0; i < part.rows(); i++ {
		if strings.Contains(part.str("p_name", i), "green") {
			greenPart[part.i64("p_partkey", i)] = true
		}
	}
	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
	}
	supNation := map[int64]string{}
	for i := 0; i < supplier.rows(); i++ {
		supNation[supplier.i64("s_suppkey", i)] = natName[supplier.i64("s_nationkey", i)]
	}
	type psKey struct{ pk, sk int64 }
	supplyCost := map[psKey]int64{}
	for i := 0; i < partsupp.rows(); i++ {
		supplyCost[psKey{partsupp.i64("ps_partkey", i), partsupp.i64("ps_suppkey", i)}] =
			partsupp.i64("ps_supplycost", i)
	}
	orderYear := map[int64]int64{}
	for i := 0; i < orders.rows(); i++ {
		orderYear[orders.i64("o_orderkey", i)] = year(orders.i64("o_orderdate", i))
	}
	type gKey struct {
		nation string
		yr     int64
	}
	profit := map[gKey]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		pk := lineitem.i64("l_partkey", i)
		if !greenPart[pk] {
			continue
		}
		sk := lineitem.i64("l_suppkey", i)
		rev := mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
		cost := mulDec(supplyCost[psKey{pk, sk}], lineitem.i64("l_quantity", i))
		k := gKey{supNation[sk], orderYear[lineitem.i64("l_orderkey", i)]}
		profit[k] += rev - cost
	}
	var rows []Row
	for k, v := range profit {
		rows = append(rows, Row{k.nation, k.yr, v})
	}
	sortRows(rows, []int{0, 1}, []bool{false, true})
	return &Result{Cols: []string{"nation", "o_year", "sum_profit"}, Rows: rows}
}

func q10(db *tpch.Database, _ float64) *Result {
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	nation := table(db, "nation")
	lo, hi := date("1993-10-01"), date("1994-01-01")

	wantOrder := map[int64]int64{} // orderkey → custkey
	for i := 0; i < orders.rows(); i++ {
		d := orders.i64("o_orderdate", i)
		if d >= lo && d < hi {
			wantOrder[orders.i64("o_orderkey", i)] = orders.i64("o_custkey", i)
		}
	}
	revByCust := map[int64]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		if lineitem.str("l_returnflag", i) != "R" {
			continue
		}
		ck, ok := wantOrder[lineitem.i64("l_orderkey", i)]
		if !ok {
			continue
		}
		revByCust[ck] += mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
	}
	natName := map[int64]string{}
	for i := 0; i < nation.rows(); i++ {
		natName[nation.i64("n_nationkey", i)] = nation.str("n_name", i)
	}
	var rows []Row
	for i := 0; i < customer.rows(); i++ {
		ck := customer.i64("c_custkey", i)
		rev, ok := revByCust[ck]
		if !ok {
			continue
		}
		rows = append(rows, Row{
			ck, customer.str("c_name", i), rev, customer.i64("c_acctbal", i),
			natName[customer.i64("c_nationkey", i)], customer.str("c_address", i),
			customer.str("c_phone", i), customer.str("c_comment", i),
		})
	}
	sortRows(rows, []int{2, 0}, []bool{true, false})
	rows = limit(rows, 20)
	return &Result{
		Cols: []string{"c_custkey", "c_name", "revenue", "c_acctbal", "n_name", "c_address", "c_phone", "c_comment"},
		Rows: rows,
	}
}

func q11(db *tpch.Database, sf float64) *Result {
	nation := table(db, "nation")
	supplier := table(db, "supplier")
	partsupp := table(db, "partsupp")

	frac := 0.0001
	if sf > 0 {
		frac = 0.0001 / sf
	}
	germany := map[int64]bool{}
	for i := 0; i < nation.rows(); i++ {
		if nation.str("n_name", i) == "GERMANY" {
			germany[nation.i64("n_nationkey", i)] = true
		}
	}
	deSup := map[int64]bool{}
	for i := 0; i < supplier.rows(); i++ {
		if germany[supplier.i64("s_nationkey", i)] {
			deSup[supplier.i64("s_suppkey", i)] = true
		}
	}
	value := map[int64]int64{}
	var total int64
	for i := 0; i < partsupp.rows(); i++ {
		if !deSup[partsupp.i64("ps_suppkey", i)] {
			continue
		}
		v := mulDec(partsupp.i64("ps_supplycost", i), partsupp.i64("ps_availqty", i)*100)
		value[partsupp.i64("ps_partkey", i)] += v
		total += v
	}
	var rows []Row
	for pk, v := range value {
		if float64(v) > float64(total)*frac {
			rows = append(rows, Row{pk, v})
		}
	}
	sortRows(rows, []int{1}, []bool{true})
	return &Result{Cols: []string{"ps_partkey", "value"}, Rows: rows}
}

func q12(db *tpch.Database, _ float64) *Result {
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")
	lo, hi := date("1994-01-01"), date("1995-01-01")

	prio := map[int64]string{}
	for i := 0; i < orders.rows(); i++ {
		prio[orders.i64("o_orderkey", i)] = orders.str("o_orderpriority", i)
	}
	type counts struct{ high, low int64 }
	byMode := map[string]*counts{}
	for i := 0; i < lineitem.rows(); i++ {
		mode := lineitem.str("l_shipmode", i)
		if mode != "MAIL" && mode != "SHIP" {
			continue
		}
		rd := lineitem.i64("l_receiptdate", i)
		if rd < lo || rd >= hi {
			continue
		}
		if !(lineitem.i64("l_commitdate", i) < rd) ||
			!(lineitem.i64("l_shipdate", i) < lineitem.i64("l_commitdate", i)) {
			continue
		}
		p := prio[lineitem.i64("l_orderkey", i)]
		c := byMode[mode]
		if c == nil {
			c = &counts{}
			byMode[mode] = c
		}
		if p == "1-URGENT" || p == "2-HIGH" {
			c.high++
		} else {
			c.low++
		}
	}
	var rows []Row
	for m, c := range byMode {
		rows = append(rows, Row{m, c.high, c.low})
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"l_shipmode", "high_line_count", "low_line_count"}, Rows: rows}
}

func q13(db *tpch.Database, _ float64) *Result {
	customer := table(db, "customer")
	orders := table(db, "orders")

	perCust := map[int64]int64{}
	for i := 0; i < orders.rows(); i++ {
		if like(orders.str("o_comment", i), "%special%requests%") {
			continue
		}
		perCust[orders.i64("o_custkey", i)]++
	}
	dist := map[int64]int64{}
	for i := 0; i < customer.rows(); i++ {
		dist[perCust[customer.i64("c_custkey", i)]]++
	}
	var rows []Row
	for c, d := range dist {
		rows = append(rows, Row{c, d})
	}
	sortRows(rows, []int{1, 0}, []bool{true, true})
	return &Result{Cols: []string{"c_count", "custdist"}, Rows: rows}
}

func q14(db *tpch.Database, _ float64) *Result {
	lineitem := table(db, "lineitem")
	part := table(db, "part")
	lo, hi := date("1995-09-01"), date("1995-10-01")

	partType := map[int64]string{}
	for i := 0; i < part.rows(); i++ {
		partType[part.i64("p_partkey", i)] = part.str("p_type", i)
	}
	var promo, total int64
	for i := 0; i < lineitem.rows(); i++ {
		d := lineitem.i64("l_shipdate", i)
		if d < lo || d >= hi {
			continue
		}
		v := mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
		total += v
		if strings.HasPrefix(partType[lineitem.i64("l_partkey", i)], "PROMO") {
			promo += v
		}
	}
	share := int64(0)
	if total != 0 {
		share = promo * 10000 / total
	}
	return &Result{Cols: []string{"promo_revenue"}, Rows: []Row{{share}}}
}

func q15(db *tpch.Database, _ float64) *Result {
	lineitem := table(db, "lineitem")
	supplier := table(db, "supplier")
	lo, hi := date("1996-01-01"), date("1996-04-01")

	revBySupp := map[int64]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		d := lineitem.i64("l_shipdate", i)
		if d < lo || d >= hi {
			continue
		}
		revBySupp[lineitem.i64("l_suppkey", i)] +=
			mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
	}
	var maxRev int64
	first := true
	for _, r := range revBySupp {
		if first || r > maxRev {
			maxRev = r
			first = false
		}
	}
	var rows []Row
	for i := 0; i < supplier.rows(); i++ {
		sk := supplier.i64("s_suppkey", i)
		if r, ok := revBySupp[sk]; ok && r == maxRev {
			rows = append(rows, Row{
				sk, supplier.str("s_name", i), supplier.str("s_address", i),
				supplier.str("s_phone", i), r,
			})
		}
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"}, Rows: rows}
}

func q16(db *tpch.Database, _ float64) *Result {
	part := table(db, "part")
	partsupp := table(db, "partsupp")
	supplier := table(db, "supplier")

	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	type pinfo struct {
		brand, ptype string
		size         int64
	}
	wantPart := map[int64]pinfo{}
	for i := 0; i < part.rows(); i++ {
		if part.str("p_brand", i) == "Brand#45" {
			continue
		}
		if strings.HasPrefix(part.str("p_type", i), "MEDIUM POLISHED") {
			continue
		}
		if !sizes[part.i64("p_size", i)] {
			continue
		}
		wantPart[part.i64("p_partkey", i)] = pinfo{
			brand: part.str("p_brand", i),
			ptype: part.str("p_type", i),
			size:  part.i64("p_size", i),
		}
	}
	badSupp := map[int64]bool{}
	for i := 0; i < supplier.rows(); i++ {
		if like(supplier.str("s_comment", i), "%Customer%Complaints%") {
			badSupp[supplier.i64("s_suppkey", i)] = true
		}
	}
	type gKey struct {
		brand, ptype string
		size         int64
	}
	supps := map[gKey]map[int64]bool{}
	for i := 0; i < partsupp.rows(); i++ {
		p, ok := wantPart[partsupp.i64("ps_partkey", i)]
		if !ok {
			continue
		}
		sk := partsupp.i64("ps_suppkey", i)
		if badSupp[sk] {
			continue
		}
		k := gKey(p)
		if supps[k] == nil {
			supps[k] = map[int64]bool{}
		}
		supps[k][sk] = true
	}
	var rows []Row
	for k, set := range supps {
		rows = append(rows, Row{k.brand, k.ptype, k.size, int64(len(set))})
	}
	sortRows(rows, []int{3, 0, 1, 2}, []bool{true, false, false, false})
	return &Result{Cols: []string{"p_brand", "p_type", "p_size", "supplier_cnt"}, Rows: rows}
}
