// Package ref is a deliberately simple, single-threaded reference executor
// for the 22 TPC-H queries. It works row-at-a-time over the undistributed
// generated database with plain Go maps and loops, sharing no execution
// code with the distributed engine; integration tests compare the
// distributed engine's results against it on every query.
//
// Arithmetic follows the engine's fixed-point conventions exactly:
// decimals are int64 hundredths, products truncate (a×b/100), averages
// truncate (sum/count), ratios truncate (a×scale/b).
package ref

import (
	"fmt"
	"sort"

	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

// Row is one result row.
type Row []any

// Result is an ordered result set.
type Result struct {
	Cols []string
	Rows []Row
}

// Run executes reference query q (1–22).
func Run(q int, db *tpch.Database, sf float64) (*Result, error) {
	fns := [22]func(*tpch.Database, float64) *Result{
		q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11,
		q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
	}
	if q < 1 || q > 22 {
		return nil, fmt.Errorf("ref: no TPC-H query %d", q)
	}
	return fns[q-1](db, sf), nil
}

// rel wraps a batch with name-based access.
type rel struct {
	b   *storage.Batch
	idx map[string]int
}

func table(db *tpch.Database, name string) rel {
	b := db.Tables[name]
	idx := make(map[string]int, b.Schema.Len())
	for i, f := range b.Schema.Fields {
		idx[f.Name] = i
	}
	return rel{b: b, idx: idx}
}

func (r rel) rows() int { return r.b.Rows() }

func (r rel) i64(col string, i int) int64 { return r.b.Cols[r.idx[col]].I64[i] }

func (r rel) str(col string, i int) string { return r.b.Cols[r.idx[col]].Str[i] }

// mulDec is the engine's decimal multiply: hundredths, truncating.
func mulDec(a, b int64) int64 { return a * b / 100 }

func year(d int64) int64 { return int64(storage.DateYear(d)) }

func like(s, pat string) bool { return storage.MatchLike(s, pat) }

func date(s string) int64 { return storage.MustDate(s) }

// sortRows orders rows by the given column indexes; desc per index.
func sortRows(rows []Row, keys []int, desc []bool) {
	sort.SliceStable(rows, func(a, b int) bool {
		for k, c := range keys {
			cmp := compareAny(rows[a][c], rows[b][c])
			if desc[k] {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func compareAny(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y := b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("ref: cannot compare %T", a))
	}
}

func limit(rows []Row, n int) []Row {
	if n > 0 && len(rows) > n {
		return rows[:n]
	}
	return rows
}
