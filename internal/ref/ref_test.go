package ref

import (
	"testing"

	"hsqp/internal/tpch"
)

// The reference executor's primary validation is the 88-configuration
// conformance suite in internal/queries; these tests pin its own basic
// contracts.

func TestAllQueriesRun(t *testing.T) {
	db := tpch.Generate(0.005, 42)
	for q := 1; q <= 22; q++ {
		res, err := Run(q, db, 0.005)
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		if len(res.Cols) == 0 {
			t.Fatalf("q%d: no columns", q)
		}
		for i, row := range res.Rows {
			if len(row) != len(res.Cols) {
				t.Fatalf("q%d row %d: %d cells for %d columns", q, i, len(row), len(res.Cols))
			}
		}
	}
	if _, err := Run(0, db, 1); err == nil {
		t.Fatal("q0 accepted")
	}
}

func TestDeterministic(t *testing.T) {
	db := tpch.Generate(0.005, 42)
	for _, q := range []int{1, 5, 13, 18, 22} {
		a, _ := Run(q, db, 0.005)
		b, _ := Run(q, db, 0.005)
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("q%d: row counts differ", q)
		}
		for i := range a.Rows {
			for c := range a.Rows[i] {
				if a.Rows[i][c] != b.Rows[i][c] {
					t.Fatalf("q%d row %d col %d differs", q, i, c)
				}
			}
		}
	}
}

func TestQ1Invariants(t *testing.T) {
	db := tpch.Generate(0.01, 42)
	res, _ := Run(1, db, 0.01)
	if len(res.Rows) != 4 {
		t.Fatalf("Q1 must have 4 groups, got %d", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		cnt := row[9].(int64)
		if cnt <= 0 {
			t.Fatal("empty group emitted")
		}
		total += cnt
		// avg × count ≤ sum (integer truncation) and sums positive.
		if row[2].(int64) <= 0 || row[3].(int64) <= 0 {
			t.Fatal("non-positive sums")
		}
	}
	lineitems := db.Tables["lineitem"].Rows()
	if total > int64(lineitems) {
		t.Fatalf("Q1 counted %d rows of %d", total, lineitems)
	}
}
