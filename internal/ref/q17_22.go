package ref

import (
	"strings"

	"hsqp/internal/tpch"
)

func q17(db *tpch.Database, _ float64) *Result {
	part := table(db, "part")
	lineitem := table(db, "lineitem")

	wantPart := map[int64]bool{}
	for i := 0; i < part.rows(); i++ {
		if part.str("p_brand", i) == "Brand#23" && part.str("p_container", i) == "MED BOX" {
			wantPart[part.i64("p_partkey", i)] = true
		}
	}
	type agg struct{ sum, cnt int64 }
	qty := map[int64]*agg{}
	for i := 0; i < lineitem.rows(); i++ {
		pk := lineitem.i64("l_partkey", i)
		if !wantPart[pk] {
			continue
		}
		a := qty[pk]
		if a == nil {
			a = &agg{}
			qty[pk] = a
		}
		a.sum += lineitem.i64("l_quantity", i)
		a.cnt++
	}
	var sum int64
	for i := 0; i < lineitem.rows(); i++ {
		pk := lineitem.i64("l_partkey", i)
		a, ok := qty[pk]
		if !ok {
			continue
		}
		avg := a.sum / a.cnt
		if 5*lineitem.i64("l_quantity", i) < avg {
			sum += lineitem.i64("l_extendedprice", i)
		}
	}
	return &Result{Cols: []string{"avg_yearly"}, Rows: []Row{{sum / 7}}}
}

func q18(db *tpch.Database, _ float64) *Result {
	customer := table(db, "customer")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")

	qtyByOrder := map[int64]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		qtyByOrder[lineitem.i64("l_orderkey", i)] += lineitem.i64("l_quantity", i)
	}
	custName := map[int64]string{}
	for i := 0; i < customer.rows(); i++ {
		custName[customer.i64("c_custkey", i)] = customer.str("c_name", i)
	}
	var rows []Row
	for i := 0; i < orders.rows(); i++ {
		ok := orders.i64("o_orderkey", i)
		q := qtyByOrder[ok]
		if q <= 300*100 {
			continue
		}
		ck := orders.i64("o_custkey", i)
		rows = append(rows, Row{
			custName[ck], ck, ok, orders.i64("o_orderdate", i), orders.i64("o_totalprice", i), q,
		})
	}
	sortRows(rows, []int{4, 3}, []bool{true, false})
	rows = limit(rows, 100)
	return &Result{
		Cols: []string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"},
		Rows: rows,
	}
}

func q19(db *tpch.Database, _ float64) *Result {
	part := table(db, "part")
	lineitem := table(db, "lineitem")

	type pinfo struct {
		brand, container string
		size             int64
	}
	parts := map[int64]pinfo{}
	for i := 0; i < part.rows(); i++ {
		parts[part.i64("p_partkey", i)] = pinfo{
			brand:     part.str("p_brand", i),
			container: part.str("p_container", i),
			size:      part.i64("p_size", i),
		}
	}
	in := func(s string, vs ...string) bool {
		for _, v := range vs {
			if s == v {
				return true
			}
		}
		return false
	}
	var sum int64
	for i := 0; i < lineitem.rows(); i++ {
		if !in(lineitem.str("l_shipmode", i), "AIR", "AIR REG") {
			continue
		}
		if lineitem.str("l_shipinstruct", i) != "DELIVER IN PERSON" {
			continue
		}
		p, ok := parts[lineitem.i64("l_partkey", i)]
		if !ok {
			continue
		}
		q := lineitem.i64("l_quantity", i)
		match := (p.brand == "Brand#12" &&
			in(p.container, "SM CASE", "SM BOX", "SM PACK", "SM PKG") &&
			q >= 100 && q <= 1100 && p.size >= 1 && p.size <= 5) ||
			(p.brand == "Brand#23" &&
				in(p.container, "MED BAG", "MED BOX", "MED PKG", "MED PACK") &&
				q >= 1000 && q <= 2000 && p.size >= 1 && p.size <= 10) ||
			(p.brand == "Brand#34" &&
				in(p.container, "LG CASE", "LG BOX", "LG PACK", "LG PKG") &&
				q >= 2000 && q <= 3000 && p.size >= 1 && p.size <= 15)
		if match {
			sum += mulDec(lineitem.i64("l_extendedprice", i), 100-lineitem.i64("l_discount", i))
		}
	}
	return &Result{Cols: []string{"revenue"}, Rows: []Row{{sum}}}
}

func q20(db *tpch.Database, _ float64) *Result {
	part := table(db, "part")
	partsupp := table(db, "partsupp")
	lineitem := table(db, "lineitem")
	supplier := table(db, "supplier")
	nation := table(db, "nation")
	lo, hi := date("1994-01-01"), date("1995-01-01")

	forestPart := map[int64]bool{}
	for i := 0; i < part.rows(); i++ {
		if strings.HasPrefix(part.str("p_name", i), "forest") {
			forestPart[part.i64("p_partkey", i)] = true
		}
	}
	type psKey struct{ pk, sk int64 }
	qty := map[psKey]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		d := lineitem.i64("l_shipdate", i)
		if d < lo || d >= hi {
			continue
		}
		qty[psKey{lineitem.i64("l_partkey", i), lineitem.i64("l_suppkey", i)}] +=
			lineitem.i64("l_quantity", i)
	}
	candSupp := map[int64]bool{}
	for i := 0; i < partsupp.rows(); i++ {
		pk := partsupp.i64("ps_partkey", i)
		if !forestPart[pk] {
			continue
		}
		sk := partsupp.i64("ps_suppkey", i)
		q, ok := qty[psKey{pk, sk}]
		if !ok {
			continue
		}
		if partsupp.i64("ps_availqty", i)*200 > q {
			candSupp[sk] = true
		}
	}
	canada := map[int64]bool{}
	for i := 0; i < nation.rows(); i++ {
		if nation.str("n_name", i) == "CANADA" {
			canada[nation.i64("n_nationkey", i)] = true
		}
	}
	var rows []Row
	for i := 0; i < supplier.rows(); i++ {
		if !canada[supplier.i64("s_nationkey", i)] {
			continue
		}
		if !candSupp[supplier.i64("s_suppkey", i)] {
			continue
		}
		rows = append(rows, Row{supplier.str("s_name", i), supplier.str("s_address", i)})
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"s_name", "s_address"}, Rows: rows}
}

func q21(db *tpch.Database, _ float64) *Result {
	supplier := table(db, "supplier")
	nation := table(db, "nation")
	orders := table(db, "orders")
	lineitem := table(db, "lineitem")

	saudi := map[int64]bool{}
	for i := 0; i < nation.rows(); i++ {
		if nation.str("n_name", i) == "SAUDI ARABIA" {
			saudi[nation.i64("n_nationkey", i)] = true
		}
	}
	supName := map[int64]string{}
	for i := 0; i < supplier.rows(); i++ {
		if saudi[supplier.i64("s_nationkey", i)] {
			supName[supplier.i64("s_suppkey", i)] = supplier.str("s_name", i)
		}
	}
	statusF := map[int64]bool{}
	for i := 0; i < orders.rows(); i++ {
		if orders.str("o_orderstatus", i) == "F" {
			statusF[orders.i64("o_orderkey", i)] = true
		}
	}
	// Per order: all suppliers, and suppliers that were late.
	allSupp := map[int64]map[int64]bool{}
	lateSupp := map[int64]map[int64]bool{}
	for i := 0; i < lineitem.rows(); i++ {
		ok := lineitem.i64("l_orderkey", i)
		sk := lineitem.i64("l_suppkey", i)
		if allSupp[ok] == nil {
			allSupp[ok] = map[int64]bool{}
		}
		allSupp[ok][sk] = true
		if lineitem.i64("l_commitdate", i) < lineitem.i64("l_receiptdate", i) {
			if lateSupp[ok] == nil {
				lateSupp[ok] = map[int64]bool{}
			}
			lateSupp[ok][sk] = true
		}
	}
	numwait := map[string]int64{}
	for i := 0; i < lineitem.rows(); i++ {
		if lineitem.i64("l_commitdate", i) >= lineitem.i64("l_receiptdate", i) {
			continue
		}
		ok := lineitem.i64("l_orderkey", i)
		if !statusF[ok] {
			continue
		}
		sk := lineitem.i64("l_suppkey", i)
		name, isSaudi := supName[sk]
		if !isSaudi {
			continue
		}
		// exists other supplier on the order
		others := false
		for s := range allSupp[ok] {
			if s != sk {
				others = true
				break
			}
		}
		if !others {
			continue
		}
		// no other *late* supplier on the order
		otherLate := false
		for s := range lateSupp[ok] {
			if s != sk {
				otherLate = true
				break
			}
		}
		if otherLate {
			continue
		}
		numwait[name]++
	}
	var rows []Row
	for n, c := range numwait {
		rows = append(rows, Row{n, c})
	}
	sortRows(rows, []int{1, 0}, []bool{true, false})
	rows = limit(rows, 100)
	return &Result{Cols: []string{"s_name", "numwait"}, Rows: rows}
}

func q22(db *tpch.Database, _ float64) *Result {
	customer := table(db, "customer")
	orders := table(db, "orders")
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}

	code := func(i int) (string, bool) {
		p := customer.str("c_phone", i)
		if len(p) < 2 {
			return "", false
		}
		c := p[:2]
		return c, codes[c]
	}
	var sum, cnt int64
	for i := 0; i < customer.rows(); i++ {
		if _, ok := code(i); !ok {
			continue
		}
		if b := customer.i64("c_acctbal", i); b > 0 {
			sum += b
			cnt++
		}
	}
	avg := int64(0)
	if cnt > 0 {
		avg = sum / cnt
	}
	hasOrder := map[int64]bool{}
	for i := 0; i < orders.rows(); i++ {
		hasOrder[orders.i64("o_custkey", i)] = true
	}
	type agg struct{ n, bal int64 }
	byCode := map[string]*agg{}
	for i := 0; i < customer.rows(); i++ {
		c, ok := code(i)
		if !ok {
			continue
		}
		b := customer.i64("c_acctbal", i)
		if b <= avg {
			continue
		}
		if hasOrder[customer.i64("c_custkey", i)] {
			continue
		}
		a := byCode[c]
		if a == nil {
			a = &agg{}
			byCode[c] = a
		}
		a.n++
		a.bal += b
	}
	var rows []Row
	for c, a := range byCode {
		rows = append(rows, Row{c, a.n, a.bal})
	}
	sortRows(rows, []int{0}, []bool{false})
	return &Result{Cols: []string{"cntrycode", "numcust", "totacctbal"}, Rows: rows}
}
