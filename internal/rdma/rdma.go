// Package rdma implements a verbs-like RDMA endpoint over the simulated
// fabric (§2.2 of the paper).
//
// The model follows the paper's design decisions:
//
//   - channel semantics (two-sided send/receive, §2.2.3): the receiver
//     posts receive buffers; an incoming message lands in the next posted
//     buffer and a completion is signalled — no memory-key exchange;
//   - zero copy (§2.2.2): the sender's buffer is read by the simulated HCA
//     (the fabric) directly; the only data movement on the receive side is
//     the HCA's DMA into the posted buffer, performed by the fabric's
//     ingress goroutine, *not* by an application core;
//   - event-based completion notification (§2.2.4): receive completions
//     are delivered through a channel the multiplexer blocks on, costing
//     ~nothing in CPU, matching the paper's 4% CPU observation;
//   - buffer reuse: the sender's message is released (returned to its
//     pool) once the send work request completes, i.e. after the HCA has
//     read the buffer onto the wire.
//
// Memory-region registration cost is modeled in the message pool
// (memory.NewPool's registerCost), not here: regions are registered when a
// buffer is first allocated and reused afterwards.
package rdma

import (
	"sync/atomic"
	"time"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/spin"
)

// CompletionCost is the CPU charged per handled completion notification.
// Event-based completions are cheap but not free.
const CompletionCost = 300 * time.Nanosecond

// Stats reports endpoint activity.
type Stats struct {
	BytesSent     uint64
	BytesReceived uint64
	MsgsSent      uint64
	MsgsReceived  uint64
	InlineSent    uint64
	CPUSeconds    float64 // modeled CPU spent by the endpoint owner
}

// inlinePayload is the wire representation of a low-latency inline send.
type inlinePayload struct {
	src int
	tag uint32
}

// Endpoint is one server's RDMA port.
type Endpoint struct {
	fab  *fabric.Fabric
	port int

	recvAlloc func() *memory.Message    // posts receive buffers
	onRecv    func(*memory.Message)     // completion handler (data)
	onInline  func(src int, tag uint32) // completion handler (inline)

	scale      float64
	deliveries chan *fabric.Message
	stopCh     chan struct{}
	stopped    atomic.Bool

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
	msgsSent  atomic.Uint64
	msgsRecv  atomic.Uint64
	inlines   atomic.Uint64
	cpuNanos  atomic.Int64
}

// NewEndpoint wires an RDMA endpoint to fabric port `port`.
//
// recvAlloc supplies posted receive buffers (the multiplexer draws them
// from its NUMA-aware pool, rotating sockets). onRecv and onInline are the
// completion handlers; they run on the fabric's delivery goroutine and
// should hand off quickly.
func NewEndpoint(fab *fabric.Fabric, port int,
	recvAlloc func() *memory.Message,
	onRecv func(*memory.Message),
	onInline func(src int, tag uint32)) *Endpoint {

	ep := &Endpoint{
		fab:        fab,
		port:       port,
		recvAlloc:  recvAlloc,
		onRecv:     onRecv,
		onInline:   onInline,
		scale:      fab.Config().TimeScale,
		deliveries: make(chan *fabric.Message, 32),
		stopCh:     make(chan struct{}),
	}
	fab.RegisterSink(port, ep.sink)
	return ep
}

// Send posts a send work request for m to server dst and returns once the
// request is queued (the verbs interface is asynchronous, §2.2.1). The
// message is released when the simulated HCA has finished reading it;
// callers must not touch m after Send.
func (ep *Endpoint) Send(dst int, m *memory.Message) {
	size := m.WireSize()
	ep.bytesSent.Add(uint64(size))
	ep.msgsSent.Add(1)
	ep.fab.Send(&fabric.Message{
		Src:     ep.port,
		Dst:     dst,
		Size:    size,
		Payload: m,
	})
}

// SendInline sends a small latency-critical message (used for the network
// scheduler's synchronization barriers, §3.2.3). Inline data travels inside
// the work request itself, so no buffer is consumed on either side.
func (ep *Endpoint) SendInline(dst int, tag uint32) {
	ep.inlines.Add(1)
	ep.fab.Send(&fabric.Message{
		Src:     ep.port,
		Dst:     dst,
		Size:    16, // a minimal work request
		Payload: inlinePayload{src: ep.port, tag: tag},
		Inline:  true,
	})
}

// sink is the fabric delivery callback. Inline completions are handled
// immediately (they are latency-critical barriers); data completions are
// handed to the endpoint's own goroutine so the DMA copy never runs on the
// paced link goroutine.
func (ep *Endpoint) sink(fm *fabric.Message) {
	if pl, ok := fm.Payload.(inlinePayload); ok {
		ep.chargeCPU(CompletionCost)
		ep.onInline(pl.src, pl.tag)
		return
	}
	select {
	case ep.deliveries <- fm:
	case <-ep.stopCh:
	}
}

// deliverLoop models the HCA's DMA engine completing receive work
// requests.
func (ep *Endpoint) deliverLoop() {
	for {
		select {
		case fm := <-ep.deliveries:
			ep.complete(fm)
		case <-ep.stopCh:
			return
		}
	}
}

func (ep *Endpoint) complete(fm *fabric.Message) {
	switch pl := fm.Payload.(type) {
	case *memory.Message:
		// DMA the wire content into the next posted receive buffer. The
		// copy is done here, on the fabric goroutine, which stands in for
		// the HCA's DMA engine: application cores are not involved.
		dst := ep.recvAlloc()
		dst.QueryID = pl.QueryID
		dst.ExchangeID = pl.ExchangeID
		dst.Last = pl.Last
		dst.Sender = pl.Sender
		dst.Seq = pl.Seq
		dst.Part = pl.Part
		dst.Content = append(dst.Content[:0], pl.Content...)
		pl.Release() // send completion on the sender side
		ep.bytesRecv.Add(uint64(fm.Size))
		ep.msgsRecv.Add(1)
		ep.chargeCPU(CompletionCost)
		ep.onRecv(dst)
	default:
		panic("rdma: unexpected payload type on fabric")
	}
}

func (ep *Endpoint) chargeCPU(d time.Duration) {
	ep.cpuNanos.Add(int64(d))
	spin.Burn(time.Duration(float64(d) * ep.scale))
}

// Start launches the simulated DMA-completion goroutine.
func (ep *Endpoint) Start() {
	go ep.deliverLoop()
}

// Close stops the completion goroutine.
func (ep *Endpoint) Close() {
	if ep.stopped.CompareAndSwap(false, true) {
		close(ep.stopCh)
	}
}

// Stats returns a snapshot of endpoint counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		BytesSent:     ep.bytesSent.Load(),
		BytesReceived: ep.bytesRecv.Load(),
		MsgsSent:      ep.msgsSent.Load(),
		MsgsReceived:  ep.msgsRecv.Load(),
		InlineSent:    ep.inlines.Load(),
		CPUSeconds:    float64(ep.cpuNanos.Load()) / 1e9,
	}
}
