package rdma

import (
	"sync"
	"testing"

	"hsqp/internal/fabric"
	"hsqp/internal/memory"
	"hsqp/internal/numa"
)

func TestChannelSemantics(t *testing.T) {
	fab, err := fabric.New(fabric.Config{Ports: 2, Rate: fabric.IB4xQDR, TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	topo := numa.TwoSocket()
	sendPool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)
	recvPool := memory.NewPool(topo, numa.AllocLocal, 4096, nil)

	var mu sync.Mutex
	var got []*memory.Message
	done := make(chan struct{}, 16)
	inlines := make(chan uint32, 16)

	ep0 := NewEndpoint(fab, 0, sendPool.Get0, func(m *memory.Message) { m.Release() }, func(int, uint32) {})
	ep1 := NewEndpoint(fab, 1, recvPool.Get0, func(m *memory.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
		done <- struct{}{}
	}, func(src int, tag uint32) { inlines <- tag })
	fab.Start()
	ep0.Start()
	ep1.Start()
	defer func() {
		ep0.Close()
		ep1.Close()
		fab.Stop()
	}()

	m := sendPool.Get0()
	m.ExchangeID = 11
	m.Sender = 0
	m.Seq = 42
	m.Content = append(m.Content, []byte("zero copy")...)
	ep0.Send(1, m)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("received %d", len(got))
	}
	r := got[0]
	// The receiver's buffer is a POSTED buffer from its own pool, not the
	// sender's (channel semantics): the sender's buffer must have been
	// released back to the send pool.
	if r == m {
		t.Fatal("receiver got the sender's buffer; channel semantics violated")
	}
	if string(r.Content) != "zero copy" || r.ExchangeID != 11 || r.Seq != 42 {
		t.Fatalf("wire fields lost: %+v", r)
	}
	if sendPool.Stats().Returned != 1 {
		t.Fatal("send completion did not release the sender's buffer")
	}

	// Inline sends deliver tags without consuming buffers.
	ep0.SendInline(1, 7)
	if tag := <-inlines; tag != 7 {
		t.Fatalf("inline tag %d", tag)
	}
	st := ep0.Stats()
	if st.MsgsSent != 1 || st.InlineSent != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if rs := ep1.Stats(); rs.MsgsReceived != 1 || rs.CPUSeconds <= 0 {
		t.Fatalf("recv stats: %+v", rs)
	}
}

func TestRDMACPUFarBelowTCP(t *testing.T) {
	// §2 discussion: RDMA frees the CPU (4% vs 100–190%). Per 512 KB
	// message the RDMA endpoint charges only completion costs.
	perMsg := CompletionCost.Seconds()
	tcpPerByte := 0.66e-9 // connected-mode receive path
	tcpPerMsg := 512 * 1024 * tcpPerByte
	if perMsg > tcpPerMsg/50 {
		t.Fatalf("RDMA CPU %.1fµs per message should be ≪ TCP %.1fµs", perMsg*1e6, tcpPerMsg*1e6)
	}
}
