package competitors

import (
	"testing"

	"hsqp/internal/cluster"
	"hsqp/internal/engine"
	"hsqp/internal/numa"
	"hsqp/internal/op"
	"hsqp/internal/plan"
	"hsqp/internal/storage"
	"hsqp/internal/tpch"
)

func sample() *storage.Batch {
	db := tpch.Generate(0.002, 42)
	return db.Tables["orders"]
}

func TestBoxedIteratorPreservesData(t *testing.T) {
	b := sample()
	bi := NewBoxedIterator(b.Schema, 5)
	w := &engine.Worker{ID: 0, Node: 0}
	out := bi.Process(w, b)
	if out.Rows() != b.Rows() {
		t.Fatalf("rows %d != %d", out.Rows(), b.Rows())
	}
	for i := 0; i < min(out.Rows(), 200); i++ {
		for c := range b.Cols {
			if out.Cols[c].Value(i) != b.Cols[c].Value(i) {
				t.Fatalf("row %d col %d changed", i, c)
			}
		}
	}
}

func TestScanDeserializerPreservesData(t *testing.T) {
	b := sample()
	sd := NewScanDeserializer(b.Schema)
	out := sd.Process(&engine.Worker{}, b)
	if out.Rows() != b.Rows() {
		t.Fatalf("rows %d != %d", out.Rows(), b.Rows())
	}
	for i := 0; i < min(out.Rows(), 200); i++ {
		for c := range b.Cols {
			if out.Cols[c].Value(i) != b.Cols[c].Value(i) {
				t.Fatalf("row %d col %d changed", i, c)
			}
		}
	}
}

func TestStyleConfigs(t *testing.T) {
	for _, s := range append(Styles(), HyPerTCPStyle) {
		cfg := ClusterConfig(s, 2, 2, 0.001)
		if cfg.Servers != 2 {
			t.Fatalf("%v: servers", s)
		}
		if s == HyPerStyle && (cfg.Transport != cluster.RDMA || !cfg.Scheduling) {
			t.Fatalf("HyPer style must be RDMA+scheduled: %+v", cfg)
		}
		if s != HyPerStyle && cfg.Transport == cluster.RDMA {
			t.Fatalf("%v must not use RDMA", s)
		}
		if s == VectorwiseStyle && !cfg.Classic {
			t.Fatal("Vectorwise style must use classic exchange operators")
		}
		if (s == SparkSQLStyle || s == ImpalaStyle || s == MemSQLStyle) && cfg.AfterScan == nil {
			t.Fatalf("%v must add scan overhead", s)
		}
	}
	if !MemSQLStyle.Partitioned() || !VectorwiseStyle.Partitioned() || SparkSQLStyle.Partitioned() {
		t.Fatal("placement flags wrong")
	}
}

// TestStylesStillCorrect runs a real distributed query under the overhead
// operators and checks the result is unchanged: competitor styles must
// slow execution down, never alter semantics.
func TestStylesStillCorrect(t *testing.T) {
	db := tpch.Generate(0.002, 42)
	var want int64
	ref := db.Tables["lineitem"]
	qty := ref.Schema.MustColIndex("l_quantity")
	for i := 0; i < ref.Rows(); i++ {
		want += ref.Cols[qty].I64[i]
	}
	for _, s := range []Style{SparkSQLStyle, ImpalaStyle, HyPerStyle} {
		cfg := ClusterConfig(s, 2, 2, 0.001)
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.LoadTPCH(db, s.Partitioned())
		q := sumQuantityQuery()
		res, _, err := c.Run(q)
		if err != nil {
			c.Close()
			t.Fatalf("%v: %v", s, err)
		}
		if res.Rows() != 1 || res.Cols[0].I64[0] != want {
			t.Fatalf("%v: sum %v, want %d", s, res.Row(0), want)
		}
		c.Close()
	}
}

func TestNodeInterleavedConstant(t *testing.T) {
	if numa.NodeInterleaved >= 0 {
		t.Fatal("interleaved marker must be negative")
	}
}

// sumQuantityQuery builds a trivial scalar aggregation over lineitem.
func sumQuantityQuery() *plan.Query {
	l := plan.Scan("lineitem", tpch.LineitemSchema())
	g := l.GroupByCols(nil, op.AggSpec{
		Kind: op.Sum, Name: "s",
		Arg:     op.Col(l.Col("l_quantity")),
		ArgType: storage.TDecimal,
	})
	return plan.NewQuery("sumqty", g)
}
